package gigaflow

import "testing"

// TestProcessBatchMatchesSequential drives the same key sequence through
// Process one packet at a time and through ProcessBatch in mixed-size
// chunks, on both backends with a Microflow tier: results, errors, and
// every counter (VSwitch, main cache, microflow) must be identical —
// batching amortizes bookkeeping, it must never change behaviour.
func TestProcessBatchMatchesSequential(t *testing.T) {
	for _, backend := range []string{"gigaflow", "megaflow"} {
		t.Run(backend, func(t *testing.T) {
			cfg := CacheConfig{NumTables: 3, TableCapacity: 64}
			opts := []VSwitchOption{WithMicroflow(32)}
			if backend == "megaflow" {
				opts = append(opts, WithMegaflowBackend(128))
			}
			seqVS := NewVSwitch(buildDemoPipeline(), cfg, opts...)
			batVS := NewVSwitch(buildDemoPipeline(), cfg, opts...)

			// Mixed traffic: revisited flows (microflow hits), fresh flows
			// of cached megaflows (main-cache hits), and cold flows
			// (slowpath). Small microflow capacity forces LRU churn too.
			ports := []uint64{80, 22}
			var keys []Key
			for i := 0; i < 300; i++ {
				keys = append(keys, demoKey(uint64(i*7%41), ports[i%2]))
			}

			seqRes := make([]ProcessResult, len(keys))
			for i, k := range keys {
				r, err := seqVS.Process(k, int64(i))
				if err != nil {
					t.Fatal(err)
				}
				seqRes[i] = r
			}

			out := make([]ProcessResult, len(keys))
			errs := make([]error, len(keys))
			batVS.ProcessBatch(nil, nil, nil, 0) // empty batch: no-op
			chunks := []int{1, 7, 32, 3, 64, 5, 2, 100}
			for lo, c := 0, 0; lo < len(keys); c++ {
				n := chunks[c%len(chunks)]
				if lo+n > len(keys) {
					n = len(keys) - lo
				}
				// A chunk shares one virtual timestamp; LRU order within
				// it is still submission order, so behaviour matches.
				batVS.ProcessBatch(keys[lo:lo+n], out[lo:lo+n], errs[lo:lo+n], int64(lo))
				lo += n
			}

			for i := range keys {
				if errs[i] != nil {
					t.Fatalf("packet %d: batch error %v", i, errs[i])
				}
				if out[i] != seqRes[i] {
					t.Fatalf("packet %d: batch %+v != sequential %+v", i, out[i], seqRes[i])
				}
			}
			if bs, ss := batVS.Stats(), seqVS.Stats(); bs != ss {
				t.Errorf("VSwitchStats diverge: batch %+v, sequential %+v", bs, ss)
			}
			if bs, ss := batVS.Microflow().Stats(), seqVS.Microflow().Stats(); bs != ss {
				t.Errorf("microflow stats diverge: batch %+v, sequential %+v", bs, ss)
			}
			if backend == "gigaflow" {
				if bs, ss := batVS.Cache().Stats(), seqVS.Cache().Stats(); bs != ss {
					t.Errorf("gigaflow stats diverge: batch %+v, sequential %+v", bs, ss)
				}
			} else {
				if bs, ss := batVS.Megaflow().Stats(), seqVS.Megaflow().Stats(); bs != ss {
					t.Errorf("megaflow stats diverge: batch %+v, sequential %+v", bs, ss)
				}
			}
		})
	}
}

// TestProcessBatchVisibility pins the ordering contract directly: a miss
// early in a batch installs rules and memoizes, and a later packet of the
// same flow in the *same* batch must hit.
func TestProcessBatchVisibility(t *testing.T) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64},
		WithMicroflow(32))
	k := demoKey(1, 80)
	keys := []Key{k, k, k}
	out := make([]ProcessResult, 3)
	errs := make([]error, 3)
	vs.ProcessBatch(keys, out, errs, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if out[0].CacheHit {
		t.Error("first packet of a cold cache cannot hit")
	}
	if !out[1].CacheHit || !out[2].CacheHit {
		t.Error("later packets must see the first packet's install")
	}
	if !out[2].MicroflowHit {
		t.Error("third packet must hit the memoized exact-match entry")
	}
	st := vs.Stats()
	if st.Packets != 3 || st.CacheMisses != 1 || st.Slowpath != 1 {
		t.Errorf("stats = %+v", st)
	}
}
