package gigaflow

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact through internal/experiments at a
// reduced-but-faithful scale (the gigabench command runs the same
// harnesses at full paper scale), logs the rows the paper reports, and
// exposes the headline numbers as benchmark metrics.
//
//	go test -bench=. -benchmem           # everything
//	go test -bench=Fig8 -v               # one figure, with its table

import (
	"fmt"
	"sync"
	"testing"

	"gigaflow/internal/experiments"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/telemetry"
	"gigaflow/internal/traffic"
)

// benchParams is the reduced scale used by the benchmarks: ~20K flows over
// ~30K rule chains reproduce every shape in seconds instead of minutes.
func benchParams() experiments.Params {
	return experiments.Params{Seed: 1, NumFlows: 20000, NumChains: 30000}
}

var (
	e2eOnce sync.Once
	e2eVal  *experiments.EndToEnd
	e2eErr  error
)

// sharedEndToEnd runs the §6.2 grid once and shares it across the Fig 8-13
// and Table 2 benchmarks.
func sharedEndToEnd(b *testing.B) *experiments.EndToEnd {
	b.Helper()
	e2eOnce.Do(func() { e2eVal, e2eErr = experiments.RunEndToEnd(benchParams()) })
	if e2eErr != nil {
		b.Fatal(e2eErr)
	}
	return e2eVal
}

var (
	sweepOnce sync.Once
	sweepVal  *experiments.TableSweep
	sweepErr  error
)

func sharedTableSweep(b *testing.B) *experiments.TableSweep {
	b.Helper()
	sweepOnce.Do(func() {
		p := benchParams()
		// The 2–5 table sweep over every pipeline is the most expensive
		// harness; two contrasting pipelines cover the trend.
		p.Pipelines = []*pipelines.Spec{pipelines.PSC, pipelines.OLS}
		sweepVal, sweepErr = experiments.RunTableSweep(p)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepVal
}

func BenchmarkTable1_PipelineInventory(b *testing.B) {
	tab := experiments.Table1()
	b.Logf("\n%s", tab.Render())
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1()
	}
}

func BenchmarkFig3_TablesVsMissesEntries(b *testing.B) {
	tab, err := experiments.Fig3(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tab.Render())
	var k1, k4 float64
	fmt.Sscan(tab.Rows[0][1], &k1)
	fmt.Sscan(tab.Rows[len(tab.Rows)-1][1], &k4)
	b.ReportMetric(k1, "misses_K1")
	b.ReportMetric(k4, "misses_K4")
	for i := 0; i < b.N; i++ {
		_ = tab.Render()
	}
}

func BenchmarkFig4_TupleSharing(b *testing.B) {
	tab := experiments.Fig4(benchParams())
	b.Logf("\n%s", tab.Render())
	var k1, k5 float64
	fmt.Sscan(tab.Rows[4][1], &k1) // rows are k=5..1
	fmt.Sscan(tab.Rows[0][1], &k5)
	b.ReportMetric(k1, "sharing_k1")
	b.ReportMetric(k5, "sharing_k5")
	for i := 0; i < b.N; i++ {
		_ = tab.Render()
	}
}

// e2eMeans aggregates a metric over the end-to-end grid's high-locality
// cells.
func e2eMeans(e *experiments.EndToEnd, f func(c experiments.Cell) (gf, mf float64)) (gfMean, mfMean float64) {
	n := 0
	for _, c := range e.Cells {
		if c.Locality != traffic.HighLocality {
			continue
		}
		gf, mf := f(c)
		gfMean += gf
		mfMean += mf
		n++
	}
	return gfMean / float64(n), mfMean / float64(n)
}

func BenchmarkFig8_HitRate(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Fig8().Render())
	gf, mf := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		return 100 * c.GF.HitRate(), 100 * c.MF.HitRate()
	})
	b.ReportMetric(gf, "gf_hit_%")
	b.ReportMetric(mf, "mf_hit_%")
	for i := 0; i < b.N; i++ {
		_ = e.Fig8()
	}
}

func BenchmarkFig9_Misses(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Fig9().Render())
	gf, mf := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		return float64(c.GF.Misses), float64(c.MF.Misses)
	})
	b.ReportMetric(100*(mf-gf)/mf, "miss_reduction_%")
	for i := 0; i < b.N; i++ {
		_ = e.Fig9()
	}
}

func BenchmarkFig10_Entries(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Fig10().Render())
	gf, mf := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		return 100 * float64(c.GF.Entries) / float64(c.GF.Capacity),
			100 * float64(c.MF.Entries) / float64(c.MF.Capacity)
	})
	b.ReportMetric(gf, "gf_util_%")
	b.ReportMetric(mf, "mf_util_%")
	for i := 0; i < b.N; i++ {
		_ = e.Fig10()
	}
}

func BenchmarkFig11_Sharing(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Fig11().Render())
	gf, _ := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		return c.GF.MeanSharing, 1
	})
	b.ReportMetric(gf, "installs/entry")
	for i := 0; i < b.N; i++ {
		_ = e.Fig11()
	}
}

func BenchmarkFig12_Latency(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Fig12().Render())
	gf, mf := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		return c.GF.Latency.Mean() / 1000, c.MF.Latency.Mean() / 1000
	})
	b.ReportMetric(gf, "gf_µs")
	b.ReportMetric(mf, "mf_µs")
	for i := 0; i < b.N; i++ {
		_ = e.Fig12()
	}
}

func BenchmarkFig13_CPUBreakdown(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Fig13().Render())
	gfOver, _ := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		if c.GF.Cycles.Pipeline == 0 {
			return 0, 0
		}
		return 100 * float64(c.GF.Cycles.Partition+c.GF.Cycles.RuleGen) / float64(c.GF.Cycles.Pipeline), 0
	})
	b.ReportMetric(gfOver, "gf_overhead_%")
	for i := 0; i < b.N; i++ {
		_ = e.Fig13()
	}
}

func BenchmarkFig14_TableSweepMisses(b *testing.B) {
	s := sharedTableSweep(b)
	b.Logf("\n%s", s.Fig14().Render())
	for i := 0; i < b.N; i++ {
		_ = s.Fig14()
	}
}

func BenchmarkFig15_TableSweepEntries(b *testing.B) {
	s := sharedTableSweep(b)
	b.Logf("\n%s", s.Fig15().Render())
	for i := 0; i < b.N; i++ {
		_ = s.Fig15()
	}
}

func BenchmarkTable2_Coverage(b *testing.B) {
	e := sharedEndToEnd(b)
	b.Logf("\n%s", e.Table2().Render())
	factor, _ := e2eMeans(e, func(c experiments.Cell) (float64, float64) {
		return float64(c.GF.Coverage) / float64(c.MF.Coverage), 0
	})
	b.ReportMetric(factor, "coverage_factor")
	for i := 0; i < b.N; i++ {
		_ = e.Table2()
	}
}

func BenchmarkFig16_PartitionSchemes(b *testing.B) {
	tab, err := experiments.Fig16(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tab.Render())
	for i := 0; i < b.N; i++ {
		_ = tab.Render()
	}
}

func BenchmarkFig17_SearchAlgorithms(b *testing.B) {
	tab, err := experiments.Fig17(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tab.Render())
	for i := 0; i < b.N; i++ {
		_ = tab.Render()
	}
}

func BenchmarkFig18_DynamicWorkload(b *testing.B) {
	r, err := experiments.Fig18(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", r.Table().Render())
	// Report the post-arrival dip: min windowed hit rate after t=300s.
	gfMin, mfMin := 1.0, 1.0
	for i := range r.GF.Points {
		if r.GF.Points[i].T > r.ArrivalSec && r.GF.Points[i].V < gfMin {
			gfMin = r.GF.Points[i].V
		}
	}
	for i := range r.MF.Points {
		if r.MF.Points[i].T > r.ArrivalSec && r.MF.Points[i].V < mfMin {
			mfMin = r.MF.Points[i].V
		}
	}
	b.ReportMetric(100*gfMin, "gf_min_hit_%")
	b.ReportMetric(100*mfMin, "mf_min_hit_%")
	for i := 0; i < b.N; i++ {
		_ = r.Table()
	}
}

func BenchmarkSec636_LatencyRevalidation(b *testing.B) {
	lat, reval, err := experiments.Sec636(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s\n%s", lat.Render(), reval.Render())
	var mfMs, gfMs float64
	fmt.Sscan(reval.Rows[0][3], &mfMs)
	fmt.Sscan(reval.Rows[1][3], &gfMs)
	b.ReportMetric(mfMs, "mf_reval_ms")
	b.ReportMetric(gfMs, "gf_reval_ms")
	for i := 0; i < b.N; i++ {
		_ = reval.Render()
	}
}

func BenchmarkFig19_CoreScaling(b *testing.B) {
	p := benchParams()
	p.Pipelines = []*pipelines.Spec{pipelines.PSC}
	tab, err := experiments.Fig19(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tab.Render())
	for i := 0; i < b.N; i++ {
		_ = tab.Render()
	}
}

// --- VSwitch hot-path benchmarks -------------------------------------
//
// These guard the telemetry integration: the cache-hit path must stay
// allocation-free and within noise of its pre-telemetry cost, both with
// tracing disabled (the default) and with a tracer attached but sampling
// off.

func BenchmarkVSwitchCacheHit(b *testing.B) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64})
	k := demoKey(1, 80)
	if _, err := vs.Process(k, 0); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vs.Process(k, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVSwitchProcessBatch measures the batched hot path on warm
// cache hits (ns/op is per 32-packet batch). Like Process it must stay at
// 0 allocs/op: the batch accumulators live on the stack and the counter
// flush touches only existing fields.
func BenchmarkVSwitchProcessBatch(b *testing.B) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64})
	const batch = 32
	keys := make([]Key, batch)
	for i := range keys {
		keys[i] = demoKey(uint64(i%8), 80)
	}
	out := make([]ProcessResult, batch)
	errs := make([]error, batch)
	vs.ProcessBatch(keys, out, errs, 0) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs.ProcessBatch(keys, out, errs, int64(i))
	}
}

func BenchmarkVSwitchMicroflowHit(b *testing.B) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64},
		WithMicroflow(128))
	k := demoKey(1, 80)
	if _, err := vs.Process(k, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vs.Process(k, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProcessBatchRec is the batched warm hot path with an optional
// latency recorder attached: the parametrized body behind the latency
// overhead gate. ns/op is per 32-packet batch.
func benchProcessBatchRec(b *testing.B, rec *telemetry.LatencyRecorder) {
	opts := []VSwitchOption{WithMicroflow(256)}
	if rec != nil {
		opts = append(opts, WithLatencyRecorder(rec))
	}
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64}, opts...)
	const batch = 32
	keys := make([]Key, batch)
	for i := range keys {
		keys[i] = demoKey(uint64(i%8), 80)
	}
	out := make([]ProcessResult, batch)
	errs := make([]error, batch)
	vs.ProcessBatch(keys, out, errs, 0) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs.ProcessBatch(keys, out, errs, int64(i))
	}
}

// BenchmarkVSwitchProcessBatchRecorded is BenchmarkVSwitchProcessBatch
// with latency attribution on: the cost visible over the plain variant is
// the whole per-packet price of the flight recorder and tier histograms.
// (The enforced overhead gate lives in the service package, against the
// deployed datapath; this benchmark is the raw per-batch view.)
func BenchmarkVSwitchProcessBatchRecorded(b *testing.B) {
	benchProcessBatchRec(b, telemetry.NewLatencyRecorder(0, 0))
}

// BenchmarkVSwitchCacheHitTraced attaches a tracer with sampling disabled:
// the only added cost on the hit path must be one atomic load.
func BenchmarkVSwitchCacheHitTraced(b *testing.B) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64},
		WithTracer(NewTracer(0, 64)))
	k := demoKey(1, 80)
	if _, err := vs.Process(k, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vs.Process(k, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
