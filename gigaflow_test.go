package gigaflow

import (
	"testing"
)

// buildDemoPipeline creates the facade-level L2→L3→L4 pipeline used across
// the public API tests.
func buildDemoPipeline() *Pipeline {
	p := NewPipeline("demo")
	p.AddTable(0, "l2", NewFieldSet(FieldEthDst))
	p.AddTable(1, "l3", NewFieldSet(FieldIPDst))
	p.AddTable(2, "l4", NewFieldSet(FieldTpDst))
	p.MustAddRule(0, MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(1, MustParseMatch("ip_dst=10.0.0.0/24"), 10,
		[]Action{SetField(FieldEthSrc, 0x02aa)}, 2)
	p.MustAddRule(2, MustParseMatch("tp_dst=80"), 10, []Action{Output(1)}, NoTable)
	p.MustAddRule(2, MustParseMatch("tp_dst=22"), 20, []Action{Drop()}, NoTable)
	return p
}

func demoKey(ipLow, port uint64) Key {
	return MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800").
		With(FieldIPDst, 0x0a000000|ipLow).
		With(FieldTpDst, port)
}

func TestVSwitchEndToEnd(t *testing.T) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64})

	// First packet: slowpath.
	r1, err := vs.Process(demoKey(1, 80), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("cold cache cannot hit")
	}
	if r1.Verdict.Kind != 1 /* output */ || r1.Verdict.Port != 1 {
		t.Fatalf("verdict = %v", r1.Verdict)
	}

	// Second packet of the same megaflow: cache hit with identical result.
	r2, err := vs.Process(demoKey(2, 80), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("expected cache hit")
	}
	if r2.Verdict != r1.Verdict {
		t.Error("cache verdict diverges")
	}
	if r2.Final.Get(FieldEthSrc) != 0x02aa {
		t.Error("rewrite lost through the cache")
	}

	st := vs.Stats()
	if st.Packets != 2 || st.CacheHits != 1 || st.Slowpath != 1 || st.Installs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %v", st.HitRate())
	}
	if vs.CacheEntries() == 0 || vs.Coverage() == 0 {
		t.Error("cache should be populated")
	}
	if vs.Pipeline() == nil || vs.Cache() == nil {
		t.Error("accessors broken")
	}
}

func TestVSwitchCrossProductSharing(t *testing.T) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64})
	if _, err := vs.Process(demoKey(1, 80), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Process(demoKey(2, 22), 1); err != nil {
		t.Fatal(err)
	}
	// A flow combining the first flow's port with fresh bits must hit via
	// shared sub-traversals.
	r, err := vs.Process(demoKey(99, 22), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Error("cross-product flow should hit")
	}
	if r.Verdict.Kind != 2 /* drop */ {
		t.Errorf("verdict = %v", r.Verdict)
	}
}

func TestVSwitchMegaflowBackend(t *testing.T) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64},
		WithMegaflowBackend(128))
	if vs.Cache() != nil {
		t.Fatal("megaflow backend should disable the gigaflow cache")
	}
	if _, err := vs.Process(demoKey(1, 80), 0); err != nil {
		t.Fatal(err)
	}
	r, err := vs.Process(demoKey(2, 80), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Error("megaflow backend should hit within the wildcard")
	}
	if vs.Coverage() != uint64(vs.CacheEntries()) {
		t.Error("megaflow coverage must equal entries")
	}
}

func TestVSwitchRevalidation(t *testing.T) {
	p := buildDemoPipeline()
	vs := NewVSwitch(p, CacheConfig{NumTables: 3, TableCapacity: 64})
	if _, err := vs.Process(demoKey(1, 80), 0); err != nil {
		t.Fatal(err)
	}
	// Repoint the HTTP rule at a new port; the stale sub-traversal must go.
	old := p.Table(2).Rules()[1] // priority 10 = tp_dst 80 (22 has prio 20)
	if !p.DeleteRule(old) {
		t.Fatal("delete failed")
	}
	p.MustAddRule(2, MustParseMatch("tp_dst=80"), 10, []Action{Output(7)}, NoTable)

	evicted, work := vs.Revalidate()
	if evicted != 1 || work == 0 {
		t.Fatalf("evicted=%d work=%d", evicted, work)
	}
	r, err := vs.Process(demoKey(1, 80), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Error("stale entry served after revalidation")
	}
	if r.Verdict.Port != 7 {
		t.Errorf("new rule not in effect: %v", r.Verdict)
	}
}

func TestVSwitchIdleExpiry(t *testing.T) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64},
		WithMaxIdle(100))
	if _, err := vs.Process(demoKey(1, 80), 0); err != nil {
		t.Fatal(err)
	}
	if n := vs.ExpireIdle(50); n != 0 {
		t.Errorf("premature expiry: %d", n)
	}
	if n := vs.ExpireIdle(500); n == 0 {
		t.Error("stale entries must expire")
	}
	// Without WithMaxIdle it is a no-op.
	vs2 := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64})
	vs2.Process(demoKey(1, 80), 0)
	if vs2.ExpireIdle(1<<60) != 0 {
		t.Error("expiry without max-idle must be a no-op")
	}
}

func TestStandardPipelinesExposed(t *testing.T) {
	if len(StandardPipelines()) != 5 {
		t.Error("expected the five Table 1 pipelines")
	}
	if s, ok := PipelineByName("OLS"); !ok || s.NumTables() != 30 {
		t.Error("PipelineByName broken")
	}
}

func TestResourceEstimateExposed(t *testing.T) {
	r := EstimateResources(4, 8192)
	if !r.Feasible || r.PowerW != 38 {
		t.Errorf("prototype estimate = %+v", r)
	}
}

func TestDeviceFacade(t *testing.T) {
	p := buildDemoPipeline()
	cache := NewCache(p, CacheConfig{NumTables: 3, TableCapacity: 64})
	dev := NewDevice(DeviceConfig{}, cache)
	res := dev.Receive(demoKey(1, 80), 100, 0)
	if res.Hit {
		t.Error("cold device cannot hit")
	}
	tr := p.MustProcess(demoKey(1, 80))
	if _, err := cache.Insert(tr, 0); err != nil {
		t.Fatal(err)
	}
	res = dev.Receive(demoKey(2, 80), 100, 1)
	if !res.Hit || res.Verdict.Port != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestVSwitchMicroflowTier(t *testing.T) {
	vs := NewVSwitch(buildDemoPipeline(), CacheConfig{NumTables: 3, TableCapacity: 64},
		WithMicroflow(128))
	// First packet: slowpath, memoized.
	if _, err := vs.Process(demoKey(1, 80), 0); err != nil {
		t.Fatal(err)
	}
	// Exact repeat: microflow hit.
	r, err := vs.Process(demoKey(1, 80), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.MicroflowHit || !r.CacheHit {
		t.Errorf("expected microflow hit: %+v", r)
	}
	// Same megaflow, different host: main cache hit, then memoized.
	r, err = vs.Process(demoKey(2, 80), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.MicroflowHit || !r.CacheHit {
		t.Errorf("expected main-cache hit: %+v", r)
	}
	r, _ = vs.Process(demoKey(2, 80), 3)
	if !r.MicroflowHit {
		t.Error("second exact packet should hit microflow")
	}
	st := vs.Stats()
	// Tiers are disjoint: 4 packets = 2 microflow hits + 1 main-cache hit
	// + 1 miss.
	if st.MicroflowHits != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5 (main cache only)", got)
	}
	if got := st.TotalHitRate(); got != 0.75 {
		t.Errorf("TotalHitRate = %v, want 0.75 (any cache tier)", got)
	}
	// Rule change: revalidation must also flush the microflow tier.
	p := vs.Pipeline()
	old := p.Table(2).Rules()[1]
	p.DeleteRule(old)
	p.MustAddRule(2, MustParseMatch("tp_dst=80"), 10, []Action{Output(7)}, NoTable)
	vs.Revalidate()
	r, err = vs.Process(demoKey(1, 80), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.MicroflowHit {
		t.Error("stale microflow entry served after revalidation")
	}
	if r.Verdict.Port != 7 {
		t.Errorf("new rule not in effect: %v", r.Verdict)
	}
}
