GO ?= go

.PHONY: ci build test race vet fmt-check bench

## ci: the standard verification gate — vet, build, race-enabled tests,
## and a gofmt cleanliness check. Run before every commit.
ci: vet build race fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run xxx -bench . -benchmem .
