GO ?= go

.PHONY: ci build test race vet lint lint-json suppress-check fmt-check bench bench-gate bench-json fuzz fuzz-regress

## ci: the standard verification gate — vet, build, race-enabled tests,
## the project linter, a gofmt cleanliness check, the suppression audit,
## and the checked-in fuzz corpus replayed as regression tests. Run
## before every commit.
ci: vet build race lint suppress-check fmt-check fuzz-regress

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint: gflint, the project-specific analyzer suite (hotalloc, hotcall,
## goroleak, atomicmix, lockdiscipline, detrand). Separate from vet so
## generic and project-invariant failures are distinguishable. Builds the
## binary once (the suite shares one type-checked program; `go run` would
## rebuild per invocation), prints the per-analyzer coverage summary, and
## regenerates the checked-in HOTPATH.md certification report — commit it
## when it changes. Exit 1 means findings; exit 2 means gflint itself
## could not load or parse the module.
lint:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/gflint ./cmd/gflint && \
	$$tmp/gflint -summary -hotcert HOTPATH.md ./...

## lint-json: the same run as a machine-readable artifact (findings plus
## per-analyzer coverage) in gflint.json, for CI upload. Exit status
## propagates like lint's.
lint-json:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/gflint ./cmd/gflint && \
	$$tmp/gflint -json ./... > gflint.json; \
	status=$$?; echo "wrote gflint.json"; exit $$status

## suppress-check: audit //gflint:ignore suppressions. Production code
## carries none (TestModuleClean enforces zero); any that ever appear
## must name an analyzer and a reason — a bare ignore fails here. The
## testdata fixtures are exempt: they exercise the directive itself.
suppress-check:
	@out=$$(grep -rn --include='*.go' '//gflint:ignore' . | grep -v '/testdata/' | \
		grep -vE '//.*//gflint:ignore' | grep -v '".*//gflint:ignore' | \
		grep -vE '//gflint:ignore [a-z]+ [^ ]+'); \
	if [ -n "$$out" ]; then \
		echo "reason-less //gflint:ignore (format: //gflint:ignore <analyzer> <reason>):"; \
		echo "$$out"; exit 1; fi

## fmt-check: testdata fixtures are excluded — they intentionally contain
## findings and `// want` annotations laid out for the analyzer tests.
fmt-check:
	@out=$$(find . -name '*.go' -not -path '*/testdata/*' | xargs gofmt -l); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

## bench-gate: wall-clock performance floors, opt-in (not part of `test`),
## gated by GF_BENCH_GATE=1:
##   - SubmitBatch at the default batch size must stay at least 2x faster
##     per packet than per-packet Submit on the warmed service pipeline.
##   - latency attribution (histograms + flight recorder, the default
##     config) must cost at most 5% over a NoLatency service on the same
##     batched datapath, at 0 allocs/op.
##   - the fused-probe classifier must beat the map-backed baseline by at
##     least 1.4x on the cold high-mask-diversity slow-path sweep, at zero
##     allocations.
##   - during a cold-flow storm, a warm flow's p99 blocking-submit latency
##     with the async upcall offload must be at least 2x better than the
##     same workload processed inline (head-of-line blocking floor).
##   - connection tracking must cost at most 5% on stateless traffic: a
##     conntrack-enabled service pushing plain TCP flows through a
##     stateless pipeline vs the identical service with tracking off, at
##     0 allocs/op.
##   - RSS wire-hash sharding must scale: 2 shards must deliver at least
##     1.5x single-shard throughput (measured wall clock on >=4 cpus,
##     pipeline-bound model from measured stage costs otherwise), and the
##     RSS 5-tuple extractor must run at 0 allocs/op.
bench-gate:
	GF_BENCH_GATE=1 $(GO) test -run TestBatchThroughputGate -count=1 -v ./service
	GF_BENCH_GATE=1 $(GO) test -run TestLatencyOverheadGate -count=1 -v ./service
	GF_BENCH_GATE=1 $(GO) test -run TestSlowpathProbeGate -count=1 -v ./internal/tss
	GF_BENCH_GATE=1 $(GO) test -run TestUpcallHOLGate -count=1 -v ./service
	GF_BENCH_GATE=1 $(GO) test -run TestConntrackOverheadGate -count=1 -v ./service
	GF_BENCH_GATE=1 $(GO) test -run TestShardScalingGate -count=1 -v ./service

## bench-json: regenerate the checked-in benchmark reports:
##   - BENCH_slowpath.json — wall-clock slow-path (cold caches, low
##     locality, high mask diversity) and hit-path (warm) per-packet cost
##     on both backends, with allocs/op and hit rates.
##   - BENCH_latency.json — per-tier latency percentile ladders
##     (p50/p90/p99/p999) from the attribution layer under a warm steady
##     state and a cold-start storm, with flight-recorder counters.
##   - BENCH_upcall.json — warm-flow latency ladder under a cold-flow
##     storm, inline vs async upcall offload, with upcall counters.
##   - BENCH_dnslb.json — the stateful DNS load-balancer scenario
##     (conntrack, DNAT pool pinning, ct_state pipeline, epoch
##     invalidation) on both cache backends, with conntrack counters.
##   - BENCH_shards.json — RSS wire-hash sharding at 1/2/4/8 shards on
##     stateless and NAT-stateful wire mixes: measured ns/pkt, per-shard
##     packet spread, stage costs (t_submit/t_worker), and the
##     pipeline-bound modeled throughput ladder.
bench-json:
	$(GO) run ./cmd/gigabench -exp slowpath -flows 20000 -json BENCH_slowpath.json
	$(GO) run ./cmd/gigabench -exp latency -flows 20000 -json BENCH_latency.json
	$(GO) run ./cmd/gigabench -exp upcall -json BENCH_upcall.json
	$(GO) run ./cmd/gigabench -exp dnslb -json BENCH_dnslb.json
	$(GO) run ./cmd/gigabench -exp shards -json BENCH_shards.json

## fuzz-regress: replay the checked-in seed corpora (testdata/fuzz)
## through the decoder and RSS-extractor fuzz targets in plain-test mode
## — fast, deterministic, part of ci. FuzzRSSHash doubles as the
## differential oracle: extractor output must agree with the full decoder
## on every corpus input.
fuzz-regress:
	$(GO) test -run 'FuzzDecode|FuzzRSSHash' ./internal/packet

## fuzz: actively fuzz the frame decoder for a short burst. New crashers
## land in internal/packet/testdata/fuzz/FuzzDecode — check them in.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 30s ./internal/packet
