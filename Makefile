GO ?= go

.PHONY: ci build test race vet lint fmt-check bench

## ci: the standard verification gate — vet, build, race-enabled tests,
## the project linter, and a gofmt cleanliness check. Run before every
## commit.
ci: vet build race lint fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint: gflint, the project-specific analyzer suite (hotalloc, atomicmix,
## lockdiscipline, detrand). Separate from vet so generic and
## project-invariant failures are distinguishable.
lint:
	$(GO) run ./cmd/gflint ./...

## fmt-check: testdata fixtures are excluded — they intentionally contain
## findings and `// want` annotations laid out for the analyzer tests.
fmt-check:
	@out=$$(find . -name '*.go' -not -path '*/testdata/*' | xargs gofmt -l); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run xxx -bench . -benchmem ./...
