GO ?= go

.PHONY: ci build test race vet lint fmt-check bench fuzz fuzz-regress

## ci: the standard verification gate — vet, build, race-enabled tests,
## the project linter, a gofmt cleanliness check, and the checked-in fuzz
## corpus replayed as regression tests. Run before every commit.
ci: vet build race lint fmt-check fuzz-regress

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint: gflint, the project-specific analyzer suite (hotalloc, atomicmix,
## lockdiscipline, detrand). Separate from vet so generic and
## project-invariant failures are distinguishable.
lint:
	$(GO) run ./cmd/gflint ./...

## fmt-check: testdata fixtures are excluded — they intentionally contain
## findings and `// want` annotations laid out for the analyzer tests.
fmt-check:
	@out=$$(find . -name '*.go' -not -path '*/testdata/*' | xargs gofmt -l); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

## fuzz-regress: replay the checked-in seed corpus (testdata/fuzz) through
## the decoder fuzz target in plain-test mode — fast, deterministic, part
## of ci.
fuzz-regress:
	$(GO) test -run FuzzDecode ./internal/packet

## fuzz: actively fuzz the frame decoder for a short burst. New crashers
## land in internal/packet/testdata/fuzz/FuzzDecode — check them in.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 30s ./internal/packet
