package gigaflow

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// toggles one mechanism and reports the effect as benchmark metrics:
//
//	go test -bench=Ablation -v
import (
	"testing"

	"gigaflow/internal/flow"
	gfcache "gigaflow/internal/gigaflow"
	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/traffic"
)

func ablationWorkload(b *testing.B, ctxs int) (*pipebench.Workload, []traffic.Packet) {
	b.Helper()
	cfg := pipebench.PaperConfig(pipelines.PSC, 1)
	cfg.NumChains = 30000
	if ctxs > 0 {
		cfg.Contexts = ctxs
	}
	w, err := pipebench.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w, sim.BuildTrace(w, 20000, traffic.HighLocality, 3)
}

// BenchmarkAblation_EvictionPolicy compares LRU eviction against
// reject-on-full under capacity pressure: LRU keeps hot sub-traversals
// resident; rejection freezes whatever arrived first.
func BenchmarkAblation_EvictionPolicy(b *testing.B) {
	w, trace := ablationWorkload(b, 0)
	run := func(noLRU bool) float64 {
		c := gfcache.New(w.Pipeline, gfcache.Config{NumTables: 4, TableCapacity: 512, NoLRUEviction: noLRU})
		for i := range trace {
			if r := c.Lookup(trace[i].Key, trace[i].Time); !r.Hit {
				tr, err := w.Pipeline.Process(trace[i].Key)
				if err != nil {
					b.Fatal(err)
				}
				c.Insert(tr, trace[i].Time) // rejection is an acceptable outcome
			}
		}
		st := c.Stats()
		return 100 * st.HitRate()
	}
	lru, reject := run(false), run(true)
	b.Logf("tiny cache (4x512): LRU hit %.1f%% vs reject-on-full %.1f%%", lru, reject)
	b.ReportMetric(lru, "lru_hit_%")
	b.ReportMetric(reject, "reject_hit_%")
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblation_AdaptiveFallback measures §7's profile-guided fallback
// on a zero-sharing workload: adaptation should cut entry consumption
// (whole traversals need 1 entry instead of K) without losing hits.
func BenchmarkAblation_AdaptiveFallback(b *testing.B) {
	p := buildNoSharePipelineRoot(3000)
	run := func(adaptive bool) (hitPct float64, entries int) {
		c := gfcache.New(p, gfcache.Config{
			NumTables: 3, TableCapacity: 8192, Adaptive: adaptive,
			AdaptiveTuning: gfcache.AdaptiveConfig{WarmupInstalls: 200, Alpha: 0.05},
		})
		for rep := 0; rep < 2; rep++ {
			for i := uint64(0); i < 3000; i++ {
				k := noShareKeyRoot(i)
				if r := c.Lookup(k, int64(i)); !r.Hit {
					tr := p.MustProcess(k)
					c.Insert(tr, int64(i))
				}
			}
		}
		st := c.Stats()
		return 100 * st.HitRate(), c.Len()
	}
	offHit, offEntries := run(false)
	onHit, onEntries := run(true)
	b.Logf("zero-sharing: adaptive off %.1f%% / %d entries, on %.1f%% / %d entries",
		offHit, offEntries, onHit, onEntries)
	b.ReportMetric(float64(offEntries), "entries_off")
	b.ReportMetric(float64(onEntries), "entries_on")
	if onEntries >= offEntries {
		b.Errorf("adaptation should reduce entries under zero sharing: %d vs %d", onEntries, offEntries)
	}
	if onHit < offHit-1 {
		b.Errorf("adaptation lost hits: %.1f vs %.1f", onHit, offHit)
	}
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblation_ContextDiversity sweeps the L2-context pool size: the
// workload-structure knob behind the cross-product (DESIGN.md §3). More
// contexts multiply Megaflow demand while Gigaflow entry demand grows only
// additively.
func BenchmarkAblation_ContextDiversity(b *testing.B) {
	for _, ctxs := range []int{8, 64, 512} {
		w, trace := ablationWorkload(b, ctxs)
		gf, err := sim.Run(w, trace, sim.Config{Kind: sim.Gigaflow, NumTables: 4, TableCapacity: 8192, Offloaded: true})
		if err != nil {
			b.Fatal(err)
		}
		mf, err := sim.Run(w, trace, sim.Config{Kind: sim.Megaflow, MegaflowCapacity: 32768, Offloaded: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("contexts=%3d: GF %.1f%% (%d entries) vs MF %.1f%% (%d entries)",
			ctxs, 100*gf.HitRate(), gf.Entries, 100*mf.HitRate(), mf.Entries)
	}
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblation_EthTypeExclusion quantifies the AnalysisFields rule on
// two contrasting pipelines. Including eth_type has two pipeline-dependent
// failure modes: on ANT (where IP/proto/ACL stages all match the
// EtherType) it glues the whole traversal into one oversized segment,
// concentrating all diversity into one table; on PSC it does the opposite
// — narrow ethtype-only "validate" stages become hard boundaries instead
// of merging freely, inflating the partition. Excluding it avoids both.
func BenchmarkAblation_EthTypeExclusion(b *testing.B) {
	for _, name := range []string{"PSC", "ANT"} {
		spec, _ := pipelines.ByName(name)
		cfg := pipebench.PaperConfig(spec, 1)
		cfg.NumChains = 20000
		w, err := pipebench.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		avgSegments := func(analysis flow.FieldSet) (segs float64, maxSeg float64) {
			total, n, maxLen := 0, 0, 0
			for i, c := range w.Chains {
				if i >= 500 {
					break
				}
				tr := w.Pipeline.MustProcess(c.Rep)
				fields := make([]flow.FieldSet, tr.Len())
				for s := 0; s < tr.Len(); s++ {
					fields[s] = tr.StepFields(s).Intersect(analysis)
				}
				part := gfcache.DisjointPartition(fields, 4)
				total += len(part)
				for _, seg := range part {
					if seg.Len() > maxLen {
						maxLen = seg.Len()
					}
				}
				n++
			}
			return float64(total) / float64(n), float64(maxLen)
		}
		with, withMax := avgSegments(flow.HeaderFields) // eth_type included
		without, woMax := avgSegments(gfcache.AnalysisFields)
		b.Logf("%s: avg segments %.2f (max span %.0f) without eth_type vs %.2f (max span %.0f) with it",
			name, without, woMax, with, withMax)
	}
	for i := 0; i < b.N; i++ {
	}
}

// --- zero-sharing fixture shared with the adaptive ablation ---

func buildNoSharePipelineRoot(n uint64) *Pipeline {
	p := NewPipeline("noshare")
	p.AddTable(0, "a", NewFieldSet(FieldEthDst))
	p.AddTable(1, "b", NewFieldSet(FieldIPDst))
	p.AddTable(2, "c", NewFieldSet(FieldTpSrc))
	for i := uint64(0); i < n; i++ {
		p.MustAddRule(0, MatchAll().WithField(FieldEthDst, i), 10, nil, 1)
		p.MustAddRule(1, MatchAll().WithField(FieldIPDst, i), 10, nil, 2)
		p.MustAddRule(2, MatchAll().WithField(FieldTpSrc, i), 10, []Action{Output(1)}, NoTable)
	}
	return p
}

func noShareKeyRoot(i uint64) Key {
	return Key{}.With(FieldEthDst, i).With(FieldIPDst, i).With(FieldTpSrc, i)
}

// BenchmarkAblation_PreciseUnwildcarding compares OVS's tuple-union
// unwildcarding against minimal-bit (§4.2.3-example) unwildcarding:
// precise megaflows are wider, so the Megaflow baseline needs fewer
// entries and hits more — at the cost of O(outranking rules) slowpath
// work per lookup. The Gigaflow-vs-Megaflow ordering must survive either
// way.
func BenchmarkAblation_PreciseUnwildcarding(b *testing.B) {
	for _, precise := range []bool{false, true} {
		cfg := pipebench.PaperConfig(pipelines.PSC, 1)
		cfg.NumChains = 20000
		cfg.NativePrefixes = true // prefix chains give precise mode room to matter
		cfg.PreciseWildcards = precise
		w, err := pipebench.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		trace := sim.BuildTrace(w, 15000, traffic.HighLocality, 3)
		gf, err := sim.Run(w, trace, sim.Config{Kind: sim.Gigaflow, NumTables: 4, TableCapacity: 8192, Offloaded: true})
		if err != nil {
			b.Fatal(err)
		}
		mf, err := sim.Run(w, trace, sim.Config{Kind: sim.Megaflow, MegaflowCapacity: 32768, Offloaded: true})
		if err != nil {
			b.Fatal(err)
		}
		mode := "tuple-union"
		if precise {
			mode = "minimal-bit"
		}
		b.Logf("%-12s GF hit %.1f%% (%d entries) | MF hit %.1f%% (%d entries)",
			mode, 100*gf.HitRate(), gf.Entries, 100*mf.HitRate(), mf.Entries)
		if gf.HitRate() < mf.HitRate()-0.02 {
			b.Errorf("%s: gigaflow lost its edge: %.3f vs %.3f", mode, gf.HitRate(), mf.HitRate())
		}
	}
	for i := 0; i < b.N; i++ {
	}
}
