// Command pipebench generates multi-table rulesets and traffic traces for
// a chosen real-world pipeline (§6.1's Pipebench tool) and writes them as
// JSON, for inspection or for driving external tools.
//
// Usage:
//
//	pipebench -pipeline PSC -chains 5000 -flows 20000 -locality high -o workload.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/traffic"
)

// fileOutput is the JSON document pipebench writes.
type fileOutput struct {
	Pipeline   string       `json:"pipeline"`
	Tables     []tableJSON  `json:"tables"`
	NumRules   int          `json:"num_rules"`
	Chains     int          `json:"chains"`
	Rules      []ruleJSON   `json:"rules"`
	Flows      []flowJSON   `json:"flows,omitempty"`
	NumPackets int          `json:"num_packets"`
	Packets    []packetJSON `json:"packets,omitempty"`
}

type tableJSON struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Fields string `json:"fields"`
	Rules  int    `json:"rules"`
}

type ruleJSON struct {
	Table    int    `json:"table"`
	Priority int    `json:"priority"`
	Match    string `json:"match"`
	Actions  string `json:"actions"`
	Next     int    `json:"next"`
}

type flowJSON struct {
	Key     string `json:"key"`
	Packets int    `json:"packets"`
	StartNs int64  `json:"start_ns"`
}

type packetJSON struct {
	TimeNs int64  `json:"time_ns"`
	Key    string `json:"key"`
	Size   int    `json:"size"`
	FlowID int    `json:"flow"`
}

func main() {
	var (
		pipeName = flag.String("pipeline", "PSC", "pipeline (OFD|PSC|OLS|ANT|OTL)")
		chains   = flag.Int("chains", 5000, "rule chains to install")
		flows    = flag.Int("flows", 0, "flows to generate (0: ruleset only)")
		locality = flag.String("locality", "high", "traffic locality (high|low)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "-", "output file (- for stdout)")
		packets  = flag.Bool("packets", false, "include the expanded packet trace")
	)
	flag.Parse()

	spec, ok := pipelines.ByName(*pipeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "pipebench: unknown pipeline %q\n", *pipeName)
		os.Exit(2)
	}
	cfg := pipebench.PaperConfig(spec, *seed)
	cfg.NumChains = *chains
	w, err := pipebench.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
		os.Exit(1)
	}

	doc := fileOutput{Pipeline: spec.Name, NumRules: w.Pipeline.NumRules(), Chains: len(w.Chains)}
	for _, t := range w.Pipeline.Tables() {
		doc.Tables = append(doc.Tables, tableJSON{ID: t.ID, Name: t.Name, Fields: t.MatchFields.String(), Rules: t.Len()})
		for _, r := range t.Rules() {
			doc.Rules = append(doc.Rules, ruleJSON{
				Table: t.ID, Priority: r.Priority, Match: r.Match.String(),
				Actions: fmt.Sprintf("%v", r.Actions), Next: r.Next,
			})
		}
	}

	if *flows > 0 {
		loc := traffic.HighLocality
		if *locality == "low" {
			loc = traffic.LowLocality
		}
		tcfg := traffic.Config{Seed: *seed + 2, NumFlows: *flows}
		fl := w.Flows(tcfg, loc)
		for _, f := range fl {
			doc.Flows = append(doc.Flows, flowJSON{Key: f.Key.String(), Packets: f.Packets, StartNs: f.Start})
		}
		trace := traffic.Expand(tcfg, fl)
		doc.NumPackets = len(trace)
		if *packets {
			for _, p := range trace {
				doc.Packets = append(doc.Packets, packetJSON{TimeNs: p.Time, Key: p.Key.String(), Size: p.Size, FlowID: p.FlowID})
			}
		}
	}

	var w2 *os.File
	if *out == "-" {
		w2 = os.Stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w2 = f
	}
	enc := json.NewEncoder(w2)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
		os.Exit(1)
	}
}
