package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gigaflow"
	"gigaflow/internal/experiments"
	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
)

// slowpathRow is one measured (backend, phase) cell of the slow-path
// experiment, serialized into BENCH_slowpath.json by -json.
type slowpathRow struct {
	Backend     string  `json:"backend"` // "gigaflow" | "megaflow"
	Phase       string  `json:"phase"`   // "cold" (slow-path heavy) | "warm" (hit path)
	Packets     int     `json:"packets"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HitRate     float64 `json:"hit_rate"`       // combined hierarchy rate over the phase
	MicroRate   float64 `json:"microflow_rate"` // share absorbed by the exact-match tier
}

// slowpathReport is the BENCH_slowpath.json document.
type slowpathReport struct {
	Pipeline string        `json:"pipeline"`
	Flows    int           `json:"flows"`
	Seed     int64         `json:"seed"`
	Rows     []slowpathRow `json:"rows"`
}

// runSlowpath measures real wall-clock per-packet cost of the matching
// substrate on both backends over an identical trace, from cold caches,
// with the mask diversity of a paper pipeline under low locality — the
// regime where lookups sweep many tuples and most packets take the
// slowpath. The first replay is the cold (slow-path-heavy) phase; an
// immediate second replay of the same trace is the warm (hit-path) phase.
// Allocations are counted with runtime.MemStats across each phase.
func runSlowpath(p experiments.Params, jsonPath string) (*stats.Table, error) {
	spec := pipelines.PSC
	if len(p.Pipelines) > 0 {
		spec = p.Pipelines[0]
	}
	cfg := pipebench.PaperConfig(spec, p.Seed)
	if p.NumChains > 0 {
		cfg.NumChains = p.NumChains
	}
	w, err := pipebench.Generate(cfg)
	if err != nil {
		return nil, err
	}
	flows := p.NumFlows
	if flows == 0 {
		flows = 100000
	}
	trace := sim.BuildTrace(w, flows, traffic.LowLocality, p.Seed+2)

	report := slowpathReport{Pipeline: spec.Name, Flows: flows, Seed: p.Seed}
	for _, backend := range []string{"gigaflow", "megaflow"} {
		var v *gigaflow.VSwitch
		if backend == "gigaflow" {
			v = gigaflow.NewVSwitch(w.Pipeline,
				gigaflow.CacheConfig{NumTables: p.GFTables, TableCapacity: p.GFTableCap},
				gigaflow.WithMicroflow(1<<15))
		} else {
			v = gigaflow.NewVSwitch(w.Pipeline,
				gigaflow.CacheConfig{NumTables: 1, TableCapacity: 1},
				gigaflow.WithMegaflowBackend(p.MFCap),
				gigaflow.WithMicroflow(1<<15))
		}
		for _, phase := range []string{"cold", "warm"} {
			before := v.Stats()
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			for i := range trace {
				if _, err := v.Process(trace[i].Key, trace[i].Time); err != nil {
					return nil, fmt.Errorf("slowpath: %s/%s: %v", backend, phase, err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			after := v.Stats()
			n := float64(len(trace))
			d := gigaflow.VSwitchStats{
				Packets:       after.Packets - before.Packets,
				MicroflowHits: after.MicroflowHits - before.MicroflowHits,
				CacheHits:     after.CacheHits - before.CacheHits,
				CacheMisses:   after.CacheMisses - before.CacheMisses,
			}
			report.Rows = append(report.Rows, slowpathRow{
				Backend:     backend,
				Phase:       phase,
				Packets:     len(trace),
				NsPerOp:     float64(elapsed.Nanoseconds()) / n,
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / n,
				HitRate:     d.TotalHitRate(),
				MicroRate:   float64(d.MicroflowHits) / n,
			})
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &stats.Table{
		Title:   fmt.Sprintf("Slow-path cost (wall clock, %s, low locality, %d flows)", spec.Name, flows),
		Headers: []string{"backend", "phase", "packets", "ns/pkt", "allocs/pkt", "hit rate"},
	}
	for _, r := range report.Rows {
		t.AddRow(r.Backend, r.Phase, r.Packets,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.2f", r.AllocsPerOp),
			fmt.Sprintf("%.1f%%", 100*r.HitRate))
	}
	return t, nil
}
