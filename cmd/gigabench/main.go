// Command gigabench regenerates the paper's tables and figures. Each
// experiment builds its workload with Pipebench, runs the simulator, and
// prints the same rows/series the paper reports.
//
// Usage:
//
//	gigabench -exp fig8                # one experiment
//	gigabench -exp all                 # everything (several minutes)
//	gigabench -exp fig8 -flows 20000   # reduced scale
//	gigabench -list                    # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gigaflow/internal/experiments"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/stats"
	"gigaflow/internal/telemetry"
)

var experimentOrder = []string{
	"tab1", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "tab2", "fig16", "fig17", "fig18",
	"sec636", "fig19", "svcbatch", "slowpath", "latency", "upcall",
	"dnslb", "shards",
}

// jsonOut is the -json flag: when the slowpath, latency, or upcall
// experiment runs, it writes its machine-readable report
// (BENCH_slowpath.json / BENCH_latency.json / BENCH_upcall.json) to
// this path. Run those experiments individually when using -json —
// under -exp all they would overwrite each other.
var jsonOut string

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (or 'all')")
		list      = flag.Bool("list", false, "list experiment ids")
		seed      = flag.Int64("seed", 1, "workload seed")
		flows     = flag.Int("flows", 100000, "unique flows per trace")
		chains    = flag.Int("chains", 0, "rule chains (0: paper default)")
		gfTables  = flag.Int("gf-tables", 4, "Gigaflow tables (K)")
		gfCap     = flag.Int("gf-cap", 8192, "Gigaflow per-table capacity")
		mfCap     = flag.Int("mf-cap", 32768, "Megaflow capacity")
		pipeNames = flag.String("pipelines", "", "comma-separated pipeline subset (e.g. PSC,OLS)")
		telem     = flag.Bool("telemetry", false, "dump a per-experiment metrics registry (Prometheus text) at exit")
	)
	flag.StringVar(&jsonOut, "json", "", "write the slowpath/latency experiment's report to this JSON file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experimentOrder, "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: gigabench -exp <id|all> (use -list for ids)")
		os.Exit(2)
	}

	p := experiments.Params{
		Seed:       *seed,
		NumFlows:   *flows,
		NumChains:  *chains,
		GFTables:   *gfTables,
		GFTableCap: *gfCap,
		MFCap:      *mfCap,
	}
	if *pipeNames != "" {
		for _, name := range strings.Split(*pipeNames, ",") {
			spec, ok := pipelines.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "gigabench: unknown pipeline %q\n", name)
				os.Exit(2)
			}
			p.Pipelines = append(p.Pipelines, spec)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	reg := telemetry.NewRegistry()
	durations := reg.HistogramVec("gigabench_experiment_duration_ns",
		"Wall-clock duration per experiment.", "experiment")
	completed := reg.Counter("gigabench_experiments_total", "Experiments completed.")
	for _, id := range ids {
		start := time.Now()
		if err := run(id, p); err != nil {
			fmt.Fprintf(os.Stderr, "gigabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		durations.With(id).Observe(float64(time.Since(start).Nanoseconds()))
		completed.Inc()
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
	if *telem {
		fmt.Println("--- telemetry ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gigabench: %v\n", err)
			os.Exit(1)
		}
	}
}

// endToEndCache shares the §6.2 grid across fig8..fig13/tab2 in an
// `-exp all` run.
var endToEndCache *experiments.EndToEnd

func endToEnd(p experiments.Params) (*experiments.EndToEnd, error) {
	if endToEndCache != nil {
		return endToEndCache, nil
	}
	e, err := experiments.RunEndToEnd(p)
	if err == nil {
		endToEndCache = e
	}
	return e, err
}

var tableSweepCache *experiments.TableSweep

func tableSweep(p experiments.Params) (*experiments.TableSweep, error) {
	if tableSweepCache != nil {
		return tableSweepCache, nil
	}
	s, err := experiments.RunTableSweep(p)
	if err == nil {
		tableSweepCache = s
	}
	return s, err
}

func run(id string, p experiments.Params) error {
	emit := func(t *stats.Table) { fmt.Println(t.Render()) }
	switch id {
	case "tab1":
		emit(experiments.Table1())
	case "fig3":
		t, err := experiments.Fig3(p)
		if err != nil {
			return err
		}
		emit(t)
	case "fig4":
		emit(experiments.Fig4(p))
	case "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "tab2":
		e, err := endToEnd(p)
		if err != nil {
			return err
		}
		switch id {
		case "fig8":
			emit(e.Fig8())
		case "fig9":
			emit(e.Fig9())
		case "fig10":
			emit(e.Fig10())
		case "fig11":
			emit(e.Fig11())
		case "fig12":
			emit(e.Fig12())
		case "fig13":
			emit(e.Fig13())
		case "tab2":
			emit(e.Table2())
		}
	case "fig14", "fig15":
		s, err := tableSweep(p)
		if err != nil {
			return err
		}
		if id == "fig14" {
			emit(s.Fig14())
		} else {
			emit(s.Fig15())
		}
	case "fig16":
		t, err := experiments.Fig16(p)
		if err != nil {
			return err
		}
		emit(t)
	case "fig17":
		t, err := experiments.Fig17(p)
		if err != nil {
			return err
		}
		emit(t)
	case "fig18":
		r, err := experiments.Fig18(p)
		if err != nil {
			return err
		}
		emit(r.Table())
	case "sec636":
		lat, reval, err := experiments.Sec636(p)
		if err != nil {
			return err
		}
		emit(lat)
		emit(reval)
	case "fig19":
		t, err := experiments.Fig19(p)
		if err != nil {
			return err
		}
		emit(t)
	case "svcbatch":
		t, err := runSvcBatch(p)
		if err != nil {
			return err
		}
		emit(t)
	case "slowpath":
		t, err := runSlowpath(p, jsonOut)
		if err != nil {
			return err
		}
		emit(t)
	case "latency":
		t, err := runLatency(p, jsonOut)
		if err != nil {
			return err
		}
		emit(t)
	case "upcall":
		t, err := runUpcall(p, jsonOut)
		if err != nil {
			return err
		}
		emit(t)
	case "dnslb":
		t, err := runDNSLB(p, jsonOut)
		if err != nil {
			return err
		}
		emit(t)
	case "shards":
		t, err := runShards(p, jsonOut)
		if err != nil {
			return err
		}
		emit(t)
	default:
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	return nil
}
