package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gigaflow"
	"gigaflow/internal/experiments"
	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/stats"
	"gigaflow/internal/telemetry"
	"gigaflow/internal/traffic"
)

// latencyRow is one (backend, phase, tier) percentile ladder of the
// latency experiment, serialized into BENCH_latency.json by -json.
type latencyRow struct {
	Backend string  `json:"backend"` // "gigaflow" | "megaflow"
	Phase   string  `json:"phase"`   // "cold_storm" | "warm"
	Tier    string  `json:"tier"`    // resolution tier (microflow/gigaflow/megaflow/slowpath)
	Count   uint64  `json:"count"`
	MeanNs  float64 `json:"mean_ns"`
	P50     float64 `json:"p50_ns"`
	P90     float64 `json:"p90_ns"`
	P99     float64 `json:"p99_ns"`
	P999    float64 `json:"p999_ns"`
	MaxNs   int64   `json:"max_ns"`
}

// latencyReport is the BENCH_latency.json document: the tail-latency
// trajectory every future perf PR extends. Latencies are real wall-clock
// nanoseconds measured by the VSwitch's latency recorder; packets are
// driven one per attribution batch, so every hit run spans exactly one
// packet (its span runs from the batch's wall anchor to the EndBatch
// clock read — recorder overhead included — so sub-clock-resolution
// hits can round to zero), and cold events are stamped exactly.
type latencyReport struct {
	Pipeline string       `json:"pipeline"`
	Flows    int          `json:"flows"`
	Seed     int64        `json:"seed"`
	Rows     []latencyRow `json:"rows"`
}

// runLatency replays the slow-path workload (paper pipeline, low
// locality) on both backends and reports per-tier latency percentile
// ladders for two regimes: the cold-start storm (first replay on empty
// caches — every flow upcalls) and the warm steady state (second replay
// of the same trace). The recorder resets between phases so each phase
// reports its own ladder.
func runLatency(p experiments.Params, jsonPath string) (*stats.Table, error) {
	spec := pipelines.PSC
	if len(p.Pipelines) > 0 {
		spec = p.Pipelines[0]
	}
	cfg := pipebench.PaperConfig(spec, p.Seed)
	if p.NumChains > 0 {
		cfg.NumChains = p.NumChains
	}
	w, err := pipebench.Generate(cfg)
	if err != nil {
		return nil, err
	}
	flows := p.NumFlows
	if flows == 0 {
		flows = 100000
	}
	trace := sim.BuildTrace(w, flows, traffic.LowLocality, p.Seed+2)

	report := latencyReport{Pipeline: spec.Name, Flows: flows, Seed: p.Seed}
	for _, backend := range []string{"gigaflow", "megaflow"} {
		rec := telemetry.NewLatencyRecorder(1<<12, 0)
		var v *gigaflow.VSwitch
		if backend == "gigaflow" {
			v = gigaflow.NewVSwitch(w.Pipeline,
				gigaflow.CacheConfig{NumTables: p.GFTables, TableCapacity: p.GFTableCap},
				gigaflow.WithMicroflow(1<<15),
				gigaflow.WithLatencyRecorder(rec))
		} else {
			v = gigaflow.NewVSwitch(w.Pipeline,
				gigaflow.CacheConfig{NumTables: 1, TableCapacity: 1},
				gigaflow.WithMegaflowBackend(p.MFCap),
				gigaflow.WithMicroflow(1<<15),
				gigaflow.WithLatencyRecorder(rec))
		}
		for _, phase := range []string{"cold_storm", "warm"} {
			rec.Reset()
			// Real wall clock, not the trace's virtual timestamps: the
			// recorder anchors batch offsets on the wall delta between
			// Process calls, so a synthetic clock running ahead of real
			// time would clamp every warm span to zero. Wall time also
			// keeps every flow inside its idle timeout, which is exactly
			// the steady state the warm phase wants to measure.
			for i := range trace {
				if _, err := v.Process(trace[i].Key, time.Now().UnixNano()); err != nil {
					return nil, fmt.Errorf("latency: %s/%s: %v", backend, phase, err)
				}
			}
			for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
				s := rec.Histogram(t).Snapshot()
				if s.Count == 0 {
					continue
				}
				report.Rows = append(report.Rows, latencyRow{
					Backend: backend,
					Phase:   phase,
					Tier:    t.String(),
					Count:   s.Count,
					MeanNs:  s.MeanNs,
					P50:     s.P50,
					P90:     s.P90,
					P99:     s.P99,
					P999:    s.P999,
					MaxNs:   s.MaxNs,
				})
			}
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &stats.Table{
		Title: fmt.Sprintf("Per-tier latency ladders (wall clock, %s, low locality, %d flows)",
			spec.Name, flows),
		Headers: []string{"backend", "phase", "tier", "count", "p50 ns", "p90 ns", "p99 ns", "p999 ns", "max ns"},
	}
	for _, r := range report.Rows {
		t.AddRow(r.Backend, r.Phase, r.Tier, r.Count,
			fmt.Sprintf("%.0f", r.P50),
			fmt.Sprintf("%.0f", r.P90),
			fmt.Sprintf("%.0f", r.P99),
			fmt.Sprintf("%.0f", r.P999),
			fmt.Sprintf("%d", r.MaxNs))
	}
	return t, nil
}
