package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"gigaflow"
	"gigaflow/internal/experiments"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/stats"
	"gigaflow/service"
)

// The dnslb scenario: a DNS virtual IP fronting a pool of resolvers.
// Clients send UDP DNS queries to VIP:53; the pipeline classifies the
// first packet, conntrack tracks the connection, and a dnat action pins
// the flow to one pool backend for its lifetime. Reply traffic from the
// backend matches on ct_state=+trk+rpl and is un-NATed back to the VIP
// by ct_nat before egressing toward the client — the client only ever
// sees the VIP. The scenario exercises every stateful-datapath feature
// at once: ct_state matching, per-connection NAT bindings, matching on
// NAT-rewritten fields in a later table, and the epoch invalidation
// that fires when the first reply establishes each connection.
const (
	dnslbVIP     = 0x0a090001 // 10.9.0.1
	dnslbPort    = 53
	dnslbOutPort = 1 // client-side egress port
)

// dnslbBackends is the resolver pool: distinct IPs AND distinct ports,
// so a wrong or missing port rewrite cannot masquerade as a correct one.
func dnslbBackends(n int) []gigaflow.NATTarget {
	ts := make([]gigaflow.NATTarget, n)
	for i := range ts {
		ts[i] = gigaflow.NATTarget{IP: 0x0a140001 + uint64(i), Port: 5301 + uint64(i)}
	}
	return ts
}

// dnslbPipeline builds the 4-table LB pipeline over the given pool.
//
//	classify: replies (+trk+rpl) → reverse; new/est queries to VIP:53 → lb
//	lb:       dnat(pool 1), then match the REWRITTEN destination
//	egress:   per-backend output port (proves the binding reached the key)
//	reverse:  ct_nat un-rewrites, egress toward the client
func dnslbPipeline(pool []gigaflow.NATTarget) *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("dnslb")
	p.AddTable(0, "classify", gigaflow.NewFieldSet(
		gigaflow.FieldEthType, gigaflow.FieldIPProto, gigaflow.FieldIPDst,
		gigaflow.FieldTpDst, gigaflow.FieldCtState))
	p.AddTable(1, "lb", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "egress", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(3, "reverse", gigaflow.NewFieldSet(gigaflow.FieldIPSrc))

	p.MustAddRule(0, gigaflow.MustParseMatch("eth_type=0x0800,ip_proto=17,ct_state=0x11/0x11"),
		20, nil, 3)
	p.MustAddRule(0, gigaflow.MustParseMatch(
		fmt.Sprintf("eth_type=0x0800,ip_proto=17,ip_dst=%d,tp_dst=%d,ct_state=0x01/0x11",
			uint64(dnslbVIP), dnslbPort)),
		10, nil, 1)
	p.MustAddRule(0, gigaflow.MustParseMatch("*"), 1,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)

	p.MustAddRule(1, gigaflow.MustParseMatch("*"), 10,
		[]gigaflow.Action{gigaflow.DNAT(1)}, 2)

	for i, t := range pool {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=%d", t.IP))
		p.MustAddRule(2, m, 10,
			[]gigaflow.Action{gigaflow.Output(uint16(100 + i))}, gigaflow.NoTable)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("*"), 1,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)

	p.MustAddRule(3, gigaflow.MustParseMatch("*"), 10,
		[]gigaflow.Action{gigaflow.CtNAT(), gigaflow.Output(dnslbOutPort)}, gigaflow.NoTable)

	p.SetNATPool(1, pool)
	return p
}

// dnslbRow is one backend mode's results in BENCH_dnslb.json.
type dnslbRow struct {
	Backend       string         `json:"backend"` // "gigaflow" | "megaflow"
	Packets       uint64         `json:"packets"`
	Queries       int            `json:"queries"`
	Replies       int            `json:"replies"`
	NsPerPkt      float64        `json:"ns_per_pkt"`
	MicroflowRate float64        `json:"microflow_hit_rate"`
	TotalHitRate  float64        `json:"total_hit_rate"`
	CtFastpath    uint64         `json:"ct_fastpath"`
	CtGuardFails  uint64         `json:"ct_guard_fails"`
	CtInvalidated uint64         `json:"ct_invalidated"`
	Pool          map[string]int `json:"pool_distribution"` // backend → pinned clients
}

// dnslbReport is the BENCH_dnslb.json document.
type dnslbReport struct {
	Clients   int        `json:"clients"`
	Rounds    int        `json:"rounds"`
	Backends  int        `json:"pool_size"`
	Seed      int64      `json:"seed"`
	DNSParsed int        `json:"dns_queries_parsed"`
	Rows      []dnslbRow `json:"rows"`
}

// dnslbClientKey is client i's query 5-tuple toward the VIP.
func dnslbClientKey(i int) gigaflow.Key {
	var k gigaflow.Key
	return k.With(gigaflow.FieldEthSrc, 0x02aabb000000|uint64(i)).
		With(gigaflow.FieldEthDst, 0x020000000001).
		With(gigaflow.FieldEthType, wire.EtherTypeIPv4).
		With(gigaflow.FieldIPSrc, 0x0a010000|uint64(i&0xffff)).
		With(gigaflow.FieldIPDst, dnslbVIP).
		With(gigaflow.FieldIPProto, wire.IPProtoUDP).
		With(gigaflow.FieldTpSrc, uint64(1024+i%40000)).
		With(gigaflow.FieldTpDst, dnslbPort)
}

// runDNSLB runs the DNS load-balancer scenario on both cache backends
// and writes BENCH_dnslb.json when -json is given.
func runDNSLB(p experiments.Params, jsonPath string) (*stats.Table, error) {
	const poolSize = 4
	const rounds = 4
	clients := p.NumFlows / 25
	if clients < 256 {
		clients = 256
	}
	if clients > 20000 {
		clients = 20000
	}
	pool := dnslbBackends(poolSize)
	ctx := context.Background()

	// Pre-build every client's query frame — a real DNS question riding
	// a UDP frame — and parse it back the way an LB frontend would, so
	// the scenario's ingestion path covers the DNS decoder too.
	frames := make([][]byte, clients)
	dnsParsed := 0
	for i := range frames {
		payload := wire.AppendDNSQuery(nil, uint16(i),
			fmt.Sprintf("c%d.pool.gigaflow.test", i))
		frames[i] = wire.EncodePayload(dnslbClientKey(i), payload)
		k, info := wire.Decode(frames[i], 0)
		if pl, ok := wire.UDPPayload(frames[i], info); ok {
			if q, ok := wire.DecodeDNS(pl); ok && !q.Response && q.QType == wire.DNSTypeA {
				dnsParsed++
			}
		}
		if k.Get(gigaflow.FieldIPDst) != dnslbVIP {
			return nil, fmt.Errorf("dnslb: frame %d decoded to wrong VIP", i)
		}
	}
	if dnsParsed != clients {
		return nil, fmt.Errorf("dnslb: parsed %d DNS queries, want %d", dnsParsed, clients)
	}

	runMode := func(backend service.Backend, name string) (dnslbRow, error) {
		row := dnslbRow{Backend: name, Pool: make(map[string]int)}
		cfg := service.Config{
			// Single worker keeps the backend comparison serial and the
			// per-packet costs directly comparable. Multi-worker NAT (the
			// partitioned pool + owner-map reply routing) is measured by
			// the shards experiment.
			Workers:           1,
			Backend:           backend,
			MicroflowCapacity: 4 * clients,
			QueueDepth:        1024,
			Conntrack:         service.ConntrackConfig{Enable: true, MaxConns: 2 * clients},
		}
		if backend == service.BackendMegaflow {
			cfg.MegaflowCapacity = p.MFCap
		} else {
			cfg.Cache = gigaflow.CacheConfig{NumTables: p.GFTables, TableCapacity: p.GFTableCap}
		}
		svc, err := service.New(dnslbPipeline(pool), cfg)
		if err != nil {
			return row, err
		}
		if err := svc.Start(ctx); err != nil {
			return row, err
		}
		defer svc.Close()

		// pinned[i] is the backend index client i's connection bound to;
		// -1 until the first query answers.
		pinned := make([]int, clients)
		for i := range pinned {
			pinned[i] = -1
		}
		reply := make([][]byte, clients)

		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i := 0; i < clients; i++ {
				res, err := svc.SubmitFrame(ctx, 0, frames[i])
				if err != nil || res.Err != nil {
					return row, fmt.Errorf("dnslb: query %d/%d: %v %v", r, i, err, res.Err)
				}
				row.Queries++
				if res.Verdict.Kind != gigaflow.VerdictOutput {
					return row, fmt.Errorf("dnslb: query %d/%d not forwarded: %v", r, i, res.Verdict)
				}
				b := int(res.Verdict.Port) - 100
				if b < 0 || b >= poolSize {
					return row, fmt.Errorf("dnslb: query %d/%d egressed on port %d", r, i, res.Verdict.Port)
				}
				if got := res.Final.Get(gigaflow.FieldIPDst); got != pool[b].IP ||
					res.Final.Get(gigaflow.FieldTpDst) != pool[b].Port {
					return row, fmt.Errorf("dnslb: query %d/%d rewritten to %x, want backend %d", r, i, got, b)
				}
				if pinned[i] == -1 {
					pinned[i] = b
					// The reply frame the pinned backend would send: the
					// translated tuple inverted.
					rk := dnslbClientKey(i)
					rk = rk.With(gigaflow.FieldEthSrc, rk.Get(gigaflow.FieldEthDst)).
						With(gigaflow.FieldEthDst, rk.Get(gigaflow.FieldEthSrc)).
						With(gigaflow.FieldIPSrc, pool[b].IP).
						With(gigaflow.FieldIPDst, dnslbClientKey(i).Get(gigaflow.FieldIPSrc)).
						With(gigaflow.FieldTpSrc, pool[b].Port).
						With(gigaflow.FieldTpDst, dnslbClientKey(i).Get(gigaflow.FieldTpSrc))
					reply[i] = wire.Encode(rk)
				} else if pinned[i] != b {
					return row, fmt.Errorf("dnslb: client %d rebound %d→%d mid-connection", i, pinned[i], b)
				}
			}
			for i := 0; i < clients; i++ {
				res, err := svc.SubmitFrame(ctx, 0, reply[i])
				if err != nil || res.Err != nil {
					return row, fmt.Errorf("dnslb: reply %d/%d: %v %v", r, i, err, res.Err)
				}
				row.Replies++
				if res.Verdict.Kind != gigaflow.VerdictOutput || res.Verdict.Port != dnslbOutPort {
					return row, fmt.Errorf("dnslb: reply %d/%d verdict %v, want output(%d)", r, i, res.Verdict, dnslbOutPort)
				}
				// The client must see the VIP, never the backend.
				if res.Final.Get(gigaflow.FieldIPSrc) != dnslbVIP ||
					res.Final.Get(gigaflow.FieldTpSrc) != dnslbPort {
					return row, fmt.Errorf("dnslb: reply %d/%d leaked backend address: src=%x:%d", r, i,
						res.Final.Get(gigaflow.FieldIPSrc), res.Final.Get(gigaflow.FieldTpSrc))
				}
			}
		}
		elapsed := time.Since(start)

		st, err := svc.Stats(ctx)
		if err != nil {
			return row, err
		}
		row.Packets = st.Packets
		row.NsPerPkt = float64(elapsed.Nanoseconds()) / float64(row.Queries+row.Replies)
		row.MicroflowRate = float64(st.MicroflowHits) / float64(st.Packets)
		row.TotalHitRate = st.TotalHitRate()
		row.CtFastpath = st.CtFastpath
		row.CtGuardFails = st.CtGuardFails
		row.CtInvalidated = st.CtInvalidated
		for i := 0; i < clients; i++ {
			t := pool[pinned[i]]
			row.Pool[fmt.Sprintf("%d.%d.%d.%d:%d",
				t.IP>>24&0xff, t.IP>>16&0xff, t.IP>>8&0xff, t.IP&0xff, t.Port)]++
		}
		return row, nil
	}

	gfRow, err := runMode(service.BackendGigaflow, "gigaflow")
	if err != nil {
		return nil, err
	}
	mfRow, err := runMode(service.BackendMegaflow, "megaflow")
	if err != nil {
		return nil, err
	}
	report := dnslbReport{
		Clients:   clients,
		Rounds:    rounds,
		Backends:  poolSize,
		Seed:      p.Seed,
		DNSParsed: dnsParsed,
		Rows:      []dnslbRow{gfRow, mfRow},
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &stats.Table{
		Title: fmt.Sprintf("DNS LB: %d clients x %d query/reply rounds, %d-backend pool",
			clients, rounds, poolSize),
		Headers: []string{"backend", "packets", "ns/pkt", "uflow hit", "total hit",
			"ct fastpath", "ct guard fails", "ct invalidated", "pool spread"},
	}
	for _, r := range report.Rows {
		names := make([]string, 0, len(r.Pool))
		for b := range r.Pool {
			names = append(names, b)
		}
		sort.Strings(names)
		spread := ""
		for _, b := range names {
			if spread != "" {
				spread += " "
			}
			spread += fmt.Sprintf("%d", r.Pool[b])
		}
		t.AddRow(r.Backend, r.Packets,
			fmt.Sprintf("%.0f", r.NsPerPkt),
			fmt.Sprintf("%.1f%%", 100*r.MicroflowRate),
			fmt.Sprintf("%.1f%%", 100*r.TotalHitRate),
			r.CtFastpath, r.CtGuardFails, r.CtInvalidated, spread)
	}
	return t, nil
}
