package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"gigaflow"
	"gigaflow/internal/experiments"
	"gigaflow/internal/stats"
	"gigaflow/service"
)

// upcallRow is one mode's warm-flow probe ladder in BENCH_upcall.json.
type upcallRow struct {
	Mode   string  `json:"mode"` // "inline" | "async"
	Count  int     `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50    float64 `json:"p50_ns"`
	P90    float64 `json:"p90_ns"`
	P99    float64 `json:"p99_ns"`
	P999   float64 `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// upcallReport is the BENCH_upcall.json document: the head-of-line
// blocking experiment. A warm flow's blocking-submit latency is probed
// while storms of never-before-seen flows are dumped on the same worker
// — inline, every probe waits behind a full storm of slow-path
// traversals; with the async offload, misses park and the probe cuts
// the line. Upcall counters from the async run ride along so the
// trajectory also tracks dedup/overflow behaviour.
type upcallReport struct {
	Rounds     int                 `json:"rounds"`
	StormSize  int                 `json:"storm_size"`
	Seed       int64               `json:"seed"`
	SpeedupP99 float64             `json:"speedup_p99"`
	Rows       []upcallRow         `json:"rows"`
	Async      service.UpcallStats `json:"async_upcall_stats"`
}

// upcallPipeline gives every host its own exact /32 rule, so no two
// storm flows share an installed cache entry and every new host is a
// genuine slow-path miss — the workload that exposes head-of-line
// blocking on the datapath goroutine.
func upcallPipeline(hosts int) *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("upcall-hol")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	for h := 0; h < hosts; h++ {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=10.0.%d.%d/32", (h>>8)&0xff, h&0xff))
		p.MustAddRule(1, m, 10, nil, 2)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	return p
}

func upcallKey(host int) gigaflow.Key {
	return gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800").
		With(gigaflow.FieldIPDst, 0x0a000000|uint64(host)).
		With(gigaflow.FieldTpDst, 80)
}

// runUpcall measures warm-flow tail latency under a cold-flow storm with
// and without the asynchronous upcall offload, and writes BENCH_upcall.json
// when -json is given.
func runUpcall(p experiments.Params, jsonPath string) (*stats.Table, error) {
	const (
		rounds    = 400
		stormSize = 32
	)
	hosts := rounds*stormSize + 1
	hot := upcallKey(hosts - 1)
	ctx := context.Background()

	probe := func(engineWorkers int) ([]float64, service.UpcallStats, error) {
		cfg := service.Config{
			Workers:           1,
			Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 8192},
			MicroflowCapacity: 1024,
			QueueDepth:        4096,
		}
		if engineWorkers > 0 {
			cfg.Upcall = service.UpcallConfig{Workers: engineWorkers, Queue: 8192}
		}
		svc, err := service.New(upcallPipeline(hosts), cfg)
		if err != nil {
			return nil, service.UpcallStats{}, err
		}
		if err := svc.Start(ctx); err != nil {
			return nil, service.UpcallStats{}, err
		}
		defer svc.Close()
		for i := 0; i < 4; i++ {
			if r, err := svc.Submit(ctx, hot); err != nil || r.Err != nil {
				return nil, service.UpcallStats{}, fmt.Errorf("warming: %v %v", err, r.Err)
			}
		}
		storm := service.NewBatch(stormSize)
		lats := make([]float64, 0, rounds)
		host := 0
		for r := 0; r < rounds; r++ {
			storm.Reset()
			for j := 0; j < stormSize; j++ {
				storm.Add(upcallKey(host))
				host++
			}
			if err := svc.SubmitBatch(ctx, storm, service.Nonblocking()); err != nil {
				return nil, service.UpcallStats{}, err
			}
			start := time.Now()
			res, err := svc.Submit(ctx, hot)
			lat := float64(time.Since(start).Nanoseconds())
			if err != nil || res.Err != nil {
				return nil, service.UpcallStats{}, fmt.Errorf("probe: %v %v", err, res.Err)
			}
			lats = append(lats, lat)
			// Let the engine finish this round's storm before launching the
			// next (off the clock): the experiment measures head-of-line
			// blocking per storm, not sustained overload — inline rounds
			// are self-pacing because the blocking probe waits behind the
			// whole storm anyway.
			for engineWorkers > 0 {
				us, err := svc.UpcallStats(ctx)
				if err != nil {
					return nil, service.UpcallStats{}, err
				}
				if us.ParkedPackets == 0 && us.QueueDepth == 0 {
					break
				}
			}
		}
		us, err := svc.UpcallStats(ctx)
		if err != nil {
			return nil, service.UpcallStats{}, err
		}
		sort.Float64s(lats)
		return lats, us, nil
	}

	row := func(mode string, lats []float64) upcallRow {
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		q := func(f float64) float64 { return lats[int(f*float64(len(lats)-1))] }
		return upcallRow{
			Mode:   mode,
			Count:  len(lats),
			MeanNs: sum / float64(len(lats)),
			P50:    q(0.50),
			P90:    q(0.90),
			P99:    q(0.99),
			P999:   q(0.999),
			MaxNs:  int64(lats[len(lats)-1]),
		}
	}

	inLats, _, err := probe(0)
	if err != nil {
		return nil, err
	}
	asLats, asStats, err := probe(2)
	if err != nil {
		return nil, err
	}
	rIn, rAs := row("inline", inLats), row("async", asLats)
	report := upcallReport{
		Rounds:     rounds,
		StormSize:  stormSize,
		Seed:       p.Seed,
		SpeedupP99: rIn.P99 / rAs.P99,
		Rows:       []upcallRow{rIn, rAs},
		Async:      asStats,
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &stats.Table{
		Title: fmt.Sprintf("Warm-flow latency under cold storm (1 worker, %d rounds x %d cold flows)",
			rounds, stormSize),
		Headers: []string{"mode", "probes", "mean ns", "p50 ns", "p90 ns", "p99 ns", "p999 ns", "max ns"},
	}
	for _, r := range report.Rows {
		t.AddRow(r.Mode, r.Count,
			fmt.Sprintf("%.0f", r.MeanNs),
			fmt.Sprintf("%.0f", r.P50),
			fmt.Sprintf("%.0f", r.P90),
			fmt.Sprintf("%.0f", r.P99),
			fmt.Sprintf("%.0f", r.P999),
			fmt.Sprintf("%d", r.MaxNs))
	}
	t.AddRow("p99 speedup", "", "", "", "", fmt.Sprintf("%.1fx", report.SpeedupP99), "", "")
	return t, nil
}
