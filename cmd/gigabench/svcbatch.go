package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"gigaflow"
	"gigaflow/internal/experiments"
	"gigaflow/internal/stats"
	"gigaflow/internal/wiredemo"
	"gigaflow/service"
)

// runSvcBatch measures the consolidated submission API on the wire-demo
// pipeline: per-packet Submit against SubmitBatch at the default batch
// size — the service-layer counterpart of the paper's §6.2 throughput
// lever (amortizing per-packet work). Steady-state only: every flow is
// warmed into the caches before the clock starts.
func runSvcBatch(p experiments.Params) (*stats.Table, error) {
	const (
		flows   = 256
		packets = 200000
	)
	rng := rand.New(rand.NewSource(p.Seed))
	keys := make([]gigaflow.Key, flows)
	for i := range keys {
		keys[i] = wiredemo.Key(i, rng)
	}

	run := func(batchSize int) (time.Duration, error) {
		svc, err := service.New(wiredemo.Pipeline(), service.Config{
			Workers:           1,
			MicroflowCapacity: 4 * flows,
		})
		if err != nil {
			return 0, err
		}
		ctx := context.Background()
		if err := svc.Start(ctx); err != nil {
			return 0, err
		}
		defer svc.Close()
		for _, k := range keys {
			if _, err := svc.Submit(ctx, k); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		if batchSize <= 1 {
			for sent := 0; sent < packets; sent++ {
				if _, err := svc.Submit(ctx, keys[sent%flows]); err != nil {
					return 0, err
				}
			}
		} else {
			b := service.NewBatch(batchSize)
			for sent := 0; sent < packets; {
				b.Reset()
				for n := 0; n < batchSize && sent < packets; n++ {
					b.Add(keys[sent%flows])
					sent++
				}
				if err := svc.SubmitBatch(ctx, b); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}

	single, err := run(1)
	if err != nil {
		return nil, err
	}
	batched, err := run(service.DefaultBatchSize)
	if err != nil {
		return nil, err
	}

	mpps := func(d time.Duration) float64 {
		return float64(packets) / d.Seconds() / 1e6
	}
	t := &stats.Table{
		Title:   "Service submission throughput (wire-demo, 1 worker, steady state)",
		Headers: []string{"mode", "packets", "ns/pkt", "Mpkt/s"},
	}
	t.AddRow("Submit", packets,
		fmt.Sprintf("%.0f", float64(single.Nanoseconds())/packets),
		fmt.Sprintf("%.2f", mpps(single)))
	t.AddRow(fmt.Sprintf("SubmitBatch/%d", service.DefaultBatchSize), packets,
		fmt.Sprintf("%.0f", float64(batched.Nanoseconds())/packets),
		fmt.Sprintf("%.2f", mpps(batched)))
	t.AddRow("speedup", "", "", fmt.Sprintf("%.2fx", mpps(batched)/mpps(single)))
	return t, nil
}
