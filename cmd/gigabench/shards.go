package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gigaflow"
	"gigaflow/internal/experiments"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/stats"
	"gigaflow/internal/wiredemo"
	"gigaflow/service"
)

// The shards experiment: RSS-style wire-hash sharding at 1/2/4/8 shards
// on a stateless wire mix (the wiredemo workload as raw frames) and a
// NAT-stateful mix (the dnslb scenario with a partitioned 8-backend
// pool). Each shard count reports measured wall-clock ns/pkt and the
// per-shard packet spread; the stateless side additionally decomposes
// the per-frame cost into the serial ingestion stage (RSS extraction +
// routing + arena copy) and the shard stage (full decode + cache
// processing) and reports the pipeline-bound modeled throughput
// 1/max(t_submit, t_worker/N) — the honest scaling statement on
// machines (like the 1-CPU CI container) where parallel wall-clock
// speedup is physically unmeasurable. The "mode" field says which story
// the numbers tell.

// shardRow is one shard count's results.
type shardRow struct {
	Shards       int     `json:"shards"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	ModeledMpps  float64 `json:"modeled_mpps,omitempty"` // stateless only
	ShardPackets []int   `json:"shard_packets"`
	CtCreated    uint64  `json:"ct_created,omitempty"` // NAT mix only
	CtLive       int     `json:"ct_live,omitempty"`
}

// shardsReport is the BENCH_shards.json document.
type shardsReport struct {
	CPUs                int        `json:"cpus"`
	Mode                string     `json:"mode"` // "measured" | "modeled-1cpu"
	Flows               int        `json:"flows"`
	TSubmitNs           float64    `json:"t_submit_ns"`
	TWorkerNs           float64    `json:"t_worker_ns"`
	Speedup2ShardModel  float64    `json:"speedup_2shard_modeled"`
	Speedup2ShardActual float64    `json:"speedup_2shard_measured,omitempty"`
	Stateless           []shardRow `json:"stateless"`
	NATClients          int        `json:"nat_clients"`
	NATPoolSize         int        `json:"nat_pool_size"`
	NAT                 []shardRow `json:"nat_stateful"`
}

var shardCounts = []int{1, 2, 4, 8}

// runShards runs both mixes across the shard ladder and writes
// BENCH_shards.json when -json is given.
func runShards(p experiments.Params, jsonPath string) (*stats.Table, error) {
	const flows = 1024
	const rounds = 40
	clients := p.NumFlows / 100
	if clients < 512 {
		clients = 512
	}
	if clients > 8192 {
		clients = 8192
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(p.Seed))

	frames := make([]service.Frame, flows)
	for i := range frames {
		frames[i] = service.Frame{Data: wire.Encode(wiredemo.Key(i, rng))}
	}

	report := shardsReport{
		CPUs:        runtime.NumCPU(),
		Flows:       flows,
		NATClients:  clients,
		NATPoolSize: 8,
	}
	report.Mode = "modeled-1cpu"
	if report.CPUs >= 4 {
		report.Mode = "measured"
	}

	// The serial ingestion stage in isolation: what SubmitFrameBatch does
	// per frame before the bytes leave the submitter — extraction, the
	// symmetric shard hash, and the arena copy.
	arena := make([]byte, 0, 1<<16)
	tSubmit := func() float64 {
		const iters = 200000
		start := time.Now()
		for i := 0; i < iters; i++ {
			f := frames[i%flows].Data
			t, ok := wire.RSSTuple(f)
			if !ok {
				panic("shards: clean frame failed extraction")
			}
			_ = t.SymHash() % uint64(len(shardCounts))
			if len(arena)+len(f) > cap(arena) {
				arena = arena[:0]
			}
			arena = append(arena, f...)
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}()
	report.TSubmitNs = tSubmit

	runStateless := func(shards int) (shardRow, error) {
		row := shardRow{Shards: shards}
		svc, err := service.New(wiredemo.Pipeline(), service.Config{
			Workers:           shards,
			Cache:             gigaflow.CacheConfig{NumTables: p.GFTables, TableCapacity: p.GFTables * 4096},
			MicroflowCapacity: 8 * flows,
			QueueDepth:        4096,
			Latency:           service.LatencyConfig{Disable: true},
		})
		if err != nil {
			return row, err
		}
		if err := svc.Start(ctx); err != nil {
			return row, err
		}
		defer svc.Close()
		b := service.NewBatch(flows)
		if err := svc.SubmitFrameBatch(ctx, frames, b); err != nil { // warm
			return row, err
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if err := svc.SubmitFrameBatch(ctx, frames, b); err != nil {
				return row, err
			}
		}
		row.NsPerPkt = float64(time.Since(start).Nanoseconds()) / float64(rounds*flows)
		sh, err := svc.ShardStats(ctx)
		if err != nil {
			return row, err
		}
		for _, s := range sh {
			row.ShardPackets = append(row.ShardPackets, int(s.Packets))
		}
		return row, nil
	}

	for _, n := range shardCounts {
		row, err := runStateless(n)
		if err != nil {
			return nil, fmt.Errorf("shards: stateless %d: %v", n, err)
		}
		report.Stateless = append(report.Stateless, row)
	}

	// Decompose the 1-shard cost and model the pipeline bound for every
	// shard count: the serial stage caps throughput once N shards absorb
	// the decode+process work.
	tWorker := report.Stateless[0].NsPerPkt - tSubmit
	if tWorker < 1 {
		tWorker = 1
	}
	report.TWorkerNs = tWorker
	bound := func(n float64) float64 {
		if tWorker/n > tSubmit {
			return tWorker / n
		}
		return tSubmit
	}
	for i, row := range report.Stateless {
		report.Stateless[i].ModeledMpps = 1000 / bound(float64(row.Shards))
	}
	report.Speedup2ShardModel = bound(1) / bound(2)
	if report.Mode == "measured" {
		report.Speedup2ShardActual = report.Stateless[0].NsPerPkt / report.Stateless[1].NsPerPkt
	}

	// The NAT-stateful mix: the dnslb scenario's pipeline over an
	// 8-backend pool, which New partitions into per-shard sub-ranges at
	// Workers>1. Queries and replies ride real frames, so reply routing
	// exercises the endpoint→shard owner map from wire bytes.
	runNAT := func(shards int) (shardRow, error) {
		row := shardRow{Shards: shards}
		pool := dnslbBackends(8)
		svc, err := service.New(dnslbPipeline(pool), service.Config{
			Workers:           shards,
			Cache:             gigaflow.CacheConfig{NumTables: p.GFTables, TableCapacity: p.GFTables * 4096},
			MicroflowCapacity: 8 * clients,
			QueueDepth:        4096,
			Conntrack:         service.ConntrackConfig{Enable: true, MaxConns: 4 * clients},
		})
		if err != nil {
			return row, err
		}
		if err := svc.Start(ctx); err != nil {
			return row, err
		}
		defer svc.Close()

		queries := make([]service.Frame, clients)
		for i := range queries {
			queries[i] = service.Frame{Data: wire.Encode(dnslbClientKey(i))}
		}
		replies := make([]service.Frame, clients)
		pinned := make([]int, clients)
		for i := range pinned {
			pinned[i] = -1
		}
		qb, rb := service.NewBatch(clients), service.NewBatch(clients)
		const natRounds = 3
		start := time.Now()
		for r := 0; r < natRounds; r++ {
			if err := svc.SubmitFrameBatch(ctx, queries, qb); err != nil {
				return row, err
			}
			for i := 0; i < qb.Len(); i++ {
				res := qb.Result(i)
				if res.Err != nil {
					return row, fmt.Errorf("query %d/%d: %v", r, i, res.Err)
				}
				b := int(res.Verdict.Port) - 100
				if res.Verdict.Kind != gigaflow.VerdictOutput || b < 0 || b >= len(pool) {
					return row, fmt.Errorf("query %d/%d verdict %v", r, i, res.Verdict)
				}
				switch pinned[i] {
				case -1:
					pinned[i] = b
					ck := dnslbClientKey(i)
					rk := ck.With(gigaflow.FieldEthSrc, ck.Get(gigaflow.FieldEthDst)).
						With(gigaflow.FieldEthDst, ck.Get(gigaflow.FieldEthSrc)).
						With(gigaflow.FieldIPSrc, pool[b].IP).
						With(gigaflow.FieldIPDst, ck.Get(gigaflow.FieldIPSrc)).
						With(gigaflow.FieldTpSrc, pool[b].Port).
						With(gigaflow.FieldTpDst, ck.Get(gigaflow.FieldTpSrc))
					replies[i] = service.Frame{Data: wire.Encode(rk)}
				case b:
				default:
					return row, fmt.Errorf("client %d rebound %d→%d", i, pinned[i], b)
				}
			}
			if err := svc.SubmitFrameBatch(ctx, replies, rb); err != nil {
				return row, err
			}
			for i := 0; i < rb.Len(); i++ {
				res := rb.Result(i)
				if res.Err != nil {
					return row, fmt.Errorf("reply %d/%d: %v", r, i, res.Err)
				}
				if res.Final.Get(gigaflow.FieldIPDst) == 0 ||
					res.Final.Get(gigaflow.FieldIPSrc) != dnslbVIP {
					return row, fmt.Errorf("reply %d/%d not un-NATed to the VIP", r, i)
				}
			}
		}
		row.NsPerPkt = float64(time.Since(start).Nanoseconds()) / float64(natRounds*2*clients)
		sh, err := svc.ShardStats(ctx)
		if err != nil {
			return row, err
		}
		for _, s := range sh {
			row.ShardPackets = append(row.ShardPackets, int(s.Packets))
			row.CtCreated += s.CtCreated
			row.CtLive += s.CtLive
		}
		if row.CtCreated != uint64(clients) {
			return row, fmt.Errorf("created %d connections, want %d", row.CtCreated, clients)
		}
		return row, nil
	}

	for _, n := range shardCounts {
		row, err := runNAT(n)
		if err != nil {
			return nil, fmt.Errorf("shards: nat %d: %v", n, err)
		}
		report.NAT = append(report.NAT, row)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	t := &stats.Table{
		Title: fmt.Sprintf("RSS wire-hash sharding: %d-flow stateless + %d-client NAT mixes (%d cpus, %s; t_submit %.0f ns, t_worker %.0f ns)",
			flows, clients, report.CPUs, report.Mode, report.TSubmitNs, report.TWorkerNs),
		Headers: []string{"mix", "shards", "ns/pkt", "modeled Mpps", "ct created", "ct live", "shard spread"},
	}
	spread := func(r shardRow) string {
		s := ""
		for i, p := range r.ShardPackets {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("%d", p)
		}
		return s
	}
	for _, r := range report.Stateless {
		t.AddRow("stateless", r.Shards, fmt.Sprintf("%.0f", r.NsPerPkt),
			fmt.Sprintf("%.2f", r.ModeledMpps), "-", "-", spread(r))
	}
	for _, r := range report.NAT {
		t.AddRow("nat", r.Shards, fmt.Sprintf("%.0f", r.NsPerPkt),
			"-", r.CtCreated, r.CtLive, spread(r))
	}
	return t, nil
}
