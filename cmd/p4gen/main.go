// Command p4gen emits the Gigaflow LTM cache pipeline as a P4-16 program
// (the paper's §5 SmartNIC artifact, Figure 6 structure).
//
//	p4gen -tables 4 -size 8192 > gigaflow.p4
package main

import (
	"flag"
	"fmt"
	"os"

	"gigaflow/internal/p4gen"
)

func main() {
	var (
		tables = flag.Int("tables", 4, "LTM tables (K)")
		size   = flag.Int("size", 8192, "entries per table")
		name   = flag.String("name", "gigaflow", "program name stem")
	)
	flag.Parse()
	if _, err := fmt.Print(p4gen.Generate(p4gen.Config{NumTables: *tables, TableSize: *size, Program: *name})); err != nil {
		fmt.Fprintf(os.Stderr, "p4gen: %v\n", err)
		os.Exit(1)
	}
}
