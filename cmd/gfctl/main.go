// Command gfctl is the operator tool: it loads a textual pipeline program
// (ovs-ofctl-style; see internal/ofp), attaches a Gigaflow (or Megaflow)
// cache, and processes flow keys read from stdin — one per line — printing
// each packet's verdict and whether the hardware cache served it.
//
// Usage:
//
//	gfctl -rules prog.txt                      # interactive / piped keys
//	gfctl -rules prog.txt -dump                # print the normalized program
//	echo "ip_dst=10.0.0.1,tp_dst=80" | gfctl -rules prog.txt
//
// Besides flow keys, stdin accepts commands:
//
//	!stats        print vSwitch counters
//	!entries      print every cache entry
//	!revalidate   re-check the cache against the (possibly edited) rules
//	!coverage     print the cache's rule-space coverage
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gigaflow"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "pipeline program file (required)")
		dump      = flag.Bool("dump", false, "print the normalized program and exit")
		cache     = flag.String("cache", "gigaflow", "cache backend (gigaflow|megaflow)")
		tables    = flag.Int("tables", 4, "Gigaflow tables")
		capacity  = flag.Int("cap", 8192, "per-table capacity (gigaflow) or total (megaflow)")
	)
	flag.Parse()
	if *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "gfctl: -rules is required")
		os.Exit(2)
	}
	f, err := os.Open(*rulesPath)
	if err != nil {
		fail(err)
	}
	p, err := gigaflow.LoadPipeline(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if *dump {
		if err := gigaflow.DumpPipeline(os.Stdout, p); err != nil {
			fail(err)
		}
		return
	}

	opts := []gigaflow.VSwitchOption{}
	if *cache == "megaflow" {
		opts = append(opts, gigaflow.WithMegaflowBackend(*capacity))
	} else if *cache != "gigaflow" {
		fmt.Fprintf(os.Stderr, "gfctl: unknown cache %q\n", *cache)
		os.Exit(2)
	}
	vs := gigaflow.NewVSwitch(p, gigaflow.CacheConfig{NumTables: *tables, TableCapacity: *capacity}, opts...)

	fmt.Fprintf(os.Stderr, "gfctl: %s loaded (%d tables, %d rules); reading keys from stdin\n",
		p.Name, p.NumTables(), p.NumRules())
	sc := bufio.NewScanner(os.Stdin)
	var clock int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "!") {
			command(vs, line)
			continue
		}
		k, err := gigaflow.ParseKey(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		clock += 1_000_000
		res, err := vs.Process(k, clock)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		src := "slowpath"
		if res.CacheHit {
			src = "cache"
		}
		fmt.Printf("%-10s via %-8s final %s\n", res.Verdict, src, res.Final)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	command(vs, "!stats")
}

func command(vs *gigaflow.VSwitch, line string) {
	switch line {
	case "!stats":
		st := vs.Stats()
		fmt.Printf("packets=%d hits=%d misses=%d slowpath=%d installs=%d hit-rate=%.1f%% entries=%d\n",
			st.Packets, st.CacheHits, st.CacheMisses, st.Slowpath, st.Installs,
			100*st.HitRate(), vs.CacheEntries())
	case "!coverage":
		fmt.Printf("coverage=%d megaflow-equivalent rules over %d entries\n", vs.Coverage(), vs.CacheEntries())
	case "!entries":
		c := vs.Cache()
		if c == nil {
			fmt.Println("megaflow backend: entry dump not supported")
			return
		}
		for i := 0; i < c.NumTables(); i++ {
			for _, e := range c.Entries(i) {
				fmt.Printf("GF%d %s\n", i+1, e)
			}
		}
	case "!revalidate":
		ev, work := vs.Revalidate()
		fmt.Printf("revalidated: evicted=%d replayed-lookups=%d\n", ev, work)
	default:
		fmt.Printf("unknown command %q (try !stats, !entries, !coverage, !revalidate)\n", line)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gfctl: %v\n", err)
	os.Exit(1)
}
