// Command gflint runs Gigaflow's project-specific static-analysis suite:
// hotalloc (//gf:hotpath functions stay allocation-free), hotcall (the
// transitive closure of every hot function is certified allocation- and
// block-free), goroleak (every goroutine has a termination path, every
// WaitGroup.Add a matching Done), atomicmix (no mixed atomic/plain field
// access), lockdiscipline (locks released on all paths, no channel ops
// under a lock), and detrand (simulation code uses injected seeded
// randomness and virtual time only).
//
// Usage:
//
//	gflint [-C dir] [-run names] [-json] [-summary] [-hotcert file] [pattern ...]
//
// With no pattern (or the conventional "./..."), every package in the
// module containing dir (default: the working directory) is analyzed.
// Findings print as "file:line: [analyzer] message" (or as a JSON
// document with -json) and make the exit status 1; load or parse
// failures exit 2, so CI can distinguish "the code has findings" from
// "the tool could not run". Individual findings can be waived with a
// "//gflint:ignore <analyzer> <reason>" comment on or directly above the
// offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gigaflow/internal/analysis"
)

// Exit codes: 0 clean, 1 findings, 2 the tool itself failed to run.
const (
	exitFindings = 1
	exitFatal    = 2
)

func main() {
	dir := flag.String("C", ".", "analyze the module containing this directory")
	list := flag.Bool("list", false, "list the analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings and coverage as JSON on stdout")
	summary := flag.Bool("summary", false, "print a one-line per-analyzer coverage summary")
	hotcert := flag.String("hotcert", "", "write the HOTPATH.md certification report to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gflint [-C dir] [-list] [-run names] [-json] [-summary] [-hotcert file] [pattern ...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs Gigaflow's invariant checks over every package in the module.\n")
		fmt.Fprintf(os.Stderr, "Patterns other than \"./...\" select module-relative package directories.\n")
		fmt.Fprintf(os.Stderr, "Exit status: 0 clean, 1 findings, 2 load/parse failure.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *runNames != "" {
		var err error
		analyzers, err = analysis.AnalyzersNamed(strings.Split(*runNames, ","))
		if err != nil {
			fatal(err)
		}
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}

	var rels []string
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." {
			rels = nil // whole module
			break
		}
		// Relative patterns are relative to -C, like the go tool's.
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(*dir, arg)
		}
		abs, err := filepath.Abs(abs)
		if err != nil {
			fatal(err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fatal(fmt.Errorf("gflint: %s is outside module %s", arg, root))
		}
		rels = append(rels, rel)
	}

	var prog *analysis.Program
	if len(rels) == 0 {
		prog, err = analysis.LoadModule(root)
	} else {
		prog, err = analysis.LoadDirs(root, rels...)
	}
	if err != nil {
		fatal(err)
	}

	findings := analysis.Run(prog, analyzers)

	if *hotcert != "" {
		if err := os.WriteFile(*hotcert, []byte(analysis.HotpathReport(prog)), 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		emitJSON(root, prog, analyzers, findings)
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", relName(root, f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
		if *summary {
			printSummary(prog, analyzers, findings)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gflint: %d finding(s)\n", len(findings))
		os.Exit(exitFindings)
	}
}

// jsonReport is gflint's -json document: the findings plus a coverage
// block so CI artifacts show what each analyzer actually looked at.
type jsonReport struct {
	Findings []jsonFinding  `json:"findings"`
	Coverage []jsonCoverage `json:"coverage"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonCoverage struct {
	Analyzer string `json:"analyzer"`
	Findings int    `json:"findings"`
	Summary  string `json:"summary,omitempty"`
}

func emitJSON(root string, prog *analysis.Program, analyzers []*analysis.Analyzer, findings []analysis.Finding) {
	rep := jsonReport{Findings: []jsonFinding{}}
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Analyzer]++
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     relName(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	for _, a := range analyzers {
		cov := jsonCoverage{Analyzer: a.Name, Findings: counts[a.Name]}
		if a.Summary != nil {
			cov.Summary = a.Summary(prog)
		}
		rep.Coverage = append(rep.Coverage, cov)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func printSummary(prog *analysis.Program, analyzers []*analysis.Analyzer, findings []analysis.Finding) {
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	for _, a := range analyzers {
		status := "ok"
		if n := counts[a.Name]; n > 0 {
			status = fmt.Sprintf("%d finding(s)", n)
		}
		line := fmt.Sprintf("gflint: %-16s %s", a.Name, status)
		if a.Summary != nil {
			line += " — " + a.Summary(prog)
		}
		fmt.Println(line)
	}
}

// relName renders a finding path module-relative when possible.
func relName(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("gflint: no go.mod found above %s", abs)
		}
	}
}

// fatal reports a tool failure — not a finding — and exits 2.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(exitFatal)
}
