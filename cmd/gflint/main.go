// Command gflint runs Gigaflow's project-specific static-analysis suite:
// hotalloc (//gf:hotpath functions stay allocation-free), atomicmix (no
// mixed atomic/plain field access), lockdiscipline (locks released on all
// paths, no channel ops under a lock), and detrand (simulation code uses
// injected seeded randomness and virtual time only).
//
// Usage:
//
//	gflint [-C dir] [pattern ...]
//
// With no pattern (or the conventional "./..."), every package in the
// module containing dir (default: the working directory) is analyzed.
// Findings print as "file:line: [analyzer] message" and make the exit
// status non-zero. Individual findings can be waived with a
// "//gflint:ignore <analyzer> <reason>" comment on or directly above the
// offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gigaflow/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "analyze the module containing this directory")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gflint [-C dir] [-list] [pattern ...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs Gigaflow's invariant checks over every package in the module.\n")
		fmt.Fprintf(os.Stderr, "Patterns other than \"./...\" select module-relative package directories.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}

	var rels []string
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." {
			rels = nil // whole module
			break
		}
		// Relative patterns are relative to -C, like the go tool's.
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(*dir, arg)
		}
		abs, err := filepath.Abs(abs)
		if err != nil {
			fatal(err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fatal(fmt.Errorf("gflint: %s is outside module %s", arg, root))
		}
		rels = append(rels, rel)
	}

	var prog *analysis.Program
	if len(rels) == 0 {
		prog, err = analysis.LoadModule(root)
	} else {
		prog, err = analysis.LoadDirs(root, rels...)
	}
	if err != nil {
		fatal(err)
	}

	findings := analysis.Run(prog, analyzers)
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gflint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("gflint: no go.mod found above %s", abs)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
