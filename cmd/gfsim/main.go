// Command gfsim runs one end-to-end simulation: a real-world pipeline
// populated by Pipebench, a packet trace, and a hardware cache (Gigaflow
// or Megaflow), printing a full report: hit rate, misses, entries,
// coverage, sharing, latency distribution, and CPU-cycle breakdown.
//
// Usage:
//
//	gfsim -pipeline OLS -cache gigaflow -tables 4 -cap 8192 -flows 100000
//	gfsim -pipeline OLS -cache megaflow -cap 32768 -locality low
package main

import (
	"flag"
	"fmt"
	"os"

	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/stats"
	"gigaflow/internal/telemetry"
	"gigaflow/internal/traffic"
)

func main() {
	var (
		pipeName = flag.String("pipeline", "PSC", "pipeline (OFD|PSC|OLS|ANT|OTL)")
		cache    = flag.String("cache", "gigaflow", "cache kind (gigaflow|megaflow)")
		tables   = flag.Int("tables", 4, "Gigaflow tables (K)")
		capacity = flag.Int("cap", 8192, "per-table capacity (gigaflow) or total (megaflow)")
		scheme   = flag.String("scheme", "dp", "partitioning scheme (dp|rnd|1-1|prof)")
		search   = flag.String("search", "tss", "software search algorithm (tss|nm)")
		offload  = flag.Bool("offload", true, "cache on the SmartNIC (false: CPU-resident)")
		flows    = flag.Int("flows", 100000, "unique flows")
		chains   = flag.Int("chains", 0, "rule chains (0: paper default)")
		locality = flag.String("locality", "high", "traffic locality (high|low)")
		cores    = flag.Int("cores", 1, "slowpath CPU cores")
		seed     = flag.Int64("seed", 1, "seed")
		telem    = flag.Bool("telemetry", false, "dump the metrics registry (Prometheus text) after the report")
	)
	flag.Parse()

	spec, ok := pipelines.ByName(*pipeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "gfsim: unknown pipeline %q\n", *pipeName)
		os.Exit(2)
	}
	pcfg := pipebench.PaperConfig(spec, *seed)
	if *chains > 0 {
		pcfg.NumChains = *chains
	}
	w, err := pipebench.Generate(pcfg)
	if err != nil {
		fail(err)
	}

	loc := traffic.HighLocality
	if *locality == "low" {
		loc = traffic.LowLocality
	}
	trace := sim.BuildTrace(w, *flows, loc, *seed+2)

	cfg := sim.Config{Offloaded: *offload, Cores: *cores, Seed: *seed}
	switch *cache {
	case "gigaflow":
		cfg.Kind = sim.Gigaflow
		cfg.NumTables = *tables
		cfg.TableCapacity = *capacity
	case "megaflow":
		cfg.Kind = sim.Megaflow
		cfg.MegaflowCapacity = *capacity
	default:
		fmt.Fprintf(os.Stderr, "gfsim: unknown cache %q\n", *cache)
		os.Exit(2)
	}
	switch *scheme {
	case "dp":
	case "rnd":
		cfg.Scheme = 1
	case "1-1":
		cfg.Scheme = 2
	case "prof":
		cfg.Scheme = 3
	default:
		fmt.Fprintf(os.Stderr, "gfsim: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	if *search == "nm" {
		cfg.Search = sim.NM
	}

	res, err := sim.Run(w, trace, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("pipeline    %s (%d tables, %d traversals, %d rules installed)\n",
		spec.Name, spec.NumTables(), spec.NumTraversals(), w.Pipeline.NumRules())
	fmt.Printf("trace       %d flows, %d packets, %s locality\n", *flows, len(trace), loc)
	fmt.Printf("cache       %s offloaded=%v\n\n", cfg.Label(), *offload)

	t := &stats.Table{Headers: []string{"metric", "value"}}
	t.AddRow("packets", res.Packets)
	t.AddRow("hits", res.Hits)
	t.AddRow("misses", res.Misses)
	t.AddRow("hit rate", fmt.Sprintf("%.2f%%", 100*res.HitRate()))
	t.AddRow("stalled chains", res.Stalls)
	t.AddRow("entries used", fmt.Sprintf("%d / %d", res.Entries, res.Capacity))
	t.AddRow("rule-space coverage", res.Coverage)
	t.AddRow("mean sharing (installs/entry)", res.MeanSharing)
	t.AddRow("insert failures", res.InsertFailures)
	t.AddRow("latency mean", fmt.Sprintf("%.2f µs", res.Latency.Mean()/1000))
	t.AddRow("latency p50", fmt.Sprintf("%.2f µs", res.Latency.Quantile(0.5)/1000))
	t.AddRow("latency p99", fmt.Sprintf("%.2f µs", res.Latency.Quantile(0.99)/1000))
	t.AddRow("cycles: pipeline", res.Cycles.Pipeline)
	t.AddRow("cycles: partitioning", res.Cycles.Partition)
	t.AddRow("cycles: rule generation", res.Cycles.RuleGen)
	t.AddRow("slowpath capacity", fmt.Sprintf("%.2f Mpps (%d cores)", res.Throughput.SlowpathPps/1e6, *cores))
	t.AddRow("max loss-free offered load", fmt.Sprintf("%.2f Mpps", res.Throughput.MaxOfferedPps/1e6))
	t.AddRow("aggregate throughput", fmt.Sprintf("%.1f Gbps (line rate %.0f)", res.Throughput.AggregateGbps, res.Throughput.LineRateGbps))
	if *cores > 1 {
		for i, c := range res.PerCore {
			t.AddRow(fmt.Sprintf("core %d misses", i), c.Misses)
		}
	}
	fmt.Println(t.Render())

	if *telem {
		reg := telemetry.NewRegistry()
		res.CollectMetrics(reg)
		fmt.Println("--- telemetry ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gfsim: %v\n", err)
	os.Exit(1)
}
