// Command gfreplay feeds raw packet bytes through the vSwitch service:
// it reads a classic-pcap capture, decodes every frame into an LTM key,
// and replays the trace against a Gigaflow (or Megaflow) cache, printing
// hit rates, drops, and decode statistics.
//
// Without -rules it installs a built-in wire-demo pipeline whose rules
// match only frame-representable fields, and -gen synthesizes a matching
// trace as a pcap so the loop is self-contained:
//
//	gfreplay -gen demo.pcap -flows 5000        # synthesize a capture
//	gfreplay -pcap demo.pcap                   # replay it flat out
//	gfreplay -pcap demo.pcap -timed -speedup 100
//	gfreplay -pcap real.pcap -rules prog.txt -backend megaflow -cap 32768
//	gfreplay -pcap demo.pcap -telemetry 127.0.0.1:0 -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/pcap"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
	"gigaflow/service"
)

func main() {
	var (
		pcapPath  = flag.String("pcap", "", "capture to replay")
		genPath   = flag.String("gen", "", "synthesize a demo trace to this pcap file and exit")
		rulesPath = flag.String("rules", "", "pipeline program file (default: built-in wire demo)")
		backend   = flag.String("backend", "gigaflow", "cache backend (gigaflow|megaflow)")
		workers   = flag.Int("workers", 1, "forwarding workers")
		tables    = flag.Int("tables", 4, "Gigaflow tables")
		capacity  = flag.Int("cap", 8192, "total main-cache entries (split across workers)")
		microflow = flag.Int("microflow", 0, "per-worker microflow entries (0: disabled)")
		queue     = flag.Int("queue", 1024, "worker queue depth")
		inPort    = flag.Uint("inport", 0, "ingress port attributed to every frame")
		timed     = flag.Bool("timed", false, "pace by trace timestamps instead of as-fast-as-possible")
		speedup   = flag.Float64("speedup", 1, "timeline compression in -timed mode")
		block     = flag.Bool("block", false, "wait for each frame's verdict (lossless replay)")
		limit     = flag.Int("limit", 0, "stop after N records (0: all)")
		flows     = flag.Int("flows", 5000, "unique flows in a -gen trace")
		seed      = flag.Int64("seed", 1, "seed for -gen")
		telem     = flag.String("telemetry", "", "serve /metrics and /debug endpoints on this address during the replay")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text) after the report")
	)
	flag.Parse()

	if *genPath != "" {
		if err := generate(*genPath, *flows, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *pcapPath == "" {
		fmt.Fprintln(os.Stderr, "usage: gfreplay -gen demo.pcap | gfreplay -pcap demo.pcap [flags]")
		os.Exit(2)
	}

	p, err := loadPipeline(*rulesPath)
	if err != nil {
		fail(err)
	}
	cfg := service.Config{
		Workers:           *workers,
		MicroflowCapacity: *microflow * *workers,
		QueueDepth:        *queue,
		TelemetryAddr:     *telem,
	}
	switch *backend {
	case "gigaflow":
		cfg.Cache = gigaflow.CacheConfig{NumTables: *tables, TableCapacity: *capacity}
	case "megaflow":
		cfg.Backend = service.BackendMegaflow
		cfg.MegaflowCapacity = *capacity
	default:
		fmt.Fprintf(os.Stderr, "gfreplay: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	s, err := service.New(p, cfg)
	if err != nil {
		fail(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		fail(err)
	}
	defer s.Close()
	if *telem != "" {
		fmt.Fprintf(os.Stderr, "gfreplay: telemetry on http://%s/metrics\n", s.TelemetryAddr())
	}

	f, err := os.Open(*pcapPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		fail(err)
	}

	rep, err := s.Replay(ctx, r, service.ReplayConfig{
		InPort:   uint16(*inPort),
		Timed:    *timed,
		Speedup:  *speedup,
		Blocking: *block,
		Limit:    *limit,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("pipeline    %s (%d tables, %d rules)\n", p.Name, p.NumTables(), p.NumRules())
	fmt.Printf("capture     %s (%s resolution)\n", *pcapPath, resolution(r))
	fmt.Printf("replay      %s\n\n", rep)
	report(rep)

	if *metrics {
		fmt.Println("--- telemetry ---")
		if err := s.Registry().WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func resolution(r *pcap.Reader) string {
	if r.Nanosecond() {
		return "nanosecond"
	}
	return "microsecond"
}

func report(rep service.ReplayReport) {
	t := &stats.Table{Headers: []string{"metric", "value"}}
	t.AddRow("frames read", rep.Frames)
	t.AddRow("bytes read", rep.Bytes)
	t.AddRow("submitted", rep.Submitted)
	t.AddRow("queue drops", rep.QueueDrops)
	t.AddRow("rejected (short frame)", rep.Rejected)
	t.AddRow("decode errors (degraded)", rep.DecodeErrors)
	if rep.PipelineErrs > 0 {
		t.AddRow("pipeline errors", rep.PipelineErrs)
	}
	for pr := wire.Proto(0); pr < wire.Proto(wire.NumProtos); pr++ {
		if n := rep.PerProto[pr]; n > 0 {
			t.AddRow("proto "+pr.String(), n)
		}
	}
	t.AddRow("packets processed", rep.Stats.Packets)
	t.AddRow("microflow hits", rep.Stats.MicroflowHits)
	t.AddRow("cache hits", rep.Stats.CacheHits)
	t.AddRow("cache misses", rep.Stats.CacheMisses)
	t.AddRow("slowpath traversals", rep.Stats.Slowpath)
	t.AddRow("hit rate", fmt.Sprintf("%.2f%%", 100*rep.HitRate()))
	if rep.Truncated {
		t.AddRow("capture truncated", "yes (replayed everything before the cut)")
	}
	fmt.Println(t.Render())
}

// loadPipeline reads an ovs-ofctl-style program, or falls back to the
// built-in wire-demo pipeline that pairs with -gen traces.
func loadPipeline(path string) (*gigaflow.Pipeline, error) {
	if path == "" {
		return demoPipeline(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gigaflow.LoadPipeline(f)
}

// The wire demo: an L2 admission table, an L3 routing table of /32
// destinations, and an L4 policy table — every match field is carried in
// frame bytes, so a decoded frame reproduces the synthesized key exactly.
const (
	demoDsts  = 16
	demoPorts = 4
)

var demoTCPPorts = [...]uint64{80, 443, 22}

func demoPipeline() *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("wire-demo")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldIPProto, gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	for i := 0; i < demoDsts; i++ {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=10.1.0.%d", i))
		p.MustAddRule(1, m, 10, nil, 2)
	}
	for i, port := range demoTCPPorts {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_proto=6,tp_dst=%d", port))
		p.MustAddRule(2, m, 10, []gigaflow.Action{gigaflow.Output(uint16(i + 1))}, gigaflow.NoTable)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("ip_proto=17,tp_dst=53"), 10,
		[]gigaflow.Action{gigaflow.Output(9)}, gigaflow.NoTable)
	return p
}

// demoKey synthesizes one wire-faithful flow key: in_port and metadata
// stay zero (neither is a wire field), everything else round-trips
// through encode→decode losslessly.
func demoKey(ruleIdx int, rng *rand.Rand) gigaflow.Key {
	var k gigaflow.Key
	k.Set(gigaflow.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<24)))
	k.Set(gigaflow.FieldEthDst, 0x020000000001)
	k.Set(gigaflow.FieldEthType, wire.EtherTypeIPv4)
	k.Set(gigaflow.FieldIPSrc, uint64(0x0a000000+rng.Intn(1<<16)))
	k.Set(gigaflow.FieldIPDst, uint64(0x0a010000+ruleIdx%demoDsts))
	k.Set(gigaflow.FieldTpSrc, uint64(1024+rng.Intn(60000)))
	if pick := ruleIdx % demoPorts; pick < len(demoTCPPorts) {
		k.Set(gigaflow.FieldIPProto, wire.IPProtoTCP)
		k.Set(gigaflow.FieldTpDst, demoTCPPorts[pick])
	} else {
		k.Set(gigaflow.FieldIPProto, wire.IPProtoUDP)
		k.Set(gigaflow.FieldTpDst, 53)
	}
	return k
}

func generate(path string, flows int, seed int64) error {
	cfg := traffic.Config{Seed: seed, NumFlows: flows}
	fl := traffic.GenerateFlows(cfg, traffic.UniformPicker(demoDsts*demoPorts), demoKey)
	pkts := traffic.Expand(cfg, fl)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pcap.WriteTrace(f, pkts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("gfreplay: wrote %d packets (%d flows) to %s\n", len(pkts), flows, path)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gfreplay: %v\n", err)
	os.Exit(1)
}
