// Command gfreplay feeds raw packet bytes through the vSwitch service:
// it reads a classic-pcap capture, decodes every frame into an LTM key,
// and replays the trace against a Gigaflow (or Megaflow) cache, printing
// hit rates, drops, and decode statistics.
//
// Without -rules it installs a built-in wire-demo pipeline whose rules
// match only frame-representable fields, and -gen synthesizes a matching
// trace as a pcap so the loop is self-contained:
//
//	gfreplay -gen demo.pcap -flows 5000        # synthesize a capture
//	gfreplay -pcap demo.pcap                   # replay it flat out
//	gfreplay -pcap demo.pcap -timed -speedup 100
//	gfreplay -pcap real.pcap -rules prog.txt -backend megaflow -cap 32768
//	gfreplay -pcap demo.pcap -telemetry 127.0.0.1:0 -metrics
//	gfreplay -pcap real.pcap -rules nat.txt -workers 4 -conntrack -ct-idle 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/pcap"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
	"gigaflow/internal/wiredemo"
	"gigaflow/service"
)

func main() {
	var (
		pcapPath  = flag.String("pcap", "", "capture to replay")
		genPath   = flag.String("gen", "", "synthesize a demo trace to this pcap file and exit")
		rulesPath = flag.String("rules", "", "pipeline program file (default: built-in wire demo)")
		backend   = flag.String("backend", "gigaflow", "cache backend (gigaflow|megaflow)")
		workers   = flag.Int("workers", 1, "forwarding workers")
		tables    = flag.Int("tables", 4, "Gigaflow tables")
		capacity  = flag.Int("cap", 8192, "total main-cache entries (split across workers)")
		microflow = flag.Int("microflow", 0, "per-worker microflow entries (0: disabled)")
		queue     = flag.Int("queue", 1024, "worker queue depth")
		inPort    = flag.Uint("inport", 0, "ingress port attributed to every frame")
		timed     = flag.Bool("timed", false, "pace by trace timestamps instead of as-fast-as-possible")
		speedup   = flag.Float64("speedup", 1, "timeline compression in -timed mode")
		block     = flag.Bool("block", false, "wait for each frame's verdict (lossless replay)")
		batch     = flag.Int("batch", service.DefaultBatchSize, "frames submitted per batch (1: per-packet submission)")
		limit     = flag.Int("limit", 0, "stop after N records (0: all)")
		flows     = flag.Int("flows", 5000, "unique flows in a -gen trace")
		seed      = flag.Int64("seed", 1, "seed for -gen")
		telem     = flag.String("telemetry", "", "serve /metrics and /debug endpoints on this address during the replay")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text) after the report")
		conntrack = flag.Bool("conntrack", false, "enable connection tracking (required for ct_state/NAT pipelines)")
		ctMax     = flag.Int("ct-max", 0, "total live-connection budget across workers (0: conntrack default)")
		ctIdle    = flag.Duration("ct-idle", 0, "expire connections idle longer than this (0: never)")
	)
	flag.Parse()

	if *genPath != "" {
		if err := generate(*genPath, *flows, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *pcapPath == "" {
		fmt.Fprintln(os.Stderr, "usage: gfreplay -gen demo.pcap | gfreplay -pcap demo.pcap [flags]")
		os.Exit(2)
	}

	p, err := loadPipeline(*rulesPath)
	if err != nil {
		fail(err)
	}
	cfg := service.Config{
		Workers:           *workers,
		MicroflowCapacity: *microflow * *workers,
		QueueDepth:        *queue,
		TelemetryAddr:     *telem,
	}
	if *conntrack {
		cfg.Conntrack = service.ConntrackConfig{
			Enable:   true,
			MaxConns: *ctMax,
			MaxIdle:  *ctIdle,
		}
	} else if *ctMax != 0 || *ctIdle != 0 {
		fmt.Fprintln(os.Stderr, "gfreplay: -ct-max/-ct-idle require -conntrack")
		os.Exit(2)
	}
	switch *backend {
	case "gigaflow":
		cfg.Cache = gigaflow.CacheConfig{NumTables: *tables, TableCapacity: *capacity}
	case "megaflow":
		cfg.Backend = service.BackendMegaflow
		cfg.MegaflowCapacity = *capacity
	default:
		fmt.Fprintf(os.Stderr, "gfreplay: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	s, err := service.New(p, cfg)
	if err != nil {
		fail(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		fail(err)
	}
	defer s.Close()
	if *telem != "" {
		fmt.Fprintf(os.Stderr, "gfreplay: telemetry on http://%s/metrics\n", s.TelemetryAddr())
	}

	f, err := os.Open(*pcapPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		fail(err)
	}

	rep, err := s.Replay(ctx, r, service.ReplayConfig{
		InPort:    uint16(*inPort),
		Timed:     *timed,
		Speedup:   *speedup,
		Blocking:  *block,
		Limit:     *limit,
		BatchSize: *batch,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("pipeline    %s (%d tables, %d rules)\n", p.Name, p.NumTables(), p.NumRules())
	fmt.Printf("capture     %s (%s resolution)\n", *pcapPath, resolution(r))
	fmt.Printf("replay      %s\n\n", rep)
	report(rep)

	if *metrics {
		fmt.Println("--- telemetry ---")
		if err := s.Registry().WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func resolution(r *pcap.Reader) string {
	if r.Nanosecond() {
		return "nanosecond"
	}
	return "microsecond"
}

func report(rep service.ReplayReport) {
	t := &stats.Table{Headers: []string{"metric", "value"}}
	t.AddRow("frames read", rep.Frames)
	t.AddRow("bytes read", rep.Bytes)
	t.AddRow("submitted", rep.Submitted)
	t.AddRow("queue drops", rep.QueueDrops)
	t.AddRow("rejected (short frame)", rep.Rejected)
	t.AddRow("decode errors (degraded)", rep.DecodeErrors)
	if rep.PipelineErrs > 0 {
		t.AddRow("pipeline errors", rep.PipelineErrs)
	}
	for pr := wire.Proto(0); pr < wire.Proto(wire.NumProtos); pr++ {
		if n := rep.PerProto[pr]; n > 0 {
			t.AddRow("proto "+pr.String(), n)
		}
	}
	t.AddRow("packets processed", rep.Stats.Packets)
	t.AddRow("microflow hits", rep.Stats.MicroflowHits)
	t.AddRow("cache hits", rep.Stats.CacheHits)
	t.AddRow("cache misses", rep.Stats.CacheMisses)
	t.AddRow("slowpath traversals", rep.Stats.Slowpath)
	t.AddRow("hit rate", fmt.Sprintf("%.2f%%", 100*rep.HitRate()))
	if rep.Truncated {
		t.AddRow("capture truncated", "yes (replayed everything before the cut)")
	}
	fmt.Println(t.Render())
}

// loadPipeline reads an ovs-ofctl-style program, or falls back to the
// built-in wire-demo pipeline that pairs with -gen traces.
func loadPipeline(path string) (*gigaflow.Pipeline, error) {
	if path == "" {
		return wiredemo.Pipeline(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gigaflow.LoadPipeline(f)
}

func generate(path string, flows int, seed int64) error {
	cfg := traffic.Config{Seed: seed, NumFlows: flows}
	fl := traffic.GenerateFlows(cfg, traffic.UniformPicker(wiredemo.NumFlowsUnique), wiredemo.Key)
	pkts := traffic.Expand(cfg, fl)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pcap.WriteTrace(f, pkts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("gfreplay: wrote %d packets (%d flows) to %s\n", len(pkts), flows, path)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gfreplay: %v\n", err)
	os.Exit(1)
}
