package gigaflow

import (
	gfcache "gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/microflow"
	"gigaflow/internal/telemetry"
)

// Park-mode processing: the VSwitch half of the asynchronous slow-path
// offload (internal/upcall). In park mode a main-cache miss is not
// punted to the pipeline inline — the lookup chain reports it to the
// caller, who parks the packet and enqueues an upcall; a dedicated
// engine runs the traversal off the datapath goroutine, and the caller
// finishes the miss later through CompleteMiss (fresh traversal) or by
// replaying the packet through Process (failed or stale traversal).
//
// Accounting discipline — the reason async totals match inline exactly:
// a parked packet is counted NOWHERE at park time, not even in
// Stats.Packets. The flow's one traversal is accounted once, by
// CompleteMiss (Packets, CacheMisses, Slowpath, Installs/InstallErrs),
// exactly as processMiss would have; every other packet that parked
// behind the same pending flow is replayed through Process after the
// install and counts as the cache hit it would have been inline, where
// the first packet's miss installs before later packets of the flow are
// processed.

// ProcessPark is Process in park mode: hits (and sampled/traced
// packets, which always run inline — tracing wants the whole traversal)
// behave identically to Process, but a main-cache miss returns
// parked=true with nothing counted and no slow-path work done. The
// caller owns the miss from there.
//
//gf:hotpath
func (v *VSwitch) ProcessPark(k Key, now int64) (res ProcessResult, parked bool, err error) {
	if v.rec != nil {
		v.rec.BeginBatch(now)
	}
	if v.tracer != nil {
		if tb := v.tracer.Start(); tb != nil {
			v.stats.Packets++
			r, err := v.processTraced(k, 0, now, tb)
			return r, false, err
		}
	}
	if v.uf != nil {
		if e, ok := v.uf.Lookup(k, now); ok {
			v.stats.Packets++
			v.stats.MicroflowHits++
			if v.rec != nil {
				v.rec.Hit(telemetry.TierMicroflow, v.uf.LastHash())
				v.rec.EndBatch()
			}
			return ProcessResult{Verdict: e.Verdict, Final: e.Final, CacheHit: true, MicroflowHit: true}, false, nil
		}
	}
	if v.gf != nil {
		lr := v.gf.Lookup(k, now)
		if lr.Hit {
			v.stats.Packets++
			v.stats.CacheHits++
			v.memoize(k, lr.Final, lr.Verdict, now)
			if v.rec != nil {
				v.rec.Hit(telemetry.TierGigaflow, k.FlowHash())
				v.rec.EndBatch()
			}
			return ProcessResult{Verdict: lr.Verdict, Final: lr.Final, CacheHit: true}, false, nil
		}
	} else if e, ok := v.mf.Lookup(k, now); ok {
		v.stats.Packets++
		v.stats.CacheHits++
		final, verdict := e.Apply(k)
		v.memoize(k, final, verdict, now)
		if v.rec != nil {
			v.rec.Hit(telemetry.TierMegaflow, k.FlowHash())
			v.rec.EndBatch()
		}
		return ProcessResult{Verdict: verdict, Final: final, CacheHit: true}, false, nil
	}
	return ProcessResult{}, true, nil
}

// ProcessBatchPark is ProcessBatch in park mode: packet i's miss sets
// parked[i] instead of running the slow path, with out[i] zeroed and no
// counters touched for it. out, errs, and parked must all be at least
// len(keys) long. Hits, memoization, and in-batch visibility of earlier
// packets' microflow entries are identical to ProcessBatch.
//
//gf:hotpath
func (v *VSwitch) ProcessBatchPark(keys []Key, out []ProcessResult, errs []error, parked []bool, now int64) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	_ = errs[len(keys)-1]
	_ = parked[len(keys)-1]
	var packets, ufHits, mainHits uint64
	var ufb microflow.BatchLookup
	var gfb gfcache.BatchLookup
	var mfb megaflow.BatchLookup
	if v.uf != nil {
		ufb = v.uf.BatchLookup()
	}
	if v.gf != nil {
		gfb = v.gf.BatchLookup()
	} else {
		mfb = v.mf.BatchLookup()
	}
	if v.rec != nil {
		v.rec.BeginBatch(now)
	}
	for i := range keys {
		k := keys[i]
		packets++
		errs[i] = nil
		parked[i] = false
		if v.tracer != nil {
			if tb := v.tracer.Start(); tb != nil {
				out[i], errs[i] = v.processTraced(k, 0, now, tb)
				continue
			}
		}
		if v.uf != nil {
			if e, ok := ufb.Lookup(k, now); ok {
				ufHits++
				if v.rec != nil {
					v.rec.Hit(telemetry.TierMicroflow, v.uf.LastHash())
				}
				out[i] = ProcessResult{Verdict: e.Verdict, Final: e.Final, CacheHit: true, MicroflowHit: true}
				continue
			}
		}
		if v.gf != nil {
			lr := gfb.Lookup(k, now)
			if lr.Hit {
				mainHits++
				v.memoize(k, lr.Final, lr.Verdict, now)
				if v.rec != nil {
					v.rec.Hit(telemetry.TierGigaflow, k.FlowHash())
				}
				out[i] = ProcessResult{Verdict: lr.Verdict, Final: lr.Final, CacheHit: true}
				continue
			}
		} else if e, ok := mfb.Lookup(k, now); ok {
			mainHits++
			final, verdict := e.Apply(k)
			v.memoize(k, final, verdict, now)
			if v.rec != nil {
				v.rec.Hit(telemetry.TierMegaflow, k.FlowHash())
			}
			out[i] = ProcessResult{Verdict: verdict, Final: final, CacheHit: true}
			continue
		}
		// Main-cache miss: park it. The packet's accounting is deferred to
		// CompleteMiss (initiator) or its replay through Process (follower).
		packets--
		parked[i] = true
		out[i] = ProcessResult{}
	}
	if v.rec != nil {
		v.rec.EndBatch()
	}
	v.stats.Packets += packets
	v.stats.MicroflowHits += ufHits
	v.stats.CacheHits += mainHits
	ufb.Flush()
	gfb.Flush()
	mfb.Flush()
}

// ProcessMissInline finishes a packet that ProcessPark/ProcessBatchPark
// parked but that cannot be deferred after all — the upcall queue
// overflow fallback. It performs the inline slow-path punt the packet
// skipped, with full accounting, exactly as if Process had never parked
// it. Cold by definition; not part of the certified hot path.
func (v *VSwitch) ProcessMissInline(k Key, now int64) (ProcessResult, error) {
	v.stats.Packets++
	if v.rec != nil {
		v.rec.BeginBatch(now)
	}
	return v.processMiss(k, now, nil)
}

// CompleteMiss finishes a parked miss whose traversal the upcall engine
// already ran: it installs the traversal's rules, memoizes the flow, and
// counts the packet and its one slow-path traversal — the deferred twin
// of processMiss's install half. tr must be a successful traversal of k
// computed against the current pipeline version; the caller is
// responsible for replaying the packet through Process instead when the
// traversal failed or a rule update made it stale (Traversal.Version !=
// Pipeline().Version).
//
// Callers must give the packet a second-chance lookup (ProcessPark)
// before completing: while this flow waited, another flow's completion
// may have installed a wildcard entry that covers it — inline, this
// packet would have hit that entry, so completing blindly would count a
// miss and an install the inline switch never saw. Only a
// still-missing flow consumes its traversal.
//
// travNs is the traversal span measured on the
// engine goroutine and parkNs the upcall queue wait; the flight record
// written for the completion carries both, flagged FlightDeferred.
//
// Like every VSwitch method it must run on the goroutine driving the
// switch — completions are delivered to the owning worker, never applied
// from the engine.
func (v *VSwitch) CompleteMiss(k Key, tr *Traversal, now, travNs, parkNs int64) (ProcessResult, error) {
	v.stats.Packets++
	v.stats.CacheMisses++
	v.stats.Slowpath++
	if v.rec != nil {
		v.rec.BeginBatch(now)
	}
	flightFlags := telemetry.FlightMiss
	if v.gf != nil {
		var ev0 uint64
		if v.rec != nil {
			ev0 = v.gf.Stats().EvictLRU
		}
		if _, err := v.gf.Insert(tr, now); err != nil {
			v.stats.InstallErrs++
			flightFlags |= telemetry.FlightInstallErr
		} else {
			v.stats.Installs++
			flightFlags |= telemetry.FlightInstall
		}
		if v.rec != nil && v.gf.Stats().EvictLRU > ev0 {
			flightFlags |= telemetry.FlightEvict
		}
	} else {
		var ev0 uint64
		if v.rec != nil {
			ev0 = v.mf.Stats().EvictLRU
		}
		if e := v.mf.Insert(tr, now); e == nil {
			v.stats.InstallErrs++
			flightFlags |= telemetry.FlightInstallErr
		} else {
			v.stats.Installs++
			flightFlags |= telemetry.FlightInstall
		}
		if v.rec != nil && v.mf.Stats().EvictLRU > ev0 {
			flightFlags |= telemetry.FlightEvict
		}
	}
	v.memoize(k, tr.FinalKey(), tr.Verdict, now)
	if v.rec != nil {
		v.rec.Deferred(telemetry.TierSlowpath, k.FlowHash(), flightFlags, travNs, parkNs)
	}
	return ProcessResult{Verdict: tr.Verdict, Final: tr.FinalKey()}, nil
}
