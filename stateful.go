package gigaflow

import (
	"gigaflow/internal/conntrack"
	"gigaflow/internal/flow"
	gfcache "gigaflow/internal/gigaflow"
	"gigaflow/internal/microflow"
	"gigaflow/internal/packet"
)

// ConntrackTable is the connection table backing the stateful datapath;
// see internal/conntrack for the state machine and epoch protocol.
type ConntrackTable = conntrack.Table

// WithConntrack enables connection tracking: every TCP/UDP packet runs
// the conntrack state machine, its ct_state bits are folded into the key
// the main cache and slowpath match on, and stateful NAT actions
// (dnat/snat/ct_nat) resolve against per-connection bindings. maxConns
// bounds the table (0 = unbounded; LRU eviction under pressure).
//
// Conntrack changes which entry points make sense: feed TCP flags via
// ProcessMeta/ProcessBatchMeta so the state machine sees handshakes and
// closes. The plain Process/ProcessBatch paths still work (flags read as
// zero — every TCP connection then looks like a half-open flow that
// establishes on the first reply and never closes).
func WithConntrack(maxConns int) VSwitchOption {
	return func(v *VSwitch) { v.ct = conntrack.NewTable(maxConns) }
}

// WithConntrackMaxIdle enables idle expiry of tracked connections on the
// ExpireIdle sweep, independent of the cache tiers' max-idle. Expired
// connections are epoch-poisoned, so cache entries that depended on them
// die lazily on their next hit.
func WithConntrackMaxIdle(ns int64) VSwitchOption {
	return func(v *VSwitch) { v.ctMaxIdle = ns }
}

// Conntrack returns the connection table, or nil when tracking is
// disabled.
func (v *VSwitch) Conntrack() *conntrack.Table { return v.ct }

// ctServe is the conntrack fast-path guard for a microflow hit: the
// memoized result may be served iff the connection it was built under
// still carries the memoized epoch AND this packet cannot transition the
// connection. Serving also refreshes the connection's LRU/LastSeen so it
// stays alive while the microflow tier absorbs its traffic. Entries with
// no connection (nil Ct) are connection-independent and always serve.
//
// A false return means the entry is stale or the packet is a potential
// state-change; the caller drops the entry and takes the full path.
//
//gf:hotpath
func (v *VSwitch) ctServe(e *microflow.Entry, k Key, tcpFlags uint8, now int64) bool {
	c := e.Ct
	if c == nil {
		return true
	}
	if c.Epoch != e.CtEpoch ||
		conntrack.MayTransition(c.State, e.CtDir, k.Get(flow.FieldIPProto), tcpFlags) {
		return false
	}
	v.ct.Touch(c, now)
	v.stats.CtFastpath++
	return true
}

// ctPathValid checks every connection-dependent entry on a main-cache
// hit path against the conntrack table: each must still resolve to a
// live connection carrying exactly the epoch it was built under. On the
// first stale entry it diverts to the cold invalidation sweep and
// reports the hit unusable.
//
//gf:hotpath
func (v *VSwitch) ctPathValid(path []*gfcache.Entry) bool {
	for _, e := range path {
		if e.CtEpoch != 0 && !v.ct.EpochValid(e.CtConn, e.CtEpoch) {
			v.ctInvalidatePath(path)
			return false
		}
	}
	return true
}

// ctInvalidatePath removes every stale connection-dependent entry on a
// hit path — the conntrack cache-invalidation protocol's eager half
// (the lazy half is epoch poisoning; see internal/conntrack).
//
//gf:hotpath-safe stale-epoch invalidation is a rare cold event
func (v *VSwitch) ctInvalidatePath(path []*gfcache.Entry) {
	for _, e := range path {
		if e.CtEpoch != 0 && !v.ct.EpochValid(e.CtConn, e.CtEpoch) {
			v.gf.Remove(e)
			v.stats.CtInvalidated++
		}
	}
}

// memoizeCt records a processed flow in the Microflow tier under
// conntrack rules: results for tracked connections are bound to the
// connection's current epoch (served only under the ctServe guard), and
// ICMP results are never memoized — their ct_rel bit flips as tracked
// host pairs come and go, and an exact entry has no way to revalidate
// that.
//
//gf:hotpath-safe Microflow insert allocates only on first sight of a flow
func (v *VSwitch) memoizeCt(k, final Key, verdict Verdict, now int64,
	conn *conntrack.Conn, dir conntrack.Dir) {
	if v.uf == nil {
		return
	}
	if v.ct == nil {
		v.uf.Insert(k, final, verdict, now)
		return
	}
	if conn != nil {
		v.uf.InsertCt(k, final, verdict, now, conn, conn.Epoch, dir)
		return
	}
	if k.Get(flow.FieldEthType) == packet.EtherTypeIPv4 &&
		k.Get(flow.FieldIPProto) == packet.IPProtoICMP {
		return
	}
	v.uf.Insert(k, final, verdict, now)
}

// ctResolver resolves stateful NAT actions during a slow-path traversal
// against a conntrack table and a pipeline's NAT pools, for the single
// connection the packet at hand belongs to. Both the VSwitch slow path
// and the cache-free Reference walk use it, which is what makes their
// NAT decisions bit-identical.
type ctResolver struct {
	ct   *conntrack.Table
	pipe *Pipeline
	conn *conntrack.Conn
	dir  conntrack.Dir
}

// Resolve implements pipeline.Resolver. Forward-direction dnat/snat pick
// (and then reuse) the connection's binding from the action's pool;
// reply-direction dnat/snat and ct_nat apply the inverse rewrite. All
// resolutions report the connection's original tuple and current epoch,
// tying the resulting cache entries to this connection generation.
func (r *ctResolver) Resolve(a Action) ([]Action, Key, uint64, bool) {
	c := r.conn
	if c == nil {
		return nil, Key{}, 0, false // untracked packet: stateful action is a no-op
	}
	switch a.Type {
	case flow.ActionDNAT:
		if r.dir == conntrack.DirForward {
			if !c.DNAT.Set {
				tgt, ok := r.pick(uint16(a.Value))
				if !ok {
					return nil, Key{}, 0, false
				}
				r.ct.SetDNAT(c, tgt.IP, tgt.Port)
			}
			return []Action{
				flow.SetField(flow.FieldIPDst, c.DNAT.IP),
				flow.SetField(flow.FieldTpDst, c.DNAT.Port),
			}, c.Orig, c.Epoch, true
		}
		// Reply direction: un-DNAT — the source reads as the original
		// destination (the virtual IP the client spoke to).
		return []Action{
			flow.SetField(flow.FieldIPSrc, c.Orig.Get(flow.FieldIPDst)),
			flow.SetField(flow.FieldTpSrc, c.Orig.Get(flow.FieldTpDst)),
		}, c.Orig, c.Epoch, true
	case flow.ActionSNAT:
		if r.dir == conntrack.DirForward {
			if !c.SNAT.Set {
				tgt, ok := r.pick(uint16(a.Value))
				if !ok {
					return nil, Key{}, 0, false
				}
				r.ct.SetSNAT(c, tgt.IP, tgt.Port)
			}
			return []Action{
				flow.SetField(flow.FieldIPSrc, c.SNAT.IP),
				flow.SetField(flow.FieldTpSrc, c.SNAT.Port),
			}, c.Orig, c.Epoch, true
		}
		// Reply direction: un-SNAT — restore the original source as the
		// destination.
		return []Action{
			flow.SetField(flow.FieldIPDst, c.Orig.Get(flow.FieldIPSrc)),
			flow.SetField(flow.FieldTpDst, c.Orig.Get(flow.FieldTpSrc)),
		}, c.Orig, c.Epoch, true
	case flow.ActionCtNAT:
		// Apply the connection's recorded bindings in the packet's
		// direction: the identity rewrite when no binding exists.
		nk := c.NATKey(r.dir)
		return []Action{
			flow.SetField(flow.FieldIPSrc, nk.Get(flow.FieldIPSrc)),
			flow.SetField(flow.FieldIPDst, nk.Get(flow.FieldIPDst)),
			flow.SetField(flow.FieldTpSrc, nk.Get(flow.FieldTpSrc)),
			flow.SetField(flow.FieldTpDst, nk.Get(flow.FieldTpDst)),
		}, c.Orig, c.Epoch, true
	}
	return nil, Key{}, 0, false
}

// pick selects this connection's backend from a NAT pool: deterministic
// in the connection's tuple and generation (BindHash), so a replayed
// trace binds identically, while a reused tuple may rebind.
func (r *ctResolver) pick(pool uint16) (NATTarget, bool) {
	targets := r.pipe.NATPool(pool)
	if len(targets) == 0 {
		return NATTarget{}, false
	}
	return targets[r.conn.BindHash()%uint64(len(targets))], true
}
