package gigaflow

import (
	"fmt"
	"testing"

	"gigaflow/internal/conntrack"
	"gigaflow/internal/packet"
)

// statefulPipeline is the dnslb shape in miniature: classify on
// ct_state, dnat new connections from a pool, match the REWRITTEN
// destination in a later table, and un-NAT replies with ct_nat — every
// cached sub-traversal depends on connection state somewhere.
func statefulPipeline() *Pipeline {
	p := NewPipeline("stateful-test")
	p.AddTable(0, "classify", NewFieldSet(FieldEthType, FieldIPProto,
		FieldIPDst, FieldTpDst, FieldCtState))
	p.AddTable(1, "lb", NewFieldSet(FieldIPDst))
	p.AddTable(2, "egress", NewFieldSet(FieldIPDst))
	p.AddTable(3, "reverse", NewFieldSet(FieldIPSrc))

	// Replies take the reverse path; closed connections are dropped at
	// classify so a stale "established" entry is observable the moment a
	// FIN lands.
	p.MustAddRule(0, MustParseMatch("eth_type=0x0800,ct_state=0x20/0x20"), 30,
		[]Action{Drop()}, NoTable)
	p.MustAddRule(0, MustParseMatch("eth_type=0x0800,ct_state=0x11/0x31"), 20, nil, 3)
	p.MustAddRule(0, MustParseMatch(fmt.Sprintf(
		"eth_type=0x0800,ip_dst=%d,ct_state=0x01/0x31", vipIP)), 10, nil, 1)
	p.MustAddRule(0, MustParseMatch("*"), 1, []Action{Output(99)}, NoTable)

	p.MustAddRule(1, MustParseMatch("*"), 10, []Action{DNAT(1)}, 2)

	for i := 0; i < poolN; i++ {
		p.MustAddRule(2, MustParseMatch(fmt.Sprintf("ip_dst=%d", backendIP(i))), 10,
			[]Action{Output(uint16(100 + i))}, NoTable)
	}
	p.MustAddRule(2, MustParseMatch("*"), 1, []Action{Drop()}, NoTable)

	p.MustAddRule(3, MustParseMatch("*"), 10,
		[]Action{CtNAT(), Output(1)}, NoTable)

	targets := make([]NATTarget, poolN)
	for i := range targets {
		targets[i] = NATTarget{IP: backendIP(i), Port: 8000 + uint64(i)}
	}
	p.SetNATPool(1, targets)
	return p
}

const (
	vipIP = 0x0a090001
	poolN = 3
)

func backendIP(i int) uint64 { return 0x0a140001 + uint64(i) }

func ctKey(client int, proto uint64) Key {
	var k Key
	return k.With(FieldEthType, packet.EtherTypeIPv4).
		With(FieldIPSrc, 0x0a010000+uint64(client)).
		With(FieldIPDst, vipIP).
		With(FieldIPProto, proto).
		With(FieldTpSrc, 2000+uint64(client)).
		With(FieldTpDst, 443)
}

// ctEvent is one packet of the differential trace.
type ctEvent struct {
	k     Key
	flags uint8
}

// invertTuple swaps a key's endpoints (the raw reply as seen pre-NAT —
// used only where no NAT binding rewrote the reply path).
func invertTuple(k Key) Key {
	return k.With(FieldIPSrc, k.Get(FieldIPDst)).
		With(FieldIPDst, k.Get(FieldIPSrc)).
		With(FieldTpSrc, k.Get(FieldTpDst)).
		With(FieldTpDst, k.Get(FieldTpSrc))
}

// xorshift is a tiny deterministic PRNG so the differential trace is
// reproducible without the clock or global rand.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// replyKeyFor asks the oracle's conntrack table for the tuple the
// backend's reply carries (post-NAT). Both datapaths see identical
// traces, so resolving against either table gives the same answer.
func replyKeyFor(ct *conntrack.Table, fwd Key) (Key, bool) {
	c, _, ok := ct.Lookup(fwd)
	if !ok {
		return Key{}, false
	}
	nk := c.NATKey(conntrack.DirForward)
	return fwd.With(FieldIPSrc, nk.Get(FieldIPDst)).
		With(FieldIPDst, nk.Get(FieldIPSrc)).
		With(FieldTpSrc, nk.Get(FieldTpDst)).
		With(FieldTpDst, nk.Get(FieldTpSrc)), true
}

// TestStatefulDifferential is the cache-invalidation proof: a randomized
// interleaving of handshakes, data, closes, tuple reuse, and idle expiry
// across many connections runs through a conntrack-enabled VSwitch on
// BOTH cache backends and through the cache-free Reference walk. Every
// packet's verdict and final key must be bit-identical on all three —
// if any ct_state-dependent cache entry ever survived a transition it
// depended on, the cached result would diverge from the oracle here.
func TestStatefulDifferential(t *testing.T) {
	const (
		clients = 48
		packets = 12000
		maxIdle = 500_000 // virtual ns
	)
	for _, backend := range []string{"gigaflow", "megaflow"} {
		t.Run(backend, func(t *testing.T) {
			opts := []VSwitchOption{
				WithMicroflow(4 * clients),
				WithConntrack(0),
				WithConntrackMaxIdle(maxIdle),
			}
			if backend == "megaflow" {
				opts = append(opts, WithMegaflowBackend(4096))
			}
			vs := NewVSwitch(statefulPipeline(), CacheConfig{NumTables: 4, TableCapacity: 4 * 1024}, opts...)
			ref := NewReference(statefulPipeline(), true, 0)

			rng := xorshift(0x9e3779b97f4a7c15)
			now := int64(0)
			for i := 0; i < packets; i++ {
				now += int64(rng.next()%20_000) + 1
				client := int(rng.next() % clients)
				proto := uint64(packet.IPProtoTCP)
				if client%3 == 0 {
					proto = packet.IPProtoUDP
				}
				fwd := ctKey(client, proto)

				var ev ctEvent
				switch roll := rng.next() % 10; {
				case roll < 4: // forward data (or first packet: SYN)
					ev = ctEvent{fwd, packet.TCPAck}
					if proto == packet.IPProtoTCP {
						if _, _, ok := ref.Conntrack().Lookup(fwd); !ok {
							ev.flags = packet.TCPSyn
						}
					} else {
						ev.flags = 0
					}
				case roll < 8: // reply (post-NAT tuple when bound)
					rk, ok := replyKeyFor(ref.Conntrack(), fwd)
					if !ok {
						rk = invertTuple(fwd)
					}
					ev = ctEvent{rk, packet.TCPAck}
				case roll < 9 && proto == packet.IPProtoTCP: // close
					if rng.next()%2 == 0 {
						ev = ctEvent{fwd, packet.TCPFin | packet.TCPAck}
					} else {
						ev = ctEvent{fwd, packet.TCPRst}
					}
				default: // fresh SYN: reopen after close, dup-SYN otherwise
					ev = ctEvent{fwd, packet.TCPSyn}
					if proto == packet.IPProtoUDP {
						ev.flags = 0
					}
				}

				// Lockstep idle sweep, exactly as the service's expiry
				// ticker would run it.
				if i%500 == 499 {
					vs.ExpireIdle(now)
					ref.ExpireIdle(now, maxIdle)
				}

				want, errW := ref.ProcessMeta(ev.k, ev.flags, now)
				got, errG := vs.ProcessMeta(ev.k, ev.flags, now)
				if (errW != nil) != (errG != nil) {
					t.Fatalf("pkt %d: error divergence: ref=%v vs=%v", i, errW, errG)
				}
				cs, rs := vs.Conntrack().Stats(), ref.Conntrack().Stats()
				if cs.Created != rs.Created || cs.Transitions != rs.Transitions ||
					cs.Reopened != rs.Reopened || cs.Expired != rs.Expired || cs.Active != rs.Active {
					t.Fatalf("pkt %d (flags %#x): table divergence:\n  cached: %+v\n  oracle: %+v", i, ev.flags, cs, rs)
				}
				if got.Verdict != want.Verdict || got.Final != want.Final {
					t.Fatalf("pkt %d (client %d flags %#x key %s):\n  cached: %+v %s\n  oracle: %+v %s\n  stats: %+v",
						i, client, ev.flags, ev.k,
						got.Verdict, got.Final, want.Verdict, want.Final, vs.Stats())
				}
			}

			st := vs.Stats()
			if st.Packets != packets {
				t.Fatalf("processed %d packets, want %d", st.Packets, packets)
			}
			// The trace must actually exercise the protocol: caches hit,
			// guards fire, entries die.
			if st.MicroflowHits == 0 || st.CtFastpath == 0 {
				t.Errorf("fast path never engaged: %+v", st)
			}
			if st.CtGuardFails == 0 {
				t.Errorf("microflow ct guard never fired: %+v", st)
			}
			ctStats := vs.Conntrack().Stats()
			if ctStats.Transitions == 0 || ctStats.Reopened == 0 || ctStats.Expired == 0 {
				t.Errorf("trace too tame: %+v", ctStats)
			}
			t.Logf("stats: %+v", st)
			t.Logf("conntrack: %+v", ctStats)
		})
	}
}

// TestTransitionInvalidatesImmediately is the targeted half of the
// invalidation proof: warm every tier against an established
// connection, close it, and require the very next packets — microflow
// hit path and main-cache hit path both — to see the closed state.
func TestTransitionInvalidatesImmediately(t *testing.T) {
	vs := NewVSwitch(statefulPipeline(), CacheConfig{NumTables: 4, TableCapacity: 4 * 1024},
		WithMicroflow(64), WithConntrack(0))
	fwd := ctKey(1, packet.IPProtoTCP)

	if _, err := vs.ProcessMeta(fwd, packet.TCPSyn, 1); err != nil {
		t.Fatal(err)
	}
	rk, ok := replyKeyFor(vs.Conntrack(), fwd)
	if !ok {
		t.Fatal("no connection after SYN")
	}
	if _, err := vs.ProcessMeta(rk, packet.TCPSyn|packet.TCPAck, 2); err != nil {
		t.Fatal(err)
	}
	// Warm: repeated data packets populate microflow + main cache.
	var est ProcessResult
	for i := 0; i < 4; i++ {
		var err error
		est, err = vs.ProcessMeta(fwd, packet.TCPAck, int64(3+i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if est.Verdict.Kind != VerdictOutput {
		t.Fatalf("established flow not forwarded: %+v", est)
	}
	if !est.MicroflowHit {
		t.Fatal("warmup never reached the microflow tier")
	}

	// FIN: the guard must force this packet through the full path (a
	// FIN-flagged packet can never be served from a memo).
	fin, err := vs.ProcessMeta(fwd, packet.TCPFin|packet.TCPAck, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fin.CacheHit {
		t.Fatal("transition packet served from cache")
	}

	// Post-close, both a flagless data packet (old microflow entry) and
	// the reply direction (its own cached entries) must observe closed →
	// drop, with zero grace period.
	for name, probe := range map[string]ctEvent{
		"forward": {fwd, packet.TCPAck},
		"reply":   {rk, packet.TCPAck},
	} {
		r, err := vs.ProcessMeta(probe.k, probe.flags, 11)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict.Kind != VerdictDrop {
			t.Fatalf("%s packet after close: %+v (stale entry served)", name, r)
		}
	}
	if vs.Stats().CtGuardFails == 0 && vs.Stats().CtInvalidated == 0 {
		t.Fatalf("no invalidation recorded: %+v", vs.Stats())
	}
}

// TestConntrackOffBitIdentical: with conntrack disabled the stateful
// entry points must be the stateless datapath, bit for bit — same
// results AND same counters, TCP flags ignored.
func TestConntrackOffBitIdentical(t *testing.T) {
	build := func() *VSwitch {
		p := NewPipeline("plain")
		p.AddTable(0, "l3", NewFieldSet(FieldIPDst))
		p.AddTable(1, "l4", NewFieldSet(FieldTpDst))
		p.MustAddRule(0, MustParseMatch("ip_dst=10.1.0.0/16"), 10, nil, 1)
		p.MustAddRule(0, MustParseMatch("*"), 1, []Action{Drop()}, NoTable)
		p.MustAddRule(1, MustParseMatch("tp_dst=443"), 10, []Action{Output(2)}, NoTable)
		p.MustAddRule(1, MustParseMatch("*"), 1, []Action{Output(3)}, NoTable)
		return NewVSwitch(p, CacheConfig{NumTables: 2, TableCapacity: 256}, WithMicroflow(128))
	}
	plain, meta := build(), build()

	rng := xorshift(42)
	for i := 0; i < 4000; i++ {
		client := int(rng.next() % 32)
		k := ctKey(client, packet.IPProtoTCP).
			With(FieldIPDst, 0x0a010000+uint64(client%8))
		flags := uint8(rng.next())
		now := int64(i * 1000)

		want, errW := plain.Process(k, now)
		got, errG := meta.ProcessMeta(k, flags, now)
		if (errW != nil) != (errG != nil) || got != want {
			t.Fatalf("pkt %d: ct-off divergence: %+v/%v vs %+v/%v", i, got, errG, want, errW)
		}
	}
	if plain.Stats() != meta.Stats() {
		t.Fatalf("counter divergence:\n  plain: %+v\n  meta:  %+v", plain.Stats(), meta.Stats())
	}
	if plain.CacheEntries() != meta.CacheEntries() {
		t.Fatalf("cache population diverged: %d vs %d", plain.CacheEntries(), meta.CacheEntries())
	}
}
