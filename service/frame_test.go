package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gigaflow"
	wire "gigaflow/internal/packet"
)

// wireKey is the frame-representable analogue of the key() helper: the
// service tests' pipeline matches eth_dst/ip_dst/tp_dst, and a real TCP
// frame additionally carries eth_type/ip_proto/addresses.
func wireKey(host, port uint64) gigaflow.Key {
	return key(host, port).
		With(gigaflow.FieldEthSrc, 0x02aabbccddee).
		With(gigaflow.FieldIPSrc, 0x0a000099).
		With(gigaflow.FieldIPProto, wire.IPProtoTCP).
		With(gigaflow.FieldTpSrc, 40000)
}

func TestSubmitFrame(t *testing.T) {
	s, ctx := startService(t, 2)
	frame := wire.Encode(wireKey(1, 80))
	r, err := s.SubmitFrame(ctx, 0, frame)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict.Port != 1 {
		t.Fatalf("verdict = %v", r.Verdict)
	}
	// The same frame again: exact same key, so a cache hit.
	r, err = s.SubmitFrame(ctx, 0, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Error("second identical frame should hit")
	}
}

func TestSubmitFrameEquivalentToSubmitKey(t *testing.T) {
	k := wireKey(5, 80)
	frame := wire.Encode(k)

	sA, ctxA := startService(t, 1)
	rA, err := sA.SubmitFrame(ctxA, 0, frame)
	if err != nil {
		t.Fatal(err)
	}
	sB, ctxB := startService(t, 1)
	rB, err := sB.Submit(ctxB, k)
	if err != nil {
		t.Fatal(err)
	}
	if rA.Verdict != rB.Verdict || rA.Final != rB.Final {
		t.Fatalf("frame path diverged from key path: %+v vs %+v", rA, rB)
	}
}

func TestSubmitFrameShortFrame(t *testing.T) {
	s, ctx := startService(t, 1)
	if _, err := s.SubmitFrame(ctx, 0, []byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
	if s.frames.errs[wire.ErrShortFrame].Value() != 1 {
		t.Fatal("short frame not counted")
	}
}

func TestFrameTelemetryCounters(t *testing.T) {
	s, ctx := startService(t, 1)
	tcp := wire.Encode(wireKey(1, 80))
	if _, err := s.SubmitFrame(ctx, 0, tcp); err != nil {
		t.Fatal(err)
	}
	udp := wire.Encode(wireKey(2, 80).With(gigaflow.FieldIPProto, wire.IPProtoUDP))
	if _, err := s.SubmitFrame(ctx, 0, udp); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitFrame(ctx, 0, tcp[:36]); err != nil { // degraded but forwarded
		t.Fatal(err)
	}

	if got := s.frames.decoded[wire.ProtoTCP].Value(); got != 2 {
		t.Errorf("tcp decoded = %d, want 2 (one clean, one degraded)", got)
	}
	if got := s.frames.decoded[wire.ProtoUDP].Value(); got != 1 {
		t.Errorf("udp decoded = %d, want 1", got)
	}
	if got := s.frames.errs[wire.ErrL4Truncated].Value(); got != 1 {
		t.Errorf("l4_truncated = %d, want 1", got)
	}
	if got := s.frames.frames.Value(); got != 3 {
		t.Errorf("frames total = %d, want 3", got)
	}
	if got := s.frames.bytes.Value(); got != uint64(len(tcp)+len(udp)+36) {
		t.Errorf("bytes total = %d", got)
	}

	// The counters surface through the registry's Prometheus text.
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gigaflow_frames_decoded_total{proto="tcp"} 2`,
		`gigaflow_frames_decoded_total{proto="udp"} 1`,
		`gigaflow_frame_decode_errors_total{reason="l4_truncated"} 1`,
		`gigaflow_frames_total 3`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

// TestNonblockingDropAccounting fills a worker queue on purpose (the
// service is built but never started, so nothing drains) and checks the
// overload contract: accepted packets fit the queue exactly, rejections
// increment the drop counter, nothing deadlocks, and no Result is ever
// delivered for a rejected packet.
func TestNonblockingDropAccounting(t *testing.T) {
	const depth = 4
	s, err := New(buildPipeline(), Config{
		Workers:    1,
		QueueDepth: depth,
		Cache:      gigaflow.CacheConfig{NumTables: 3, TableCapacity: 256},
	})
	if err != nil {
		t.Fatal(err)
	}

	const offered = depth + 6
	resp := make(chan Result, offered)
	accepted := 0
	for i := 0; i < offered; i++ {
		if _, err := s.Submit(context.Background(), key(1, 80), Nonblocking(), WithResponse(resp)); err == nil {
			accepted++
		}
	}
	if accepted != depth {
		t.Fatalf("accepted %d, want queue depth %d", accepted, depth)
	}
	if got := s.workers[0].drops.Load(); got != offered-depth {
		t.Fatalf("drops = %d, want %d", got, offered-depth)
	}

	// The drop counter surfaces in the registry.
	s.collectServiceMetrics()
	drops := s.reg.CounterVec("gigaflow_queue_full_drops_total",
		"Nonblocking submissions dropped because the worker queue was full.", "worker")
	if got := drops.With("0").Value(); got != offered-depth {
		t.Fatalf("registry drops = %d, want %d", got, offered-depth)
	}

	// Start the service: exactly the accepted packets produce Results —
	// rejected submissions must never surface on the channel.
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < accepted; i++ {
		select {
		case r := <-resp:
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("result %d never arrived (worker wedged?)", i)
		}
	}
	select {
	case r := <-resp:
		t.Fatalf("unexpected extra result %+v for a dropped packet", r)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestNonblockingFrameDropAccounting exercises the same overload path
// through the byte-level frontend, including the short-frame rejection
// (which must not count as a queue drop).
func TestNonblockingFrameDropAccounting(t *testing.T) {
	const depth = 2
	s, err := New(buildPipeline(), Config{
		Workers:    1,
		QueueDepth: depth,
		Cache:      gigaflow.CacheConfig{NumTables: 3, TableCapacity: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.Encode(wireKey(1, 80))
	resp := make(chan Result, depth)
	accepted, rejected := 0, 0
	for i := 0; i < depth+3; i++ {
		if _, err := s.SubmitFrame(context.Background(), 0, frame, Nonblocking(), WithResponse(resp)); err == nil {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted != depth || rejected != 3 {
		t.Fatalf("accepted %d rejected %d, want %d/%d", accepted, rejected, depth, 3)
	}
	if got := s.workers[0].drops.Load(); got != 3 {
		t.Fatalf("queue drops = %d, want 3", got)
	}
	// Short frames are decode rejections, not queue drops.
	if _, err := s.SubmitFrame(context.Background(), 0, frame[:5], Nonblocking(), WithResponse(resp)); err == nil {
		t.Fatal("short frame accepted")
	}
	if got := s.workers[0].drops.Load(); got != 3 {
		t.Fatalf("short frame counted as queue drop (drops = %d)", got)
	}
	if got := s.frames.errs[wire.ErrShortFrame].Value(); got != 1 {
		t.Fatalf("short frame not counted as decode error (= %d)", got)
	}

	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < accepted; i++ {
		select {
		case <-resp:
		case <-time.After(5 * time.Second):
			t.Fatal("queued frame never processed")
		}
	}
	select {
	case <-resp:
		t.Fatal("dropped frame produced a result")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestCapacitySplitExact is the regression test for the remainder-
// dropping bug: the per-worker capacity division must conserve the
// configured totals for every tier and backend.
func TestCapacitySplitExact(t *testing.T) {
	t.Run("gigaflow", func(t *testing.T) {
		const workers, total, tables = 3, 1000, 4
		s, err := New(buildPipeline(), Config{
			Workers:           workers,
			Cache:             gigaflow.CacheConfig{NumTables: tables, TableCapacity: total},
			MicroflowCapacity: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		sumCache, sumMicro := 0, 0
		for _, w := range s.workers {
			sumCache += w.vs.Cache().Capacity()
			sumMicro += w.vs.Microflow().Capacity()
		}
		if sumCache != tables*total {
			t.Errorf("summed Gigaflow capacity = %d, want %d (remainder dropped)", sumCache, tables*total)
		}
		if sumMicro != 10 {
			t.Errorf("summed Microflow capacity = %d, want 10", sumMicro)
		}
	})
	t.Run("megaflow", func(t *testing.T) {
		const workers, total = 4, 1002
		s, err := New(buildPipeline(), Config{
			Workers:          workers,
			Backend:          BackendMegaflow,
			MegaflowCapacity: total,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, w := range s.workers {
			sum += w.vs.Megaflow().Capacity()
		}
		if sum != total {
			t.Errorf("summed Megaflow capacity = %d, want %d", sum, total)
		}
	})
	t.Run("floor of one", func(t *testing.T) {
		// Fewer entries than workers: every worker still gets 1 (the
		// caches reject zero), so the total is the worker count.
		s, err := New(buildPipeline(), Config{
			Workers: 4,
			Cache:   gigaflow.CacheConfig{NumTables: 1, TableCapacity: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range s.workers {
			if got := w.vs.Cache().Capacity(); got != 1 {
				t.Errorf("worker capacity = %d, want floor of 1", got)
			}
		}
	})
}

func TestShareOf(t *testing.T) {
	for _, tc := range []struct {
		total, n int
		want     []int
	}{
		{100, 3, []int{34, 33, 33}},
		{8, 4, []int{2, 2, 2, 2}},
		{10, 4, []int{3, 3, 2, 2}},
		{1, 3, []int{1, 1, 1}}, // floor of one
		{0, 2, []int{1, 1}},
	} {
		for i, want := range tc.want {
			if got := shareOf(tc.total, tc.n, i); got != want {
				t.Errorf("shareOf(%d,%d,%d) = %d, want %d", tc.total, tc.n, i, got, want)
			}
		}
	}
}

// TestSubmitFrameBatchPerFramePorts: each Frame entry carries its own
// ingress port, and the decoded key for entry i must carry exactly
// frames[i].InPort — one batch can span multiple NIC queues without
// collapsing provenance onto a single port.
func TestSubmitFrameBatchPerFramePorts(t *testing.T) {
	s, ctx := startService(t, 2)
	raw := wire.Encode(wireKey(1, 80))
	frames := []Frame{
		{InPort: 0, Data: raw},
		{InPort: 3, Data: raw},
		{InPort: 7, Data: raw},
		{InPort: 3, Data: raw},
		{InPort: 65535, Data: raw},
	}
	b := NewBatch(len(frames))
	if err := s.SubmitFrameBatch(ctx, frames, b); err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if err := b.Result(i).Err; err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := b.Request(i).Key.Get(gigaflow.FieldInPort); got != uint64(f.InPort) {
			t.Errorf("frame %d: decoded in_port %d, want %d", i, got, f.InPort)
		}
		if b.Result(i).Verdict.Port != 1 {
			t.Errorf("frame %d: verdict %+v", i, b.Result(i).Verdict)
		}
	}
}
