package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/pcap"
)

// ReplayConfig parameterises a pcap replay through a running Service.
type ReplayConfig struct {
	// InPort is the ingress port every replayed frame is attributed to
	// (a replay injects on one logical NIC queue).
	InPort uint16
	// Timed paces the replay by the capture's own timestamps instead
	// of as-fast-as-possible: each frame is submitted no earlier than
	// its trace offset from the first frame, scaled by Speedup.
	Timed bool
	// Speedup compresses (>1) or stretches (<1) the trace timeline in
	// Timed mode (default 1.0).
	Speedup float64
	// Blocking submits each batch and waits for its results — no frame
	// is ever dropped, which keeps the replayed cache behaviour
	// identical to direct key submission. The default is fire-and-forget
	// nonblocking submission, the overload semantics of a real rx ring,
	// with queue-full drops counted.
	Blocking bool
	// Limit stops after this many records (0 replays everything).
	Limit int
	// BatchSize groups decoded frames into batches of this many before
	// submission (default DefaultBatchSize); each batch crosses a worker
	// channel at most once per worker. 1 reproduces per-packet
	// submission exactly. Batching never reorders frames bound for the
	// same worker, so cache behaviour and final stats are identical at
	// any batch size (in Blocking mode, where nothing is dropped).
	BatchSize int
}

// DefaultBatchSize is the replay batch size when ReplayConfig leaves
// BatchSize zero — big enough to amortize the per-batch channel and
// bookkeeping cost, small enough to keep per-frame latency irrelevant.
const DefaultBatchSize = 32

// ReplayReport summarises one replay.
type ReplayReport struct {
	// Frames is the number of pcap records read.
	Frames int
	// Bytes is the sum of captured frame bytes read.
	Bytes int
	// Submitted counts frames that entered a worker queue.
	Submitted int
	// QueueDrops counts frames rejected by a full worker queue
	// (non-blocking mode only).
	QueueDrops int
	// Rejected counts frames the decoder refused outright (shorter
	// than an Ethernet header).
	Rejected int
	// DecodeErrors counts frames that decoded with a defect but were
	// still forwarded on a degraded key.
	DecodeErrors int
	// PipelineErrs counts blocking-mode frames whose processing
	// returned a pipeline error (misconfigured table graph).
	PipelineErrs int
	// PerProto counts decoded frames by protocol class, indexed by
	// wire.Proto.
	PerProto [wire.NumProtos]int
	// Truncated reports that the capture ended mid-record; the replay
	// covers everything before the cut.
	Truncated bool
	// Stats is the service-wide VSwitch counter delta over the replay:
	// hits, misses, slowpath traversals attributable to this trace.
	Stats gigaflow.VSwitchStats
	// Elapsed is the wall-clock replay duration.
	Elapsed time.Duration
}

// Replay streams a pcap capture through the service frame frontend in
// batches of cfg.BatchSize and reports what happened. The service must
// be started. In non-blocking mode the report's Stats are still
// complete: the final stats snapshot runs as a control op behind every
// submitted frame on each worker's FIFO queue, so it observes all of
// them.
//
// On context cancellation every batch already handed to the workers is
// drained before Replay returns (SubmitBatch gathers its in-flight
// results even on failure), so a cancelled replay leaks no goroutine
// and no pending result.
func (s *Service) Replay(ctx context.Context, r *pcap.Reader, cfg ReplayConfig) (ReplayReport, error) {
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	var rep ReplayReport
	before, err := s.Stats(ctx)
	if err != nil {
		return rep, err
	}

	batch := NewBatch(cfg.BatchSize)
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		var err error
		if cfg.Blocking {
			err = s.SubmitBatch(ctx, batch)
		} else {
			err = s.SubmitBatch(ctx, batch, Nonblocking())
		}
		if err != nil {
			return err
		}
		for i := 0; i < batch.Len(); i++ {
			switch e := batch.Result(i).Err; {
			case e == nil:
				rep.Submitted++
			case errors.Is(e, ErrQueueFull):
				rep.QueueDrops++
			default:
				// A per-packet pipeline error is a property of the
				// ruleset, not the replay; count it and keep going.
				rep.Submitted++
				rep.PipelineErrs++
			}
		}
		batch.Reset()
		return nil
	}

	start := time.Now()
	var traceStart int64
	for cfg.Limit <= 0 || rep.Frames < cfg.Limit {
		rec, err := r.Next()
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// An interrupted capture: replay what exists, as
				// capture tooling does, and say so in the report.
				rep.Truncated = true
				break
			}
			if errors.Is(err, io.EOF) {
				break
			}
			return rep, err
		}
		if cfg.Timed {
			if rep.Frames == 0 {
				traceStart = rec.TimeNs
			}
			offset := time.Duration(float64(rec.TimeNs-traceStart) / cfg.Speedup)
			if wait := time.Until(start.Add(offset)); wait > 0 {
				// Flush before pacing so frames already decoded are not
				// held past their trace slots by later ones.
				if err := flush(); err != nil {
					return rep, err
				}
				select {
				case <-ctx.Done():
					return rep, ctx.Err()
				case <-time.After(wait):
				}
			}
		}
		rep.Frames++
		rep.Bytes += len(rec.Frame)
		k, info := s.DecodeFrame(cfg.InPort, rec.Frame)
		if info.Err == wire.ErrShortFrame {
			rep.Rejected++
			continue
		}
		rep.PerProto[info.Proto]++
		if info.Err != wire.ErrOK {
			rep.DecodeErrors++
		}
		batch.AddMeta(k, info.TCPFlags)
		if batch.Len() >= cfg.BatchSize {
			if err := flush(); err != nil {
				return rep, err
			}
		}
	}
	if err := flush(); err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(start)
	after, err := s.Stats(ctx)
	if err != nil {
		return rep, err
	}
	rep.Stats = statsDelta(before, after)
	return rep, nil
}

// HitRate is the cache hit rate over the replayed traffic (microflow +
// main cache), 0 when nothing was processed.
func (rep ReplayReport) HitRate() float64 { return rep.Stats.TotalHitRate() }

// String renders a one-line summary.
func (rep ReplayReport) String() string {
	return fmt.Sprintf("%d frames (%d bytes) in %v: %d submitted, %d queue drops, %d rejected, %d decode errors, hit rate %.2f%%",
		rep.Frames, rep.Bytes, rep.Elapsed.Round(time.Millisecond),
		rep.Submitted, rep.QueueDrops, rep.Rejected, rep.DecodeErrors, 100*rep.HitRate())
}

// statsDelta subtracts two cumulative VSwitchStats snapshots.
func statsDelta(before, after gigaflow.VSwitchStats) gigaflow.VSwitchStats {
	return gigaflow.VSwitchStats{
		Packets:       after.Packets - before.Packets,
		MicroflowHits: after.MicroflowHits - before.MicroflowHits,
		CacheHits:     after.CacheHits - before.CacheHits,
		CacheMisses:   after.CacheMisses - before.CacheMisses,
		Slowpath:      after.Slowpath - before.Slowpath,
		Installs:      after.Installs - before.Installs,
		InstallErrs:   after.InstallErrs - before.InstallErrs,
		CtFastpath:    after.CtFastpath - before.CtFastpath,
		CtGuardFails:  after.CtGuardFails - before.CtGuardFails,
		CtInvalidated: after.CtInvalidated - before.CtInvalidated,
	}
}
