package service

import (
	"strings"
	"testing"
	"time"

	"gigaflow"
)

// TestAliasFolding checks the one-release migration contract: a config
// written entirely against the deprecated flat fields builds the same
// service as its nested equivalent.
func TestAliasFolding(t *testing.T) {
	flat := Config{
		Workers:       1,
		Cache:         gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		ExpireEvery:   7 * time.Second,
		MaxIdle:       time.Minute,
		UpcallWorkers: 2,
		UpcallQueue:   512,
		UpcallBatch:   16,
		NoLatency:     true,
	}
	folded, err := flat.foldAliases()
	if err != nil {
		t.Fatal(err)
	}
	if folded.Expiry.Every != 7*time.Second || folded.Expiry.MaxIdle != time.Minute {
		t.Errorf("Expiry section not folded: %+v", folded.Expiry)
	}
	if folded.Upcall.Workers != 2 || folded.Upcall.Queue != 512 || folded.Upcall.Batch != 16 {
		t.Errorf("Upcall section not folded: %+v", folded.Upcall)
	}
	if !folded.Latency.Disable {
		t.Error("Latency.Disable not folded")
	}
	if folded.ExpireEvery != 0 || folded.MaxIdle != 0 || folded.UpcallWorkers != 0 ||
		folded.UpcallQueue != 0 || folded.UpcallBatch != 0 || folded.NoLatency {
		t.Errorf("flat aliases not cleared after folding: %+v", folded)
	}
	// The folded config must actually build.
	if _, err := New(buildPipeline(), flat); err != nil {
		t.Fatalf("flat-alias config rejected: %v", err)
	}
}

// TestAliasConflict: setting a flat field AND its nested replacement is
// ambiguous and must be rejected, never silently resolved.
func TestAliasConflict(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ExpireEvery", Config{ExpireEvery: time.Second, Expiry: ExpiryConfig{Every: time.Second, MaxIdle: time.Minute}}},
		{"MaxIdle", Config{MaxIdle: time.Second, Expiry: ExpiryConfig{MaxIdle: time.Minute}}},
		{"UpcallWorkers", Config{UpcallWorkers: 1, Upcall: UpcallConfig{Workers: 2}}},
		{"NoLatency", Config{NoLatency: true, Latency: LatencyConfig{Disable: true}}},
		{"FlightRecords", Config{FlightRecords: 8, Latency: LatencyConfig{FlightRecords: 8}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(buildPipeline(), tc.cfg)
			if err == nil || !strings.Contains(err.Error(), "both") {
				t.Fatalf("err = %v, want both-set conflict", err)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("err %q does not name the conflicting field %s", err, tc.name)
			}
		})
	}
}

// TestConntrackConfigValidation covers the stateful section's contract.
func TestConntrackConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // error substring; "" means valid
	}{
		{"enable ok",
			Config{Conntrack: ConntrackConfig{Enable: true}}, ""},
		{"negative maxconns",
			Config{Conntrack: ConntrackConfig{Enable: true, MaxConns: -1}}, "MaxConns"},
		{"negative ct maxidle",
			Config{Conntrack: ConntrackConfig{Enable: true, MaxIdle: -time.Second}}, "Conntrack.MaxIdle"},
		{"knobs without enable",
			Config{Conntrack: ConntrackConfig{MaxConns: 10}}, "Enable is false"},
		{"ct excludes upcall offload",
			Config{Upcall: UpcallConfig{Workers: 1}, Conntrack: ConntrackConfig{Enable: true}},
			"mutually exclusive"},
		// Expiry.Every needs something to expire — a ct MaxIdle alone
		// satisfies it.
		{"expiry driven by ct idle alone",
			Config{Expiry: ExpiryConfig{Every: time.Second},
				Conntrack: ConntrackConfig{Enable: true, MaxIdle: time.Minute}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(buildPipeline(), tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestConntrackDefaults: enabling conntrack without sizing it gets the
// documented default budget, split across workers.
func TestConntrackDefaults(t *testing.T) {
	s, err := New(buildPipeline(), Config{
		Workers:   2,
		Cache:     gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		Conntrack: ConntrackConfig{Enable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Conntrack.MaxConns != 65536 {
		t.Errorf("default Conntrack.MaxConns = %d, want 65536", s.cfg.Conntrack.MaxConns)
	}
	for i, w := range s.workers {
		if w.vs.Conntrack() == nil {
			t.Fatalf("worker %d has no conntrack table", i)
		}
	}
}
