package service

import (
	"strings"
	"testing"
	"time"

	"gigaflow"
)

// TestConntrackConfigValidation covers the stateful section's contract.
func TestConntrackConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // error substring; "" means valid
	}{
		{"enable ok",
			Config{Conntrack: ConntrackConfig{Enable: true}}, ""},
		{"negative maxconns",
			Config{Conntrack: ConntrackConfig{Enable: true, MaxConns: -1}}, "MaxConns"},
		{"negative ct maxidle",
			Config{Conntrack: ConntrackConfig{Enable: true, MaxIdle: -time.Second}}, "Conntrack.MaxIdle"},
		{"knobs without enable",
			Config{Conntrack: ConntrackConfig{MaxConns: 10}}, "Enable is false"},
		{"ct excludes upcall offload",
			Config{Upcall: UpcallConfig{Workers: 1}, Conntrack: ConntrackConfig{Enable: true}},
			"mutually exclusive"},
		// Expiry.Every needs something to expire — a ct MaxIdle alone
		// satisfies it.
		{"expiry driven by ct idle alone",
			Config{Expiry: ExpiryConfig{Every: time.Second},
				Conntrack: ConntrackConfig{Enable: true, MaxIdle: time.Minute}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(buildPipeline(), tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestConntrackDefaults: enabling conntrack without sizing it gets the
// documented default budget, split across workers.
func TestConntrackDefaults(t *testing.T) {
	s, err := New(buildPipeline(), Config{
		Workers:   2,
		Cache:     gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		Conntrack: ConntrackConfig{Enable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Conntrack.MaxConns != 65536 {
		t.Errorf("default Conntrack.MaxConns = %d, want 65536", s.cfg.Conntrack.MaxConns)
	}
	for i, w := range s.workers {
		if w.vs.Conntrack() == nil {
			t.Fatalf("worker %d has no conntrack table", i)
		}
	}
}
