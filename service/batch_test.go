package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"gigaflow"
	wire "gigaflow/internal/packet"
)

// TestSubmitBatchEmpty: an empty batch is a no-op — no error even on an
// unstarted service (there is nothing to refuse).
func TestSubmitBatchEmpty(t *testing.T) {
	s, err := New(buildPipeline(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(8)
	if err := s.SubmitBatch(context.Background(), b); err != nil {
		t.Fatalf("empty batch on unstarted service: %v", err)
	}
	s2, ctx := startService(t, 2)
	if err := s2.SubmitBatch(ctx, b); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	st, err := s2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 0 {
		t.Fatalf("empty batch processed %d packets", st.Packets)
	}
}

// TestSubmitBatchOfOne: a single-request batch behaves exactly like
// Submit.
func TestSubmitBatchOfOne(t *testing.T) {
	s, ctx := startService(t, 2)
	direct, err := s.Submit(ctx, key(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(1)
	b.Add(key(1, 80))
	if err := s.SubmitBatch(ctx, b); err != nil {
		t.Fatal(err)
	}
	r := b.Result(0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Verdict != direct.Verdict || r.Final != direct.Final {
		t.Fatalf("batch-of-one result %+v != Submit result %+v", r, direct)
	}
	if !r.CacheHit {
		t.Error("second packet of the flow must hit")
	}
}

// TestSubmitBatchLargerThanQueue: a batch crosses each worker channel as
// ONE message, so a blocking batch far larger than the queue depth still
// completes — queue depth bounds messages, not packets.
func TestSubmitBatchLargerThanQueue(t *testing.T) {
	s, err := New(buildPipeline(), Config{
		Workers:    2,
		QueueDepth: 2,
		Cache:      gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	const n = 500
	b := NewBatch(n)
	for i := 0; i < n; i++ {
		b.Add(key(uint64(i%100), 80))
	}
	if err := s.SubmitBatch(ctx, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Result(i).Err; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if b.Result(i).Verdict.Port != 1 {
			t.Fatalf("request %d: verdict %+v", i, b.Result(i).Verdict)
		}
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != n {
		t.Fatalf("processed %d packets, want %d", st.Packets, n)
	}
}

// TestSubmitFrameBatchMixed: malformed frames are refused per index with
// a *FrameError; the decodable frames around them are still processed.
func TestSubmitFrameBatchMixed(t *testing.T) {
	s, ctx := startService(t, 2)
	good := wire.Encode(wireKey(1, 80))
	short := []byte{0x02, 0x00, 0x00} // shorter than an Ethernet header
	frames := []Frame{{0, good}, {0, short}, {0, good}, {0, short}, {0, good}}

	b := NewBatch(len(frames))
	if err := s.SubmitFrameBatch(ctx, frames, b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(frames) {
		t.Fatalf("batch is not index-aligned: %d requests for %d frames", b.Len(), len(frames))
	}
	for i := range frames {
		err := b.Result(i).Err
		if i%2 == 1 {
			if !errors.Is(err, ErrShortFrame) {
				t.Errorf("frame %d: err = %v, want ErrShortFrame", i, err)
			}
			if !errors.Is(err, ErrBadFrame) {
				t.Errorf("frame %d: err = %v does not match ErrBadFrame", i, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("frame %d: %v", i, err)
		}
		if b.Result(i).Verdict.Port != 1 {
			t.Errorf("frame %d: verdict %+v", i, b.Result(i).Verdict)
		}
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 3 {
		t.Fatalf("processed %d packets, want 3 (refused frames never submitted)", st.Packets)
	}
}

// TestErrorTaxonomy pins the sentinel contract: every lifecycle and
// overload failure is matchable with errors.Is.
func TestErrorTaxonomy(t *testing.T) {
	s, err := New(buildPipeline(), Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := s.Submit(ctx, key(1, 80)); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Submit before Start = %v, want ErrNotStarted", err)
	}
	b := NewBatch(1)
	b.Add(key(1, 80))
	if err := s.SubmitBatch(ctx, b); !errors.Is(err, ErrNotStarted) {
		t.Errorf("SubmitBatch before Start = %v, want ErrNotStarted", err)
	}
	if err := s.Close(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Close before Start = %v, want ErrNotStarted", err)
	}

	// Nonblocking is exempt from the lifecycle check; the queue (depth 1)
	// accepts one packet and then reports ErrQueueFull.
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking()); err != nil {
		t.Errorf("first nonblocking enqueue = %v", err)
	}
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking()); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflowing nonblocking enqueue = %v, want ErrQueueFull", err)
	}

	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(ctx); !errors.Is(err, ErrStarted) {
		t.Errorf("second Start = %v, want ErrStarted", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if _, err := s.Submit(ctx, key(1, 80)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := s.SubmitBatch(ctx, b); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitBatch after Close = %v, want ErrClosed", err)
	}
	if err := s.Start(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after Close = %v, want ErrClosed", err)
	}

	// Frame rejection: both the sentinel and the family match, and the
	// wire code is recoverable.
	_, err = s.SubmitFrame(ctx, 0, []byte{1, 2, 3})
	if !errors.Is(err, ErrShortFrame) || !errors.Is(err, ErrBadFrame) {
		t.Errorf("short frame err = %v, want ErrShortFrame and ErrBadFrame", err)
	}
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Code != wire.ErrShortFrame {
		t.Errorf("short frame err = %#v, want *FrameError{ErrShortFrame}", err)
	}
}

// TestConcurrentBatchSubmitters hammers the batched blocking path from
// many goroutines (run under -race in make ci): every batch must come
// back fully resolved, and the aggregate packet count must be exact.
func TestConcurrentBatchSubmitters(t *testing.T) {
	s, ctx := startService(t, 4)
	const (
		goroutines = 8
		batches    = 20
		batchLen   = 33 // deliberately not a divisor-friendly size
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := NewBatch(batchLen)
			for n := 0; n < batches; n++ {
				b.Reset()
				for i := 0; i < batchLen; i++ {
					b.Add(key(uint64((g*batches+n*7+i)%200), 80))
				}
				if err := s.SubmitBatch(ctx, b); err != nil {
					errCh <- err
					return
				}
				for i := 0; i < batchLen; i++ {
					if err := b.Result(i).Err; err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(goroutines * batches * batchLen); st.Packets != want {
		t.Fatalf("processed %d packets, want %d", st.Packets, want)
	}
}

// TestSubmitBatchNonblocking: enqueue-only semantics with per-index
// ErrQueueFull once a worker queue is full, and WithResponse streaming
// of processed results.
func TestSubmitBatchNonblocking(t *testing.T) {
	// Unstarted service: jobs pile up in the queue unserved, making the
	// overflow deterministic. One batch = one message per worker.
	s, err := New(buildPipeline(), Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := NewBatch(4)
	for i := 0; i < 4; i++ {
		b.Add(key(uint64(i), 80))
	}
	if err := s.SubmitBatch(ctx, b, Nonblocking()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := b.Result(i).Err; err != nil {
			t.Fatalf("request %d of the queued batch: %v", i, err)
		}
	}
	if err := s.SubmitBatch(ctx, b, Nonblocking()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := b.Result(i).Err; !errors.Is(err, ErrQueueFull) {
			t.Fatalf("request %d of the overflow batch: %v, want ErrQueueFull", i, err)
		}
	}

	// Started service with room: WithResponse streams every result.
	s2, ctx2 := startService(t, 2)
	resp := make(chan Result, 8)
	b2 := NewBatch(8)
	for i := 0; i < 8; i++ {
		b2.Add(key(uint64(i), 80))
	}
	if err := s2.SubmitBatch(ctx2, b2, Nonblocking(), WithResponse(resp)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r := <-resp
		if r.Err != nil {
			t.Fatalf("streamed result %d: %v", i, r.Err)
		}
		if r.Verdict.Port != 1 {
			t.Fatalf("streamed result %d: verdict %+v", i, r.Verdict)
		}
	}
}

// TestNonblockingSingleSubmit: the nonblocking single-packet path keeps
// the old TrySubmit contract — fills the queue exactly, then reports
// ErrQueueFull, and a short frame is a decode rejection.
func TestNonblockingSingleSubmit(t *testing.T) {
	s, err := New(buildPipeline(), Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking()); err != nil {
		t.Errorf("Submit into an empty queue = %v", err)
	}
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking()); !errors.Is(err, ErrQueueFull) {
		t.Errorf("Submit into a full queue = %v, want ErrQueueFull", err)
	}
	if _, err := s.SubmitFrame(ctx, 0, []byte{1, 2}, Nonblocking()); !errors.Is(err, ErrShortFrame) {
		t.Errorf("SubmitFrame(short) = %v, want ErrShortFrame", err)
	}
}
