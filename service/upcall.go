// Asynchronous slow-path offload: the service half of the upcall
// subsystem (internal/upcall holds the mechanism — pending-flow table,
// bounded miss queue, drain engine).
//
// With Config.Upcall.Workers set, a worker no longer runs the pipeline
// traversal for a main-cache miss inline. The packet is parked: its
// delivery context (job slot or response channel) is appended to the
// flow's pending-table entry, and — for the first packet of the flow
// only — the entry is enqueued on the shared upcall queue. Engine
// goroutines drain the queue in batches, run each flow's traversal
// against the owning worker's pipeline replica (serialized with that
// worker's own inline slow path through worker.slowMu), and post the
// completed misses back onto the worker's input queue. The worker then
// installs the rules, releases every packet parked behind the flow in
// arrival order, and answers the submitters — so a warm flow behind a
// cold storm is never head-of-line blocked by another flow's traversal.
//
// Equivalence with inline processing is a hard invariant: a parked
// packet is counted nowhere at park time; the completion counts the
// initiator exactly as the inline miss path would, and followers are
// replayed through the normal hot path, hitting the entries the
// completion installed — the same hits they would have been inline,
// where the first packet's miss installs before later packets of the
// flow are looked up. Three races break the naive version of this and
// are each handled here: a rule update can make an in-flight traversal
// stale (version check → replay inline); another flow's completion can
// install a wildcard entry covering this flow (second-chance lookup →
// traversal discarded); and shutdown can strand parked packets (the
// worker's drain sweeps the pending table, failing them with ErrClosed,
// before the service's term channel closes).
package service

import (
	"context"
	"sync"
	"time"

	"gigaflow"
	"gigaflow/internal/telemetry"
	"gigaflow/internal/upcall"
)

// OverflowPolicy selects what a worker does with a fresh miss when the
// upcall queue is full. Followers of an already-pending flow never
// touch the queue, so neither policy can reorder packets within a flow.
type OverflowPolicy uint8

const (
	// OverflowInline (the default) falls back to the inline slow path:
	// the worker runs the traversal itself, exactly as in synchronous
	// mode. Backpressure degrades latency, never correctness.
	OverflowInline OverflowPolicy = iota
	// OverflowDrop fails the packet with ErrUpcallOverflow — the
	// upcall-ring drop of a real datapath, for deployments that prefer
	// shedding cold flows over stalling the worker.
	OverflowDrop
)

// String names the policy.
func (p OverflowPolicy) String() string {
	if p == OverflowDrop {
		return "drop"
	}
	return "inline"
}

// parked is one parked packet's delivery context: where its Result goes
// once the flow's traversal completes. Exactly one of job/resp styles is
// used — batch packets carry their job and slot, single-packet
// submissions their response channel (which may be nil for
// fire-and-forget).
type parked struct {
	job  *batchJob
	idx  int // slot in job.res; meaningless when job is nil
	resp chan<- Result
}

// parkOne parks a missed packet behind its flow's pending entry,
// enqueueing an upcall if the flow was not already pending. It reports
// false when the flow needs an upcall but the queue is full — the caller
// applies the overflow policy; the aborted park leaves no state behind.
func (w *worker) parkOne(k gigaflow.Key, p parked, now int64) bool {
	m, created := w.pending.Park(k, w.idx, now, p)
	if !created {
		return true // follower: rides the traversal already in flight
	}
	if w.upq.TryEnqueue(m) {
		return true
	}
	w.pending.Remove(k)
	return false
}

// parkFallback finishes a missed packet the upcall queue refused,
// according to the worker's overflow policy.
func (w *worker) parkFallback(k gigaflow.Key, now int64) Result {
	if w.overflow == OverflowDrop {
		w.ovDrop++
		return Result{Err: ErrUpcallOverflow}
	}
	w.ovInline++
	res, err := w.vs.ProcessMissInline(k, now)
	return Result{Verdict: res.Verdict, Final: res.Final, CacheHit: res.CacheHit, Err: err}
}

// complete applies one engine-completed miss on the worker goroutine:
// detach the pending entry, finish the initiator (install via
// CompleteMiss, or inline replay when the traversal failed, went stale,
// or lost the race to a covering install), replay the followers through
// the normal hot path, and deliver every result in arrival order.
func (w *worker) complete(m *upcall.Miss[parked], now int64) {
	if w.pending.Remove(m.Key) == nil {
		// Already swept by a shutdown drain; the payloads were failed
		// with ErrClosed and must not be answered twice.
		w.stale++
		return
	}
	pp := m.Payloads
	w.completed++
	w.released += uint64(len(pp))

	fresh := m.Err == nil && m.Traversal != nil &&
		m.Traversal.Version == w.vs.Pipeline().Version
	if !fresh {
		// Failed or stale traversal: every parked packet replays the
		// inline path, traversing again — identical to what each would
		// have done had it never parked under the current rules.
		if m.Err == nil {
			w.stale++
		}
		for _, p := range pp {
			res, err := w.vs.Process(m.Key, now)
			w.deliver(p, Result{Verdict: res.Verdict, Final: res.Final, CacheHit: res.CacheHit, Err: err})
		}
		return
	}

	// Second-chance lookup: while this flow waited, another flow's
	// completion may have installed a wildcard entry covering it —
	// inline, this packet would have hit that entry, so only a
	// still-missing flow consumes its traversal.
	res, still, err := w.vs.ProcessPark(m.Key, now)
	if still {
		res, err = w.vs.CompleteMiss(m.Key, m.Traversal, now, m.TraverseNs, now-m.EnqueuedNs)
	} else {
		w.stale++
	}
	w.deliver(pp[0], Result{Verdict: res.Verdict, Final: res.Final, CacheHit: res.CacheHit, Err: err})
	for _, p := range pp[1:] {
		r, rerr := w.vs.Process(m.Key, now)
		w.deliver(p, Result{Verdict: r.Verdict, Final: r.Final, CacheHit: r.CacheHit, Err: rerr})
	}
}

// deliver routes a completed packet's result back to its submitter: into
// its job slot (signalling the job's completion channel when it was the
// last outstanding packet) or down its response channel.
func (w *worker) deliver(p parked, r Result) {
	if p.job != nil {
		j := p.job
		j.res[p.idx] = r
		if j.resp != nil {
			j.resp <- r
		}
		j.pending--
		if j.pending == 0 && j.done != nil {
			j.done <- j
		}
	} else if p.resp != nil {
		p.resp <- r
	}
}

// sweepParked fails every packet still parked at shutdown with
// ErrClosed, mirroring drain's treatment of queued jobs, so blocking
// submitters waiting on parked packets always unblock before the
// service's term channel closes. Single-packet response sends are
// nonblocking, like drain's — a fire-and-forget submitter may be gone.
func (w *worker) sweepParked() {
	if w.pending == nil {
		return
	}
	w.pending.Drain(func(m *upcall.Miss[parked]) {
		for _, p := range m.Payloads {
			if p.job != nil {
				p.job.res[p.idx] = Result{Err: ErrClosed}
				p.job.pending--
				if p.job.pending == 0 && p.job.done != nil {
					p.job.done <- p.job
				}
			} else if p.resp != nil {
				select {
				case p.resp <- Result{Err: ErrClosed}:
				default:
				}
			}
		}
	})
}

// handleUpcalls is the engine handler: it runs each miss's pipeline
// traversal against the owning worker's replica — under that worker's
// slow-path lock, excluding the worker's own inline traversals and rule
// updates — then posts the completed misses back to their workers,
// grouped so each worker receives one message per batch. A send that
// would block past shutdown is abandoned; the worker's drain sweeps the
// corresponding pending entries.
func (s *Service) handleUpcalls(ctx context.Context, batch []*upcall.Miss[parked]) {
	for _, m := range batch {
		w := s.workers[m.Shard]
		t0 := time.Now()
		w.slowMu.Lock()
		tr, err := w.vs.Pipeline().Process(m.Key)
		w.slowMu.Unlock()
		m.TraverseNs = time.Since(t0).Nanoseconds()
		m.Traversal = tr
		m.Err = err
	}
	for i, m := range batch {
		if m == nil {
			continue
		}
		group := make([]*upcall.Miss[parked], 0, len(batch)-i)
		group = append(group, m)
		for j := i + 1; j < len(batch); j++ {
			if batch[j] != nil && batch[j].Shard == m.Shard {
				group = append(group, batch[j])
				batch[j] = nil
			}
		}
		select {
		case s.workers[m.Shard].in <- packet{comp: group}:
		case <-ctx.Done():
			return
		}
	}
}

// UpcallStats snapshots the asynchronous offload's counters: per-worker
// pending-table state and overflow/stale counts gathered on the workers'
// own goroutines, plus the shared queue and engine counters. Enabled is
// false (and the rest zero) when the service runs synchronously.
type UpcallStats struct {
	Enabled bool `json:"enabled"`
	// PendingFlows counts flows with a traversal in flight;
	// ParkedPackets the packets waiting behind them.
	PendingFlows  int `json:"pending_flows"`
	ParkedPackets int `json:"parked_packets"`
	// Flows counts upcalls created (one per unique missed flow), Deduped
	// the packets that coalesced onto an existing pending flow, and
	// Released the parked packets handed back to their submitters.
	Flows    uint64 `json:"flows"`
	Deduped  uint64 `json:"deduped"`
	Released uint64 `json:"released"`
	// OverflowInline / OverflowDrops count misses the full queue pushed
	// through the fallback paths; Stale counts engine traversals
	// discarded (rule update, covering install, or shutdown sweep won
	// the race); Completed counts flow completions applied.
	OverflowInline uint64 `json:"overflow_inline"`
	OverflowDrops  uint64 `json:"overflow_drops"`
	Stale          uint64 `json:"stale"`
	Completed      uint64 `json:"completed"`
	// Shared queue and engine counters.
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_capacity"`
	Enqueued   uint64 `json:"enqueued"`
	Overflows  uint64 `json:"overflows"`
	Drained    uint64 `json:"drained"`
	Batches    uint64 `json:"batches"`
}

// UpcallStats gathers the offload counters; see the UpcallStats type.
func (s *Service) UpcallStats(ctx context.Context) (UpcallStats, error) {
	var out UpcallStats
	if s.upq == nil {
		return out, nil
	}
	out.Enabled = true
	var mu sync.Mutex
	done := make(chan struct{}, len(s.workers))
	for _, w := range s.workers {
		w := w
		op := packet{control: func() {
			st := w.pending.Stats()
			mu.Lock()
			out.PendingFlows += w.pending.Len()
			out.ParkedPackets += w.pending.Parked()
			out.Flows += st.Upcalls
			out.Deduped += st.Deduped
			out.Released += st.Released
			out.OverflowInline += w.ovInline
			out.OverflowDrops += w.ovDrop
			out.Stale += w.stale
			out.Completed += w.completed
			mu.Unlock()
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case w.in <- op:
		}
	}
	for range s.workers {
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case <-done:
		}
	}
	out.QueueDepth = s.upq.Depth()
	out.QueueCap = s.upq.Cap()
	out.Enqueued = s.upq.Enqueued()
	out.Overflows = s.upq.Overflows()
	out.Drained = s.eng.Drained()
	out.Batches = s.eng.Batches()
	return out, nil
}

// collectUpcallMetrics mirrors the worker's offload counters into the
// registry; called from Collect's per-worker control op, on the worker
// goroutine. No-op for synchronous workers.
func (w *worker) collectUpcallMetrics(reg *telemetry.Registry) {
	if w.pending == nil {
		return
	}
	c := func(name, help string, val uint64) {
		reg.CounterVec(name, help, "worker").With(w.label).Set(val)
	}
	g := func(name, help string, val float64) {
		reg.GaugeVec(name, help, "worker").With(w.label).Set(val)
	}
	st := w.pending.Stats()
	c("gigaflow_upcall_flows_total", "Upcalls created (one per unique missed flow).", st.Upcalls)
	c("gigaflow_upcall_deduped_total", "Parked packets coalesced onto an existing pending flow.", st.Deduped)
	c("gigaflow_upcall_released_total", "Parked packets handed back to their submitters.", st.Released)
	c("gigaflow_upcall_overflow_inline_total", "Misses processed inline because the upcall queue was full.", w.ovInline)
	c("gigaflow_upcall_overflow_drops_total", "Misses dropped because the upcall queue was full.", w.ovDrop)
	c("gigaflow_upcall_stale_total", "Engine traversals discarded (rule update, covering install, or shutdown).", w.stale)
	c("gigaflow_upcall_completed_total", "Flow completions applied.", w.completed)
	g("gigaflow_upcall_pending_flows", "Flows with a traversal in flight.", float64(w.pending.Len()))
	g("gigaflow_upcall_parked_packets", "Packets parked behind pending flows.", float64(w.pending.Parked()))
}
