package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gigaflow"
)

func TestConfigValidation(t *testing.T) {
	p := buildPipeline()
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"zero value ok", Config{}, ""},
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative queue", Config{QueueDepth: -5}, "QueueDepth"},
		{"negative maxidle", Config{Expiry: ExpiryConfig{MaxIdle: -time.Second}}, "MaxIdle"},
		{"expiry without maxidle", Config{Expiry: ExpiryConfig{Every: time.Second}}, "MaxIdle is 0"},
		{"negative microflow", Config{MicroflowCapacity: -1}, "MicroflowCapacity"},
		{"negative trace sample", Config{TraceSample: -1}, "TraceSample"},
		{"megaflow cap on gigaflow backend", Config{MegaflowCapacity: 100}, "BackendGigaflow"},
		{"gigaflow cache on megaflow backend",
			Config{Backend: BackendMegaflow, Cache: gigaflow.CacheConfig{NumTables: 4}},
			"BackendMegaflow"},
		{"negative gigaflow shape",
			Config{Cache: gigaflow.CacheConfig{NumTables: -1}}, "cache shape"},
		{"negative megaflow cap",
			Config{Backend: BackendMegaflow, MegaflowCapacity: -1}, "MegaflowCapacity"},
		{"unknown backend", Config{Backend: Backend(99)}, "unknown Backend"},
		{"megaflow backend ok", Config{Backend: BackendMegaflow, MegaflowCapacity: 1024}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := New(p, c.cfg)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				_ = s
				return
			}
			if err == nil {
				t.Fatalf("config %+v accepted, want error containing %q", c.cfg, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestMegaflowBackend(t *testing.T) {
	s, err := New(buildPipeline(), Config{
		Workers:          2,
		Backend:          BackendMegaflow,
		MegaflowCapacity: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(ctx, key(1, 80)); err != nil {
		t.Fatal(err)
	}
	r, err := s.Submit(ctx, key(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Error("second identical packet should hit the megaflow cache")
	}
}

func startTelemetryService(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	cfg.TelemetryAddr = "127.0.0.1:0"
	s, err := New(buildPipeline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	addr := s.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty after Start")
	}
	return s, "http://" + addr
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		MicroflowCapacity: 64,
	})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(ctx, key(uint64(i%4), 80)); err != nil {
			t.Fatal(err)
		}
	}

	out := httpGet(t, base+"/metrics")
	wants := []string{
		"# TYPE gigaflow_packets_total counter",
		`gigaflow_packets_total{worker="0"}`,
		`gigaflow_packets_total{worker="1"}`,
		"gigaflow_cache_hits_total",
		"gigaflow_cache_misses_total",
		"gigaflow_microflow_hits_total",
		"gigaflow_slowpath_traversals_total",
		`gigaflow_table_hits_total{worker="0",table="0"}`,
		`gigaflow_table_occupancy{worker="0",table="0"}`,
		"gigaflow_queue_depth",
		"gigaflow_queue_capacity",
		"gigaflow_workers 2",
		"gigaflow_uptime_seconds",
		"gigaflow_submit_latency_ns_count",
		"gigaflow_microflow_entries",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}

	// The 20 submits must be fully accounted for across the two workers.
	var total uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gigaflow_packets_total{") {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err == nil {
				total += v
			}
		}
	}
	if total != 20 {
		t.Errorf("gigaflow_packets_total sums to %d, want 20", total)
	}

	// JSON exposition.
	jout := httpGet(t, base+"/metrics?format=json")
	var fams []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	if err := json.Unmarshal([]byte(jout), &fams); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
	}
	if !names["gigaflow_packets_total"] || !names["gigaflow_submit_latency_ns"] {
		t.Errorf("JSON families missing: %v", names)
	}
}

func TestTracesEndpoint(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers:     1,
		Cache:       gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		TraceSample: 1, // trace every packet
		TraceBuffer: 16,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(ctx, key(1, 80)); err != nil {
			t.Fatal(err)
		}
	}

	out := httpGet(t, base+"/traces?n=3")
	var doc struct {
		SampleEvery int `json:"sample_every"`
		Sampled     int `json:"sampled_total"`
		Traces      []struct {
			Key      string `json:"key"`
			CacheHit bool   `json:"cache_hit"`
			Stages   []struct {
				Name string `json:"name"`
				Hit  bool   `json:"hit"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("traces JSON: %v\n%s", err, out)
	}
	if doc.SampleEvery != 1 || doc.Sampled != 5 {
		t.Errorf("sample_every=%d sampled=%d, want 1 and 5", doc.SampleEvery, doc.Sampled)
	}
	if len(doc.Traces) != 3 {
		t.Fatalf("got %d traces, want 3 (n=3)", len(doc.Traces))
	}
	// Newest first: the last packets are cache hits with a gigaflow stage.
	newest := doc.Traces[0]
	if !newest.CacheHit || newest.Key == "" {
		t.Errorf("newest trace = %+v", newest)
	}
	found := false
	for _, st := range newest.Stages {
		if st.Name == "gigaflow" && st.Hit {
			found = true
		}
	}
	if !found {
		t.Errorf("no gigaflow hit stage in %+v", newest.Stages)
	}
}

func TestCacheEndpoint(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers: 2,
		Cache:   gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(ctx, key(uint64(i), 80)); err != nil {
			t.Fatal(err)
		}
	}

	out := httpGet(t, base+"/cache")
	var doc struct {
		Backend string `json:"backend"`
		Workers []struct {
			Worker   string `json:"worker"`
			QueueCap int    `json:"queue_capacity"`
			Stats    struct {
				Packets uint64 `json:"packets"`
			} `json:"stats"`
			Gigaflow *struct {
				Len    int `json:"len"`
				Tables []struct {
					Index    int `json:"index"`
					Capacity int `json:"capacity"`
				} `json:"tables"`
			} `json:"gigaflow"`
		} `json:"workers"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("cache JSON: %v\n%s", err, out)
	}
	if doc.Backend != "gigaflow" || len(doc.Workers) != 2 {
		t.Fatalf("backend=%q workers=%d", doc.Backend, len(doc.Workers))
	}
	var packets uint64
	for _, w := range doc.Workers {
		packets += w.Stats.Packets
		if w.Gigaflow == nil {
			t.Fatalf("worker %s missing gigaflow snapshot", w.Worker)
		}
		if len(w.Gigaflow.Tables) != 3 {
			t.Errorf("worker %s has %d tables, want 3", w.Worker, len(w.Gigaflow.Tables))
		}
		if w.QueueCap != 1024 {
			t.Errorf("worker %s queue cap = %d", w.Worker, w.QueueCap)
		}
	}
	if packets != 10 {
		t.Errorf("total packets = %d, want 10", packets)
	}
}

func TestShardsEndpoint(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers: 2,
		Cache:   gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(ctx, key(uint64(i), 80)); err != nil {
			t.Fatal(err)
		}
	}

	out := httpGet(t, base+"/shards")
	var doc struct {
		Workers   int         `json:"workers"`
		Conntrack bool        `json:"conntrack"`
		Shards    []ShardStat `json:"shards"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("shards JSON: %v\n%s", err, out)
	}
	if doc.Workers != 2 || doc.Conntrack || len(doc.Shards) != 2 {
		t.Fatalf("workers=%d conntrack=%v shards=%d", doc.Workers, doc.Conntrack, len(doc.Shards))
	}
	var packets uint64
	for i, sh := range doc.Shards {
		if sh.Worker != i {
			t.Errorf("shard %d labeled worker %d", i, sh.Worker)
		}
		packets += sh.Packets
	}
	if packets != 10 {
		t.Errorf("total packets = %d, want 10", packets)
	}
}

func TestDebugEndpointsServed(t *testing.T) {
	_, base := startTelemetryService(t, Config{})
	if out := httpGet(t, base+"/debug/vars"); !strings.Contains(out, "memstats") {
		t.Error("/debug/vars missing expvar memstats")
	}
	if out := httpGet(t, base+"/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
	if out := httpGet(t, base+"/"); !strings.Contains(out, "/metrics") {
		t.Error("index page missing /metrics link")
	}
}

func TestLatencyEndpoint(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		MicroflowCapacity: 64,
	})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(ctx, key(uint64(i%4), 80)); err != nil {
			t.Fatal(err)
		}
	}

	out := httpGet(t, base+"/latency")
	var doc struct {
		Enabled bool `json:"enabled"`
		Workers []struct {
			Worker string `json:"worker"`
			Tiers  map[string]struct {
				Count uint64  `json:"count"`
				P50   float64 `json:"p50_ns"`
				P999  float64 `json:"p999_ns"`
				MaxNs int64   `json:"max_ns"`
			} `json:"tiers"`
		} `json:"workers"`
		Total map[string]struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50_ns"`
		} `json:"total"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("latency JSON: %v\n%s", err, out)
	}
	if !doc.Enabled {
		t.Fatal("latency attribution reported disabled on a default config")
	}
	if len(doc.Workers) != 2 {
		t.Fatalf("got %d workers, want 2", len(doc.Workers))
	}
	for _, tier := range []string{"microflow", "gigaflow", "megaflow", "slowpath"} {
		if _, ok := doc.Total[tier]; !ok {
			t.Errorf("total ladder missing tier %q", tier)
		}
	}
	// Every submitted packet is attributed to exactly one tier.
	var total uint64
	for _, snap := range doc.Total {
		total += snap.Count
	}
	if total != 20 {
		t.Errorf("tier counts sum to %d, want 20", total)
	}
	if doc.Total["slowpath"].Count == 0 || doc.Total["slowpath"].P50 <= 0 {
		t.Errorf("slowpath ladder empty: %+v (first-seen flows must miss)", doc.Total["slowpath"])
	}
}

func TestFlightEndpoint(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers: 1,
		Cache:   gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		Latency: LatencyConfig{FlightRecords: 64},
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(ctx, key(uint64(i%2), 80)); err != nil {
			t.Fatal(err)
		}
	}

	out := httpGet(t, base+"/debug/flight?n=6")
	var doc struct {
		Enabled bool `json:"enabled"`
		Workers []struct {
			Worker   string `json:"worker"`
			Seq      uint64 `json:"seq"`
			RingSize int    `json:"ring_size"`
			Batches  uint32 `json:"batches"`
			Records  []struct {
				TS      int64  `json:"ts"`
				KeyHash uint64 `json:"key_hash"`
				LatNs   int32  `json:"lat_ns"`
				Tier    string `json:"tier"`
				Flags   uint8  `json:"flags"`
			} `json:"records"`
		} `json:"workers"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("flight JSON: %v\n%s", err, out)
	}
	if !doc.Enabled || len(doc.Workers) != 1 {
		t.Fatalf("enabled=%v workers=%d, want true/1", doc.Enabled, len(doc.Workers))
	}
	w := doc.Workers[0]
	if w.Seq != 10 || w.RingSize != 64 || w.Batches != 10 {
		t.Errorf("seq=%d ring=%d batches=%d, want 10/64/10", w.Seq, w.RingSize, w.Batches)
	}
	if len(w.Records) != 6 {
		t.Fatalf("got %d records, want 6 (n=6)", len(w.Records))
	}
	valid := map[string]bool{"microflow": true, "gigaflow": true, "megaflow": true, "slowpath": true}
	for i, rec := range w.Records {
		if !valid[rec.Tier] {
			t.Errorf("records[%d].Tier = %q", i, rec.Tier)
		}
		if rec.TS <= 0 || rec.KeyHash == 0 {
			t.Errorf("records[%d] = %+v, want wall TS and nonzero key hash", i, rec)
		}
		if i > 0 && w.Records[i-1].TS < rec.TS {
			t.Errorf("records not newest-first at %d", i)
		}
	}
}

func TestLatencyDisabled(t *testing.T) {
	s, base := startTelemetryService(t, Config{Latency: LatencyConfig{Disable: true}})
	if _, err := s.Submit(context.Background(), key(1, 80)); err != nil {
		t.Fatal(err)
	}
	var lat struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/latency")), &lat); err != nil {
		t.Fatal(err)
	}
	if lat.Enabled {
		t.Error("/latency reports enabled under Latency.Disable")
	}
	var fl struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/flight")), &fl); err != nil {
		t.Fatal(err)
	}
	if fl.Enabled {
		t.Error("/debug/flight reports enabled under Latency.Disable")
	}
}

// TestConcurrentScrape hammers every telemetry endpoint while batches are
// in flight; the race detector checks the scrape paths never touch
// worker-owned state off the worker goroutines.
func TestConcurrentScrape(t *testing.T) {
	s, base := startTelemetryService(t, Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
		MicroflowCapacity: 256,
		TraceSample:       8,
		Latency:           LatencyConfig{FlightRecords: 128},
	})
	ctx := context.Background()
	stop := make(chan struct{})
	producerDone := make(chan struct{})
	go func() { // producer: singles and batches until the scrapers finish
		defer close(producerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Submit(ctx, key(uint64(i%32), 80)); err != nil {
				return
			}
			b := NewBatch(8)
			for j := 0; j < 8; j++ {
				b.Add(key(uint64((i+j)%32), 443))
			}
			if err := s.SubmitBatch(ctx, b); err != nil {
				return
			}
		}
	}()
	var scrapers sync.WaitGroup
	for _, ep := range []string{"/metrics", "/traces", "/cache", "/shards", "/latency", "/debug/flight?n=32"} {
		ep := ep
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 20; i++ {
				body := httpGet(t, base+ep)
				if strings.HasPrefix(ep, "/metrics") {
					continue
				}
				var v interface{}
				if err := json.Unmarshal([]byte(body), &v); err != nil {
					t.Errorf("%s not JSON while processing: %v", ep, err)
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	<-producerDone
}

func TestNonblockingDropsCounted(t *testing.T) {
	s, err := New(buildPipeline(), Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the worker drains nothing, so the second nonblocking
	// Submit to the same (only) worker must fail.
	ctx := context.Background()
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking()); err != nil {
		t.Fatalf("first nonblocking Submit should fit the queue: %v", err)
	}
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second nonblocking Submit = %v, want ErrQueueFull", err)
	}
	if got := s.workers[0].drops.Load(); got != 1 {
		t.Errorf("drops = %d, want 1", got)
	}
}

func TestServeTelemetryConflict(t *testing.T) {
	s, _ := startTelemetryService(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.ServeTelemetry(ln); err == nil {
		t.Error("ServeTelemetry must refuse a second server")
	}
}
