package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/pcap"
	"gigaflow/internal/traffic"
)

// replayPipeline matches on the wire-representable fields so every
// synthesized key is reachable from its encoded frame.
func replayPipeline() *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("replay")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	for i := 0; i < 8; i++ {
		p.MustAddRule(1, gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=10.1.0.%d", i)), 10, nil, 2)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=443"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(2)}, gigaflow.NoTable)
	return p
}

// replayTrace synthesizes a wire-faithful CAIDA-style trace: every key
// is fully representable as a TCP frame (in_port and metadata zero).
func replayTrace(t *testing.T) []traffic.Packet {
	t.Helper()
	sample := func(ruleIdx int, rng *rand.Rand) gigaflow.Key {
		var k gigaflow.Key
		k.Set(gigaflow.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<20)))
		k.Set(gigaflow.FieldEthDst, 0x020000000001)
		k.Set(gigaflow.FieldEthType, wire.EtherTypeIPv4)
		k.Set(gigaflow.FieldIPSrc, uint64(0x0a000000+rng.Intn(1<<14)))
		k.Set(gigaflow.FieldIPDst, uint64(0x0a010000+ruleIdx))
		k.Set(gigaflow.FieldIPProto, wire.IPProtoTCP)
		k.Set(gigaflow.FieldTpSrc, uint64(1024+rng.Intn(60000)))
		if rng.Intn(2) == 0 {
			k.Set(gigaflow.FieldTpDst, 443)
		} else {
			k.Set(gigaflow.FieldTpDst, 80)
		}
		return k
	}
	cfg := traffic.Config{Seed: 4, NumFlows: 120, MaxPackets: 30}
	flows := traffic.GenerateFlows(cfg, traffic.UniformPicker(8), sample)
	pkts := traffic.Expand(cfg, flows)
	if len(pkts) < 200 {
		t.Fatalf("trace too small: %d packets", len(pkts))
	}
	return pkts
}

func newReplayService(t *testing.T) *Service {
	t.Helper()
	s, err := New(replayPipeline(), Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 512},
		MicroflowCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReplayRoundTripMatchesDirectSubmission is the end-to-end loop the
// tentpole promises: synthesize a trace, serialize it to pcap through
// the traffic bridge, replay the bytes through one service, submit the
// original keys directly to an identically configured second service,
// and require identical VSwitchStats from both.
func TestReplayRoundTripMatchesDirectSubmission(t *testing.T) {
	pkts := replayTrace(t)
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()

	replaySvc := newReplayService(t)
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replaySvc.Replay(ctx, r, ReplayConfig{Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != len(pkts) || rep.Submitted != len(pkts) {
		t.Fatalf("replay covered %d/%d of %d packets", rep.Submitted, rep.Frames, len(pkts))
	}
	if rep.DecodeErrors != 0 || rep.Rejected != 0 || rep.QueueDrops != 0 {
		t.Fatalf("lossless blocking replay dropped frames: %+v", rep)
	}
	if rep.PerProto[wire.ProtoTCP] != len(pkts) {
		t.Fatalf("per-proto accounting = %v", rep.PerProto)
	}

	directSvc := newReplayService(t)
	for _, p := range pkts {
		if _, err := directSvc.Submit(ctx, p.Key); err != nil {
			t.Fatal(err)
		}
	}
	direct, err := directSvc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Stats != direct {
		t.Fatalf("byte-level replay diverged from direct key submission:\nreplay %+v\ndirect %+v",
			rep.Stats, direct)
	}
	if rep.Stats.Packets != uint64(len(pkts)) {
		t.Fatalf("stats cover %d packets, want %d", rep.Stats.Packets, len(pkts))
	}
	if rep.HitRate() <= 0 {
		t.Fatal("replayed trace produced no cache hits")
	}
}

// TestReplayTimedPacing checks trace-timestamp pacing: a two-packet
// trace 80ms apart at Speedup 1 cannot finish faster than the gap.
func TestReplayTimedPacing(t *testing.T) {
	k := gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800")
	pkts := []traffic.Packet{
		{Key: k, Time: 0, Size: 60},
		{Key: k, Time: 80_000_000, Size: 60},
	}
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	s := newReplayService(t)
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), r, ReplayConfig{Timed: true, Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed < 80_000_000 {
		t.Fatalf("timed replay finished in %v, faster than the 80ms trace span", rep.Elapsed)
	}
	if rep.Frames != 2 {
		t.Fatalf("frames = %d", rep.Frames)
	}
}

// TestReplayLimit stops after N records.
func TestReplayLimit(t *testing.T) {
	pkts := replayTrace(t)
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	s := newReplayService(t)
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), r, ReplayConfig{Blocking: true, Limit: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 25 || rep.Stats.Packets != 25 {
		t.Fatalf("limit ignored: %d frames, %d packets", rep.Frames, rep.Stats.Packets)
	}
}

// TestReplayTruncatedCapture replays what exists before a mid-record
// cut and reports the truncation instead of failing.
func TestReplayTruncatedCapture(t *testing.T) {
	pkts := replayTrace(t)[:10]
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7]
	s := newReplayService(t)
	r, err := pcap.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), r, ReplayConfig{Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("truncation not reported")
	}
	if rep.Frames != len(pkts)-1 {
		t.Fatalf("replayed %d frames, want %d", rep.Frames, len(pkts)-1)
	}
}

// TestReplayBatchSizeEquivalence replays the same capture bytes at batch
// size 1 (per-packet submission, exactly the pre-batching behaviour) and
// at the default batch size into identically configured services: the
// VSwitch counter deltas must be identical. This is the "batching never
// changes behaviour" contract at the replay layer.
func TestReplayBatchSizeEquivalence(t *testing.T) {
	pkts := replayTrace(t)
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	capture := buf.Bytes()

	ctx := context.Background()
	replayAt := func(batchSize int) ReplayReport {
		t.Helper()
		s := newReplayService(t)
		r, err := pcap.NewReader(bytes.NewReader(capture))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Replay(ctx, r, ReplayConfig{Blocking: true, BatchSize: batchSize})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	one := replayAt(1)
	batched := replayAt(DefaultBatchSize)
	if one.Stats != batched.Stats {
		t.Fatalf("batch size changed replay behaviour:\nbatch=1  %+v\nbatch=%d %+v",
			one.Stats, DefaultBatchSize, batched.Stats)
	}
	if one.Frames != batched.Frames || one.Submitted != batched.Submitted {
		t.Fatalf("frame accounting diverged: %+v vs %+v", one, batched)
	}
	if one.Stats.Packets != uint64(len(pkts)) {
		t.Fatalf("stats cover %d packets, want %d", one.Stats.Packets, len(pkts))
	}
}

// TestReplayCancelDrainsInFlight cancels a timed replay mid-capture (the
// trace has a 10s gap the test never waits out) and requires: Replay
// returns ctx.Err() promptly, every batch handed to the workers was
// gathered (no pending result), the service still closes cleanly, and no
// goroutine leaks past shutdown.
func TestReplayCancelDrainsInFlight(t *testing.T) {
	pkts := replayTrace(t)
	// Re-time the trace: the first half plays instantly, then a 10s gap
	// the cancellation interrupts.
	for i := range pkts {
		if i < len(pkts)/2 {
			pkts[i].Time = 0
		} else {
			pkts[i].Time = 10_000_000_000
		}
	}
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	s, err := New(replayPipeline(), Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 512},
		MicroflowCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := s.Replay(ctx, r, ReplayConfig{Timed: true, Blocking: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replay returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled replay took %v — it waited out the trace gap", elapsed)
	}
	// Everything flushed before the pacing wait was fully gathered: the
	// report's submission accounting covers every frame it read.
	if rep.Submitted+rep.QueueDrops+rep.Rejected < len(pkts)/2 {
		t.Fatalf("first half of the trace not accounted for: %+v", rep)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close after cancelled replay: %v", err)
	}
	// Goroutine count settles back to the pre-service baseline (allow
	// slack for runtime/test goroutines winding down).
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancelled replay: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
