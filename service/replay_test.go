package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/pcap"
	"gigaflow/internal/traffic"
)

// replayPipeline matches on the wire-representable fields so every
// synthesized key is reachable from its encoded frame.
func replayPipeline() *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("replay")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	for i := 0; i < 8; i++ {
		p.MustAddRule(1, gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=10.1.0.%d", i)), 10, nil, 2)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=443"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(2)}, gigaflow.NoTable)
	return p
}

// replayTrace synthesizes a wire-faithful CAIDA-style trace: every key
// is fully representable as a TCP frame (in_port and metadata zero).
func replayTrace(t *testing.T) []traffic.Packet {
	t.Helper()
	sample := func(ruleIdx int, rng *rand.Rand) gigaflow.Key {
		var k gigaflow.Key
		k.Set(gigaflow.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<20)))
		k.Set(gigaflow.FieldEthDst, 0x020000000001)
		k.Set(gigaflow.FieldEthType, wire.EtherTypeIPv4)
		k.Set(gigaflow.FieldIPSrc, uint64(0x0a000000+rng.Intn(1<<14)))
		k.Set(gigaflow.FieldIPDst, uint64(0x0a010000+ruleIdx))
		k.Set(gigaflow.FieldIPProto, wire.IPProtoTCP)
		k.Set(gigaflow.FieldTpSrc, uint64(1024+rng.Intn(60000)))
		if rng.Intn(2) == 0 {
			k.Set(gigaflow.FieldTpDst, 443)
		} else {
			k.Set(gigaflow.FieldTpDst, 80)
		}
		return k
	}
	cfg := traffic.Config{Seed: 4, NumFlows: 120, MaxPackets: 30}
	flows := traffic.GenerateFlows(cfg, traffic.UniformPicker(8), sample)
	pkts := traffic.Expand(cfg, flows)
	if len(pkts) < 200 {
		t.Fatalf("trace too small: %d packets", len(pkts))
	}
	return pkts
}

func newReplayService(t *testing.T) *Service {
	t.Helper()
	s, err := New(replayPipeline(), Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 512},
		MicroflowCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReplayRoundTripMatchesDirectSubmission is the end-to-end loop the
// tentpole promises: synthesize a trace, serialize it to pcap through
// the traffic bridge, replay the bytes through one service, submit the
// original keys directly to an identically configured second service,
// and require identical VSwitchStats from both.
func TestReplayRoundTripMatchesDirectSubmission(t *testing.T) {
	pkts := replayTrace(t)
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()

	replaySvc := newReplayService(t)
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replaySvc.Replay(ctx, r, ReplayConfig{Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != len(pkts) || rep.Submitted != len(pkts) {
		t.Fatalf("replay covered %d/%d of %d packets", rep.Submitted, rep.Frames, len(pkts))
	}
	if rep.DecodeErrors != 0 || rep.Rejected != 0 || rep.QueueDrops != 0 {
		t.Fatalf("lossless blocking replay dropped frames: %+v", rep)
	}
	if rep.PerProto[wire.ProtoTCP] != len(pkts) {
		t.Fatalf("per-proto accounting = %v", rep.PerProto)
	}

	directSvc := newReplayService(t)
	for _, p := range pkts {
		if _, err := directSvc.Submit(ctx, p.Key); err != nil {
			t.Fatal(err)
		}
	}
	direct, err := directSvc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Stats != direct {
		t.Fatalf("byte-level replay diverged from direct key submission:\nreplay %+v\ndirect %+v",
			rep.Stats, direct)
	}
	if rep.Stats.Packets != uint64(len(pkts)) {
		t.Fatalf("stats cover %d packets, want %d", rep.Stats.Packets, len(pkts))
	}
	if rep.HitRate() <= 0 {
		t.Fatal("replayed trace produced no cache hits")
	}
}

// TestReplayTimedPacing checks trace-timestamp pacing: a two-packet
// trace 80ms apart at Speedup 1 cannot finish faster than the gap.
func TestReplayTimedPacing(t *testing.T) {
	k := gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800")
	pkts := []traffic.Packet{
		{Key: k, Time: 0, Size: 60},
		{Key: k, Time: 80_000_000, Size: 60},
	}
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	s := newReplayService(t)
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), r, ReplayConfig{Timed: true, Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed < 80_000_000 {
		t.Fatalf("timed replay finished in %v, faster than the 80ms trace span", rep.Elapsed)
	}
	if rep.Frames != 2 {
		t.Fatalf("frames = %d", rep.Frames)
	}
}

// TestReplayLimit stops after N records.
func TestReplayLimit(t *testing.T) {
	pkts := replayTrace(t)
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	s := newReplayService(t)
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), r, ReplayConfig{Blocking: true, Limit: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 25 || rep.Stats.Packets != 25 {
		t.Fatalf("limit ignored: %d frames, %d packets", rep.Frames, rep.Stats.Packets)
	}
}

// TestReplayTruncatedCapture replays what exists before a mid-record
// cut and reports the truncation instead of failing.
func TestReplayTruncatedCapture(t *testing.T) {
	pkts := replayTrace(t)[:10]
	var buf bytes.Buffer
	if err := pcap.WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7]
	s := newReplayService(t)
	r, err := pcap.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), r, ReplayConfig{Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("truncation not reported")
	}
	if rep.Frames != len(pkts)-1 {
		t.Fatalf("replayed %d frames, want %d", rep.Frames, len(pkts)-1)
	}
}
