package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"gigaflow"
)

// upcallConfig is the async twin of a plain config: identical datapath,
// offload enabled. One engine worker keeps completion order equal to
// park order, which the per-packet equality tests rely on; concurrency
// is exercised separately.
func upcallConfig(backend Backend, workers, engineWorkers int) Config {
	cfg := Config{
		Workers:           workers,
		Backend:           backend,
		MicroflowCapacity: 512,
		Upcall:            UpcallConfig{Workers: engineWorkers, Queue: 4096},
	}
	if backend == BackendMegaflow {
		cfg.MegaflowCapacity = 1024
	} else {
		cfg.Cache = gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256}
	}
	return cfg
}

func startCfg(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(buildPipeline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestUpcallMatchesInline drives identical traffic through a synchronous
// service and an async-offload one (same sharding, same backend) and
// requires identical per-packet results and aggregate VSwitchStats. The
// traffic mixes warm flows, cold flows, and same-flow packets split
// across the park/release boundary (duplicates inside one batch of a
// cold flow), on both backends. One engine worker makes completion
// order deterministic, so equality is exact, packet by packet.
func TestUpcallMatchesInline(t *testing.T) {
	for _, backend := range []Backend{BackendGigaflow, BackendMegaflow} {
		t.Run(backend.String(), func(t *testing.T) {
			inCfg := upcallConfig(backend, 2, 1)
			inCfg.Upcall = UpcallConfig{}
			inline := startCfg(t, inCfg)
			async := startCfg(t, upcallConfig(backend, 2, 1))

			ports := []uint64{80, 22}
			var keys []gigaflow.Key
			for i := 0; i < 200; i++ {
				k := key(uint64(i*7%41), ports[i%2])
				keys = append(keys, k)
				if i%5 == 0 {
					// Same-flow duplicates inside one submission: when the
					// flow is cold these split across the park boundary and
					// ride one traversal.
					keys = append(keys, k, k)
				}
			}

			ctx := context.Background()
			bIn, bAs := NewBatch(64), NewBatch(64)
			chunks := []int{1, 7, 32, 3, 64, 5, 2, 50}
			for lo, c := 0, 0; lo < len(keys); c++ {
				n := chunks[c%len(chunks)]
				if lo+n > len(keys) {
					n = len(keys) - lo
				}
				bIn.Reset()
				bAs.Reset()
				for _, k := range keys[lo : lo+n] {
					bIn.Add(k)
					bAs.Add(k)
				}
				if err := inline.SubmitBatch(ctx, bIn); err != nil {
					t.Fatal(err)
				}
				if err := async.SubmitBatch(ctx, bAs); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					ri, ra := bIn.Result(i), bAs.Result(i)
					if ri != ra {
						t.Fatalf("packet %d: async %+v != inline %+v", lo+i, ra, ri)
					}
				}
				lo += n
			}

			si, err := inline.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sa, err := async.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if si != sa {
				t.Errorf("VSwitchStats diverge: async %+v, inline %+v", sa, si)
			}

			us, err := async.UpcallStats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !us.Enabled || us.Flows == 0 || us.Deduped == 0 {
				t.Errorf("offload did not engage: %+v", us)
			}
			if us.PendingFlows != 0 || us.ParkedPackets != 0 {
				t.Errorf("work left pending after blocking submissions: %+v", us)
			}
			if us.Released != us.Deduped+us.Completed-us.Stale {
				// Released = all parked packets handed back: one initiator per
				// completion that consumed or discarded a traversal, plus the
				// deduped followers. (Stale here only counts discarded
				// traversals, which still release their initiator.)
				t.Logf("released %d, deduped %d, completed %d, stale %d",
					us.Released, us.Deduped, us.Completed, us.Stale)
			}
			if ui, _ := inline.UpcallStats(ctx); ui.Enabled {
				t.Errorf("synchronous service reports offload enabled")
			}
		})
	}
}

// TestUpcallOrdering pins in-order per-flow release: in a batch holding
// several packets of one cold flow, exactly the first is the slow-path
// initiator and every later one observes its install, both positionally
// and in WithResponse stream order — indistinguishable from inline.
func TestUpcallOrdering(t *testing.T) {
	s := startCfg(t, upcallConfig(BackendGigaflow, 1, 2))
	ctx := context.Background()

	kA, kB := key(1, 80), key(2, 22) // different ports: no wildcard overlap
	b := NewBatch(6)
	for _, k := range []gigaflow.Key{kA, kB, kA, kB, kA, kB} {
		b.Add(k)
	}
	if err := s.SubmitBatch(ctx, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		r := b.Result(i)
		if r.Err != nil {
			t.Fatalf("packet %d: %v", i, r.Err)
		}
		if wantHit := i >= 2; r.CacheHit != wantHit {
			t.Fatalf("packet %d: CacheHit=%v, want %v (first packet of each flow is the initiator)",
				i, r.CacheHit, wantHit)
		}
	}

	// Response-channel order for one flow must be initiator first, then
	// followers, regardless of the engine's concurrency. A fresh service:
	// the wildcard entries installed above would otherwise cover kC.
	s = startCfg(t, upcallConfig(BackendGigaflow, 1, 2))
	kC := key(3, 80)
	resp := make(chan Result, 3)
	b.Reset()
	b.Add(kC)
	b.Add(kC)
	b.Add(kC)
	if err := s.SubmitBatch(ctx, b, Nonblocking(), WithResponse(resp)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case r := <-resp:
			if r.Err != nil {
				t.Fatalf("response %d: %v", i, r.Err)
			}
			if wantHit := i > 0; r.CacheHit != wantHit {
				t.Fatalf("response %d: CacheHit=%v, want %v", i, r.CacheHit, wantHit)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("response %d never arrived", i)
		}
	}
}

// TestUpcallOverflowDrop drives the queue into deterministic overflow by
// blocking the engine on the worker's slow-path lock (held directly by
// the test): the first miss is in the engine's hands, the second fills
// the depth-1 queue, and every further miss must drop with
// ErrUpcallOverflow. Unlocking releases the two survivors.
func TestUpcallOverflowDrop(t *testing.T) {
	cfg := upcallConfig(BackendGigaflow, 1, 1)
	cfg.Upcall.Queue = 1
	cfg.Upcall.Batch = 1
	cfg.Upcall.Overflow = OverflowDrop
	s := startCfg(t, cfg)
	ctx := context.Background()
	w := s.workers[0]

	w.slowMu.Lock()
	resp := make(chan Result, 8)
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking(), WithResponse(resp)); err != nil {
		t.Fatal(err)
	}
	// Wait until the engine has dequeued the first miss (and is now
	// blocked on slowMu), so the queue slot is free again.
	for deadline := time.Now().Add(5 * time.Second); s.eng.Drained() != 1; {
		if time.Now().After(deadline) {
			t.Fatal("engine never picked up the first miss")
		}
		time.Sleep(time.Millisecond)
	}
	b := NewBatch(7)
	for h := uint64(2); h <= 8; h++ {
		b.Add(key(h, 80))
	}
	if err := s.SubmitBatch(ctx, b, Nonblocking(), WithResponse(resp)); err != nil {
		t.Fatal(err)
	}

	// The six drops happen synchronously in the worker's scan: flow 2
	// refills the queue, flows 3-8 overflow.
	drops := 0
	for i := 0; i < 6; i++ {
		select {
		case r := <-resp:
			if !errors.Is(r.Err, ErrUpcallOverflow) {
				t.Fatalf("expected ErrUpcallOverflow, got %+v", r)
			}
			drops++
		case <-time.After(5 * time.Second):
			t.Fatalf("drop %d never reported (got %d)", i, drops)
		}
	}
	w.slowMu.Unlock()
	for i := 0; i < 2; i++ {
		select {
		case r := <-resp:
			if r.Err != nil || r.Verdict.Port != 1 {
				t.Fatalf("survivor %d: %+v", i, r)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("survivor %d never completed", i)
		}
	}

	us, err := s.UpcallStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if us.OverflowDrops != 6 || us.Overflows != 6 || us.Completed != 2 {
		t.Errorf("stats: %+v, want 6 drops / 6 queue overflows / 2 completions", us)
	}
}

// TestUpcallOverflowInline checks the default policy: a full queue falls
// back to the inline slow path, so every packet still gets its verdict.
func TestUpcallOverflowInline(t *testing.T) {
	cfg := upcallConfig(BackendGigaflow, 1, 1)
	cfg.Upcall.Queue = 1
	cfg.Upcall.Batch = 1
	s := startCfg(t, cfg)
	ctx := context.Background()

	b := NewBatch(32)
	for h := uint64(1); h <= 32; h++ {
		b.Add(key(h, 80))
	}
	if err := s.SubmitBatch(ctx, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if r := b.Result(i); r.Err != nil || r.Verdict.Port != 1 {
			t.Fatalf("packet %d: %+v", i, r)
		}
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 32 {
		t.Errorf("stats: %+v", st)
	}
}

// TestUpcallShutdownParked proves shutdown is hang-proof with packets
// parked and the engine wedged mid-traversal: Close must fail the parked
// packets with ErrClosed (unblocking their submitters) and still return
// once the engine is released.
func TestUpcallShutdownParked(t *testing.T) {
	cfg := upcallConfig(BackendGigaflow, 1, 1)
	cfg.Upcall.Batch = 1
	s, err := New(buildPipeline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := s.workers[0]

	w.slowMu.Lock()
	resp := make(chan Result, 1)
	if _, err := s.Submit(ctx, key(1, 80), Nonblocking(), WithResponse(resp)); err != nil {
		t.Fatal(err)
	}
	// A blocking submitter parked behind a second flow, to prove it
	// unblocks at Close.
	blocked := make(chan error, 1)
	b := NewBatch(1)
	b.Add(key(2, 80))
	go func() { blocked <- s.SubmitBatch(ctx, b) }()
	for deadline := time.Now().Add(5 * time.Second); ; {
		us, err := s.UpcallStats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if us.ParkedPackets == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("packets never parked: %+v", us)
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case r := <-resp:
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("parked packet got %+v, want ErrClosed", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked packet never failed at shutdown")
	}
	select {
	case <-blocked:
		if got := b.Result(0).Err; !errors.Is(got, ErrClosed) {
			t.Fatalf("blocked submitter's request got %v, want ErrClosed", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking submitter still stuck after shutdown")
	}

	w.slowMu.Unlock() // release the engine so Close can join it
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung waiting for the engine")
	}
}

// holPipeline builds a pipeline whose flows never share installed cache
// entries: one exact /32 rule per host, so every new host is a genuine
// slow-path miss. This is the workload that exposes head-of-line
// blocking — an inline worker stalls every queued packet behind each
// cold traversal.
func holPipeline(hosts int) *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("hol")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	for h := 0; h < hosts; h++ {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=10.0.%d.%d/32", (h>>8)&0xff, h&0xff))
		p.MustAddRule(1, m, 10, nil, 2)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	return p
}

// holProbe measures the warm flow's blocking-submit latency while cold
// storms of stormSize never-before-seen flows are dumped on the same
// worker ahead of each probe. Returns the probe p50/p99 in nanoseconds.
func holProbe(t *testing.T, s *Service, hot gigaflow.Key, rounds, stormSize int) (p50, p99 float64) {
	t.Helper()
	ctx := context.Background()
	// Warm the hot flow.
	for i := 0; i < 4; i++ {
		if r, err := s.Submit(ctx, hot); err != nil || r.Err != nil {
			t.Fatalf("warming: %v %v", err, r.Err)
		}
	}
	storm := NewBatch(stormSize)
	lats := make([]float64, 0, rounds)
	host := 0
	for r := 0; r < rounds; r++ {
		storm.Reset()
		for j := 0; j < stormSize; j++ {
			storm.Add(key(uint64(host), 80))
			host++
		}
		if err := s.SubmitBatch(ctx, storm, Nonblocking()); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := s.Submit(ctx, hot)
		lat := float64(time.Since(start).Nanoseconds())
		if err != nil || res.Err != nil {
			t.Fatalf("probe: %v %v", err, res.Err)
		}
		lats = append(lats, lat)
		// Off the clock, let the engine drain this round's storm so the
		// gate measures per-storm head-of-line blocking, not cumulative
		// engine lag. Inline rounds are self-pacing: the blocking probe
		// already waited behind the whole storm. No-op when the service
		// has no offload (UpcallStats reports zero either way).
		for {
			us, err := s.UpcallStats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if us.ParkedPackets == 0 && us.QueueDepth == 0 {
				break
			}
		}
	}
	sort.Float64s(lats)
	return lats[len(lats)/2], lats[(len(lats)*99)/100]
}

// TestUpcallHOLGate is the head-of-line-blocking regression gate behind
// `make bench-gate`: during a cold-flow storm, a warm flow's p99
// blocking-submit latency with the async offload must be at least 2x
// better than the same workload processed inline — the whole point of
// parking misses instead of traversing them on the datapath goroutine.
// Skipped unless GF_BENCH_GATE=1.
func TestUpcallHOLGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") != "1" {
		t.Skip("set GF_BENCH_GATE=1 to run the upcall HOL gate")
	}
	const (
		rounds    = 200
		stormSize = 32
		hosts     = rounds*stormSize + 1
	)
	mkCfg := func(engineWorkers int) Config {
		cfg := Config{
			Workers:           1,
			Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 4096},
			MicroflowCapacity: 1024,
			QueueDepth:        4096,
		}
		if engineWorkers > 0 {
			cfg.Upcall = UpcallConfig{Workers: engineWorkers, Queue: 8192}
		}
		return cfg
	}
	hot := key(uint64(hosts-1), 80)

	mk := func(engineWorkers int) *Service {
		s, err := New(holPipeline(hosts), mkCfg(engineWorkers))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}

	inline := mk(0)
	async := mk(2)
	inP50, inP99 := holProbe(t, inline, hot, rounds, stormSize)
	asP50, asP99 := holProbe(t, async, hot, rounds, stormSize)

	speedup := inP99 / asP99
	t.Logf("inline p50/p99 %.0f/%.0f ns, async p50/p99 %.0f/%.0f ns, p99 speedup %.1fx",
		inP50, inP99, asP50, asP99, speedup)
	fmt.Printf("bench-gate: warm-flow p99 under cold storm: inline %.0f ns, async %.0f ns, speedup %.1fx (floor 2.0x)\n",
		inP99, asP99, speedup)
	if speedup < 2 {
		t.Fatalf("async offload p99 is only %.1fx better than inline (floor 2x): %.0f vs %.0f ns",
			speedup, asP99, inP99)
	}
}
