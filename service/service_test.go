package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"gigaflow"
)

func buildPipeline() *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("svc")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(1, gigaflow.MustParseMatch("ip_dst=10.0.0.0/16"), 10, nil, 2)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=22"), 10,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)
	return p
}

func key(host, port uint64) gigaflow.Key {
	return gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800").
		With(gigaflow.FieldIPDst, 0x0a000000|host).
		With(gigaflow.FieldTpDst, port)
}

func startService(t *testing.T, workers int) (*Service, context.Context) {
	t.Helper()
	s, err := New(buildPipeline(), Config{
		Workers: workers,
		Cache:   gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, ctx
}

func TestSubmitBasic(t *testing.T) {
	s, ctx := startService(t, 2)
	r, err := s.Submit(ctx, key(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict.Port != 1 {
		t.Fatalf("verdict = %v", r.Verdict)
	}
	if r.CacheHit {
		t.Error("first packet cannot hit")
	}
	r, err = s.Submit(ctx, key(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Error("second identical packet should hit")
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 2 || st.CacheHits != 1 || st.Slowpath != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	s, ctx := startService(t, 4)
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				host := uint64(g*perG+i) % 512
				port := uint64(80)
				if i%3 == 0 {
					port = 22
				}
				r, err := s.Submit(ctx, key(host, port))
				if err != nil {
					errCh <- err
					return
				}
				wantDrop := port == 22
				if (r.Verdict.Kind == 2) != wantDrop {
					errCh <- context.DeadlineExceeded // sentinel misuse is fine for test failure
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != goroutines*perG {
		t.Errorf("packets = %d, want %d", st.Packets, goroutines*perG)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits under repeated flows")
	}
	if s.CacheEntries() == 0 {
		t.Error("caches empty")
	}
}

func TestUpdateRulesRevalidatesAllReplicas(t *testing.T) {
	s, ctx := startService(t, 3)
	// Warm several flows across workers.
	for h := uint64(0); h < 32; h++ {
		if _, err := s.Submit(ctx, key(h, 80)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip port 80 to a new output on every replica.
	err := s.UpdateRules(ctx, func(p *gigaflow.Pipeline) error {
		for _, r := range p.Table(2).Rules() {
			if r.Match.Key.Get(gigaflow.FieldTpDst) == 80 {
				p.DeleteRule(r)
			}
		}
		p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
			[]gigaflow.Action{gigaflow.Output(9)}, gigaflow.NoTable)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every flow must now observe the new rule, on every worker shard.
	for h := uint64(0); h < 32; h++ {
		r, err := s.Submit(ctx, key(h, 80))
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict.Port != 9 {
			t.Fatalf("host %d: verdict %v, want output(9)", h, r.Verdict)
		}
	}
}

func TestSameFlowSameWorker(t *testing.T) {
	s, _ := startService(t, 4)
	k := key(7, 80)
	w1 := s.workers[s.shardOfKey(&k)]
	for i := 0; i < 10; i++ {
		w2 := s.workers[s.shardOfKey(&k)]
		if w1 != w2 {
			t.Fatal("shard hash not stable")
		}
	}
}

func TestIdleExpiryTicker(t *testing.T) {
	s, err := New(buildPipeline(), Config{
		Workers: 1,
		Cache:   gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 64},
		Expiry:  ExpiryConfig{MaxIdle: time.Millisecond, Every: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(ctx, key(1, 80)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.CacheEntries() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.CacheEntries(); got != 0 {
		t.Errorf("idle entries not expired: %d", got)
	}
}

func TestLifecycleErrors(t *testing.T) {
	s, err := New(buildPipeline(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Error("Close before Start must fail")
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(ctx); err == nil {
		t.Error("double Start must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Error("double Close must fail")
	}
}

func TestSubmitContextCancel(t *testing.T) {
	s, _ := startService(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, key(1, 80)); err == nil {
		t.Error("cancelled submit must fail")
	}
}
