package service

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"gigaflow"
)

// benchService builds a warmed 1-worker service over the test pipeline:
// every flow the benchmark submits is already resident in the microflow
// cache, so the measurement isolates submission overhead (channel
// crossings, result plumbing, per-packet vs per-batch bookkeeping)
// rather than slowpath traversal cost.
func benchService(b testing.TB, flows int, noLatency bool) (*Service, []gigaflow.Key) {
	b.Helper()
	s, err := New(buildPipeline(), Config{
		Workers:           1,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
		MicroflowCapacity: 4 * flows,
		Latency:           LatencyConfig{Disable: noLatency},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	keys := make([]gigaflow.Key, flows)
	for i := range keys {
		keys[i] = key(uint64(i), 80)
		if _, err := s.Submit(ctx, keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	return s, keys
}

func benchSubmit(b *testing.B) {
	s, keys := benchService(b, 64, false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSubmitBatch(b *testing.B) { benchSubmitBatchCfg(b, false) }

// benchSubmitBatchCfg is the batched benchmark body parametrized on
// latency attribution, so the overhead gate can difference the
// instrumented datapath against a Latency.Disable baseline.
func benchSubmitBatchCfg(b *testing.B, noLatency bool) {
	s, keys := benchService(b, 64, noLatency)
	ctx := context.Background()
	batch := NewBatch(DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		batch.Reset()
		for n := 0; n < DefaultBatchSize && sent < b.N; n++ {
			batch.Add(keys[sent%len(keys)])
			sent++
		}
		if err := s.SubmitBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmit measures the per-packet blocking submission path: one
// channel round-trip and one result per packet.
func BenchmarkSubmit(b *testing.B) { benchSubmit(b) }

// BenchmarkSubmitBatch measures the batched blocking path at the default
// batch size: the channel round-trip, stats update, and latency sample
// are amortized over DefaultBatchSize packets.
func BenchmarkSubmitBatch(b *testing.B) { benchSubmitBatch(b) }

// TestBatchThroughputGate is the regression gate behind `make bench-gate`:
// batched submission must stay at least 2x faster per packet than
// per-packet submission on the same warmed service. Skipped unless
// GF_BENCH_GATE=1 — wall-clock benchmarks have no place in the default
// unit-test run.
func TestBatchThroughputGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") != "1" {
		t.Skip("set GF_BENCH_GATE=1 to run the batch throughput gate")
	}
	single := testing.Benchmark(benchSubmit)
	batched := testing.Benchmark(benchSubmitBatch)
	sNs := float64(single.NsPerOp())
	bNs := float64(batched.NsPerOp())
	speedup := sNs / bNs
	t.Logf("Submit: %.0f ns/pkt, SubmitBatch/%d: %.0f ns/pkt, speedup %.2fx",
		sNs, DefaultBatchSize, bNs, speedup)
	fmt.Printf("bench-gate: Submit %.0f ns/pkt, SubmitBatch/%d %.0f ns/pkt, speedup %.2fx (floor 2.00x)\n",
		sNs, DefaultBatchSize, bNs, speedup)
	if speedup < 2 {
		t.Fatalf("batched submission is only %.2fx per-packet submission (floor 2x): %0.f vs %.0f ns/pkt",
			speedup, bNs, sNs)
	}
}

// benchServiceCt builds a warmed 1-worker service over the test
// pipeline with or without connection tracking, submitting full
// 5-tuple TCP keys so the tracked side actually runs the conntrack
// machinery (Track on the miss, the ctServe epoch/transition guard and
// LRU touch on every hit) rather than short-circuiting as untracked.
// The pipeline itself is stateless — no ct_state matches, no NAT — so
// the pair isolates the per-packet cost of tracking itself.
func benchServiceCt(b testing.TB, flows int, ct bool) (*Service, []gigaflow.Key) {
	b.Helper()
	cfg := Config{
		Workers:           1,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
		MicroflowCapacity: 4 * flows,
		Latency:           LatencyConfig{Disable: true},
	}
	if ct {
		cfg.Conntrack = ConntrackConfig{Enable: true, MaxConns: 4 * flows}
	}
	s, err := New(buildPipeline(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	keys := make([]gigaflow.Key, flows)
	for i := range keys {
		keys[i] = key(uint64(i), 80).
			With(gigaflow.FieldIPProto, 6).
			With(gigaflow.FieldIPSrc, 0x0a010000|uint64(i)).
			With(gigaflow.FieldTpSrc, 1024+uint64(i))
		if _, err := s.Submit(ctx, keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	return s, keys
}

// TestConntrackOverheadGate is the stateless-traffic conntrack floor
// behind `make bench-gate`: a conntrack-enabled service pushing plain
// TCP flows through a stateless pipeline must stay within 5% of the
// identical service with tracking disabled, at 0 allocs/op — the
// per-hit cost of the ctServe guard (one epoch compare, one
// MayTransition check, one LRU touch) must stay noise-level for users
// who never write a stateful rule. Same interleaved-slice measurement
// as TestLatencyOverheadGate; see there for why sequential benchmark
// blocks cannot resolve a few-percent delta on a shared box. Skipped
// unless GF_BENCH_GATE=1.
func TestConntrackOverheadGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") != "1" {
		t.Skip("set GF_BENCH_GATE=1 to run the conntrack overhead gate")
	}
	const (
		warmSlices = 32
		slices     = 256
		perSlice   = 256
		reps       = 3
	)
	base, keys := benchServiceCt(t, 64, false)
	ct, ctKeys := benchServiceCt(t, 64, true)
	baseBatch := NewBatch(DefaultBatchSize)
	ctBatch := NewBatch(DefaultBatchSize)

	allocs := testing.AllocsPerRun(64, func() {
		_ = submitSlice(t, ct, ctKeys, ctBatch, 4)
	})
	if allocs != 0 {
		t.Fatalf("conntrack batched submit allocates %.1f allocs per slice, want 0", allocs)
	}

	pkts := float64(slices * perSlice * DefaultBatchSize)
	best := math.MaxFloat64
	var bestBase, bestCt float64
	for rep := 0; rep < reps; rep++ {
		var baseTime, ctTime time.Duration
		for s := 0; s < warmSlices+slices; s++ {
			var db, dc time.Duration
			if s%2 == 0 {
				db = submitSlice(t, base, keys, baseBatch, perSlice)
				dc = submitSlice(t, ct, ctKeys, ctBatch, perSlice)
			} else {
				dc = submitSlice(t, ct, ctKeys, ctBatch, perSlice)
				db = submitSlice(t, base, keys, baseBatch, perSlice)
			}
			if s >= warmSlices {
				baseTime += db
				ctTime += dc
			}
		}
		bNs, cNs := float64(baseTime)/pkts, float64(ctTime)/pkts
		ratio := cNs / bNs
		t.Logf("rep %d: stateless %.1f ns/pkt, conntrack %.1f ns/pkt (%+.1f%%)",
			rep, bNs, cNs, (ratio-1)*100)
		if ratio < best {
			best, bestBase, bestCt = ratio, bNs, cNs
		}
	}
	// The tracked side must actually have tracked: every warm hit runs
	// the guard.
	st, err := ct.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CtFastpath == 0 {
		t.Fatal("conntrack side never hit the ctServe fast path — gate measured nothing")
	}
	overhead := best - 1
	fmt.Printf("bench-gate: conntrack %.1f -> %.1f ns/pkt (%+.1f%%, ceiling +5.0%%), 0 allocs/op\n",
		bestBase, bestCt, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("conntrack costs %.1f%% on stateless traffic (ceiling 5%%): %.1f vs %.1f ns/pkt",
			overhead*100, bestCt, bestBase)
	}
}

// submitSlice pushes n full batches through the service and returns the
// wall time spent, the gate's unit of measurement.
func submitSlice(t *testing.T, s *Service, keys []gigaflow.Key, batch *Batch, n int) time.Duration {
	t.Helper()
	ctx := context.Background()
	start := time.Now()
	for i, sent := 0, 0; i < n; i++ {
		batch.Reset()
		for j := 0; j < DefaultBatchSize; j++ {
			batch.Add(keys[sent%len(keys)])
			sent++
		}
		if err := s.SubmitBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestLatencyOverheadGate is the attribution overhead floor behind
// `make bench-gate`: with latency attribution on (the default), the
// batched datapath must stay within 5% of the same path built with
// Config.Latency.Disable, at 0 allocs/op. Shared-box drift (frequency
// scaling, noisy neighbors) swings this path by ±15% on second
// timescales — far more than the few-ns true overhead — so two
// sequential `testing.Benchmark` blocks cannot resolve it. Instead the
// gate interleaves the two services in millisecond slices, alternating
// which goes first, and compares the summed times: both sides sample
// the same machine regimes, and the drift divides out of the ratio.
// Three repetitions, best ratio — a systematic regression (an
// allocation, a per-packet clock read) inflates every repetition.
// Skipped unless GF_BENCH_GATE=1.
func TestLatencyOverheadGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") != "1" {
		t.Skip("set GF_BENCH_GATE=1 to run the latency overhead gate")
	}
	const (
		warmSlices = 32  // untimed: page in both services, settle the regime
		slices     = 256 // timed slices per side per repetition
		perSlice   = 256 // batches per slice: ~1ms, finer than drift timescales
		reps       = 3
	)
	base, keys := benchService(t, 64, true)
	inst, _ := benchService(t, 64, false)
	baseBatch := NewBatch(DefaultBatchSize)
	instBatch := NewBatch(DefaultBatchSize)

	allocs := testing.AllocsPerRun(64, func() {
		_ = submitSlice(t, inst, keys, instBatch, 4)
	})
	if allocs != 0 {
		t.Fatalf("instrumented batched submit allocates %.1f allocs per slice, want 0", allocs)
	}

	pkts := float64(slices * perSlice * DefaultBatchSize)
	best := math.MaxFloat64
	var bestBase, bestInst float64
	for rep := 0; rep < reps; rep++ {
		var baseTime, instTime time.Duration
		for s := 0; s < warmSlices+slices; s++ {
			var db, di time.Duration
			if s%2 == 0 {
				db = submitSlice(t, base, keys, baseBatch, perSlice)
				di = submitSlice(t, inst, keys, instBatch, perSlice)
			} else {
				di = submitSlice(t, inst, keys, instBatch, perSlice)
				db = submitSlice(t, base, keys, baseBatch, perSlice)
			}
			if s >= warmSlices {
				baseTime += db
				instTime += di
			}
		}
		bNs, iNs := float64(baseTime)/pkts, float64(instTime)/pkts
		ratio := iNs / bNs
		t.Logf("rep %d: baseline %.1f ns/pkt, instrumented %.1f ns/pkt (%+.1f%%)",
			rep, bNs, iNs, (ratio-1)*100)
		if ratio < best {
			best, bestBase, bestInst = ratio, bNs, iNs
		}
	}
	overhead := best - 1
	fmt.Printf("bench-gate: latency attribution %.1f -> %.1f ns/pkt (%+.1f%%, ceiling +5.0%%), 0 allocs/op\n",
		bestBase, bestInst, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("latency attribution costs %.1f%% over the Latency.Disable baseline (ceiling 5%%): %.1f vs %.1f ns/pkt",
			overhead*100, bestInst, bestBase)
	}
}
