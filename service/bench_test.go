package service

import (
	"context"
	"fmt"
	"os"
	"testing"

	"gigaflow"
)

// benchService builds a warmed 1-worker service over the test pipeline:
// every flow the benchmark submits is already resident in the microflow
// cache, so the measurement isolates submission overhead (channel
// crossings, result plumbing, per-packet vs per-batch bookkeeping)
// rather than slowpath traversal cost.
func benchService(b *testing.B, flows int) (*Service, []gigaflow.Key) {
	b.Helper()
	s, err := New(buildPipeline(), Config{
		Workers:           1,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
		MicroflowCapacity: 4 * flows,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	keys := make([]gigaflow.Key, flows)
	for i := range keys {
		keys[i] = key(uint64(i), 80)
		if _, err := s.Submit(ctx, keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	return s, keys
}

func benchSubmit(b *testing.B) {
	s, keys := benchService(b, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSubmitBatch(b *testing.B) {
	s, keys := benchService(b, 64)
	ctx := context.Background()
	batch := NewBatch(DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		batch.Reset()
		for n := 0; n < DefaultBatchSize && sent < b.N; n++ {
			batch.Add(keys[sent%len(keys)])
			sent++
		}
		if err := s.SubmitBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmit measures the per-packet blocking submission path: one
// channel round-trip and one result per packet.
func BenchmarkSubmit(b *testing.B) { benchSubmit(b) }

// BenchmarkSubmitBatch measures the batched blocking path at the default
// batch size: the channel round-trip, stats update, and latency sample
// are amortized over DefaultBatchSize packets.
func BenchmarkSubmitBatch(b *testing.B) { benchSubmitBatch(b) }

// TestBatchThroughputGate is the regression gate behind `make bench-gate`:
// batched submission must stay at least 2x faster per packet than
// per-packet submission on the same warmed service. Skipped unless
// GF_BENCH_GATE=1 — wall-clock benchmarks have no place in the default
// unit-test run.
func TestBatchThroughputGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") != "1" {
		t.Skip("set GF_BENCH_GATE=1 to run the batch throughput gate")
	}
	single := testing.Benchmark(benchSubmit)
	batched := testing.Benchmark(benchSubmitBatch)
	sNs := float64(single.NsPerOp())
	bNs := float64(batched.NsPerOp())
	speedup := sNs / bNs
	t.Logf("Submit: %.0f ns/pkt, SubmitBatch/%d: %.0f ns/pkt, speedup %.2fx",
		sNs, DefaultBatchSize, bNs, speedup)
	fmt.Printf("bench-gate: Submit %.0f ns/pkt, SubmitBatch/%d %.0f ns/pkt, speedup %.2fx (floor 2.00x)\n",
		sNs, DefaultBatchSize, bNs, speedup)
	if speedup < 2 {
		t.Fatalf("batched submission is only %.2fx per-packet submission (floor 2x): %0.f vs %.0f ns/pkt",
			speedup, bNs, sNs)
	}
}
