// Differential tests for RSS-style wire-hash sharding: the sharded
// service must be observationally identical to Workers=1 — bit-for-bit
// on a stateless mix, and invariant-preserving (modulo which backend a
// partitioned NAT pool binds) on a stateful one.
package service

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"gigaflow"
	wire "gigaflow/internal/packet"
)

// perFlowPipeline builds a 3-table pipeline in which EVERY table matches
// a flow-unique field (source MAC, source IP, source port), so no two
// flows ever share a sub-traversal cache entry. That makes aggregate
// cache statistics placement-invariant: however the flows are scattered
// over shards, each flow contributes exactly its own misses, installs,
// entries, and hits — the property the bit-identical differential needs.
func perFlowPipeline(flows int) *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("perflow")
	p.AddTable(0, "src-mac", gigaflow.NewFieldSet(gigaflow.FieldEthSrc))
	p.AddTable(1, "src-ip", gigaflow.NewFieldSet(gigaflow.FieldIPSrc))
	p.AddTable(2, "src-port", gigaflow.NewFieldSet(gigaflow.FieldTpSrc))
	for i := 0; i < flows; i++ {
		p.MustAddRule(0, gigaflow.MustParseMatch(fmt.Sprintf("eth_src=%d", 0x020000000000|uint64(i))),
			10, nil, 1)
		p.MustAddRule(1, gigaflow.MustParseMatch(fmt.Sprintf("ip_src=%d", 0x0a000100+uint64(i))),
			10, nil, 2)
		p.MustAddRule(2, gigaflow.MustParseMatch(fmt.Sprintf("tp_src=%d", 10000+i)),
			10, []gigaflow.Action{gigaflow.Output(uint16(1 + i%8))}, gigaflow.NoTable)
	}
	return p
}

// perFlowKey is flow i's 5-tuple for perFlowPipeline.
func perFlowKey(i int) gigaflow.Key {
	var k gigaflow.Key
	return k.With(gigaflow.FieldEthSrc, 0x020000000000|uint64(i)).
		With(gigaflow.FieldEthDst, 0x020000000001).
		With(gigaflow.FieldEthType, wire.EtherTypeIPv4).
		With(gigaflow.FieldIPSrc, 0x0a000100+uint64(i)).
		With(gigaflow.FieldIPDst, 0x0a000001).
		With(gigaflow.FieldIPProto, wire.IPProtoTCP).
		With(gigaflow.FieldTpSrc, uint64(10000+i)).
		With(gigaflow.FieldTpDst, 80)
}

// runStatelessMix submits rounds× every flow's frame through
// SubmitFrameBatch on a service with the given worker count and returns
// the per-index results, aggregate stats, and total cache entries.
func runStatelessMix(t *testing.T, workers, flows, rounds int) ([]Result, gigaflow.VSwitchStats, int) {
	t.Helper()
	s, err := New(perFlowPipeline(flows), Config{
		Workers:           workers,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
		MicroflowCapacity: 8 * flows,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	frames := make([]Frame, flows)
	for i := range frames {
		frames[i] = Frame{InPort: 0, Data: wire.Encode(perFlowKey(i))}
	}
	b := NewBatch(flows)
	var results []Result
	for r := 0; r < rounds; r++ {
		if err := s.SubmitFrameBatch(ctx, frames, b); err != nil {
			t.Fatalf("workers=%d round %d: %v", workers, r, err)
		}
		for i := 0; i < b.Len(); i++ {
			if got, want := b.Request(i).Key, perFlowKey(i); got != want {
				t.Fatalf("workers=%d round %d: frame %d gathered key %v, want %v",
					workers, r, i, got, want)
			}
			results = append(results, b.Result(i))
		}
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return results, st, s.CacheEntries()
}

// TestShardedStatelessBitIdentical: on the per-flow-exact stateless mix,
// per-packet results AND aggregate statistics are bit-identical across
// 1, 2, and 4 shards — wire-hash routing plus shard-local decode changes
// where work happens, never what it computes.
func TestShardedStatelessBitIdentical(t *testing.T) {
	const flows, rounds = 64, 5
	baseRes, baseSt, baseEntries := runStatelessMix(t, 1, flows, rounds)
	for _, workers := range []int{2, 4} {
		res, st, entries := runStatelessMix(t, workers, flows, rounds)
		if len(res) != len(baseRes) {
			t.Fatalf("workers=%d produced %d results, want %d", workers, len(res), len(baseRes))
		}
		for i := range res {
			if res[i].Err != nil || baseRes[i].Err != nil {
				t.Fatalf("workers=%d result %d errored: %v / %v", workers, i, res[i].Err, baseRes[i].Err)
			}
			if res[i].Verdict != baseRes[i].Verdict || res[i].Final != baseRes[i].Final ||
				res[i].CacheHit != baseRes[i].CacheHit {
				t.Fatalf("workers=%d result %d diverged:\n  got  %+v\n  want %+v",
					workers, i, res[i], baseRes[i])
			}
		}
		if st != baseSt {
			t.Errorf("workers=%d stats diverged:\n  got  %+v\n  want %+v", workers, st, baseSt)
		}
		if entries != baseEntries {
			t.Errorf("workers=%d cache entries = %d, want %d", workers, entries, baseEntries)
		}
	}
}

// natLBPipeline is the dnslb scenario's 4-table pipeline (classify →
// dnat pool → per-backend egress → ct_nat reverse), reused here as the
// stateful differential workload.
func natLBPipeline(pool []gigaflow.NATTarget) *gigaflow.Pipeline {
	const vip, port = 0x0a090001, 53
	p := gigaflow.NewPipeline("natlb")
	p.AddTable(0, "classify", gigaflow.NewFieldSet(
		gigaflow.FieldEthType, gigaflow.FieldIPProto, gigaflow.FieldIPDst,
		gigaflow.FieldTpDst, gigaflow.FieldCtState))
	p.AddTable(1, "lb", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "egress", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(3, "reverse", gigaflow.NewFieldSet(gigaflow.FieldIPSrc))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_type=0x0800,ip_proto=17,ct_state=0x11/0x11"),
		20, nil, 3)
	p.MustAddRule(0, gigaflow.MustParseMatch(
		fmt.Sprintf("eth_type=0x0800,ip_proto=17,ip_dst=%d,tp_dst=%d,ct_state=0x01/0x11",
			uint64(vip), port)),
		10, nil, 1)
	p.MustAddRule(0, gigaflow.MustParseMatch("*"), 1,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)
	p.MustAddRule(1, gigaflow.MustParseMatch("*"), 10,
		[]gigaflow.Action{gigaflow.DNAT(1)}, 2)
	for i, tg := range pool {
		p.MustAddRule(2, gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=%d", tg.IP)), 10,
			[]gigaflow.Action{gigaflow.Output(uint16(100 + i))}, gigaflow.NoTable)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("*"), 1,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)
	p.MustAddRule(3, gigaflow.MustParseMatch("*"), 10,
		[]gigaflow.Action{gigaflow.CtNAT(), gigaflow.Output(1)}, gigaflow.NoTable)
	p.SetNATPool(1, pool)
	return p
}

func natLBClientKey(i int) gigaflow.Key {
	var k gigaflow.Key
	return k.With(gigaflow.FieldEthSrc, 0x02aabb000000|uint64(i)).
		With(gigaflow.FieldEthDst, 0x020000000001).
		With(gigaflow.FieldEthType, wire.EtherTypeIPv4).
		With(gigaflow.FieldIPSrc, 0x0a010000|uint64(i&0xffff)).
		With(gigaflow.FieldIPDst, 0x0a090001).
		With(gigaflow.FieldIPProto, wire.IPProtoUDP).
		With(gigaflow.FieldTpSrc, uint64(1024+i)).
		With(gigaflow.FieldTpDst, 53)
}

// natLBOutcome is one worker-count's observable summary of the stateful
// mix: everything that must be invariant under sharding. Which backend a
// client pins to legitimately differs (partitioned pools offer each
// shard a different sub-range), so the pinning itself is excluded — only
// its consistency is asserted inline.
type natLBOutcome struct {
	packets   uint64
	ctCreated uint64
	ctLive    int
}

// runNATMix drives the LB scenario over real wire frames at the given
// worker count: each client sends queries to the VIP and receives
// replies from its pinned backend, interleaved over rounds. It asserts
// the per-packet stateful invariants inline and returns the aggregate
// outcome for cross-worker-count comparison.
func runNATMix(t *testing.T, workers, clients, rounds int) natLBOutcome {
	t.Helper()
	const vip, vipPort = uint64(0x0a090001), uint64(53)
	pool := make([]gigaflow.NATTarget, 8)
	for i := range pool {
		pool[i] = gigaflow.NATTarget{IP: 0x0a140001 + uint64(i), Port: 5301 + uint64(i)}
	}
	s, err := New(natLBPipeline(pool), Config{
		Workers:           workers,
		Cache:             gigaflow.CacheConfig{NumTables: 4, TableCapacity: 4 * 1024},
		MicroflowCapacity: 8 * clients,
		Conntrack:         ConntrackConfig{Enable: true, MaxConns: 4 * clients},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	queries := make([]Frame, clients)
	for i := range queries {
		queries[i] = Frame{Data: wire.Encode(natLBClientKey(i))}
	}
	replies := make([]Frame, clients)
	pinned := make([]int, clients)
	for i := range pinned {
		pinned[i] = -1
	}

	qb, rb := NewBatch(clients), NewBatch(clients)
	for r := 0; r < rounds; r++ {
		if err := s.SubmitFrameBatch(ctx, queries, qb); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < qb.Len(); i++ {
			res := qb.Result(i)
			if res.Err != nil {
				t.Fatalf("workers=%d query %d/%d: %v", workers, r, i, res.Err)
			}
			b := int(res.Verdict.Port) - 100
			if res.Verdict.Kind != gigaflow.VerdictOutput || b < 0 || b >= len(pool) {
				t.Fatalf("workers=%d query %d/%d verdict %v", workers, r, i, res.Verdict)
			}
			if got := res.Final.Get(gigaflow.FieldIPDst); got != pool[b].IP ||
				res.Final.Get(gigaflow.FieldTpDst) != pool[b].Port {
				t.Fatalf("workers=%d query %d/%d rewritten to %x:%d, egressed toward backend %d",
					workers, r, i, got, res.Final.Get(gigaflow.FieldTpDst), b)
			}
			switch pinned[i] {
			case -1:
				pinned[i] = b
				// The reply the pinned backend sends: the translated tuple,
				// inverted, as real frame bytes.
				ck := natLBClientKey(i)
				rk := ck.With(gigaflow.FieldEthSrc, ck.Get(gigaflow.FieldEthDst)).
					With(gigaflow.FieldEthDst, ck.Get(gigaflow.FieldEthSrc)).
					With(gigaflow.FieldIPSrc, pool[b].IP).
					With(gigaflow.FieldIPDst, ck.Get(gigaflow.FieldIPSrc)).
					With(gigaflow.FieldTpSrc, pool[b].Port).
					With(gigaflow.FieldTpDst, ck.Get(gigaflow.FieldTpSrc))
				replies[i] = Frame{Data: wire.Encode(rk)}
			case b:
			default:
				t.Fatalf("workers=%d client %d rebound %d→%d mid-connection", workers, i, pinned[i], b)
			}
		}
		if err := s.SubmitFrameBatch(ctx, replies, rb); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rb.Len(); i++ {
			res := rb.Result(i)
			if res.Err != nil {
				t.Fatalf("workers=%d reply %d/%d: %v", workers, r, i, res.Err)
			}
			if res.Verdict.Kind != gigaflow.VerdictOutput || res.Verdict.Port != 1 {
				t.Fatalf("workers=%d reply %d/%d verdict %v, want output(1)", workers, r, i, res.Verdict)
			}
			// Un-NATing must restore the VIP bit-exactly — the client can
			// never see the backend's address.
			if res.Final.Get(gigaflow.FieldIPSrc) != vip ||
				res.Final.Get(gigaflow.FieldTpSrc) != vipPort {
				t.Fatalf("workers=%d reply %d/%d leaked backend: src=%x:%d", workers, r, i,
					res.Final.Get(gigaflow.FieldIPSrc), res.Final.Get(gigaflow.FieldTpSrc))
			}
		}
	}

	// With partitioned pools every binding must come from the shard that
	// owns the client's connection — cross-check via ShardStats.
	shards, err := s.ShardStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var out natLBOutcome
	for _, sh := range shards {
		out.packets += sh.Packets
		out.ctCreated += sh.CtCreated
		out.ctLive += sh.CtLive
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.packets != st.Packets {
		t.Fatalf("workers=%d ShardStats packets %d != Stats packets %d", workers, out.packets, st.Packets)
	}
	return out
}

// TestShardedNATInvariants: the stateful LB mix runs at Workers>1 with
// partitioned NAT pools, and every sharding-invariant observable —
// packet count, connections created, connections live — matches the
// Workers=1 run exactly. (Backend choice is legitimately
// placement-dependent and asserted only for per-connection consistency.)
func TestShardedNATInvariants(t *testing.T) {
	const clients, rounds = 128, 4
	base := runNATMix(t, 1, clients, rounds)
	if base.ctCreated != clients {
		t.Fatalf("baseline created %d connections, want %d", base.ctCreated, clients)
	}
	for _, workers := range []int{2, 4} {
		got := runNATMix(t, workers, clients, rounds)
		if got != base {
			t.Errorf("workers=%d outcome %+v, want %+v", workers, got, base)
		}
	}
}

// TestNATPoolSmallerThanWorkers: partitioning needs at least one target
// per shard; New must refuse the configuration with a descriptive error
// instead of leaving some shard unable to bind.
func TestNATPoolSmallerThanWorkers(t *testing.T) {
	pool := []gigaflow.NATTarget{{IP: 1, Port: 1}, {IP: 2, Port: 2}}
	_, err := New(natLBPipeline(pool), Config{
		Workers:   4,
		Conntrack: ConntrackConfig{Enable: true},
	})
	if err == nil || !strings.Contains(err.Error(), "at least one target per worker") {
		t.Fatalf("err = %v, want pool-too-small rejection", err)
	}
}

// TestNATEndpointConflict: one endpoint owned by two different shards
// (via two pools partitioning it differently) would make reply routing
// ambiguous; New must reject it.
func TestNATEndpointConflict(t *testing.T) {
	a := gigaflow.NATTarget{IP: 1, Port: 1}
	b := gigaflow.NATTarget{IP: 2, Port: 2}
	p := natLBPipeline([]gigaflow.NATTarget{a, b})
	p.SetNATPool(2, []gigaflow.NATTarget{b, a}) // reversed: partitions disagree
	_, err := New(p, Config{Workers: 2, Conntrack: ConntrackConfig{Enable: true}})
	if err == nil || !strings.Contains(err.Error(), "differently-owned") {
		t.Fatalf("err = %v, want endpoint-conflict rejection", err)
	}
}

// TestShardStats: the per-shard snapshot must account for every packet
// and piece of flow state, shard by shard.
func TestShardStats(t *testing.T) {
	s, err := New(perFlowPipeline(32), Config{
		Workers: 4,
		Cache:   gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := NewBatch(32)
	frames := make([]Frame, 32)
	for i := range frames {
		frames[i] = Frame{Data: wire.Encode(perFlowKey(i))}
	}
	if err := s.SubmitFrameBatch(ctx, frames, b); err != nil {
		t.Fatal(err)
	}
	shards, err := s.ShardStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shard rows, want 4", len(shards))
	}
	var packets uint64
	var entries, busy int
	for i, sh := range shards {
		if sh.Worker != i {
			t.Errorf("row %d has Worker=%d", i, sh.Worker)
		}
		packets += sh.Packets
		entries += sh.CacheEntries
		if sh.Packets > 0 {
			busy++
		}
	}
	if packets != 32 {
		t.Errorf("shard packets sum to %d, want 32", packets)
	}
	if entries != s.CacheEntries() {
		t.Errorf("shard cache entries sum to %d, want %d", entries, s.CacheEntries())
	}
	if busy < 2 {
		t.Errorf("only %d of 4 shards saw traffic — hash looks degenerate", busy)
	}
}

// TestSubmitFrameBatchConcurrent hammers the wire-path ingestion from
// many submitter goroutines at once — shard-local decode means
// frameMetrics is updated concurrently by workers AND submitters (the
// fallback path), which must be race-free and must not lose counts.
// Run with -race to make the check meaningful.
func TestSubmitFrameBatchConcurrent(t *testing.T) {
	const submitters, perBatch, batches = 8, 32, 25
	s, err := New(perFlowPipeline(64), Config{
		Workers:    4,
		Cache:      gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
		QueueDepth: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	arp := wire.Encode(perFlowKey(0).With(gigaflow.FieldEthType, 0x0806))
	var wg sync.WaitGroup
	errCh := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := NewBatch(perBatch)
			frames := make([]Frame, perBatch)
			for n := 0; n < batches; n++ {
				for i := range frames {
					switch i % 8 {
					case 6:
						frames[i] = Frame{Data: arp} // extractor fallback, still forwarded
					case 7:
						frames[i] = Frame{Data: arp[:10]} // rejected: short frame
					default:
						frames[i] = Frame{Data: wire.Encode(perFlowKey((g*perBatch + i) % 64))}
					}
				}
				if err := s.SubmitFrameBatch(ctx, frames, b); err != nil {
					errCh <- err
					return
				}
				for i := 0; i < b.Len(); i++ {
					res := b.Result(i)
					if i%8 == 7 {
						if res.Err == nil {
							errCh <- fmt.Errorf("short frame %d not rejected", i)
							return
						}
						continue
					}
					if res.Err != nil {
						errCh <- fmt.Errorf("frame %d: %v", i, res.Err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Not one frame lost or double-counted across the concurrent
	// submitter-side and shard-side decodes.
	if got, want := s.frames.frames.Value(), uint64(submitters*perBatch*batches); got != want {
		t.Errorf("frames counter = %d, want %d", got, want)
	}
}

// TestShardScalingGate is the sharding floor behind `make bench-gate`:
// at 2 shards the stateless wire mix must sustain at least 1.5x the
// 1-shard throughput, and the extractor path must stay at 0 allocs/op.
//
// The scaling claim is checked in the mode the machine can support. With
// 4+ CPUs it is measured directly: wall-clock SubmitFrameBatch
// throughput at Workers=2 vs Workers=1. On smaller boxes (this project's
// CI container has one CPU, where parallel wall-clock speedup is
// physically unmeasurable) the gate measures the two REAL pipeline stage
// costs — t_submit, the serial per-frame ingestion work (RSS extraction,
// shard routing, arena copy), and t_worker, everything the shard does
// (full decode plus cache processing), derived from the measured 1-shard
// end-to-end cost — and applies the pipeline bound: throughput at N
// shards is 1/max(t_submit, t_worker/N). The modeled 2-shard speedup,
// max(ts,tw)/max(ts,tw/2), reaches 1.5x only if moving decode onto the
// shards actually left the serial stage ≤ 2/3 of the per-frame work, so
// the floor still fails if the ingestion refactor regresses. Skipped
// unless GF_BENCH_GATE=1.
func TestShardScalingGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") != "1" {
		t.Skip("set GF_BENCH_GATE=1 to run the shard scaling gate")
	}
	const flows = 256
	frames := make([]Frame, flows)
	for i := range frames {
		frames[i] = Frame{Data: wire.Encode(perFlowKey(i))}
	}

	// Floor 1: the extractor path allocates nothing.
	if n := testing.AllocsPerRun(500, func() {
		if _, ok := wire.RSSHash(frames[7].Data); !ok {
			t.Fatal("extraction failed")
		}
	}); n != 0 {
		t.Fatalf("RSSHash allocates %.1f/op, want 0", n)
	}

	ctx := context.Background()
	startShards := func(workers int) *Service {
		s, err := New(perFlowPipeline(flows), Config{
			Workers:           workers,
			Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 4096},
			MicroflowCapacity: 8 * flows,
			Latency:           LatencyConfig{Disable: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(ctx); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		// Warm every flow so the measurement is the steady-state hit path.
		warm := NewBatch(flows)
		if err := s.SubmitFrameBatch(ctx, frames, warm); err != nil {
			t.Fatal(err)
		}
		return s
	}
	perFrameNs := func(s *Service) float64 {
		r := testing.Benchmark(func(bb *testing.B) {
			batch := NewBatch(flows)
			for sent := 0; sent < bb.N; sent += flows {
				if err := s.SubmitFrameBatch(ctx, frames, batch); err != nil {
					bb.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	s1 := startShards(1)
	t1 := perFrameNs(s1)

	// The serial ingestion stage in isolation: extract, route, copy into
	// the arena — everything SubmitFrameBatch does per frame before the
	// bytes leave the submitter. Also held to 0 allocs/op at steady state
	// (the arena is warm after the first fill).
	scratch := NewBatch(flows)
	sub := testing.Benchmark(func(bb *testing.B) {
		scratch.Reset()
		for i := 0; i < bb.N; i++ {
			if scratch.Len() == flows {
				scratch.Reset()
			}
			f := frames[i%flows]
			tup, ok := wire.RSSTuple(f.Data)
			if !ok {
				bb.Fatal("extraction failed")
			}
			scratch.addFrame(f.InPort, f.Data, s1.shardOfTuple(tup))
		}
	})
	tSubmit := float64(sub.NsPerOp())
	if n := testing.AllocsPerRun(200, func() {
		if scratch.Len() == flows {
			scratch.Reset()
		}
		f := frames[3]
		tup, _ := wire.RSSTuple(f.Data)
		scratch.addFrame(f.InPort, f.Data, s1.shardOfTuple(tup))
	}); n != 0 {
		t.Fatalf("warm ingestion path allocates %.1f/op, want 0", n)
	}

	tWorker := t1 - tSubmit
	if tWorker <= 0 {
		t.Fatalf("stage decomposition degenerate: total %.1f ns <= submit %.1f ns", t1, tSubmit)
	}
	bound := func(n float64) float64 {
		if tWorker/n > tSubmit {
			return tWorker / n
		}
		return tSubmit
	}
	modeled := bound(1) / bound(2)

	cpus := runtime.NumCPU()
	if cpus >= 4 {
		s2 := startShards(2)
		t2 := perFrameNs(s2)
		speedup := t1 / t2
		fmt.Printf("bench-gate: shards measured (%d cpus): 1-shard %.0f ns/pkt, 2-shard %.0f ns/pkt, speedup %.2fx (floor 1.50x); modeled %.2fx; extractor 0 allocs/op\n",
			cpus, t1, t2, speedup, modeled)
		if speedup < 1.5 {
			t.Fatalf("2-shard throughput is only %.2fx of 1-shard (floor 1.5x): %.0f vs %.0f ns/pkt",
				speedup, t2, t1)
		}
		return
	}
	fmt.Printf("bench-gate: shards modeled (%d cpu): t_submit %.0f ns, t_worker %.0f ns, pipeline-bound 2-shard speedup %.2fx (floor 1.50x); extractor 0 allocs/op\n",
		cpus, tSubmit, tWorker, modeled)
	if modeled < 1.5 {
		t.Fatalf("pipeline-bound 2-shard speedup is only %.2fx (floor 1.5x): t_submit %.0f ns vs t_worker %.0f ns — the serial ingestion stage is too heavy",
			modeled, tSubmit, tWorker)
	}
}
