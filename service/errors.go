package service

import (
	"errors"
	"fmt"

	wire "gigaflow/internal/packet"
)

// The service error taxonomy. Every entry point returns one of these
// sentinels (possibly wrapped); assert with errors.Is rather than string
// comparison.
var (
	// ErrNotStarted rejects blocking work on a service that has not been
	// started: with no workers draining the queues, the call could only
	// hang. Nonblocking submissions are exempt — they enqueue without a
	// consumer, which the drop-accounting tests rely on.
	ErrNotStarted = errors.New("service: not started")

	// ErrStarted rejects a second Start.
	ErrStarted = errors.New("service: already started")

	// ErrClosed rejects work on a service whose workers have exited (or
	// a second Close).
	ErrClosed = errors.New("service: closed")

	// ErrQueueFull reports a nonblocking submission dropped because the
	// target worker's queue was full — the overload behaviour of a real
	// NIC rx ring. Each drop is also counted against the worker in the
	// gigaflow_queue_drops_total metric.
	ErrQueueFull = errors.New("service: worker queue full")

	// ErrUpcallOverflow reports a main-cache miss dropped because the
	// asynchronous upcall queue was full and the service runs the
	// OverflowDrop policy — the upcall-ring drop of a real datapath.
	// Only cold flows are affected; cache hits never touch the queue.
	// Each drop is counted in gigaflow_upcall_overflow_drops_total.
	ErrUpcallOverflow = errors.New("service: upcall queue full")

	// ErrBadFrame reports a frame the decoder refused outright (today:
	// shorter than an Ethernet header). Concrete failures are *FrameError
	// values wrapping this sentinel, so errors.Is(err, ErrBadFrame)
	// matches any refusal and a FrameError match narrows it to one
	// wire-level code.
	ErrBadFrame = errors.New("service: bad frame")

	// ErrShortFrame reports a frame shorter than an Ethernet header. It is
	// the *FrameError for wire.ErrShortFrame; both
	// errors.Is(err, ErrShortFrame) and errors.Is(err, ErrBadFrame) match.
	ErrShortFrame error = &FrameError{Code: wire.ErrShortFrame}
)

// FrameError is a decode defect severe enough to reject a frame before
// submission, carrying the wire-level reason. It wraps ErrBadFrame, and
// two FrameErrors compare equal under errors.Is when their codes match.
type FrameError struct {
	// Code is the decoder's verdict (never wire.ErrOK).
	Code wire.ErrCode
}

// Error formats the rejection with its wire-level code.
func (e *FrameError) Error() string {
	return fmt.Sprintf("service: bad frame: %s", e.Code)
}

// Unwrap makes every FrameError match ErrBadFrame under errors.Is.
func (e *FrameError) Unwrap() error { return ErrBadFrame }

// Is matches any FrameError carrying the same code, so sentinel instances
// like ErrShortFrame compare equal to freshly constructed rejections.
func (e *FrameError) Is(target error) bool {
	t, ok := target.(*FrameError)
	return ok && t.Code == e.Code
}
