package service

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"gigaflow"
	"gigaflow/internal/telemetry"
)

// collectTimeout bounds how long a scrape waits for worker goroutines to
// snapshot their caches; a wedged worker yields a stale (but served)
// scrape rather than a hung one.
const collectTimeout = 2 * time.Second

// Registry returns the service's metrics registry. Counters and gauges
// mirroring worker-owned cache state are refreshed on every /metrics,
// /cache, or Collect call; registry reads are always safe.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Tracer returns the service's traversal tracer (shared by all workers).
// Sampling can be retuned at runtime with Tracer().SetSampling.
func (s *Service) Tracer() *telemetry.Tracer { return s.tracer }

// Collect refreshes the registry from every worker's cache state, on the
// workers' own goroutines (cache internals are single-threaded). The
// HTTP handlers call this before rendering; expose it for embedders that
// scrape the registry directly.
func (s *Service) Collect(ctx context.Context) error {
	done := make(chan struct{}, len(s.workers))
	submitted := 0
	for _, w := range s.workers {
		w := w
		op := packet{control: func() {
			w.vs.CollectMetrics(s.reg, w.label)
			w.collectUpcallMetrics(s.reg)
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case w.in <- op:
			submitted++
		}
	}
	for i := 0; i < submitted; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-done:
		}
	}
	s.collectServiceMetrics()
	return nil
}

// collectServiceMetrics refreshes service-owned gauges readable from any
// goroutine: queue state, drop counters, tracer and uptime stats.
func (s *Service) collectServiceMetrics() {
	depth := s.reg.GaugeVec("gigaflow_queue_depth",
		"Packets waiting in the worker's input queue.", "worker")
	capacity := s.reg.GaugeVec("gigaflow_queue_capacity",
		"Worker input queue length limit.", "worker")
	drops := s.reg.CounterVec("gigaflow_queue_full_drops_total",
		"Nonblocking submissions dropped because the worker queue was full.", "worker")
	skips := s.reg.CounterVec("gigaflow_expiry_skips_total",
		"Idle-expiry sweeps skipped because the worker queue was full.", "worker")
	for _, w := range s.workers {
		depth.With(w.label).Set(float64(len(w.in)))
		capacity.With(w.label).Set(float64(cap(w.in)))
		drops.With(w.label).Set(w.drops.Load())
		skips.With(w.label).Set(w.skips.Load())
	}
	if s.upq != nil {
		s.reg.Gauge("gigaflow_upcall_queue_depth",
			"Misses waiting in the shared upcall queue.").Set(float64(s.upq.Depth()))
		s.reg.Gauge("gigaflow_upcall_queue_capacity",
			"Upcall queue length limit.").Set(float64(s.upq.Cap()))
		s.reg.Counter("gigaflow_upcall_enqueued_total",
			"Misses accepted onto the upcall queue.").Set(s.upq.Enqueued())
		s.reg.Counter("gigaflow_upcall_queue_overflows_total",
			"Misses refused by a full upcall queue.").Set(s.upq.Overflows())
		s.reg.Counter("gigaflow_upcall_drained_total",
			"Misses drained by the upcall engine.").Set(s.eng.Drained())
		s.reg.Counter("gigaflow_upcall_batches_total",
			"Engine drain batches executed.").Set(s.eng.Batches())
	}
	s.reg.Gauge("gigaflow_workers", "Forwarding workers.").Set(float64(len(s.workers)))
	s.reg.Counter("gigaflow_traces_sampled_total",
		"Traversal traces recorded by the sampler.").Set(s.tracer.Sampled())
	if t := s.started.Load(); t > 0 {
		s.reg.Gauge("gigaflow_uptime_seconds", "Seconds since Start.").
			Set(time.Since(time.Unix(0, t)).Seconds())
	}
}

// workerTelemetry is one worker's slice of the /cache introspection
// document.
type workerTelemetry struct {
	Worker     string `json:"worker"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_capacity"`
	Drops      uint64 `json:"queue_full_drops"`
	gigaflow.VSwitchTelemetry
}

// cacheTelemetry snapshots every worker's cache hierarchy on the workers'
// own goroutines.
func (s *Service) cacheTelemetry(ctx context.Context) ([]workerTelemetry, error) {
	out := make([]workerTelemetry, len(s.workers))
	done := make(chan struct{}, len(s.workers))
	submitted := 0
	for i, w := range s.workers {
		i, w := i, w
		op := packet{control: func() {
			out[i] = workerTelemetry{
				Worker:           w.label,
				QueueDepth:       len(w.in),
				QueueCap:         cap(w.in),
				Drops:            w.drops.Load(),
				VSwitchTelemetry: w.vs.Telemetry(),
			}
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case w.in <- op:
			submitted++
		}
	}
	for i := 0; i < submitted; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-done:
		}
	}
	return out, nil
}

// workerLatency is one worker's slice of the /latency document: the
// percentile ladder for every resolution tier.
type workerLatency struct {
	Worker string                               `json:"worker"`
	Tiers  map[string]telemetry.LatencySnapshot `json:"tiers"`
}

// latencyDoc is the /latency response: per-worker and aggregate per-tier
// latency ladders. Enabled is false (and the rest empty) when the
// service was built with Config.Latency.Disable.
type latencyDoc struct {
	Enabled bool                                 `json:"enabled"`
	Workers []workerLatency                      `json:"workers,omitempty"`
	Total   map[string]telemetry.LatencySnapshot `json:"total,omitempty"`
}

// latencyTelemetry snapshots every worker's latency histograms on the
// workers' own goroutines and merges them into an aggregate ladder.
func (s *Service) latencyTelemetry(ctx context.Context) (latencyDoc, error) {
	doc := latencyDoc{}
	if s.cfg.Latency.Disable {
		return doc, nil
	}
	doc.Enabled = true
	hists := make([][telemetry.NumTiers]telemetry.LatencyHistogram, len(s.workers))
	done := make(chan struct{}, len(s.workers))
	submitted := 0
	for i, w := range s.workers {
		i, w := i, w
		op := packet{control: func() {
			for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
				hists[i][t] = *w.rec.Histogram(t)
			}
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return doc, ctx.Err()
		case w.in <- op:
			submitted++
		}
	}
	for i := 0; i < submitted; i++ {
		select {
		case <-ctx.Done():
			return doc, ctx.Err()
		case <-done:
		}
	}
	var total [telemetry.NumTiers]telemetry.LatencyHistogram
	for i, w := range s.workers {
		wl := workerLatency{Worker: w.label, Tiers: make(map[string]telemetry.LatencySnapshot, telemetry.NumTiers)}
		for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
			wl.Tiers[t.String()] = hists[i][t].Snapshot()
			total[t].Merge(&hists[i][t])
		}
		doc.Workers = append(doc.Workers, wl)
	}
	doc.Total = make(map[string]telemetry.LatencySnapshot, telemetry.NumTiers)
	for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
		doc.Total[t.String()] = total[t].Snapshot()
	}
	return doc, nil
}

// workerFlight is one worker's slice of the /debug/flight document.
type workerFlight struct {
	Worker   string                    `json:"worker"`
	Seq      uint64                    `json:"seq"`
	RingSize int                       `json:"ring_size"`
	Batches  uint32                    `json:"batches"`
	SpikeNs  int64                     `json:"spike_ns"`
	Spikes   uint64                    `json:"spikes"`
	Records  []telemetry.FlightRecord  `json:"records"` // newest first
	Captures []telemetry.FlightCapture `json:"captures,omitempty"`
}

// flightTelemetry dumps up to n recent flight records per worker (n <= 0
// means the whole ring), plus any retained spike captures, snapshotted on
// the workers' own goroutines.
func (s *Service) flightTelemetry(ctx context.Context, n int) ([]workerFlight, error) {
	if s.cfg.Latency.Disable {
		return nil, nil
	}
	out := make([]workerFlight, len(s.workers))
	done := make(chan struct{}, len(s.workers))
	submitted := 0
	for i, w := range s.workers {
		i, w := i, w
		op := packet{control: func() {
			out[i] = workerFlight{
				Worker:   w.label,
				Seq:      w.rec.Seq(),
				RingSize: w.rec.RingSize(),
				Batches:  w.rec.Batches(),
				SpikeNs:  w.rec.SpikeThreshold(),
				Spikes:   w.rec.Spikes(),
				Records:  w.rec.Recent(n),
				Captures: w.rec.Captures(),
			}
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case w.in <- op:
			submitted++
		}
	}
	for i := 0; i < submitted; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-done:
		}
	}
	return out, nil
}

// TelemetryHandler returns the introspection mux:
//
//	/metrics      Prometheus text (?format=json for JSON)
//	/traces       recent sampled traversal traces (?n= caps the count)
//	/cache        per-worker, per-table cache occupancy and counters
//	/shards       per-shard packet/occupancy/conntrack-churn counters
//	/latency      per-worker and aggregate per-tier latency ladders
//	/debug/flight per-worker flight-recorder dump (?n= caps records)
//	/debug/pprof  net/http/pprof profiles
//	/debug/vars   expvar
func (s *Service) TelemetryHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>gigaflow telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus; <a href="/metrics?format=json">json</a>)</li>
<li><a href="/traces">/traces</a></li>
<li><a href="/cache">/cache</a></li>
<li><a href="/shards">/shards</a></li>
<li><a href="/latency">/latency</a></li>
<li><a href="/debug/flight">/debug/flight</a></li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
<li><a href="/debug/vars">/debug/vars</a></li>
</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), collectTimeout)
		defer cancel()
		// A failed collect (wedged queue, shutdown race) still serves the
		// registry's last values — stale beats unavailable for a scrape.
		_ = s.Collect(ctx)
		s.reg.Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			n, _ = strconv.Atoi(q)
		}
		traces := s.tracer.Recent(n)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			SampleEvery int               `json:"sample_every"`
			Sampled     uint64            `json:"sampled_total"`
			Traces      []telemetry.Trace `json:"traces"`
		}{s.tracer.SampleEvery(), s.tracer.Sampled(), traces})
	})
	mux.HandleFunc("/cache", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), collectTimeout)
		defer cancel()
		workers, err := s.cacheTelemetry(ctx)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Backend string            `json:"backend"`
			Workers []workerTelemetry `json:"workers"`
		}{s.cfg.Backend.String(), workers})
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), collectTimeout)
		defer cancel()
		shards, err := s.ShardStats(ctx)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Workers   int         `json:"workers"`
			Conntrack bool        `json:"conntrack"`
			Shards    []ShardStat `json:"shards"`
		}{len(s.workers), s.cfg.Conntrack.Enable, shards})
	})
	mux.HandleFunc("/latency", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), collectTimeout)
		defer cancel()
		doc, err := s.latencyTelemetry(ctx)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			n, _ = strconv.Atoi(q)
		}
		ctx, cancel := context.WithTimeout(r.Context(), collectTimeout)
		defer cancel()
		workers, err := s.flightTelemetry(ctx, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Enabled bool           `json:"enabled"`
			Workers []workerFlight `json:"workers,omitempty"`
		}{!s.cfg.Latency.Disable, workers})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// telemetryServer owns the HTTP listener started from Config.TelemetryAddr.
type telemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

func (t *telemetryServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = t.srv.Shutdown(ctx)
}

// startTelemetry begins serving the introspection endpoints on addr;
// called from Start when Config.TelemetryAddr is set.
func (s *Service) startTelemetry(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: telemetry listener: %w", err)
	}
	srv := &http.Server{Handler: s.TelemetryHandler()}
	s.tsrv = &telemetryServer{ln: ln, srv: srv}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		_ = srv.Serve(ln) // ErrServerClosed on shutdown
	}()
	return nil
}

// TelemetryAddr reports the bound introspection address (useful with a
// ":0" Config.TelemetryAddr), or "" when telemetry is not being served.
func (s *Service) TelemetryAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tsrv == nil {
		return ""
	}
	return s.tsrv.ln.Addr().String()
}

// ServeTelemetry serves the introspection endpoints on a caller-provided
// listener, blocking until the listener fails or Close shuts the server
// down. It is the manual alternative to Config.TelemetryAddr for embedders
// that manage their own listeners.
func (s *Service) ServeTelemetry(ln net.Listener) error {
	srv := &http.Server{Handler: s.TelemetryHandler()}
	s.mu.Lock()
	if s.tsrv != nil {
		s.mu.Unlock()
		return fmt.Errorf("service: telemetry already serving on %s", s.tsrv.ln.Addr())
	}
	s.tsrv = &telemetryServer{ln: ln, srv: srv}
	s.mu.Unlock()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
