// Batched submission: the Request/Batch types and the single internal
// submit path every public entry point (Submit, SubmitFrame, SubmitBatch,
// SubmitFrameBatch, and Replay) wraps.
//
// A batch is scattered by RSS shard into at most one job per worker, so
// the whole batch crosses each worker channel once — the channel
// round-trip, result delivery, and latency observation are amortized
// across the batch instead of paid per packet, and the worker runs the
// job through VSwitch.ProcessBatch, which amortizes the cache and stats
// bookkeeping the same way.
package service

import (
	"context"
	"sync"
	"time"

	"gigaflow"
)

// Request is one packet of a Batch: the flow key to process and, once the
// batch has been submitted, its Result.
type Request struct {
	// Key is the flow signature to process.
	Key gigaflow.Key
	// Meta is per-packet metadata the datapath consumes outside the key:
	// today the TCP flag byte, which drives the conntrack state machine
	// when Config.Conntrack is enabled (and is ignored otherwise). The
	// frame entry points fill it from the decoder.
	Meta uint8
	// Result is the packet's outcome. Blocking submissions fill it in
	// completely; nonblocking submissions record only the enqueue outcome
	// in Result.Err (nil, or ErrQueueFull for a dropped packet).
	//
	// A Request whose Result.Err is already non-nil when the batch is
	// submitted (a frame the decoder rejected, see SubmitFrameBatch) is
	// skipped: it keeps its error and is never sent to a worker.
	Result Result

	// frame, when frame.n > 0, marks a wire-routed request: the raw frame
	// bytes live in the batch's arena and are decoded on the owning shard
	// worker instead of by the submitter (see SubmitFrameBatch). Key and
	// Meta start zero; a blocking submission copies the worker's decode
	// back into them at gather time.
	frame frameRef
}

// frameRef locates one wire-routed frame in an arena ([off, off+n) of
// the batch's — or, nonblocking, the job's — wire buffer) together with
// its ingress port and the shard the RSS hash assigned. n == 0 means
// "not a wire-routed entry".
type frameRef struct {
	off, n int
	inPort uint16
	shard  int32
}

// batchJob is one worker's slice of a submitted batch. It crosses the
// worker channel as a single message; the worker processes keys through
// VSwitch.ProcessBatch, writes res, fans results to resp when set, and
// signals done.
type batchJob struct {
	keys  []gigaflow.Key
	metas []uint8  // per-key TCP flag bytes, parallel to keys
	idx   []int    // original request indices, parallel to keys
	res   []Result // per-key results, parallel to keys

	// Wire path: when wire is non-nil, frames is parallel to keys and
	// entries with n > 0 are raw frames the worker decodes into keys[i] /
	// metas[i] before the batch scan (runJob). Blocking jobs alias the
	// batch's arena (the submitter blocks until gather, so the batch
	// cannot be reused under them); nonblocking jobs own a copied arena.
	frames []frameRef
	wire   []byte

	done     chan *batchJob // completion signal (nil for fire-and-forget)
	resp     chan<- Result  // optional per-result fan-out
	gathered bool           // completion collected by the submitter

	// pending refcounts outstanding work in async offload mode: 1 for the
	// batch scan plus 1 per parked packet, each released on delivery, so
	// done fires exactly once — when the last parked packet resolves (or
	// at scan end if nothing parked). Worker-goroutine-only; unused (0)
	// in synchronous mode.
	pending int
}

// collect copies a completed job's results back into the batch — and,
// for wire-routed entries, the key and TCP flags the shard worker
// decoded, so Batch.Request(i).Key is populated after a blocking
// SubmitFrameBatch regardless of which side ran the decoder.
func (j *batchJob) collect(b *Batch) {
	j.gathered = true
	for i, ri := range j.idx {
		b.reqs[ri].Result = j.res[i]
		if j.wire != nil && j.frames[i].n > 0 {
			b.reqs[ri].Key = j.keys[i]
			b.reqs[ri].Meta = j.metas[i]
		}
	}
}

// Batch is a reusable collection of Requests submitted as one unit.
// Reset/Add refill it without reallocating, so a steady-state submitter
// (Replay, the benchmarks) allocates nothing per batch.
//
// A Batch is not safe for concurrent use: it belongs to one submitting
// goroutine and must not be read or modified while a SubmitBatch call on
// it is in flight.
type Batch struct {
	reqs []Request
	wire []byte         // arena for wire-routed frame bytes (SubmitFrameBatch)
	jobs []batchJob     // per-worker scatter scratch, reused across submissions
	done chan *batchJob // completion channel, reused across submissions
}

// NewBatch creates an empty batch with room for capacity requests.
func NewBatch(capacity int) *Batch {
	return &Batch{reqs: make([]Request, 0, capacity)}
}

// Reset empties the batch for reuse, keeping its buffers.
func (b *Batch) Reset() {
	b.reqs = b.reqs[:0]
	b.wire = b.wire[:0]
}

// Len reports the number of requests in the batch.
func (b *Batch) Len() int { return len(b.reqs) }

// Add appends a request for key k with a zeroed Result.
func (b *Batch) Add(k gigaflow.Key) {
	b.reqs = append(b.reqs, Request{Key: k})
}

// AddMeta appends a request for key k carrying per-packet metadata (the
// TCP flag byte; see Request.Meta).
func (b *Batch) AddMeta(k gigaflow.Key, meta uint8) {
	b.reqs = append(b.reqs, Request{Key: k, Meta: meta})
}

// addRejected appends a request that is already failed (a refused frame):
// it carries err and is never submitted to a worker.
func (b *Batch) addRejected(err error) {
	b.reqs = append(b.reqs, Request{Result: Result{Err: err}})
}

// addFrame appends a wire-routed request: the frame bytes are copied
// into the batch's arena — so the caller may reuse its own buffer the
// moment this returns, preserving the streaming single-buffer contract —
// and the full decode is deferred to the shard worker the RSS hash
// picked.
func (b *Batch) addFrame(inPort uint16, data []byte, shard int) {
	off := len(b.wire)
	b.wire = append(b.wire, data...)
	b.reqs = append(b.reqs, Request{frame: frameRef{
		off: off, n: len(data), inPort: inPort, shard: int32(shard),
	}})
}

// Request returns request i for in-place inspection of its Key and Result.
func (b *Batch) Request(i int) *Request { return &b.reqs[i] }

// Result returns request i's result.
func (b *Batch) Result(i int) Result { return b.reqs[i].Result }

// ensureJobs sizes the per-worker scatter scratch and clears it for a new
// submission.
func (b *Batch) ensureJobs(nw int) {
	if cap(b.jobs) < nw {
		b.jobs = make([]batchJob, nw)
	}
	b.jobs = b.jobs[:nw]
	for i := range b.jobs {
		j := &b.jobs[i]
		j.keys = j.keys[:0]
		j.metas = j.metas[:0]
		j.idx = j.idx[:0]
		j.frames = j.frames[:0]
		j.wire = nil
		j.done = nil
		j.resp = nil
		j.gathered = false
		j.pending = 0
	}
	if b.done == nil || cap(b.done) < nw {
		b.done = make(chan *batchJob, nw)
	}
}

// submitOpts collects per-call submission options.
type submitOpts struct {
	nonblocking bool
	resp        chan<- Result
	meta        uint8
}

// SubmitOption configures a single submission call. Options transform
// the config by value rather than through a pointer: taking the
// address of the per-call submitOpts would force it to escape to the
// heap, putting one allocation on every Submit/SubmitBatch — the only
// one the steady-state datapath would have.
type SubmitOption func(submitOpts) submitOpts

// applyOpts folds the call's options over a zero config.
func applyOpts(opts []SubmitOption) submitOpts {
	var o submitOpts
	for _, opt := range opts {
		o = opt(o)
	}
	return o
}

// Nonblocking makes the submission enqueue-only: it never waits for a
// verdict, and a packet whose target worker queue is full is dropped with
// ErrQueueFull (counted against that worker) instead of blocking. Unlike
// blocking submission it does not require a started service — packets
// simply queue until workers exist to drain them.
func Nonblocking() SubmitOption {
	return func(o submitOpts) submitOpts { o.nonblocking = true; return o }
}

// WithResponse directs every processed Result of a nonblocking submission
// to resp (dropped packets produce no send). The channel must have
// capacity for all results routed to it — the worker's send is blocking.
// It has no effect on blocking submissions, whose results land in the
// Batch (or the returned Result) already.
func WithResponse(resp chan<- Result) SubmitOption {
	return func(o submitOpts) submitOpts { o.resp = resp; return o }
}

// WithTCPFlags attaches the packet's TCP flag byte to a single-key
// Submit, feeding the conntrack state machine when Config.Conntrack is
// enabled (ignored otherwise). SubmitFrame fills it from the decoder
// automatically; batch submitters use Batch.AddMeta instead.
func WithTCPFlags(flags uint8) SubmitOption {
	return func(o submitOpts) submitOpts { o.meta = flags; return o }
}

// batchPool recycles single-request batches so the Submit wrapper stays
// allocation-free at steady state.
var batchPool = sync.Pool{New: func() any { return NewBatch(1) }}

// Submit processes one packet. By default it blocks until the verdict is
// available and returns it; with Nonblocking it only enqueues (the
// returned Result is zero; pair with WithResponse to receive the verdict
// asynchronously). Flows with the same 5-tuple always reach the same
// worker. Errors: ErrNotStarted, ErrClosed, ErrQueueFull (nonblocking),
// ctx.Err(), or the packet's own pipeline error.
func (s *Service) Submit(ctx context.Context, k gigaflow.Key, opts ...SubmitOption) (Result, error) {
	return s.submitKey(ctx, k, applyOpts(opts))
}

// submitKey is the single-key body shared by Submit and SubmitFrame
// (which injects the decoded TCP flags into o.meta itself).
func (s *Service) submitKey(ctx context.Context, k gigaflow.Key, o submitOpts) (Result, error) {
	if o.nonblocking {
		return Result{}, s.enqueueOne(k, o.meta, o.resp)
	}
	b := batchPool.Get().(*Batch)
	b.Reset()
	b.AddMeta(k, o.meta)
	err := s.submit(ctx, b, o)
	r := b.reqs[0].Result
	batchPool.Put(b)
	if err != nil {
		return Result{}, err
	}
	return r, r.Err
}

// SubmitBatch submits every request in b as one unit: the batch is
// scattered into at most one message per worker, each worker processes
// its share through the batched hot path, and per-request Results land
// back in b positionally.
//
// Blocking (default): returns after every request has its Result; order
// within a worker is submission order, and a request's error (pipeline
// failure) is in its Result.Err while call-level failures (ErrNotStarted,
// ErrClosed, ctx.Err()) are returned. Even on a call-level failure every
// request that reached a worker is drained before returning, so b is
// always safe to reuse; requests that never ran carry the call error in
// their Result.Err.
//
// With Nonblocking: requests are enqueued without waiting; a request
// whose worker queue is full gets ErrQueueFull in its Result.Err, the
// rest have Result.Err nil with verdicts unreported (use WithResponse to
// stream them). The batch may be reused immediately.
func (s *Service) SubmitBatch(ctx context.Context, b *Batch, opts ...SubmitOption) error {
	return s.submit(ctx, b, applyOpts(opts))
}

// submit is the single internal submission path. Requests pre-marked with
// an error (rejected frames) are skipped.
func (s *Service) submit(ctx context.Context, b *Batch, o submitOpts) error {
	if len(b.reqs) == 0 {
		return nil
	}
	if o.nonblocking {
		return s.submitNonblocking(b, o.resp)
	}
	switch s.state.Load() {
	case stateNew:
		return ErrNotStarted
	case stateClosed:
		return ErrClosed
	}
	return s.submitBlocking(ctx, b, o.resp)
}

// submitBlocking scatters b into per-worker jobs backed by the batch's
// own reusable buffers, enqueues each job as one message, and gathers
// completions. On context cancellation or service shutdown it still
// drains every job already handed to a worker — workers write into the
// batch's buffers, so returning while one is in flight would corrupt the
// next use of the batch and leak its results.
func (s *Service) submitBlocking(ctx context.Context, b *Batch, resp chan<- Result) error {
	// An already-cancelled context must fail deterministically: the enqueue
	// select below picks at random among ready cases, and an open
	// worker-queue slot would otherwise race ctx.Done.
	if err := ctx.Err(); err != nil {
		for i := range b.reqs {
			if b.reqs[i].Result.Err == nil {
				b.reqs[i].Result = Result{Err: err}
			}
		}
		return err
	}
	nw := len(s.workers)
	b.ensureJobs(nw)
	wirePath := len(b.wire) > 0
	for i := range b.reqs {
		if b.reqs[i].Result.Err != nil {
			continue // pre-rejected (bad frame): never submitted
		}
		var w int
		if fr := b.reqs[i].frame; fr.n > 0 {
			w = int(fr.shard) // routed from wire bytes at add time
		} else {
			w = s.shardOfKey(&b.reqs[i].Key)
		}
		j := &b.jobs[w]
		j.keys = append(j.keys, b.reqs[i].Key)
		j.metas = append(j.metas, b.reqs[i].Meta)
		j.idx = append(j.idx, i)
		if wirePath {
			// frames stays parallel to keys (zero ref = key-routed entry).
			// Blocking jobs alias the batch arena: the submitter blocks
			// until gather, so the arena outlives every job.
			j.frames = append(j.frames, b.reqs[i].frame)
			j.wire = b.wire
		}
	}

	start := time.Now()
	enqueued := 0
	var callErr error
enqueue:
	for w := range b.jobs {
		j := &b.jobs[w]
		if len(j.keys) == 0 {
			continue
		}
		j.done = b.done
		j.resp = resp
		if cap(j.res) < len(j.keys) {
			j.res = make([]Result, len(j.keys))
		}
		j.res = j.res[:len(j.keys)]
		select {
		case s.workers[w].in <- packet{job: j}:
			enqueued++
		case <-ctx.Done():
			callErr = ctx.Err()
			break enqueue
		case <-s.term:
			callErr = ErrClosed
			break enqueue
		}
	}

	for collected := 0; collected < enqueued; {
		select {
		case j := <-b.done:
			j.collect(b)
			collected++
		case <-s.term:
			// The workers have exited. Every completion they delivered
			// happened before term closed, so a nonblocking drain of
			// b.done is complete; jobs still sitting in dead queues will
			// never be touched again and are safe to abandon.
			for drained := true; drained && collected < enqueued; {
				select {
				case j := <-b.done:
					j.collect(b)
					collected++
				default:
					drained = false
				}
			}
			if callErr == nil {
				callErr = ErrClosed
			}
			collected = enqueued
		}
	}

	if callErr != nil {
		// Requests that never ran (job not enqueued, or abandoned at
		// shutdown) carry the call-level error so per-index inspection
		// stays meaningful.
		for w := range b.jobs {
			j := &b.jobs[w]
			if j.gathered {
				continue
			}
			for _, ri := range j.idx {
				b.reqs[ri].Result = Result{Err: callErr}
			}
		}
		return callErr
	}
	s.latency.Observe(float64(time.Since(start).Nanoseconds()))
	return nil
}

// submitNonblocking scatters b into freshly allocated worker-owned jobs —
// the caller may reuse the batch the moment we return, so nonblocking
// jobs cannot alias its buffers (wire-routed frame bytes are copied into
// a job-owned arena). Full queues drop that worker's whole job,
// recording ErrQueueFull per request.
func (s *Service) submitNonblocking(b *Batch, resp chan<- Result) error {
	nw := len(s.workers)
	perWorker := make([]*batchJob, nw)
	wirePath := len(b.wire) > 0
	for i := range b.reqs {
		if b.reqs[i].Result.Err != nil {
			continue // pre-rejected (bad frame): never submitted
		}
		var w int
		fr := b.reqs[i].frame
		if fr.n > 0 {
			w = int(fr.shard)
		} else {
			w = s.shardOfKey(&b.reqs[i].Key)
		}
		j := perWorker[w]
		if j == nil {
			j = &batchJob{resp: resp}
			perWorker[w] = j
		}
		j.keys = append(j.keys, b.reqs[i].Key)
		j.metas = append(j.metas, b.reqs[i].Meta)
		j.idx = append(j.idx, i)
		if wirePath {
			if fr.n > 0 {
				// Re-base the frame into the job's own arena: the batch's
				// may be overwritten the moment this call returns.
				off := len(j.wire)
				j.wire = append(j.wire, b.wire[fr.off:fr.off+fr.n]...)
				fr.off = off
			}
			j.frames = append(j.frames, fr)
			if j.wire == nil {
				// Keep the wire-path marker truthful even for a job that so
				// far holds only key-routed entries.
				j.wire = []byte{}
			}
		}
		b.reqs[i].Result = Result{}
	}
	for w, j := range perWorker {
		if j == nil {
			continue
		}
		j.res = make([]Result, len(j.keys))
		select {
		case s.workers[w].in <- packet{job: j}:
		default:
			s.workers[w].drops.Add(uint64(len(j.keys)))
			for _, ri := range j.idx {
				b.reqs[ri].Result = Result{Err: ErrQueueFull}
			}
		}
	}
	return nil
}

// enqueueOne is the single-packet nonblocking path: one packet message,
// no job bookkeeping.
func (s *Service) enqueueOne(k gigaflow.Key, meta uint8, resp chan<- Result) error {
	w := s.workers[s.shardOfKey(&k)]
	select {
	case w.in <- packet{key: k, meta: meta, resp: resp}:
		return nil
	default:
		w.drops.Add(1)
		return ErrQueueFull
	}
}
