// Package service wraps gigaflow.VSwitch in the runtime scaffolding a
// deployment needs: a pool of forwarding workers fed by RSS-sharded
// queues (OVS's PMD-thread architecture), rule updates with immediate
// revalidation (§4.3.1), periodic idle-entry expiry (§4.3.2), and graceful
// shutdown.
//
// The underlying pipeline and caches are deliberately single-threaded (as
// in the paper, where one CPU core runs the slowpath), so the service is
// shared-nothing: each worker owns a full replica of the pipeline and its
// own cache shard, and every flow is RSS-hashed to exactly one worker —
// the same spreading a NIC performs before delivering to per-core queues.
// Rule updates are deterministic functions applied to every replica on its
// own goroutine, so replicas never diverge and the fast path never takes a
// lock.
package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/telemetry"
	"gigaflow/internal/upcall"
)

// Backend selects the main-cache architecture the workers run.
type Backend uint8

const (
	// BackendGigaflow is the K-table LTM sub-traversal cache (default).
	BackendGigaflow Backend = iota
	// BackendMegaflow is the single-lookup wildcard cache baseline.
	BackendMegaflow
)

// String names the backend.
func (b Backend) String() string {
	if b == BackendMegaflow {
		return "megaflow"
	}
	return "gigaflow"
}

// ExpiryConfig configures the periodic idle sweep (one section of Config).
type ExpiryConfig struct {
	// Every triggers idle-entry sweeps at this interval (default 500ms;
	// requires MaxIdle, or an enabled Conntrack section with its own
	// MaxIdle, so the sweep has something to evict).
	Every time.Duration
	// MaxIdle expires cache entries idle longer than this (0 disables
	// cache-entry expiry).
	MaxIdle time.Duration
}

func (c ExpiryConfig) validate() error {
	if c.MaxIdle < 0 {
		return fmt.Errorf("service: negative Expiry.MaxIdle (%v)", c.MaxIdle)
	}
	if c.Every < 0 {
		return fmt.Errorf("service: negative Expiry.Every (%v)", c.Every)
	}
	return nil
}

func (c ExpiryConfig) withDefaults() ExpiryConfig {
	if c.Every == 0 {
		c.Every = 500 * time.Millisecond
	}
	return c
}

// UpcallConfig configures the asynchronous slow-path offload (one
// section of Config).
type UpcallConfig struct {
	// Workers enables the offload with this many engine goroutines (0,
	// the default, keeps misses inline). With the offload on, a
	// main-cache miss parks the packet and enqueues an upcall instead of
	// blocking the worker on the pipeline traversal; concurrent misses
	// of the same flow coalesce onto one traversal, and parked packets
	// are released in arrival order per flow, so results and stats are
	// indistinguishable from inline processing.
	Workers int
	// Queue bounds the shared miss queue (default 1024). A fresh miss
	// that finds it full is handled per Overflow; packets of
	// already-pending flows never touch the queue.
	Queue int
	// Batch bounds how many queued misses an engine goroutine drains per
	// wakeup, batching traversals and rule installs (default
	// DefaultBatchSize).
	Batch int
	// Overflow selects the full-queue policy: OverflowInline (default)
	// traverses on the worker, OverflowDrop fails the packet with
	// ErrUpcallOverflow.
	Overflow OverflowPolicy
}

func (c UpcallConfig) validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("service: negative Upcall.Workers (%d)", c.Workers)
	}
	if c.Queue < 0 {
		return fmt.Errorf("service: negative Upcall.Queue (%d)", c.Queue)
	}
	if c.Batch < 0 {
		return fmt.Errorf("service: negative Upcall.Batch (%d)", c.Batch)
	}
	switch c.Overflow {
	case OverflowInline, OverflowDrop:
	default:
		return fmt.Errorf("service: unknown Upcall.Overflow (%d)", c.Overflow)
	}
	if c.Workers == 0 &&
		(c.Queue != 0 || c.Batch != 0 || c.Overflow != OverflowInline) {
		return errors.New("service: upcall knobs set but Upcall.Workers is 0 (offload disabled)")
	}
	return nil
}

func (c UpcallConfig) withDefaults() UpcallConfig {
	if c.Workers > 0 {
		if c.Queue <= 0 {
			c.Queue = 1024
		}
		if c.Batch <= 0 {
			c.Batch = DefaultBatchSize
		}
	}
	return c
}

// LatencyConfig configures the per-worker latency attribution layer (one
// section of Config).
type LatencyConfig struct {
	// Disable turns off attribution (per-tier nanosecond histograms and
	// the flight-recorder ring, served on /latency and /debug/flight).
	// Attribution is on by default: its hot path adds two clock reads
	// per batch and plain stores per packet.
	Disable bool
	// FlightRecords sizes each worker's flight-recorder ring, rounded up
	// to a power of two (default 4096).
	FlightRecords int
	// Spike, when set, snapshots a worker's flight ring whenever a
	// packet's latency meets or exceeds it, so a tail spike comes with
	// the events that surrounded it (0 disables spike captures).
	Spike time.Duration
}

func (c LatencyConfig) validate() error {
	if c.FlightRecords < 0 {
		return fmt.Errorf("service: negative Latency.FlightRecords (%d)", c.FlightRecords)
	}
	if c.Spike < 0 {
		return fmt.Errorf("service: negative Latency.Spike (%v)", c.Spike)
	}
	if c.Disable && (c.FlightRecords != 0 || c.Spike != 0) {
		return errors.New("service: Latency.FlightRecords/Spike set but Latency.Disable turns attribution off")
	}
	return nil
}

// ConntrackConfig configures connection tracking (one section of
// Config). With Enable set, every worker runs a conntrack table in front
// of its pipeline: ct_state bits are folded into the key the caches and
// slowpath match on, and stateful NAT actions (dnat/snat/ct_nat) resolve
// against per-connection bindings. Flows are sharded symmetrically —
// both directions of a 5-tuple land on the same worker, so its private
// table sees the whole conversation with no cross-shard locks.
//
// NAT pipelines scale past one worker through pool partitioning: New
// splits every NAT pool into disjoint per-shard sub-ranges (each pool
// therefore needs at least Workers targets), so a shard only ever binds
// connections to endpoints it owns, and replies — which arrive on the
// translated tuple, outside the forward direction's symmetric hash —
// are routed to the owning shard by an endpoint→shard map consulted
// before the hash. Pool endpoints must be disjoint from the client
// endpoint space for that routing to be unambiguous.
type ConntrackConfig struct {
	// Enable turns connection tracking on.
	Enable bool
	// MaxConns is the TOTAL live-connection budget, divided across
	// workers like the cache budgets (default 65536; only meaningful
	// with Enable). Under pressure the least recently seen connection is
	// evicted.
	MaxConns int
	// MaxIdle expires connections idle longer than this on the Expiry
	// sweep (0 keeps connections forever). Expired connections are
	// epoch-poisoned, so cache entries that depended on them die lazily.
	MaxIdle time.Duration
}

func (c ConntrackConfig) validate() error {
	if c.MaxConns < 0 {
		return fmt.Errorf("service: negative Conntrack.MaxConns (%d)", c.MaxConns)
	}
	if c.MaxIdle < 0 {
		return fmt.Errorf("service: negative Conntrack.MaxIdle (%v)", c.MaxIdle)
	}
	if !c.Enable && (c.MaxConns != 0 || c.MaxIdle != 0) {
		return errors.New("service: conntrack knobs set but Conntrack.Enable is false")
	}
	return nil
}

func (c ConntrackConfig) withDefaults() ConntrackConfig {
	if c.Enable && c.MaxConns <= 0 {
		c.MaxConns = 65536
	}
	return c
}

// Config parameterises a Service. Cross-cutting knobs are top-level;
// subsystem knobs live in the nested sections (Expiry, Upcall, Latency,
// Conntrack), each with its own defaults and validation.
type Config struct {
	// Workers is the number of forwarding workers (default 1). The cache
	// budget is split evenly between them.
	Workers int
	// Backend selects the main cache (default BackendGigaflow).
	Backend Backend
	// Cache configures the Gigaflow cache; TableCapacity is the TOTAL
	// budget, divided across workers (defaults 4×8192). Setting any field
	// with BackendMegaflow is a configuration error.
	Cache gigaflow.CacheConfig
	// MegaflowCapacity is the TOTAL Megaflow entry budget, divided across
	// workers (default 32768). Only valid with BackendMegaflow.
	MegaflowCapacity int
	// MicroflowCapacity fronts each worker's main cache with an
	// exact-match Microflow tier; the TOTAL budget is divided across
	// workers (0 disables the tier).
	MicroflowCapacity int
	// QueueDepth is each worker's input queue length (default 1024).
	QueueDepth int

	// Expiry configures the periodic idle sweep.
	Expiry ExpiryConfig
	// Upcall configures the asynchronous slow-path offload. Mutually
	// exclusive with Conntrack.Enable: the offload's parked slowpath is
	// stateless.
	Upcall UpcallConfig
	// Latency configures the latency attribution layer.
	Latency LatencyConfig
	// Conntrack configures connection tracking.
	Conntrack ConntrackConfig

	// TelemetryAddr, when non-empty, serves the introspection endpoints
	// (/metrics, /traces, /cache, /debug/pprof, /debug/vars) on this
	// address for the service's lifetime (e.g. "127.0.0.1:9090"; use
	// port 0 to pick a free port, readable via Service.TelemetryAddr).
	TelemetryAddr string
	// TraceSample records a full traversal trace for one in N processed
	// packets (0 disables tracing; the packet path then carries a single
	// branch and no allocations).
	TraceSample int
	// TraceBuffer bounds the ring of retained traces (default 256).
	TraceBuffer int
}

// validate rejects nonsensical configurations instead of silently
// papering over them with defaults.
func (c Config) validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("service: negative Workers (%d)", c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("service: negative QueueDepth (%d)", c.QueueDepth)
	}
	if c.MicroflowCapacity < 0 {
		return fmt.Errorf("service: negative MicroflowCapacity (%d)", c.MicroflowCapacity)
	}
	if c.TraceSample < 0 {
		return fmt.Errorf("service: negative TraceSample (%d)", c.TraceSample)
	}
	if err := c.Expiry.validate(); err != nil {
		return err
	}
	if err := c.Upcall.validate(); err != nil {
		return err
	}
	if err := c.Latency.validate(); err != nil {
		return err
	}
	if err := c.Conntrack.validate(); err != nil {
		return err
	}
	if c.Expiry.Every > 0 && c.Expiry.MaxIdle == 0 &&
		!(c.Conntrack.Enable && c.Conntrack.MaxIdle > 0) {
		return errors.New("service: Expiry.Every set but MaxIdle is 0 (expiry would never evict)")
	}
	if c.Conntrack.Enable && c.Upcall.Workers > 0 {
		return errors.New("service: Conntrack and the Upcall offload are mutually exclusive (the parked slowpath is stateless)")
	}
	switch c.Backend {
	case BackendGigaflow:
		if c.MegaflowCapacity != 0 {
			return errors.New("service: MegaflowCapacity set but Backend is BackendGigaflow")
		}
		if c.Cache.NumTables < 0 || c.Cache.TableCapacity < 0 {
			return fmt.Errorf("service: negative Gigaflow cache shape (%d tables × %d)",
				c.Cache.NumTables, c.Cache.TableCapacity)
		}
	case BackendMegaflow:
		if c.Cache != (gigaflow.CacheConfig{}) {
			return errors.New("service: Gigaflow Cache parameters set but Backend is BackendMegaflow")
		}
		if c.MegaflowCapacity < 0 {
			return fmt.Errorf("service: negative MegaflowCapacity (%d)", c.MegaflowCapacity)
		}
	default:
		return fmt.Errorf("service: unknown Backend (%d)", c.Backend)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	switch c.Backend {
	case BackendGigaflow:
		if c.Cache.NumTables <= 0 {
			c.Cache.NumTables = 4
		}
		if c.Cache.TableCapacity <= 0 {
			c.Cache.TableCapacity = 8192
		}
	case BackendMegaflow:
		if c.MegaflowCapacity <= 0 {
			c.MegaflowCapacity = 32768
		}
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 256
	}
	c.Expiry = c.Expiry.withDefaults()
	c.Upcall = c.Upcall.withDefaults()
	c.Conntrack = c.Conntrack.withDefaults()
	return c
}

// Result reports one packet's fate to its submitter.
type Result struct {
	Verdict  gigaflow.Verdict
	Final    gigaflow.Key
	CacheHit bool
	Err      error
}

// packet is one queued unit of work: a flow key to forward, a batch job
// (many keys crossing the channel as one message), a control function
// (rule update / revalidation / expiry) executed inline on the worker
// goroutine so its pipeline and cache are never touched concurrently, or
// a group of engine-completed upcalls to apply (async offload mode).
type packet struct {
	key     gigaflow.Key
	meta    uint8 // TCP flag byte for the conntrack state machine
	resp    chan<- Result
	job     *batchJob
	control func()
	comp    []*upcall.Miss[parked]
}

// worker owns one pipeline replica and one cache shard.
type worker struct {
	vs    *gigaflow.VSwitch
	rec   *telemetry.LatencyRecorder // nil when Config.Latency.Disable
	fm    *frameMetrics              // shared frame accounting (atomic counters)
	in    chan packet
	label string // worker index, precomputed for metric labels

	// Scratch for ProcessBatch output, grown to the largest job seen so
	// the steady-state batch path allocates nothing.
	procOut  []gigaflow.ProcessResult
	procErr  []error
	procPark []bool

	drops atomic.Uint64 // nonblocking rejections due to a full queue
	skips atomic.Uint64 // expiry sweeps skipped due to a full queue

	// Asynchronous offload state (Config.Upcall.Workers > 0). pending and
	// the counters below belong to the worker goroutine; slowMu is the
	// one lock shared with the engine, taken only around pipeline
	// traversals and rule mutations — never on the cache-hit path.
	async    bool
	idx      int // worker index = upcall.Miss.Shard
	overflow OverflowPolicy
	slowMu   sync.Mutex
	pending  *upcall.Table[parked]
	upq      *upcall.Queue[parked]

	ovInline  uint64 // full-queue misses traversed inline
	ovDrop    uint64 // full-queue misses dropped (OverflowDrop)
	stale     uint64 // engine traversals discarded
	completed uint64 // flow completions applied
	released  uint64 // parked packets answered
}

// Lifecycle states, tracked in Service.state so the submission hot path
// can check them with one atomic load.
const (
	stateNew int32 = iota
	stateRunning
	stateClosed
)

// natEndpoint is one NAT pool target's (IP, port) pair, the lookup key
// of the reply-routing owner map.
type natEndpoint struct {
	ip, port uint64
}

// Service is a running multi-worker vSwitch.
type Service struct {
	cfg     Config
	workers []*worker
	// natOwner routes NAT'd reply traffic: with conntrack enabled,
	// Workers > 1, and NAT pools defined, it maps every pool endpoint to
	// the shard whose partitioned sub-pool owns it. A reply arrives on
	// the translated tuple — outside the forward direction's symmetric
	// hash — but its source endpoint is the bound backend, which only
	// the owning shard can have picked, so the map finds the shard that
	// holds the connection. Nil otherwise (pure symmetric sharding).
	natOwner map[natEndpoint]int

	// Asynchronous offload (Config.Upcall.Workers > 0): the shared miss
	// queue and the engine draining it. Nil when running synchronously.
	upq *upcall.Queue[parked]
	eng *upcall.Engine[parked]

	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	latency *telemetry.Histogram
	frames  *frameMetrics
	started atomic.Int64 // start wall time (unix ns); 0 before Start
	tsrv    *telemetryServer

	state atomic.Int32  // stateNew → stateRunning → stateClosed
	term  chan struct{} // closed once every worker has exited

	mu     sync.Mutex
	cancel context.CancelFunc
	done   sync.WaitGroup
}

// New builds a service around a pipeline. Each worker receives its own
// replica (cloned through the textual program format), so the original may
// be retained or discarded freely by the caller; post-start rule changes
// must go through UpdateRules.
func New(p *gigaflow.Pipeline, cfg Config) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		reg:    telemetry.NewRegistry(),
		tracer: telemetry.NewTracer(cfg.TraceSample, cfg.TraceBuffer),
		term:   make(chan struct{}),
	}
	s.latency = s.reg.Histogram("gigaflow_submit_latency_ns",
		"End-to-end Submit latency (enqueue to result) in nanoseconds.")
	s.frames = newFrameMetrics(s.reg)

	natParts, err := partitionNATPools(p, cfg)
	if err != nil {
		return nil, err
	}
	if natParts != nil {
		s.natOwner = make(map[natEndpoint]int)
		for _, parts := range natParts {
			for w, sub := range parts {
				for _, t := range sub {
					ep := natEndpoint{t.IP, t.Port}
					if prev, dup := s.natOwner[ep]; dup && prev != w {
						return nil, fmt.Errorf(
							"service: NAT endpoint %d:%d appears in differently-owned pool partitions (shards %d and %d)",
							t.IP, t.Port, prev, w)
					}
					s.natOwner[ep] = w
				}
			}
		}
	}

	var program strings.Builder
	if err := gigaflow.DumpPipeline(&program, p); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		replica, err := gigaflow.LoadPipelineString(program.String())
		if err != nil {
			return nil, err
		}
		replica.SetStart(p.Start)
		// Shard i's replica sees only its own sub-range of every NAT
		// pool, so its bindings stay inside the endpoints it owns.
		for id, parts := range natParts {
			replica.SetNATPool(id, parts[i])
		}
		opts := []gigaflow.VSwitchOption{gigaflow.WithTracer(s.tracer)}
		if cfg.Expiry.MaxIdle > 0 {
			opts = append(opts, gigaflow.WithMaxIdle(cfg.Expiry.MaxIdle.Nanoseconds()))
		}
		if cfg.Conntrack.Enable {
			opts = append(opts, gigaflow.WithConntrack(shareOf(cfg.Conntrack.MaxConns, cfg.Workers, i)))
			if cfg.Conntrack.MaxIdle > 0 {
				opts = append(opts, gigaflow.WithConntrackMaxIdle(cfg.Conntrack.MaxIdle.Nanoseconds()))
			}
		}
		perWorker := cfg.Cache
		perWorker.TableCapacity = shareOf(cfg.Cache.TableCapacity, cfg.Workers, i)
		if cfg.Backend == BackendMegaflow {
			opts = append(opts, gigaflow.WithMegaflowBackend(shareOf(cfg.MegaflowCapacity, cfg.Workers, i)))
			// NewVSwitch still wants a valid Gigaflow shape before the
			// option swaps the backend out.
			perWorker = gigaflow.CacheConfig{NumTables: 1, TableCapacity: 1}
		}
		if cfg.MicroflowCapacity > 0 {
			opts = append(opts, gigaflow.WithMicroflow(shareOf(cfg.MicroflowCapacity, cfg.Workers, i)))
		}
		var rec *telemetry.LatencyRecorder
		if !cfg.Latency.Disable {
			// One recorder per worker: like the VSwitch it instruments, its
			// state is single-writer and lives on the worker goroutine.
			rec = telemetry.NewLatencyRecorder(cfg.Latency.FlightRecords, cfg.Latency.Spike)
			opts = append(opts, gigaflow.WithLatencyRecorder(rec))
		}
		w := &worker{
			rec:   rec,
			fm:    s.frames,
			in:    make(chan packet, cfg.QueueDepth),
			label: fmt.Sprintf("%d", i),
		}
		if cfg.Upcall.Workers > 0 {
			w.async = true
			w.idx = i
			w.overflow = cfg.Upcall.Overflow
			w.pending = upcall.NewTable[parked]()
			// The engine traverses this worker's pipeline replica from its
			// own goroutine; the worker's inline traversals (overflow
			// fallback, follower replays, rule updates) take the same lock.
			opts = append(opts, gigaflow.WithSlowpathLock(&w.slowMu))
		}
		w.vs = gigaflow.NewVSwitch(replica, perWorker, opts...)
		s.workers = append(s.workers, w)
	}
	if cfg.Upcall.Workers > 0 {
		s.upq = upcall.NewQueue[parked](cfg.Upcall.Queue)
		s.eng = upcall.NewEngine(s.upq, cfg.Upcall.Workers, cfg.Upcall.Batch, s.handleUpcalls)
		for _, w := range s.workers {
			w.upq = s.upq
		}
	}
	return s, nil
}

// Start launches the workers and the expiry ticker. Cancel ctx or call
// Close to stop. Errors: ErrStarted on a second Start, ErrClosed after
// Close.
func (s *Service) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state.Load() {
	case stateRunning:
		return ErrStarted
	case stateClosed:
		return ErrClosed
	}
	s.state.Store(stateRunning)
	s.started.Store(time.Now().UnixNano())
	ctx, s.cancel = context.WithCancel(ctx)
	if s.eng != nil {
		s.eng.Start(ctx)
	}
	for _, w := range s.workers {
		s.done.Add(1)
		go s.runWorker(ctx, w)
	}
	if s.cfg.Expiry.MaxIdle > 0 ||
		(s.cfg.Conntrack.Enable && s.cfg.Conntrack.MaxIdle > 0) {
		s.done.Add(1)
		go s.runExpiry(ctx)
	}
	// The watcher closes term once every worker has exited — whether the
	// shutdown came from Close or from the caller cancelling ctx — so
	// batch submitters gathering completions always unblock.
	go func() {
		s.done.Wait()
		close(s.term)
	}()
	if s.cfg.TelemetryAddr != "" {
		if err := s.startTelemetry(s.cfg.TelemetryAddr); err != nil {
			s.cancel()
			return err
		}
	}
	return nil
}

func (s *Service) runWorker(ctx context.Context, w *worker) {
	defer s.done.Done()
	for {
		select {
		case <-ctx.Done():
			w.drain()
			return
		case pkt := <-w.in:
			w.run(pkt)
		}
	}
}

// run executes one queued message on the worker goroutine. The wall
// clock is read once per message and threaded through both the
// single-packet and batch paths, so the two age caches identically and
// the latency recorder anchors its flight timestamps on the same stamp
// that touched the cache entries.
func (w *worker) run(pkt packet) {
	switch {
	case pkt.control != nil:
		pkt.control()
	case pkt.comp != nil:
		now := time.Now().UnixNano()
		for _, m := range pkt.comp {
			w.complete(m, now)
		}
	case pkt.job != nil:
		w.runJob(pkt.job, time.Now().UnixNano())
	default:
		now := time.Now().UnixNano()
		if w.async {
			res, wasParked, err := w.vs.ProcessPark(pkt.key, now)
			if wasParked {
				if w.parkOne(pkt.key, parked{idx: -1, resp: pkt.resp}, now) {
					return // answered later, by complete or sweepParked
				}
				r := w.parkFallback(pkt.key, now)
				if pkt.resp != nil {
					pkt.resp <- r
				}
				return
			}
			if pkt.resp != nil {
				pkt.resp <- Result{Verdict: res.Verdict, Final: res.Final, CacheHit: res.CacheHit, Err: err}
			}
			return
		}
		res, err := w.vs.ProcessMeta(pkt.key, pkt.meta, now)
		if pkt.resp != nil {
			pkt.resp <- Result{Verdict: res.Verdict, Final: res.Final, CacheHit: res.CacheHit, Err: err}
		}
	}
}

// runJob processes one batch job: a single ProcessBatch call covers every
// key — one VSwitch stats flush and one counter flush per cache tier for
// the whole job — then results fan back to the submitter, who paid one
// channel message for all of them. now is the message's single wall-clock
// stamp, shared by every packet in the job.
func (w *worker) runJob(j *batchJob, now int64) {
	// Wire-path entries arrive as raw frame bytes: the submitter routed
	// them by the RSS hash alone, so the full decode runs here, on the
	// owning shard — in parallel across workers — before the batch scan.
	if j.wire != nil {
		for i := range j.frames {
			fr := j.frames[i]
			if fr.n == 0 {
				continue // key-routed entry, already decoded
			}
			k, info := wire.Decode(j.wire[fr.off:fr.off+fr.n], fr.inPort)
			w.fm.observe(info, fr.n)
			j.keys[i] = k
			j.metas[i] = info.TCPFlags
		}
	}
	n := len(j.keys)
	if cap(w.procOut) < n {
		w.procOut = make([]gigaflow.ProcessResult, n)
		w.procErr = make([]error, n)
		w.procPark = make([]bool, n)
	}
	out := w.procOut[:n]
	errs := w.procErr[:n]
	if !w.async {
		w.vs.ProcessBatchMeta(j.keys, j.metas, out, errs, now)
		for i := 0; i < n; i++ {
			j.res[i] = Result{Verdict: out[i].Verdict, Final: out[i].Final, CacheHit: out[i].CacheHit, Err: errs[i]}
			if j.resp != nil {
				j.resp <- j.res[i]
			}
		}
		if j.done != nil {
			j.done <- j
		}
		return
	}
	// Async offload: hits resolve in the batch scan; misses park behind
	// their flows and answer later via complete. j.pending starts at 1 for
	// the scan itself so a completion racing in mid-scan (impossible
	// today — completions arrive on this same goroutine — but cheap to
	// make structural) can never fire done early; the scan's own unit is
	// released at the end, signalling done if nothing parked.
	parks := w.procPark[:n]
	w.vs.ProcessBatchPark(j.keys, out, errs, parks, now)
	j.pending = 1
	for i := 0; i < n; i++ {
		if parks[i] {
			if w.parkOne(j.keys[i], parked{job: j, idx: i}, now) {
				j.pending++
				continue
			}
			j.res[i] = w.parkFallback(j.keys[i], now)
		} else {
			j.res[i] = Result{Verdict: out[i].Verdict, Final: out[i].Final, CacheHit: out[i].CacheHit, Err: errs[i]}
		}
		if j.resp != nil {
			j.resp <- j.res[i]
		}
	}
	j.pending--
	if j.pending == 0 && j.done != nil {
		j.done <- j
	}
}

// drain completes work still queued at shutdown so blocking submitters
// are never stranded: control ops run normally (they only touch
// worker-owned state and buffered channels), upcall completions already
// delivered by the engine are applied normally (their submitters get
// real results), while packets and jobs fail with ErrClosed. The loop
// stops as soon as the queue is momentarily empty — late nonblocking
// submissions after that point are dropped with the queue, exactly like
// packets lost in a NIC ring at teardown — and then the pending-flow
// table is swept so parked packets whose completions never arrived fail
// with ErrClosed too.
func (w *worker) drain() {
	for {
		select {
		case pkt := <-w.in:
			switch {
			case pkt.control != nil:
				pkt.control()
			case pkt.comp != nil:
				now := time.Now().UnixNano()
				for _, m := range pkt.comp {
					w.complete(m, now)
				}
			case pkt.job != nil:
				for i := range pkt.job.res {
					pkt.job.res[i] = Result{Err: ErrClosed}
				}
				if pkt.job.done != nil {
					pkt.job.done <- pkt.job
				}
			default:
				if pkt.resp != nil {
					select {
					case pkt.resp <- Result{Err: ErrClosed}:
					default:
					}
				}
			}
		default:
			w.sweepParked()
			return
		}
	}
}

func (s *Service) runExpiry(ctx context.Context) {
	defer s.done.Done()
	ticker := time.NewTicker(s.cfg.Expiry.Every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			now := time.Now().UnixNano()
			for _, w := range s.workers {
				w := w
				// A full queue skips this sweep; the next tick retries.
				select {
				case w.in <- packet{control: func() { w.vs.ExpireIdle(now) }}:
				default:
					w.skips.Add(1)
				}
			}
		}
	}
}

// UpdateRules applies a deterministic mutation to every worker's pipeline
// replica (on the worker's own goroutine) and revalidates its cache
// immediately. The function is called once per replica and must perform
// the same logical change each time; an error from any replica is
// returned (replicas that already applied it keep the change and a
// consistent revalidated cache).
func (s *Service) UpdateRules(ctx context.Context, fn func(p *gigaflow.Pipeline) error) error {
	errs := make(chan error, len(s.workers))
	for _, w := range s.workers {
		w := w
		op := packet{control: func() {
			// Rule mutation and revalidation race the upcall engine's
			// traversals of this replica; slowMu excludes them. (Held
			// uncontended in synchronous mode.) The error send stays
			// outside the critical section.
			w.slowMu.Lock()
			err := fn(w.vs.Pipeline())
			if err == nil {
				w.vs.Revalidate()
			}
			w.slowMu.Unlock()
			errs <- err
		}}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case w.in <- op:
		}
	}
	var first error
	for range s.workers {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-errs:
			if err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Stats aggregates all workers' counters. It runs on the workers' own
// goroutines for a coherent snapshot.
func (s *Service) Stats(ctx context.Context) (gigaflow.VSwitchStats, error) {
	var mu sync.Mutex
	var out gigaflow.VSwitchStats
	done := make(chan struct{}, len(s.workers))
	for _, w := range s.workers {
		w := w
		op := packet{control: func() {
			st := w.vs.Stats()
			mu.Lock()
			out.Packets += st.Packets
			out.MicroflowHits += st.MicroflowHits
			out.CacheHits += st.CacheHits
			out.CacheMisses += st.CacheMisses
			out.Slowpath += st.Slowpath
			out.Installs += st.Installs
			out.InstallErrs += st.InstallErrs
			out.CtFastpath += st.CtFastpath
			out.CtGuardFails += st.CtGuardFails
			out.CtInvalidated += st.CtInvalidated
			mu.Unlock()
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case w.in <- op:
		}
	}
	for range s.workers {
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		case <-done:
		}
	}
	return out, nil
}

// CacheEntries sums cache entries across worker shards, snapshotted on
// the workers' own goroutines.
func (s *Service) CacheEntries() int {
	var mu sync.Mutex
	total := 0
	done := make(chan struct{}, len(s.workers))
	for _, w := range s.workers {
		w := w
		w.in <- packet{control: func() {
			mu.Lock()
			total += w.vs.CacheEntries()
			mu.Unlock()
			done <- struct{}{}
		}}
	}
	for range s.workers {
		<-done
	}
	mu.Lock()
	defer mu.Unlock()
	return total
}

// Close stops the workers, the telemetry server, and waits for them to
// exit. Work still queued is drained: control ops run, packets and jobs
// complete with ErrClosed. Errors: ErrNotStarted before Start, ErrClosed
// on a second Close.
func (s *Service) Close() error {
	s.mu.Lock()
	switch s.state.Load() {
	case stateNew:
		s.mu.Unlock()
		return ErrNotStarted
	case stateClosed:
		s.mu.Unlock()
		return ErrClosed
	}
	s.state.Store(stateClosed)
	tsrv := s.tsrv
	s.mu.Unlock()
	if tsrv != nil {
		tsrv.stop()
	}
	s.cancel()
	<-s.term // the Start watcher closes term once every worker has exited
	if s.eng != nil {
		s.eng.Wait() // engine goroutines exit on the same cancellation
	}
	return nil
}

// shareOf is worker i's slice of a total capacity budget split over n
// workers: total/n, plus one unit of the remainder for the first
// total%n workers, so the shares sum exactly to the configured total
// (a naive total/n silently discarded up to n-1 entries). Every worker
// still receives at least 1 — the cache constructors reject zero — so
// when total < n the summed capacity is n, not total.
func shareOf(total, n, i int) int {
	share := total / n
	if i < total%n {
		share++
	}
	if share < 1 {
		share = 1
	}
	return share
}

// partitionNATPools splits every NAT pool of p into Workers disjoint
// contiguous sub-ranges — worker w gets len/W targets plus one unit of
// the remainder for the first len%W workers, so the sub-ranges cover the
// pool exactly. A shard holding only its own sub-range can never bind a
// connection to an endpoint another shard owns, which is what makes the
// natOwner reply-routing map well defined. Returns nil (no partitioning,
// no owner map) when conntrack is off, no pools exist, or Workers is 1 —
// the single worker keeps the full pool with zero routing overhead.
func partitionNATPools(p *gigaflow.Pipeline, cfg Config) (map[uint16][][]gigaflow.NATTarget, error) {
	ids := p.NATPoolIDs()
	if !cfg.Conntrack.Enable || len(ids) == 0 || cfg.Workers == 1 {
		return nil, nil
	}
	parts := make(map[uint16][][]gigaflow.NATTarget, len(ids))
	for _, id := range ids {
		pool := p.NATPool(id)
		if len(pool) < cfg.Workers {
			return nil, fmt.Errorf(
				"service: NAT pool %d has %d targets but Workers is %d — per-shard partitioning needs at least one target per worker",
				id, len(pool), cfg.Workers)
		}
		sub := make([][]gigaflow.NATTarget, cfg.Workers)
		off := 0
		for w := 0; w < cfg.Workers; w++ {
			n := len(pool) / cfg.Workers
			if w < len(pool)%cfg.Workers {
				n++
			}
			sub[w] = pool[off : off+n]
			off += n
		}
		parts[id] = sub
	}
	return parts, nil
}

// shardOfKey routes a decoded key to its owning worker. The base rule is
// the endpoint-symmetric 5-tuple hash — both directions of a connection
// land on one shard, and it is bit-identical to the wire-bytes RSS hash
// (flow.SymHash5 under both), so key-routed and wire-routed packets of a
// flow always agree. With partitioned NAT pools the hash is preceded by
// the owner map: a NAT'd reply arrives on the translated tuple, whose
// hash knows nothing of the forward direction, but its source endpoint
// is the bound backend — owned by exactly one shard. The source side is
// checked first (replies FROM a backend), then the destination (already
// translated keys flowing toward one, e.g. re-submissions of rewritten
// traffic).
//
//gf:hotpath
func (s *Service) shardOfKey(k *gigaflow.Key) int {
	if s.natOwner != nil {
		if w, ok := s.natOwner[natEndpoint{k.Get(gigaflow.FieldIPSrc), k.Get(gigaflow.FieldTpSrc)}]; ok {
			return w
		}
		if w, ok := s.natOwner[natEndpoint{k.Get(gigaflow.FieldIPDst), k.Get(gigaflow.FieldTpDst)}]; ok {
			return w
		}
	}
	return int(k.SymHash() % uint64(len(s.workers)))
}

// shardOfTuple is shardOfKey for a wire-extracted 5-tuple: same owner-map
// precedence, same symmetric hash, so a frame routed from its raw bytes
// lands exactly where its decoded key would have.
//
//gf:hotpath
func (s *Service) shardOfTuple(t wire.Tuple) int {
	if s.natOwner != nil {
		if w, ok := s.natOwner[natEndpoint{t.SrcIP, t.SrcPort}]; ok {
			return w
		}
		if w, ok := s.natOwner[natEndpoint{t.DstIP, t.DstPort}]; ok {
			return w
		}
	}
	return int(t.SymHash() % uint64(len(s.workers)))
}

// ShardStat is one worker shard's live-occupancy snapshot: how many
// packets it has processed and how much flow state it currently holds —
// the per-shard view of the churn story (live connections, idle expiry,
// capacity eviction) that aggregate counters average away.
type ShardStat struct {
	Worker       int    `json:"worker"`
	Packets      uint64 `json:"packets"`
	CacheEntries int    `json:"cache_entries"`
	Microflow    int    `json:"microflow_entries"`
	CtLive       int    `json:"ct_live"`
	CtCreated    uint64 `json:"ct_created"`
	CtExpired    uint64 `json:"ct_expired"`
	CtEvicted    uint64 `json:"ct_evicted"`
}

// ShardStats snapshots every worker shard on its own goroutine (the same
// control-op discipline as Stats, so the counters are coherent per
// shard). The slice is indexed by worker.
func (s *Service) ShardStats(ctx context.Context) ([]ShardStat, error) {
	out := make([]ShardStat, len(s.workers))
	done := make(chan struct{}, len(s.workers))
	for i, w := range s.workers {
		i, w := i, w
		op := packet{control: func() {
			st := ShardStat{Worker: i, Packets: w.vs.Stats().Packets, CacheEntries: w.vs.CacheEntries()}
			if mf := w.vs.Microflow(); mf != nil {
				st.Microflow = mf.Len()
			}
			if ct := w.vs.Conntrack(); ct != nil {
				cs := ct.Stats()
				st.CtLive = ct.Len()
				st.CtCreated = cs.Created
				st.CtExpired = cs.Expired
				st.CtEvicted = cs.EvictLRU
			}
			out[i] = st
			done <- struct{}{}
		}}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case w.in <- op:
		}
	}
	for range s.workers {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-done:
		}
	}
	return out, nil
}
