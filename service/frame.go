package service

import (
	"context"

	"gigaflow"
	wire "gigaflow/internal/packet"
	"gigaflow/internal/telemetry"
)

// frameMetrics pre-resolves the byte-level ingestion counters into
// arrays indexed by the codec's dense Proto and ErrCode enums, so the
// per-frame accounting is two pointer-chases and two atomic adds — no
// label lookup on the packet path. Every series is materialised up
// front so /metrics shows the full schema at zero.
type frameMetrics struct {
	decoded [wire.NumProtos]*telemetry.Counter
	errs    [wire.NumErrCodes]*telemetry.Counter
	frames  *telemetry.Counter
	bytes   *telemetry.Counter
	vlan    *telemetry.Counter
	frags   *telemetry.Counter
}

func newFrameMetrics(reg *telemetry.Registry) *frameMetrics {
	m := &frameMetrics{
		frames: reg.Counter("gigaflow_frames_total",
			"Wire-format frames submitted through SubmitFrame/SubmitFrameBatch."),
		bytes: reg.Counter("gigaflow_frame_bytes_total",
			"Bytes of wire-format frames submitted."),
		vlan: reg.Counter("gigaflow_frames_vlan_total",
			"Frames that carried an 802.1Q/802.1ad VLAN tag."),
		frags: reg.Counter("gigaflow_frames_fragment_total",
			"Non-first IPv4 fragments (transport ports unavailable)."),
	}
	decoded := reg.CounterVec("gigaflow_frames_decoded_total",
		"Decoded frames by protocol class.", "proto")
	for p := 0; p < wire.NumProtos; p++ {
		m.decoded[p] = decoded.With(wire.Proto(p).String())
	}
	errs := reg.CounterVec("gigaflow_frame_decode_errors_total",
		"Frames whose decode hit a defect, by reason (degraded keys are still forwarded).", "reason")
	for e := 1; e < wire.NumErrCodes; e++ { // 0 is ErrOK, not an error
		m.errs[e] = errs.With(wire.ErrCode(e).String())
	}
	return m
}

// observe accounts one decoded frame of n wire bytes.
//
//gf:hotpath
func (m *frameMetrics) observe(info wire.Info, n int) {
	m.frames.Inc()
	m.bytes.Add(uint64(n))
	m.decoded[info.Proto].Inc()
	if info.Err != wire.ErrOK {
		m.errs[info.Err].Inc()
	}
	if info.VLAN != 0 {
		m.vlan.Inc()
	}
	if info.Fragment {
		m.frags.Inc()
	}
}

// DecodeFrame runs the wire-format decoder and the service's frame
// accounting without submitting the result — the building block
// SubmitFrame and SubmitFrameBatch share, exposed for callers (the
// replay engine, tests) that need the key or decode Info themselves.
//
//gf:hotpath
func (s *Service) DecodeFrame(inPort uint16, frame []byte) (gigaflow.Key, wire.Info) {
	k, info := wire.Decode(frame, inPort)
	s.frames.observe(info, len(frame))
	return k, info
}

// SubmitFrame decodes a raw Ethernet frame received on inPort and
// submits the resulting key with Submit's semantics (blocking by
// default; the Nonblocking and WithResponse options apply). The decoded
// TCP flag byte rides along as the packet's metadata, so a
// conntrack-enabled service sees handshakes and closes. Frames with
// decode defects degrade to the longest well-formed prefix of the key
// and are still forwarded (the pipeline decides their fate); only a
// frame too short to carry an Ethernet header is rejected, with
// ErrShortFrame (a *FrameError matching ErrBadFrame). Decode outcomes
// are counted in the metrics registry either way.
func (s *Service) SubmitFrame(ctx context.Context, inPort uint16, frame []byte, opts ...SubmitOption) (Result, error) {
	k, info := s.DecodeFrame(inPort, frame)
	if info.Err == wire.ErrShortFrame {
		return Result{}, ErrShortFrame
	}
	o := applyOpts(opts)
	o.meta = info.TCPFlags
	return s.submitKey(ctx, k, o)
}

// Frame is one entry of a frame batch: a raw Ethernet frame and the
// ingress port it arrived on. Per-entry ports let one batch carry
// frames from multiple logical NIC queues without lying about
// provenance.
type Frame struct {
	InPort uint16
	Data   []byte
}

// SubmitFrameBatch ingests raw frames into b — which it Resets first —
// and submits them as a single batch with SubmitBatch's semantics. The
// batch is index-aligned with frames: request i holds frame i's key and
// Result.
//
// Ingestion is RSS-style: each frame's 5-tuple is extracted straight
// from its L3/L4 header words (wire.RSSTuple) and the frame's bytes are
// routed — still undecoded — to the shard worker the symmetric hash
// picks, where the full decode runs in parallel with every other
// shard's. Frames the extractor refuses (non-IPv4, truncated headers,
// over-deep VLAN stacks) fall back to submitter-side decode plus
// key-hash routing, which lands on the same shard the wire hash would
// have and preserves the degraded-frame semantics bit for bit; of
// those, frames too short for an Ethernet header are never submitted and
// carry the *FrameError in Result.Err (matching ErrBadFrame and the
// specific sentinel, e.g. ErrShortFrame), so a mixed batch reports
// per-index outcomes.
//
// Every frame's bytes are captured (copied into the batch's arena or
// decoded) before the next entry is read, so the caller may back every
// entry's Data with one reused buffer per record (the pcap reader's
// streaming contract). After a blocking submission each request's Key
// and Meta hold the decoded values regardless of which side ran the
// decoder; a nonblocking submission leaves wire-routed requests' Key
// zero (the decode happens later, on the shard).
func (s *Service) SubmitFrameBatch(ctx context.Context, frames []Frame, b *Batch, opts ...SubmitOption) error {
	b.Reset()
	for _, f := range frames {
		if t, ok := wire.RSSTuple(f.Data); ok {
			b.addFrame(f.InPort, f.Data, s.shardOfTuple(t))
			continue
		}
		k, info := s.DecodeFrame(f.InPort, f.Data)
		if info.Err == wire.ErrShortFrame {
			b.addRejected(&FrameError{Code: info.Err})
			continue
		}
		b.AddMeta(k, info.TCPFlags)
	}
	return s.SubmitBatch(ctx, b, opts...)
}
