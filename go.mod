module gigaflow

go 1.22
