package sim

import (
	"testing"

	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/traffic"
)

func workload(t testing.TB, spec *pipelines.Spec, chains int) *pipebench.Workload {
	t.Helper()
	w, err := pipebench.Generate(pipebench.Config{Spec: spec, Seed: 11, NumChains: chains})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunGigaflowVsMegaflowHighLocality(t *testing.T) {
	w := workload(t, pipelines.PSC, 400)
	trace := BuildTrace(w, 5000, traffic.HighLocality, 3)

	gfRes, err := Run(w, trace, Config{Kind: Gigaflow, NumTables: 4, TableCapacity: 2048, Offloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh workload is needed because Run installs nothing into the
	// pipeline, so reuse is safe — but use a fresh megaflow run anyway.
	mfRes, err := Run(w, trace, Config{Kind: Megaflow, MegaflowCapacity: 8192, Offloaded: true})
	if err != nil {
		t.Fatal(err)
	}

	if gfRes.Packets != uint64(len(trace)) || mfRes.Packets != gfRes.Packets {
		t.Fatalf("packets %d/%d, trace %d", gfRes.Packets, mfRes.Packets, len(trace))
	}
	if gfRes.HitRate() <= 0 || mfRes.HitRate() <= 0 {
		t.Fatal("degenerate run: no hits")
	}
	// The headline claim at equal total capacity: Gigaflow ≥ Megaflow hit
	// rate in high-locality traffic.
	if gfRes.HitRate() < mfRes.HitRate()-0.02 {
		t.Errorf("gigaflow hit rate %.3f below megaflow %.3f", gfRes.HitRate(), mfRes.HitRate())
	}
	// Coverage must exceed entry count for Gigaflow, equal it for Megaflow.
	if gfRes.Coverage < uint64(gfRes.Entries) {
		t.Errorf("gf coverage %d < entries %d", gfRes.Coverage, gfRes.Entries)
	}
	if mfRes.Coverage != uint64(mfRes.Entries) {
		t.Errorf("mf coverage %d != entries %d", mfRes.Coverage, mfRes.Entries)
	}
	// Sub-traversal sharing shows up as installs-per-entry > 1.
	if gfRes.MeanSharing <= 1.0 {
		t.Errorf("gf mean sharing %.2f, expected > 1", gfRes.MeanSharing)
	}
	if mfRes.MeanSharing != 1.0 {
		t.Errorf("mf mean sharing %.2f", mfRes.MeanSharing)
	}
	// Fig. 13 structure: megaflow must charge no partition cycles.
	if mfRes.Cycles.Partition != 0 {
		t.Error("megaflow charged partitioning cycles")
	}
	if gfRes.Cycles.Partition == 0 || gfRes.Cycles.Pipeline == 0 {
		t.Error("gigaflow cycle breakdown incomplete")
	}
}

func TestHitsAgreeWithSlowpath(t *testing.T) {
	// Every packet's simulated fate must be consistent: re-running any
	// packet's key through the pipeline yields a terminal verdict, and the
	// simulation completes with hits+misses == packets.
	w := workload(t, pipelines.OFD, 300)
	trace := BuildTrace(w, 2000, traffic.HighLocality, 5)
	res, err := Run(w, trace, Config{Kind: Gigaflow, Offloaded: true, NumTables: 4, TableCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits+res.Misses != res.Packets {
		t.Errorf("hits %d + misses %d != packets %d", res.Hits, res.Misses, res.Packets)
	}
	if res.Latency.N() != res.Packets {
		t.Errorf("latency samples %d != packets %d", res.Latency.N(), res.Packets)
	}
}

func TestOffloadLatencyStructure(t *testing.T) {
	w := workload(t, pipelines.PSC, 200)
	trace := BuildTrace(w, 1500, traffic.HighLocality, 9)
	res, err := Run(w, trace, Config{Kind: Gigaflow, Offloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultCostModel()
	// Hits cost exactly HWHitNs, so the minimum observed latency bucket
	// must be at or around it, and the mean must exceed it (misses).
	if res.Latency.Mean() <= float64(m.HWHitNs) {
		t.Errorf("mean latency %.0f should exceed the hit latency %d", res.Latency.Mean(), m.HWHitNs)
	}
	if res.Latency.Mean() > 20*float64(m.HWHitNs) {
		t.Errorf("mean latency %.0f implausibly high", res.Latency.Mean())
	}
}

func TestSoftwareSearchCostTSSvsNM(t *testing.T) {
	// Fig. 17: with a CPU-resident Megaflow cache, NM must not be slower
	// than TSS on average (it replaces O(#masks) scans with O(1) model
	// evaluations).
	w := workload(t, pipelines.PSC, 400)
	trace := BuildTrace(w, 6000, traffic.HighLocality, 13)
	tss, err := Run(w, trace, Config{Kind: Megaflow, MegaflowCapacity: 8192, Search: TSS})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := Run(w, trace, Config{Kind: Megaflow, MegaflowCapacity: 8192, Search: NM})
	if err != nil {
		t.Fatal(err)
	}
	if tss.HitRate() != nm.HitRate() {
		t.Errorf("search algorithm must not change hit rate: %.4f vs %.4f", tss.HitRate(), nm.HitRate())
	}
	if nm.Latency.Mean() > tss.Latency.Mean()*1.05 {
		t.Errorf("NM latency %.0f worse than TSS %.0f", nm.Latency.Mean(), tss.Latency.Mean())
	}
}

func TestCoreScalingSpreadsMisses(t *testing.T) {
	w := workload(t, pipelines.PSC, 300)
	trace := BuildTrace(w, 4000, traffic.LowLocality, 17)
	res, err := Run(w, trace, Config{Kind: Megaflow, Offloaded: true, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("per-core entries: %d", len(res.PerCore))
	}
	var total uint64
	busy := 0
	for _, c := range res.PerCore {
		total += c.Misses
		if c.Misses > 0 {
			busy++
		}
	}
	if total != res.Misses {
		t.Errorf("per-core misses %d != total %d", total, res.Misses)
	}
	if busy < 3 {
		t.Errorf("RSS spread misses over only %d/4 cores", busy)
	}
	// No core should carry the vast majority.
	for i, c := range res.PerCore {
		if float64(c.Misses) > 0.6*float64(total) {
			t.Errorf("core %d carries %d of %d misses", i, c.Misses, total)
		}
	}
}

func TestTimeSeriesSampling(t *testing.T) {
	w := workload(t, pipelines.PSC, 200)
	trace := BuildTrace(w, 3000, traffic.HighLocality, 19)
	res, err := Run(w, trace, Config{Kind: Gigaflow, Offloaded: true, SampleEveryNs: 5_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Points) < 5 {
		t.Fatalf("only %d series points over a 60s trace", len(res.Series.Points))
	}
	// Hit rate should improve as the cache warms: last window ≥ first.
	first, last := res.Series.Points[0].V, res.Series.Points[len(res.Series.Points)-1].V
	if last < first {
		t.Errorf("hit rate declined while warming: %.3f -> %.3f", first, last)
	}
}

func TestIdleExpiryRuns(t *testing.T) {
	w := workload(t, pipelines.PSC, 200)
	trace := BuildTrace(w, 2000, traffic.HighLocality, 23)
	res, err := Run(w, trace, Config{
		Kind: Gigaflow, Offloaded: true,
		MaxIdleNs: 5_000_000_000, ExpireEveryNs: 1_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With a 5s idle timeout over a 60s trace, entries must be bounded by
	// live flows, not total flows.
	if res.Entries == 0 {
		t.Error("expiry removed everything")
	}
}

func TestLatencyTable(t *testing.T) {
	rows := LatencyTable(CostModel{})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §6.3.6 ordering: offloads fastest, ARM kernel slowest.
	if rows[0].LatencyNs != 8620 || rows[5].LatencyNs != 3606370 {
		t.Errorf("rows = %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LatencyNs < rows[i-1].LatencyNs {
			t.Errorf("latency table not sorted: %+v", rows)
		}
	}
}

func TestRevalidationExperiment(t *testing.T) {
	w := workload(t, pipelines.PSC, 300)
	gf, mf, err := RevalidationExperiment(w, 3000, 4, 2048, 8192, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if gf.Work == 0 || mf.Work == 0 {
		t.Fatalf("no revalidation work: gf=%+v mf=%+v", gf, mf)
	}
	// §6.3.6: Gigaflow revalidation is cheaper (≈2× in the paper).
	if gf.Work >= mf.Work {
		t.Errorf("gigaflow reval work %d not below megaflow %d", gf.Work, mf.Work)
	}
	if gf.TimeMs <= 0 || mf.TimeMs <= 0 {
		t.Error("times must be positive")
	}
}

func TestRunErrors(t *testing.T) {
	w := workload(t, pipelines.PSC, 50)
	if _, err := Run(w, nil, Config{}); err == nil {
		t.Error("empty trace must fail")
	}
}

func TestConfigLabels(t *testing.T) {
	c := Config{Kind: Gigaflow, NumTables: 4, TableCapacity: 8192, Search: NM}
	if c.Label() != "gigaflow(4x8192)/NM" {
		t.Errorf("label %q", c.Label())
	}
	c = Config{Kind: Megaflow, MegaflowCapacity: 32768}
	if c.Label() != "megaflow(32768)/TSS" {
		t.Errorf("label %q", c.Label())
	}
	if Gigaflow.String() != "gigaflow" || TSS.String() != "TSS" || NM.String() != "NM" {
		t.Error("names wrong")
	}
}

func TestThroughputModel(t *testing.T) {
	w := workload(t, pipelines.PSC, 400)
	trace := BuildTrace(w, 6000, traffic.HighLocality, 29)
	gf, err := Run(w, trace, Config{Kind: Gigaflow, Offloaded: true, NumTables: 4, TableCapacity: 2048})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := Run(w, trace, Config{Kind: Megaflow, MegaflowCapacity: 4096, Offloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{gf, mf} {
		tp := r.Throughput
		if tp.MissRate <= 0 || tp.MissRate >= 1 {
			t.Fatalf("miss rate %v", tp.MissRate)
		}
		if tp.PerMissNs <= 0 || tp.SlowpathPps <= 0 {
			t.Fatalf("throughput model empty: %+v", tp)
		}
		if tp.AggregateGbps <= 0 || tp.AggregateGbps > tp.LineRateGbps {
			t.Fatalf("aggregate %v out of range", tp.AggregateGbps)
		}
	}
	// The paper's motivating claim: the better cache supports more load.
	if gf.HitRate() > mf.HitRate() && gf.Throughput.AggregateGbps < mf.Throughput.AggregateGbps {
		t.Errorf("higher hit rate must not reduce achievable throughput: gf %.1f vs mf %.1f Gbps",
			gf.Throughput.AggregateGbps, mf.Throughput.AggregateGbps)
	}
	// More cores buy proportionally more slowpath capacity.
	mf8, err := Run(w, trace, Config{Kind: Megaflow, MegaflowCapacity: 4096, Offloaded: true, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if mf8.Throughput.SlowpathPps < 7*mf.Throughput.SlowpathPps {
		t.Errorf("8 cores should ~8x slowpath capacity: %v vs %v", mf8.Throughput.SlowpathPps, mf.Throughput.SlowpathPps)
	}
}
