package sim

import (
	"strconv"

	"gigaflow/internal/telemetry"
)

// CollectMetrics mirrors the run's results into a telemetry registry using
// the same metric names the live service exports, so batch simulations and
// running services can share dashboards. The latency histogram is folded
// in bucket-for-bucket.
func (r *Result) CollectMetrics(reg *telemetry.Registry) {
	label := r.Config.Label()
	c := func(name, help string, v uint64) {
		reg.CounterVec(name, help, "run").With(label).Set(v)
	}
	g := func(name, help string, v float64) {
		reg.GaugeVec(name, help, "run").With(label).Set(v)
	}
	c("gigaflow_packets_total", "Packets processed.", r.Packets)
	c("gigaflow_cache_hits_total", "Main-cache hits.", r.Hits)
	c("gigaflow_cache_misses_total", "Main-cache misses.", r.Misses)
	c("gigaflow_cache_stalls_total", "Misses that matched a partial entry chain.", r.Stalls)
	c("gigaflow_slowpath_traversals_total", "Full pipeline traversals.", r.Misses)
	c("gigaflow_install_errors_total", "Traversals that could not be cached.", r.InsertFailures)
	c("gigaflow_cache_coverage", "Rule-space coverage (installed traversals).", r.Coverage)
	g("gigaflow_cache_entries", "Cache entries in use.", float64(r.Entries))
	g("gigaflow_cache_capacity", "Cache entry limit.", float64(r.Capacity))
	g("gigaflow_hit_rate", "Cache hit rate over the run.", r.HitRate())
	g("gigaflow_mean_sharing", "Mean traversals installed per cache entry.", r.MeanSharing)
	g("gigaflow_slowpath_pps", "Modelled slowpath capacity (packets/s).", r.Throughput.SlowpathPps)
	g("gigaflow_throughput_gbps", "Modelled aggregate throughput.", r.Throughput.AggregateGbps)
	c("gigaflow_cycles_pipeline_total", "Slowpath cycles in pipeline traversal.", uint64(r.Cycles.Pipeline))
	c("gigaflow_cycles_partition_total", "Slowpath cycles in partitioning.", uint64(r.Cycles.Partition))
	c("gigaflow_cycles_rulegen_total", "Slowpath cycles in rule generation.", uint64(r.Cycles.RuleGen))
	reg.HistogramVec("gigaflow_packet_latency_ns",
		"Per-packet end-to-end latency in nanoseconds.", "run").
		With(label).ObserveHistogram(&r.Latency)
	for i, core := range r.PerCore {
		reg.CounterVec("gigaflow_core_misses_total", "Slowpath misses handled per core.",
			"run", "core").With(label, strconv.Itoa(i)).Set(core.Misses)
	}
}
