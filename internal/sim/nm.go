package sim

import (
	"gigaflow/internal/flow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/rmi"
	"gigaflow/internal/tss"
)

// nmIndex models NuevoMatch acceleration of a CPU-resident Megaflow cache
// (Fig. 17's "NM" search algorithm): a learned RQ-RMI snapshot over the
// cache's entries plus a TSS delta for rules inserted since the last
// retrain, exactly NuevoMatch's split between the trained index and its
// remainder updates. The index is consulted for lookup *cost*; functional
// results still come from the cache's authoritative classifier.
type nmIndex struct {
	snapshot     *rmi.Classifier[*megaflow.Entry]
	delta        *tss.Classifier[*megaflow.Entry]
	sinceRebuild int
	rebuildEvery int
}

func newNMIndex(rebuildEvery int) *nmIndex {
	if rebuildEvery <= 0 {
		// Retrain frequently enough that the TSS delta stays small —
		// NuevoMatch's background training keeps remainder updates to a
		// few hundred rules.
		rebuildEvery = 96
	}
	return &nmIndex{
		snapshot:     rmi.Build[*megaflow.Entry](nil, rmi.Config{}),
		delta:        tss.New[*megaflow.Entry](),
		rebuildEvery: rebuildEvery,
	}
}

// noteInsert records a newly cached entry in the delta, retraining the
// snapshot from the full cache when the delta has grown enough.
func (n *nmIndex) noteInsert(e *megaflow.Entry, cache *megaflow.Cache) {
	n.delta.Insert(&tss.Entry[*megaflow.Entry]{Match: e.Match, Priority: 0, Value: e})
	n.sinceRebuild++
	if n.sinceRebuild >= n.rebuildEvery {
		n.rebuild(cache)
	}
}

// rebuild retrains the snapshot over the cache's current entries.
func (n *nmIndex) rebuild(cache *megaflow.Cache) {
	entries := cache.Entries()
	res := make([]*rmi.Entry[*megaflow.Entry], len(entries))
	for i, e := range entries {
		res[i] = &rmi.Entry[*megaflow.Entry]{Match: e.Match, Priority: 0, Value: e}
	}
	n.snapshot = rmi.Build(res, rmi.Config{})
	n.delta = tss.New[*megaflow.Entry]()
	n.sinceRebuild = 0
}

// lookupCost returns the work NuevoMatch would spend classifying k, split
// into learned-index units (cheap multiply-adds) and the delta's TSS tuple
// probes (full hash probes).
func (n *nmIndex) lookupCost(k flow.Key) (rmiUnits, deltaProbes int64) {
	_, c1 := n.snapshot.Lookup(k)
	_, c2 := n.delta.Lookup(k)
	return int64(c1), int64(c2)
}

// gfNMCostPerTable is the probe-equivalent cost NuevoMatch spends per
// consulted Gigaflow table (2 model evaluations + error-window
// validations). Applying NM to the LTM tables replaces each table's TSS
// scan; a table with fewer live tuples than this is already cheaper with
// TSS, hence the min() at the call site. This models the paper's small
// GF+NM gain (9.8 µs → 9.65 µs).
const gfNMCostPerTable = 12
