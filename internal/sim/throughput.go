package sim

import "math"

// Throughput is the aggregate-forwarding model of the paper's motivation
// (§1–§2): the SmartNIC forwards cache hits at line rate, so the
// achievable aggregate throughput is capped by how fast the slowpath CPUs
// can absorb the *misses*. A cache with a 10× lower miss rate supports
// ~10× the offered load before the slowpath saturates.
type Throughput struct {
	// MissRate is the fraction of packets punted to software.
	MissRate float64
	// PerMissNs is the mean software cost of one miss (upcall + pipeline +
	// rule generation + installation).
	PerMissNs float64
	// SlowpathPps is the total miss-absorption capacity of the configured
	// cores, in packets per second.
	SlowpathPps float64
	// MaxOfferedPps is the highest loss-free offered load: the rate at
	// which the miss stream exactly saturates the slowpath (line-rate
	// bounded). Infinite miss-free workloads clamp to the line rate.
	MaxOfferedPps float64
	// AggregateGbps converts MaxOfferedPps at the trace's mean packet
	// size, capped at the device line rate.
	AggregateGbps float64
	// LineRateGbps is the cap used.
	LineRateGbps float64
}

// computeThroughput derives the model from a finished run.
func computeThroughput(res *Result, totalBytes uint64, lineRateGbps float64, m CostModel) Throughput {
	t := Throughput{LineRateGbps: lineRateGbps}
	if res.Packets == 0 {
		return t
	}
	t.MissRate = float64(res.Misses) / float64(res.Packets)
	avgBits := float64(totalBytes) * 8 / float64(res.Packets)
	lineRatePps := lineRateGbps * 1e9 / avgBits

	if res.Misses > 0 {
		t.PerMissNs = float64(m.PuntNs+m.SlowBaseNs) + float64(m.CyclesToNs(res.Cycles.Total()))/float64(res.Misses)
	} else {
		t.PerMissNs = float64(m.PuntNs + m.SlowBaseNs)
	}
	cores := len(res.PerCore)
	if cores == 0 {
		cores = 1
	}
	t.SlowpathPps = float64(cores) * 1e9 / t.PerMissNs

	if t.MissRate == 0 {
		t.MaxOfferedPps = lineRatePps
	} else {
		t.MaxOfferedPps = math.Min(t.SlowpathPps/t.MissRate, lineRatePps)
	}
	t.AggregateGbps = t.MaxOfferedPps * avgBits / 1e9
	return t
}
