// Package sim is the end-to-end simulator: it drives a packet trace
// through a SmartNIC-hosted cache (Gigaflow or Megaflow) with a software
// slowpath running the full vSwitch pipeline, charging latency and CPU
// cycles from a model calibrated to the paper's testbed measurements. It
// reproduces the evaluation's end-to-end figures (hit rate, misses,
// entries, latency, CPU breakdown, dynamic workloads, core scaling).
package sim

// CostModel holds the calibrated latency/cycle constants. All latencies
// are nanoseconds; cycle costs are converted at CPUGHz.
type CostModel struct {
	// CPUGHz converts slowpath cycles to nanoseconds (testbed: Xeon
	// 8358P @ 2.6 GHz).
	CPUGHz float64

	// HWHitNs is the hardware-cache hit latency (paper §6.3.6: 8.62 µs on
	// the Alveo U250 for both Megaflow and Gigaflow offloads).
	HWHitNs int64
	// PuntNs is the extra PCIe/punt cost a miss pays before software sees
	// the packet.
	PuntNs int64
	// SlowBaseNs is the DPDK userspace per-upcall base cost (paper:
	// OVS/DPDK ≈ 12.61 µs on the host CPU).
	SlowBaseNs int64
	// SwCacheBaseNs is the per-lookup base cost of a CPU-resident cache
	// (software configurations of Fig. 17).
	SwCacheBaseNs int64

	// Reference latencies for the §6.3.6 configuration table.
	KernelHostNs int64
	KernelARMNs  int64
	DPDKHostNs   int64
	DPDKARMNs    int64

	// Per-unit cycle costs.
	CyclesPerTupleProbe int64 // one TSS tuple hash probe (hash + compare)
	CyclesPerNMUnit     int64 // one RQ-RMI work unit (model eval / window validation)
	CyclesPerTableVisit int64 // per pipeline table visited (actions etc.)
	CyclesPerDPCell     int64 // per dynamic-program cell in partitioning
	CyclesPerRuleGen    int64 // per cache rule composed/installed
	CyclesPerRevalStep  int64 // per table lookup during revalidation
}

// DefaultCostModel returns the model calibrated to the paper's testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		CPUGHz:  2.6,
		HWHitNs: 8620,
		PuntNs:  2000,
		// The DPDK slowpath and the CPU-resident cache base reflect the
		// paper's OVS/DPDK measurements (§6.3.6, Fig. 17): a software
		// cache hit costs most of the DPDK per-packet path before the
		// classifier search itself.
		SlowBaseNs:          12610,
		SwCacheBaseNs:       9500,
		KernelHostNs:        671480,
		KernelARMNs:         3606370,
		DPDKHostNs:          12610,
		DPDKARMNs:           51260,
		CyclesPerTupleProbe: 90,
		// An RQ-RMI unit is a fused multiply-add plus a bounded-window
		// touch — an order cheaper than hashing a 10-field key, which is
		// NuevoMatch's entire advantage.
		CyclesPerNMUnit:     18,
		CyclesPerTableVisit: 260,
		// Calibrated so the partition+rulegen overhead over the userspace
		// pipeline reproduces Fig. 13's ordering: larger pipelines
		// (OLS/ANT, with N²·K dynamic programs over longer traversals)
		// pay proportionally more than small ones (PSC/OTL/OFD).
		CyclesPerDPCell:    4,
		CyclesPerRuleGen:   100,
		CyclesPerRevalStep: 350,
	}
}

// CyclesToNs converts cycles at the model's CPU frequency.
func (m CostModel) CyclesToNs(cycles int64) int64 {
	return int64(float64(cycles) / m.CPUGHz)
}

// CycleBreakdown accumulates slowpath CPU work by phase — the Fig. 13
// decomposition: the userspace forwarding pipeline, sub-traversal
// partitioning, and LTM rule generation (the latter two are Gigaflow-only
// overheads; Megaflow pays only pipeline + its single-rule generation).
type CycleBreakdown struct {
	Pipeline  int64
	Partition int64
	RuleGen   int64
}

// Total sums all phases.
func (c CycleBreakdown) Total() int64 { return c.Pipeline + c.Partition + c.RuleGen }

// Add accumulates another breakdown.
func (c *CycleBreakdown) Add(o CycleBreakdown) {
	c.Pipeline += o.Pipeline
	c.Partition += o.Partition
	c.RuleGen += o.RuleGen
}
