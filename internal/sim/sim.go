package sim

import (
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/pipebench"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
)

// CacheKind selects the hardware-cache architecture under test.
type CacheKind uint8

const (
	// Megaflow is the single-table wildcard cache baseline.
	Megaflow CacheKind = iota
	// Gigaflow is the K-table LTM sub-traversal cache.
	Gigaflow
)

// String names the kind.
func (k CacheKind) String() string {
	if k == Gigaflow {
		return "gigaflow"
	}
	return "megaflow"
}

// SearchAlgo selects the software cache search algorithm (Fig. 17).
type SearchAlgo uint8

const (
	// TSS is Tuple Space Search.
	TSS SearchAlgo = iota
	// NM is the NuevoMatch learned index.
	NM
)

// String names the algorithm.
func (s SearchAlgo) String() string {
	if s == NM {
		return "NM"
	}
	return "TSS"
}

// Config parameterises one simulation run.
type Config struct {
	Kind CacheKind

	// Gigaflow shape (ignored for Megaflow).
	NumTables     int
	TableCapacity int
	Scheme        gigaflow.Scheme
	Seed          int64

	// Megaflow capacity (ignored for Gigaflow).
	MegaflowCapacity int

	// Offloaded runs the cache on the SmartNIC (hits cost HWHitNs);
	// otherwise the cache is CPU-resident and hits pay the software search
	// cost of the selected algorithm (Fig. 17 mode).
	Offloaded bool
	Search    SearchAlgo

	// MaxIdleNs enables idle expiry (0 disables); sweeps run every
	// ExpireEveryNs (default 1 s).
	MaxIdleNs     int64
	ExpireEveryNs int64

	// SampleEveryNs emits a hit-rate time series point per interval
	// (0 disables) — Fig. 18.
	SampleEveryNs int64

	// Cores spreads slowpath work across CPU cores by flow RSS hash
	// (default 1) — Fig. 19.
	Cores int

	// LineRateGbps caps the throughput model (default 100, the paper's
	// prototype).
	LineRateGbps float64

	Model CostModel
}

func (c Config) withDefaults() Config {
	if c.Model.CPUGHz == 0 {
		c.Model = DefaultCostModel()
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.MaxIdleNs > 0 && c.ExpireEveryNs <= 0 {
		c.ExpireEveryNs = 1_000_000_000
	}
	if c.LineRateGbps <= 0 {
		c.LineRateGbps = 100
	}
	if c.Kind == Gigaflow {
		if c.NumTables <= 0 {
			c.NumTables = 4
		}
		if c.TableCapacity <= 0 {
			c.TableCapacity = 8192
		}
	} else if c.MegaflowCapacity <= 0 {
		c.MegaflowCapacity = 32768
	}
	return c
}

// Label renders the configuration as the paper labels it, e.g.
// "gigaflow(4x8192)/TSS".
func (c Config) Label() string {
	if c.Kind == Gigaflow {
		return fmt.Sprintf("gigaflow(%dx%d)/%s", c.NumTables, c.TableCapacity, c.Search)
	}
	return fmt.Sprintf("megaflow(%d)/%s", c.MegaflowCapacity, c.Search)
}

// CoreLoad is one CPU core's slowpath share (Fig. 19).
type CoreLoad struct {
	Misses uint64
	Cycles int64
}

// Result is the outcome of one run.
type Result struct {
	Config  Config
	Packets uint64
	Hits    uint64
	Misses  uint64
	// Stalls counts Gigaflow misses that matched a partial entry chain.
	Stalls uint64
	// Entries/Capacity describe final cache occupancy (Fig. 10).
	Entries  int
	Capacity int
	// Coverage is the rule-space coverage at the end of the run (Table 2);
	// for Megaflow it equals Entries.
	Coverage uint64
	// MeanSharing is the average number of traversals installed per cache
	// entry (Fig. 11); 1.0 for Megaflow by construction.
	MeanSharing float64
	// InsertFailures counts traversals that could not be cached.
	InsertFailures uint64
	// Latency is the per-packet end-to-end latency distribution (Fig. 12).
	Latency stats.Histogram
	// Cycles decomposes slowpath CPU work (Fig. 13).
	Cycles CycleBreakdown
	// PerCore is the slowpath load per CPU core (Fig. 19).
	PerCore []CoreLoad
	// Series is the windowed hit-rate time series (Fig. 18).
	Series stats.Series
	// Throughput is the aggregate-forwarding model derived from the run.
	Throughput Throughput
}

// HitRate returns Hits/Packets.
func (r *Result) HitRate() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Packets)
}

// Run drives the trace through a fresh cache of the configured kind backed
// by the workload's pipeline slowpath.
func Run(w *pipebench.Workload, trace []traffic.Packet, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(trace) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	res := &Result{Config: cfg, Capacity: cfg.MegaflowCapacity, PerCore: make([]CoreLoad, cfg.Cores)}
	res.Series.Name = cfg.Label()

	var gf *gigaflow.Cache
	var mf *megaflow.Cache
	var nm *nmIndex
	if cfg.Kind == Gigaflow {
		gf = gigaflow.New(w.Pipeline, gigaflow.Config{
			NumTables:     cfg.NumTables,
			TableCapacity: cfg.TableCapacity,
			Scheme:        cfg.Scheme,
			Seed:          cfg.Seed,
		})
		res.Capacity = gf.Capacity()
	} else {
		mf = megaflow.New(cfg.MegaflowCapacity)
		if cfg.Search == NM {
			nm = newNMIndex(0)
		}
	}

	m := cfg.Model
	var lastExpire, lastSample int64
	var windowHits, windowTotal uint64
	var prevGFProbes, prevMFProbes, prevGFTables uint64
	var totalBytes uint64

	for i := range trace {
		pkt := &trace[i]
		now := pkt.Time
		totalBytes += uint64(pkt.Size)

		if cfg.MaxIdleNs > 0 && now-lastExpire >= cfg.ExpireEveryNs {
			lastExpire = now
			if gf != nil {
				gf.ExpireIdle(now, cfg.MaxIdleNs)
			} else {
				mf.ExpireIdle(now, cfg.MaxIdleNs)
			}
		}

		// Cache lookup.
		var hit bool
		var swCycles int64 // CPU cycles spent searching in software mode
		if gf != nil {
			r := gf.Lookup(pkt.Key, now)
			hit = r.Hit
			st := gf.Stats()
			tssProbes := int64(st.TupleProbes - prevGFProbes)
			tables := int64(st.TablesProbed - prevGFTables)
			prevGFProbes, prevGFTables = st.TupleProbes, st.TablesProbed
			swCycles = tssProbes * m.CyclesPerTupleProbe
			if cfg.Search == NM {
				// NM replaces each LTM table's scan with model work;
				// tables with fewer live tuples than that stay on TSS.
				if nmCycles := tables * gfNMCostPerTable * m.CyclesPerNMUnit; nmCycles < swCycles {
					swCycles = nmCycles
				}
			}
		} else {
			_, ok := mf.Lookup(pkt.Key, now)
			hit = ok
			tssProbes := int64(mf.TupleProbes() - prevMFProbes)
			prevMFProbes = mf.TupleProbes()
			swCycles = tssProbes * m.CyclesPerTupleProbe
			if cfg.Search == NM {
				// NuevoMatch is a hybrid: rules live in learned iSets
				// only where that beats scanning them in the TSS
				// remainder, so its cost never exceeds plain TSS.
				rmiUnits, deltaProbes := nm.lookupCost(pkt.Key)
				if nmCycles := rmiUnits*m.CyclesPerNMUnit + deltaProbes*m.CyclesPerTupleProbe; nmCycles < swCycles {
					swCycles = nmCycles
				}
			}
		}

		res.Packets++
		var latency int64
		if cfg.Offloaded {
			latency = m.HWHitNs
		} else {
			latency = m.SwCacheBaseNs + m.CyclesToNs(swCycles)
		}

		if hit {
			res.Hits++
			windowHits++
		} else {
			res.Misses++
			// Slowpath: full pipeline traversal, cache-rule generation,
			// installation. Charged to the flow's RSS core.
			core := int(rssHash(pkt.Key) % uint64(cfg.Cores))
			tr, err := w.Pipeline.Process(pkt.Key)
			if err != nil {
				return nil, fmt.Errorf("sim: slowpath: %v", err)
			}
			var br CycleBreakdown
			br.Pipeline = int64(tr.TuplesProbed)*m.CyclesPerTupleProbe + int64(tr.Len())*m.CyclesPerTableVisit
			if gf != nil {
				n := int64(tr.Len())
				br.Partition = n * n * int64(cfg.NumTables) * m.CyclesPerDPCell
				entries, err := gf.Insert(tr, now)
				if err != nil {
					res.InsertFailures++
				} else {
					br.RuleGen = int64(len(entries)) * m.CyclesPerRuleGen
				}
			} else {
				br.RuleGen = m.CyclesPerRuleGen
				if e := mf.Insert(tr, now); e == nil {
					res.InsertFailures++
				} else if nm != nil {
					nm.noteInsert(e, mf)
				}
			}
			res.Cycles.Add(br)
			res.PerCore[core].Misses++
			res.PerCore[core].Cycles += br.Total()
			if cfg.Offloaded {
				latency += m.PuntNs + m.SlowBaseNs + m.CyclesToNs(br.Total())
			} else {
				latency += m.SlowBaseNs + m.CyclesToNs(br.Total())
			}
		}
		res.Latency.Add(float64(latency))

		windowTotal++
		if cfg.SampleEveryNs > 0 && now-lastSample >= cfg.SampleEveryNs {
			if windowTotal > 0 {
				res.Series.Add(float64(now)/1e9, float64(windowHits)/float64(windowTotal))
			}
			windowHits, windowTotal = 0, 0
			lastSample = now
		}
	}

	if gf != nil {
		st := gf.Stats()
		res.Stalls = st.Stalls
		res.Entries = gf.Len()
		res.Coverage = gf.Coverage()
		if n := gf.Len(); n > 0 {
			var installs uint64
			for _, e := range gf.AllEntries() {
				installs += e.Installs
			}
			res.MeanSharing = float64(installs) / float64(n)
		}
	} else {
		res.Entries = mf.Len()
		res.Coverage = uint64(mf.Len())
		res.MeanSharing = 1
	}
	res.Throughput = computeThroughput(res, totalBytes, cfg.LineRateGbps, m)
	return res, nil
}

// rssHash mimics NIC RSS: a hash over the 5-tuple spreading flows across
// cores (FNV-1a over the tuple lanes).
func rssHash(k flow.Key) uint64 {
	h := uint64(14695981039346656037)
	for _, f := range []flow.FieldID{flow.FieldIPSrc, flow.FieldIPDst, flow.FieldIPProto, flow.FieldTpSrc, flow.FieldTpDst} {
		v := k.Get(f)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}
