package sim

import (
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/pipebench"
	"gigaflow/internal/traffic"
)

// BuildTrace generates a packet trace over a workload: numFlows flows with
// the given locality, expanded with CAIDA-style sizes and gaps.
func BuildTrace(w *pipebench.Workload, numFlows int, loc traffic.Locality, seed int64) []traffic.Packet {
	tcfg := traffic.Config{Seed: seed, NumFlows: numFlows}
	flows := w.Flows(tcfg, loc)
	return traffic.Expand(tcfg, flows)
}

// ConfigLatency is one row of the §6.3.6 deployment-latency comparison.
type ConfigLatency struct {
	Name      string
	LatencyNs int64
}

// LatencyTable returns the §6.3.6 per-configuration cache-hit latencies.
// The offload rows are produced by the device model; the CPU rows are the
// paper's measured constants for the corresponding OVS deployments.
func LatencyTable(m CostModel) []ConfigLatency {
	if m.CPUGHz == 0 {
		m = DefaultCostModel()
	}
	return []ConfigLatency{
		{Name: "OVS/Gigaflow-Offload (FPGA)", LatencyNs: m.HWHitNs},
		{Name: "OVS/Megaflow-Offload (FPGA)", LatencyNs: m.HWHitNs},
		{Name: "OVS/DPDK (host CPU)", LatencyNs: m.DPDKHostNs},
		{Name: "OVS/DPDK (BlueField ARM)", LatencyNs: m.DPDKARMNs},
		{Name: "OVS/Kernel (host)", LatencyNs: m.KernelHostNs},
		{Name: "OVS/Kernel (BlueField ARM)", LatencyNs: m.KernelARMNs},
	}
}

// RevalResult reports one cache's revalidation cost after a rule update
// (§6.3.6: Gigaflow revalidates ~2× faster than Megaflow because
// sub-traversals are shorter than full traversals and shared entries are
// validated once).
type RevalResult struct {
	Label   string
	Entries int
	Evicted int
	Work    int // pipeline table lookups replayed
	TimeMs  float64
}

// RevalidationExperiment fills a Gigaflow (numTables×tableCap) and a
// Megaflow (mfCap) cache with the workload's flows, perturbs the pipeline
// (forcing every entry to be re-derived), and measures full-cache
// revalidation cost under the model.
func RevalidationExperiment(w *pipebench.Workload, numFlows int, numTables, tableCap, mfCap int, m CostModel) (gfRes, mfRes RevalResult, err error) {
	if m.CPUGHz == 0 {
		m = DefaultCostModel()
	}
	gf := gigaflow.New(w.Pipeline, gigaflow.Config{NumTables: numTables, TableCapacity: tableCap})
	mf := megaflow.New(mfCap)
	trace := BuildTrace(w, numFlows, traffic.HighLocality, 7)
	for i := range trace {
		pkt := &trace[i]
		if r := gf.Lookup(pkt.Key, pkt.Time); !r.Hit {
			tr, perr := w.Pipeline.Process(pkt.Key)
			if perr != nil {
				return gfRes, mfRes, perr
			}
			gf.Insert(tr, pkt.Time)
			mf.Insert(tr, pkt.Time)
		} else if _, ok := mf.Lookup(pkt.Key, pkt.Time); !ok {
			tr, perr := w.Pipeline.Process(pkt.Key)
			if perr != nil {
				return gfRes, mfRes, perr
			}
			mf.Insert(tr, pkt.Time)
		}
	}

	// Perturb the pipeline: any rule change bumps the version, forcing a
	// full revalidation pass over both caches.
	perturbPipeline(w)

	gfEntries, mfEntries := gf.Len(), mf.Len()
	gfEv, gfWork := gf.Revalidate()
	mfEv, mfWork := mf.Revalidate(w.Pipeline)

	toMs := func(work int) float64 {
		return float64(m.CyclesToNs(int64(work)*m.CyclesPerRevalStep)) / 1e6
	}
	gfRes = RevalResult{Label: fmt.Sprintf("gigaflow(%dx%d)", numTables, tableCap),
		Entries: gfEntries, Evicted: gfEv, Work: gfWork, TimeMs: toMs(gfWork)}
	mfRes = RevalResult{Label: fmt.Sprintf("megaflow(%d)", mfCap),
		Entries: mfEntries, Evicted: mfEv, Work: mfWork, TimeMs: toMs(mfWork)}
	return gfRes, mfRes, nil
}

// perturbPipeline bumps the pipeline version with a benign rule so that
// revalidation must re-derive every cached entry (the common case after a
// controller pushes an update).
func perturbPipeline(w *pipebench.Workload) {
	first := w.Spec.Tables[0]
	m := flow.MatchAll().WithField(flow.FieldInPort, 0xfffe)
	w.Pipeline.MustAddRule(first.ID, m, 1, []flow.Action{flow.Drop()}, -1)
}
