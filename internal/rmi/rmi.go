// Package rmi implements a NuevoMatch-style learned packet classifier
// (Rashelbach, Rottenstreich, Silberstein; SIGCOMM '20 / NSDI '22): the
// Range-Query Recursive Model Index (RQ-RMI) search the paper evaluates as
// the "NM" alternative to Tuple Space Search (Fig. 17).
//
// Rules are partitioned into iSets — groups whose constraints on one
// selected field form non-overlapping value ranges. Each iSet gets a
// two-stage learned model (a root linear model dispatching into per-bucket
// linear models) that predicts a value's position in the iSet's sorted
// range array with a measured error bound; a lookup evaluates the model
// and validates only the rules inside the error window, falling back to
// binary search when the window fails to bracket the value. Rules that fit
// no iSet go to a TSS remainder. Lookup cost is O(#iSets · window +
// remainder tuples), essentially independent of rule count — the property
// Fig. 17's latency comparison relies on.
package rmi

import (
	"fmt"
	"sort"

	"gigaflow/internal/flow"
	"gigaflow/internal/tss"
)

// Entry is one classifier rule.
type Entry[T any] struct {
	Match    flow.Match
	Priority int
	Value    T
}

// interval is one rule's range on the selected field.
type interval[T any] struct {
	lo, hi uint64
	entry  *Entry[T]
}

// submodel is a linear model with a measured worst-case index error.
type submodel struct {
	slope, bias float64
	maxErr      int
}

func (m submodel) predict(x float64) int { return int(m.slope*x + m.bias) }

// iSet holds non-overlapping intervals over one field, sorted by lo, with
// a two-stage learned index over them.
type iSet[T any] struct {
	field     flow.FieldID
	intervals []interval[T]
	root      submodel
	leaves    []submodel
}

// Config parameterises classifier construction.
type Config struct {
	// Field restricts iSets to one dimension; when FieldSet is false every
	// candidate dimension is tried per iSet and the most discriminating
	// one wins (NuevoMatch's iSet partitioning, approximated per
	// dimension).
	Field flow.FieldID
	// FieldSet marks Field as explicitly configured (allows Field 0).
	FieldSet bool
	// MaxISets bounds the number of iSets; leftovers go to the TSS
	// remainder (default 4, as NuevoMatch typically needs 2–4).
	MaxISets int
	// Leaves is the number of second-stage models per iSet (default 64).
	Leaves int
}

func (c Config) withDefaults() Config {
	if c.MaxISets == 0 {
		c.MaxISets = 4
	}
	if c.Leaves == 0 {
		c.Leaves = 64
	}
	return c
}

// candidateFields are the dimensions iSets may be built over, in
// preference order for ties.
var candidateFields = []flow.FieldID{
	flow.FieldIPDst, flow.FieldIPSrc, flow.FieldTpDst, flow.FieldTpSrc,
	flow.FieldEthDst, flow.FieldEthSrc, flow.FieldInPort,
}

// Classifier is an immutable learned classifier built from a rule
// snapshot. Unlike TSS it does not support incremental updates — real
// NuevoMatch retrains in the background; callers rebuild on rule changes.
type Classifier[T any] struct {
	cfg       Config
	isets     []*iSet[T]
	remainder *tss.Classifier[*Entry[T]]
	total     int

	// Lookups and Cost accumulate per-lookup work (model evaluations,
	// window validations, binary-search steps, remainder tuple probes) for
	// the latency model.
	Lookups uint64
	Cost    uint64
}

// Build constructs a classifier from the given entries.
func Build[T any](entries []*Entry[T], cfg Config) *Classifier[T] {
	cfg = cfg.withDefaults()
	c := &Classifier[T]{cfg: cfg, remainder: tss.New[*Entry[T]](), total: len(entries)}

	fields := candidateFields
	if cfg.FieldSet || cfg.Field != 0 {
		fields = []flow.FieldID{cfg.Field}
	}

	remaining := make([]*Entry[T], 0, len(entries))
	for _, e := range entries {
		e.Match = e.Match.Normalize()
		remaining = append(remaining, e)
	}

	// Greedy iSet extraction: each round, evaluate every candidate field
	// and keep the one yielding the largest non-overlapping interval
	// subset — the dimension that best discriminates the remaining rules.
	for len(remaining) > 0 && len(c.isets) < cfg.MaxISets {
		var bestTaken []interval[T]
		var bestRest []*Entry[T]
		var bestField flow.FieldID
		for _, f := range fields {
			taken, rest := extractISet(remaining, f)
			if len(taken) > len(bestTaken) {
				bestTaken, bestRest, bestField = taken, rest, f
			}
		}
		if len(bestTaken) <= 1 {
			break // no dimension separates what's left; TSS handles it
		}
		s := &iSet[T]{field: bestField, intervals: bestTaken}
		s.train(cfg.Leaves)
		c.isets = append(c.isets, s)
		remaining = bestRest
	}
	for _, e := range remaining {
		c.remainder.Insert(&tss.Entry[*Entry[T]]{Match: e.Match, Priority: e.Priority, Value: e})
	}
	return c
}

// extractISet sweeps entries sorted by their interval on f, taking a
// maximal non-overlapping subset. Entries whose constraint on f is absent
// (wildcard, which would be a poisonous full-range interval) or not
// range-expressible are left in the rest.
func extractISet[T any](entries []*Entry[T], f flow.FieldID) (taken []interval[T], rest []*Entry[T]) {
	ivs := make([]interval[T], 0, len(entries))
	for _, e := range entries {
		iv, ok := toInterval(e, f)
		if !ok {
			rest = append(rest, e)
			continue
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].hi != ivs[j].hi {
			return ivs[i].hi < ivs[j].hi // classic interval scheduling: by right edge
		}
		return ivs[i].lo < ivs[j].lo
	})
	first := true
	var lastHi uint64
	for _, iv := range ivs {
		if first || iv.lo > lastHi {
			taken = append(taken, iv)
			lastHi = iv.hi
			first = false
		} else {
			rest = append(rest, iv.entry)
		}
	}
	return taken, rest
}

// toInterval converts a rule's constraint on field f to a closed interval.
// Exact matches and prefix (LPM-style) masks are range-expressible;
// wildcards (full-range, they would overlap everything) and other ternary
// masks are not.
func toInterval[T any](e *Entry[T], f flow.FieldID) (interval[T], bool) {
	mask := e.Match.Mask[f]
	if mask == 0 {
		return interval[T]{}, false
	}
	n := 0
	for v := mask; v != 0; v &= v - 1 {
		n++
	}
	if mask != flow.PrefixMask0(f.Width(), uint(n)) {
		return interval[T]{}, false
	}
	lo := e.Match.Key[f] & mask
	hi := lo | (f.MaxValue() &^ mask)
	return interval[T]{lo: lo, hi: hi, entry: e}, true
}

// train fits the two-stage model and measures per-leaf error bounds.
func (s *iSet[T]) train(nLeaves int) {
	n := len(s.intervals)
	if n == 0 {
		return
	}
	if nLeaves > n {
		nLeaves = n
	}
	s.root = fitLinear(s.intervals, 0, n, float64(nLeaves)/float64(n))
	s.leaves = make([]submodel, nLeaves)
	leafOf := func(i int) int {
		return clamp(s.root.predict(float64(s.intervals[i].lo)), 0, nLeaves-1)
	}
	start := 0
	for leaf := 0; leaf < nLeaves; leaf++ {
		end := start
		for end < n && leafOf(end) == leaf {
			end++
		}
		if end > start {
			m := fitLinear(s.intervals, start, end, 1)
			for i := start; i < end; i++ {
				if d := absInt(m.predict(float64(s.intervals[i].lo)) - i); d > m.maxErr {
					m.maxErr = d
				}
			}
			s.leaves[leaf] = m
		}
		start = end
	}
}

// fitLinear least-squares fits index·scale against lo over [start, end),
// clamping the slope to be non-negative (keys are sorted, predictions must
// be monotone).
func fitLinear[T any](ivs []interval[T], start, end int, scale float64) submodel {
	n := float64(end - start)
	if n <= 1 {
		idx := 0.0
		if end > start {
			idx = float64(start) * scale
		}
		return submodel{bias: idx}
	}
	var sx, sy, sxx, sxy float64
	for i := start; i < end; i++ {
		x := float64(ivs[i].lo)
		y := float64(i) * scale
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return submodel{bias: sy / n}
	}
	slope := (n*sxy - sx*sy) / denom
	if slope < 0 {
		slope = 0
	}
	return submodel{slope: slope, bias: (sy - slope*sx) / n}
}

// lookup finds the iSet rule whose interval contains v and whose full
// match covers k. Returns the entry (or nil) and the work performed.
func (s *iSet[T]) lookup(v uint64, k flow.Key) (*Entry[T], int) {
	n := len(s.intervals)
	if n == 0 {
		return nil, 0
	}
	cost := 2 // root + leaf model evaluations
	leaf := clamp(s.root.predict(float64(v)), 0, len(s.leaves)-1)
	m := s.leaves[leaf]
	idx := clamp(m.predict(float64(v)), 0, n-1)
	w := m.maxErr + 1
	lo, hi := clamp(idx-w, 0, n-1), clamp(idx+w, 0, n-1)

	// The target position is the last interval with lo ≤ v. Trust the
	// window only when it provably brackets that position.
	bracketed := (lo == 0 || s.intervals[lo].lo <= v) && (hi == n-1 || s.intervals[hi+1].lo > v)
	var pos int
	if bracketed {
		pos = lo - 1
		for i := lo; i <= hi && s.intervals[i].lo <= v; i++ {
			pos = i
			cost++
		}
	} else {
		// Model miss: fall back to binary search over the whole iSet.
		pos = sort.Search(n, func(i int) bool { return s.intervals[i].lo > v }) - 1
		cost += log2ceil(n)
	}
	if pos < 0 {
		return nil, cost
	}
	iv := s.intervals[pos]
	cost++ // validation
	if v <= iv.hi && iv.entry.Match.Matches(k) {
		return iv.entry, cost
	}
	return nil, cost
}

// Lookup returns the highest-priority entry matching k and the work
// performed (for cost modelling).
func (c *Classifier[T]) Lookup(k flow.Key) (*Entry[T], int) {
	c.Lookups++
	var best *Entry[T]
	cost := 0
	for _, s := range c.isets {
		e, cc := s.lookup(k.Get(s.field), k)
		cost += cc
		if e != nil && (best == nil || e.Priority > best.Priority) {
			best = e
		}
	}
	re, probes := c.remainder.Lookup(k)
	cost += probes
	if re != nil && (best == nil || re.Value.Priority > best.Priority) {
		best = re.Value
	}
	c.Cost += uint64(cost)
	return best, cost
}

// NumISets reports how many iSets were extracted.
func (c *Classifier[T]) NumISets() int { return len(c.isets) }

// RemainderSize reports how many rules fell back to the TSS remainder.
func (c *Classifier[T]) RemainderSize() int { return c.remainder.Len() }

// Len reports the total rule count.
func (c *Classifier[T]) Len() int { return c.total }

// MaxError reports the largest per-leaf error bound across iSets — the
// bounded-error property of RQ-RMI.
func (c *Classifier[T]) MaxError() int {
	max := 0
	for _, s := range c.isets {
		for _, m := range s.leaves {
			if m.maxErr > max {
				max = m.maxErr
			}
		}
	}
	return max
}

// String summarises the classifier shape.
func (c *Classifier[T]) String() string {
	return fmt.Sprintf("rmi(%d rules, %d isets, %d remainder, maxErr %d)",
		c.total, len(c.isets), c.remainder.Len(), c.MaxError())
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
