package rmi

import (
	"math/rand"
	"testing"

	"gigaflow/internal/classbench"
	"gigaflow/internal/flow"
)

func prefixEntry(addr uint64, plen uint, prio, val int) *Entry[int] {
	m := flow.MatchAll().WithMaskedField(flow.FieldIPDst, addr, flow.PrefixMask(flow.FieldIPDst, plen))
	return &Entry[int]{Match: m, Priority: prio, Value: val}
}

func TestLookupBasicLPM(t *testing.T) {
	entries := []*Entry[int]{
		prefixEntry(0x0a000000, 8, 1, 1),  // 10/8
		prefixEntry(0x0a010000, 16, 2, 2), // 10.1/16
		prefixEntry(0x0a010200, 24, 3, 3), // 10.1.2/24
		prefixEntry(0x0b000000, 8, 1, 4),  // 11/8
	}
	c := Build(entries, Config{})
	cases := []struct {
		ip   uint64
		want int
	}{
		{0x0a010203, 3},
		{0x0a010300, 2},
		{0x0a090000, 1},
		{0x0b123456, 4},
	}
	for _, tc := range cases {
		e, _ := c.Lookup(flow.Key{}.With(flow.FieldIPDst, tc.ip))
		if e == nil || e.Value != tc.want {
			t.Errorf("ip %#x: got %v, want value %d", tc.ip, e, tc.want)
		}
	}
	if e, _ := c.Lookup(flow.Key{}.With(flow.FieldIPDst, 0x0c000000)); e != nil {
		t.Errorf("expected miss, got %v", e)
	}
}

func TestNonContiguousMaskGoesToRemainder(t *testing.T) {
	weird := &Entry[int]{
		Match:    flow.NewMatch(flow.Key{}.With(flow.FieldIPDst, 0x01000001), flow.Mask{}.With(flow.FieldIPDst, 0xff0000ff)),
		Priority: 5, Value: 9,
	}
	c := Build([]*Entry[int]{weird, prefixEntry(0x0a000000, 8, 1, 1), prefixEntry(0x0b000000, 8, 1, 2)}, Config{})
	// The non-contiguous mask cannot join an iSet; it must live in the
	// remainder and still be found.
	if c.RemainderSize() < 1 {
		t.Fatalf("remainder = %d, want >= 1", c.RemainderSize())
	}
	e, _ := c.Lookup(flow.Key{}.With(flow.FieldIPDst, 0x01aabb01))
	if e == nil || e.Value != 9 {
		t.Errorf("remainder rule not found: %v", e)
	}
	if e, _ := c.Lookup(flow.Key{}.With(flow.FieldIPDst, 0x0b000005)); e == nil || e.Value != 2 {
		t.Errorf("iSet rule not found: %v", e)
	}
}

func TestAgainstLinearScanOnClassbench(t *testing.T) {
	rules := classbench.Generate(classbench.Config{Personality: classbench.ACL, Seed: 3, NumRules: 5000})
	entries := make([]*Entry[int], len(rules))
	for i, r := range rules {
		entries[i] = &Entry[int]{Match: r.Match, Priority: r.Priority, Value: i}
	}
	c := Build(entries, Config{})
	if c.Len() != len(rules) {
		t.Fatalf("Len = %d", c.Len())
	}

	rng := rand.New(rand.NewSource(4))
	linear := func(k flow.Key) *Entry[int] {
		var best *Entry[int]
		for _, e := range entries {
			if e.Match.Matches(k) && (best == nil || e.Priority > best.Priority) {
				best = e
			}
		}
		return best
	}
	for trial := 0; trial < 3000; trial++ {
		// Half the probes target a rule; half are random.
		var k flow.Key
		if trial%2 == 0 {
			k = classbench.SampleKey(rules[rng.Intn(len(rules))], rng)
		} else {
			k = flow.Key{}.
				With(flow.FieldIPDst, rng.Uint64()).
				With(flow.FieldIPSrc, rng.Uint64()).
				With(flow.FieldIPProto, 6).
				With(flow.FieldTpDst, uint64(rng.Intn(1000)))
		}
		want := linear(k)
		got, _ := c.Lookup(k)
		switch {
		case want == nil && got != nil:
			t.Fatalf("key %s: rmi hit %v, linear miss", k, got.Match)
		case want != nil && got == nil:
			t.Fatalf("key %s: rmi miss, linear hit %v", k, want.Match)
		case want != nil && got.Priority != want.Priority:
			t.Fatalf("key %s: rmi prio %d, linear prio %d", k, got.Priority, want.Priority)
		}
	}
}

func TestCostIndependentOfRuleCount(t *testing.T) {
	costAt := func(n int) float64 {
		rules := classbench.Generate(classbench.Config{Personality: classbench.ACL, Seed: 5, NumRules: n})
		entries := make([]*Entry[int], len(rules))
		for i, r := range rules {
			entries[i] = &Entry[int]{Match: r.Match, Priority: r.Priority, Value: i}
		}
		c := Build(entries, Config{})
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 2000; i++ {
			c.Lookup(classbench.SampleKey(rules[rng.Intn(len(rules))], rng))
		}
		return float64(c.Cost) / float64(c.Lookups)
	}
	small, large := costAt(1000), costAt(20000)
	// A 20× larger ruleset must not cost anywhere near 20× more per
	// lookup; allow generous slack for window growth.
	if large > small*6 {
		t.Errorf("cost scaled with rules: %.1f -> %.1f", small, large)
	}
}

func TestErrorBoundRespected(t *testing.T) {
	// Adversarially clustered keys: prediction errors exist but must be
	// bounded and honoured (every training key found via its window or
	// the binary-search fallback — verified by exact lookups).
	var entries []*Entry[int]
	v := uint64(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		if i%100 == 0 {
			v += uint64(rng.Intn(1 << 20)) // jumps create model error
		}
		v += uint64(1 + rng.Intn(3))
		entries = append(entries, &Entry[int]{
			Match:    flow.MatchAll().WithField(flow.FieldIPDst, v),
			Priority: 1, Value: i,
		})
	}
	c := Build(entries, Config{})
	for _, e := range entries {
		got, _ := c.Lookup(e.Match.Key)
		if got == nil || got.Value != e.Value {
			t.Fatalf("exact-match rule for %#x not found (got %v)", e.Match.Key[flow.FieldIPDst], got)
		}
	}
	if c.MaxError() < 0 {
		t.Error("negative error bound")
	}
}

func TestISetsNonOverlapping(t *testing.T) {
	rules := classbench.Generate(classbench.Config{Personality: FWPersonality(), Seed: 8, NumRules: 3000})
	entries := make([]*Entry[int], len(rules))
	for i, r := range rules {
		entries[i] = &Entry[int]{Match: r.Match, Priority: r.Priority, Value: i}
	}
	c := Build(entries, Config{MaxISets: 4})
	if c.NumISets() == 0 || c.NumISets() > 4 {
		t.Fatalf("isets = %d", c.NumISets())
	}
	for si, s := range c.isets {
		for i := 1; i < len(s.intervals); i++ {
			if s.intervals[i].lo <= s.intervals[i-1].hi {
				t.Fatalf("iset %d: overlapping intervals at %d", si, i)
			}
		}
	}
	// Everything must be somewhere.
	inISets := 0
	for _, s := range c.isets {
		inISets += len(s.intervals)
	}
	if inISets+c.RemainderSize() != len(entries) {
		t.Errorf("%d in isets + %d remainder != %d rules", inISets, c.RemainderSize(), len(entries))
	}
}

// FWPersonality avoids importing classbench constants twice in the test
// body above.
func FWPersonality() classbench.Personality { return classbench.FW }

func TestEmptyAndTinyBuilds(t *testing.T) {
	c := Build[int](nil, Config{})
	if e, _ := c.Lookup(flow.Key{}); e != nil {
		t.Error("empty classifier must miss")
	}
	one := Build([]*Entry[int]{prefixEntry(0x0a000000, 8, 1, 1)}, Config{})
	if e, _ := one.Lookup(flow.Key{}.With(flow.FieldIPDst, 0x0a000001)); e == nil || e.Value != 1 {
		t.Error("single-rule classifier broken")
	}
	if one.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfiguredField(t *testing.T) {
	entries := []*Entry[int]{
		{Match: flow.MatchAll().WithField(flow.FieldTpDst, 80), Priority: 1, Value: 1},
		{Match: flow.MatchAll().WithField(flow.FieldTpDst, 443), Priority: 1, Value: 2},
	}
	c := Build(entries, Config{Field: flow.FieldTpDst, FieldSet: true})
	e, _ := c.Lookup(flow.Key{}.With(flow.FieldTpDst, 443))
	if e == nil || e.Value != 2 {
		t.Errorf("got %v", e)
	}
}

func BenchmarkRMILookup(b *testing.B) {
	rules := classbench.Generate(classbench.Config{Personality: classbench.ACL, Seed: 9, NumRules: 20000})
	entries := make([]*Entry[int], len(rules))
	for i, r := range rules {
		entries[i] = &Entry[int]{Match: r.Match, Priority: r.Priority, Value: i}
	}
	c := Build(entries, Config{})
	rng := rand.New(rand.NewSource(10))
	keys := make([]flow.Key, 1024)
	for i := range keys {
		keys[i] = classbench.SampleKey(rules[rng.Intn(len(rules))], rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}
