package megaflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// diffPipeline builds a 3-table pipeline with overlapping prefixes and a
// default path so every key terminates: the cached megaflows carry
// diverse masks (many TSS tuples) over the flowtable substrate.
func diffPipeline() *pipeline.Pipeline {
	p := pipeline.New("mf-diff")
	p.AddTable(0, "l3", flow.NewFieldSet(flow.FieldIPDst))
	p.AddTable(1, "proto", flow.NewFieldSet(flow.FieldIPProto))
	p.AddTable(2, "acl", flow.NewFieldSet(flow.FieldTpDst))
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=10.0.0.0/24"), 30,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0x0b)}, 1)
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=10.0.0.0/16"), 20,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0x0c)}, 1)
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=10.0.0.0/8"), 10, nil, 1)
	p.MustAddRule(1, flow.MustParseMatch("ip_proto=6"), 10, nil, 2)
	p.MustAddRule(1, flow.MustParseMatch("ip_proto=17"), 10, []flow.Action{flow.Output(9)}, pipeline.NoTable)
	p.MustAddRule(2, flow.MustParseMatch("tp_dst=80"), 20, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	p.MustAddRule(2, flow.MustParseMatch("tp_dst=443"), 10, []flow.Action{flow.Output(2)}, pipeline.NoTable)
	return p
}

func diffKey(rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldIPDst, 0x0a000000|uint64(rng.Intn(4))<<16|uint64(rng.Intn(4))<<8|uint64(rng.Intn(8))).
		With(flow.FieldIPProto, []uint64{6, 6, 17}[rng.Intn(3)]).
		With(flow.FieldTpDst, []uint64{80, 443, 8080}[rng.Intn(3)])
}

// scanMatch is the semantic reference for the megaflow backend: a linear
// scan over the cache's resident entries. Entries are pairwise disjoint,
// so a key matches at most one; the scan is independent of the classifier
// substrate (tuple staging, flowtable probing) entirely.
func scanMatch(t *testing.T, entries []*Entry, k flow.Key) *Entry {
	t.Helper()
	var found *Entry
	for _, e := range entries {
		if e.Match.Matches(k) {
			if found != nil {
				t.Fatalf("disjointness violated: key %s matches %v and %v", k, found.Match, e.Match)
			}
			found = e
		}
	}
	return found
}

// TestDifferentialAgainstLinearScan drives the megaflow backend through a
// randomized lookup/insert/expire workload and checks every observable
// against linear-scan predictions made from the entry set BEFORE each
// operation: hit/miss outcomes, the matched entry identity, the mask
// census, and every Stats counter, bit for bit.
func TestDifferentialAgainstLinearScan(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := diffPipeline()
		c := New(48)
		var shadow Stats
		var now int64
		for step := 0; step < 4000; step++ {
			now++
			resident := c.Entries()
			switch op := rng.Intn(30); {
			case op < 24: // lookup; install the traversal on a miss
				k := diffKey(rng)
				want := scanMatch(t, resident, k)
				e, ok := c.Lookup(k, now)
				if ok != (want != nil) || e != want {
					t.Fatalf("seed %d step %d: Lookup(%s) = (%v,%v), linear scan %v",
						seed, step, k, e, ok, want)
				}
				if ok {
					shadow.Hits++
				} else {
					shadow.Misses++
					tr := p.MustProcess(k)
					if len(resident) >= c.Capacity() {
						shadow.EvictLRU++
					}
					if ent := c.Insert(tr, now); ent == nil {
						t.Fatalf("seed %d step %d: insert rejected with eviction enabled", seed, step)
					}
					shadow.Inserts++
					// The fresh entry must win an immediate re-scan.
					if got := scanMatch(t, c.Entries(), k); got == nil {
						t.Fatalf("seed %d step %d: inserted megaflow does not cover %s", seed, step, k)
					}
				}
			case op < 29: // re-insert the megaflow of a covered key: Replaced path
				if len(resident) == 0 {
					continue
				}
				parent := resident[rng.Intn(len(resident))].Parent
				tr := p.MustProcess(parent)
				shadow.Replaced++
				shadow.Inserts++
				if ent := c.Insert(tr, now); ent == nil {
					t.Fatalf("seed %d step %d: replacement insert failed", seed, step)
				}
			default: // expire a random idle horizon
				maxIdle := int64(rng.Intn(300))
				want := 0
				for _, e := range resident {
					if now-e.LastHit > maxIdle {
						want++
					}
				}
				if n := c.ExpireIdle(now, maxIdle); n != want {
					t.Fatalf("seed %d step %d: ExpireIdle=%d, linear scan %d", seed, step, n, want)
				}
				shadow.Expired += uint64(want)
			}
			if st := c.Stats(); st != shadow {
				t.Fatalf("seed %d step %d: stats %+v, shadow %+v", seed, step, st, shadow)
			}
			masks := map[flow.Mask]bool{}
			for _, e := range c.Entries() {
				masks[e.Match.Mask] = true
			}
			if c.NumMasks() != len(masks) {
				t.Fatalf("seed %d step %d: NumMasks=%d, census %d", seed, step, c.NumMasks(), len(masks))
			}
		}
	}
}

// TestDifferentialNoEvictRejects pins the Rejected counter: with LRU
// eviction disabled, inserts beyond capacity must refuse and count,
// leaving the resident set untouched.
func TestDifferentialNoEvictRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := diffPipeline()
	c := New(4, WithNoLRUEviction())
	var shadow Stats
	var now int64
	for step := 0; step < 500; step++ {
		now++
		k := diffKey(rng)
		before := c.Entries()
		want := scanMatch(t, before, k)
		_, ok := c.Lookup(k, now)
		if ok != (want != nil) {
			t.Fatalf("step %d: Lookup ok=%v scan=%v", step, ok, want != nil)
		}
		if ok {
			shadow.Hits++
		} else {
			shadow.Misses++
			ent := c.Insert(p.MustProcess(k), now)
			shadow.Inserts++
			if len(before) >= 4 {
				if ent != nil {
					t.Fatalf("step %d: insert succeeded on a full no-evict cache", step)
				}
				shadow.Inserts--
				shadow.Rejected++
				if c.Len() != len(before) {
					t.Fatalf("step %d: rejected insert changed Len", step)
				}
			} else if ent == nil {
				t.Fatalf("step %d: insert failed below capacity", step)
			}
		}
		if st := c.Stats(); st != shadow {
			t.Fatalf("step %d: stats %+v, shadow %+v", step, st, shadow)
		}
	}
	if shadow.Rejected == 0 {
		t.Fatal("workload never exercised the Rejected path")
	}
}
