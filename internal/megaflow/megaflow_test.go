package megaflow

import (
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// testPipeline builds a 2-table pipeline: L3 routing then ACL.
func testPipeline() *pipeline.Pipeline {
	p := pipeline.New("mf-test")
	p.AddTable(0, "l3", flow.NewFieldSet(flow.FieldIPDst))
	p.AddTable(1, "acl", flow.NewFieldSet(flow.FieldTpDst))
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=10.0.0.0/24"), 10,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0xbb)}, 1)
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=10.1.0.0/24"), 10,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0xcc)}, 1)
	p.MustAddRule(1, flow.MustParseMatch("tp_dst=80"), 10, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	p.MustAddRule(1, flow.MustParseMatch("tp_dst=443"), 5, []flow.Action{flow.Output(2)}, pipeline.NoTable)
	return p
}

func key(ipLow, port uint64) flow.Key {
	return flow.Key{}.
		With(flow.FieldIPDst, 0x0a000000|ipLow).
		With(flow.FieldTpDst, port)
}

func TestInsertThenHit(t *testing.T) {
	p := testPipeline()
	c := New(16)
	k := key(5, 80)
	tr := p.MustProcess(k)
	if ent := c.Insert(tr, 0); ent == nil {
		t.Fatal("insert failed")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}

	// Same megaflow, different host in the /24 and same port: must hit.
	e, ok := c.Lookup(key(9, 80), 1)
	if !ok {
		t.Fatal("expected wildcard hit")
	}
	final, v := e.Apply(key(9, 80))
	if v.Kind != flow.VerdictOutput || v.Port != 1 {
		t.Fatalf("verdict = %v", v)
	}
	if final.Get(flow.FieldEthDst) != 0xbb {
		t.Error("commit rewrite missing")
	}
	if e.Hits != 1 || e.LastHit != 1 {
		t.Errorf("hit bookkeeping: hits=%d last=%d", e.Hits, e.LastHit)
	}

	// Different port: miss.
	if _, ok := c.Lookup(key(5, 8080), 2); ok {
		t.Error("expected miss for different ACL path")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestCachedResultMatchesSlowpath(t *testing.T) {
	p := testPipeline()
	c := New(64)
	keys := []flow.Key{key(1, 80), key(2, 443), key(0x100+3, 80), key(4, 9999)}
	for _, k := range keys {
		c.Insert(p.MustProcess(k), 0)
	}
	for _, k := range keys {
		e, ok := c.Lookup(k, 0)
		if !ok {
			t.Fatalf("no hit for %s", k)
		}
		final, v := e.Apply(k)
		tr := p.MustProcess(k)
		if v != tr.Verdict || final != tr.FinalKey() {
			t.Fatalf("cache result diverges for %s: %v/%s vs %v/%s", k, v, final, tr.Verdict, tr.FinalKey())
		}
	}
}

func TestReplaceSamePredicate(t *testing.T) {
	p := testPipeline()
	c := New(16)
	c.Insert(p.MustProcess(key(5, 80)), 0)
	c.Insert(p.MustProcess(key(6, 80)), 1) // same /24, same port -> same megaflow
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replacement)", c.Len())
	}
	if c.Stats().Replaced != 1 {
		t.Errorf("Replaced = %d", c.Stats().Replaced)
	}
}

func TestLRUEvictionOnFull(t *testing.T) {
	p := testPipeline()
	c := New(2)
	c.Insert(p.MustProcess(key(1, 80)), 0)   // A
	c.Insert(p.MustProcess(key(1, 443)), 1)  // B
	c.Lookup(key(1, 80), 2)                  // touch A; B becomes LRU
	c.Insert(p.MustProcess(key(1, 9999)), 3) // C evicts B
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Peek(key(1, 443)); ok {
		t.Error("B should have been evicted")
	}
	if _, ok := c.Peek(key(1, 80)); !ok {
		t.Error("A should survive")
	}
	if c.Stats().EvictLRU != 1 {
		t.Errorf("EvictLRU = %d", c.Stats().EvictLRU)
	}
}

func TestNoEvictionOptionRejects(t *testing.T) {
	p := testPipeline()
	c := New(1, WithNoLRUEviction())
	if c.Insert(p.MustProcess(key(1, 80)), 0) == nil {
		t.Fatal("first insert must succeed")
	}
	if c.Insert(p.MustProcess(key(1, 443)), 1) != nil {
		t.Fatal("insert into full cache must fail")
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", c.Stats().Rejected)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestExpireIdle(t *testing.T) {
	p := testPipeline()
	c := New(16)
	c.Insert(p.MustProcess(key(1, 80)), 0)
	c.Insert(p.MustProcess(key(1, 443)), 0)
	c.Lookup(key(1, 80), 100) // keep the first entry fresh
	n := c.ExpireIdle(150, 100)
	if n != 1 || c.Len() != 1 {
		t.Fatalf("expired %d, len %d", n, c.Len())
	}
	if _, ok := c.Peek(key(1, 80)); !ok {
		t.Error("fresh entry must survive")
	}
	if c.Stats().Expired != 1 {
		t.Errorf("Expired = %d", c.Stats().Expired)
	}
}

func TestRevalidationEvictsStale(t *testing.T) {
	p := testPipeline()
	c := New(16)
	c.Insert(p.MustProcess(key(1, 80)), 0)
	c.Insert(p.MustProcess(key(1, 443)), 0)

	// No change: nothing evicted, no work (version fast-path).
	ev, work := c.Revalidate(p)
	if ev != 0 || work != 0 {
		t.Fatalf("clean revalidation: evicted=%d work=%d", ev, work)
	}

	// Change the ACL rule for port 80: its megaflow must be revoked.
	old := p.Table(1).Rules()[0] // tp_dst=80, priority 10
	if !p.DeleteRule(old) {
		t.Fatal("delete failed")
	}
	p.MustAddRule(1, flow.MustParseMatch("tp_dst=80"), 10, []flow.Action{flow.Output(7)}, pipeline.NoTable)

	ev, work = c.Revalidate(p)
	if ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}
	if work == 0 {
		t.Error("revalidation must report work")
	}
	if _, ok := c.Peek(key(1, 80)); ok {
		t.Error("stale entry survived revalidation")
	}
	if _, ok := c.Peek(key(1, 443)); !ok {
		t.Error("valid entry must survive revalidation")
	}
	if c.Stats().Revoked != 1 {
		t.Errorf("Revoked = %d", c.Stats().Revoked)
	}

	// Entries surviving revalidation are re-stamped: immediate re-run skips.
	_, work = c.Revalidate(p)
	if work != 0 {
		t.Errorf("second revalidation should be free, work=%d", work)
	}
}

func TestMegaflowEntriesDisjoint(t *testing.T) {
	// Entries built from distinct traversals never both match one packet.
	p := testPipeline()
	c := New(256)
	var probes []flow.Key
	for ip := uint64(0); ip < 8; ip++ {
		for _, port := range []uint64{80, 443, 1234} {
			k := key(ip, port)
			probes = append(probes, k, key(0x100+ip, port))
			c.Insert(p.MustProcess(k), 0)
			c.Insert(p.MustProcess(key(0x100+ip, port)), 0)
		}
	}
	entries := c.Entries()
	for _, k := range probes {
		n := 0
		for _, e := range entries {
			if e.Match.Matches(k) {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("key %s matches %d megaflow entries", k, n)
		}
	}
}

func TestEntriesAndNumMasks(t *testing.T) {
	p := testPipeline()
	c := New(16)
	c.Insert(p.MustProcess(key(1, 80)), 0)
	c.Insert(p.MustProcess(key(1, 443)), 0)
	if len(c.Entries()) != 2 {
		t.Errorf("Entries = %d", len(c.Entries()))
	}
	if c.NumMasks() < 1 {
		t.Errorf("NumMasks = %d", c.NumMasks())
	}
	if c.Capacity() != 16 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New(0)
}
