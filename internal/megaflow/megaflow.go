// Package megaflow implements the single-lookup wildcard flow cache that
// Open vSwitch uses as its second-level cache and that the paper treats as
// the state-of-the-art baseline (a Gigaflow configuration with K=1).
//
// Each entry is the composition of one complete pipeline traversal: a match
// over the original packet headers, the set-field commit, and the terminal
// verdict. Entries generated via pipeline.Traversal.Compose are pairwise
// disjoint by construction (the unwildcarding bits guarantee a packet can
// match at most one entry), so lookups need no priorities.
package megaflow

import (
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
	"gigaflow/internal/tss"
)

// Entry is one cached megaflow rule.
type Entry struct {
	Match   flow.Match
	Commit  []flow.Action // header rewrites accumulated over the traversal
	Verdict flow.Verdict
	// Parent is the flow signature whose traversal generated the entry;
	// revalidation replays it through the pipeline.
	Parent flow.Key
	// TraversalLen is the number of pipeline tables the parent traversal
	// spanned; revalidation work is proportional to it.
	TraversalLen int
	// Version is the pipeline version the entry was validated against.
	Version uint64
	// CtConn and CtEpoch tie a connection-dependent entry (one whose
	// traversal resolved a NAT action) to the connection state it was
	// built under; CtEpoch zero means connection-independent. The
	// datapath validates the pair against the conntrack table on hit.
	CtConn  flow.Key
	CtEpoch uint64

	Hits    uint64
	LastHit int64 // virtual time of last hit (or creation)
	Created int64

	prev, next *Entry // LRU list, most-recent at front
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Inserts   uint64 `json:"inserts"`
	Replaced  uint64 `json:"replaced"`   // insert found an identical predicate already cached
	Rejected  uint64 `json:"rejected"`   // insert refused because the cache was full
	EvictLRU  uint64 `json:"evict_lru"`  // removed by capacity pressure
	Expired   uint64 `json:"expired"`    // removed by idle timeout
	Revoked   uint64 `json:"revoked"`    // removed by revalidation
	RevalWork uint64 `json:"reval_work"` // pipeline table lookups spent revalidating
	CtInvalid uint64 `json:"ct_invalid"` // removed by conntrack epoch invalidation
}

// HitRate returns Hits / (Hits+Misses), or 0 when idle.
func (s *Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a capacity-bounded megaflow cache.
type Cache struct {
	capacity    int
	evictOnFull bool
	cls         *tss.Classifier[*Entry]
	lruHead     *Entry
	lruTail     *Entry
	stats       Stats
}

// Option configures a Cache.
type Option func(*Cache)

// WithNoLRUEviction makes inserts fail when the cache is full instead of
// evicting the least-recently-used entry.
func WithNoLRUEviction() Option {
	return func(c *Cache) { c.evictOnFull = false }
}

// New creates a megaflow cache holding at most capacity entries.
func New(capacity int, opts ...Option) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("megaflow: bad capacity %d", capacity))
	}
	c := &Cache{capacity: capacity, evictOnFull: true, cls: tss.New[*Entry]()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Len reports the number of cached entries.
func (c *Cache) Len() int { return c.cls.Len() }

// Capacity reports the entry limit.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats { return c.stats }

// NumMasks reports the number of distinct masks (TSS tuples); lookup cost
// is proportional to it.
func (c *Cache) NumMasks() int { return c.cls.NumTuples() }

// TupleProbes reports the cumulative TSS tuple probes across all lookups —
// the software search work a CPU-resident cache would spend (Fig. 17's
// TSS cost).
func (c *Cache) TupleProbes() uint64 { return c.cls.Probes }

// Snapshot bundles the cache's counters and occupancy for telemetry
// export. Not safe for concurrent use with cache mutation; call from the
// goroutine driving the cache.
type Snapshot struct {
	Stats
	Len         int    `json:"len"`
	Capacity    int    `json:"capacity"`
	Masks       int    `json:"masks"` // distinct TSS tuples
	TupleProbes uint64 `json:"tuple_probes"`
}

// Snapshot captures the cache's current telemetry view.
func (c *Cache) Snapshot() Snapshot {
	return Snapshot{Stats: c.stats, Len: c.Len(), Capacity: c.capacity,
		Masks: c.NumMasks(), TupleProbes: c.TupleProbes()}
}

// Lookup finds the entry matching k, updating hit/miss statistics and LRU
// position. The second result reports whether the lookup hit.
//
//gf:hotpath
func (c *Cache) Lookup(k flow.Key, now int64) (*Entry, bool) {
	return c.lookupStats(k, now, &c.stats)
}

// lookupStats is the Lookup body with its counter destination injected:
// &c.stats for single lookups, a batch-local accumulator for BatchLookup.
// Entry hit counts and LRU position always update per packet; only the
// cache-wide counters are redirected.
//
//gf:hotpath
func (c *Cache) lookupStats(k flow.Key, now int64, s *Stats) (*Entry, bool) {
	e, _ := c.cls.Lookup(k)
	if e == nil {
		s.Misses++
		return nil, false
	}
	ent := e.Value
	ent.Hits++
	ent.LastHit = now
	c.touch(ent)
	s.Hits++
	return ent, true
}

// BatchLookup accumulates lookup counters locally so a packet batch
// updates the cache-wide Stats once, in Flush, instead of once per
// packet. The zero value is a no-op accumulator whose Lookup must not be
// called; obtain usable values from Cache.BatchLookup.
type BatchLookup struct {
	c     *Cache
	delta Stats
}

// BatchLookup starts a batched lookup sequence against c.
func (c *Cache) BatchLookup() BatchLookup { return BatchLookup{c: c} }

// Lookup is Cache.Lookup with counters deferred to Flush.
//
//gf:hotpath
func (b *BatchLookup) Lookup(k flow.Key, now int64) (*Entry, bool) {
	return b.c.lookupStats(k, now, &b.delta)
}

// Flush folds the accumulated counters into the cache's Stats — the one
// stats update the whole batch pays. Safe on the zero value.
func (b *BatchLookup) Flush() {
	if b.c == nil {
		return
	}
	b.c.stats.Hits += b.delta.Hits
	b.c.stats.Misses += b.delta.Misses
	b.delta = Stats{}
}

// Peek is Lookup without statistics or LRU side effects.
func (c *Cache) Peek(k flow.Key) (*Entry, bool) {
	e, _ := c.cls.Lookup(k)
	if e == nil {
		return nil, false
	}
	return e.Value, true
}

// Apply executes a cached entry against a key.
func (e *Entry) Apply(k flow.Key) (flow.Key, flow.Verdict) {
	out, _ := flow.Apply(k, e.Commit)
	return out, e.Verdict
}

// Insert compiles a traversal into a megaflow entry and installs it.
// Returns the entry, or nil when the cache is full and eviction is
// disabled.
func (c *Cache) Insert(tr *pipeline.Traversal, now int64) *Entry {
	match, commit := tr.Compose(0, tr.Len())
	ent := &Entry{
		Match:        match,
		Commit:       commit,
		Verdict:      tr.Verdict,
		Parent:       tr.Input,
		TraversalLen: tr.Len(),
		Version:      tr.Version,
		CtConn:       tr.CtConn,
		CtEpoch:      tr.CtEpoch,
		LastHit:      now,
		Created:      now,
	}
	if old, ok := c.cls.Get(match, 0); ok {
		// Same predicate already cached (another packet of the same
		// megaflow raced through the slowpath): refresh it.
		c.unlink(old.Value)
		c.cls.Delete(match, 0)
		c.stats.Replaced++
	} else if c.cls.Len() >= c.capacity {
		if !c.evictOnFull || c.lruTail == nil {
			c.stats.Rejected++
			return nil
		}
		c.removeEntry(c.lruTail)
		c.stats.EvictLRU++
	}
	c.cls.Insert(&tss.Entry[*Entry]{Match: match, Priority: 0, Value: ent})
	c.pushFront(ent)
	c.stats.Inserts++
	return ent
}

// removeEntry unlinks and deletes an entry from both structures.
func (c *Cache) removeEntry(ent *Entry) {
	c.unlink(ent)
	c.cls.Delete(ent.Match, 0)
}

// Remove evicts a connection-dependent entry whose epoch check failed —
// the conntrack invalidation hook. The entry must have come from this
// cache's Lookup.
//
//gf:hotpath-safe conntrack invalidation is a rare cold event on the hit path
func (c *Cache) Remove(ent *Entry) {
	c.removeEntry(ent)
	c.stats.CtInvalid++
}

// ExpireIdle removes entries whose last hit is older than maxIdle,
// mirroring OVS's max-idle revalidator sweep (§4.3.2). Returns the number
// removed.
func (c *Cache) ExpireIdle(now, maxIdle int64) int {
	var stale []*Entry
	c.cls.Range(func(e *tss.Entry[*Entry]) bool {
		if now-e.Value.LastHit > maxIdle {
			stale = append(stale, e.Value)
		}
		return true
	})
	for _, ent := range stale {
		c.removeEntry(ent)
		c.stats.Expired++
	}
	return len(stale)
}

// Revalidate checks every entry against the current pipeline state
// (§4.3.1): the parent flow is replayed and the entry is evicted when its
// match, commit, or verdict no longer agrees. Entries already validated at
// the current pipeline version are skipped. Returns the number evicted and
// the work performed (pipeline table lookups).
func (c *Cache) Revalidate(p *pipeline.Pipeline) (evicted int, work int) {
	var bad []*Entry
	c.cls.Range(func(e *tss.Entry[*Entry]) bool {
		ent := e.Value
		if ent.Version == p.Version {
			return true
		}
		tr, err := p.Process(ent.Parent)
		if err != nil {
			bad = append(bad, ent)
			return true
		}
		work += tr.Len()
		match, commit := tr.Compose(0, tr.Len())
		if !match.Equal(ent.Match) || !flow.ActionsEqual(commit, ent.Commit) || tr.Verdict != ent.Verdict {
			bad = append(bad, ent)
		} else {
			ent.Version = p.Version
		}
		return true
	})
	for _, ent := range bad {
		c.removeEntry(ent)
		c.stats.Revoked++
	}
	c.stats.RevalWork += uint64(work)
	return len(bad), work
}

// Entries returns all cached entries in unspecified order.
func (c *Cache) Entries() []*Entry {
	out := make([]*Entry, 0, c.cls.Len())
	c.cls.Range(func(e *tss.Entry[*Entry]) bool { out = append(out, e.Value); return true })
	return out
}

// --- LRU list maintenance ---

func (c *Cache) pushFront(e *Entry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *Cache) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) touch(e *Entry) {
	if c.lruHead == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
