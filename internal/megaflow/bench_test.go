package megaflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// BenchmarkCacheLookupHit is the megaflow tier's wildcard hit path: a
// staged TSS walk whose tuples are fused-probe flow tables.
func BenchmarkCacheLookupHit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := diffPipeline()
	c := New(1 << 12)
	keys := make([]flow.Key, 256)
	for i := range keys {
		k := diffKey(rng)
		if _, ok := c.Peek(k); !ok {
			c.Insert(p.MustProcess(k), 0)
		}
		keys[i] = k
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(keys[i%len(keys)], int64(i)); !ok {
			b.Fatal("miss")
		}
	}
}
