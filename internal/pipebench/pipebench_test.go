package pipebench

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/traffic"
)

func genWorkload(t *testing.T, spec *pipelines.Spec, chains int) *Workload {
	t.Helper()
	w, err := Generate(Config{Spec: spec, Seed: 42, NumChains: chains})
	if err != nil {
		t.Fatalf("Generate(%s): %v", spec.Name, err)
	}
	return w
}

func TestGenerateAllPipelines(t *testing.T) {
	for _, spec := range pipelines.All() {
		w := genWorkload(t, spec, 300)
		if len(w.Chains) < 250 {
			t.Errorf("%s: only %d chains installed", spec.Name, len(w.Chains))
		}
		if w.Pipeline.NumRules() == 0 {
			t.Errorf("%s: no rules installed", spec.Name)
		}
		if len(w.Weights) != len(w.Chains) {
			t.Errorf("%s: weights mismatch", spec.Name)
		}
	}
}

func TestRepresentativesTerminate(t *testing.T) {
	for _, spec := range pipelines.All() {
		w := genWorkload(t, spec, 200)
		for i, c := range w.Chains {
			tr, err := w.Pipeline.Process(c.Rep)
			if err != nil {
				t.Fatalf("%s chain %d: %v", spec.Name, i, err)
			}
			if !tr.Verdict.Terminal() {
				t.Fatalf("%s chain %d: no verdict", spec.Name, i)
			}
			if tr.Verdict != c.Verdict {
				t.Fatalf("%s chain %d: verdict drifted", spec.Name, i)
			}
			if !c.Match.Matches(c.Rep) {
				t.Fatalf("%s chain %d: composed match does not cover its representative", spec.Name, i)
			}
		}
	}
}

func TestMostChainsFollowIntendedTraversal(t *testing.T) {
	// The multi-table ruleset must realise the spec's traversal diversity:
	// most representatives should walk exactly their intended table path
	// (a few get captured by higher-priority overlapping chains, which is
	// realistic).
	for _, spec := range pipelines.All() {
		w := genWorkload(t, spec, 300)
		exact := 0
		for _, c := range w.Chains {
			tr := w.Pipeline.MustProcess(c.Rep)
			want := spec.Traversals[c.Traversal].Tables
			got := tr.TableIDs()
			if len(got) == len(want) {
				same := true
				for i := range got {
					if got[i] != want[i] {
						same = false
						break
					}
				}
				if same {
					exact++
				}
			}
		}
		frac := float64(exact) / float64(len(w.Chains))
		if frac < 0.7 {
			t.Errorf("%s: only %.0f%% of chains follow their intended traversal", spec.Name, 100*frac)
		}
	}
}

func TestTraversalDiversityRealized(t *testing.T) {
	// Across representatives, a healthy fraction of the spec's distinct
	// traversals must actually appear.
	for _, spec := range pipelines.All() {
		w := genWorkload(t, spec, 400)
		seen := map[string]bool{}
		for _, c := range w.Chains {
			tr := w.Pipeline.MustProcess(c.Rep)
			seen[tr.PathSignature()] = true
		}
		if len(seen) < spec.NumTraversals() {
			t.Logf("%s: %d distinct rule paths over %d traversal templates", spec.Name, len(seen), spec.NumTraversals())
		}
		if len(seen) < spec.NumTraversals()/2 {
			t.Errorf("%s: traversal diversity collapsed: %d paths", spec.Name, len(seen))
		}
	}
}

func TestSampleKeyMatchesChain(t *testing.T) {
	w := genWorkload(t, pipelines.PSC, 200)
	rng := rand.New(rand.NewSource(1))
	for ci := range w.Chains {
		for i := 0; i < 3; i++ {
			k := w.SampleKey(ci, rng)
			if !w.Chains[ci].Match.Matches(k) {
				t.Fatalf("chain %d: sampled key %s escapes composed match %s", ci, k, w.Chains[ci].Match)
			}
			tr, err := w.Pipeline.Process(k)
			if err != nil {
				t.Fatalf("chain %d: %v", ci, err)
			}
			if !tr.Verdict.Terminal() {
				t.Fatalf("chain %d: sampled key has no verdict", ci)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := genWorkload(t, pipelines.OFD, 150)
	b := genWorkload(t, pipelines.OFD, 150)
	if len(a.Chains) != len(b.Chains) {
		t.Fatal("chain counts differ")
	}
	for i := range a.Chains {
		if a.Chains[i].Match != b.Chains[i].Match || a.Chains[i].Verdict != b.Chains[i].Verdict {
			t.Fatalf("chain %d differs across identical seeds", i)
		}
	}
	if a.Pipeline.NumRules() != b.Pipeline.NumRules() {
		t.Fatal("rule counts differ")
	}
}

func TestChainsShareRules(t *testing.T) {
	// Pipeline-aware locality: the installed rules must be shared across
	// chains (total rules ≪ chains × traversal length).
	w := genWorkload(t, pipelines.OLS, 500)
	totalPositions := 0
	for _, c := range w.Chains {
		totalPositions += len(w.Spec.Traversals[c.Traversal].Tables)
	}
	if w.Pipeline.NumRules() >= totalPositions {
		t.Errorf("no rule sharing: %d rules for %d chain positions", w.Pipeline.NumRules(), totalPositions)
	}
	sharing := float64(totalPositions) / float64(w.Pipeline.NumRules())
	if sharing < 1.3 {
		t.Errorf("rule sharing factor %.2f too low", sharing)
	}
}

func TestFlowsGeneration(t *testing.T) {
	w := genWorkload(t, pipelines.PSC, 300)
	tcfg := traffic.Config{Seed: 5, NumFlows: 2000}
	high := w.Flows(tcfg, traffic.HighLocality)
	low := w.Flows(tcfg, traffic.LowLocality)
	if len(high) != 2000 || len(low) != 2000 {
		t.Fatalf("flow counts: %d / %d", len(high), len(low))
	}
	// High locality concentrates on fewer chains than low locality.
	distinct := func(flows []traffic.Flow) int {
		s := map[int]bool{}
		for _, f := range flows {
			s[f.RuleIdx] = true
		}
		return len(s)
	}
	dh, dl := distinct(high), distinct(low)
	if dh >= dl {
		t.Errorf("high locality should span fewer chains: high=%d low=%d", dh, dl)
	}
	// Every flow key must terminate in the pipeline.
	for _, f := range high[:200] {
		tr, err := w.Pipeline.Process(f.Key)
		if err != nil || !tr.Verdict.Terminal() {
			t.Fatalf("flow key %s: err=%v", f.Key, err)
		}
	}
}

func TestDropChainsProduceDropVerdicts(t *testing.T) {
	w := genWorkload(t, pipelines.OTL, 400)
	drops := 0
	for _, c := range w.Chains {
		if c.Verdict.Kind == flow.VerdictDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drop chains realised despite drop traversals in spec")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("nil spec must fail")
	}
	if _, err := Generate(Config{Spec: pipelines.PSC}); err == nil {
		t.Error("zero chains must fail")
	}
}
