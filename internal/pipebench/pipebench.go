// Package pipebench is this repository's version of the paper's Pipebench
// tool (§6.1): it instantiates a real-world pipeline model
// (pipelines.Spec) into a concrete multi-table ruleset by mapping
// ClassBench-style rules onto the pipeline's traversal templates, and
// synthesises matching traffic with high- or low-locality rule recurrence.
//
// For each installed "chain", Pipebench picks a traversal, a ClassBench
// rule, and an L2 context (ingress port + MACs drawn from small pools),
// then walks the traversal installing one rule per table: each table
// matches the fields its stage template declares — 5-tuple fields take the
// ClassBench rule's prefix/port constraints, L2 fields the context values —
// and rewriting stages (L3 routing, load balancers, NAT) apply set-field
// actions that downstream tables observe. Chains that share ClassBench
// sub-tuples therefore share pipeline rules — the pipeline-aware locality
// Gigaflow exploits.
package pipebench

import (
	"fmt"
	"math"
	"math/rand"

	"gigaflow/internal/classbench"
	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/traffic"
)

// Config parameterises workload generation.
type Config struct {
	Spec        *pipelines.Spec
	Seed        int64
	Personality classbench.Personality
	// NumChains is the number of multi-table rule chains to install.
	NumChains int
	// ClassbenchRules sizes the underlying 5-tuple rule pool (default
	// 2×NumChains, min 1000).
	ClassbenchRules int
	// PoolScale scales the ClassBench field-value pools (see
	// classbench.Config.PoolScale): smaller pools mean fewer distinct rule
	// projections per table and therefore more sub-traversal sharing.
	PoolScale float64
	// Contexts is the number of L2 contexts per traversal (default 4);
	// fewer contexts mean more early-table sharing, more contexts mean a
	// larger cross-product of flow classes.
	Contexts int
	// NativePrefixes keeps each ClassBench rule's own IP prefix lengths
	// instead of re-anchoring them to the table's canonical granularity.
	// This yields high TSS tuple diversity (and correspondingly narrow
	// megaflows) — the classifier-bound regime of the paper's Fig. 17
	// search-algorithm comparison.
	NativePrefixes bool
	// PreciseWildcards switches the built pipeline to minimal-bit
	// dependency unwildcarding (pipeline.Pipeline.PreciseWildcards):
	// megaflows keep only provably-needed bits, at higher slowpath cost.
	PreciseWildcards bool
}

// PaperConfig returns the workload configuration used for the paper-scale
// experiments (§6.1: ~100K unique flows per pipeline). The ClassBench pool
// and per-traversal L2 context count scale inversely with the pipeline's
// traversal count so that total flow-class diversity (contexts ×
// projections, the megaflow demand) is comparable across pipelines while
// each cache table's segment-variant demand stays within a few thousand.
func PaperConfig(spec *pipelines.Spec, seed int64) Config {
	nt := spec.NumTraversals()
	cb := 8000 / nt
	if cb < 300 {
		cb = 300
	}
	ctx := 1024 / nt
	if ctx < 16 {
		ctx = 16
	}
	return Config{
		Spec:            spec,
		Seed:            seed,
		NumChains:       120000,
		ClassbenchRules: cb,
		Contexts:        ctx,
	}
}

func (c Config) withDefaults() Config {
	if c.ClassbenchRules == 0 {
		c.ClassbenchRules = 2 * c.NumChains
		if c.ClassbenchRules < 1000 {
			c.ClassbenchRules = 1000
		}
	}
	if c.Contexts == 0 {
		c.Contexts = 4
	}
	return c
}

// Chain records one installed rule chain.
type Chain struct {
	// Traversal indexes Spec.Traversals; Rule indexes the ClassBench pool;
	// Ctx indexes the traversal's L2-context pool.
	Traversal int
	Rule      int
	Ctx       int
	// Match is the composed megaflow of the chain's representative packet
	// after installation (against the fully populated pipeline), and
	// Verdict its fate. Traffic keys are sampled from Match.
	Match   flow.Match
	Verdict flow.Verdict
	// Rep is the representative key.
	Rep flow.Key
}

// Workload is a fully instantiated pipeline plus its traffic model.
type Workload struct {
	Spec     *pipelines.Spec
	Pipeline *pipeline.Pipeline
	Chains   []Chain
	// Weights are per-chain high-locality selection weights (derived from
	// ClassBench tuple-sharing frequencies).
	Weights []float64

	cfg   Config
	rules []classbench.Rule
}

// l2ctx is a reusable L2 environment for a traversal's chains.
type l2ctx struct {
	inPort         uint64
	ethSrc, ethDst uint64
}

// Generate builds the workload. It is deterministic in cfg.Seed.
func Generate(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Spec == nil || cfg.NumChains <= 0 {
		return nil, fmt.Errorf("pipebench: need a spec and positive NumChains")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cbRules := classbench.Generate(classbench.Config{
		Personality: cfg.Personality,
		Seed:        cfg.Seed + 1,
		NumRules:    cfg.ClassbenchRules,
		PoolScale:   cfg.PoolScale,
	})
	if len(cbRules) == 0 {
		return nil, fmt.Errorf("pipebench: classbench produced no rules")
	}
	cbWeights := classbench.RuleWeights(cbRules)

	w := &Workload{Spec: cfg.Spec, Pipeline: cfg.Spec.Build(), cfg: cfg, rules: cbRules}
	w.Pipeline.PreciseWildcards = cfg.PreciseWildcards

	// Per-traversal L2 contexts: which port/MACs a packet arrives with
	// determines which path it takes (different tenants, different
	// policies), so context pools are disjoint across traversals. Small
	// pools keep early tables highly shared within a traversal.
	ctxs := make([][]l2ctx, len(cfg.Spec.Traversals))
	for ti := range ctxs {
		ctxs[ti] = make([]l2ctx, cfg.Contexts)
		for ci := range ctxs[ti] {
			ctxs[ti][ci] = l2ctx{
				inPort: uint64(ti*cfg.Contexts + ci + 1),
				ethSrc: 0x020000000000 | uint64(ti)<<8 | uint64(ci),
				ethDst: 0x020000010000 | uint64(ti)<<8 | uint64(rng.Intn(2)),
			}
		}
	}

	seen := map[string]bool{}
	var chainCtx []l2ctx
	attempts := 0
	maxAttempts := cfg.NumChains * 30
	for len(w.Chains) < cfg.NumChains && attempts < maxAttempts {
		attempts++
		ti := rng.Intn(len(cfg.Spec.Traversals))
		ri := rng.Intn(len(cbRules))
		ci := rng.Intn(cfg.Contexts)
		id := fmt.Sprintf("%d/%d/%d", ti, ri, ci)
		if seen[id] {
			continue
		}
		seen[id] = true
		if w.installChain(ti, ri, ctxs[ti][ci], rng) {
			w.Chains = append(w.Chains, Chain{Traversal: ti, Rule: ri, Ctx: ci})
			chainCtx = append(chainCtx, ctxs[ti][ci])
		}
	}
	if len(w.Chains) == 0 {
		return nil, fmt.Errorf("pipebench: could not install any chain")
	}

	// Resolve each chain's representative traversal against the complete
	// pipeline (later chains may have installed higher-priority rules that
	// re-route earlier representatives; the composed match reflects what
	// the packet actually does).
	// High-locality chain weights model pipeline-aware popularity: a chain
	// is hot when both its rule projection (ClassBench tuple-sharing
	// weight) and its L2 context (Zipf-ranked) are popular. Popular
	// sub-traversals are then reused across many hot chains even though
	// the chains' full megaflows remain distinct — exactly the locality
	// Gigaflow exploits and Megaflow cannot.
	w.Weights = make([]float64, len(w.Chains))
	for i := range w.Chains {
		c := &w.Chains[i]
		c.Rep = w.repKey(c.Traversal, c.Rule, chainCtx[i])
		tr, err := w.Pipeline.Process(c.Rep)
		if err != nil {
			return nil, fmt.Errorf("pipebench: representative of chain %d: %v", i, err)
		}
		c.Match, _ = tr.Compose(0, tr.Len())
		c.Verdict = tr.Verdict
		rw := cbWeights[c.Rule]
		ctxW := math.Pow(float64(c.Ctx+1), -0.8) // Zipf-ranked context popularity
		w.Weights[i] = rw * rw * ctxW
	}
	return w, nil
}

// repKey builds the representative packet for (traversal, rule, ctx):
// the ClassBench rule's canonical values plus the L2 context.
func (w *Workload) repKey(ti, ri int, ctx l2ctx) flow.Key {
	r := w.rules[ri]
	k := r.Match.Key
	k = k.With(flow.FieldInPort, ctx.inPort)
	k = k.With(flow.FieldEthSrc, ctx.ethSrc)
	k = k.With(flow.FieldEthDst, ctx.ethDst)
	k = k.With(flow.FieldEthType, 0x0800)
	if r.Match.Mask[flow.FieldIPProto] == 0 {
		k = k.With(flow.FieldIPProto, 6)
	}
	// Fields the rule wildcards still need plausible representative values
	// (stage templates may classify on them exactly).
	if r.Match.Mask[flow.FieldTpSrc] == 0 {
		k = k.With(flow.FieldTpSrc, uint64(1024+ri%60000))
	}
	if r.Match.Mask[flow.FieldTpDst] == 0 {
		k = k.With(flow.FieldTpDst, uint64(2048+(ri*31)%60000))
	}
	return k
}

// installChain plans and installs one rule per traversal table, threading
// rewrites through the representative flow state. Returns false when an
// irreconcilable conflict with already-installed rules exists (same match
// and priority, different behaviour); in that case nothing is installed.
func (w *Workload) installChain(ti, ri int, ctx l2ctx, rng *rand.Rand) bool {
	spec := w.Spec
	trav := spec.Traversals[ti]
	rule := w.rules[ri]
	state := w.repKey(ti, ri, ctx)
	rewritten := flow.FieldSet(0)

	type planned struct {
		tableID  int
		match    flow.Match
		priority int
		actions  []flow.Action
		next     int
	}
	plan := make([]planned, 0, len(trav.Tables))

	// Metadata steering: the first table stamps the traversal's metadata
	// value (as real pipelines set registers/conntrack marks); every later
	// table matches it, so narrow stages (e.g. protocol-only conntrack
	// tables) still branch per traversal exactly as register-driven
	// pipelines do.
	metaVal := uint64(ti + 1)

	for pos, tid := range trav.Tables {
		ts := spec.Table(tid)
		m := flow.MatchAll()
		if pos > 0 {
			m = m.WithField(flow.FieldMeta, metaVal)
		}
		for _, f := range ts.Fields.Fields() {
			switch {
			case f == flow.FieldEthType:
				m = m.WithField(f, 0x0800)
			case isTupleField(f) && !rewritten.Contains(f) && rule.Match.Mask[f] != 0:
				// The ClassBench rule's constraint. IP prefixes are
				// re-anchored to the table's canonical prefix length: real
				// vSwitch tables classify at a stage-specific granularity
				// (one or two masks per table), which is also what keeps
				// TSS tuple counts — and megaflow unwildcarding — sane.
				mask := rule.Match.Mask[f]
				if !w.cfg.NativePrefixes && (f == flow.FieldIPSrc || f == flow.FieldIPDst) {
					mask = flow.PrefixMask(f, tablePrefixLen(tid, f))
				}
				m = m.WithMaskedField(f, rule.Match.Key[f], mask)
			case isTupleField(f) && !rewritten.Contains(f):
				// Rule wildcards this field: the stage template still
				// classifies on it, so match the representative value
				// broadly (top byte for IPs, exact otherwise).
				if f == flow.FieldIPSrc || f == flow.FieldIPDst {
					m = m.WithMaskedField(f, state[f], flow.PrefixMask(f, 8))
				} else {
					m = m.WithField(f, state[f])
				}
			default:
				// L2 context fields and rewritten fields: exact current
				// value.
				m = m.WithField(f, state[f])
			}
		}

		m = m.Normalize()
		var acts []flow.Action
		if pos == 0 {
			acts = append(acts, flow.SetField(flow.FieldMeta, metaVal))
			rewritten = rewritten.Add(flow.FieldMeta)
		}
		for _, f := range ts.Rewrites.Fields() {
			// The rewrite constant is a pure function of (table, match):
			// the same route/service entry always rewrites to the same
			// next hop, so chains sharing a rule agree on its actions.
			nv := rewriteValue(f, matchHash(tid, m))
			acts = append(acts, flow.SetField(f, nv))
			rewritten = rewritten.Add(f)
		}
		next := pipeline.NoTable
		last := pos == len(trav.Tables)-1
		if last {
			if trav.Drop {
				acts = append(acts, flow.Drop())
			} else {
				acts = append(acts, flow.Output(uint16(1+ti%30)))
			}
		} else {
			next = trav.Tables[pos+1]
		}
		// Priority reflects match specificity (longest-match semantics);
		// identical predicates always carry identical priority so chains
		// can share rules.
		plan = append(plan, planned{tableID: tid, match: m, priority: m.Mask.BitCount(), actions: acts, next: next})
		state, _ = flow.Apply(state, acts)
	}

	// Conflict check before touching the pipeline.
	for _, pl := range plan {
		if existing := findRule(w.Pipeline, pl.tableID, pl.match, pl.priority); existing != nil {
			if existing.Next != pl.next || !flow.ActionsEqual(existing.Actions, pl.actions) {
				return false
			}
		}
	}
	for _, pl := range plan {
		if existing := findRule(w.Pipeline, pl.tableID, pl.match, pl.priority); existing != nil {
			continue // shared with a previous chain
		}
		w.Pipeline.MustAddRule(pl.tableID, pl.match, pl.priority, pl.actions, pl.next)
	}
	return true
}

// tablePrefixLen is the canonical IP-prefix granularity of a pipeline
// stage: routing-style tables use /16 or /24 deterministically by table
// ID. Keeping one prefix length per (table, field) mirrors real stages and
// leaves host bits wildcarded in composed cache rules, so each rule chain
// covers many concrete flows.
func tablePrefixLen(tableID int, f flow.FieldID) uint {
	lens := [...]uint{16, 24, 24, 20}
	h := uint(tableID)*7 + uint(f)*3
	return lens[h%uint(len(lens))]
}

func isTupleField(f flow.FieldID) bool {
	switch f {
	case flow.FieldIPSrc, flow.FieldIPDst, flow.FieldIPProto, flow.FieldTpSrc, flow.FieldTpDst:
		return true
	}
	return false
}

// matchHash derives a stable seed from a table ID and a match predicate
// (FNV-1a over the key and mask lanes).
func matchHash(tableID int, m flow.Match) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(tableID))
	for f := flow.FieldID(0); f < flow.NumFields; f++ {
		mix(m.Key[f])
		mix(m.Mask[f])
	}
	return h
}

// rewriteValue derives the constant a rewriting stage writes, from small
// per-field pools (router MACs, LB backend IPs, NAT addresses), selected
// deterministically by seed.
func rewriteValue(f flow.FieldID, seed uint64) uint64 {
	switch f {
	case flow.FieldEthSrc:
		return 0x0a0000000100 | seed%8
	case flow.FieldEthDst:
		return 0x0a0000000200 | seed%8
	case flow.FieldIPSrc:
		return 0xc6120000 | seed%16 // 198.18.0.0/16 NAT pool
	case flow.FieldIPDst:
		return 0x0a640000 | seed%16 // 10.100.0.0/16 backends
	case flow.FieldTpSrc, flow.FieldTpDst:
		return 30000 + seed%16
	default:
		return seed % (1 << 8)
	}
}

// findRule locates an installed rule by table, match, and priority.
func findRule(p *pipeline.Pipeline, tableID int, m flow.Match, prio int) *pipeline.Rule {
	t := p.Table(tableID)
	if t == nil {
		return nil
	}
	if r, ok := t.FindRule(m, prio); ok {
		return r
	}
	return nil
}

// SampleKey draws a concrete flow key for chain ci: the chain's composed
// match with unconstrained bits randomised (ports and IP host bits), so
// distinct flows of the same chain differ while still matching it.
func (w *Workload) SampleKey(ci int, rng *rand.Rand) flow.Key {
	c := &w.Chains[ci]
	k := c.Match.Key
	for _, f := range []flow.FieldID{flow.FieldIPSrc, flow.FieldIPDst, flow.FieldTpSrc, flow.FieldTpDst} {
		if free := c.Match.Mask[f] ^ f.MaxValue(); free != 0 {
			k = k.WithMasked(f, rng.Uint64(), free)
		}
	}
	// Non-5-tuple free bits stay at the representative's values: L2
	// identity does not vary within a chain.
	for _, f := range []flow.FieldID{flow.FieldInPort, flow.FieldEthSrc, flow.FieldEthDst, flow.FieldEthType, flow.FieldIPProto} {
		if c.Match.Mask[f] == 0 {
			k = k.With(f, c.Rep[f])
		}
	}
	return k
}

// Picker builds the traffic rule-selection picker for the locality mode.
func (w *Workload) Picker(loc traffic.Locality) *traffic.Picker {
	return w.PickerRange(loc, 0, len(w.Chains))
}

// PickerRange builds a picker restricted to chains [lo, hi) — used to
// model distinct workloads over disjoint flow populations (Fig. 18's
// dynamically arriving workload).
func (w *Workload) PickerRange(loc traffic.Locality, lo, hi int) *traffic.Picker {
	weights := make([]float64, len(w.Chains))
	for i := lo; i < hi && i < len(w.Chains); i++ {
		if loc == traffic.HighLocality {
			weights[i] = w.Weights[i]
		} else {
			weights[i] = 1
		}
	}
	return traffic.NewPicker(weights)
}

// Flows generates tcfg.NumFlows flows over the workload's chains with the
// given locality.
func (w *Workload) Flows(tcfg traffic.Config, loc traffic.Locality) []traffic.Flow {
	return traffic.GenerateFlows(tcfg, w.Picker(loc), w.SampleKey)
}
