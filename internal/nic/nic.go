// Package nic models the P4-programmable SmartNIC that hosts the hardware
// flow cache: an RMT-style feed-forward pipeline of ternary match-action
// tables (the paper's Alveo U250 / OpenNIC prototype), with the capacity,
// latency, and resource envelope of §5 and §6.
//
// The device is cache-agnostic: a Backend adapter wraps either a Gigaflow
// LTM cache (K tables) or a Megaflow cache (K=1), so the simulator drives
// both configurations through one interface. Latency constants default to
// the paper's measurements (§6.3.6): a hardware cache hit costs ~8.6 µs
// end-to-end through the FPGA datapath regardless of which tables matched
// (the pipeline is feed-forward at line rate).
package nic

import (
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
)

// Backend is the hardware cache abstraction the device hosts.
type Backend interface {
	// Lookup classifies a packet, returning its fate on a hit.
	Lookup(k flow.Key, now int64) (v flow.Verdict, final flow.Key, hit bool)
	// Len and Capacity report entry usage.
	Len() int
	Capacity() int
	// Name identifies the cache type for reports.
	Name() string
}

// GigaflowBackend adapts a gigaflow.Cache to the device.
type GigaflowBackend struct{ Cache *gigaflow.Cache }

// Lookup implements Backend.
func (b GigaflowBackend) Lookup(k flow.Key, now int64) (flow.Verdict, flow.Key, bool) {
	res := b.Cache.Lookup(k, now)
	return res.Verdict, res.Final, res.Hit
}

// Len implements Backend.
func (b GigaflowBackend) Len() int { return b.Cache.Len() }

// Capacity implements Backend.
func (b GigaflowBackend) Capacity() int { return b.Cache.Capacity() }

// Name implements Backend.
func (b GigaflowBackend) Name() string {
	return fmt.Sprintf("gigaflow(%dx%d)", b.Cache.NumTables(), b.Cache.Capacity()/b.Cache.NumTables())
}

// MegaflowBackend adapts a megaflow.Cache to the device.
type MegaflowBackend struct{ Cache *megaflow.Cache }

// Lookup implements Backend.
func (b MegaflowBackend) Lookup(k flow.Key, now int64) (flow.Verdict, flow.Key, bool) {
	e, ok := b.Cache.Lookup(k, now)
	if !ok {
		return flow.Verdict{}, k, false
	}
	final, v := e.Apply(k)
	return v, final, true
}

// Len implements Backend.
func (b MegaflowBackend) Len() int { return b.Cache.Len() }

// Capacity implements Backend.
func (b MegaflowBackend) Capacity() int { return b.Cache.Capacity() }

// Name implements Backend.
func (b MegaflowBackend) Name() string {
	return fmt.Sprintf("megaflow(%d)", b.Cache.Capacity())
}

// Config describes the device envelope.
type Config struct {
	// HitLatencyNs is the end-to-end hardware-cache hit latency (paper:
	// 8.62 µs on the Alveo U250 prototype).
	HitLatencyNs int64
	// LineRateGbps is the synthesised port speed (paper: 100 G).
	LineRateGbps float64
}

// DefaultConfig returns the paper's prototype envelope.
func DefaultConfig() Config {
	return Config{HitLatencyNs: 8620, LineRateGbps: 100}
}

// Stats counts device-level events.
type Stats struct {
	RxPackets uint64
	RxBytes   uint64
	HWHits    uint64
	HWMisses  uint64
	TxPackets uint64 // forwarded by the HW cache
	Dropped   uint64 // dropped by the HW cache (cached deny rules)
	ToSlow    uint64 // punted to the software slowpath
}

// HitRate reports HWHits / RxPackets.
func (s *Stats) HitRate() float64 {
	if s.RxPackets == 0 {
		return 0
	}
	return float64(s.HWHits) / float64(s.RxPackets)
}

// Device is one SmartNIC with a hardware cache.
type Device struct {
	cfg     Config
	backend Backend
	stats   Stats
}

// New creates a device hosting the given cache backend.
func New(cfg Config, backend Backend) *Device {
	if cfg.HitLatencyNs <= 0 {
		cfg = DefaultConfig()
	}
	return &Device{cfg: cfg, backend: backend}
}

// Backend returns the hosted cache.
func (d *Device) Backend() Backend { return d.backend }

// Config returns the device envelope.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// RxResult is the outcome of receiving one packet.
type RxResult struct {
	Hit       bool
	Verdict   flow.Verdict
	Final     flow.Key
	LatencyNs int64 // hardware portion of the packet's latency
}

// Receive runs one packet through the hardware cache. On a miss the packet
// is punted to the slowpath (the caller invokes the vSwitch); the hardware
// still spent its pipeline latency on it.
func (d *Device) Receive(k flow.Key, sizeBytes int, now int64) RxResult {
	d.stats.RxPackets++
	d.stats.RxBytes += uint64(sizeBytes)
	v, final, hit := d.backend.Lookup(k, now)
	if !hit {
		d.stats.HWMisses++
		d.stats.ToSlow++
		return RxResult{LatencyNs: d.cfg.HitLatencyNs}
	}
	d.stats.HWHits++
	if v.Kind == flow.VerdictDrop {
		d.stats.Dropped++
	} else {
		d.stats.TxPackets++
	}
	return RxResult{Hit: true, Verdict: v, Final: final, LatencyNs: d.cfg.HitLatencyNs}
}

// Resources estimates the FPGA resource envelope for an LTM cache
// configuration, scaled linearly from the paper's measured prototype
// (§5: 4 tables × 8K entries ⇒ 47% LUTs, 33% FFs, 49% BRAM/URAM, 38 W
// on-chip at 100 G). The scaling is a first-order model: TCAM emulation
// dominates, and its cost grows with total ternary entry bits.
type Resources struct {
	LUTPct   float64
	FFPct    float64
	BRAMPct  float64
	PowerW   float64
	Feasible bool // within the device (≤100% resources, ≤75 W PCIe budget)
}

// EstimateResources models the synthesis cost of numTables × tableCapacity
// ternary entries.
func EstimateResources(numTables, tableCapacity int) Resources {
	scale := float64(numTables*tableCapacity) / float64(4*8192)
	// A fixed fraction of the prototype's utilisation is shell/datapath
	// overhead independent of cache size.
	const shellLUT, shellFF, shellBRAM, shellPower = 12, 10, 8, 20
	r := Resources{
		LUTPct:  shellLUT + (47-shellLUT)*scale,
		FFPct:   shellFF + (33-shellFF)*scale,
		BRAMPct: shellBRAM + (49-shellBRAM)*scale,
		PowerW:  shellPower + (38-shellPower)*scale,
	}
	r.Feasible = r.LUTPct <= 100 && r.FFPct <= 100 && r.BRAMPct <= 100 && r.PowerW <= 75
	return r
}
