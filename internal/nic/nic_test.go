package nic

import (
	"strings"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/pipeline"
)

func testPipeline() *pipeline.Pipeline {
	p := pipeline.New("nic-test")
	p.AddTable(0, "l3", flow.NewFieldSet(flow.FieldIPDst))
	p.AddTable(1, "l4", flow.NewFieldSet(flow.FieldTpDst))
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=10.0.0.0/24"), 10, nil, 1)
	p.MustAddRule(1, flow.MustParseMatch("tp_dst=80"), 10, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	p.MustAddRule(1, flow.MustParseMatch("tp_dst=23"), 20, []flow.Action{flow.Drop()}, pipeline.NoTable)
	return p
}

func key(ipLow, port uint64) flow.Key {
	return flow.Key{}.With(flow.FieldIPDst, 0x0a000000|ipLow).With(flow.FieldTpDst, port)
}

func TestDeviceWithGigaflowBackend(t *testing.T) {
	p := testPipeline()
	gf := gigaflow.New(p, gigaflow.Config{NumTables: 2, TableCapacity: 8})
	d := New(DefaultConfig(), GigaflowBackend{Cache: gf})

	// Cold: miss, punted to slowpath.
	res := d.Receive(key(1, 80), 100, 0)
	if res.Hit {
		t.Fatal("cold cache must miss")
	}
	if res.LatencyNs != 8620 {
		t.Errorf("latency = %d", res.LatencyNs)
	}
	tr := p.MustProcess(key(1, 80))
	if _, err := gf.Insert(tr, 0); err != nil {
		t.Fatal(err)
	}

	// Warm: hit with the slowpath's verdict.
	res = d.Receive(key(2, 80), 100, 1)
	if !res.Hit || res.Verdict != tr.Verdict {
		t.Fatalf("res = %+v", res)
	}
	st := d.Stats()
	if st.RxPackets != 2 || st.HWHits != 1 || st.HWMisses != 1 || st.ToSlow != 1 || st.TxPackets != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %v", st.HitRate())
	}
	if !strings.HasPrefix(d.Backend().Name(), "gigaflow(2x8)") {
		t.Errorf("backend name %q", d.Backend().Name())
	}
}

func TestDeviceWithMegaflowBackend(t *testing.T) {
	p := testPipeline()
	mf := megaflow.New(16)
	d := New(DefaultConfig(), MegaflowBackend{Cache: mf})
	mf.Insert(p.MustProcess(key(1, 23)), 0)

	res := d.Receive(key(5, 23), 64, 1)
	if !res.Hit || res.Verdict.Kind != flow.VerdictDrop {
		t.Fatalf("res = %+v", res)
	}
	if d.Stats().Dropped != 1 || d.Stats().TxPackets != 0 {
		t.Errorf("stats = %+v", d.Stats())
	}
	if d.Backend().Name() != "megaflow(16)" {
		t.Errorf("name %q", d.Backend().Name())
	}
	if d.Backend().Capacity() != 16 || d.Backend().Len() != 1 {
		t.Error("capacity/len wrong")
	}
}

func TestZeroConfigUsesDefaults(t *testing.T) {
	d := New(Config{}, MegaflowBackend{Cache: megaflow.New(4)})
	if d.Config().HitLatencyNs != 8620 || d.Config().LineRateGbps != 100 {
		t.Errorf("config = %+v", d.Config())
	}
}

func TestResourceModel(t *testing.T) {
	proto := EstimateResources(4, 8192)
	if proto.LUTPct != 47 || proto.BRAMPct != 49 || proto.PowerW != 38 {
		t.Errorf("prototype config must reproduce §5's report: %+v", proto)
	}
	if !proto.Feasible {
		t.Error("prototype must be feasible")
	}
	small := EstimateResources(1, 1024)
	if small.LUTPct >= proto.LUTPct || small.PowerW >= proto.PowerW {
		t.Error("smaller cache must cost less")
	}
	huge := EstimateResources(8, 262144)
	if huge.Feasible {
		t.Errorf("8x256K should blow the envelope: %+v", huge)
	}
	if huge.PowerW <= proto.PowerW {
		t.Error("bigger cache must cost more power")
	}
}
