package gigaflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// buildChainPipeline constructs the canonical 3-stage pipeline used across
// these tests, with fully disjoint per-table field sets:
//
//	t0 (L2):  eth_dst exact          -> t1
//	t1 (L3):  ip_dst /24 prefixes    -> t2
//	t2 (L4):  tp_src exact           -> output
func buildChainPipeline() *pipeline.Pipeline {
	p := pipeline.New("chain")
	p.AddTable(0, "l2", flow.NewFieldSet(flow.FieldEthDst))
	p.AddTable(1, "l3", flow.NewFieldSet(flow.FieldIPDst))
	p.AddTable(2, "l4", flow.NewFieldSet(flow.FieldTpSrc))
	p.MustAddRule(0, flow.MustParseMatch("eth_dst=00:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(0, flow.MustParseMatch("eth_dst=00:00:00:00:00:02"), 10, nil, 1)
	p.MustAddRule(1, flow.MustParseMatch("ip_dst=10.0.0.0/24"), 10, nil, 2)
	p.MustAddRule(1, flow.MustParseMatch("ip_dst=10.1.0.0/24"), 10, nil, 2)
	p.MustAddRule(2, flow.MustParseMatch("tp_src=1000"), 10, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	p.MustAddRule(2, flow.MustParseMatch("tp_src=2000"), 10, []flow.Action{flow.Output(2)}, pipeline.NoTable)
	return p
}

func chainKey(mac, ipLow, sport uint64) flow.Key {
	return flow.Key{}.
		With(flow.FieldEthDst, mac).
		With(flow.FieldIPDst, 0x0a000000|ipLow).
		With(flow.FieldTpSrc, sport)
}

func TestInsertAndExactHit(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	k := chainKey(1, 5, 1000)
	tr := p.MustProcess(k)
	entries, err := c.Insert(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("installed %d entries, want 3 (disjoint singletons)", len(entries))
	}
	res := c.Lookup(k, 1)
	if !res.Hit {
		t.Fatal("expected hit")
	}
	if res.Verdict != tr.Verdict {
		t.Errorf("verdict %v, want %v", res.Verdict, tr.Verdict)
	}
	if res.Final != tr.FinalKey() {
		t.Errorf("final %s, want %s", res.Final, tr.FinalKey())
	}
	if len(res.Path) != 3 {
		t.Errorf("path length %d", len(res.Path))
	}
	st := c.Stats()
	if st.Hits != 1 || st.InsertedTraversals != 1 || st.EntriesCreated != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWildcardHitWithinMegaflow(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	// Different host in the same /24: every sub-traversal is shared.
	res := c.Lookup(chainKey(1, 77, 1000), 1)
	if !res.Hit || res.Verdict.Port != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCrossProductPurplePath(t *testing.T) {
	// The Fig. 5c property: flows A and B install sub-traversals; a NEW
	// flow combining A's L3 segment with B's L4 segment hits the cache
	// without ever visiting the slowpath.
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	a := chainKey(1, 5, 1000)         // mac 1, 10.0.0/24, out 1
	b := chainKey(2, 0x10000+5, 2000) // mac 2, 10.1.0/24, out 2
	c.Insert(p.MustProcess(a), 0)
	c.Insert(p.MustProcess(b), 0)

	purple := chainKey(1, 0x10000+99, 2000) // A's MAC, B's /24, B's port
	res := c.Lookup(purple, 1)
	if !res.Hit {
		t.Fatal("cross-product flow must hit")
	}
	if res.Verdict.Port != 2 {
		t.Errorf("verdict = %v", res.Verdict)
	}
	// And it must agree exactly with the slowpath.
	tr := p.MustProcess(purple)
	if res.Verdict != tr.Verdict || res.Final != tr.FinalKey() {
		t.Errorf("cache %v/%s, slowpath %v/%s", res.Verdict, res.Final, tr.Verdict, tr.FinalKey())
	}
	// All four MAC × subnet × port combinations consistent with the rules
	// are now covered by only 6 entries (vs 4 megaflow entries for 4 flows,
	// growing multiplicatively).
	if c.Len() != 6 {
		t.Errorf("entries = %d, want 6", c.Len())
	}
	if got := c.Coverage(); got != 8 {
		t.Errorf("coverage = %d, want 2*2*2 = 8", got)
	}
}

func TestSharedSubTraversalReuse(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	before := c.Len()
	// Same MAC and same /24, different port: shares 2 of 3 sub-traversals.
	c.Insert(p.MustProcess(chainKey(1, 6, 2000)), 0)
	if c.Len() != before+1 {
		t.Fatalf("len went %d -> %d, want +1", before, c.Len())
	}
	st := c.Stats()
	if st.SharedReuse != 2 {
		t.Errorf("SharedReuse = %d, want 2", st.SharedReuse)
	}
	// The shared entries' install counters reflect both parents (Fig. 11).
	shared := 0
	for _, e := range c.AllEntries() {
		if e.Installs == 2 {
			shared++
		}
	}
	if shared != 2 {
		t.Errorf("entries with Installs=2: %d, want 2", shared)
	}
}

func TestLTMPicksLongestSpan(t *testing.T) {
	// Two overlapping entries in GF0 with ρ=3 (terminal) and ρ=2: LTM must
	// choose ρ=3 and finish in one table.
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	a := chainKey(1, 5, 1000)
	tr := p.MustProcess(a)
	if _, err := c.InsertPartition(tr, Partition{{0, 2}, {2, 3}}, 0); err != nil {
		t.Fatal(err)
	}
	tr2 := p.MustProcess(chainKey(1, 6, 1000))
	if _, err := c.InsertPartition(tr2, Partition{{0, 3}}, 0); err != nil {
		t.Fatal(err)
	}
	res := c.Lookup(chainKey(1, 7, 1000), 1)
	if !res.Hit || res.Verdict.Port != 1 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Path) != 1 || res.Path[0].Priority != 3 {
		t.Fatalf("LTM chose path %v, want single ρ=3 entry", res.Path)
	}
}

func TestTagSkipAcrossTables(t *testing.T) {
	// A matches a ρ=2 entry in GF0 ending with tag 2; GF1 holds no tag-2
	// entry that matches, but GF2 does (installed by a 3-segment flow).
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})

	a := p.MustProcess(chainKey(1, 5, 1000))
	if _, err := c.InsertPartition(a, Partition{{0, 1}, {1, 2}, {2, 3}}, 0); err != nil {
		t.Fatal(err) // A's tp_src=1000 segment lands in GF2 with tag 2
	}
	b := p.MustProcess(chainKey(1, 6, 2000))
	if _, err := c.InsertPartition(b, Partition{{0, 2}, {2, 3}}, 0); err != nil {
		t.Fatal(err) // B's [L2,L3] segment (ρ=2) in GF0, tp_src=2000 in GF1
	}

	// X matches B's ρ=2 GF0 entry (beats A's ρ=1), then misses B's GF1
	// entry (tp_src differs), and must skip to A's GF2 entry via the tag.
	x := chainKey(1, 9, 1000)
	res := c.Lookup(x, 1)
	if !res.Hit || res.Verdict.Port != 1 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Path) != 2 {
		t.Fatalf("path = %v, want GF0 + GF2", res.Path)
	}
	if res.Path[0].Priority != 2 || res.Path[1].Tag != 2 {
		t.Errorf("unexpected path entries: %v", res.Path)
	}
	// Consistency with slowpath.
	tr := p.MustProcess(x)
	if res.Verdict != tr.Verdict || res.Final != tr.FinalKey() {
		t.Error("tag-skip hit diverges from slowpath")
	}
}

func TestStallIsAMiss(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	b := p.MustProcess(chainKey(1, 6, 2000))
	if _, err := c.InsertPartition(b, Partition{{0, 2}, {2, 3}}, 0); err != nil {
		t.Fatal(err)
	}
	// Matches B's GF0 segment but nothing completes the chain.
	res := c.Lookup(chainKey(1, 9, 1000), 1)
	if res.Hit {
		t.Fatal("stalled chain must be a miss")
	}
	if len(res.Path) != 1 {
		t.Errorf("path = %v", res.Path)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Stalls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMissLeavesNoTrace(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	res := c.Lookup(chainKey(1, 5, 1000), 0)
	if res.Hit || len(res.Path) != 0 {
		t.Fatalf("res = %+v", res)
	}
	if c.Stats().Misses != 1 || c.Stats().Stalls != 0 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestCapacityRejectWithoutEviction(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 1, NoLRUEviction: true})
	if _, err := c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0); err != nil {
		t.Fatal(err)
	}
	// Fully shared traversal: fits without new entries.
	if _, err := c.Insert(p.MustProcess(chainKey(1, 6, 1000)), 0); err != nil {
		t.Fatalf("fully shared insert should succeed: %v", err)
	}
	// Needs a fresh L4 entry but GF2 is full: reject, nothing changes.
	before := c.Len()
	if _, err := c.Insert(p.MustProcess(chainKey(1, 7, 2000)), 0); err == nil {
		t.Fatal("expected rejection")
	}
	if c.Len() != before {
		t.Error("failed insert must not leave partial entries")
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", c.Stats().Rejected)
	}
}

func TestLRUEviction(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 1})
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	// New traversal with different entries everywhere: evicts all three.
	c.Insert(p.MustProcess(chainKey(2, 0x10000+5, 2000)), 1)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Stats().EvictLRU != 3 {
		t.Errorf("EvictLRU = %d", c.Stats().EvictLRU)
	}
	if res := c.Lookup(chainKey(1, 5, 1000), 2); res.Hit {
		t.Error("evicted flow still hits")
	}
	if res := c.Lookup(chainKey(2, 0x10000+5, 2000), 2); !res.Hit {
		t.Error("new flow should hit")
	}
}

func TestExpireIdleSelective(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	c.Insert(p.MustProcess(chainKey(1, 6, 2000)), 0) // shares GF0+GF1
	// Keep the first flow's chain warm.
	c.Lookup(chainKey(1, 5, 1000), 100)
	// Only the tp_src=2000 sub-traversal is stale: selective eviction.
	n := c.ExpireIdle(150, 100)
	if n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if res := c.Lookup(chainKey(1, 5, 1000), 151); !res.Hit {
		t.Error("warm chain must survive")
	}
	if res := c.Lookup(chainKey(1, 6, 2000), 151); res.Hit {
		t.Error("stale sub-traversal should be gone")
	}
}

func TestRevalidationSelective(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	c.Insert(p.MustProcess(chainKey(1, 6, 2000)), 0)
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}

	// Clean revalidation: version fast-path, no work.
	ev, work := c.Revalidate()
	if ev != 0 || work != 0 {
		t.Fatalf("clean reval: ev=%d work=%d", ev, work)
	}

	// Change the tp_src=2000 rule's action: only that sub-traversal dies.
	var target *pipeline.Rule
	for _, r := range p.Table(2).Rules() {
		if r.Match.Key.Get(flow.FieldTpSrc) == 2000 {
			target = r
		}
	}
	p.DeleteRule(target)
	p.MustAddRule(2, flow.MustParseMatch("tp_src=2000"), 10, []flow.Action{flow.Output(9)}, pipeline.NoTable)

	ev, work = c.Revalidate()
	if ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if work == 0 {
		t.Error("revalidation must do work after a version bump")
	}
	if res := c.Peek(chainKey(1, 5, 1000)); !res.Hit || res.Verdict.Port != 1 {
		t.Error("unaffected chain must survive")
	}
	if res := c.Peek(chainKey(1, 6, 2000)); res.Hit {
		t.Error("stale chain must not hit")
	}
	// Reinsert after slowpath reprocessing: new verdict visible.
	c.Insert(p.MustProcess(chainKey(1, 6, 2000)), 1)
	if res := c.Peek(chainKey(1, 6, 2000)); !res.Hit || res.Verdict.Port != 9 {
		t.Errorf("res = %+v", res)
	}
}

func TestRevalidationCheaperThanFullReplay(t *testing.T) {
	// Gigaflow revalidates per sub-traversal: total work for one traversal
	// split into 3 singletons is the same 3 lookups, but shared segments
	// are validated once. Insert two flows sharing 2 segments: megaflow
	// would replay 3+3 = 6 table lookups; gigaflow replays 4 (the §6.3.6
	// 2× claim at scale).
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	c.Insert(p.MustProcess(chainKey(1, 6, 2000)), 0)
	// Force re-stamping by bumping the version with an unrelated rule.
	p.MustAddRule(0, flow.MustParseMatch("eth_dst=00:00:00:00:00:42"), 10, nil, 1)
	_, work := c.Revalidate()
	if work != 4 {
		t.Errorf("revalidation work = %d, want 4 (one per cached entry)", work)
	}
}

func TestCoverageGrowsMultiplicatively(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 64})
	// 2 MACs × 2 subnets × 2 ports = 8 distinct traversal paths, but only
	// insert 4 flows covering each rule at least once.
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	c.Insert(p.MustProcess(chainKey(2, 5, 1000)), 0)
	c.Insert(p.MustProcess(chainKey(1, 0x10000+5, 2000)), 0)
	c.Insert(p.MustProcess(chainKey(1, 5, 2000)), 0)
	if got := c.Coverage(); got != 8 {
		t.Errorf("coverage = %d, want 8", got)
	}
	if c.Len() != 6 {
		t.Errorf("entries = %d, want 6", c.Len())
	}
	// Every covered combination must actually hit.
	hits := 0
	for _, mac := range []uint64{1, 2} {
		for _, ip := range []uint64{7, 0x10000 + 7} {
			for _, port := range []uint64{1000, 2000} {
				if res := c.Peek(chainKey(mac, ip, port)); res.Hit {
					hits++
				}
			}
		}
	}
	if hits != 8 {
		t.Errorf("realised coverage = %d of 8", hits)
	}
}

func TestCoverageEmptyAndMegaflowEquivalent(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 1, TableCapacity: 64})
	if c.Coverage() != 0 {
		t.Error("empty cache coverage must be 0")
	}
	// K=1 behaves like Megaflow: coverage == entry count.
	c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	c.Insert(p.MustProcess(chainKey(2, 0x10000+5, 2000)), 0)
	if got := c.Coverage(); got != 2 {
		t.Errorf("K=1 coverage = %d, want 2", got)
	}
}

func TestHitSoundnessRandomized(t *testing.T) {
	// THE correctness property: any cache hit — including cross-product
	// chains never seen by the slowpath — must agree exactly with the
	// pipeline on verdict and final key.
	rng := rand.New(rand.NewSource(5))
	p := buildRandomPipeline(rng)
	for _, scheme := range []Scheme{SchemeDisjoint, SchemeRandom} {
		c := New(p, Config{NumTables: 4, TableCapacity: 4096, Scheme: scheme, Seed: 9})
		for i := 0; i < 1500; i++ {
			k := randomChainKey(rng)
			if res := c.Lookup(k, int64(i)); res.Hit {
				tr := p.MustProcess(k)
				if res.Verdict != tr.Verdict || res.Final != tr.FinalKey() {
					t.Fatalf("scheme %v: hit diverges for %s: cache %v/%s slow %v/%s",
						scheme, k, res.Verdict, res.Final, tr.Verdict, tr.FinalKey())
				}
			} else {
				tr := p.MustProcess(k)
				c.Insert(tr, int64(i))
			}
		}
		if c.Stats().Hits == 0 {
			t.Fatalf("scheme %v: degenerate test, no hits", scheme)
		}
	}
}

// buildRandomPipeline creates a 5-table pipeline with rewrites and varied
// field sets for the soundness fuzz test.
func buildRandomPipeline(rng *rand.Rand) *pipeline.Pipeline {
	p := pipeline.New("fuzz")
	p.AddTable(0, "port", flow.NewFieldSet(flow.FieldInPort))
	p.AddTable(1, "l2", flow.NewFieldSet(flow.FieldEthDst))
	p.AddTable(2, "l3", flow.NewFieldSet(flow.FieldEthType, flow.FieldIPDst))
	p.AddTable(3, "l3src", flow.NewFieldSet(flow.FieldIPSrc))
	p.AddTable(4, "acl", flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpDst))
	for v := 0; v < 4; v++ {
		p.MustAddRule(0, flow.MatchAll().WithField(flow.FieldInPort, uint64(v)), 10, nil, 1)
		var acts []flow.Action
		if v%2 == 0 {
			acts = append(acts, flow.SetField(flow.FieldEthSrc, uint64(0xee00+v)))
		}
		p.MustAddRule(1, flow.MatchAll().WithField(flow.FieldEthDst, uint64(v)), 10, acts, 2)
		m := flow.MatchAll().WithField(flow.FieldEthType, 0x0800).
			WithMaskedField(flow.FieldIPDst, uint64(v)<<24, flow.PrefixMask(flow.FieldIPDst, 8))
		p.MustAddRule(2, m, 10, []flow.Action{flow.SetField(flow.FieldEthDst, uint64(0xdd00+v))}, 3)
		ms := flow.MatchAll().WithMaskedField(flow.FieldIPSrc, uint64(v)<<24, flow.PrefixMask(flow.FieldIPSrc, 8))
		p.MustAddRule(3, ms, 10, nil, 4)
		p.MustAddRule(4, flow.MatchAll().WithField(flow.FieldIPProto, 6).WithField(flow.FieldTpDst, uint64(80+v)), 10,
			[]flow.Action{flow.Output(uint16(v))}, pipeline.NoTable)
	}
	p.SetMiss(4, pipeline.NoTable, flow.Drop())
	return p
}

func randomChainKey(rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldInPort, uint64(rng.Intn(4))).
		With(flow.FieldEthDst, uint64(rng.Intn(4))).
		With(flow.FieldEthType, 0x0800).
		With(flow.FieldIPDst, uint64(rng.Intn(4))<<24|uint64(rng.Intn(8))).
		With(flow.FieldIPSrc, uint64(rng.Intn(4))<<24).
		With(flow.FieldIPProto, 6).
		With(flow.FieldTpDst, uint64(80+rng.Intn(5)))
}

func TestBadConfigPanics(t *testing.T) {
	p := buildChainPipeline()
	defer func() {
		if recover() == nil {
			t.Error("bad config must panic")
		}
	}()
	New(p, Config{NumTables: 0, TableCapacity: 8})
}

func TestEntryString(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 16})
	entries, _ := c.Insert(p.MustProcess(chainKey(1, 5, 1000)), 0)
	for _, e := range entries {
		if e.String() == "" {
			t.Error("empty entry string")
		}
	}
	if c.TableLen(0) != 1 || c.Capacity() != 48 || c.NumTables() != 3 {
		t.Error("accessors wrong")
	}
	if len(c.Entries(0)) != 1 {
		t.Error("Entries(0) wrong")
	}
	if c.Config().TableCapacity != 16 {
		t.Error("Config() wrong")
	}
}
