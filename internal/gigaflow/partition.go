// Package gigaflow implements the paper's core contribution: sub-traversal
// caching with Longest Traversal Matching (LTM) for SmartNICs.
//
// A vSwitch traversal (pipeline.Traversal) is partitioned into up to K
// contiguous sub-traversals, each compiled into one LTM rule ⟨τ, M, ρ, α⟩
// and installed into one of the K feed-forward cache tables. The partition
// is chosen to maximise disjointness between adjacent sub-traversals
// (§4.2.2), which maximises cross-product rule-space coverage; lookups use
// LTM semantics — highest span-length priority within a table, exact table
// tags sequencing sub-traversals (§4.1).
package gigaflow

import (
	"fmt"
	"math/rand"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// Segment is a half-open range [Start, End) of traversal step indices
// forming one sub-traversal.
type Segment struct {
	Start, End int
}

// Len reports the number of pipeline tables the segment spans.
func (s Segment) Len() int { return s.End - s.Start }

// Partition is an ordered, contiguous, complete split of a traversal into
// sub-traversals.
type Partition []Segment

// Validate checks that p is a contiguous, complete partition of n steps
// into at most maxSegments non-empty segments (maxSegments ≤ 0 disables the
// limit).
func (p Partition) Validate(n, maxSegments int) error {
	if len(p) == 0 {
		return fmt.Errorf("gigaflow: empty partition")
	}
	if maxSegments > 0 && len(p) > maxSegments {
		return fmt.Errorf("gigaflow: %d segments exceeds limit %d", len(p), maxSegments)
	}
	at := 0
	for i, s := range p {
		if s.Start != at || s.End <= s.Start {
			return fmt.Errorf("gigaflow: segment %d = [%d,%d) is not contiguous from %d", i, s.Start, s.End, at)
		}
		at = s.End
	}
	if at != n {
		return fmt.Errorf("gigaflow: partition covers %d of %d steps", at, n)
	}
	return nil
}

// Scheme selects a partitioning strategy (Fig. 16 compares them).
type Scheme uint8

const (
	// SchemeDisjoint is the paper's dynamic-programming disjoint
	// partitioner (DP).
	SchemeDisjoint Scheme = iota
	// SchemeRandom cuts the traversal at random boundaries (RND baseline).
	SchemeRandom
	// SchemeOneToOne gives every pipeline table its own cache table (the
	// idealised 1-1 mapping baseline; requires K ≥ traversal length).
	SchemeOneToOne
	// SchemeProfile is the §7 traffic-aware partitioner: disjoint
	// partitioning augmented with a reuse bonus for segments already
	// resident in the cache (see profile.go).
	SchemeProfile
)

// String names the scheme as in the paper's Fig. 16.
func (s Scheme) String() string {
	switch s {
	case SchemeDisjoint:
		return "DP"
	case SchemeRandom:
		return "RND"
	case SchemeOneToOne:
		return "1-1"
	case SchemeProfile:
		return "PROF"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// AnalysisFields is the field set the disjointness analysis partitions
// over. Two kinds of fields are excluded because they carry no locality
// information and would spuriously glue disjoint segments together:
//
//   - the metadata register, which steering matches in nearly every stage
//     and which is not a packet header at all;
//   - eth_type, a near-constant discriminator (every IPv4 rule matches
//     0x0800) present in ETH, IP, and ACL stages alike. The paper's Fig. 7
//     places ETH and IP/24 in separate disjoint regions even though both
//     kinds of tables match the EtherType, which is exactly this rule.
var AnalysisFields = flow.HeaderFields.Remove(flow.FieldEthType)

// cohesive reports whether extending a segment whose accumulated field set
// is `acc` by a step matching `next` keeps the segment cohesive: the new
// step must share at least one field with what the segment already matches.
// Steps with no matched fields impose no constraint and merge freely.
func cohesive(acc, next flow.FieldSet) bool {
	return acc.Empty() || next.Empty() || acc.Overlaps(next)
}

// SegmentScore implements the §4.2.2 scoring rule: a sub-traversal whose
// tables share match fields (chain-overlapping, i.e. it never crosses a
// disjoint-field boundary) scores its length; one combining disjoint field
// sets scores 0.
func SegmentScore(fields []flow.FieldSet, s Segment) int {
	acc := fields[s.Start]
	for i := s.Start + 1; i < s.End; i++ {
		if !cohesive(acc, fields[i]) {
			return 0
		}
		acc = acc.Union(fields[i])
	}
	return s.Len()
}

// PartitionScore is the sum of SegmentScore over the partition.
func PartitionScore(fields []flow.FieldSet, p Partition) int {
	total := 0
	for _, s := range p {
		total += SegmentScore(fields, s)
	}
	return total
}

// DisjointPartition computes the optimal partition of a traversal with the
// given per-step field sets into at most maxSegments sub-traversals,
// maximising PartitionScore with ties broken toward fewer segments (longer
// sub-traversals need fewer cache entries, §4.2.2). Dynamic program over
// (steps consumed, segments used); O(N²·K) worst case with N ≤ MaxSteps.
func DisjointPartition(fields []flow.FieldSet, maxSegments int) Partition {
	n := len(fields)
	if n == 0 || maxSegments <= 0 {
		return nil
	}
	if maxSegments > n {
		maxSegments = n
	}
	// score[i][j] for segment [i,j) computed on demand via extension:
	// iterate i, grow j, track cohesion incrementally.
	type cell struct {
		score int
		segs  int
		prev  int // split point: segment [prev, j)
		set   bool
	}
	// best[k][j]: best over partitions of fields[0:j] into exactly k segments.
	best := make([][]cell, maxSegments+1)
	for k := range best {
		best[k] = make([]cell, n+1)
	}
	best[0][0] = cell{set: true}
	for k := 1; k <= maxSegments; k++ {
		for i := 0; i < n; i++ {
			if !best[k-1][i].set {
				continue
			}
			acc := flow.FieldSet(0)
			ok := true
			for j := i + 1; j <= n; j++ {
				step := fields[j-1]
				if j == i+1 {
					acc = step
				} else {
					if ok && !cohesive(acc, step) {
						ok = false
					}
					acc = acc.Union(step)
				}
				segScore := 0
				if ok {
					segScore = j - i
				}
				cand := cell{score: best[k-1][i].score + segScore, segs: k, prev: i, set: true}
				cur := &best[k][j]
				if !cur.set || cand.score > cur.score {
					*cur = cand
				}
			}
		}
	}
	// Pick the best k for full coverage; ties prefer fewer segments.
	bestK := -1
	for k := 1; k <= maxSegments; k++ {
		if !best[k][n].set {
			continue
		}
		if bestK == -1 || best[k][n].score > best[bestK][n].score {
			bestK = k
		}
	}
	if bestK == -1 {
		return nil
	}
	// Reconstruct.
	out := make(Partition, bestK)
	j := n
	for k := bestK; k >= 1; k-- {
		i := best[k][j].prev
		out[k-1] = Segment{Start: i, End: j}
		j = i
	}
	return out
}

// RandomPartition cuts the traversal at up to maxSegments-1 random distinct
// boundaries (the RND baseline of Fig. 16).
func RandomPartition(n, maxSegments int, rng *rand.Rand) Partition {
	if n == 0 || maxSegments <= 0 {
		return nil
	}
	if maxSegments > n {
		maxSegments = n
	}
	nCuts := 0
	if maxSegments > 1 {
		nCuts = rng.Intn(maxSegments) // 0..maxSegments-1 cuts
	}
	cutSet := map[int]bool{}
	for len(cutSet) < nCuts {
		cutSet[1+rng.Intn(n-1)] = true
	}
	cuts := make([]int, 0, nCuts+2)
	cuts = append(cuts, 0)
	for c := 1; c < n; c++ {
		if cutSet[c] {
			cuts = append(cuts, c)
		}
	}
	cuts = append(cuts, n)
	out := make(Partition, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		out = append(out, Segment{Start: cuts[i], End: cuts[i+1]})
	}
	return out
}

// OneToOnePartition gives each traversal step its own segment.
func OneToOnePartition(n int) Partition {
	out := make(Partition, n)
	for i := range out {
		out[i] = Segment{Start: i, End: i + 1}
	}
	return out
}

// PartitionTraversal applies a scheme to a traversal. rng is used only by
// SchemeRandom.
func PartitionTraversal(tr *pipeline.Traversal, maxSegments int, scheme Scheme, rng *rand.Rand) (Partition, error) {
	n := tr.Len()
	if n == 0 {
		return nil, fmt.Errorf("gigaflow: empty traversal")
	}
	var p Partition
	switch scheme {
	case SchemeDisjoint:
		fields := make([]flow.FieldSet, n)
		for i := 0; i < n; i++ {
			fields[i] = tr.StepFields(i).Intersect(AnalysisFields)
		}
		p = DisjointPartition(fields, maxSegments)
	case SchemeRandom:
		if rng == nil {
			return nil, fmt.Errorf("gigaflow: SchemeRandom requires an rng")
		}
		p = RandomPartition(n, maxSegments, rng)
	case SchemeOneToOne:
		if n > maxSegments {
			return nil, fmt.Errorf("gigaflow: 1-1 mapping needs %d tables, have %d", n, maxSegments)
		}
		p = OneToOnePartition(n)
	case SchemeProfile:
		return nil, fmt.Errorf("gigaflow: SchemeProfile needs cache state; use Cache.Insert")
	default:
		return nil, fmt.Errorf("gigaflow: unknown scheme %v", scheme)
	}
	if err := p.Validate(n, maxSegments); err != nil {
		return nil, err
	}
	return p, nil
}
