package gigaflow

import (
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// buildNoShareChain builds a pipeline where every flow takes a distinct
// rule at every table — zero sharing opportunity, the adversarial case for
// sub-traversal caching.
func buildNoSharePipeline(n int) *pipeline.Pipeline {
	p := pipeline.New("noshare")
	p.AddTable(0, "a", flow.NewFieldSet(flow.FieldEthDst))
	p.AddTable(1, "b", flow.NewFieldSet(flow.FieldIPDst))
	p.AddTable(2, "c", flow.NewFieldSet(flow.FieldTpSrc))
	for i := 0; i < n; i++ {
		v := uint64(i)
		p.MustAddRule(0, flow.MatchAll().WithField(flow.FieldEthDst, v), 10, nil, 1)
		p.MustAddRule(1, flow.MatchAll().WithField(flow.FieldIPDst, v), 10, nil, 2)
		p.MustAddRule(2, flow.MatchAll().WithField(flow.FieldTpSrc, v), 10, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	}
	return p
}

func noShareKey(i uint64) flow.Key {
	return flow.Key{}.
		With(flow.FieldEthDst, i).
		With(flow.FieldIPDst, i).
		With(flow.FieldTpSrc, i)
}

func TestAdaptiveFallsBackUnderZeroSharing(t *testing.T) {
	p := buildNoSharePipeline(400)
	c := New(p, Config{
		NumTables: 3, TableCapacity: 4096, Adaptive: true,
		// SampleEvery is huge so the whole-traversal assertion below is
		// not perturbed by a probation sample.
		AdaptiveTuning: AdaptiveConfig{WarmupInstalls: 100, MinSharing: 0.15, Alpha: 0.05, SampleEvery: 1 << 30},
	})
	for i := uint64(0); i < 400; i++ {
		tr := p.MustProcess(noShareKey(i))
		if _, err := c.Insert(tr, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Degraded() {
		t.Fatalf("zero-sharing workload must trigger fallback (sharing=%.3f)", c.SharingEstimate())
	}
	// Degraded inserts are whole traversals: 1 entry each in table 0. Add
	// a fresh 3-step flow and install it.
	before0, before1 := c.TableLen(0), c.TableLen(1)
	p.MustAddRule(0, flow.MatchAll().WithField(flow.FieldEthDst, 9000), 10, nil, 1)
	p.MustAddRule(1, flow.MatchAll().WithField(flow.FieldIPDst, 9000), 10, nil, 2)
	p.MustAddRule(2, flow.MatchAll().WithField(flow.FieldTpSrc, 9000), 10, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	trNew := p.MustProcess(noShareKey(9000))
	if _, err := c.Insert(trNew, 500); err != nil {
		t.Fatal(err)
	}
	if c.TableLen(0) != before0+1 || c.TableLen(1) != before1 {
		t.Errorf("degraded insert should add exactly one whole-traversal entry to table 0: %d->%d, %d->%d",
			before0, c.TableLen(0), before1, c.TableLen(1))
	}
	// And the whole-traversal entry must serve lookups.
	if res := c.Peek(noShareKey(9000)); !res.Hit || len(res.Path) != 1 {
		t.Errorf("whole-traversal entry broken: %+v", res)
	}
}

func TestAdaptiveStaysPartitionedUnderSharing(t *testing.T) {
	p := buildChainPipeline() // high-sharing pipeline from ltm_test
	c := New(p, Config{
		NumTables: 3, TableCapacity: 4096, Adaptive: true,
		AdaptiveTuning: AdaptiveConfig{WarmupInstalls: 50, MinSharing: 0.15, Alpha: 0.05},
	})
	// Flows sharing MAC and subnet segments: sharing stays high.
	for i := uint64(0); i < 300; i++ {
		port := uint64(1000)
		if i%2 == 1 {
			port = 2000
		}
		tr := p.MustProcess(chainKey(1+i%2, i%200, port))
		if _, err := c.Insert(tr, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Degraded() {
		t.Fatalf("high-sharing workload must stay partitioned (sharing=%.3f)", c.SharingEstimate())
	}
	if c.SharingEstimate() < 0.5 {
		t.Errorf("sharing estimate %.3f implausibly low", c.SharingEstimate())
	}
}

func TestAdaptiveRecovers(t *testing.T) {
	// After degradation, renewed sharing must lift the cache back into
	// partitioned mode: degraded single-segment inserts of recurring
	// traversals dedupe against each other, raising the estimate.
	p := buildNoSharePipeline(300)
	c := New(p, Config{
		NumTables: 3, TableCapacity: 8192, Adaptive: true,
		AdaptiveTuning: AdaptiveConfig{WarmupInstalls: 50, MinSharing: 0.15, Alpha: 0.05},
	})
	for i := uint64(0); i < 300; i++ {
		c.Insert(p.MustProcess(noShareKey(i)), int64(i))
	}
	if !c.Degraded() {
		t.Fatal("setup: expected degradation")
	}
	// Re-insert one hot traversal repeatedly (e.g. after idle expiry and
	// re-miss): its whole-traversal entry is reused every time.
	tr := p.MustProcess(noShareKey(7))
	for i := 0; i < 200; i++ {
		c.Insert(tr, int64(1000+i))
	}
	if c.Degraded() {
		t.Errorf("sharing recovered but cache still degraded (%.3f)", c.SharingEstimate())
	}
}

func TestAdaptiveDisabledByDefault(t *testing.T) {
	p := buildNoSharePipeline(50)
	c := New(p, Config{NumTables: 3, TableCapacity: 1024})
	for i := uint64(0); i < 50; i++ {
		c.Insert(p.MustProcess(noShareKey(i)), int64(i))
	}
	if c.Degraded() || c.SharingEstimate() != 0 {
		t.Error("adaptation must be off unless configured")
	}
}
