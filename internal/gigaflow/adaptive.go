package gigaflow

// Profile-guided adaptation (§7, "Traffic-Profile-Guided Optimizations"):
// in low-locality environments sub-traversal caching can trail Megaflow,
// since partitioning pays entry overhead without sharing in return. The
// paper proposes sampling traffic to estimate sharing and switching to
// Megaflow-style entries when sharing is poor. This file implements that
// proposal: the cache tracks an exponentially-weighted sharing rate over
// recent installs and, below a threshold, installs whole traversals as
// single-segment entries (exactly a Megaflow rule living in GF₁) instead
// of partitioned sub-traversals. When sharing recovers, partitioning
// resumes — per-install, with no reconfiguration.

// AdaptiveConfig tunes profile-guided adaptation; enabled via
// Config.Adaptive.
type AdaptiveConfig struct {
	// MinSharing is the sharing-rate threshold below which inserts fall
	// back to whole-traversal entries (default 0.15: at least ~1 in 7
	// recent sub-traversals was reused).
	MinSharing float64
	// Alpha is the EWMA weight of each new install observation
	// (default 0.01: roughly a 100-install horizon).
	Alpha float64
	// WarmupInstalls are always partitioned, to gather a signal before
	// judging (default 500).
	WarmupInstalls uint64
	// SampleEvery keeps 1 in SampleEvery inserts partitioned while
	// degraded (default 8) — the paper's periodic traffic sampling, which
	// lets the estimate recover when sharing returns. Only partitioned
	// inserts feed the estimator; whole-traversal installs measure
	// nothing about sub-traversal sharing.
	SampleEvery uint64
}

func (a AdaptiveConfig) withDefaults() AdaptiveConfig {
	if a.MinSharing == 0 {
		a.MinSharing = 0.15
	}
	if a.Alpha == 0 {
		a.Alpha = 0.01
	}
	if a.WarmupInstalls == 0 {
		a.WarmupInstalls = 500
	}
	if a.SampleEvery == 0 {
		a.SampleEvery = 8
	}
	return a
}

// adaptState is the cache's live sharing estimate.
type adaptState struct {
	cfg      AdaptiveConfig
	sharing  float64 // EWMA of per-(partitioned-)install sharing fraction
	installs uint64  // total inserts seen (partitioned or not)
	observed uint64  // partitioned inserts folded into the estimate
}

// observe folds one partitioned install's sharing fraction (reused
// segments / total segments) into the estimate.
func (a *adaptState) observe(reused, total int) {
	if total <= 0 {
		return
	}
	frac := float64(reused) / float64(total)
	a.sharing = (1-a.cfg.Alpha)*a.sharing + a.cfg.Alpha*frac
	a.observed++
}

// degraded reports whether inserts should fall back to whole-traversal
// (Megaflow-style) entries.
func (a *adaptState) degraded() bool {
	return a.observed >= a.cfg.WarmupInstalls && a.sharing < a.cfg.MinSharing
}

// sampleNow reports whether this degraded-mode insert is a probation
// sample that must be partitioned anyway.
func (a *adaptState) sampleNow() bool {
	return a.installs%a.cfg.SampleEvery == 0
}

// SharingEstimate exposes the EWMA sharing rate (for reports and tests).
func (c *Cache) SharingEstimate() float64 {
	if c.adapt == nil {
		return 0
	}
	return c.adapt.sharing
}

// Degraded reports whether adaptive mode is currently installing
// Megaflow-style entries.
func (c *Cache) Degraded() bool { return c.adapt != nil && c.adapt.degraded() }
