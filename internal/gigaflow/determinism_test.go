package gigaflow

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSameSeedRunsAreIdentical is the replay-determinism regression test
// behind gflint's detrand check: all cache randomness flows from
// Config.Seed, so two runs of the same workload with the same seed must
// produce bit-for-bit identical statistics and table occupancy.
// SchemeRandom exercises the rng hardest (every insert draws segment
// boundaries), and the tiny table capacity forces LRU evictions so the
// final state depends on the full history, not just the rule set.
func TestSameSeedRunsAreIdentical(t *testing.T) {
	run := func(seed int64) Snapshot {
		p := buildChainPipeline()
		c := New(p, Config{NumTables: 3, TableCapacity: 2, Scheme: SchemeRandom, Seed: seed})
		wl := rand.New(rand.NewSource(7)) // workload generator, fixed across runs
		now := int64(0)
		for i := 0; i < 500; i++ {
			now++
			k := chainKey(
				uint64(1+wl.Intn(2)),
				uint64(wl.Intn(2))<<16|uint64(wl.Intn(100)),
				uint64(1000+1000*wl.Intn(2)),
			)
			if res := c.Lookup(k, now); !res.Hit {
				if _, err := c.Insert(p.MustProcess(k), now); err != nil {
					t.Fatalf("insert: %v", err)
				}
			}
		}
		return c.Snapshot()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed runs diverged:\nrun 1: %+v\nrun 2: %+v", a, b)
	}
	if a.Hits == 0 || a.Misses == 0 {
		t.Errorf("workload too easy to be a regression test: %+v", a.Stats)
	}
}
