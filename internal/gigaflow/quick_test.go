package gigaflow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gigaflow/internal/flow"
)

// fieldSeq is a quick-checkable sequence of per-step field sets.
type fieldSeq []flow.FieldSet

// Generate produces plausible step field sequences: short traversals over
// a pool of realistic stage field sets, with occasional empties.
func (fieldSeq) Generate(r *rand.Rand, _ int) reflect.Value {
	pool := []flow.FieldSet{
		flow.NewFieldSet(flow.FieldInPort),
		flow.NewFieldSet(flow.FieldEthSrc, flow.FieldEthDst),
		flow.NewFieldSet(flow.FieldEthDst),
		flow.NewFieldSet(flow.FieldIPDst),
		flow.NewFieldSet(flow.FieldIPSrc, flow.FieldIPDst),
		flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpDst),
		flow.NewFieldSet(flow.FieldTpSrc),
		0,
	}
	n := 1 + r.Intn(12)
	s := make(fieldSeq, n)
	for i := range s {
		s[i] = pool[r.Intn(len(pool))]
	}
	return reflect.ValueOf(s)
}

var quickCfg = &quick.Config{MaxCount: 1500}

func TestQuickDisjointPartitionAlwaysValid(t *testing.T) {
	prop := func(fields fieldSeq, kRaw uint8) bool {
		k := 1 + int(kRaw)%6
		p := DisjointPartition(fields, k)
		return p.Validate(len(fields), k) == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDisjointPartitionDominatesSingle(t *testing.T) {
	// The DP's score is never worse than the single-segment partition or
	// the all-singletons partition (both are members of its search space
	// when k permits).
	prop := func(fields fieldSeq, kRaw uint8) bool {
		k := 1 + int(kRaw)%6
		p := DisjointPartition(fields, k)
		best := PartitionScore(fields, p)
		if s := PartitionScore(fields, Partition{{0, len(fields)}}); s > best {
			return false
		}
		if k >= len(fields) {
			if s := PartitionScore(fields, OneToOnePartition(len(fields))); s > best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDisjointPartitionScoreMonotoneInK(t *testing.T) {
	// More tables can never hurt the achievable score.
	prop := func(fields fieldSeq, kRaw uint8) bool {
		k := 1 + int(kRaw)%5
		a := PartitionScore(fields, DisjointPartition(fields, k))
		b := PartitionScore(fields, DisjointPartition(fields, k+1))
		return b >= a
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSegmentScoreBounds(t *testing.T) {
	// A segment scores either 0 or exactly its length.
	prop := func(fields fieldSeq) bool {
		n := len(fields)
		for i := 0; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				s := SegmentScore(fields, Segment{i, j})
				if s != 0 && s != j-i {
					return false
				}
				if j-i == 1 && s != 1 {
					return false // singletons are always cohesive
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomPartitionValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	prop := func(nRaw, kRaw uint8) bool {
		n := 1 + int(nRaw)%20
		k := 1 + int(kRaw)%6
		p := RandomPartition(n, k, rng)
		return p.Validate(n, k) == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
