package gigaflow

import (
	"math/rand"
	"testing"
)

func TestProfilePartitionPrefersResidentSegments(t *testing.T) {
	p := buildChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 64, Scheme: SchemeProfile})

	// Seed the cache with a non-canonical partition: [L2+L3] fused, then
	// [L4]. Plain disjoint DP would split all three stages (they are
	// pairwise disjoint, singletons score higher).
	trA := p.MustProcess(chainKey(1, 5, 1000))
	if _, err := c.InsertPartition(trA, Partition{{0, 2}, {2, 3}}, 0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("seed entries = %d", c.Len())
	}

	// A same-family flow (same MAC, same /24, same port rule): the
	// profile-guided partitioner must adopt the resident [0,2),[2,3)
	// partition and reuse both entries rather than installing three fresh
	// singletons.
	trB := p.MustProcess(chainKey(1, 6, 1000))
	entries, err := c.Insert(trB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("profile partition produced %d segments, want 2", len(entries))
	}
	if c.Len() != 2 {
		t.Errorf("entries grew to %d; everything should have been reused", c.Len())
	}
	if st := c.Stats(); st.SharedReuse != 2 {
		t.Errorf("SharedReuse = %d, want 2", st.SharedReuse)
	}
}

func TestProfilePartitionFallsBackToDisjoint(t *testing.T) {
	// With an empty cache there is nothing to reuse: the profile scheme
	// must produce exactly the disjoint partition.
	p := buildChainPipeline()
	prof := New(p, Config{NumTables: 3, TableCapacity: 64, Scheme: SchemeProfile})
	dp := New(p, Config{NumTables: 3, TableCapacity: 64})

	k := chainKey(1, 5, 1000)
	ep, err := prof.Insert(p.MustProcess(k), 0)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := dp.Insert(p.MustProcess(k), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep) != len(ed) {
		t.Fatalf("cold profile partition (%d segs) differs from DP (%d segs)", len(ep), len(ed))
	}
	for i := range ep {
		if !ep[i].Match.Equal(ed[i].Match) || ep[i].Tag != ed[i].Tag {
			t.Errorf("segment %d differs: %v vs %v", i, ep[i], ed[i])
		}
	}
}

func TestProfileHitSoundness(t *testing.T) {
	// The reuse bonus must never compromise correctness: any hit agrees
	// with the slowpath.
	rng := rand.New(rand.NewSource(77))
	p := buildRandomPipeline(rng)
	c := New(p, Config{NumTables: 4, TableCapacity: 4096, Scheme: SchemeProfile})
	for i := 0; i < 1200; i++ {
		k := randomChainKey(rng)
		if res := c.Lookup(k, int64(i)); res.Hit {
			tr := p.MustProcess(k)
			if res.Verdict != tr.Verdict || res.Final != tr.FinalKey() {
				t.Fatalf("profile-scheme hit diverges for %s", k)
			}
		} else {
			tr := p.MustProcess(k)
			if _, err := c.Insert(tr, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.Stats().Hits == 0 {
		t.Fatal("degenerate test")
	}
}

func TestProfileReducesEntriesVsDP(t *testing.T) {
	// Under churn with idle expiry and re-learning, the profile scheme
	// converges onto canonical partitions and should never need more
	// entries than plain DP for the same traffic.
	rng := rand.New(rand.NewSource(78))
	p := buildRandomPipeline(rng)
	run := func(scheme Scheme) int {
		c := New(p, Config{NumTables: 4, TableCapacity: 4096, Scheme: scheme})
		rng := rand.New(rand.NewSource(79))
		for i := 0; i < 3000; i++ {
			k := randomChainKey(rng)
			if res := c.Lookup(k, int64(i)); !res.Hit {
				c.Insert(p.MustProcess(k), int64(i))
			}
		}
		return c.Len()
	}
	prof, dp := run(SchemeProfile), run(SchemeDisjoint)
	if prof > dp*11/10 {
		t.Errorf("profile scheme uses %d entries vs DP's %d", prof, dp)
	}
}

func TestPartitionTraversalRejectsProfileScheme(t *testing.T) {
	p := buildChainPipeline()
	tr := p.MustProcess(chainKey(1, 5, 1000))
	if _, err := PartitionTraversal(tr, 3, SchemeProfile, nil); err == nil {
		t.Error("SchemeProfile without cache state must be rejected")
	}
	if SchemeProfile.String() != "PROF" {
		t.Error("scheme name")
	}
}

func TestProfilePartitionValidAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	p := buildRandomPipeline(rng)
	c := New(p, Config{NumTables: 4, TableCapacity: 512, Scheme: SchemeProfile})
	for i := 0; i < 800; i++ {
		k := randomChainKey(rng)
		tr := p.MustProcess(k)
		part := c.profilePartition(tr)
		if err := part.Validate(tr.Len(), 4); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		c.Insert(tr, int64(i))
	}
}
