package gigaflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// Shorthand field sets (post-AnalysisFields view: no eth_type/metadata).
var (
	fETH  = flow.NewFieldSet(flow.FieldEthSrc, flow.FieldEthDst)
	fIP   = flow.NewFieldSet(flow.FieldIPDst)
	fIPRT = flow.NewFieldSet(flow.FieldIPDst, flow.FieldEthDst) // L3 stage that also consults the MAC
	fDTP  = flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpDst)
	fSTP  = flow.NewFieldSet(flow.FieldTpSrc)
)

func TestAnalysisFieldsExcludesGlue(t *testing.T) {
	if AnalysisFields.Contains(flow.FieldEthType) || AnalysisFields.Contains(flow.FieldMeta) {
		t.Errorf("AnalysisFields must exclude eth_type and metadata: %v", AnalysisFields)
	}
	if !AnalysisFields.Contains(flow.FieldIPDst) || !AnalysisFields.Contains(flow.FieldTpSrc) {
		t.Error("AnalysisFields lost real headers")
	}
}

func TestSegmentScore(t *testing.T) {
	fields := []flow.FieldSet{fETH, fETH, fIPRT, fDTP, fSTP}
	cases := []struct {
		seg  Segment
		want int
	}{
		{Segment{0, 3}, 3}, // ETH,ETH,L3-route chain-overlap via eth_dst
		{Segment{0, 2}, 2},
		{Segment{3, 4}, 1}, // singleton always cohesive
		{Segment{2, 4}, 0}, // IP + dTCP cross a disjoint boundary
		{Segment{3, 5}, 0}, // dTCP + sTCP disjoint
		{Segment{0, 5}, 0},
	}
	for _, c := range cases {
		if got := SegmentScore(fields, c.seg); got != c.want {
			t.Errorf("SegmentScore(%v) = %d, want %d", c.seg, got, c.want)
		}
	}
}

func TestSegmentScoreEmptyFieldsMergeFreely(t *testing.T) {
	// A step that matched nothing (match-all rule) joins any segment.
	fields := []flow.FieldSet{fETH, 0, fIPRT}
	if got := SegmentScore(fields, Segment{0, 3}); got != 3 {
		t.Errorf("score with empty middle = %d, want 3", got)
	}
	fields = []flow.FieldSet{0, fDTP}
	if got := SegmentScore(fields, Segment{0, 2}); got != 2 {
		t.Errorf("score with empty head = %d, want 2", got)
	}
}

func TestDisjointPartitionGroupsWithinK(t *testing.T) {
	// 3 natural groups, K=3: the partition must fall exactly on the
	// disjoint boundaries and achieve the maximum score N.
	fields := []flow.FieldSet{fETH, fETH, fIPRT, fDTP, fSTP}
	p := DisjointPartition(fields, 3)
	if err := p.Validate(5, 3); err != nil {
		t.Fatal(err)
	}
	want := Partition{{0, 3}, {3, 4}, {4, 5}}
	if len(p) != 3 || p[0] != want[0] || p[1] != want[1] || p[2] != want[2] {
		t.Fatalf("partition = %v, want %v", p, want)
	}
	if got := PartitionScore(fields, p); got != 5 {
		t.Errorf("score = %d, want 5", got)
	}
}

func TestDisjointPartitionPrefersFewerSegments(t *testing.T) {
	// [ETH, ETH] with K=2: both {[0,2)} and {[0,1),[1,2)} score 2; the
	// single-segment partition needs fewer cache entries and must win.
	fields := []flow.FieldSet{fETH, fETH}
	p := DisjointPartition(fields, 2)
	if len(p) != 1 || p[0] != (Segment{0, 2}) {
		t.Fatalf("partition = %v, want single segment", p)
	}
}

func TestDisjointPartitionForcedMergeLosesLeast(t *testing.T) {
	// [ETH, ETH, L3-route] are chain-cohesive (the routing stage consults
	// eth_dst), so with K=3 the DP keeps the full score 5.
	fields := []flow.FieldSet{fETH, fETH, fIPRT, fDTP, fSTP}
	p := DisjointPartition(fields, 3)
	if got := PartitionScore(fields, p); got != 5 {
		t.Fatalf("score = %d (partition %v), want 5", got, p)
	}

	// With a truly disjoint IP group: [ETH,ETH | IP | dTCP | sTCP], K=3.
	// One boundary must be crossed; the DP keeps [ETH,ETH] (2) and one TCP
	// singleton, merging the two short groups.
	fields = []flow.FieldSet{fETH, fETH, fIP, fDTP, fSTP}
	p = DisjointPartition(fields, 3)
	if err := p.Validate(5, 3); err != nil {
		t.Fatal(err)
	}
	// Max achievable: 2 (ETH pair) + 1 + 0 (merged pair scores 0) = 3.
	if got := PartitionScore(fields, p); got != 3 {
		t.Errorf("score = %d (partition %v), want 3", got, p)
	}
	// The ETH pair must never be split across a kept boundary while a
	// zero-scoring split exists elsewhere.
	if p[0] != (Segment{0, 2}) {
		t.Errorf("first segment = %v, want [0,2)", p[0])
	}
}

func TestDisjointPartitionSingleTable(t *testing.T) {
	fields := []flow.FieldSet{fETH, fIP, fDTP, fSTP}
	p := DisjointPartition(fields, 1)
	if len(p) != 1 || p[0] != (Segment{0, 4}) {
		t.Fatalf("K=1 partition = %v", p)
	}
}

func TestDisjointPartitionEdgeCases(t *testing.T) {
	if p := DisjointPartition(nil, 3); p != nil {
		t.Errorf("empty input -> %v", p)
	}
	if p := DisjointPartition([]flow.FieldSet{fETH}, 0); p != nil {
		t.Errorf("K=0 -> %v", p)
	}
	p := DisjointPartition([]flow.FieldSet{fETH}, 5)
	if len(p) != 1 || p[0] != (Segment{0, 1}) {
		t.Errorf("single step -> %v", p)
	}
}

func TestDisjointPartitionAlwaysValidAndOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := []flow.FieldSet{fETH, fIP, fDTP, fSTP, 0, flow.NewFieldSet(flow.FieldInPort)}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(9)
		k := 1 + rng.Intn(5)
		fields := make([]flow.FieldSet, n)
		for i := range fields {
			fields[i] = pool[rng.Intn(len(pool))]
		}
		p := DisjointPartition(fields, k)
		if err := p.Validate(n, k); err != nil {
			t.Fatalf("trial %d: %v (fields=%v k=%d)", trial, err, fields, k)
		}
		got := PartitionScore(fields, p)
		best := bruteForceBest(fields, k)
		if got != best {
			t.Fatalf("trial %d: DP score %d != brute force %d (fields=%v k=%d part=%v)",
				trial, got, best, fields, k, p)
		}
	}
}

// bruteForceBest enumerates all partitions of n steps into ≤k segments.
func bruteForceBest(fields []flow.FieldSet, k int) int {
	n := len(fields)
	best := -1
	// Each of the n-1 boundaries is cut or not; count cuts ≤ k-1.
	for bits := 0; bits < 1<<(n-1); bits++ {
		cuts := 0
		for b := bits; b != 0; b &= b - 1 {
			cuts++
		}
		if cuts > k-1 {
			continue
		}
		var p Partition
		start := 0
		for i := 1; i < n; i++ {
			if bits&(1<<(i-1)) != 0 {
				p = append(p, Segment{start, i})
				start = i
			}
		}
		p = append(p, Segment{start, n})
		if s := PartitionScore(fields, p); s > best {
			best = s
		}
	}
	return best
}

func TestRandomPartitionValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(6)
		p := RandomPartition(n, k, rng)
		if err := p.Validate(n, k); err != nil {
			t.Fatalf("trial %d: %v (n=%d k=%d p=%v)", trial, err, n, k, p)
		}
	}
}

func TestOneToOnePartition(t *testing.T) {
	p := OneToOnePartition(4)
	if err := p.Validate(4, 4); err != nil {
		t.Fatal(err)
	}
	for i, s := range p {
		if s.Len() != 1 || s.Start != i {
			t.Errorf("segment %d = %v", i, s)
		}
	}
}

func TestPartitionValidate(t *testing.T) {
	bad := []Partition{
		nil,
		{{0, 2}, {3, 4}},         // gap
		{{0, 2}, {1, 4}},         // overlap
		{{0, 0}, {0, 4}},         // empty segment
		{{0, 2}, {2, 3}},         // incomplete (n=4)
		{{0, 1}, {1, 2}, {2, 4}}, // too many segments for max=2
	}
	maxSegs := []int{3, 3, 3, 3, 3, 2}
	for i, p := range bad {
		if err := p.Validate(4, maxSegs[i]); err == nil {
			t.Errorf("case %d: Validate(%v) should fail", i, p)
		}
	}
	good := Partition{{0, 2}, {2, 4}}
	if err := good.Validate(4, 0); err != nil {
		t.Errorf("maxSegments<=0 must disable the limit: %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeDisjoint.String() != "DP" || SchemeRandom.String() != "RND" || SchemeOneToOne.String() != "1-1" {
		t.Error("scheme names wrong")
	}
}
