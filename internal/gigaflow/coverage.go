package gigaflow

import "math"

// Coverage counts the rule-space coverage of the cache: the number of
// distinct complete entry chains a packet could traverse — sequences of
// entries at strictly increasing table indices whose tags link from the
// pipeline's start table to a terminal entry. Sub-traversal sharing makes
// this a cross product across tables, which is how a 4×8K Gigaflow cache
// covers orders of magnitude more rule space than a 32K Megaflow cache
// (Table 2). The count saturates at MaxCoverage.
//
// This is the paper's rule-space metric: it counts tag-compatible
// combinations without checking that some concrete packet satisfies each
// chain's match intersection, i.e. an upper bound realisable when match
// predicates are field-disjoint — exactly what disjoint partitioning
// optimises for.
func (c *Cache) Coverage() uint64 {
	// chains[i][e] = number of distinct chains starting at entry e of table
	// i and reaching a terminal entry. Computed right-to-left.
	counts := make([]map[*Entry]uint64, len(c.tables))
	// tagIndex[i][tag] = total chains over entries of table i with Tag==tag.
	tagTotals := make([]map[int]uint64, len(c.tables))
	for i := len(c.tables) - 1; i >= 0; i-- {
		counts[i] = make(map[*Entry]uint64)
		tagTotals[i] = make(map[int]uint64)
		for _, e := range c.tables[i].entries() {
			var n uint64
			if e.Terminal {
				n = 1
			} else {
				for j := i + 1; j < len(c.tables); j++ {
					n = satAdd(n, tagTotals[j][e.NextTag])
				}
			}
			counts[i][e] = n
			tagTotals[i][e.Tag] = satAdd(tagTotals[i][e.Tag], n)
		}
	}
	var total uint64
	for i := range c.tables {
		total = satAdd(total, tagTotals[i][c.startTag])
	}
	return total
}

// MaxCoverage is the saturation bound for Coverage.
const MaxCoverage = math.MaxUint64 / 2

func satAdd(a, b uint64) uint64 {
	s := a + b
	if s > MaxCoverage || s < a {
		return MaxCoverage
	}
	return s
}
