package gigaflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// BenchmarkCacheLookupHit is the LTM hit path: a K-table feed-forward walk
// where each table probe is a tag-grouped TSS lookup over fused-probe flow
// tables.
func BenchmarkCacheLookupHit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := diffChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 1024})
	keys := make([]flow.Key, 0, 256)
	for len(keys) < cap(keys) {
		k := diffChainKey(rng)
		tr, err := p.Process(k)
		if err != nil {
			continue
		}
		if _, err := c.Insert(tr, 0); err != nil {
			b.Fatal(err)
		}
		keys = append(keys, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := c.Lookup(keys[i%len(keys)], int64(i)); !res.Hit {
			b.Fatal("miss")
		}
	}
}
