package gigaflow

import (
	"math/rand"
	"sort"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// refTableLookup is the semantic reference for one LTM table probe,
// re-derived from the entry census instead of the classifier's internal
// structures: group the tag's entries into tuples by mask, stage them by
// (max priority desc, mask asc), and walk with the same early exit. It
// must reproduce the winner AND the tuple probe count bit for bit.
func refTableLookup(entries []*Entry, tag int, k flow.Key) (*Entry, int) {
	type tuple struct {
		mask    flow.Mask
		maxPrio int
		entries []*Entry
	}
	byMask := map[flow.Mask]*tuple{}
	var tuples []*tuple
	for _, e := range entries {
		if e.Tag != tag {
			continue
		}
		tp := byMask[e.Match.Mask]
		if tp == nil {
			tp = &tuple{mask: e.Match.Mask, maxPrio: e.Priority}
			byMask[e.Match.Mask] = tp
			tuples = append(tuples, tp)
		} else if e.Priority > tp.maxPrio {
			tp.maxPrio = e.Priority
		}
		tp.entries = append(tp.entries, e)
	}
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].maxPrio != tuples[j].maxPrio {
			return tuples[i].maxPrio > tuples[j].maxPrio
		}
		for w := range tuples[i].mask {
			if tuples[i].mask[w] != tuples[j].mask[w] {
				return tuples[i].mask[w] < tuples[j].mask[w]
			}
		}
		return false
	})
	var best *Entry
	probes := 0
	for _, tp := range tuples {
		if best != nil && best.Priority >= tp.maxPrio {
			break
		}
		probes++
		var cand *Entry
		for _, e := range tp.entries {
			if e.Match.Matches(k) && (cand == nil || e.Priority > cand.Priority) {
				cand = e
			}
		}
		if cand != nil && (best == nil || cand.Priority > best.Priority) {
			best = cand
		}
	}
	return best, probes
}

// refResult mirrors gigaflow.Result with reference-computed probe totals.
type refResult struct {
	hit          bool
	verdict      flow.Verdict
	final        flow.Key
	path         []*Entry
	tupleProbes  uint64
	tablesProbed uint64
}

// refWalk replays the K-table feed-forward walk against per-table entry
// censuses taken before the lookup.
func refWalk(c *Cache, p *pipeline.Pipeline, k flow.Key) refResult {
	var r refResult
	tag := p.Start
	cur := k
	for i := 0; i < c.NumTables(); i++ {
		r.tablesProbed++
		e, probes := refTableLookup(c.Entries(i), tag, cur)
		r.tupleProbes += uint64(probes)
		if e == nil {
			continue
		}
		r.path = append(r.path, e)
		cur, _ = flow.Apply(cur, e.Commit)
		if e.Terminal {
			r.hit = true
			r.verdict = e.Verdict
			r.final = cur
			return r
		}
		tag = e.NextTag
	}
	return r
}

// diffChainPipeline is a 3-stage pipeline with enough rules per stage that
// partitioned traversals populate every LTM table with multiple tuples.
func diffChainPipeline() *pipeline.Pipeline {
	p := pipeline.New("gf-diff")
	p.AddTable(0, "l2", flow.NewFieldSet(flow.FieldEthDst))
	p.AddTable(1, "l3", flow.NewFieldSet(flow.FieldIPDst))
	p.AddTable(2, "l4", flow.NewFieldSet(flow.FieldTpSrc))
	p.MustAddRule(0, flow.MustParseMatch("eth_dst=00:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(0, flow.MustParseMatch("eth_dst=00:00:00:00:00:02"), 10, nil, 1)
	p.MustAddRule(1, flow.MustParseMatch("ip_dst=10.0.0.0/24"), 30, nil, 2)
	p.MustAddRule(1, flow.MustParseMatch("ip_dst=10.0.0.0/16"), 20,
		[]flow.Action{flow.SetField(flow.FieldEthSrc, 0x2a)}, 2)
	p.MustAddRule(1, flow.MustParseMatch("ip_dst=10.0.0.0/8"), 10, []flow.Action{flow.Output(7)}, pipeline.NoTable)
	p.MustAddRule(2, flow.MustParseMatch("tp_src=1000"), 10, []flow.Action{flow.Output(1)}, pipeline.NoTable)
	p.MustAddRule(2, flow.MustParseMatch("tp_src=2000"), 10, []flow.Action{flow.Output(2)}, pipeline.NoTable)
	return p
}

func diffChainKey(rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldEthDst, uint64(1+rng.Intn(3))). // mac 3: drop at l2
		With(flow.FieldIPDst, 0x0a000000|uint64(rng.Intn(3))<<16|uint64(rng.Intn(3))<<8|uint64(rng.Intn(6))).
		With(flow.FieldTpSrc, []uint64{1000, 2000, 3000}[rng.Intn(3)])
}

// TestDifferentialAgainstReferenceWalk drives the Gigaflow backend through
// a randomized lookup/insert workload for K=2 (mixed-span priorities) and
// K=3 (tie-heavy unit priorities) and checks every lookup Result — hit,
// verdict, final key, matched path pointers — and every Stats counter
// against the reference walk. Capacities are sized so nothing is evicted:
// the reference models the live entry set exactly.
func TestDifferentialAgainstReferenceWalk(t *testing.T) {
	for _, numTables := range []int{2, 3} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p := diffChainPipeline()
			c := New(p, Config{NumTables: numTables, TableCapacity: 1024})
			var shadow Stats
			var now int64
			for step := 0; step < 3000; step++ {
				now++
				k := diffChainKey(rng)
				want := refWalk(c, p, k)
				res := c.Lookup(k, now)
				if res.Hit != want.hit {
					t.Fatalf("K=%d seed %d step %d: Lookup(%s).Hit=%v, reference %v",
						numTables, seed, step, k, res.Hit, want.hit)
				}
				if res.Hit && (res.Verdict != want.verdict || res.Final != want.final) {
					t.Fatalf("K=%d seed %d step %d: result (%v,%s), reference (%v,%s)",
						numTables, seed, step, res.Verdict, res.Final, want.verdict, want.final)
				}
				if len(res.Path) != len(want.path) {
					t.Fatalf("K=%d seed %d step %d: path len %d, reference %d",
						numTables, seed, step, len(res.Path), len(want.path))
				}
				for i := range res.Path {
					if res.Path[i] != want.path[i] {
						t.Fatalf("K=%d seed %d step %d: path[%d] = %v, reference %v",
							numTables, seed, step, i, res.Path[i], want.path[i])
					}
				}
				shadow.TablesProbed += want.tablesProbed
				shadow.TupleProbes += want.tupleProbes
				if want.hit {
					shadow.Hits++
				} else {
					shadow.Misses++
					if len(want.path) > 0 {
						shadow.Stalls++
					}
					if tr, err := p.Process(k); err == nil {
						entries, err := c.Insert(tr, now)
						if err != nil {
							t.Fatalf("K=%d seed %d step %d: insert: %v", numTables, seed, step, err)
						}
						shadow.InsertedTraversals++
						for _, e := range entries {
							if e.Created == now && e.Installs == 1 {
								shadow.EntriesCreated++
							} else {
								shadow.SharedReuse++
							}
						}
					}
				}
				if st := c.Stats(); st != shadow {
					t.Fatalf("K=%d seed %d step %d: stats %+v, shadow %+v",
						numTables, seed, step, st, shadow)
				}
			}
			if shadow.Hits == 0 || shadow.SharedReuse == 0 || shadow.Stalls == 0 {
				t.Fatalf("K=%d seed %d: workload too tame: %+v", numTables, seed, shadow)
			}
		}
	}
}

// TestPeekAgreesWithReferenceWalk covers the side-effect-free probe path
// against the same reference.
func TestPeekAgreesWithReferenceWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := diffChainPipeline()
	c := New(p, Config{NumTables: 3, TableCapacity: 1024})
	var now int64
	for i := 0; i < 300; i++ {
		now++
		k := diffChainKey(rng)
		if tr, err := p.Process(k); err == nil {
			if _, err := c.Insert(tr, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := c.Stats()
	for i := 0; i < 500; i++ {
		k := diffChainKey(rng)
		want := refWalk(c, p, k)
		res := c.Peek(k)
		if res.Hit != want.hit || (res.Hit && (res.Verdict != want.verdict || res.Final != want.final)) {
			t.Fatalf("Peek(%s) = %+v, reference %+v", k, res, want)
		}
	}
	if c.Stats() != stats {
		t.Fatal("Peek mutated stats")
	}
}
