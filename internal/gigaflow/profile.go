package gigaflow

import (
	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// Profile-guided partitioning (§7, "Alternative Methods for Sub-Traversal
// Partitioning"): the paper suggests optimising traversal partitioning
// based on traffic patterns. SchemeProfile implements that idea without
// any offline training: when choosing where to cut a traversal, segments
// whose LTM entries are *already resident* in the target table earn a
// reuse bonus that dominates the disjointness score. Recurring pipeline
// structure therefore converges onto one canonical partition per
// sub-traversal family — maximising sharing — while novel structure still
// falls back to disjoint partitioning.

// reuseBonusWeight makes one reused segment outweigh any achievable
// disjointness score (which is bounded by the traversal length).
const reuseBonusWeight = pipeline.DefaultMaxSteps + 1

// profilePartition computes the reuse-aware optimal partition of tr into
// at most len(c.tables) segments. It extends the DisjointPartition dynamic
// program with a per-(segment, target-table) reuse bonus, so its
// complexity gains a Compose per candidate segment: O(N²·K) compositions.
func (c *Cache) profilePartition(tr *pipeline.Traversal) Partition {
	n := tr.Len()
	maxSegments := len(c.tables)
	if n == 0 || maxSegments <= 0 {
		return nil
	}
	if maxSegments > n {
		maxSegments = n
	}
	fields := make([]flow.FieldSet, n)
	for i := 0; i < n; i++ {
		fields[i] = tr.StepFields(i).Intersect(AnalysisFields)
	}

	// segScore[i][j] caches the disjointness score of segment [i, j).
	// reused[k][i][j] would be large; compute reuse lazily per DP cell
	// instead (the Compose dominates anyway).
	type cell struct {
		score int
		prev  int
		set   bool
	}
	best := make([][]cell, maxSegments+1)
	for k := range best {
		best[k] = make([]cell, n+1)
	}
	best[0][0] = cell{set: true}

	for k := 1; k <= maxSegments; k++ {
		table := c.tables[k-1]
		for i := 0; i < n; i++ {
			if !best[k-1][i].set {
				continue
			}
			acc := flow.FieldSet(0)
			cohesiveRun := true
			for j := i + 1; j <= n; j++ {
				step := fields[j-1]
				if j == i+1 {
					acc = step
				} else {
					if cohesiveRun && !cohesive(acc, step) {
						cohesiveRun = false
					}
					acc = acc.Union(step)
				}
				segScore := 0
				if cohesiveRun {
					segScore = j - i
				}
				if segmentResident(tr, Segment{i, j}, table) {
					segScore += reuseBonusWeight
				}
				cand := cell{score: best[k-1][i].score + segScore, prev: i, set: true}
				if cur := &best[k][j]; !cur.set || cand.score > cur.score {
					*cur = cand
				}
			}
		}
	}

	bestK := -1
	for k := 1; k <= maxSegments; k++ {
		if best[k][n].set && (bestK == -1 || best[k][n].score > best[bestK][n].score) {
			bestK = k
		}
	}
	if bestK == -1 {
		return nil
	}
	out := make(Partition, bestK)
	j := n
	for k := bestK; k >= 1; k-- {
		i := best[k][j].prev
		out[k-1] = Segment{Start: i, End: j}
		j = i
	}
	return out
}

// segmentResident reports whether the LTM entry this segment would compile
// to already exists (with identical semantics) in the target table.
func segmentResident(tr *pipeline.Traversal, seg Segment, t *ltmTable) bool {
	cand := buildEntry(tr, seg, 0)
	old := t.get(cand.Tag, cand.Match, cand.Priority)
	return old != nil && sameSemantics(old, cand)
}
