package gigaflow

import (
	"fmt"
	"math/rand"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
	"gigaflow/internal/tss"
)

// TagDone marks an LTM entry that terminates its traversal (the packet is
// output or dropped; no further cache table is consulted).
const TagDone = -2

// Entry is one LTM cache rule: ⟨M_k, ω_k, ρ_k, τ_k, α_k⟩ of §4.2.3. The
// match is ternary over the flow fields; the table tag τ is matched
// exactly; the priority ρ equals the sub-traversal's span in pipeline
// tables (Longest Traversal Matching).
type Entry struct {
	// Tag is τ: the vSwitch pipeline table ID at which this sub-traversal
	// starts. A packet matches the entry only while its metadata tag equals
	// Tag.
	Tag int
	// Match is M_k over ω_k: the flow-state predicate at sub-traversal
	// entry.
	Match flow.Match
	// Priority is ρ: the number of pipeline tables spanned; LTM picks the
	// longest span among matching entries in a table.
	Priority int
	// Commit is the set-field part of α: the header rewrites accumulated
	// across the sub-traversal.
	Commit []flow.Action
	// NextTag is the tag update in α: the pipeline table expected after
	// this sub-traversal, or TagDone when Terminal.
	NextTag int
	// Terminal marks the traversal-ending sub-traversal; Verdict is its
	// output/drop decision.
	Terminal bool
	Verdict  flow.Verdict

	// Parent is the flow state entering the sub-traversal when it was
	// created; revalidation replays it from Tag for Priority steps.
	Parent flow.Key
	// Version is the pipeline version last validated against.
	Version uint64
	// Sig is the sub-traversal's path signature (table:rule sequence).
	Sig string
	// Installs counts how many slowpath traversals produced this entry —
	// the sub-traversal sharing frequency of Fig. 11.
	Installs uint64
	// CtConn and CtEpoch tie a connection-dependent entry (one whose
	// sub-traversal resolved a NAT action) to the connection state it was
	// built under; CtEpoch zero means connection-independent. The
	// datapath validates the pair against the conntrack table on hit.
	CtConn  flow.Key
	CtEpoch uint64

	Hits    uint64
	LastHit int64
	Created int64

	table      *ltmTable
	prev, next *Entry // per-table LRU
}

// String renders the entry compactly.
func (e *Entry) String() string {
	next := fmt.Sprintf("tag:=%d", e.NextTag)
	if e.Terminal {
		next = e.Verdict.String()
	}
	return fmt.Sprintf("ltm{τ=%d ρ=%d %s -> %v, %s}", e.Tag, e.Priority, e.Match, e.Commit, next)
}

// TableIndex reports which LTM cache table (GF_k) holds the entry, or -1
// for an entry not currently installed.
func (e *Entry) TableIndex() int {
	if e.table == nil {
		return -1
	}
	return e.table.idx
}

// TableStats counts per-LTM-table cache events, the per-table view the
// telemetry layer exports (occupancy and capacity live alongside them in
// TableSnapshot).
type TableStats struct {
	// Hits counts lookups that matched an entry in this table (every table
	// on a hit chain counts, not just the terminal one).
	Hits uint64 `json:"hits"`
	// Inserts counts fresh entries created in this table.
	Inserts uint64 `json:"inserts"`
	// EvictLRU/Expired/Revoked count removals by cause (capacity pressure,
	// idle timeout, revalidation).
	EvictLRU uint64 `json:"evict_lru"`
	Expired  uint64 `json:"expired"`
	Revoked  uint64 `json:"revoked"`
}

// ltmTable is one hardware cache table GF_k: ternary entries grouped by
// exact tag, with per-table capacity and LRU order.
type ltmTable struct {
	idx      int
	capacity int
	byTag    map[int]*tss.Classifier[*Entry]
	count    int
	lruHead  *Entry
	lruTail  *Entry
	stats    TableStats
}

// lookup probes the classifier group for tag, returning the best match
// and the number of tuple probes spent.
//
//gf:hotpath
func (t *ltmTable) lookup(tag int, k flow.Key) (*Entry, int) {
	cls := t.byTag[tag]
	if cls == nil {
		return nil, 0
	}
	e, probes := cls.Lookup(k)
	if e == nil {
		return nil, probes
	}
	return e.Value, probes
}

func (t *ltmTable) get(tag int, m flow.Match, prio int) *Entry {
	cls := t.byTag[tag]
	if cls == nil {
		return nil
	}
	e, ok := cls.Get(m, prio)
	if !ok {
		return nil
	}
	return e.Value
}

func (t *ltmTable) insert(e *Entry) {
	cls := t.byTag[e.Tag]
	if cls == nil {
		cls = tss.New[*Entry]()
		t.byTag[e.Tag] = cls
	}
	cls.Insert(&tss.Entry[*Entry]{Match: e.Match, Priority: e.Priority, Value: e})
	e.table = t
	t.count++
	t.pushFront(e)
}

func (t *ltmTable) remove(e *Entry) {
	cls := t.byTag[e.Tag]
	if cls == nil {
		return
	}
	if cls.Delete(e.Match, e.Priority) {
		t.count--
		t.unlink(e)
		if cls.Len() == 0 {
			delete(t.byTag, e.Tag)
		}
	}
}

func (t *ltmTable) pushFront(e *Entry) {
	e.prev = nil
	e.next = t.lruHead
	if t.lruHead != nil {
		t.lruHead.prev = e
	}
	t.lruHead = e
	if t.lruTail == nil {
		t.lruTail = e
	}
}

func (t *ltmTable) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if t.lruHead == e {
		t.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if t.lruTail == e {
		t.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (t *ltmTable) touch(e *Entry) {
	if t.lruHead == e {
		return
	}
	t.unlink(e)
	t.pushFront(e)
}

func (t *ltmTable) entries() []*Entry {
	out := make([]*Entry, 0, t.count)
	for _, cls := range t.byTag {
		cls.Range(func(e *tss.Entry[*Entry]) bool {
			out = append(out, e.Value)
			return true
		})
	}
	return out
}

// Stats counts Gigaflow cache events.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Stalls are misses where the packet matched a partial entry chain but
	// the tag sequence never reached a terminal entry.
	Stalls uint64 `json:"stalls"`
	// InsertedTraversals counts traversals the slowpath compiled into the
	// cache; EntriesCreated the fresh LTM entries that produced;
	// SharedReuse the sub-traversals that were already present (the
	// pipeline-aware sharing the design exploits).
	InsertedTraversals uint64 `json:"inserted_traversals"`
	EntriesCreated     uint64 `json:"entries_created"`
	SharedReuse        uint64 `json:"shared_reuse"`
	Conflicts          uint64 `json:"conflicts"` // same ⟨τ,M,ρ⟩ with different actions; replaced
	Rejected           uint64 `json:"rejected"`  // traversal not installed: target tables full
	EvictLRU           uint64 `json:"evict_lru"`
	Expired            uint64 `json:"expired"`
	Revoked            uint64 `json:"revoked"`
	CtInvalid          uint64 `json:"ct_invalid"` // removed by conntrack epoch invalidation
	RevalWork          uint64 `json:"reval_work"` // pipeline table lookups spent revalidating
	// TablesProbed counts per-lookup table consultations, and TupleProbes
	// the TSS tuple probes within them — the software search work a
	// CPU-resident Gigaflow cache would spend (Fig. 17).
	TablesProbed uint64 `json:"tables_probed"`
	TupleProbes  uint64 `json:"tuple_probes"`
}

// HitRate returns Hits / (Hits+Misses), or 0 when idle.
func (s *Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Config parameterises a Gigaflow cache.
type Config struct {
	// NumTables is K, the number of feed-forward LTM tables (paper: 4).
	NumTables int
	// TableCapacity is the per-table entry limit (paper: 8K).
	TableCapacity int
	// Scheme selects the partitioning strategy (default SchemeDisjoint).
	Scheme Scheme
	// Seed drives SchemeRandom.
	Seed int64
	// NoLRUEviction makes installs fail when a target table is full
	// instead of evicting its least-recently-used entry.
	NoLRUEviction bool
	// Adaptive enables §7's traffic-profile-guided fallback: when the
	// recent sub-traversal sharing rate drops below AdaptiveTuning's
	// threshold, traversals are installed as single whole-traversal
	// entries (Megaflow behaviour) until sharing recovers.
	Adaptive bool
	// AdaptiveTuning adjusts the adaptation thresholds; zero values take
	// defaults.
	AdaptiveTuning AdaptiveConfig
}

// Cache is the Gigaflow LTM cache: K capacity-bounded ternary tables in a
// feed-forward pipeline.
type Cache struct {
	cfg      Config
	pipe     *pipeline.Pipeline
	startTag int
	tables   []*ltmTable
	rng      *rand.Rand
	stats    Stats
	adapt    *adaptState
	// path is the reusable match-path buffer handed out as Result.Path.
	// Sized to K at construction so the hot-path Lookup never grows it.
	path []*Entry
	// observeInsert marks whether the in-flight InsertPartition should
	// feed the adaptive estimator (partitioned inserts only).
	observeInsert bool
}

// New creates a Gigaflow cache bound to a pipeline (the pipeline defines
// the start tag and is replayed during revalidation).
func New(p *pipeline.Pipeline, cfg Config) *Cache {
	if cfg.NumTables <= 0 || cfg.TableCapacity <= 0 {
		panic(fmt.Sprintf("gigaflow: bad config %+v", cfg))
	}
	c := &Cache{
		cfg:      cfg,
		pipe:     p,
		startTag: p.Start,
		tables:   make([]*ltmTable, cfg.NumTables),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		path:     make([]*Entry, 0, cfg.NumTables),
	}
	for i := range c.tables {
		c.tables[i] = &ltmTable{idx: i, capacity: cfg.TableCapacity, byTag: make(map[int]*tss.Classifier[*Entry])}
	}
	if cfg.Adaptive {
		c.adapt = &adaptState{cfg: cfg.AdaptiveTuning.withDefaults()}
	}
	return c
}

// NumTables reports K.
func (c *Cache) NumTables() int { return len(c.tables) }

// Len reports the total entries across all tables.
func (c *Cache) Len() int {
	n := 0
	for _, t := range c.tables {
		n += t.count
	}
	return n
}

// TableLen reports the entry count of table i.
func (c *Cache) TableLen(i int) int { return c.tables[i].count }

// Capacity reports the total entry capacity (K × per-table).
func (c *Cache) Capacity() int { return c.cfg.NumTables * c.cfg.TableCapacity }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// TableSnapshot describes one LTM table for introspection: counters plus
// occupancy.
type TableSnapshot struct {
	Index    int `json:"index"`
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
	// Tags is the number of distinct pipeline-table tags resident (each is
	// one TSS classifier group).
	Tags int `json:"tags"`
	TableStats
}

// TableSnapshot reports table i's counters and occupancy.
func (c *Cache) TableSnapshot(i int) TableSnapshot {
	t := c.tables[i]
	return TableSnapshot{Index: i, Len: t.count, Capacity: t.capacity,
		Tags: len(t.byTag), TableStats: t.stats}
}

// Snapshot bundles cache-wide counters, occupancy, and the per-table view
// for telemetry export. Not safe for concurrent use with cache mutation;
// call from the goroutine driving the cache.
type Snapshot struct {
	Stats
	Len      int             `json:"len"`
	Capacity int             `json:"capacity"`
	Tables   []TableSnapshot `json:"tables"`
}

// Snapshot captures the cache's current telemetry view.
func (c *Cache) Snapshot() Snapshot {
	s := Snapshot{Stats: c.stats, Len: c.Len(), Capacity: c.Capacity()}
	s.Tables = make([]TableSnapshot, len(c.tables))
	for i := range c.tables {
		s.Tables[i] = c.TableSnapshot(i)
	}
	return s
}

// Result is the outcome of one LTM cache lookup.
type Result struct {
	Hit     bool
	Verdict flow.Verdict
	Final   flow.Key // flow state after all matched commits (valid on hit)
	Path    []*Entry // entries matched, in table order
}

// Lookup walks the K feed-forward tables with LTM semantics: in each table
// the packet may match at most one entry (highest ρ among entries with the
// current tag), applying its rewrites and tag update; tables whose entries
// do not carry the current tag are skipped. The lookup hits iff a terminal
// entry fires.
//
// Result.Path aliases a buffer owned by the cache and is only valid until
// the next Lookup; callers that need to keep it must copy. The cache is
// single-goroutine by design (the paper dedicates one core to the
// slowpath), so the shared buffer is safe.
//
//gf:hotpath
func (c *Cache) Lookup(k flow.Key, now int64) Result {
	return c.lookupStats(k, now, &c.stats)
}

// lookupStats is the Lookup body with its counter destination injected:
// &c.stats for single lookups, a batch-local accumulator for BatchLookup.
// Per-table hit counts, entry hit counts, and LRU positions always update
// per packet; only the cache-wide counters are redirected.
//
//gf:hotpath
func (c *Cache) lookupStats(k flow.Key, now int64, s *Stats) Result {
	tag := c.startTag
	cur := k
	c.path = c.path[:0]
	for _, t := range c.tables {
		s.TablesProbed++
		e, probes := t.lookup(tag, cur)
		s.TupleProbes += uint64(probes)
		if e == nil {
			continue
		}
		t.stats.Hits++
		c.path = append(c.path, e)
		cur, _ = flow.Apply(cur, e.Commit)
		if e.Terminal {
			for _, pe := range c.path {
				pe.Hits++
				pe.LastHit = now
				pe.table.touch(pe)
			}
			s.Hits++
			return Result{Hit: true, Verdict: e.Verdict, Final: cur, Path: c.path}
		}
		tag = e.NextTag
	}
	s.Misses++
	if len(c.path) > 0 {
		s.Stalls++
	}
	return Result{Path: c.path}
}

// BatchLookup accumulates the cache-wide lookup counters (hits, misses,
// stalls, probe totals) locally so a packet batch updates Stats once, in
// Flush, instead of once per packet. Results alias the same cache-owned
// Path buffer as Lookup. The zero value is a no-op accumulator whose
// Lookup must not be called; obtain usable values from Cache.BatchLookup.
type BatchLookup struct {
	c     *Cache
	delta Stats
}

// BatchLookup starts a batched lookup sequence against c.
func (c *Cache) BatchLookup() BatchLookup { return BatchLookup{c: c} }

// Lookup is Cache.Lookup with counters deferred to Flush.
//
//gf:hotpath
func (b *BatchLookup) Lookup(k flow.Key, now int64) Result {
	return b.c.lookupStats(k, now, &b.delta)
}

// Flush folds the accumulated counters into the cache's Stats — the one
// stats update the whole batch pays. Safe on the zero value.
func (b *BatchLookup) Flush() {
	if b.c == nil {
		return
	}
	s := &b.c.stats
	s.Hits += b.delta.Hits
	s.Misses += b.delta.Misses
	s.Stalls += b.delta.Stalls
	s.TablesProbed += b.delta.TablesProbed
	s.TupleProbes += b.delta.TupleProbes
	b.delta = Stats{}
}

// Peek is Lookup without statistics or LRU side effects.
func (c *Cache) Peek(k flow.Key) Result {
	tag := c.startTag
	cur := k
	var path []*Entry
	for _, t := range c.tables {
		e, _ := t.lookup(tag, cur)
		if e == nil {
			continue
		}
		path = append(path, e)
		cur, _ = flow.Apply(cur, e.Commit)
		if e.Terminal {
			return Result{Hit: true, Verdict: e.Verdict, Final: cur, Path: path}
		}
		tag = e.NextTag
	}
	return Result{Path: path}
}

// buildEntry compiles Steps[seg] of tr into an LTM entry.
func buildEntry(tr *pipeline.Traversal, seg Segment, now int64) *Entry {
	match, commit := tr.Compose(seg.Start, seg.End)
	e := &Entry{
		Tag:      tr.Steps[seg.Start].TableID,
		Match:    match,
		Priority: seg.Len(),
		Commit:   commit,
		Parent:   tr.Steps[seg.Start].Pre,
		Version:  tr.Version,
		Sig:      tr.SegmentSignature(seg.Start, seg.End),
		Installs: 1,
		LastHit:  now,
		Created:  now,
	}
	if tr.SegmentCtDep(seg.Start, seg.End) {
		e.CtConn, e.CtEpoch = tr.CtConn, tr.CtEpoch
	}
	if seg.End == tr.Len() && tr.Verdict.Terminal() {
		e.Terminal = true
		e.Verdict = tr.Verdict
		e.NextTag = TagDone
	} else {
		e.NextTag = tr.Steps[seg.End].TableID
	}
	return e
}

// sameSemantics reports whether an existing entry is behaviourally
// identical to a candidate (so installation can be deduplicated — the
// sharing that gives Gigaflow its coverage).
func sameSemantics(a, b *Entry) bool {
	return a.Tag == b.Tag && a.Priority == b.Priority && a.Match.Equal(b.Match) &&
		a.NextTag == b.NextTag && a.Terminal == b.Terminal && a.Verdict == b.Verdict &&
		a.CtConn == b.CtConn && a.CtEpoch == b.CtEpoch &&
		flow.ActionsEqual(a.Commit, b.Commit)
}

// Insert partitions a traversal per the configured scheme and installs the
// resulting LTM rules across the cache tables (segment j into table j).
// Sub-traversals already present are reused rather than duplicated.
// Returns the entries now backing the traversal, or an error when the
// traversal cannot be installed (partitioning failure, or a full table
// with eviction disabled).
//
// With Config.Adaptive set and the recent sharing rate degraded, the
// traversal is instead installed whole — a single Megaflow-style entry in
// GF₁ — per §7's profile-guided fallback.
func (c *Cache) Insert(tr *pipeline.Traversal, now int64) ([]*Entry, error) {
	var part Partition
	partitioned := true
	if c.adapt != nil {
		c.adapt.installs++
		if c.adapt.degraded() && !c.adapt.sampleNow() {
			part = Partition{{Start: 0, End: tr.Len()}}
			partitioned = false
		}
	}
	if partitioned {
		if c.cfg.Scheme == SchemeProfile {
			part = c.profilePartition(tr)
			if err := part.Validate(tr.Len(), len(c.tables)); err != nil {
				c.stats.Rejected++
				return nil, err
			}
		} else {
			var err error
			part, err = PartitionTraversal(tr, len(c.tables), c.cfg.Scheme, c.rng)
			if err != nil {
				c.stats.Rejected++
				return nil, err
			}
		}
	}
	c.observeInsert = partitioned
	return c.InsertPartition(tr, part, now)
}

// InsertPartition installs a traversal under an explicit partition
// (segment j goes to table j). Exposed for the Fig. 16 scheme comparison
// and for tests.
func (c *Cache) InsertPartition(tr *pipeline.Traversal, part Partition, now int64) ([]*Entry, error) {
	if err := part.Validate(tr.Len(), len(c.tables)); err != nil {
		c.stats.Rejected++
		return nil, err
	}
	entries := make([]*Entry, len(part))
	fresh := make([]bool, len(part))
	// First pass: dedupe against existing entries.
	for i, seg := range part {
		cand := buildEntry(tr, seg, now)
		if old := c.tables[i].get(cand.Tag, cand.Match, cand.Priority); old != nil {
			if sameSemantics(old, cand) {
				entries[i] = old
				continue
			}
			// Same predicate, different behaviour: stale sibling from an
			// earlier pipeline version; it will be replaced below.
			c.stats.Conflicts++
		}
		entries[i] = cand
		fresh[i] = true
	}
	if c.cfg.NoLRUEviction {
		// All-or-nothing capacity precheck (LRU eviction otherwise
		// guarantees room).
		for i := range part {
			if fresh[i] && c.tables[i].count >= c.tables[i].capacity &&
				c.tables[i].get(entries[i].Tag, entries[i].Match, entries[i].Priority) == nil {
				c.stats.Rejected++
				return nil, fmt.Errorf("gigaflow: table %d full (%d entries)", i, c.tables[i].count)
			}
		}
	}
	// Second pass: install.
	reused := 0
	for i := range part {
		e := entries[i]
		if !fresh[i] {
			e.Installs++
			c.stats.SharedReuse++
			reused++
			continue
		}
		t := c.tables[i]
		if old := t.get(e.Tag, e.Match, e.Priority); old != nil {
			t.remove(old) // conflict replacement
		} else if t.count >= t.capacity {
			if t.lruTail == nil {
				c.stats.Rejected++
				return nil, fmt.Errorf("gigaflow: table %d has zero capacity", i)
			}
			t.remove(t.lruTail)
			c.stats.EvictLRU++
			t.stats.EvictLRU++
		}
		t.insert(e)
		c.stats.EntriesCreated++
		t.stats.Inserts++
	}
	c.stats.InsertedTraversals++
	if c.adapt != nil && c.observeInsert {
		c.adapt.observe(reused, len(part))
	}
	c.observeInsert = false // consumed; direct InsertPartition calls never observe
	return entries, nil
}

// Remove evicts a connection-dependent entry whose epoch check failed —
// the conntrack invalidation hook. No-op for an entry not currently
// installed.
func (c *Cache) Remove(e *Entry) {
	if e.table == nil {
		return
	}
	e.table.remove(e)
	c.stats.CtInvalid++
}

// Entries returns every entry of table i in unspecified order.
func (c *Cache) Entries(i int) []*Entry { return c.tables[i].entries() }

// AllEntries returns every entry across tables.
func (c *Cache) AllEntries() []*Entry {
	var out []*Entry
	for _, t := range c.tables {
		out = append(out, t.entries()...)
	}
	return out
}

// ExpireIdle removes entries idle for longer than maxIdle (§4.3.2: stale
// sub-traversals are evicted individually, not whole parent traversals).
func (c *Cache) ExpireIdle(now, maxIdle int64) int {
	n := 0
	for _, t := range c.tables {
		var stale []*Entry
		for _, e := range t.entries() {
			if now-e.LastHit > maxIdle {
				stale = append(stale, e)
			}
		}
		for _, e := range stale {
			t.remove(e)
			c.stats.Expired++
			t.stats.Expired++
			n++
		}
	}
	return n
}

// Revalidate checks every entry against the current pipeline rules
// (§4.3.1): the entry's parent flow is replayed from its table tag for the
// length of its sub-traversal, and the entry is evicted when its match,
// rewrites, tag update, or verdict changed. Work is proportional to
// sub-traversal lengths — the reason Gigaflow revalidates ~2× faster than
// Megaflow (§6.3.6).
func (c *Cache) Revalidate() (evicted, work int) {
	for _, t := range c.tables {
		var bad []*Entry
		for _, e := range t.entries() {
			if e.Version == c.pipe.Version {
				continue
			}
			ptr, err := c.pipe.ProcessPartial(e.Tag, e.Parent, e.Priority)
			if err != nil || ptr.Len() != e.Priority {
				bad = append(bad, e)
				continue
			}
			work += ptr.Len()
			cand := buildPartialEntry(ptr, e.Priority)
			if !sameSemantics(cand, e) {
				bad = append(bad, e)
			} else {
				e.Version = c.pipe.Version
			}
		}
		for _, e := range bad {
			t.remove(e)
			c.stats.Revoked++
			t.stats.Revoked++
			evicted++
		}
	}
	c.stats.RevalWork += uint64(work)
	return evicted, work
}

// buildPartialEntry compiles the first span steps of a partial traversal
// into an entry for revalidation comparison.
func buildPartialEntry(tr *pipeline.Traversal, span int) *Entry {
	match, commit := tr.Compose(0, span)
	e := &Entry{
		Tag:      tr.Steps[0].TableID,
		Match:    match,
		Priority: span,
		Commit:   commit,
	}
	if tr.Verdict.Terminal() && span == tr.Len() {
		e.Terminal = true
		e.Verdict = tr.Verdict
		e.NextTag = TagDone
	} else {
		e.NextTag = tr.NextTable
	}
	return e
}
