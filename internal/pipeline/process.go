package pipeline

import (
	"errors"
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/tss"
)

// ErrTooManySteps is returned when a traversal exceeds MaxSteps, which
// indicates a goto-table loop in the pipeline program.
var ErrTooManySteps = errors.New("pipeline: traversal exceeded max steps (goto-table loop?)")

// Resolver turns stateful actions (dnat/snat/ct_nat) into the concrete
// set-field rewrites valid for the packet being traversed. The datapath
// provides one backed by its conntrack table; traversals run without a
// resolver (the reference pipeline walk, cache revalidation) treat
// stateful actions as no-ops, which revalidation then conservatively
// rejects.
type Resolver interface {
	// Resolve maps action a into concrete actions for the current packet
	// and reports the connection tuple and epoch the resolution depended
	// on. ok=false means the action cannot be resolved (no connection,
	// unknown pool) and is skipped.
	Resolve(a flow.Action) (resolved []flow.Action, conn flow.Key, epoch uint64, ok bool)
}

// natTupleMask is the 5-tuple a resolved NAT step unwildcards: the
// rewrite is per-connection, so the composed entry must be exact on the
// connection's identifying fields.
var natTupleMask = flow.ExactFields(
	flow.FieldIPSrc, flow.FieldIPDst, flow.FieldIPProto,
	flow.FieldTpSrc, flow.FieldTpDst)

// isStateful reports whether a is resolved against connection state.
func isStateful(a flow.Action) bool {
	return a.Type == flow.ActionDNAT || a.Type == flow.ActionSNAT || a.Type == flow.ActionCtNAT
}

// resolveActs rewrites acts replacing stateful actions with their
// per-connection resolutions. Returns acts unchanged (and dep=false)
// when nothing needed resolving.
func resolveActs(acts []flow.Action, res Resolver, tr *Traversal) (out []flow.Action, dep bool) {
	stateful := false
	for _, a := range acts {
		if isStateful(a) {
			stateful = true
			break
		}
	}
	if !stateful || res == nil {
		return acts, false
	}
	out = make([]flow.Action, 0, len(acts)+2)
	for _, a := range acts {
		if !isStateful(a) {
			out = append(out, a)
			continue
		}
		r, conn, epoch, ok := res.Resolve(a)
		if !ok {
			continue // unresolvable: no-op, like flow.Apply would
		}
		out = append(out, r...)
		dep = true
		if tr.CtEpoch == 0 {
			// Record the FIRST resolution's epoch. If a later resolution
			// in the same traversal advances the connection's epoch (a NAT
			// binding established mid-walk), the earlier steps resolved
			// against the pre-bump state; stamping the stale epoch makes
			// every installed entry fail validation immediately, which is
			// the conservative direction.
			tr.CtConn, tr.CtEpoch = conn, epoch
		}
	}
	return out, dep
}

// Process runs key through the pipeline, producing its traversal. The
// returned traversal always carries a terminal verdict: a table miss with
// no configured continuation, or a non-terminal rule with no next table,
// drops the packet (OpenFlow default semantics).
func (p *Pipeline) Process(key flow.Key) (*Traversal, error) {
	return p.ProcessResolve(key, nil)
}

// ProcessResolve is Process with a Resolver supplied for stateful
// actions; the datapath's slow path uses it when conntrack is enabled.
func (p *Pipeline) ProcessResolve(key flow.Key, res Resolver) (*Traversal, error) {
	tr, err := p.processPartial(p.Start, key, p.MaxSteps, res)
	if err != nil {
		return nil, err
	}
	if !tr.Verdict.Terminal() {
		return nil, ErrTooManySteps
	}
	return tr, nil
}

// ProcessPartial runs key through the pipeline starting at table `start`
// for at most maxSteps lookups. Unlike Process, hitting the step limit is
// not an error: the traversal is returned with a non-terminal verdict and
// NextTable set to the table that would have been visited next. Gigaflow's
// revalidator uses this to re-derive a sub-traversal from its table tag
// (§4.3.1) without replaying the whole pipeline.
func (p *Pipeline) ProcessPartial(start int, key flow.Key, maxSteps int) (*Traversal, error) {
	return p.processPartial(start, key, maxSteps, nil)
}

func (p *Pipeline) processPartial(start int, key flow.Key, maxSteps int, res Resolver) (*Traversal, error) {
	if start == NoTable || p.tables[start] == nil {
		return nil, fmt.Errorf("pipeline %s: no start table %d", p.Name, start)
	}
	tr := &Traversal{Pipeline: p, Version: p.Version, Input: key, NextTable: NoTable}
	cur := start
	k := key
	for len(tr.Steps) < maxSteps {
		t := p.tables[cur]
		if t == nil {
			return nil, fmt.Errorf("pipeline %s: goto unknown table %d", p.Name, cur)
		}
		var entry *tss.Entry[*Rule]
		var wild flow.Mask
		var probes int
		if p.PreciseWildcards {
			entry, wild, probes = t.cls.LookupWildPrecise(k)
		} else {
			entry, wild, probes = t.cls.LookupWild(k)
		}
		tr.TuplesProbed += probes
		step := Step{TableID: cur, Pre: k, Wildcard: wild}

		var next int
		if entry != nil {
			rule := entry.Value
			step.Rule = rule
			step.Acts, step.CtDep = resolveActs(rule.Actions, res, tr)
			next = rule.Next
		} else {
			step.Acts, step.CtDep = resolveActs(t.MissActions, res, tr)
			next = t.MissNext
		}
		k, step.Verdict = flow.Apply(k, step.Acts)
		if step.CtDep {
			// The resolved rewrite is per-connection: force the composed
			// entry exact on the connection's identifying fields.
			step.Wildcard = step.Wildcard.Union(natTupleMask)
		}
		step.Post = k

		if !step.Verdict.Terminal() && next == NoTable {
			// Fell off the pipeline without an explicit verdict: drop.
			step.Verdict = flow.Verdict{Kind: flow.VerdictDrop}
		}
		tr.Steps = append(tr.Steps, step)
		if step.Verdict.Terminal() {
			tr.Verdict = step.Verdict
			return tr, nil
		}
		cur = next
	}
	tr.NextTable = cur
	return tr, nil
}

// MustProcess is Process that panics on error; for tests and examples
// operating on known-good pipelines.
func (p *Pipeline) MustProcess(key flow.Key) *Traversal {
	tr, err := p.Process(key)
	if err != nil {
		panic(err)
	}
	return tr
}
