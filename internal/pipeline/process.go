package pipeline

import (
	"errors"
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/tss"
)

// ErrTooManySteps is returned when a traversal exceeds MaxSteps, which
// indicates a goto-table loop in the pipeline program.
var ErrTooManySteps = errors.New("pipeline: traversal exceeded max steps (goto-table loop?)")

// Process runs key through the pipeline, producing its traversal. The
// returned traversal always carries a terminal verdict: a table miss with
// no configured continuation, or a non-terminal rule with no next table,
// drops the packet (OpenFlow default semantics).
func (p *Pipeline) Process(key flow.Key) (*Traversal, error) {
	tr, err := p.ProcessPartial(p.Start, key, p.MaxSteps)
	if err != nil {
		return nil, err
	}
	if !tr.Verdict.Terminal() {
		return nil, ErrTooManySteps
	}
	return tr, nil
}

// ProcessPartial runs key through the pipeline starting at table `start`
// for at most maxSteps lookups. Unlike Process, hitting the step limit is
// not an error: the traversal is returned with a non-terminal verdict and
// NextTable set to the table that would have been visited next. Gigaflow's
// revalidator uses this to re-derive a sub-traversal from its table tag
// (§4.3.1) without replaying the whole pipeline.
func (p *Pipeline) ProcessPartial(start int, key flow.Key, maxSteps int) (*Traversal, error) {
	if start == NoTable || p.tables[start] == nil {
		return nil, fmt.Errorf("pipeline %s: no start table %d", p.Name, start)
	}
	tr := &Traversal{Pipeline: p, Version: p.Version, Input: key, NextTable: NoTable}
	cur := start
	k := key
	for len(tr.Steps) < maxSteps {
		t := p.tables[cur]
		if t == nil {
			return nil, fmt.Errorf("pipeline %s: goto unknown table %d", p.Name, cur)
		}
		var entry *tss.Entry[*Rule]
		var wild flow.Mask
		var probes int
		if p.PreciseWildcards {
			entry, wild, probes = t.cls.LookupWildPrecise(k)
		} else {
			entry, wild, probes = t.cls.LookupWild(k)
		}
		tr.TuplesProbed += probes
		step := Step{TableID: cur, Pre: k, Wildcard: wild}

		var next int
		if entry != nil {
			rule := entry.Value
			step.Rule = rule
			step.Acts = rule.Actions
			k, step.Verdict = flow.Apply(k, rule.Actions)
			next = rule.Next
		} else {
			step.Acts = t.MissActions
			k, step.Verdict = flow.Apply(k, t.MissActions)
			next = t.MissNext
		}
		step.Post = k

		if !step.Verdict.Terminal() && next == NoTable {
			// Fell off the pipeline without an explicit verdict: drop.
			step.Verdict = flow.Verdict{Kind: flow.VerdictDrop}
		}
		tr.Steps = append(tr.Steps, step)
		if step.Verdict.Terminal() {
			tr.Verdict = step.Verdict
			return tr, nil
		}
		cur = next
	}
	tr.NextTable = cur
	return tr, nil
}

// MustProcess is Process that panics on error; for tests and examples
// operating on known-good pipelines.
func (p *Pipeline) MustProcess(key flow.Key) *Traversal {
	tr, err := p.Process(key)
	if err != nil {
		panic(err)
	}
	return tr
}
