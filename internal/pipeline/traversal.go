package pipeline

import (
	"fmt"
	"strings"

	"gigaflow/internal/flow"
)

// Step records one table lookup of a traversal.
type Step struct {
	TableID int
	// Rule is the matched rule, or nil when the table missed and its miss
	// behaviour was taken.
	Rule *Rule
	// Wildcard is W_i: the header bits this lookup examined, expressed
	// against the flow state entering the step. It includes the dependency
	// bits required so that any packet agreeing with Pre on these bits
	// takes the same step (tuple-union unwildcarding).
	Wildcard flow.Mask
	// Pre and Post are the flow state entering and leaving the step (Post
	// reflects this step's set-field actions).
	Pre, Post flow.Key
	// Acts are the actions executed at this step: the matched rule's
	// actions, or the table's miss actions on a miss step. When a
	// stateful action was resolved at this step, Acts holds the resolved
	// concrete actions, not the rule's originals.
	Acts []flow.Action
	// Verdict is the terminal decision made at this step, if any.
	Verdict flow.Verdict
	// CtDep marks a step whose actions were resolved against connection
	// state (a NAT binding): cache entries composed over it are only
	// valid while that state holds its epoch.
	CtDep bool
}

// Actions returns the actions executed at this step.
func (s *Step) Actions() []flow.Action { return s.Acts }

// RuleID returns the matched rule's ID, or -1 on a miss step.
func (s *Step) RuleID() int64 {
	if s.Rule == nil {
		return -1
	}
	return s.Rule.ID
}

// Traversal is the paper's ⟨T, F, W⟩ vector: the complete record of one
// packet's walk through the pipeline. It is the unit both cache compilers
// consume.
type Traversal struct {
	Pipeline *Pipeline
	// Version is the pipeline version the traversal was computed against.
	Version uint64
	// Input is the original flow signature F.
	Input flow.Key
	// Steps is the lookup sequence (T, F^i, W_i per step).
	Steps []Step
	// Verdict is the packet's fate.
	Verdict flow.Verdict
	// NextTable is the table a partial traversal would visit next when it
	// stopped at a step limit instead of a terminal verdict; NoTable
	// otherwise.
	NextTable int
	// TuplesProbed is the total TSS tuples probed, for CPU accounting.
	TuplesProbed int
	// CtConn and CtEpoch identify the connection state any CtDep steps
	// were resolved against: the connection's tuple and its epoch at
	// resolution time. Zero-valued when no step is connection-dependent.
	CtConn  flow.Key
	CtEpoch uint64
}

// Len reports the traversal length N (number of table lookups).
func (tr *Traversal) Len() int { return len(tr.Steps) }

// TableIDs returns the T vector.
func (tr *Traversal) TableIDs() []int {
	out := make([]int, len(tr.Steps))
	for i := range tr.Steps {
		out[i] = tr.Steps[i].TableID
	}
	return out
}

// FinalKey returns the flow state after the last step.
func (tr *Traversal) FinalKey() flow.Key {
	if len(tr.Steps) == 0 {
		return tr.Input
	}
	return tr.Steps[len(tr.Steps)-1].Post
}

// PathSignature identifies the traversal's path — the table/rule sequence —
// independent of the packet that produced it. Two flows share pipeline
// structure exactly when their signatures are equal; Fig. 11's sharing
// statistic counts flows per signature.
func (tr *Traversal) PathSignature() string {
	var b strings.Builder
	for i := range tr.Steps {
		if i > 0 {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "t%d:r%d", tr.Steps[i].TableID, tr.Steps[i].RuleID())
	}
	return b.String()
}

// SegmentSignature is PathSignature restricted to Steps[i:j] (j exclusive);
// it identifies a sub-traversal's path.
func (tr *Traversal) SegmentSignature(i, j int) string {
	var b strings.Builder
	for s := i; s < j; s++ {
		if s > i {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "t%d:r%d", tr.Steps[s].TableID, tr.Steps[s].RuleID())
	}
	return b.String()
}

// StepFields returns the FieldSet examined at step i (the fields with
// significant bits in W_i), the input to the disjointness analysis.
func (tr *Traversal) StepFields(i int) flow.FieldSet {
	return tr.Steps[i].Wildcard.Fields()
}

// SegmentCtDep reports whether any step in [i,j) resolved actions
// against connection state; entries composed over such a range must
// record (CtConn, CtEpoch) and be invalidated when the epoch moves.
func (tr *Traversal) SegmentCtDep(i, j int) bool {
	for s := i; s < j; s++ {
		if tr.Steps[s].CtDep {
			return true
		}
	}
	return false
}

// Compose flattens Steps[i:j] (j exclusive) into a single cache-rule
// specification: the match predicate over the flow state entering step i,
// and the set-field commit transforming any matching packet into the state
// it would leave step j-1 with.
//
// Two rules make the composition sound for every packet the match covers,
// not just the one that produced the traversal:
//
//   - Rewrite shadowing: bits written by an earlier step inside the range
//     are excluded from the composed mask — their values at later steps are
//     determined by the range's own (absolute) set-field actions, not by
//     the packet, exactly as OVS's megaflow translation treats them.
//   - Net-write commit: the commit sets every bit written anywhere in the
//     range to its final absolute value, even when the recorded packet
//     happened to already carry that value. A pure before/after diff (the
//     paper's literal "commit" description) would make action emission
//     depend on the packet's pre-rewrite value, silently corrupting
//     wildcard hits whose entry value differs; OVS avoids the same hazard
//     by unwildcarding every field its commit examines, which shrinks the
//     megaflow. With absolute set-field actions the net-write form is
//     sound and keeps the match as wide as possible.
//
// Compose over the full range is precisely Megaflow-rule generation;
// sub-ranges are Gigaflow's sub-traversal rules (ω_k, M_k, α_k of §4.2.3).
func (tr *Traversal) Compose(i, j int) (match flow.Match, commit []flow.Action) {
	if i < 0 || j > len(tr.Steps) || i >= j {
		panic(fmt.Sprintf("pipeline: bad compose range [%d,%d) of %d steps", i, j, len(tr.Steps)))
	}
	entry := tr.Steps[i].Pre
	var omega flow.Mask
	var written flow.Mask
	for s := i; s < j; s++ {
		omega = omega.Union(tr.Steps[s].Wildcard.Without(written))
		for _, a := range tr.Steps[s].Actions() {
			if a.Type == flow.ActionSetField {
				written[a.Field] |= a.Mask
			}
		}
	}
	match = flow.NewMatch(entry, omega)
	post := tr.Steps[j-1].Post
	for f := flow.FieldID(0); f < flow.NumFields; f++ {
		if written[f] != 0 {
			commit = append(commit, flow.SetFieldMasked(f, post[f], written[f]))
		}
	}
	return match, commit
}

// String renders the traversal for debugging.
func (tr *Traversal) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traversal[%s] %s:", tr.Pipeline.Name, tr.Verdict)
	for i := range tr.Steps {
		s := &tr.Steps[i]
		fmt.Fprintf(&b, "\n  t%d r%d wild=%s", s.TableID, s.RuleID(), s.Wildcard)
	}
	return b.String()
}
