package pipeline

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// buildL2L3ACL constructs a small 3-table pipeline:
//
//	t0 (L2):  eth_dst exact -> goto t1; miss -> drop
//	t1 (L3):  ip_dst prefixes, rewrites eth_dst and decrements nothing -> goto t2
//	t2 (ACL): tp_dst exact -> output; ip_proto -> drop; miss -> output(99)
func buildL2L3ACL(t *testing.T) *Pipeline {
	t.Helper()
	p := New("l2l3acl")
	p.AddTable(0, "l2", flow.NewFieldSet(flow.FieldEthDst))
	p.AddTable(1, "l3", flow.NewFieldSet(flow.FieldEthType, flow.FieldIPDst))
	p.AddTable(2, "acl", flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpDst))

	p.MustAddRule(0, flow.MustParseMatch("eth_dst=aa:aa:aa:aa:aa:aa"), 10, nil, 1)
	p.MustAddRule(1, flow.MustParseMatch("eth_type=0x0800,ip_dst=10.0.0.0/24"), 20,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0xbbbbbbbbbbbb)}, 2)
	p.MustAddRule(1, flow.MustParseMatch("eth_type=0x0800,ip_dst=10.0.0.7"), 30,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0xcccccccccccc)}, 2)
	p.MustAddRule(2, flow.MustParseMatch("tp_dst=80"), 40, []flow.Action{flow.Output(1)}, NoTable)
	p.MustAddRule(2, flow.MustParseMatch("ip_proto=17"), 35, []flow.Action{flow.Drop()}, NoTable)
	p.SetMiss(2, NoTable, flow.Output(99))
	return p
}

func TestBasicTraversal(t *testing.T) {
	p := buildL2L3ACL(t)
	k := flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x0800,ip_dst=10.0.0.5,ip_proto=6,tp_dst=80")
	tr := p.MustProcess(k)

	if got := tr.TableIDs(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("table sequence = %v", got)
	}
	if tr.Verdict.Kind != flow.VerdictOutput || tr.Verdict.Port != 1 {
		t.Fatalf("verdict = %v", tr.Verdict)
	}
	if tr.FinalKey().Get(flow.FieldEthDst) != 0xbbbbbbbbbbbb {
		t.Errorf("eth_dst rewrite lost: %s", tr.FinalKey())
	}
	if tr.Input != k {
		t.Error("Input must preserve the original key")
	}
	if tr.Steps[1].Pre != tr.Steps[0].Post {
		t.Error("step chaining broken")
	}
}

func TestMissPathsAndDefaultDrop(t *testing.T) {
	p := buildL2L3ACL(t)

	// L2 miss: no miss-next configured -> drop at step 0.
	tr := p.MustProcess(flow.MustParseKey("eth_dst=ff:ff:ff:ff:ff:ff"))
	if tr.Verdict.Kind != flow.VerdictDrop || tr.Len() != 1 {
		t.Fatalf("L2 miss: verdict=%v len=%d", tr.Verdict, tr.Len())
	}

	// ACL miss: configured miss action output(99).
	tr = p.MustProcess(flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x0800,ip_dst=10.0.0.5,ip_proto=6,tp_dst=8080"))
	if tr.Verdict.Kind != flow.VerdictOutput || tr.Verdict.Port != 99 {
		t.Fatalf("ACL miss verdict = %v", tr.Verdict)
	}
	if tr.Steps[2].Rule != nil {
		t.Error("miss step must have nil rule")
	}

	// L3 miss: miss-next not set -> drop at step 1.
	tr = p.MustProcess(flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x86dd"))
	if tr.Verdict.Kind != flow.VerdictDrop || tr.Len() != 2 {
		t.Fatalf("L3 miss: verdict=%v len=%d", tr.Verdict, tr.Len())
	}
}

func TestNonTerminalRuleWithoutNextDrops(t *testing.T) {
	p := New("stub")
	p.AddTable(0, "only", flow.AllFields)
	p.MustAddRule(0, flow.MatchAll(), 1, []flow.Action{flow.SetField(flow.FieldTpSrc, 1)}, NoTable)
	tr := p.MustProcess(flow.Key{})
	if tr.Verdict.Kind != flow.VerdictDrop {
		t.Fatalf("verdict = %v, want drop", tr.Verdict)
	}
}

func TestLoopDetection(t *testing.T) {
	p := New("loop")
	p.AddTable(0, "a", flow.AllFields)
	p.AddTable(1, "b", flow.AllFields)
	p.MustAddRule(0, flow.MatchAll(), 1, nil, 1)
	p.MustAddRule(1, flow.MatchAll(), 1, nil, 0)
	if _, err := p.Process(flow.Key{}); err != ErrTooManySteps {
		t.Fatalf("err = %v, want ErrTooManySteps", err)
	}
}

func TestGotoUnknownTable(t *testing.T) {
	p := New("bad")
	p.AddTable(0, "a", flow.AllFields)
	if _, err := p.AddRule(0, flow.MatchAll(), 1, nil, 42); err == nil {
		t.Fatal("AddRule to unknown next table should fail")
	}
}

func TestVersionBumps(t *testing.T) {
	p := New("v")
	p.AddTable(0, "a", flow.AllFields)
	v0 := p.Version
	r := p.MustAddRule(0, flow.MatchAll(), 1, []flow.Action{flow.Drop()}, NoTable)
	if p.Version == v0 {
		t.Error("AddRule must bump version")
	}
	v1 := p.Version
	if !p.DeleteRule(r) {
		t.Fatal("DeleteRule failed")
	}
	if p.Version == v1 {
		t.Error("DeleteRule must bump version")
	}
	if p.DeleteRule(r) {
		t.Error("double delete succeeded")
	}
}

func TestTableAccessors(t *testing.T) {
	p := buildL2L3ACL(t)
	if p.NumTables() != 3 {
		t.Errorf("NumTables = %d", p.NumTables())
	}
	if p.NumRules() != 5 {
		t.Errorf("NumRules = %d", p.NumRules())
	}
	if p.Table(1).Name != "l3" {
		t.Errorf("Table(1) = %v", p.Table(1).Name)
	}
	if p.Table(99) != nil {
		t.Error("Table(99) should be nil")
	}
	tabs := p.Tables()
	if len(tabs) != 3 || tabs[0].ID != 0 || tabs[2].ID != 2 {
		t.Errorf("Tables order wrong: %v", tabs)
	}
	rules := p.Table(1).Rules()
	if len(rules) != 2 || rules[0].Priority < rules[1].Priority {
		t.Errorf("Rules not priority-sorted: %v", rules)
	}
}

func TestPathSignature(t *testing.T) {
	p := buildL2L3ACL(t)
	a := p.MustProcess(flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x0800,ip_dst=10.0.0.5,tp_dst=80"))
	b := p.MustProcess(flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x0800,ip_dst=10.0.0.6,tp_dst=80"))
	c := p.MustProcess(flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x0800,ip_dst=10.0.0.7,tp_dst=80"))
	if a.PathSignature() != b.PathSignature() {
		t.Error("flows hitting identical rules must share a signature")
	}
	if a.PathSignature() == c.PathSignature() {
		t.Error(".7 hits the /32 rule; signature must differ")
	}
	if a.SegmentSignature(0, 1) != c.SegmentSignature(0, 1) {
		t.Error("shared first step must have equal segment signatures")
	}
}

func TestComposeRewriteShadowing(t *testing.T) {
	// t0 rewrites eth_dst; t1 matches on eth_dst. The composed megaflow
	// must NOT match on eth_dst beyond t0's own interest, because its
	// value at t1 is determined by t0's action, not by the packet.
	p := New("shadow")
	p.AddTable(0, "rewrite", flow.NewFieldSet(flow.FieldInPort))
	p.AddTable(1, "match-rewritten", flow.NewFieldSet(flow.FieldEthDst))
	p.MustAddRule(0, flow.MustParseMatch("in_port=1"), 1,
		[]flow.Action{flow.SetField(flow.FieldEthDst, 0xbbbbbbbbbbbb)}, 1)
	p.MustAddRule(1, flow.MustParseMatch("eth_dst=bb:bb:bb:bb:bb:bb"), 1,
		[]flow.Action{flow.Output(2)}, NoTable)

	tr := p.MustProcess(flow.MustParseKey("in_port=1,eth_dst=11:11:11:11:11:11"))
	match, commit := tr.Compose(0, tr.Len())
	if match.Fields().Contains(flow.FieldEthDst) {
		t.Errorf("rewritten field leaked into megaflow mask: %s", match)
	}
	// Any packet from port 1 must match, regardless of its eth_dst.
	other := flow.MustParseKey("in_port=1,eth_dst=22:22:22:22:22:22")
	if !match.Matches(other) {
		t.Errorf("megaflow %s should match %s", match, other)
	}
	out, _ := flow.Apply(other, commit)
	if out.Get(flow.FieldEthDst) != 0xbbbbbbbbbbbb {
		t.Error("commit must carry the rewrite")
	}
}

func TestComposeDependencyBits(t *testing.T) {
	// A packet hitting a low-priority broad rule must produce a megaflow
	// that does NOT swallow packets destined for the higher-priority rule.
	p := New("deps")
	p.AddTable(0, "l3", flow.NewFieldSet(flow.FieldIPDst))
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.168.14.15"), 400, []flow.Action{flow.Output(4)}, NoTable)
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.168.14.0/24"), 300, []flow.Action{flow.Output(3)}, NoTable)
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.168.0.0/16"), 200, []flow.Action{flow.Output(2)}, NoTable)
	p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.0.0.0/8"), 100, []flow.Action{flow.Output(1)}, NoTable)

	tr := p.MustProcess(flow.MustParseKey("ip_dst=192.168.21.27")) // hits /16
	if tr.Verdict.Port != 2 {
		t.Fatalf("expected /16 hit, got %v", tr.Verdict)
	}
	match, _ := tr.Compose(0, tr.Len())
	if match.Matches(flow.MustParseKey("ip_dst=192.168.14.15")) {
		t.Errorf("megaflow %s must exclude the /32 rule's packet", match)
	}
	if match.Matches(flow.MustParseKey("ip_dst=192.168.14.99")) {
		t.Errorf("megaflow %s must exclude the /24 rule's packets", match)
	}
	if !match.Matches(flow.MustParseKey("ip_dst=192.168.21.1")) {
		// With tuple-union unwildcarding the /32 tuple makes ip_dst fully
		// significant, so this may legitimately not match; accept either a
		// miss or a hit, but a hit must replay identically. Skip hard check.
		t.Skip("tuple-union unwildcarding narrowed megaflow to exact ip_dst (sound, conservative)")
	}
}

// megaflowSound checks THE cache invariant: every key matched by the
// composed rule takes a traversal with the same path, same verdict, and a
// final key equal to applying the commit to that key.
func megaflowSound(t *testing.T, p *Pipeline, tr *Traversal, probe flow.Key) {
	t.Helper()
	match, commit := tr.Compose(0, tr.Len())
	if !match.Matches(probe) {
		return
	}
	got := p.MustProcess(probe)
	if got.PathSignature() != tr.PathSignature() {
		t.Fatalf("probe %s matched megaflow %s but took path %q, want %q",
			probe, match, got.PathSignature(), tr.PathSignature())
	}
	if got.Verdict != tr.Verdict {
		t.Fatalf("probe verdict %v, want %v", got.Verdict, tr.Verdict)
	}
	want, _ := flow.Apply(probe, commit)
	if got.FinalKey() != want {
		t.Fatalf("probe final key %s, commit replay %s", got.FinalKey(), want)
	}
}

func TestMegaflowSoundnessRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randomPipeline(rng, 5, 40)
	keys := make([]flow.Key, 4000)
	for i := range keys {
		keys[i] = randomKey(rng)
	}
	for _, k := range keys {
		tr, err := p.Process(k)
		if err != nil {
			t.Fatalf("process %s: %v", k, err)
		}
		// Probe with perturbations of k and with fresh random keys.
		for j := 0; j < 4; j++ {
			megaflowSound(t, p, tr, perturb(rng, k))
			megaflowSound(t, p, tr, randomKey(rng))
		}
	}
}

// randomPipeline builds a pipeline with chained tables over varied field
// sets, random prefix rules, rewrites, and miss continuation.
func randomPipeline(rng *rand.Rand, nTables, rulesPerTable int) *Pipeline {
	p := New("random")
	fieldChoices := []flow.FieldSet{
		flow.NewFieldSet(flow.FieldEthDst),
		flow.NewFieldSet(flow.FieldEthType, flow.FieldIPDst),
		flow.NewFieldSet(flow.FieldEthType, flow.FieldIPSrc),
		flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpDst),
		flow.NewFieldSet(flow.FieldTpSrc),
	}
	for i := 0; i < nTables; i++ {
		p.AddTable(i, "t", fieldChoices[i%len(fieldChoices)])
	}
	for i := 0; i < nTables; i++ {
		next := i + 1
		if next >= nTables {
			next = NoTable
		}
		// Miss continues to the next table half the time.
		if rng.Intn(2) == 0 {
			p.SetMiss(i, next)
		} else if next != NoTable && rng.Intn(2) == 0 {
			p.SetMiss(i, next, flow.SetField(flow.FieldTpSrc, uint64(rng.Intn(4))))
		}
		for r := 0; r < rulesPerTable; r++ {
			m := randomMatchOver(rng, p.Table(i).MatchFields)
			var acts []flow.Action
			if rng.Intn(3) == 0 {
				acts = append(acts, flow.SetField(flow.FieldEthDst, uint64(rng.Intn(4))))
			}
			ruleNext := next
			if next == NoTable || rng.Intn(4) == 0 {
				acts = append(acts, flow.Output(uint16(rng.Intn(8))))
				ruleNext = NoTable
			}
			p.MustAddRule(i, m, rng.Intn(100)+1, acts, ruleNext)
		}
	}
	return p
}

func randomMatchOver(rng *rand.Rand, fields flow.FieldSet) flow.Match {
	m := flow.MatchAll()
	for _, f := range fields.Fields() {
		switch f {
		case flow.FieldIPDst, flow.FieldIPSrc:
			plen := uint(8 * (1 + rng.Intn(4)))
			v := uint64(rng.Intn(4)) << 24
			m = m.WithMaskedField(f, v, flow.PrefixMask(f, plen))
		case flow.FieldEthType:
			m = m.WithField(f, 0x0800)
		default:
			m = m.WithField(f, uint64(rng.Intn(4)))
		}
	}
	return m
}

func randomKey(rng *rand.Rand) flow.Key {
	var k flow.Key
	k = k.With(flow.FieldEthDst, uint64(rng.Intn(4)))
	k = k.With(flow.FieldEthType, 0x0800)
	k = k.With(flow.FieldIPDst, uint64(rng.Intn(4))<<24|uint64(rng.Intn(4)))
	k = k.With(flow.FieldIPSrc, uint64(rng.Intn(4))<<24)
	k = k.With(flow.FieldIPProto, uint64(rng.Intn(4)))
	k = k.With(flow.FieldTpSrc, uint64(rng.Intn(4)))
	k = k.With(flow.FieldTpDst, uint64(rng.Intn(4)))
	return k
}

func perturb(rng *rand.Rand, k flow.Key) flow.Key {
	f := flow.FieldID(rng.Intn(flow.NumFields))
	return k.With(f, k.Get(f)^uint64(1)<<uint(rng.Intn(int(f.Width()))))
}

func TestRuleString(t *testing.T) {
	p := buildL2L3ACL(t)
	r := p.Table(2).Rules()[0]
	if r.String() == "" {
		t.Error("empty rule string")
	}
	tr := p.MustProcess(flow.MustParseKey("eth_dst=aa:aa:aa:aa:aa:aa,eth_type=0x0800,ip_dst=10.0.0.5,tp_dst=80"))
	if tr.String() == "" {
		t.Error("empty traversal string")
	}
}

func TestMegaflowSoundnessPreciseWildcards(t *testing.T) {
	// The precise unwildcarding mode must preserve THE cache invariant.
	rng := rand.New(rand.NewSource(44))
	p := randomPipeline(rng, 5, 40)
	p.PreciseWildcards = true
	for i := 0; i < 2000; i++ {
		k := randomKey(rng)
		tr, err := p.Process(k)
		if err != nil {
			t.Fatalf("process %s: %v", k, err)
		}
		for j := 0; j < 4; j++ {
			megaflowSound(t, p, tr, perturb(rng, k))
			megaflowSound(t, p, tr, randomKey(rng))
		}
	}
}

func TestPreciseWildcardsWiden(t *testing.T) {
	// On the §4.2.3-style prefix chain, precise mode produces a megaflow
	// with fewer significant bits than tuple-union mode.
	build := func(precise bool) *Pipeline {
		p := New("prec")
		p.PreciseWildcards = precise
		p.AddTable(0, "l3", flow.NewFieldSet(flow.FieldIPDst))
		p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.168.14.15"), 400, []flow.Action{flow.Output(4)}, NoTable)
		p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.168.14.0/24"), 300, []flow.Action{flow.Output(3)}, NoTable)
		p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.168.0.0/16"), 200, []flow.Action{flow.Output(2)}, NoTable)
		p.MustAddRule(0, flow.MustParseMatch("ip_dst=192.0.0.0/8"), 100, []flow.Action{flow.Output(1)}, NoTable)
		return p
	}
	k := flow.MustParseKey("ip_dst=192.168.21.27")
	trU := build(false).MustProcess(k)
	trP := build(true).MustProcess(k)
	mU, _ := trU.Compose(0, trU.Len())
	mP, _ := trP.Compose(0, trP.Len())
	if mP.Mask.BitCount() >= mU.Mask.BitCount() {
		t.Errorf("precise megaflow %s not wider than union %s", mP, mU)
	}
	// The wider megaflow covers more of the /16 while excluding shadows.
	if mP.Matches(flow.MustParseKey("ip_dst=192.168.14.15")) ||
		mP.Matches(flow.MustParseKey("ip_dst=192.168.14.80")) {
		t.Error("precise megaflow covers shadowed packets")
	}
}
