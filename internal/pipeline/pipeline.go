// Package pipeline implements a programmable multi-table vSwitch pipeline
// in the style of Open vSwitch's OpenFlow datapath: a set of match-action
// tables with priorities, goto-table control flow, set-field actions, and
// megaflow-style wildcard tracking during execution.
//
// Processing a packet yields a Traversal — the paper's ⟨T, F, W⟩ vector: the
// sequence of tables visited, the flow state after each lookup, and the
// per-step wildcards (including dependency bits from higher-priority rules
// the packet did not match). Traversals feed both the Megaflow compiler and
// Gigaflow's sub-traversal partitioner.
package pipeline

import (
	"fmt"
	"sort"

	"gigaflow/internal/flow"
	"gigaflow/internal/tss"
)

// NoTable is the Next value of a terminal rule (no goto-table).
const NoTable = -1

// DefaultMaxSteps bounds a traversal's length, guarding against goto-table
// loops. OVS pipelines allow up to 256 tables; real traversals here are
// ≤ ~30 steps.
const DefaultMaxSteps = 64

// Rule is one entry in a pipeline table.
type Rule struct {
	ID       int64 // unique within the pipeline; assigned by AddRule
	TableID  int
	Match    flow.Match
	Priority int
	Actions  []flow.Action // applied on match (may include a terminal action)
	Next     int           // table to visit next, or NoTable
}

// String renders the rule compactly.
func (r *Rule) String() string {
	next := "end"
	if r.Next != NoTable {
		next = fmt.Sprintf("goto:%d", r.Next)
	}
	return fmt.Sprintf("rule#%d@t%d prio=%d %s -> %v %s", r.ID, r.TableID, r.Priority, r.Match, r.Actions, next)
}

// Table is one match-action table of the pipeline.
type Table struct {
	ID   int
	Name string
	// MatchFields advertises the fields this table's rules are expected to
	// match on. It is a template used by the ruleset generators and the
	// disjointness analysis; rules are not restricted to it.
	MatchFields flow.FieldSet
	// MissNext is the table visited when no rule matches; NoTable drops.
	MissNext int
	// MissActions are applied on a miss before continuing/dropping.
	MissActions []flow.Action

	cls *tss.Classifier[*Rule]
}

// Len reports the number of rules in the table.
func (t *Table) Len() int { return t.cls.Len() }

// Rules returns the table's rules sorted by descending priority then ID.
func (t *Table) Rules() []*Rule {
	entries := t.cls.Entries()
	rules := make([]*Rule, len(entries))
	for i, e := range entries {
		rules[i] = e.Value
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Priority != rules[j].Priority {
			return rules[i].Priority > rules[j].Priority
		}
		return rules[i].ID < rules[j].ID
	})
	return rules
}

// FindRule returns the rule with exactly the given match predicate and
// priority, if installed.
func (t *Table) FindRule(m flow.Match, priority int) (*Rule, bool) {
	e, ok := t.cls.Get(m, priority)
	if !ok {
		return nil, false
	}
	return e.Value, true
}

// Pipeline is a programmable multi-table vSwitch pipeline.
type Pipeline struct {
	Name     string
	Start    int // ID of the first table
	MaxSteps int
	// PreciseWildcards switches traversal wildcard tracking from OVS's
	// tuple-union unwildcarding to minimal-bit dependency unwildcarding
	// (the §4.2.3 example's strategy): megaflows stay as wide as provably
	// safe, at O(outranking rules) per lookup instead of O(tuples).
	PreciseWildcards bool

	tables map[int]*Table
	order  []int // table IDs in registration order
	nextID int64
	pools  map[uint16][]NATTarget

	// Version increments on every rule mutation; caches use it to detect
	// staleness during revalidation (§4.3.1).
	Version uint64
}

// NATTarget is one concrete rewrite endpoint of a NAT pool.
type NATTarget struct {
	IP   uint64 // IPv4 address
	Port uint64 // transport port
}

// SetNATPool installs (or replaces) the NAT pool dnat/snat actions name
// by id. Pools are pipeline configuration like rules: setting one bumps
// Version, and they serialize through the ofp text format so replicated
// pipelines carry them.
func (p *Pipeline) SetNATPool(id uint16, targets []NATTarget) {
	if p.pools == nil {
		p.pools = make(map[uint16][]NATTarget)
	}
	p.pools[id] = append([]NATTarget(nil), targets...)
	p.Version++
}

// NATPool returns the targets of pool id (nil when undefined). Callers
// must not mutate the returned slice.
func (p *Pipeline) NATPool(id uint16) []NATTarget { return p.pools[id] }

// NATPoolIDs returns the defined pool IDs in ascending order.
func (p *Pipeline) NATPoolIDs() []uint16 {
	out := make([]uint16, 0, len(p.pools))
	for id := range p.pools {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// New creates an empty pipeline whose first registered table becomes the
// start table unless SetStart overrides it.
func New(name string) *Pipeline {
	return &Pipeline{Name: name, Start: NoTable, MaxSteps: DefaultMaxSteps, tables: make(map[int]*Table)}
}

// AddTable registers a table. The first table added becomes the start
// table. MissNext defaults to NoTable (drop on miss).
func (p *Pipeline) AddTable(id int, name string, fields flow.FieldSet) *Table {
	if _, dup := p.tables[id]; dup {
		panic(fmt.Sprintf("pipeline %s: duplicate table id %d", p.Name, id))
	}
	t := &Table{ID: id, Name: name, MatchFields: fields, MissNext: NoTable, cls: tss.New[*Rule]()}
	p.tables[id] = t
	p.order = append(p.order, id)
	if p.Start == NoTable {
		p.Start = id
	}
	return t
}

// SetStart sets the start table.
func (p *Pipeline) SetStart(id int) {
	if _, ok := p.tables[id]; !ok {
		panic(fmt.Sprintf("pipeline %s: unknown start table %d", p.Name, id))
	}
	p.Start = id
}

// Table returns the table with the given ID, or nil.
func (p *Pipeline) Table(id int) *Table { return p.tables[id] }

// Tables returns all tables in registration order.
func (p *Pipeline) Tables() []*Table {
	out := make([]*Table, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.tables[id])
	}
	return out
}

// NumTables reports the number of tables.
func (p *Pipeline) NumTables() int { return len(p.tables) }

// NumRules reports the total rule count across tables.
func (p *Pipeline) NumRules() int {
	n := 0
	for _, t := range p.tables {
		n += t.cls.Len()
	}
	return n
}

// AddRule installs a rule into its table, assigning a pipeline-unique ID.
func (p *Pipeline) AddRule(tableID int, match flow.Match, priority int, actions []flow.Action, next int) (*Rule, error) {
	t := p.tables[tableID]
	if t == nil {
		return nil, fmt.Errorf("pipeline %s: no table %d", p.Name, tableID)
	}
	if next != NoTable {
		if _, ok := p.tables[next]; !ok {
			return nil, fmt.Errorf("pipeline %s: rule targets unknown table %d", p.Name, next)
		}
	}
	p.nextID++
	r := &Rule{ID: p.nextID, TableID: tableID, Match: match.Normalize(), Priority: priority, Actions: actions, Next: next}
	t.cls.Insert(&tss.Entry[*Rule]{Match: r.Match, Priority: r.Priority, Value: r})
	p.Version++
	return r, nil
}

// MustAddRule is AddRule that panics on error; for static pipeline setup.
func (p *Pipeline) MustAddRule(tableID int, match flow.Match, priority int, actions []flow.Action, next int) *Rule {
	r, err := p.AddRule(tableID, match, priority, actions, next)
	if err != nil {
		panic(err)
	}
	return r
}

// DeleteRule removes a rule, reporting whether it was present.
func (p *Pipeline) DeleteRule(r *Rule) bool {
	t := p.tables[r.TableID]
	if t == nil {
		return false
	}
	if e, ok := t.cls.Get(r.Match, r.Priority); !ok || e.Value != r {
		return false
	}
	if t.cls.Delete(r.Match, r.Priority) {
		p.Version++
		return true
	}
	return false
}

// SetMiss configures a table's miss behaviour.
func (p *Pipeline) SetMiss(tableID, next int, actions ...flow.Action) {
	t := p.tables[tableID]
	if t == nil {
		panic(fmt.Sprintf("pipeline %s: no table %d", p.Name, tableID))
	}
	t.MissNext = next
	t.MissActions = actions
	p.Version++
}
