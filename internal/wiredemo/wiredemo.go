// Package wiredemo is the shared wire-faithful demo setup: a small
// pipeline whose every match field is carried in frame bytes, and a key
// generator whose flows round-trip losslessly through the wire codec.
// gfreplay uses it for self-contained -gen/-pcap loops, gigabench's
// svcbatch experiment and the service benchmarks use it as the standard
// workload for measuring the submission paths.
package wiredemo

import (
	"fmt"
	"math/rand"

	"gigaflow"
	wire "gigaflow/internal/packet"
)

// The demo shape: an L2 admission table, an L3 routing table of /32
// destinations, and an L4 policy table.
const (
	// NumDsts is the number of /32 destinations in the L3 table.
	NumDsts = 16
	// NumPorts is the number of L4 service classes a rule index cycles
	// through (three TCP ports plus DNS-over-UDP).
	NumPorts = 4
)

// TCPPorts are the TCP destination ports admitted by the L4 table.
var TCPPorts = [...]uint64{80, 443, 22}

// NumFlowsUnique is the number of distinct (destination, service) rule
// combinations Key can produce before cycling.
const NumFlowsUnique = NumDsts * NumPorts

// Pipeline builds the wire-demo pipeline: every match field is
// frame-representable, so a decoded frame reproduces the synthesized key
// exactly.
func Pipeline() *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("wire-demo")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldIPProto, gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	for i := 0; i < NumDsts; i++ {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_dst=10.1.0.%d", i))
		p.MustAddRule(1, m, 10, nil, 2)
	}
	for i, port := range TCPPorts {
		m := gigaflow.MustParseMatch(fmt.Sprintf("ip_proto=6,tp_dst=%d", port))
		p.MustAddRule(2, m, 10, []gigaflow.Action{gigaflow.Output(uint16(i + 1))}, gigaflow.NoTable)
	}
	p.MustAddRule(2, gigaflow.MustParseMatch("ip_proto=17,tp_dst=53"), 10,
		[]gigaflow.Action{gigaflow.Output(9)}, gigaflow.NoTable)
	return p
}

// Key synthesizes one wire-faithful flow key for rule combination
// ruleIdx: in_port and metadata stay zero (neither is a wire field),
// everything else round-trips through encode→decode losslessly. The rng
// varies the source fields, so distinct draws are distinct flows.
func Key(ruleIdx int, rng *rand.Rand) gigaflow.Key {
	var k gigaflow.Key
	k.Set(gigaflow.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<24)))
	k.Set(gigaflow.FieldEthDst, 0x020000000001)
	k.Set(gigaflow.FieldEthType, wire.EtherTypeIPv4)
	k.Set(gigaflow.FieldIPSrc, uint64(0x0a000000+rng.Intn(1<<16)))
	k.Set(gigaflow.FieldIPDst, uint64(0x0a010000+ruleIdx%NumDsts))
	k.Set(gigaflow.FieldTpSrc, uint64(1024+rng.Intn(60000)))
	if pick := ruleIdx % NumPorts; pick < len(TCPPorts) {
		k.Set(gigaflow.FieldIPProto, wire.IPProtoTCP)
		k.Set(gigaflow.FieldTpDst, TCPPorts[pick])
	} else {
		k.Set(gigaflow.FieldIPProto, wire.IPProtoUDP)
		k.Set(gigaflow.FieldTpDst, 53)
	}
	return k
}
