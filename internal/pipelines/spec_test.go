package pipelines

import (
	"testing"

	"gigaflow/internal/flow"
)

// Table 1 of the paper: tables and unique traversals per pipeline.
var table1 = map[string]struct{ tables, traversals int }{
	"OFD": {10, 5},
	"PSC": {7, 2},
	"OLS": {30, 23},
	"ANT": {22, 20},
	"OTL": {8, 11},
}

func TestTable1Inventory(t *testing.T) {
	if len(All()) != 5 {
		t.Fatalf("expected 5 pipelines, got %d", len(All()))
	}
	for _, s := range All() {
		want, ok := table1[s.Name]
		if !ok {
			t.Fatalf("unexpected pipeline %s", s.Name)
		}
		if s.NumTables() != want.tables {
			t.Errorf("%s: %d tables, Table 1 says %d", s.Name, s.NumTables(), want.tables)
		}
		if s.NumTraversals() != want.traversals {
			t.Errorf("%s: %d traversals, Table 1 says %d", s.Name, s.NumTraversals(), want.traversals)
		}
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTraversalsStartAtStartTable(t *testing.T) {
	for _, s := range All() {
		start := s.Tables[0].ID
		for _, tr := range s.Traversals {
			if tr.Tables[0] != start {
				t.Errorf("%s/%s: starts at table %d, pipeline start is %d",
					s.Name, tr.Name, tr.Tables[0], start)
			}
		}
	}
}

func TestBuildCreatesAllTables(t *testing.T) {
	for _, s := range All() {
		p := s.Build()
		if p.NumTables() != s.NumTables() {
			t.Errorf("%s: built %d tables, want %d", s.Name, p.NumTables(), s.NumTables())
		}
		if p.Name != s.Name {
			t.Errorf("%s: pipeline name %q", s.Name, p.Name)
		}
		for _, ts := range s.Tables {
			tab := p.Table(ts.ID)
			if tab == nil {
				t.Fatalf("%s: table %d missing after Build", s.Name, ts.ID)
			}
			if tab.MatchFields != ts.Fields {
				t.Errorf("%s table %d: fields %v, want %v", s.Name, ts.ID, tab.MatchFields, ts.Fields)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for name := range table1 {
		s, ok := ByName(name)
		if !ok || s.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := ByName("XXX"); ok {
		t.Error("ByName should reject unknown names")
	}
}

func TestTableAccessor(t *testing.T) {
	if OFD.Table(3) == nil || OFD.Table(3).Name != "unicast-routing" {
		t.Error("Table(3) wrong")
	}
	if OFD.Table(99) != nil {
		t.Error("Table(99) should be nil")
	}
}

func TestRewritingStagesDeclareRewrites(t *testing.T) {
	// Every routing stage must rewrite MACs; every LB stage must rewrite
	// its service fields; rewritten fields should not be empty for stages
	// named l3/routing/lb/nat.
	found := 0
	for _, s := range All() {
		for _, ts := range s.Tables {
			if !ts.Rewrites.Empty() {
				found++
				if ts.Rewrites.Intersect(flow.AllFields) != ts.Rewrites {
					t.Errorf("%s/%s: bad rewrite set", s.Name, ts.Name)
				}
			}
		}
	}
	if found < 8 {
		t.Errorf("only %d rewriting stages across all pipelines; expected ≥ 8", found)
	}
}

func TestDropTraversalsExist(t *testing.T) {
	// Each pipeline with an ACL stage should model at least one deny path,
	// except PSC whose two traversals are both forwarding paths.
	for _, s := range All() {
		if s.Name == "PSC" {
			continue
		}
		hasDrop := false
		for _, tr := range s.Traversals {
			if tr.Drop {
				hasDrop = true
			}
		}
		if !hasDrop {
			t.Errorf("%s: no drop traversal modelled", s.Name)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := &Spec{
		Name:       "BAD",
		Tables:     []TableSpec{{ID: 0, Name: "a", Fields: fPort}, {ID: 0, Name: "b", Fields: fPort}},
		Traversals: []TraversalSpec{{Name: "t", Tables: []int{0}}},
	}
	if bad.Validate() == nil {
		t.Error("duplicate table IDs must fail")
	}
	bad = &Spec{
		Name:       "BAD2",
		Tables:     []TableSpec{{ID: 0, Name: "a", Fields: fPort}, {ID: 1, Name: "b", Fields: fPort}},
		Traversals: []TraversalSpec{{Name: "t", Tables: []int{1, 0}}},
	}
	if bad.Validate() == nil {
		t.Error("non-increasing traversal must fail")
	}
	bad = &Spec{
		Name:       "BAD3",
		Tables:     []TableSpec{{ID: 0, Name: "a", Fields: fPort}},
		Traversals: []TraversalSpec{{Name: "t", Tables: []int{0, 5}}},
	}
	if bad.Validate() == nil {
		t.Error("unknown table reference must fail")
	}
	bad = &Spec{
		Name:       "BAD4",
		Tables:     []TableSpec{{ID: 0, Name: "a", Fields: 0}},
		Traversals: []TraversalSpec{{Name: "t", Tables: []int{0}}},
	}
	if bad.Validate() == nil {
		t.Error("empty field template must fail")
	}
	bad = &Spec{
		Name:   "BAD5",
		Tables: []TableSpec{{ID: 0, Name: "a", Fields: fPort}},
		Traversals: []TraversalSpec{
			{Name: "t1", Tables: []int{0}},
			{Name: "t2", Tables: []int{0}},
		},
	}
	if bad.Validate() == nil {
		t.Error("duplicate traversal paths must fail")
	}
}
