// Package pipelines defines the five real-world vSwitch pipeline models of
// the paper's Table 1: OFD (OF-DPA), PSC (PISCES L2L3-ACL), OLS (OVN
// logical switch), ANT (Antrea), and OTL (OpenFlow Table Type Patterns).
//
// Each Spec lists the pipeline's match-action tables (with the header
// fields each stage classifies on and rewrites) and its unique traversals —
// the distinct table paths packets take through the stage graph. Pipebench
// instantiates a Spec into a concrete pipeline.Pipeline by installing
// ClassBench-derived rules along the traversal templates.
package pipelines

import (
	"fmt"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// TableSpec describes one pipeline stage.
type TableSpec struct {
	ID     int
	Name   string
	Fields flow.FieldSet
	// Rewrites lists the fields this stage's rules may set (e.g. L3
	// routing rewrites the Ethernet addresses).
	Rewrites flow.FieldSet
}

// TraversalSpec is one distinct path through the pipeline's tables; the
// last table emits the terminal action.
type TraversalSpec struct {
	Name   string
	Tables []int
	// Drop marks paths that end by discarding the packet (ACL deny).
	Drop bool
}

// Spec is a complete pipeline model.
type Spec struct {
	Name        string
	Description string
	Tables      []TableSpec
	Traversals  []TraversalSpec
}

// NumTables reports the pipeline's table count (Table 1 column).
func (s *Spec) NumTables() int { return len(s.Tables) }

// NumTraversals reports the pipeline's unique traversal count (Table 1
// column).
func (s *Spec) NumTraversals() int { return len(s.Traversals) }

// Table returns the spec of table id, or nil.
func (s *Spec) Table(id int) *TableSpec {
	for i := range s.Tables {
		if s.Tables[i].ID == id {
			return &s.Tables[i]
		}
	}
	return nil
}

// Validate checks internal consistency: unique increasing table IDs,
// traversals that reference existing tables in strictly increasing order
// (OpenFlow goto-table semantics), and non-empty field templates.
func (s *Spec) Validate() error {
	if len(s.Tables) == 0 || len(s.Traversals) == 0 {
		return fmt.Errorf("pipelines %s: empty spec", s.Name)
	}
	seen := map[int]bool{}
	for _, t := range s.Tables {
		if seen[t.ID] {
			return fmt.Errorf("pipelines %s: duplicate table %d", s.Name, t.ID)
		}
		seen[t.ID] = true
		if t.Fields.Empty() {
			return fmt.Errorf("pipelines %s: table %d (%s) matches no fields", s.Name, t.ID, t.Name)
		}
	}
	paths := map[string]bool{}
	for _, tr := range s.Traversals {
		if len(tr.Tables) == 0 {
			return fmt.Errorf("pipelines %s: traversal %s is empty", s.Name, tr.Name)
		}
		sig := ""
		for i, id := range tr.Tables {
			if !seen[id] {
				return fmt.Errorf("pipelines %s: traversal %s references unknown table %d", s.Name, tr.Name, id)
			}
			if i > 0 && id <= tr.Tables[i-1] {
				return fmt.Errorf("pipelines %s: traversal %s not strictly increasing at %d", s.Name, tr.Name, id)
			}
			sig += fmt.Sprintf("%d,", id)
		}
		if paths[sig] {
			return fmt.Errorf("pipelines %s: duplicate traversal path %v", s.Name, tr.Tables)
		}
		paths[sig] = true
	}
	return nil
}

// Build creates an empty pipeline.Pipeline with the spec's tables (no
// rules); the first listed table is the start table.
func (s *Spec) Build() *pipeline.Pipeline {
	p := pipeline.New(s.Name)
	for _, t := range s.Tables {
		p.AddTable(t.ID, t.Name, t.Fields)
	}
	return p
}

// All returns the five Table 1 pipeline specs in the paper's order.
func All() []*Spec { return []*Spec{OFD, PSC, OLS, ANT, OTL} }

// ByName resolves a spec by its Table 1 abbreviation (case-sensitive).
func ByName(name string) (*Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Field-set shorthands used by the spec definitions.
var (
	fPort    = flow.NewFieldSet(flow.FieldInPort)
	fEthSrc  = flow.NewFieldSet(flow.FieldEthSrc)
	fEthDst  = flow.NewFieldSet(flow.FieldEthDst)
	fEth     = flow.NewFieldSet(flow.FieldEthSrc, flow.FieldEthDst, flow.FieldEthType)
	fEthType = flow.NewFieldSet(flow.FieldEthType)
	fIPDst   = flow.NewFieldSet(flow.FieldEthType, flow.FieldIPDst)
	fIPSrc   = flow.NewFieldSet(flow.FieldEthType, flow.FieldIPSrc)
	fIPPair  = flow.NewFieldSet(flow.FieldEthType, flow.FieldIPSrc, flow.FieldIPDst)
	fProto   = flow.NewFieldSet(flow.FieldIPProto)
	fL4      = flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpSrc, flow.FieldTpDst)
	fTpDst   = flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpDst)
	fTpSrc   = flow.NewFieldSet(flow.FieldIPProto, flow.FieldTpSrc)
	f5Tuple  = flow.NewFieldSet(flow.FieldIPSrc, flow.FieldIPDst, flow.FieldIPProto, flow.FieldTpSrc, flow.FieldTpDst)
	fMACRW   = flow.NewFieldSet(flow.FieldEthSrc, flow.FieldEthDst)
)
