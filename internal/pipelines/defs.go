package pipelines

import "gigaflow/internal/flow"

// OFD models the OpenFlow Data Plane Abstraction (OF-DPA) pipeline used to
// integrate hardware/software switches in CORD: 10 tables, 5 traversals
// (Table 1).
var OFD = &Spec{
	Name:        "OFD",
	Description: "OF-DPA hardware/software switch integration pipeline (CORD)",
	Tables: []TableSpec{
		{ID: 0, Name: "ingress-port", Fields: fPort},
		{ID: 1, Name: "vlan", Fields: fPort.Union(fEthType)},
		{ID: 2, Name: "termination-mac", Fields: fEthDst.Union(fEthType)},
		{ID: 3, Name: "unicast-routing", Fields: fIPDst, Rewrites: fMACRW},
		{ID: 4, Name: "multicast-routing", Fields: fIPDst, Rewrites: fMACRW},
		{ID: 5, Name: "bridging", Fields: fEthDst},
		{ID: 6, Name: "acl-policy", Fields: f5Tuple},
		{ID: 7, Name: "l2-interface-group", Fields: fEthDst},
		{ID: 8, Name: "l3-unicast-group", Fields: fIPDst, Rewrites: fEthSrc},
		{ID: 9, Name: "egress", Fields: fPort},
	},
	Traversals: []TraversalSpec{
		{Name: "bridged", Tables: []int{0, 1, 5, 6, 7, 9}},
		{Name: "routed-unicast", Tables: []int{0, 1, 2, 3, 6, 8, 9}},
		{Name: "routed-multicast", Tables: []int{0, 1, 2, 4, 6, 9}},
		{Name: "acl-deny", Tables: []int{0, 1, 5, 6}, Drop: true},
		{Name: "port-forward", Tables: []int{0, 1, 6, 9}},
	},
}

// PSC models the PISCES L2L3-ACL Open vSwitch pipeline: 7 tables, 2
// traversals (Table 1).
var PSC = &Spec{
	Name:        "PSC",
	Description: "PISCES L2L3-ACL OVS pipeline",
	Tables: []TableSpec{
		{ID: 0, Name: "ingress", Fields: fPort},
		{ID: 1, Name: "validate", Fields: fEthType},
		{ID: 2, Name: "l2-learn", Fields: fEthSrc},
		{ID: 3, Name: "l2-forward", Fields: fEthDst},
		{ID: 4, Name: "l3-route", Fields: fIPDst, Rewrites: fMACRW},
		{ID: 5, Name: "acl", Fields: f5Tuple},
		{ID: 6, Name: "egress", Fields: fEthDst},
	},
	Traversals: []TraversalSpec{
		{Name: "l2-switched", Tables: []int{0, 1, 2, 3, 6}},
		{Name: "l3-routed-acl", Tables: []int{0, 1, 2, 4, 5, 6}},
	},
}

// OTL models an OpenFlow Table Type Patterns (TTP) L2L3-ACL configuration:
// 8 tables, 11 traversals (Table 1).
var OTL = &Spec{
	Name:        "OTL",
	Description: "OpenFlow TTP L2-L3-ACL policy pipeline",
	Tables: []TableSpec{
		{ID: 0, Name: "port", Fields: fPort},
		{ID: 1, Name: "vlan-check", Fields: fPort.Union(fEthType)},
		{ID: 2, Name: "mac-termination", Fields: fEthDst},
		{ID: 3, Name: "l2-bridge", Fields: fEthDst},
		{ID: 4, Name: "l3-unicast", Fields: fIPDst, Rewrites: fMACRW},
		{ID: 5, Name: "l3-multicast", Fields: fIPDst},
		{ID: 6, Name: "acl", Fields: f5Tuple},
		{ID: 7, Name: "egress", Fields: fEthDst},
	},
	Traversals: []TraversalSpec{
		{Name: "bridge", Tables: []int{0, 1, 3, 7}},
		{Name: "bridge-acl", Tables: []int{0, 1, 3, 6, 7}},
		{Name: "bridge-acl-deny", Tables: []int{0, 1, 3, 6}, Drop: true},
		{Name: "route-ucast", Tables: []int{0, 1, 2, 4, 7}},
		{Name: "route-ucast-acl", Tables: []int{0, 1, 2, 4, 6, 7}},
		{Name: "route-ucast-acl-deny", Tables: []int{0, 1, 2, 4, 6}, Drop: true},
		{Name: "route-mcast", Tables: []int{0, 1, 2, 5, 7}},
		{Name: "route-mcast-acl", Tables: []int{0, 1, 2, 5, 6, 7}},
		{Name: "port-direct", Tables: []int{0, 6, 7}},
		{Name: "vlan-deny", Tables: []int{0, 1}, Drop: true},
		{Name: "mac-term-miss-bridge", Tables: []int{0, 1, 2, 3, 7}},
	},
}

// ipSvc matches a virtual-service address and rewrites it (load balancing).
var ipSvc = flow.NewFieldSet(flow.FieldEthType, flow.FieldIPDst, flow.FieldIPProto, flow.FieldTpDst)
