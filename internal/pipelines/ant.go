package pipelines

import "gigaflow/internal/flow"

// ANT models the Antrea OVS pipeline enforcing Kubernetes networking and
// security policies: 22 tables, 20 traversals (Table 1). Stage names
// follow Antrea's ovs-pipeline design document.
var ANT = &Spec{
	Name:        "ANT",
	Description: "Antrea Kubernetes CNI pipeline (networking + network policy)",
	Tables: []TableSpec{
		{ID: 0, Name: "classification", Fields: fPort},
		{ID: 1, Name: "spoof-guard", Fields: fPort.Union(fEthSrc).Union(fIPSrc)},
		{ID: 2, Name: "conntrack-zone", Fields: fProto.Union(fEthType)},
		{ID: 3, Name: "conntrack-state", Fields: fProto},
		{ID: 4, Name: "pre-routing-classifier", Fields: fIPDst},
		{ID: 5, Name: "session-affinity", Fields: fIPDst.Union(fTpDst)},
		{ID: 6, Name: "service-lb", Fields: ipSvc, Rewrites: flow.NewFieldSet(flow.FieldIPDst, flow.FieldTpDst)},
		{ID: 7, Name: "endpoint-dnat", Fields: fIPDst.Union(fTpDst), Rewrites: flow.NewFieldSet(flow.FieldIPDst)},
		{ID: 8, Name: "antrea-policy-egress", Fields: f5Tuple},
		{ID: 9, Name: "egress-rule", Fields: fIPPair},
		{ID: 10, Name: "egress-default", Fields: fIPSrc},
		{ID: 11, Name: "egress-metric", Fields: fProto},
		{ID: 12, Name: "l3-forwarding", Fields: fIPDst, Rewrites: fMACRW},
		{ID: 13, Name: "egress-mark", Fields: fIPSrc},
		{ID: 14, Name: "snat", Fields: fIPSrc, Rewrites: flow.NewFieldSet(flow.FieldIPSrc)},
		{ID: 15, Name: "l3-dec-ttl", Fields: fEthType},
		{ID: 16, Name: "service-mark", Fields: fTpDst},
		{ID: 17, Name: "antrea-policy-ingress", Fields: f5Tuple},
		{ID: 18, Name: "ingress-rule", Fields: fIPPair.Union(fTpDst)},
		{ID: 19, Name: "ingress-default", Fields: fIPDst},
		{ID: 20, Name: "conntrack-commit", Fields: fProto},
		{ID: 21, Name: "output", Fields: fEthDst},
	},
	Traversals: []TraversalSpec{
		// Pod-to-pod intra-node paths.
		{Name: "pod-pod", Tables: []int{0, 1, 2, 3, 12, 21}},
		{Name: "pod-pod-policy", Tables: []int{0, 1, 2, 3, 8, 12, 17, 20, 21}},
		{Name: "pod-pod-policy-deny", Tables: []int{0, 1, 2, 3, 8}, Drop: true},
		{Name: "pod-pod-ingress-rule", Tables: []int{0, 1, 2, 3, 12, 18, 20, 21}},
		{Name: "pod-pod-ingress-deny", Tables: []int{0, 1, 2, 3, 12, 18, 19}, Drop: true},
		// Pod-to-service (LB + DNAT) paths.
		{Name: "pod-svc", Tables: []int{0, 1, 2, 3, 4, 5, 6, 7, 12, 20, 21}},
		{Name: "pod-svc-affinity", Tables: []int{0, 1, 2, 3, 4, 5, 12, 21}},
		{Name: "pod-svc-policy", Tables: []int{0, 1, 2, 3, 4, 6, 7, 8, 12, 17, 20, 21}},
		{Name: "pod-svc-mark", Tables: []int{0, 1, 2, 3, 4, 6, 7, 12, 16, 20, 21}},
		{Name: "svc-reply", Tables: []int{0, 2, 3, 12, 16, 20, 21}},
		// Egress (pod-to-external) with SNAT.
		{Name: "pod-external", Tables: []int{0, 1, 2, 3, 9, 12, 13, 14, 21}},
		{Name: "pod-external-policy", Tables: []int{0, 1, 2, 3, 8, 9, 12, 13, 14, 20, 21}},
		{Name: "pod-external-deny", Tables: []int{0, 1, 2, 3, 9, 10}, Drop: true},
		{Name: "pod-external-ttl", Tables: []int{0, 1, 2, 3, 9, 12, 14, 15, 21}},
		{Name: "egress-metric-path", Tables: []int{0, 1, 2, 3, 9, 11, 12, 14, 21}},
		// External/node ingress toward pods.
		{Name: "external-pod", Tables: []int{0, 2, 3, 12, 17, 18, 20, 21}},
		{Name: "external-pod-deny", Tables: []int{0, 2, 3, 12, 17, 19}, Drop: true},
		{Name: "external-svc", Tables: []int{0, 2, 3, 4, 6, 7, 12, 20, 21}},
		{Name: "node-local", Tables: []int{0, 2, 3, 12, 21}},
		{Name: "spoofed-drop", Tables: []int{0, 1}, Drop: true},
	},
}
