package pipelines

import "gigaflow/internal/flow"

// OLS models the OVN logical-switch pipeline (ingress + egress stages) that
// manages virtual network topologies over OVS: 30 tables, 23 traversals
// (Table 1). Stage names follow ovn-northd's logical flow tables.
var OLS = &Spec{
	Name:        "OLS",
	Description: "OVN logical switch (ingress+egress logical flow stages)",
	Tables: []TableSpec{
		{ID: 0, Name: "ls_in_port_sec_l2", Fields: fPort.Union(fEthSrc)},
		{ID: 1, Name: "ls_in_port_sec_ip", Fields: fEthSrc.Union(fIPSrc)},
		{ID: 2, Name: "ls_in_port_sec_nd", Fields: fEthSrc.Union(fEthType)},
		{ID: 3, Name: "ls_in_lookup_fdb", Fields: fPort.Union(fEthSrc)},
		{ID: 4, Name: "ls_in_put_fdb", Fields: fEthSrc},
		{ID: 5, Name: "ls_in_pre_acl", Fields: fProto.Union(fEthType)},
		{ID: 6, Name: "ls_in_pre_lb", Fields: fIPDst.Union(fProto)},
		{ID: 7, Name: "ls_in_pre_stateful", Fields: fProto},
		{ID: 8, Name: "ls_in_acl_hint", Fields: fTpDst},
		{ID: 9, Name: "ls_in_acl", Fields: f5Tuple},
		{ID: 10, Name: "ls_in_qos_mark", Fields: fIPDst.Union(fTpDst)},
		{ID: 11, Name: "ls_in_lb", Fields: ipSvc, Rewrites: flow.NewFieldSet(flow.FieldIPDst, flow.FieldTpDst)},
		{ID: 12, Name: "ls_in_stateful", Fields: fProto},
		{ID: 13, Name: "ls_in_arp_rsp", Fields: fEthDst.Union(fEthType)},
		{ID: 14, Name: "ls_in_dhcp_options", Fields: fTpDst},
		{ID: 15, Name: "ls_in_dhcp_response", Fields: fTpSrc},
		{ID: 16, Name: "ls_in_dns_lookup", Fields: fTpDst},
		{ID: 17, Name: "ls_in_dns_response", Fields: fTpSrc},
		{ID: 18, Name: "ls_in_external_port", Fields: fPort.Union(fEthSrc)},
		{ID: 19, Name: "ls_in_l2_lkup", Fields: fEthDst},
		{ID: 20, Name: "ls_in_l2_unknown", Fields: fEthDst},
		{ID: 21, Name: "ls_out_pre_lb", Fields: fProto},
		{ID: 22, Name: "ls_out_pre_acl", Fields: fProto.Union(fEthType)},
		{ID: 23, Name: "ls_out_pre_stateful", Fields: fProto},
		{ID: 24, Name: "ls_out_lb", Fields: ipSvc, Rewrites: flow.NewFieldSet(flow.FieldIPDst)},
		{ID: 25, Name: "ls_out_acl_hint", Fields: fTpDst},
		{ID: 26, Name: "ls_out_acl", Fields: f5Tuple},
		{ID: 27, Name: "ls_out_qos_mark", Fields: fIPDst},
		{ID: 28, Name: "ls_out_stateful", Fields: fProto},
		{ID: 29, Name: "ls_out_port_sec_l2", Fields: fEthDst},
	},
	Traversals: []TraversalSpec{
		// Plain L2 unicast with and without ACL stages engaged.
		{Name: "l2-basic", Tables: []int{0, 3, 19, 29}},
		{Name: "l2-acl", Tables: []int{0, 3, 5, 9, 19, 22, 26, 29}},
		{Name: "l2-acl-deny", Tables: []int{0, 3, 5, 9}, Drop: true},
		{Name: "l2-portsec-ip", Tables: []int{0, 1, 3, 19, 29}},
		{Name: "l2-portsec-deny", Tables: []int{0, 1}, Drop: true},
		{Name: "l2-portsec-nd", Tables: []int{0, 2, 3, 19, 29}},
		{Name: "l2-fdb-learn", Tables: []int{0, 3, 4, 19, 29}},
		// Load-balanced service paths.
		{Name: "lb-tcp", Tables: []int{0, 3, 6, 7, 11, 12, 19, 21, 29}},
		{Name: "lb-acl", Tables: []int{0, 3, 5, 6, 7, 8, 9, 11, 12, 19, 22, 26, 29}},
		{Name: "lb-out", Tables: []int{0, 3, 6, 19, 23, 24, 28, 29}},
		{Name: "lb-qos", Tables: []int{0, 3, 6, 10, 11, 19, 27, 29}},
		// ARP/ND responder and unknown-MAC flooding.
		{Name: "arp-responder", Tables: []int{0, 3, 13, 19, 29}},
		{Name: "l2-unknown-flood", Tables: []int{0, 3, 19, 20, 29}},
		{Name: "l2-unknown-acl", Tables: []int{0, 3, 9, 19, 20, 26, 29}},
		// DHCP and DNS service paths.
		{Name: "dhcp-request", Tables: []int{0, 3, 14, 15, 19, 29}},
		{Name: "dns-lookup", Tables: []int{0, 3, 16, 17, 19, 29}},
		{Name: "dns-acl", Tables: []int{0, 3, 9, 16, 19, 26, 29}},
		// External/localnet port handling.
		{Name: "external-port", Tables: []int{0, 3, 18, 19, 29}},
		{Name: "external-acl", Tables: []int{0, 3, 9, 18, 19, 26, 29}},
		// Stateful firewall paths with hints.
		{Name: "stateful-new", Tables: []int{0, 3, 5, 7, 8, 9, 12, 19, 22, 25, 26, 28, 29}},
		{Name: "stateful-reply", Tables: []int{0, 3, 7, 8, 9, 12, 19, 23, 25, 26, 28, 29}},
		{Name: "qos-only", Tables: []int{0, 3, 10, 19, 27, 29}},
		{Name: "out-acl-deny", Tables: []int{0, 3, 19, 22, 26}, Drop: true},
	},
}
