package conntrack

import (
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/packet"
)

// tuple builds a TCP 5-tuple key (the shape Track sees after decode).
func tuple(ipSrc, ipDst, tpSrc, tpDst uint64) flow.Key {
	var k flow.Key
	return k.With(flow.FieldEthType, packet.EtherTypeIPv4).
		With(flow.FieldIPSrc, ipSrc).
		With(flow.FieldIPDst, ipDst).
		With(flow.FieldIPProto, packet.IPProtoTCP).
		With(flow.FieldTpSrc, tpSrc).
		With(flow.FieldTpDst, tpDst)
}

func udp(k flow.Key) flow.Key { return k.With(flow.FieldIPProto, packet.IPProtoUDP) }

func TestLifecycleTCP(t *testing.T) {
	tb := NewTable(0)
	fwd := tuple(1, 2, 1000, 80)
	rev := invert(fwd)

	bits, c, dir := tb.Track(fwd, packet.TCPSyn, 10)
	if c == nil || dir != DirForward {
		t.Fatalf("first packet: conn=%v dir=%v", c, dir)
	}
	if bits != flow.CtTrk|flow.CtNew {
		t.Fatalf("SYN bits = %#x, want trk|new", bits)
	}
	if c.State != StateNew {
		t.Fatalf("state = %v", c.State)
	}
	e1 := c.Epoch

	// Retransmit in the same direction: no transition, same epoch.
	if _, c2, _ := tb.Track(fwd, packet.TCPSyn, 11); c2 != c || c.Epoch != e1 {
		t.Fatal("forward retransmit must not transition")
	}

	// First reply establishes and bumps the epoch.
	bits, c2, dir := tb.Track(rev, packet.TCPSyn|packet.TCPAck, 12)
	if c2 != c || dir != DirReply {
		t.Fatalf("reply resolved to %v/%v", c2, dir)
	}
	if bits != flow.CtTrk|flow.CtEst|flow.CtRpl {
		t.Fatalf("established reply bits = %#x", bits)
	}
	if c.State != StateEstablished || c.Epoch == e1 {
		t.Fatalf("establish: state=%v epoch %d -> %d", c.State, e1, c.Epoch)
	}
	e2 := c.Epoch

	// Data packets both ways: stable.
	tb.Track(fwd, packet.TCPAck, 13)
	tb.Track(rev, packet.TCPAck, 14)
	if c.State != StateEstablished || c.Epoch != e2 {
		t.Fatal("data packets must not transition")
	}

	// FIN closes, epoch bumps again.
	bits, _, _ = tb.Track(fwd, packet.TCPFin|packet.TCPAck, 15)
	if c.State != StateClosed || c.Epoch == e2 {
		t.Fatalf("close: state=%v", c.State)
	}
	if bits != flow.CtTrk|flow.CtCls {
		t.Fatalf("closed bits = %#x", bits)
	}

	st := tb.Stats()
	if st.Created != 1 || st.Transitions != 2 || st.Active != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTupleReuseReopens(t *testing.T) {
	tb := NewTable(0)
	fwd := tuple(1, 2, 1000, 80)
	rev := invert(fwd)

	_, c1, _ := tb.Track(fwd, packet.TCPSyn, 1)
	tb.Track(rev, packet.TCPSyn|packet.TCPAck, 2)
	tb.Track(fwd, packet.TCPRst, 3)
	if c1.State != StateClosed {
		t.Fatal("RST must close")
	}
	poison := c1.Epoch

	// A fresh SYN on the same tuple — from the OLD responder side —
	// starts a new connection whose initiator is that side.
	_, c2, dir := tb.Track(rev, packet.TCPSyn, 4)
	if c2 == c1 {
		t.Fatal("reopen must allocate a fresh connection")
	}
	if dir != DirForward {
		t.Fatal("reopening packet is the new connection's forward direction")
	}
	if c1.Epoch == poison {
		t.Fatal("dead connection must be epoch-poisoned on removal")
	}
	if tb.Stats().Reopened != 1 {
		t.Fatalf("stats = %+v", tb.Stats())
	}
	// The old generation's epoch can never validate again.
	if tb.EpochValid(fwd, poison) {
		t.Fatal("stale epoch validated after reuse")
	}
	if !tb.EpochValid(rev, c2.Epoch) {
		t.Fatal("new generation must validate under its own epoch")
	}
}

func TestUDPEstablishes(t *testing.T) {
	tb := NewTable(0)
	fwd := udp(tuple(7, 8, 5353, 53))
	_, c, _ := tb.Track(fwd, 0, 1)
	if c.State != StateNew {
		t.Fatal("udp starts new")
	}
	bits, _, _ := tb.Track(invert(fwd), 0, 2)
	if c.State != StateEstablished || bits&flow.CtRpl == 0 {
		t.Fatalf("udp reply: state=%v bits=%#x", c.State, bits)
	}
}

func TestNATBindingReRegistersReply(t *testing.T) {
	tb := NewTable(0)
	fwd := udp(tuple(0x0a000001, 0x0a090001, 4000, 53)) // client -> VIP
	_, c, _ := tb.Track(fwd, 0, 1)
	pre := c.Epoch
	tb.SetDNAT(c, 0x0a140001, 5301)
	if c.Epoch == pre {
		t.Fatal("a new NAT binding must bump the epoch")
	}

	// The un-translated reply tuple (VIP -> client) must no longer
	// resolve; the translated one (backend -> client) must.
	if _, _, ok := tb.Lookup(invert(fwd)); ok {
		t.Fatal("pre-NAT reply tuple still registered after binding")
	}
	trans := udp(tuple(0x0a140001, 0x0a000001, 5301, 4000))
	c2, dir, ok := tb.Lookup(trans)
	if !ok || c2 != c || dir != DirReply {
		t.Fatalf("translated reply lookup: %v %v %v", c2, dir, ok)
	}

	// NATKey: forward carries the rewritten destination; the reply view
	// restores the VIP as the source.
	nk := c.NATKey(DirForward)
	if nk.Get(flow.FieldIPDst) != 0x0a140001 || nk.Get(flow.FieldTpDst) != 5301 {
		t.Fatalf("forward NATKey = %v", nk)
	}
	rk := c.NATKey(DirReply)
	if rk.Get(flow.FieldIPSrc) != 0x0a090001 || rk.Get(flow.FieldTpSrc) != 53 {
		t.Fatalf("reply NATKey = %v", rk)
	}

	// Idempotent: a second binding attempt is a no-op.
	epoch := c.Epoch
	tb.SetDNAT(c, 0x0a140002, 5302)
	if c.DNAT.IP != 0x0a140001 || c.Epoch != epoch {
		t.Fatal("live binding must never change")
	}
}

func TestIdleExpiryPoisons(t *testing.T) {
	tb := NewTable(0)
	a := udp(tuple(1, 2, 10, 20))
	b := udp(tuple(3, 4, 30, 40))
	_, ca, _ := tb.Track(a, 0, 100)
	_, cb, _ := tb.Track(b, 0, 200)
	ea := ca.Epoch

	if n := tb.ExpireIdle(250, 100); n != 1 {
		t.Fatalf("expired %d, want 1 (only the older)", n)
	}
	if tb.EpochValid(a, ea) {
		t.Fatal("expired connection still validates")
	}
	if !tb.EpochValid(b, cb.Epoch) {
		t.Fatal("survivor must still validate")
	}
	if tb.Len() != 1 || tb.Stats().Expired != 1 {
		t.Fatalf("len=%d stats=%+v", tb.Len(), tb.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	tb := NewTable(2)
	k1 := udp(tuple(1, 9, 1, 1))
	k2 := udp(tuple(2, 9, 2, 2))
	k3 := udp(tuple(3, 9, 3, 3))
	_, c1, _ := tb.Track(k1, 0, 1)
	tb.Track(k2, 0, 2)
	tb.Track(k1, 0, 3) // refresh c1: c2 is now LRU
	e1 := c1.Epoch
	tb.Track(k3, 0, 4) // evicts c2
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	if _, _, ok := tb.Lookup(k2); ok {
		t.Fatal("LRU connection must be evicted")
	}
	if !tb.EpochValid(k1, e1) {
		t.Fatal("refreshed connection evicted instead of LRU")
	}
	if tb.Stats().EvictLRU != 1 {
		t.Fatalf("stats = %+v", tb.Stats())
	}
}

func TestICMPRelated(t *testing.T) {
	tb := NewTable(0)
	icmp := tuple(1, 2, 3, 0).With(flow.FieldIPProto, packet.IPProtoICMP)

	bits, c, _ := tb.Track(icmp, 0, 1)
	if c != nil || bits != flow.CtTrk {
		t.Fatalf("icmp with no tracked pair: bits=%#x conn=%v", bits, c)
	}

	// A tracked TCP connection between the same hosts makes ICMP related
	// — in either direction.
	_, tc, _ := tb.Track(tuple(1, 2, 1000, 80), packet.TCPSyn, 2)
	for _, k := range []flow.Key{icmp, invert(icmp)} {
		bits, _, _ = tb.Track(k, 0, 3)
		if bits != flow.CtTrk|flow.CtRel {
			t.Fatalf("icmp beside tracked pair: bits=%#x", bits)
		}
	}

	// The pair refcount: a second connection keeps ct_rel alive after
	// the first dies.
	_, tc2, _ := tb.Track(tuple(1, 2, 1001, 80), packet.TCPSyn, 4)
	tb.remove(tc)
	if bits, _, _ = tb.Track(icmp, 0, 5); bits != flow.CtTrk|flow.CtRel {
		t.Fatal("ct_rel dropped while a second connection lives")
	}
	tb.remove(tc2)
	if bits, _, _ = tb.Track(icmp, 0, 6); bits != flow.CtTrk {
		t.Fatal("ct_rel survives the last connection's death")
	}
}

func TestNonIPUntracked(t *testing.T) {
	tb := NewTable(0)
	var arp flow.Key
	arp = arp.With(flow.FieldEthType, 0x0806)
	bits, c, _ := tb.Track(arp, 0, 1)
	if bits != 0 || c != nil {
		t.Fatalf("non-IP must be untracked: bits=%#x", bits)
	}
}

func TestMayTransitionExactness(t *testing.T) {
	// MayTransition must be a superset of the transitions Track performs:
	// for every (state, dir, flags) where MayTransition says false, Track
	// must leave the state and epoch untouched.
	flagSets := []uint8{0, packet.TCPAck, packet.TCPPsh | packet.TCPAck,
		packet.TCPSyn, packet.TCPFin, packet.TCPRst, packet.TCPSyn | packet.TCPAck}
	for _, viaReply := range []bool{false, true} {
		for _, flags := range flagSets {
			tb := NewTable(0)
			fwd := tuple(1, 2, 1000, 80)
			_, c, _ := tb.Track(fwd, packet.TCPSyn, 1)
			if viaReply {
				tb.Track(invert(fwd), packet.TCPSyn|packet.TCPAck, 2)
			}
			state, epoch := c.State, c.Epoch
			for _, dir := range []Dir{DirForward, DirReply} {
				if MayTransition(state, dir, packet.IPProtoTCP, flags) {
					continue
				}
				k := fwd
				if dir == DirReply {
					k = invert(fwd)
				}
				tb.Track(k, flags, 3)
				if c.State != state || c.Epoch != epoch {
					t.Fatalf("MayTransition(%v,%v,%#x)=false but Track transitioned %v->%v",
						state, dir, flags, state, c.State)
				}
			}
		}
	}
}

func TestBindHashStablePerGeneration(t *testing.T) {
	tb := NewTable(0)
	fwd := tuple(1, 2, 1000, 80)
	_, c1, _ := tb.Track(fwd, packet.TCPSyn, 1)
	h1 := c1.BindHash()
	if c1.BindHash() != h1 {
		t.Fatal("BindHash must be stable")
	}
	tb.Track(fwd, packet.TCPRst, 2)
	_, c2, _ := tb.Track(fwd, packet.TCPSyn, 3)
	if c2.BindHash() == h1 {
		t.Fatal("a reused tuple's new generation should rehash (epoch mixed in)")
	}
}

func BenchmarkTrackEstablished(b *testing.B) {
	tb := NewTable(0)
	fwd := udp(tuple(1, 2, 1000, 53))
	tb.Track(fwd, 0, 1)
	tb.Track(invert(fwd), 0, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Track(fwd, 0, int64(i))
	}
}

func BenchmarkEpochValid(b *testing.B) {
	tb := NewTable(0)
	fwd := udp(tuple(1, 2, 1000, 53))
	_, c, _ := tb.Track(fwd, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tb.EpochValid(fwd, c.Epoch) {
			b.Fatal("must validate")
		}
	}
}

// TestTupleClashDisplaces: a NAT re-registration that lands on a tuple
// another connection already holds must remove (and epoch-poison) that
// connection. Without displacement, a memoized result holding a direct
// pointer to the stale connection would keep serving — its epoch never
// changes — even though the tuple now belongs to someone else.
func TestTupleClashDisplaces(t *testing.T) {
	tb := NewTable(0)
	client := tuple(0x0a000001, 0x0a090001, 2000, 443)   // client -> VIP
	backend := tuple(0x0a140001, 0x0a000001, 8443, 2000) // backend -> client

	// A stray backend->client packet first: tracked as its own "junk"
	// forward connection claiming the backend->client tuple.
	_, junk, dir := tb.Track(backend, packet.TCPSyn, 1)
	if junk == nil || dir != DirForward {
		t.Fatalf("stray packet: %v/%v", junk, dir)
	}
	junkEpoch := junk.Epoch

	// Now the real connection: client->VIP, DNAT'd to the backend. Its
	// reply tuple is exactly the junk connection's Orig.
	_, c, _ := tb.Track(client, packet.TCPSyn, 2)
	tb.SetDNAT(c, 0x0a140001, 8443)

	if got, _, ok := tb.Lookup(backend); !ok || got != c {
		t.Fatal("backend tuple must now resolve to the NAT'd connection")
	}
	if tb.EpochValid(backend, junkEpoch) {
		t.Fatal("displaced connection's epoch still validates")
	}
	if junk.Epoch == junkEpoch {
		t.Fatal("displaced connection not epoch-poisoned")
	}
	if st := tb.Stats(); st.Displaced != 1 || st.Active != 1 {
		t.Fatalf("stats after clash: %+v", st)
	}
	// The junk connection's other tuple (client->backend) is gone too.
	if _, _, ok := tb.Lookup(invert(backend)); ok {
		t.Fatal("displaced connection's reply tuple still registered")
	}
}

// TestLazyTouchExpiryExact: lazy LRU repositioning must not let a
// recently-refreshed connection sitting at the tail shield an expired
// one behind it. The shield window is precise: a's position (lastMoved)
// is a quantum stale while its LastSeen is fresh, so a sits at the tail
// in front of the expired b — a naive stop-at-first-fresh-tail sweep
// would keep b alive.
func TestLazyTouchExpiryExact(t *testing.T) {
	const (
		q       = repositionQuantum
		maxIdle = 4 * q
		now     = 5*q - 1
	)
	tb := NewTable(0)
	a := udp(tuple(1, 9, 1, 1))
	b := udp(tuple(2, 9, 2, 2))
	_, ca, _ := tb.Track(a, 0, 0) // a: lastMoved=0, tail
	tb.Track(b, 0, 1)             // b: in front of a, then idles
	tb.Track(a, 0, q-1)           // sub-quantum touch: LastSeen moves, position does not

	// At the sweep, a is the tail with now-LastSeen == maxIdle (alive)
	// but now-lastMoved > maxIdle; b behind it has now-LastSeen > maxIdle.
	if n := tb.ExpireIdle(now, maxIdle); n != 1 {
		t.Fatalf("expired %d connections, want exactly 1 (idle b)", n)
	}
	if _, _, ok := tb.Lookup(b); ok {
		t.Fatal("idle connection shielded by a fresh tail")
	}
	if got, _, ok := tb.Lookup(a); !ok || got != ca {
		t.Fatal("live connection expired")
	}
}
