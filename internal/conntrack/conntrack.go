// Package conntrack is the stateful layer of the datapath: a 5-tuple
// connection table with a TCP-flag-driven state machine, OVS-style
// ct_state bits folded into the flow key for the pipeline and caches to
// match on, per-connection NAT bindings, and the epoch protocol the
// cache tiers use to invalidate entries whose match or action depended
// on connection state that has since changed.
//
// The table is built on internal/flowtable with a 5-tuple mask; every
// connection registers its forward and reply tuples (plus the translated
// reply tuple once a NAT binding exists), so both directions of a flow —
// and NATed return traffic — resolve to the same connection in one
// masked probe.
//
// # Epoch protocol
//
// The table keeps one monotonic epoch counter. Every connection creation
// and every state transition stamps the connection with a fresh epoch.
// Cached entries that depended on connection state record the (tuple,
// epoch) pair they were built under; validity is a single lookup — the
// tuple still resolves to a live connection carrying exactly that epoch.
// Removing a connection re-stamps it with a fresh epoch ("poisoning"),
// so even cache entries holding a dangling *Conn pointer fail the
// comparison. Because the counter is global and monotonic, an epoch
// recorded from one connection generation can never collide with a later
// generation on the same tuple.
package conntrack

import (
	"gigaflow/internal/flow"
	"gigaflow/internal/flowtable"
	"gigaflow/internal/packet"
)

// State is a connection's lifecycle state.
type State uint8

const (
	// StateNew: only initiator-direction packets seen.
	StateNew State = iota
	// StateEstablished: traffic seen in both directions.
	StateEstablished
	// StateClosed: TCP FIN or RST observed.
	StateClosed
)

// String names the state as DESIGN.md and telemetry spell it.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateEstablished:
		return "established"
	case StateClosed:
		return "closed"
	}
	return "invalid"
}

// Dir is a packet's direction relative to its connection.
type Dir uint8

const (
	// DirForward: the direction of the connection's first packet.
	DirForward Dir = iota
	// DirReply: the opposite direction.
	DirReply
)

// NATBinding is the concrete rewrite chosen for one connection by a
// dnat/snat action: the replacement address and port.
type NATBinding struct {
	IP   uint64
	Port uint64
	Set  bool
}

// Conn is one tracked connection. Fields are owned by the table; callers
// treat connections as read-only handles.
type Conn struct {
	// Orig is the forward-direction 5-tuple as first seen (pre-NAT).
	Orig flow.Key
	// reply is the tuple reply packets carry, updated when a NAT binding
	// rewrites it.
	reply flow.Key
	// State is the current lifecycle state.
	State State
	// Epoch is the stamp of the connection's last creation or transition;
	// see the package comment for the invalidation protocol.
	Epoch uint64
	// DNAT / SNAT are the connection's NAT bindings, if any.
	DNAT NATBinding
	SNAT NATBinding
	// LastSeen is the virtual time (ns) of the connection's most recent
	// packet.
	LastSeen int64
	// Created is the connection's creation time (virtual ns).
	Created int64
	// lastMoved is the time of the connection's last LRU reposition.
	// Touches reposition lazily — at most once per repositionQuantum —
	// so the list order tracks LastSeen only to within the quantum;
	// ExpireIdle compensates (see there). LastSeen itself is exact.
	lastMoved int64

	prev, next *Conn // LRU list, most recent at front
}

// repositionQuantum bounds how often a touch repositions a connection
// in the LRU list (virtual ns). Moving a node to the front is the
// dominant per-hit cost of keeping a hot connection alive — three
// nodes' pointers on random cache lines — and doing it on every packet
// is wasted precision: the list only needs to be ordered well enough
// for tail-first expiry and eviction scans.
const repositionQuantum = 1 << 16

// connRef resolves a tuple probe to its connection and the direction
// that tuple represents.
type connRef struct {
	c   *Conn
	dir Dir
}

// Stats counts table activity. Monotonic except Active.
type Stats struct {
	// Created counts connection creations (including reopens).
	Created uint64 `json:"created"`
	// Transitions counts state transitions after creation.
	Transitions uint64 `json:"transitions"`
	// Reopened counts closed connections replaced by a fresh SYN.
	Reopened uint64 `json:"reopened"`
	// Expired counts idle-expired connections.
	Expired uint64 `json:"expired"`
	// EvictLRU counts connections evicted by MaxConns pressure.
	EvictLRU uint64 `json:"evict_lru"`
	// Displaced counts connections removed because another connection's
	// tuple registration (creation or NAT re-registration) clashed with
	// one of theirs.
	Displaced uint64 `json:"displaced"`
	// Lookups and Hits count Track probes and those that found an
	// existing connection.
	Lookups uint64 `json:"lookups"`
	Hits    uint64 `json:"hits"`
	// Active is the current live connection count (set at snapshot time).
	Active uint64 `json:"active"`
}

// TupleMask is the 5-tuple mask connection probes match under.
var TupleMask = flow.ExactFields(
	flow.FieldIPSrc, flow.FieldIPDst, flow.FieldIPProto,
	flow.FieldTpSrc, flow.FieldTpDst)

var pairMask = flow.ExactFields(flow.FieldIPSrc, flow.FieldIPDst)

// Table is the connection table. Not safe for concurrent use; each
// datapath worker owns one, like the cache tiers.
type Table struct {
	conns *flowtable.Table[connRef]
	// pairs refcounts live (unordered) host pairs with at least one
	// TCP/UDP connection, backing the ct_rel bit for ICMP.
	pairs     *flowtable.Table[int]
	nextEpoch uint64
	maxConns  int
	count     int
	lruHead   *Conn
	lruTail   *Conn
	stats     Stats
}

// NewTable builds a connection table holding at most maxConns live
// connections (0 means unbounded); under pressure the least recently
// seen connection is evicted.
func NewTable(maxConns int) *Table {
	hint := maxConns
	if hint <= 0 {
		hint = 1024
	}
	return &Table{
		conns:    flowtable.New[connRef](TupleMask, 2*hint),
		pairs:    flowtable.New[int](pairMask, hint),
		maxConns: maxConns,
	}
}

// Len reports the number of live connections.
func (t *Table) Len() int { return t.count }

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() Stats {
	s := t.stats
	s.Active = uint64(t.count)
	return s
}

// newEpoch advances the global epoch counter.
func (t *Table) newEpoch() uint64 {
	t.nextEpoch++
	return t.nextEpoch
}

// tracked reports whether the key's protocol gets a connection entry.
//
//gf:hotpath
func tracked(proto uint64) bool {
	return proto == packet.IPProtoTCP || proto == packet.IPProtoUDP
}

// invert swaps a tuple's endpoints: the reply direction of k.
func invert(k flow.Key) flow.Key {
	out := k
	out.Set(flow.FieldIPSrc, k.Get(flow.FieldIPDst))
	out.Set(flow.FieldIPDst, k.Get(flow.FieldIPSrc))
	out.Set(flow.FieldTpSrc, k.Get(flow.FieldTpDst))
	out.Set(flow.FieldTpDst, k.Get(flow.FieldTpSrc))
	return out
}

// pairKey canonicalizes the unordered host pair of k for the ct_rel
// refcount table.
func pairKey(k flow.Key) flow.Key {
	a, b := k.Get(flow.FieldIPSrc), k.Get(flow.FieldIPDst)
	if a > b {
		a, b = b, a
	}
	var out flow.Key
	out.Set(flow.FieldIPSrc, a)
	out.Set(flow.FieldIPDst, b)
	return out
}

// stateBits maps a connection state and packet direction onto ct_state
// flag bits.
//
//gf:hotpath
func stateBits(s State, dir Dir) uint64 {
	bits := flow.CtTrk
	switch s {
	case StateNew:
		bits |= flow.CtNew
	case StateEstablished:
		bits |= flow.CtEst
	case StateClosed:
		bits |= flow.CtCls
	}
	if dir == DirReply {
		bits |= flow.CtRpl
	}
	return bits
}

// MayTransition reports whether a packet with the given direction and
// TCP flags could move a connection in state s to another state — the
// fast-path guard memoized entries use to decide whether a full Track
// walk is needed. It is deliberately a superset of the transitions Track
// actually performs: a true return only costs a re-track, a false
// return must be exact.
//
//gf:hotpath
func MayTransition(s State, dir Dir, proto uint64, tcpFlags uint8) bool {
	if s == StateNew && dir == DirReply {
		return true // first reply establishes
	}
	if proto == packet.IPProtoTCP &&
		tcpFlags&(packet.TCPFin|packet.TCPSyn|packet.TCPRst) != 0 {
		return true // close, reset, or reopen
	}
	return false
}

// Track runs the connection state machine for one packet and returns
// the packet's ct_state bits, its connection (nil for protocols that
// are not connection-tracked), and its direction. k must be the raw
// ingress key (pre-NAT, ct_state not yet folded). tcpFlags is the TCP
// flag byte, zero for other protocols.
//
//gf:hotpath
func (t *Table) Track(k flow.Key, tcpFlags uint8, now int64) (uint64, *Conn, Dir) {
	proto := k.Get(flow.FieldIPProto)
	if k.Get(flow.FieldEthType) != packet.EtherTypeIPv4 {
		return 0, nil, DirForward // not IP: untracked
	}
	if !tracked(proto) {
		bits := flow.CtTrk
		if proto == packet.IPProtoICMP { // related iff a tracked pair exists
			if _, ok := t.pairs.Lookup(pairKey(k)); ok {
				bits |= flow.CtRel
			}
		}
		return bits, nil, DirForward
	}

	t.stats.Lookups++
	ref, ok := t.conns.Lookup(k)
	if !ok {
		c := t.create(k, now)
		return stateBits(c.State, DirForward), c, DirForward
	}
	t.stats.Hits++
	c, dir := ref.c, ref.dir
	t.touchLazy(c, now)

	switch c.State {
	case StateNew:
		if tcpFlags&packet.TCPRst != 0 {
			t.transition(c, StateClosed)
		} else if dir == DirReply {
			t.transition(c, StateEstablished)
		}
	case StateEstablished:
		if tcpFlags&(packet.TCPFin|packet.TCPRst) != 0 {
			t.transition(c, StateClosed)
		}
	case StateClosed:
		if tcpFlags&packet.TCPSyn != 0 && tcpFlags&packet.TCPRst == 0 {
			// A fresh handshake reuses the tuple: replace the dead
			// connection with a new one whose initiator is this packet.
			c = t.reopen(c, k, now)
			return stateBits(c.State, DirForward), c, DirForward
		}
	}
	return stateBits(c.State, dir), c, dir
}

// transition moves c to state s and stamps a fresh epoch, invalidating
// every cached entry built against the old state.
//
//gf:hotpath
func (t *Table) transition(c *Conn, s State) {
	c.State = s
	c.Epoch = t.newEpoch()
	t.stats.Transitions++
}

// create allocates and registers a new connection for first-packet key k.
// First packets are a slow-path event (the caches have never seen the
// tuple either); allocation here is by design.
//
//gf:hotpath-safe first-packet connection creation allocates by design
func (t *Table) create(k flow.Key, now int64) *Conn {
	if t.maxConns > 0 && t.count >= t.maxConns {
		if victim := t.oldest(); victim != nil {
			t.remove(victim)
			t.stats.EvictLRU++
		}
	}
	c := &Conn{
		Orig:      k,
		reply:     invert(k),
		State:     StateNew,
		Epoch:     t.newEpoch(),
		LastSeen:  now,
		Created:   now,
		lastMoved: now,
	}
	t.register(c.Orig, connRef{c, DirForward})
	t.register(c.reply, connRef{c, DirReply})
	t.addPair(c.Orig)
	t.pushFront(c)
	t.count++
	t.stats.Created++
	return c
}

// reopen replaces a closed connection whose tuple a new handshake is
// reusing. The initiator of the new connection is the packet at hand, so
// direction roles may swap relative to the old connection.
//
//gf:hotpath-safe tuple-reuse reopen allocates a fresh connection by design
func (t *Table) reopen(old *Conn, k flow.Key, now int64) *Conn {
	t.remove(old)
	t.stats.Reopened++
	return t.create(k, now)
}

// remove unregisters c's tuples, drops it from the LRU, and poisons its
// epoch so cached entries that still point at it fail validation.
func (t *Table) remove(c *Conn) {
	t.conns.Delete(c.Orig)
	t.conns.Delete(c.reply)
	t.dropPair(c.Orig)
	t.unlink(c)
	t.count--
	c.Epoch = t.newEpoch()
}

// SetDNAT records c's destination rewrite and re-registers the reply
// tuple: replies now arrive from the translated endpoint. Idempotent
// for an unchanged binding; the binding of a live connection never
// changes once set.
func (t *Table) SetDNAT(c *Conn, ip, port uint64) {
	if c.DNAT.Set {
		return
	}
	c.DNAT = NATBinding{IP: ip, Port: port, Set: true}
	c.Epoch = t.newEpoch() // a new binding changes NAT semantics: invalidate pre-binding entries
	t.conns.Delete(c.reply)
	c.reply = invert(c.NATKey(DirForward))
	t.register(c.reply, connRef{c, DirReply})
}

// SetSNAT records c's source rewrite and re-registers the reply tuple
// (replies are addressed to the translated source).
func (t *Table) SetSNAT(c *Conn, ip, port uint64) {
	if c.SNAT.Set {
		return
	}
	c.SNAT = NATBinding{IP: ip, Port: port, Set: true}
	c.Epoch = t.newEpoch() // see SetDNAT
	t.conns.Delete(c.reply)
	c.reply = invert(c.NATKey(DirForward))
	t.register(c.reply, connRef{c, DirReply})
}

// register maps tuple to ref, displacing any other connection still
// holding that tuple — a tuple clash, e.g. a NAT re-registration landing
// on a tuple that an earlier (pre-NAT) connection claimed as its own.
// The displaced connection is removed, which poisons its epoch: cache
// entries built under it must not keep serving once its tuple has been
// taken over, and the microflow guard compares epochs through a direct
// connection pointer, so unregistering the tuple alone would not
// invalidate them.
func (t *Table) register(tuple flow.Key, ref connRef) {
	if old, ok := t.conns.Lookup(tuple); ok && old.c != ref.c {
		t.remove(old.c)
		t.stats.Displaced++
	}
	t.conns.Put(tuple, ref)
}

// NATKey returns the tuple a packet of direction dir carries after c's
// NAT bindings are applied: forward packets get dst (DNAT) and src
// (SNAT) rewritten; reply packets get the inverse.
func (c *Conn) NATKey(dir Dir) flow.Key {
	if dir == DirForward {
		k := c.Orig
		if c.DNAT.Set {
			k.Set(flow.FieldIPDst, c.DNAT.IP)
			k.Set(flow.FieldTpDst, c.DNAT.Port)
		}
		if c.SNAT.Set {
			k.Set(flow.FieldIPSrc, c.SNAT.IP)
			k.Set(flow.FieldTpSrc, c.SNAT.Port)
		}
		return k
	}
	// Reply direction: undo the forward rewrite as seen from the reply —
	// the translated reply tuple inverted back to the original view.
	return invert(c.Orig)
}

// BindHash mixes a connection's original tuple and current epoch into a
// deterministic selector for NAT pool target choice: stable for the
// connection's lifetime, but free to differ when the tuple is reused by
// a later connection generation.
func (c *Conn) BindHash() uint64 {
	h := c.Orig.FlowHash()
	h ^= c.Epoch * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h
}

// Touch refreshes c's LastSeen and LRU position without running the
// state machine — the microflow fast path's way of keeping a connection
// alive while its memoized entry absorbs the traffic.
//
//gf:hotpath
func (t *Table) Touch(c *Conn, now int64) {
	t.touchLazy(c, now)
}

// touchLazy is the shared per-packet refresh for Track and Touch:
// LastSeen is stamped exactly on every call, but the LRU reposition is
// skipped while the connection moved within the last repositionQuantum.
// A hot connection therefore repositions at most once per quantum
// instead of once per packet, and because the decision depends only on
// (lastMoved, now), two tables fed the same packet sequence keep
// identical list orders regardless of which entry point refreshed each
// packet — what keeps the cached datapath and the Reference oracle's
// expiry and eviction in lockstep.
//
//gf:hotpath
func (t *Table) touchLazy(c *Conn, now int64) {
	c.LastSeen = now
	if now-c.lastMoved < repositionQuantum {
		return
	}
	c.lastMoved = now
	t.touch(c)
}

// EpochValid reports whether tuple still resolves to a live connection
// carrying exactly epoch — the validity check for cached entries whose
// action depended on connection state. One masked probe.
//
//gf:hotpath
func (t *Table) EpochValid(tuple flow.Key, epoch uint64) bool {
	ref, ok := t.conns.Lookup(tuple)
	return ok && ref.c.Epoch == epoch
}

// Lookup resolves a tuple to its connection and direction without
// running the state machine.
//
//gf:hotpath
func (t *Table) Lookup(k flow.Key) (*Conn, Dir, bool) {
	ref, ok := t.conns.Lookup(k)
	if !ok {
		return nil, DirForward, false
	}
	return ref.c, ref.dir, true
}

// ExpireIdle removes connections whose last packet is older than maxIdle
// (virtual ns) and returns how many died. Removed connections are
// epoch-poisoned, so the caches lazily drop entries that depended on
// them.
//
// Lazy repositioning means list order tracks LastSeen only to within
// repositionQuantum, so the sweep cannot just stop at the first fresh
// tail: a connection refreshed moments ago could sit in front of one
// that expired. Instead it walks tailward while now-lastMoved exceeds
// maxIdle — every expired connection satisfies that (LastSeen >=
// lastMoved), and the first node inside the bound proves everything
// fresher than it is alive — removing exactly the connections whose
// LastSeen is stale. The set removed is therefore identical to an
// eagerly-ordered table's, and connections visited but kept are within
// one quantum of expiring, so the scan stays short.
func (t *Table) ExpireIdle(now, maxIdle int64) int {
	if maxIdle <= 0 {
		return 0
	}
	n := 0
	for cur := t.lruTail; cur != nil && now-cur.lastMoved > maxIdle; {
		prev := cur.prev
		if now-cur.LastSeen > maxIdle {
			t.remove(cur)
			t.stats.Expired++
			n++
		}
		cur = prev
	}
	return n
}

// oldest returns the connection with the smallest LastSeen — the LRU
// eviction victim. The list is ordered by lastMoved, and every
// connection's LastSeen lies within repositionQuantum of its lastMoved,
// so the true oldest must sit among the tail nodes whose lastMoved is
// within one quantum of the tail's; the scan is bounded by that zone
// and eviction is a slow-path (creation) event.
func (t *Table) oldest() *Conn {
	victim := t.lruTail
	if victim == nil {
		return nil
	}
	bound := victim.lastMoved + repositionQuantum
	for cur := victim.prev; cur != nil && cur.lastMoved <= bound; cur = cur.prev {
		if cur.LastSeen < victim.LastSeen {
			victim = cur
		}
	}
	return victim
}

// addPair bumps the host-pair refcount backing ct_rel.
func (t *Table) addPair(k flow.Key) {
	pk := pairKey(k)
	n, _ := t.pairs.Lookup(pk)
	t.pairs.Put(pk, n+1)
}

// dropPair decrements the host-pair refcount, clearing ct_rel for the
// pair when its last connection dies.
func (t *Table) dropPair(k flow.Key) {
	pk := pairKey(k)
	n, ok := t.pairs.Lookup(pk)
	if !ok {
		return
	}
	if n <= 1 {
		t.pairs.Delete(pk)
		return
	}
	t.pairs.Put(pk, n-1)
}

// LRU plumbing, most recently seen at the front.

//gf:hotpath
func (t *Table) touch(c *Conn) {
	if t.lruHead == c {
		return
	}
	t.unlink(c)
	t.pushFront(c)
}

//gf:hotpath
func (t *Table) pushFront(c *Conn) {
	c.prev = nil
	c.next = t.lruHead
	if t.lruHead != nil {
		t.lruHead.prev = c
	}
	t.lruHead = c
	if t.lruTail == nil {
		t.lruTail = c
	}
}

//gf:hotpath
func (t *Table) unlink(c *Conn) {
	if c.prev != nil {
		c.prev.next = c.next
	} else if t.lruHead == c {
		t.lruHead = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else if t.lruTail == c {
		t.lruTail = c.prev
	}
	c.prev, c.next = nil, nil
}
