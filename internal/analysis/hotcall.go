package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotCall certifies the transitive closure of every //gf:hotpath
// function. Where hotalloc checks the annotated body, hotcall follows
// the call graph: every function reachable from a hot root is held to
// the allocation rules (for unannotated helpers; hotalloc already owns
// the roots) plus the blocking rules the fast path demands —
//
//   - no channel operations (send, receive, select, close, range over a
//     channel): a cache hit must never block;
//   - no goroutine launches and no defer (a defer costs a frame entry
//     on every hit);
//   - no calls into package sync: lock acquisition belongs behind a
//     //gf:hotpath-safe boundary, never on the hit path;
//   - no package-level time functions (time.Now, time.Since): only
//     //gf:hotpath-safe code may read the clock — the flight recorder's
//     anchored stamps are the one sanctioned pattern;
//   - external calls only into the certifiable leaf packages
//     (sync/atomic, math, math/bits, unsafe);
//   - no unresolvable dynamic calls: a function value or interface
//     method the call graph cannot resolve is reported, not ignored.
//
// The traversal stops at //gf:hotpath-safe boundaries: functions a hot
// root may call but that are cold inside (slowpath compilation, sampled
// tracing, run capture). The annotation requires a reason and every
// crossing is surfaced in the HOTPATH.md certification report, so each
// exemption is a reviewed, auditable decision rather than a silent
// suppression.
var HotCall = &Analyzer{
	Name: "hotcall",
	Doc:  "everything transitively reachable from //gf:hotpath must be allocation- and block-free",
	Run: func(prog *Program, report Reporter) {
		for _, f := range prog.certify().findings {
			report(f.pos, "%s", f.msg)
		}
	},
	Summary: func(prog *Program) string {
		c := prog.certify()
		ok := 0
		for _, r := range c.roots {
			if r.ok {
				ok++
			}
		}
		return fmt.Sprintf("%d/%d roots certified, %d functions traversed, %d boundaries",
			ok, len(c.roots), c.traversed, len(c.bounds))
	},
}

// certifiableLeaves are the external packages hot code may call into:
// compiler-intrinsic or lock-free by construction.
var certifiableLeaves = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"unsafe":      true,
	"":            true, // universe scope (error.Error has no package)
}

// certFinding is a finding recorded during certification, replayed by
// the HotCall analyzer.
type certFinding struct {
	pos token.Pos
	msg string
}

// rootCert is the per-root traversal record behind one HOTPATH.md row.
type rootCert struct {
	fn       *Function
	maxDepth int      // longest call chain walked from the root
	visited  int      // functions certified in the closure (root included)
	bounds   []string // //gf:hotpath-safe boundaries crossed, in visit order
	ok       bool     // no findings anywhere in the closure
}

// boundaryCert is one //gf:hotpath-safe function and its stated reason.
type boundaryCert struct {
	fn     *Function
	reason string
}

// certification is the shared result of the hot-path traversal: hotcall
// replays its findings, hotcert renders its roots and boundaries. Built
// once per Program.
type certification struct {
	findings  []certFinding
	roots     []rootCert
	bounds    []boundaryCert
	traversed int // distinct functions rule-checked across all roots
}

// certify lazily builds and caches the module-wide certification.
func (p *Program) certify() *certification {
	if p.cert == nil {
		p.cert = buildCertification(p)
	}
	return p.cert
}

func buildCertification(prog *Program) *certification {
	c := &certification{}
	g := prog.CallGraph()
	record := func(pos token.Pos, format string, args ...any) {
		c.findings = append(c.findings, certFinding{pos, fmt.Sprintf(format, args...)})
	}

	// Boundary set first: //gf:hotpath-safe declarations, reason required.
	boundary := make(map[*Function]bool)
	for _, fn := range g.Functions() {
		if fn.Decl == nil {
			continue
		}
		safe, reason := directiveText(fn.Decl.Doc, hotsafeDirective)
		if !safe {
			continue
		}
		boundary[fn] = true
		c.bounds = append(c.bounds, boundaryCert{fn, reason})
		if reason == "" {
			record(fn.Pos(), "//gf:hotpath-safe on %s needs a reason: //gf:hotpath-safe <why cold work is confined here>", fn.Name())
		}
		if hasDirective(fn.Decl.Doc, hotpathDirective) {
			record(fn.Pos(), "%s is both //gf:hotpath and //gf:hotpath-safe; a function cannot be a certification root and a cold boundary", fn.Name())
		}
	}

	// Rule checks are memoized module-wide: a helper shared by several
	// roots is checked (and reported) once, under the first root that
	// reaches it; dirty remembers the outcome for later roots' verdicts.
	checked := make(map[*Function]bool)
	dirty := make(map[*Function]bool)
	check := func(fn, root *Function) {
		if checked[fn] {
			return
		}
		checked[fn] = true
		dirty[fn] = checkHotFunction(fn, root, prog.Module, record)
	}

	for _, root := range g.Functions() {
		if root.Decl == nil || !hasDirective(root.Decl.Doc, hotpathDirective) {
			continue
		}
		rc := rootCert{fn: root, ok: true}
		visited := make(map[*Function]bool)
		crossed := make(map[*Function]bool)
		var walk func(fn *Function, depth int)
		walk = func(fn *Function, depth int) {
			if visited[fn] {
				return
			}
			visited[fn] = true
			if depth > rc.maxDepth {
				rc.maxDepth = depth
			}
			if fn != root && boundary[fn] {
				if !crossed[fn] {
					crossed[fn] = true
					rc.bounds = append(rc.bounds, fn.Name())
				}
				return
			}
			check(fn, root)
			if dirty[fn] {
				rc.ok = false
			}
			for _, call := range fn.Calls() {
				for _, callee := range call.Callees {
					walk(callee, depth+1)
				}
			}
		}
		walk(root, 0)
		rc.visited = len(visited) - len(crossed)
		c.roots = append(c.roots, rc)
	}
	c.traversed = len(checked)
	return c
}

// checkHotFunction applies the blocking rules (all hot functions), the
// allocation rules (unannotated helpers only — hotalloc owns the
// annotated roots), and the call-site rules to one function. Reports
// through record and returns whether anything was found.
func checkHotFunction(fn, root *Function, module string, record func(pos token.Pos, format string, args ...any)) bool {
	isRoot := fn.Decl != nil && hasDirective(fn.Decl.Doc, hotpathDirective)
	label := fn.Name()
	if !isRoot {
		label = fmt.Sprintf("%s (hot via %s)", fn.Name(), root.Name())
	}
	found := false
	report := func(pos token.Pos, format string, args ...any) {
		found = true
		record(pos, format, args...)
	}

	fn.Walk(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			report(n.Pos(), "defer in hot function %s; the hot path must not pay for frame cleanup", label)
		case *ast.GoStmt:
			report(n.Pos(), "go statement in hot function %s; the hot path must not spawn goroutines", label)
		case *ast.SendStmt:
			report(n.Pos(), "channel send in hot function %s; the hot path must never block", label)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive in hot function %s; the hot path must never block", label)
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select in hot function %s; the hot path must never block", label)
		case *ast.RangeStmt:
			if t := fn.Pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "range over channel in hot function %s; the hot path must never block", label)
				}
			}
		}
		return true
	})

	if !isRoot {
		if body := fn.Body(); body != nil {
			checkAllocBody(fn.Pkg.Info, body, label, report)
		}
	}

	for _, call := range fn.Calls() {
		checkHotCallSite(call, label, module, report)
	}
	return found
}

// checkHotCallSite vets one call site of a hot function: channel close,
// unresolvable dynamic calls, and external callees outside the
// certifiable leaves. Callees in module packages that were type-checked
// as dependencies but not loaded for analysis (pattern-limited runs)
// are skipped: the whole-module run — the one that generates HOTPATH.md
// and gates CI — resolves and certifies them.
func checkHotCallSite(call Call, label, module string, report Reporter) {
	switch call.Kind {
	case CallConversion:
		return
	case CallBuiltin:
		if call.Builtin == "close" {
			report(call.Site.Pos(), "channel close in hot function %s; hot code must not manage channel lifecycles", label)
		}
		return
	}
	if call.Unresolved {
		if call.Kind == CallInterface {
			report(call.Site.Pos(), "interface call in hot function %s has no known implementation; the hot path cannot be certified through it", label)
		} else {
			report(call.Site.Pos(), "dynamic call in hot function %s cannot be resolved statically; hot code must call certified functions directly", label)
		}
		return
	}
	for _, ext := range call.External {
		switch path := externalPath(ext); path {
		case "sync":
			report(call.Site.Pos(), "call to sync.%s in hot function %s; locking belongs behind a //gf:hotpath-safe boundary", DisplayName(ext), label)
		case "time":
			if sig, ok := ext.Type().(*types.Signature); ok && sig.Recv() == nil {
				report(call.Site.Pos(), "time.%s in hot function %s; only //gf:hotpath-safe code may read the clock", ext.Name(), label)
			}
		default:
			if certifiableLeaves[path] {
				continue
			}
			if module != "" && (path == module || strings.HasPrefix(path, module+"/")) {
				continue // module package outside this pattern-limited run
			}
			report(call.Site.Pos(), "call to %s.%s in hot function %s is not certifiable; move it behind a //gf:hotpath-safe boundary", path, ext.Name(), label)
		}
	}
}
