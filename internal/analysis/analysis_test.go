package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads package directories from the fixture module under
// testdata/src.
func loadFixture(t *testing.T, dirs ...string) *Program {
	t.Helper()
	prog, err := LoadDirs(filepath.Join("testdata", "src"), dirs...)
	if err != nil {
		t.Fatalf("loading fixture %v: %v", dirs, err)
	}
	return prog
}

var wantRE = regexp.MustCompile(`want "([^"]*)"`)

// collectWants extracts `// want "substr"` expectations from fixture
// comments, keyed by file:line. A finding at that position must contain
// the substring in its message; each expectation matches one finding.
func collectWants(prog *Program) map[string][]string {
	wants := make(map[string][]string)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pos := prog.Fset.Position(c.Slash)
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						wants[key] = append(wants[key], m[1])
					}
				}
			}
		}
	}
	return wants
}

// checkGolden diffs the analyzers' findings against the fixture's want
// comments: every finding must be expected, every expectation must fire.
func checkGolden(t *testing.T, prog *Program, analyzers []*Analyzer) {
	t.Helper()
	wants := collectWants(prog)
	for _, f := range Run(prog, analyzers) {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := -1
		for i, substr := range wants[key] {
			if strings.Contains(f.Message, substr) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, substrs := range wants {
		for _, substr := range substrs {
			t.Errorf("%s: expected finding containing %q, got none", key, substr)
		}
	}
}

func TestHotAllocFixture(t *testing.T) {
	checkGolden(t, loadFixture(t, "hotalloc"), []*Analyzer{HotAlloc})
}

func TestAtomicMixFixture(t *testing.T) {
	// Two packages loaded as one program: the atomic update site lives in
	// fixture/atomicmix, one of the plain accesses in fixture/atomicmix/client.
	checkGolden(t, loadFixture(t, "atomicmix", filepath.Join("atomicmix", "client")), []*Analyzer{AtomicMix})
}

func TestLockDisciplineFixture(t *testing.T) {
	checkGolden(t, loadFixture(t, "lockdiscipline"), []*Analyzer{LockDiscipline})
}

func TestDetRandFixture(t *testing.T) {
	// The scoped package's import path contains "internal/sim"; its
	// sibling "outside" matches no scope fragment and must stay silent.
	checkGolden(t, loadFixture(t,
		filepath.Join("detrand", "internal", "sim"),
		filepath.Join("detrand", "outside")), []*Analyzer{DetRand})
}

func TestSuppressFixture(t *testing.T) {
	checkGolden(t, loadFixture(t, "suppress"), []*Analyzer{HotAlloc})
}

// TestMalformedIgnoreDirective pins down reason-less directives directly:
// appending a want comment to the directive would become its reason and
// make it well-formed, so this fixture cannot use golden comments.
func TestMalformedIgnoreDirective(t *testing.T) {
	prog := loadFixture(t, "badignore")
	findings := Run(prog, []*Analyzer{HotAlloc})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + unwaived fmt call):\n%s",
			len(findings), findingsText(findings))
	}
	if findings[0].Analyzer != "gflint" || !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("finding 0 = %s, want a gflint malformed-directive finding", findings[0])
	}
	if findings[1].Analyzer != "hotalloc" || !strings.Contains(findings[1].Message, "fmt.Println") {
		t.Errorf("finding 1 = %s, want the unwaived hotalloc finding", findings[1])
	}
}

// TestModuleClean is `make lint` as a test: the whole module loads and
// every analyzer runs with zero findings and zero suppressions in
// non-test code.
func TestModuleClean(t *testing.T) {
	prog, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(prog.Pkgs) == 0 {
		t.Fatal("module loaded zero packages")
	}
	if findings := Run(prog, Analyzers()); len(findings) > 0 {
		t.Errorf("module has %d finding(s):\n%s", len(findings), findingsText(findings))
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				if hasDirective(group, ignoreDirective) {
					t.Errorf("%s: //gflint:ignore in non-test module code; fix the finding instead",
						prog.Fset.Position(group.Pos()))
				}
			}
		}
	}
}

func TestHotCallFixture(t *testing.T) {
	checkGolden(t, loadFixture(t, "hotcall"), []*Analyzer{HotCall})
}

func TestGoroLeakFixture(t *testing.T) {
	checkGolden(t, loadFixture(t, "goroleak"), []*Analyzer{GoroLeak})
}

// TestHotCertReport pins HOTPATH.md: the report must be byte-identical
// across two independent loads (no map-order or position leakage) and
// must match the checked-in file `make lint` regenerates.
func TestHotCertReport(t *testing.T) {
	load := func() string {
		prog, err := LoadModule(filepath.Join("..", ".."))
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		return HotpathReport(prog)
	}
	first, second := load(), load()
	if first != second {
		t.Fatal("HotpathReport is not deterministic across loads")
	}
	if strings.Contains(first, "FAILED") {
		t.Error("HOTPATH.md reports uncertified roots; run gflint for the findings")
	}
	disk, err := os.ReadFile(filepath.Join("..", "..", "HOTPATH.md"))
	if err != nil {
		t.Fatalf("reading checked-in HOTPATH.md: %v", err)
	}
	if string(disk) != first {
		t.Error("checked-in HOTPATH.md is stale; run `make lint` to regenerate it")
	}
}

// BenchmarkGflintModule times one full lint pass: a single load and
// type-check shared by every analyzer, then the whole suite plus the
// certification report. This is the cost `make lint` pays.
func BenchmarkGflintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := LoadModule(filepath.Join("..", ".."))
		if err != nil {
			b.Fatalf("loading module: %v", err)
		}
		if findings := Run(prog, Analyzers()); len(findings) != 0 {
			b.Fatalf("module has %d finding(s); first: %s", len(findings), findings[0])
		}
		_ = HotpathReport(prog)
	}
}

func findingsText(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f.String())
	}
	return b.String()
}
