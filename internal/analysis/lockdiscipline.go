package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces the service's worker control-packet design: the
// fast path never takes a lock, and the few locks that exist (registry
// families, tracer ring, service lifecycle) are held briefly and released
// on every path. Two rules, checked per function over sync.Mutex /
// sync.RWMutex (including embedded) lock sites:
//
//  1. A lock acquired in a function must be released on all paths: either
//     a defer of the matching unlock, or an unlock reachable on every
//     return. Returning while a lock is held, or falling off the end of
//     the function without any matching unlock, is a finding.
//
//  2. No channel send, receive, or select while a lock is held. Blocking
//     on a channel under a lock couples the lock's critical section to
//     another goroutine's progress — the deadlock shape the control-packet
//     design exists to avoid (workers mirror state via queued control ops,
//     never by locking shared structures).
//
// The analysis is intra-procedural and branch-local: a branch that
// unlocks before returning is fine; effects of one branch do not leak
// into its siblings. Lock identity is the receiver expression text plus
// the reader/writer mode, so mu.RLock()/mu.RUnlock() and
// mu.Lock()/mu.Unlock() pair independently.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "locks must be released on all paths and never held across channel operations",
	Run:  runLockDiscipline,
	Summary: func(prog *Program) string {
		return fmt.Sprintf("%d function bodies scanned", len(prog.Functions()))
	},
}

func runLockDiscipline(prog *Program, report Reporter) {
	// Each entry in the shared function index — declarations and literals
	// alike — is scanned as its own function: a literal's locks are its
	// own, not its enclosing function's.
	for _, fn := range prog.Functions() {
		if body := fn.Body(); body != nil {
			checkLockBody(fn.Pkg.Info, prog, body, report)
		}
	}
}

// lockState tracks which locks are held at a point in the scan. Deferred
// unlocks release the lock for path purposes (it cannot leak past a
// return) but the critical section still spans to the function's end, so
// the channel-operation rule keeps applying.
type lockState struct {
	held     map[string]ast.Node // lock key -> acquisition site
	deferred map[string]ast.Node // released at return, still held for chan ops
}

func newLockState() *lockState {
	return &lockState{held: map[string]ast.Node{}, deferred: map[string]ast.Node{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	return c
}

func (s *lockState) anyHeld() (string, ast.Node, bool) {
	for k, n := range s.held {
		return k, n, true
	}
	for k, n := range s.deferred {
		return k, n, true
	}
	return "", nil, false
}

type lockChecker struct {
	info    *types.Info
	prog    *Program
	report  Reporter
	unlocks map[string]int // unlock call count per key, anywhere in the function
}

func checkLockBody(info *types.Info, prog *Program, body *ast.BlockStmt, report Reporter) {
	c := &lockChecker{info: info, prog: prog, report: report, unlocks: map[string]int{}}
	// Pre-pass: count unlock sites per lock key so the end-of-function
	// check only fires for locks with no matching unlock at all (branchy
	// unlock placements the branch-local scan cannot prove are still
	// credited).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, locking, ok := c.lockCall(call); ok && !locking {
				c.unlocks[key]++
			}
		}
		return true
	})
	state := newLockState()
	c.scanStmts(body.List, state)
	for key, site := range state.held {
		if c.unlocks[key] == 0 {
			c.report(site.Pos(), "%s is locked but never unlocked in this function; release it on all paths (defer the unlock or unlock in the same block)", key)
		}
	}
}

// scanStmts walks a statement list in order, mutating state for linear
// control flow and cloning it for branches.
func (c *lockChecker) scanStmts(stmts []ast.Stmt, state *lockState) {
	for _, stmt := range stmts {
		c.scanStmt(stmt, state)
	}
}

func (c *lockChecker) scanStmt(stmt ast.Stmt, state *lockState) {
	// Channel operations anywhere inside this statement (closures and
	// nested branches handled structurally below).
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, locking, ok := c.lockCall(call); ok {
				if locking {
					state.held[key] = call
				} else {
					delete(state.held, key)
					delete(state.deferred, key)
				}
				return
			}
		}
		c.checkChanOps(s.X, state)
	case *ast.DeferStmt:
		if key, locking, ok := c.lockCall(s.Call); ok && !locking {
			if _, heldNow := state.held[key]; heldNow {
				state.deferred[key] = state.held[key]
				delete(state.held, key)
			}
			return
		}
		// defer func() { ...; mu.Unlock(); ... }() — treat any unlock in
		// the deferred closure as a deferred release.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, locking, ok := c.lockCall(call); ok && !locking {
						if _, heldNow := state.held[key]; heldNow {
							state.deferred[key] = state.held[key]
							delete(state.held, key)
						}
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkChanOps(e, state)
		}
		if key, site, held := firstHeld(state.held); held {
			c.report(s.Pos(), "return while holding %s (locked at %s); unlock before returning or defer the unlock", key, c.prog.Fset.Position(site.Pos()))
		}
	case *ast.SendStmt:
		if key, site, held := state.anyHeld(); held {
			c.report(s.Pos(), "channel send while holding %s (locked at %s); never block on a channel under a lock", key, c.prog.Fset.Position(site.Pos()))
		}
		c.checkChanOps(s.Value, state)
	case *ast.SelectStmt:
		if key, site, held := state.anyHeld(); held {
			c.report(s.Pos(), "select while holding %s (locked at %s); never block on a channel under a lock", key, c.prog.Fset.Position(site.Pos()))
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			c.scanStmts(cc.Body, state.clone())
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkChanOps(e, state)
		}
	case *ast.DeclStmt:
		c.checkChanOps(s, state)
	case *ast.IncDecStmt:
		// no channel ops possible
	case *ast.GoStmt:
		// the goroutine body runs elsewhere; its locks are its own
	case *ast.BlockStmt:
		c.scanStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, state)
		}
		c.checkChanOps(s.Cond, state)
		c.scanStmts(s.Body.List, state.clone())
		if s.Else != nil {
			c.scanStmt(s.Else, state.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.checkChanOps(s.Cond, state)
		}
		c.scanStmts(s.Body.List, state.clone())
	case *ast.RangeStmt:
		c.checkChanOps(s.X, state)
		c.scanStmts(s.Body.List, state.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.checkChanOps(s.Tag, state)
		}
		for _, clause := range s.Body.List {
			c.scanStmts(clause.(*ast.CaseClause).Body, state.clone())
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			c.scanStmts(clause.(*ast.CaseClause).Body, state.clone())
		}
	case *ast.LabeledStmt:
		c.scanStmt(s.Stmt, state)
	}
}

// checkChanOps reports channel receives embedded in an expression (or
// declaration) evaluated while a lock is held. Closure bodies are skipped:
// defining a function under a lock is fine, only running one is not, and
// literal bodies are analyzed as functions in their own right.
func (c *lockChecker) checkChanOps(n ast.Node, state *lockState) {
	if n == nil {
		return
	}
	key, site, held := state.anyHeld()
	if !held {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive while holding %s (locked at %s); never block on a channel under a lock", key, c.prog.Fset.Position(site.Pos()))
			}
		}
		return true
	})
}

func firstHeld(m map[string]ast.Node) (string, ast.Node, bool) {
	for k, n := range m {
		return k, n, true
	}
	return "", nil, false
}

// lockCall classifies a call as a lock or unlock on a sync.Mutex or
// sync.RWMutex (direct or embedded). The key combines the receiver
// expression text with the reader/writer mode.
func (c *lockChecker) lockCall(call *ast.CallExpr) (key string, locking, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	obj, isFn := c.info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := recvTypeName(obj)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false, false
	}
	name := sel.Sel.Name
	mode := ""
	if strings.HasPrefix(name, "R") && recv == "RWMutex" {
		mode = "R"
	}
	key = exprText(sel.X)
	if mode == "R" {
		key += " (read)"
	}
	switch name {
	case "Lock", "RLock":
		return key, true, true
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// exprText renders the receiver expression of a lock call for pairing and
// messages (e.g. "s.mu", "t.mu").
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	default:
		return "lock"
	}
}
