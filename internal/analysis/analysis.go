// Package analysis is gflint's engine: a stdlib-only static-analysis
// driver (go/ast, go/parser, go/types — no x/tools) that loads every
// package in the module and runs a suite of project-specific analyzers
// enforcing Gigaflow's hot-path, concurrency, and determinism invariants.
//
// The invariants it checks live at the heart of the paper's results: the
// packet fast path must stay allocation-free (hotalloc), worker counters
// must never mix atomic and plain access (atomicmix), locks must be
// released on every path and never held across channel operations
// (lockdiscipline), and simulation code must draw randomness only from
// injected seeded sources so runs replay bit-for-bit (detrand).
//
// Individual findings can be waived inline with
//
//	//gflint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a directive without one is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in gflint's output format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Reporter emits findings during an analyzer run.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one named check over a loaded program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report Reporter)
	// Summary, when non-nil, describes what the analyzer covered in prog
	// in a short clause ("47 hot functions"), for gflint's per-analyzer
	// summary lines and the -json coverage block.
	Summary func(prog *Program) string
}

// Analyzers returns the full gflint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotAlloc, HotCall, GoroLeak, AtomicMix, LockDiscipline, DetRand}
}

// AnalyzersNamed selects analyzers from the suite by name.
func AnalyzersNamed(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the program, applies //gflint:ignore
// suppressions, and returns the surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		a := a
		report := func(pos token.Pos, format string, args ...any) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      prog.Fset.Position(pos),
				Message:  fmt.Sprintf(format, args...),
			})
		}
		a.Run(prog, report)
	}
	sup, bad := collectSuppressions(prog, analyzers)
	findings = append(findings, bad...)
	kept := findings[:0]
	for _, f := range findings {
		if sup.covers(f) {
			continue
		}
		kept = append(kept, f)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// suppressions maps file:line to the set of analyzer names waived there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, analyzer string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	names := byLine[line]
	if names == nil {
		names = make(map[string]bool)
		byLine[line] = names
	}
	names[analyzer] = true
}

// covers reports whether a directive on the finding's line or the line
// directly above waives it.
func (s suppressions) covers(f Finding) bool {
	byLine := s[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if byLine[line][f.Analyzer] {
			return true
		}
	}
	return false
}

const ignoreDirective = "gflint:ignore"

// collectSuppressions scans every file's comments for ignore directives.
// Malformed directives (missing analyzer or reason, or naming an analyzer
// that does not exist) are returned as findings of the pseudo-analyzer
// "gflint" so typos never silently waive real diagnostics.
func collectSuppressions(prog *Program, analyzers []*Analyzer) (suppressions, []Finding) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := make(suppressions)
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, ignoreDirective) {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
					switch {
					case len(fields) < 2:
						bad = append(bad, Finding{Analyzer: "gflint", Pos: pos,
							Message: "malformed //gflint:ignore: want \"//gflint:ignore <analyzer> <reason>\""})
					case !known[fields[0]]:
						bad = append(bad, Finding{Analyzer: "gflint", Pos: pos,
							Message: fmt.Sprintf("//gflint:ignore names unknown analyzer %q", fields[0])})
					default:
						sup.add(pos.Filename, pos.Line, fields[0])
					}
				}
			}
		}
	}
	return sup, bad
}

// hasDirective reports whether any comment in the group carries the given
// standalone directive (e.g. "//gf:hotpath"), optionally followed by text.
func hasDirective(group *ast.CommentGroup, directive string) bool {
	ok, _ := directiveText(group, directive)
	return ok
}

// directiveText reports whether the comment group carries the directive,
// and the trimmed text following it (the reason for directives that
// require one).
func directiveText(group *ast.CommentGroup, directive string) (bool, string) {
	if group == nil {
		return false, ""
	}
	for _, c := range group.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive {
			return true, ""
		}
		if rest, ok := strings.CutPrefix(text, directive+" "); ok {
			return true, strings.TrimSpace(rest)
		}
	}
	return false, ""
}
