package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the worker-counter contract: a struct field that is
// accessed through sync/atomic anywhere in the module must be accessed
// atomically everywhere. A single plain read or write racing an atomic
// update is undefined behaviour the race detector only catches when a
// test happens to interleave it; this check catches it statically, across
// packages (telemetry counters, service worker stats, cache counters are
// all mirrored between goroutines via control packets or scrapes).
//
// Fields of the atomic.Int64/Uint64/... wrapper types are safe by
// construction (their word is unexported) and are not tracked.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

func runAtomicMix(prog *Program, report Reporter) {
	// Pass 1: collect fields passed by address to sync/atomic functions,
	// and the selector nodes making up those sanctioned accesses. Object
	// identity holds across packages because the whole program is loaded
	// through one loader.
	atomicFields := make(map[*types.Var]ast.Expr) // field -> one atomic-use site
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(pkg.Info, call)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if f := fieldObject(pkg.Info, sel); f != nil {
						atomicFields[f] = sel
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: any other access to those fields is a plain (racy) access.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				f := s.Obj().(*types.Var)
				if _, mixed := atomicFields[f]; mixed {
					report(sel.Pos(), "plain access to field %s.%s, which is updated via sync/atomic at %s; every access must be atomic",
						recvName(s.Recv()), f.Name(), prog.Fset.Position(atomicFields[f].Pos()))
				}
				return true
			})
		}
	}
}

// fieldObject resolves a selector to the struct field it reads or writes
// (nil for methods, package selectors, and qualified identifiers).
func fieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// recvName names the receiver type of a field selection, pointers peeled.
func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
