package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the worker-counter contract: a struct field that is
// accessed through sync/atomic anywhere in the module must be accessed
// atomically everywhere. A single plain read or write racing an atomic
// update is undefined behaviour the race detector only catches when a
// test happens to interleave it; this check catches it statically, across
// packages (telemetry counters, service worker stats, cache counters are
// all mirrored between goroutines via control packets or scrapes).
//
// Fields of the atomic.Int64/Uint64/... wrapper types are safe by
// construction (their word is unexported) and are not tracked.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicMix,
	Summary: func(prog *Program) string {
		return fmt.Sprintf("%d atomically-accessed fields tracked", len(collectAtomicFields(prog).fields))
	},
}

// atomicFieldSet is pass 1's result: fields passed by address to
// sync/atomic functions, and the selector nodes making up those
// sanctioned accesses. Object identity holds across packages because
// the whole program is loaded through one loader.
type atomicFieldSet struct {
	fields     map[*types.Var]ast.Expr // field -> one atomic-use site
	sanctioned map[*ast.SelectorExpr]bool
}

func collectAtomicFields(prog *Program) atomicFieldSet {
	set := atomicFieldSet{
		fields:     make(map[*types.Var]ast.Expr),
		sanctioned: make(map[*ast.SelectorExpr]bool),
	}
	// The shared call graph already resolved every call site in the
	// module (bodies, literals, and package-level initializers alike);
	// filter it for sync/atomic callees instead of re-walking files.
	for _, fn := range prog.Functions() {
		info := fn.Pkg.Info
		for _, call := range fn.Calls() {
			obj := calleeObject(info, call.Site)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				continue
			}
			for _, arg := range call.Site.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldObject(info, sel); f != nil {
					set.fields[f] = sel
					set.sanctioned[sel] = true
				}
			}
		}
	}
	return set
}

func runAtomicMix(prog *Program, report Reporter) {
	set := collectAtomicFields(prog)
	if len(set.fields) == 0 {
		return
	}
	// Pass 2: any other access to those fields is a plain (racy) access.
	for _, fn := range prog.Functions() {
		info := fn.Pkg.Info
		fn.Walk(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || set.sanctioned[sel] {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			f := s.Obj().(*types.Var)
			if _, mixed := set.fields[f]; mixed {
				report(sel.Pos(), "plain access to field %s.%s, which is updated via sync/atomic at %s; every access must be atomic",
					recvName(s.Recv()), f.Name(), prog.Fset.Position(set.fields[f].Pos()))
			}
			return true
		})
	}
}

// fieldObject resolves a selector to the struct field it reads or writes
// (nil for methods, package selectors, and qualified identifiers).
func fieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// recvName names the receiver type of a field selection, pointers peeled.
func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
