package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	Path  string // import path, e.g. "gigaflow/internal/gigaflow"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of packages sharing one FileSet, ready for the
// analyzers. Packages loaded through one Program share type-object
// identity, so analyzers can correlate uses of the same field or function
// across packages.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Module is the go.mod module path; analyzers use it to tell module
	// packages type-checked as dependencies (in pattern-limited runs)
	// from genuinely external code.
	Module string

	// Shared analyzer infrastructure, built once on demand: the function
	// index and call graph (Functions/CallGraph) and the hot-path
	// certification (certification). Analyzers must not mutate them.
	graph *CallGraph
	cert  *certification
}

// LoadModule loads and type-checks every package under the module rooted
// at root, skipping testdata, hidden, and underscore-prefixed directories
// as the go tool does. Test files (_test.go) are not loaded: the
// invariants gflint enforces are fast-path and simulator properties of
// production code, and several (hotalloc, detrand) explicitly exempt
// tests.
func LoadModule(root string) (*Program, error) {
	var rels []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if len(rels) == 0 || rels[len(rels)-1] != rel {
			rels = append(rels, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return LoadDirs(root, rels...)
}

// LoadDirs loads and type-checks the packages in the given
// module-root-relative directories (plus, transitively, any module
// packages they import). Only the listed directories appear in the
// returned Program; dependencies are type-checked but not analyzed.
func LoadDirs(root string, rels ...string) (*Program, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    absRoot,
		module:  modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	prog := &Program{Fset: l.fset, Module: modPath}
	seen := make(map[string]bool)
	for _, rel := range rels {
		path := l.importPath(rel)
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// modulePath reads the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// loader resolves and type-checks module packages on demand, delegating
// imports outside the module to the source importer (which type-checks
// the standard library from GOROOT source — no compiled export data or
// x/tools needed).
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func (l *loader) importPath(rel string) string {
	rel = filepath.ToSlash(filepath.Clean(rel))
	if rel == "." {
		return l.module
	}
	return l.module + "/" + rel
}

// Import implements types.Importer for the type-checker: module-internal
// paths load through the loader (preserving object identity), everything
// else falls through to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file of the single package in dir.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s holds two packages (%s, %s)", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}
