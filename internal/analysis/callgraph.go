package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// This file is the shared interprocedural substrate every analyzer runs
// on: a Function index (one entry per executable body in the module —
// declared functions and methods, function literals, and package-level
// variable initializers) and a conservative static CallGraph over it.
//
// Both are built once per Program and cached, so the whole gflint suite
// shares one type-checked program and one graph: the intra-procedural
// analyzers (hotalloc, lockdiscipline, atomicmix, detrand) iterate the
// index instead of re-walking files, and the interprocedural ones
// (hotcall, goroleak, the hotcert report) traverse the graph.
//
// Resolution is conservative in the "sound over precise" direction:
//
//   - direct calls and method calls on concrete receivers resolve to the
//     single declared target (promoted methods from embedded fields
//     resolve to the embedding's actual method);
//   - a call through an interface method resolves to the set of methods
//     of every module type implementing that interface (the
//     implementing-type set), plus any non-module implementors;
//   - a call through a function value resolves to every module function,
//     method, or literal whose value is taken somewhere in the module
//     and whose signature matches the call;
//   - deferred calls and go statements produce edges flagged as such.
//
// A dynamic call with an empty candidate set is recorded as Unresolved
// rather than dropped — hotcall turns those into findings instead of
// silently certifying around them.

// Function is one analyzable body in the module.
type Function struct {
	Pkg  *Package
	Decl *ast.FuncDecl // declared function/method, nil otherwise
	Lit  *ast.FuncLit  // function literal, nil otherwise
	init []ast.Expr    // package-level var initializer expressions

	obj  *types.Func // declared object (nil for literals and inits)
	name string

	calls []Call
	gos   []*ast.GoStmt
}

// Obj returns the declared *types.Func, or nil for literals and
// package-initializer pseudo-functions.
func (f *Function) Obj() *types.Func { return f.obj }

// Name returns a stable display name: "Process" or "(*VSwitch).Process"
// for declarations, "func@file.go:12" for literals, "init@file.go" for
// package-level initializer expressions.
func (f *Function) Name() string { return f.name }

// Body returns the function body, or nil for package initializers and
// bodyless declarations.
func (f *Function) Body() *ast.BlockStmt {
	switch {
	case f.Decl != nil:
		return f.Decl.Body
	case f.Lit != nil:
		return f.Lit.Body
	}
	return nil
}

// Pos anchors diagnostics about the function as a whole.
func (f *Function) Pos() token.Pos {
	switch {
	case f.Decl != nil:
		return f.Decl.Pos()
	case f.Lit != nil:
		return f.Lit.Pos()
	case len(f.init) > 0:
		return f.init[0].Pos()
	}
	return token.NoPos
}

// Calls returns the function's own call sites (nested literals own
// theirs), resolved against the whole module.
func (f *Function) Calls() []Call { return f.calls }

// Gos returns the go statements launched directly from this body.
func (f *Function) Gos() []*ast.GoStmt { return f.gos }

// Walk visits the function's own nodes. Nested function literals are
// skipped — each is a Function in its own right — so a statement is
// visited exactly once across the whole index.
func (f *Function) Walk(visit func(n ast.Node) bool) {
	skipLits := func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return n == nil || visit(n)
	}
	if body := f.Body(); body != nil {
		ast.Inspect(body, skipLits)
		return
	}
	for _, e := range f.init {
		ast.Inspect(e, skipLits)
	}
}

// CallKind classifies how a call site was resolved.
type CallKind uint8

const (
	// CallStatic is a direct call to a declared function or a method on
	// a concrete receiver (including method expressions).
	CallStatic CallKind = iota
	// CallInterface dispatches through an interface method; Callees is
	// the implementing-type set.
	CallInterface
	// CallFuncValue calls through a function-typed value; Callees is the
	// set of address-taken functions and literals with matching
	// signatures.
	CallFuncValue
	// CallBuiltin invokes a language builtin (append, make, close, ...).
	CallBuiltin
	// CallConversion is a type conversion, not a call.
	CallConversion
)

// Call is one resolved call site.
type Call struct {
	Site     *ast.CallExpr
	Kind     CallKind
	Deferred bool // reached via a defer statement
	Go       bool // reached via a go statement

	// Callees are the module-defined candidate targets (one for static
	// calls, the full candidate set for dynamic ones).
	Callees []*Function
	// External are candidate targets declared outside the module
	// (standard library, or non-module implementors of an interface).
	External []*types.Func
	// Builtin is the builtin's name for CallBuiltin sites.
	Builtin string
	// Unresolved marks a dynamic call with an empty candidate set.
	Unresolved bool
}

// CallGraph indexes every Function in the Program and resolves every
// call site. Build it through Program.CallGraph.
type CallGraph struct {
	prog  *Program
	funcs []*Function

	byObj map[*types.Func]*Function
	byLit map[*ast.FuncLit]*Function

	// addrTaken marks declared functions referenced outside call
	// position; takenLits are literals not immediately invoked. Both are
	// the candidate pool for calls through function values.
	addrTaken map[*types.Func]bool
	takenLits map[*ast.FuncLit]bool

	implCache map[string]implSet
}

type implSet struct {
	funcs []*Function
	ext   []*types.Func
}

// Functions returns every Function in deterministic (package, position)
// order.
func (g *CallGraph) Functions() []*Function { return g.funcs }

// FuncDecl resolves a declared function object to its Function node, or
// nil when the object is not declared in the loaded packages.
func (g *CallGraph) FuncDecl(obj *types.Func) *Function {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// FuncLit resolves a literal to its Function node.
func (g *CallGraph) FuncLit(lit *ast.FuncLit) *Function { return g.byLit[lit] }

// Functions lazily builds and caches the module-wide function index.
func (p *Program) Functions() []*Function {
	return p.CallGraph().Functions()
}

// CallGraph lazily builds and caches the module-wide call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
	}
	return p.graph
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:      prog,
		byObj:     make(map[*types.Func]*Function),
		byLit:     make(map[*ast.FuncLit]*Function),
		addrTaken: make(map[*types.Func]bool),
		takenLits: make(map[*ast.FuncLit]bool),
		implCache: make(map[string]implSet),
	}
	g.collectFunctions()
	g.collectTaken()
	for _, f := range g.funcs {
		g.resolveCalls(f)
	}
	return g
}

// collectFunctions builds the index: declarations, literals, and one
// pseudo-function per file holding package-level initializer
// expressions.
func (g *CallGraph) collectFunctions() {
	for _, pkg := range g.prog.Pkgs {
		for _, file := range pkg.Files {
			fname := filepath.Base(g.prog.Fset.Position(file.Pos()).Filename)
			var inits []ast.Expr
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							inits = append(inits, vs.Values...)
						}
					}
				}
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn := &Function{Pkg: pkg, Decl: fd, name: declName(pkg, fd)}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fn.obj = obj
					g.byObj[obj.Origin()] = fn
				}
				g.funcs = append(g.funcs, fn)
			}
			if len(inits) > 0 {
				g.funcs = append(g.funcs, &Function{Pkg: pkg, init: inits, name: "init@" + fname})
			}
			// Literals anywhere in the file (bodies, initializers) are
			// their own Functions.
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				pos := g.prog.Fset.Position(lit.Pos())
				fn := &Function{Pkg: pkg, Lit: lit,
					name: fmt.Sprintf("func@%s:%d", fname, pos.Line)}
				g.byLit[lit] = fn
				g.funcs = append(g.funcs, fn)
				return true
			})
		}
	}
	sort.SliceStable(g.funcs, func(i, j int) bool {
		a, b := g.funcs[i], g.funcs[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Pos() < b.Pos()
	})
}

// declName renders "Name" or "(Recv).Name" / "(*Recv).Name".
func declName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

// DisplayName renders a declared function for reports: methods as
// "(*Recv).Name" relative to their package, plain functions by name.
func DisplayName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(obj.Pkg())) + ")." + obj.Name()
	}
	return obj.Name()
}

// collectTaken finds every function whose value escapes into a variable,
// field, argument, or return — the candidate pool for function-value
// calls — and every literal not immediately invoked.
func (g *CallGraph) collectTaken() {
	for _, pkg := range g.prog.Pkgs {
		// Identifiers in call position: the Fun of a CallExpr (directly
		// or through a selector). Everything else naming a function is a
		// taken value.
		callPos := make(map[*ast.Ident]bool)
		invokedLits := make(map[*ast.FuncLit]bool)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callPos[fun] = true
				case *ast.SelectorExpr:
					callPos[fun.Sel] = true
				case *ast.FuncLit:
					invokedLits[fun] = true
				}
				return true
			})
		}
		for id, obj := range pkg.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || callPos[id] {
				continue
			}
			g.addrTaken[fn.Origin()] = true
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !invokedLits[lit] {
					g.takenLits[lit] = true
				}
				return true
			})
		}
	}
}

// resolveCalls records and resolves every call site owned by f.
func (g *CallGraph) resolveCalls(f *Function) {
	info := f.Pkg.Info
	// Defer/go call expressions, so the direct call sites can carry the
	// right flags.
	deferred := make(map[*ast.CallExpr]bool)
	goCalls := make(map[*ast.CallExpr]*ast.GoStmt)
	f.Walk(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			deferred[s.Call] = true
		case *ast.GoStmt:
			goCalls[s.Call] = s
			f.gos = append(f.gos, s)
		}
		return true
	})
	f.Walk(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c := g.resolveCall(info, call)
		c.Deferred = deferred[call]
		c.Go = goCalls[call] != nil
		f.calls = append(f.calls, c)
		return true
	})
}

// resolveCall classifies one call site.
func (g *CallGraph) resolveCall(info *types.Info, call *ast.CallExpr) Call {
	c := Call{Site: call}
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.Kind = CallConversion
		return c
	}

	// Immediately-invoked literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		c.Kind = CallStatic
		if target := g.byLit[lit]; target != nil {
			c.Callees = []*Function{target}
		}
		return c
	}

	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}

	if b, ok := obj.(*types.Builtin); ok {
		c.Kind = CallBuiltin
		c.Builtin = b.Name()
		return c
	}

	if fnObj, ok := obj.(*types.Func); ok {
		sig, _ := fnObj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Interface dispatch: resolve to the implementing-type set.
			c.Kind = CallInterface
			impls := g.implementors(sig.Recv().Type(), fnObj)
			c.Callees = impls.funcs
			c.External = impls.ext
			c.Unresolved = len(c.Callees) == 0 && len(c.External) == 0
			return c
		}
		c.Kind = CallStatic
		if target := g.byObj[fnObj.Origin()]; target != nil {
			c.Callees = []*Function{target}
		} else {
			c.External = []*types.Func{fnObj}
		}
		return c
	}

	// Function value: resolve to every taken function or literal with a
	// matching signature.
	c.Kind = CallFuncValue
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		if t := info.TypeOf(call.Fun); t != nil {
			sig, _ = t.Underlying().(*types.Signature)
		}
	}
	if sig == nil {
		c.Unresolved = true
		return c
	}
	for fnObj := range g.addrTaken {
		cand, _ := fnObj.Type().(*types.Signature)
		if cand == nil || !sigMatches(sig, cand) {
			continue
		}
		if target := g.byObj[fnObj]; target != nil {
			c.Callees = append(c.Callees, target)
		} else {
			c.External = append(c.External, fnObj)
		}
	}
	for lit := range g.takenLits {
		cand, _ := g.byLit[lit].Pkg.Info.TypeOf(lit).(*types.Signature)
		if cand != nil && sigMatches(sig, cand) {
			c.Callees = append(c.Callees, g.byLit[lit])
		}
	}
	sortCandidates(g.prog.Fset, &c)
	c.Unresolved = len(c.Callees) == 0 && len(c.External) == 0
	return c
}

// implementors returns the implementing-type set of an interface method:
// for every named non-interface type in the module whose type (or
// pointer type) implements the interface, the concrete method the
// dispatch would land on.
func (g *CallGraph) implementors(ifaceType types.Type, method *types.Func) implSet {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return implSet{}
	}
	key := types.TypeString(ifaceType, nil) + "." + method.Name()
	if s, ok := g.implCache[key]; ok {
		return s
	}
	var s implSet
	for _, pkg := range g.prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			var recv types.Type
			switch {
			case types.Implements(named, iface):
				recv = named
			case types.Implements(types.NewPointer(named), iface):
				recv = types.NewPointer(named)
			default:
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(recv, true, method.Pkg(), method.Name())
			impl, ok := m.(*types.Func)
			if !ok {
				continue
			}
			if target := g.byObj[impl.Origin()]; target != nil {
				s.funcs = append(s.funcs, target)
			} else {
				s.ext = append(s.ext, impl)
			}
		}
	}
	sort.Slice(s.funcs, func(i, j int) bool { return s.funcs[i].Pos() < s.funcs[j].Pos() })
	sort.Slice(s.ext, func(i, j int) bool { return s.ext[i].FullName() < s.ext[j].FullName() })
	g.implCache[key] = s
	return s
}

// sigMatches reports whether a candidate function's signature (receiver
// stripped) is call-compatible with the call site's signature.
func sigMatches(call, cand *types.Signature) bool {
	if call.Variadic() != cand.Variadic() {
		return false
	}
	return types.Identical(
		types.NewSignatureType(nil, nil, nil, call.Params(), call.Results(), call.Variadic()),
		types.NewSignatureType(nil, nil, nil, cand.Params(), cand.Results(), cand.Variadic()))
}

// sortCandidates orders a dynamic call's candidate sets deterministically
// (map iteration built them).
func sortCandidates(fset *token.FileSet, c *Call) {
	sort.Slice(c.Callees, func(i, j int) bool {
		a, b := c.Callees[i], c.Callees[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Pos() < b.Pos()
	})
	sort.Slice(c.External, func(i, j int) bool {
		return c.External[i].FullName() < c.External[j].FullName()
	})
}

// externalPath returns the defining package path of a non-module callee
// ("" for universe-scope objects like error.Error).
func externalPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// shortPos renders a position relative to the file's base name, for
// messages that reference another site.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
