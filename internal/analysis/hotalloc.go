package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the "zero added allocations" promise on the packet
// fast path. A function annotated //gf:hotpath in its doc comment — the
// VSwitch process chain, the LTM/megaflow/microflow lookups, the
// telemetry counter increments — may not contain heap-allocating
// constructs:
//
//   - calls into package fmt (formatting always allocates);
//   - string concatenation and string<->byte/rune-slice conversions;
//   - map, slice, and function (closure) literals;
//   - make, new, and &T{...};
//   - append, unless it targets a struct-field-backed reusable buffer
//     (c.buf = append(c.buf[:0], ...)), the amortized-zero idiom the
//     caches use for their lookup scratch;
//   - interface conversions that box a non-pointer value (pointers fit in
//     the interface word; everything else escapes).
//
// Cold work — tracing a sampled packet, compiling a slowpath miss — must
// be factored into separate functions behind a //gf:hotpath-safe boundary
// rather than waived: the hot function stays small enough to read at a
// glance and the invariant stays machine-checked.
//
// HotAlloc is intra-procedural: it checks annotated bodies only. Its
// interprocedural twin hotcall applies the same allocation rules (plus
// the blocking rules) to every function transitively reachable from a
// //gf:hotpath root.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//gf:hotpath functions must be free of heap-allocating constructs",
	Run:  runHotAlloc,
	Summary: func(prog *Program) string {
		n := 0
		for _, fn := range prog.Functions() {
			if fn.Decl != nil && hasDirective(fn.Decl.Doc, hotpathDirective) {
				n++
			}
		}
		return fmt.Sprintf("%d hot functions", n)
	},
}

const (
	hotpathDirective = "gf:hotpath"
	hotsafeDirective = "gf:hotpath-safe"
)

func runHotAlloc(prog *Program, report Reporter) {
	for _, fn := range prog.Functions() {
		if fn.Decl == nil || fn.Decl.Body == nil || !hasDirective(fn.Decl.Doc, hotpathDirective) {
			continue
		}
		checkAllocBody(fn.Pkg.Info, fn.Decl.Body, fn.Decl.Name.Name, report)
	}
}

// checkAllocBody applies the hot-path allocation rules to one function
// body. label names the function in messages — the bare name for
// hotalloc's annotated roots, "name (hot via root)" when hotcall checks
// a transitively reachable callee.
func checkAllocBody(info *types.Info, body *ast.BlockStmt, label string, report Reporter) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal in hot function %s allocates; hoist it or pass a method value from a cold caller", label)
			return false // the closure body is cold by definition
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal in hot function %s allocates", label)
			case *types.Slice:
				report(n.Pos(), "slice literal in hot function %s allocates", label)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal in hot function %s heap-allocates", label)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation in hot function %s allocates", label)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string append (+=) in hot function %s allocates", label)
			}
		case *ast.CallExpr:
			checkAllocCall(info, label, n, report)
		}
		return true
	})
}

func checkAllocCall(info *types.Info, label string, call *ast.CallExpr, report Reporter) {
	// Builtins: append / make / new.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 && !isReusableBuffer(call.Args[0]) {
					report(call.Pos(), "append to a non-field-backed slice in hot function %s may allocate; use a reusable buffer (c.buf = append(c.buf[:0], ...))", label)
				}
			case "make":
				report(call.Pos(), "make in hot function %s allocates; preallocate in the constructor", label)
			case "new":
				report(call.Pos(), "new in hot function %s heap-allocates", label)
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune and friends.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			if isString(to) && !isString(from) && !isUntypedConst(info, call.Args[0]) {
				report(call.Pos(), "conversion to string in hot function %s allocates", label)
			} else if isByteOrRuneSlice(to) && isString(from) {
				report(call.Pos(), "string-to-slice conversion in hot function %s allocates", label)
			}
		}
		return
	}
	// Calls into package fmt.
	if obj := calleeObject(info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s in hot function %s allocates; move formatting to a cold path", obj.Name(), label)
		return
	}
	// Interface boxing of non-pointer arguments.
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxesIntoInterface(info, pt, arg) {
			report(arg.Pos(), "passing non-pointer %s as interface in hot function %s boxes (heap-allocates) the value", info.TypeOf(arg), label)
		}
	}
}

// isReusableBuffer reports whether an append target is a struct field
// (optionally re-sliced, as in c.buf[:0]) — the amortized-allocation-free
// scratch-buffer idiom. Appending to a plain local or fresh slice grows
// from nothing and allocates on the hot path.
func isReusableBuffer(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			return true
		default:
			return false
		}
	}
}

// calleeObject resolves the called function's object (nil for indirect
// calls through function values).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// boxesIntoInterface reports whether assigning arg to a parameter of type
// param converts a concrete non-pointer value into an interface.
func boxesIntoInterface(info *types.Info, param types.Type, arg ast.Expr) bool {
	if param == nil || !types.IsInterface(param) {
		return false
	}
	at := info.TypeOf(arg)
	if at == nil || types.IsInterface(at) {
		return false // interface-to-interface carries the existing word
	}
	if b, ok := at.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Info()&types.IsUntyped != 0 && isNilLiteral(arg)) {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the interface data word
	}
	return true
}

func isNilLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
