package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak checks goroutine lifecycles: the workers, expiry tickers,
// and telemetry servers the service spawns must all terminate when the
// service shuts down, or Close hangs on its WaitGroup and every test
// leaks a goroutine.
//
// Two rules, both module-wide over the call graph:
//
//  1. Every go statement's target must have a provable termination
//     path. The heuristic: an unconditional loop (for { ... }) in the
//     goroutine's body must contain an exit statement — a return, or a
//     labeled break/goto — typically the `case <-ctx.Done(): return`
//     clause of its select. Bounded and range loops, and loop-free
//     bodies, pass. A go statement whose target cannot be resolved
//     statically is reported, not ignored.
//  2. Every sync.WaitGroup.Add must be matched by a Done on the same
//     WaitGroup variable somewhere in the module (object identity, so
//     a field Add in one package matches the deferred Done in another).
//
// Deliberate fire-and-forget goroutines can be waived at the go
// statement with //gflint:ignore goroleak <reason>.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine needs a termination path, every WaitGroup.Add a reachable Done",
	Run:  runGoroLeak,
	Summary: func(prog *Program) string {
		gos, adds := 0, 0
		for _, fn := range prog.Functions() {
			gos += len(fn.Gos())
		}
		for _, pkg := range prog.Pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if obj, ok := calleeObject(pkg.Info, call).(*types.Func); ok && obj.FullName() == wgAdd {
							adds++
						}
					}
					return true
				})
			}
		}
		return fmt.Sprintf("%d goroutines, %d WaitGroup.Add sites", gos, adds)
	},
}

const (
	wgAdd  = "(*sync.WaitGroup).Add"
	wgDone = "(*sync.WaitGroup).Done"
)

func runGoroLeak(prog *Program, report Reporter) {
	g := prog.CallGraph()

	// Rule 1: goroutine targets. Collect the distinct target set first so
	// a worker launched from several places is checked once.
	targets := make(map[*Function]bool)
	var order []*Function
	for _, fn := range g.Functions() {
		for _, call := range fn.Calls() {
			if !call.Go {
				continue
			}
			if call.Unresolved {
				report(call.Site.Pos(), "cannot resolve the target of this go statement; its lifecycle is unverifiable — call a declared function or literal directly")
				continue
			}
			for _, callee := range call.Callees {
				if !targets[callee] {
					targets[callee] = true
					order = append(order, callee)
				}
			}
		}
	}
	for _, target := range order {
		checkGoroutineBody(target, report)
	}

	// Rule 2: WaitGroup Add/Done pairing by variable object identity.
	checkWaitGroups(prog, report)
}

// checkGoroutineBody flags unconditional loops with no exit statement in
// the body a go statement runs. Only the immediate target is checked:
// loops further down the call chain belong to functions with their own
// contracts.
func checkGoroutineBody(fn *Function, report Reporter) {
	fn.Walk(func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasLoopExit(loop.Body) {
			report(loop.Pos(), "unconditional loop in goroutine %s has no exit path; select on ctx.Done or a termination channel and return", fn.Name())
		}
		return true
	})
}

// hasLoopExit reports whether the loop body contains a statement that
// can leave the loop: a return, or a labeled break/goto. An unlabeled
// break is not counted — inside the select or switch these loops wrap,
// it only exits the clause.
func hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested goroutine/closure exits itself, not this loop
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Label != nil && (n.Tok == token.BREAK || n.Tok == token.GOTO) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkWaitGroups matches every (*sync.WaitGroup).Add call against Done
// references on the same variable. Receivers are resolved to their
// innermost named object — a struct field or variable — so identity
// holds across packages; receivers that are not simple variable chains
// (map elements, function results) are skipped rather than guessed.
func checkWaitGroups(prog *Program, report Reporter) {
	type addSite struct {
		pos  token.Pos
		name string
	}
	adds := make(map[types.Object][]addSite)
	var addOrder []types.Object
	dones := make(map[types.Object]bool)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				method, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				switch method.FullName() {
				case wgAdd:
					recv, name := receiverVar(pkg.Info, sel.X)
					if recv != nil {
						if _, seen := adds[recv]; !seen {
							addOrder = append(addOrder, recv)
						}
						adds[recv] = append(adds[recv], addSite{sel.Pos(), name})
					}
				case wgDone:
					// Any reference counts: a call, a deferred call, or a
					// method value handed to a worker.
					if recv, _ := receiverVar(pkg.Info, sel.X); recv != nil {
						dones[recv] = true
					}
				}
				return true
			})
		}
	}
	for _, recv := range addOrder {
		if dones[recv] {
			continue
		}
		for _, site := range adds[recv] {
			report(site.pos, "sync.WaitGroup.Add on %s has no matching Done anywhere in the module; the Wait can never return", site.name)
		}
	}
}

// receiverVar resolves a WaitGroup receiver expression (wg, s.done,
// w.pool.wg, possibly through pointers) to the variable or field object
// naming it, plus a display name.
func receiverVar(info *types.Info, e ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v, x.Name
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v, types.ExprString(x)
		}
	case *ast.StarExpr:
		return receiverVar(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return receiverVar(info, x.X)
		}
	}
	return nil, ""
}
