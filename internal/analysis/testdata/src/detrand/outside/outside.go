// Package outside sits next to the scoped fixture but its import path
// matches none of detrand's scope fragments: wall-clock and global rand
// are allowed here, and the analyzer must stay silent.
package outside

import (
	"math/rand"
	"time"
)

func Wall() int64 { return time.Now().UnixNano() }

func Roll() int { return rand.Intn(6) }
