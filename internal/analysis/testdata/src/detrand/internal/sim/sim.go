// Package sim is a gflint fixture whose import path lands in detrand's
// scope (it contains "internal/sim"): randomness must come from an
// injected *rand.Rand and time must be virtual.
package sim

import (
	"math/rand"
	"time"
)

// Model draws from an injected source only — the sanctioned pattern.
// Referencing the *rand.Rand type (and rand.New / rand.NewSource) is
// exactly how seeds are threaded and must stay legal.
type Model struct {
	rng *rand.Rand
}

func NewModel(seed int64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed))}
}

func (m *Model) Step() int {
	return m.rng.Intn(10)
}

func Bad() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func BadClock() int64 {
	return time.Now().UnixNano() // want "time.Now leaks wall-clock"
}

func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since leaks wall-clock"
}
