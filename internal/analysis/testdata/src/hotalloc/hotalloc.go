// Package hotalloc is a gflint fixture: each //gf:hotpath function below
// exercises one allocating construct the analyzer must flag, and the
// clean/cold functions prove it stays silent on the fixed patterns.
package hotalloc

import (
	"fmt"
	"math/bits"
)

type big struct{ a, b, c int }

type cache struct {
	buf []int
	n   int
}

func use(v any) { _ = v }

func useAll(vs ...any) { _ = vs }

//gf:hotpath
func hotClosure() func() {
	return func() {} // want "closure literal in hot function hotClosure"
}

//gf:hotpath
func hotLiterals() {
	_ = map[int]int{} // want "map literal in hot function hotLiterals"
	_ = []int{1, 2}   // want "slice literal in hot function hotLiterals"
	_ = &big{}        // want "&composite literal in hot function hotLiterals"
}

//gf:hotpath
func hotStrings(a, b string) string {
	s := a + b // want "string concatenation in hot function hotStrings"
	s += a     // want "string append"
	return s
}

//gf:hotpath
func hotConvert(bs []byte, s string) {
	_ = string(bs) // want "conversion to string in hot function hotConvert"
	_ = []byte(s)  // want "string-to-slice conversion in hot function hotConvert"
}

//gf:hotpath
func hotBuiltins(c *cache, xs []int) {
	xs = append(xs, 1) // want "append to a non-field-backed slice"
	_ = make([]int, 4) // want "make in hot function hotBuiltins"
	_ = new(big)       // want "new in hot function hotBuiltins"
	c.buf = append(c.buf[:0], xs...)
}

//gf:hotpath
func hotFmt() {
	fmt.Println("x") // want "fmt.Println in hot function hotFmt"
}

//gf:hotpath
func hotBox(v big, p *big) {
	use(v) // want "as interface in hot function hotBox boxes"
	use(p)
	use(nil)
}

//gf:hotpath
func hotVariadic(a int, p *big) {
	useAll(a, p) // want "passing non-pointer int as interface"
}

// hotClean is fully annotated and fully allocation-free: field updates,
// re-sliced reusable buffer, arithmetic.
//
//gf:hotpath
func hotClean(c *cache, k int) int {
	c.n++
	c.buf = c.buf[:0]
	c.buf = append(c.buf, k)
	return c.buf[0] + k
}

// hotWireDecode is the internal/packet decoder idiom: big-endian field
// extraction from a byte slice with `_ = b[n]` bounds hints, a value
// struct threaded through by copy, and a fixed-size array key mutated
// through a pointer receiver. None of it allocates; the analyzer must
// stay silent.
//
//gf:hotpath
func hotWireDecode(frame []byte, k *[4]uint64) (uint64, wireInfo) {
	var info wireInfo
	if len(frame) < 6 {
		info.err = 1
		return 0, info
	}
	_ = frame[5]
	v := uint64(frame[0])<<40 | uint64(frame[1])<<32 | uint64(frame[2])<<24 |
		uint64(frame[3])<<16 | uint64(frame[4])<<8 | uint64(frame[5])
	k[0] = v & 0xffffffffffff
	info.headerLen = 6
	return v, info
}

type wireInfo struct {
	err       uint8
	headerLen int
}

// batchLookup mirrors the cache-tier batch accumulator: a value struct
// holding a cache pointer and a local counter delta folded back in one
// flush per batch.
type batchLookup struct {
	c     *cache
	delta int
}

// hotBatch is the VSwitch.ProcessBatch idiom: caller-provided result
// slices written in place with an `_ = out[...]` bounds hint, local
// counters accumulated across the loop, a field-backed reusable buffer,
// and a single fold into shared state at the end. Fully allocation-free;
// the analyzer must stay silent.
//
//gf:hotpath
func hotBatch(c *cache, keys []int, out []int) int {
	if len(keys) == 0 {
		return 0
	}
	_ = out[len(keys)-1]
	b := batchLookup{c: c}
	var hits int
	for i := range keys {
		c.buf = append(c.buf[:0], keys[i])
		out[i] = c.buf[0]
		b.delta++
		hits++
	}
	b.c.n += b.delta
	return hits
}

// hotBatchGather looks batch-shaped but accumulates results by appending
// to a loop-local slice — the per-batch allocation the accumulator
// pattern exists to avoid. The analyzer must flag it.
//
//gf:hotpath
func hotBatchGather(keys []int) []int {
	var res []int
	for _, k := range keys {
		res = append(res, k) // want "append to a non-field-backed slice"
	}
	return res
}

// probeSlot / probeTable mirror internal/flowtable's open-addressing
// layout: slots carry a stored hash, a fixed-size key array, and a value.
type probeSlot struct {
	hash uint64
	key  [4]uint64
	val  int
}

type probeTable struct {
	mask   [4]uint64
	words  [4]uint8
	nwords int
	probe  [4]uint64
	slots  []probeSlot
}

// hotFusedProbe is the internal/flowtable lookup idiom: one pass over the
// precomputed non-zero mask word indices that simultaneously masks the key
// into a table-owned scratch array and folds a multiply-mix hash, then a
// linear probe over the slot array with stored-hash early reject and
// masked-word comparison against the scratch. Nothing escapes, nothing
// allocates; the analyzer must stay silent.
//
//gf:hotpath
func hotFusedProbe(t *probeTable, k *[4]uint64) (int, bool) {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < t.nwords; i++ {
		w := t.words[i]
		mw := k[w] & t.mask[w]
		t.probe[i] = mw
		hi, lo := bits.Mul64(mw^0xa0761d6478bd642f, h)
		h = hi ^ lo
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	m := uint64(len(t.slots) - 1)
	for j := h & m; ; j = (j + 1) & m {
		s := &t.slots[j]
		if s.hash == 0 {
			return 0, false
		}
		if s.hash != h {
			continue
		}
		match := true
		for i := 0; i < t.nwords; i++ {
			if s.key[t.words[i]]&t.mask[t.words[i]] != t.probe[i] {
				match = false
				break
			}
		}
		if match {
			return s.val, true
		}
	}
}

// flightRec / flightRing mirror internal/telemetry's flight recorder: a
// power-of-two ring of fixed-size value records overwritten in place
// through a masked sequence counter, plus a per-tier pending array
// folded once per run.
type flightRec struct {
	ts      int64
	keyHash uint64
	latNs   int32
	batch   uint32
	tier    uint8
	flags   uint8
}

type flightRing struct {
	ring    []flightRec
	mask    uint64
	seq     uint64
	batch   uint32
	pending [4]uint32
}

// hotRingRecord is the flight-recorder hit idiom: index the preallocated
// ring through seq&mask, store the per-packet facts field by field into
// the resident record (no composite literal, which would build the
// record on the stack just to copy it), and bump the counters. Nothing
// escapes, nothing allocates; the analyzer must stay silent.
//
//gf:hotpath
func hotRingRecord(r *flightRing, tier uint8, keyHash uint64) {
	s := &r.ring[r.seq&r.mask]
	s.keyHash = keyHash
	s.batch = r.batch
	s.tier = tier
	s.flags = 1
	r.seq++
	r.pending[tier]++
}

// hotRingFold closes a run: sums the pending array, shares the span
// across the records, and clears the counters in place — the once-per-
// batch companion to hotRingRecord. Silent.
//
//gf:hotpath
func hotRingFold(r *flightRing, span int64) int64 {
	n := uint32(0)
	for t := range r.pending {
		n += r.pending[t]
	}
	if n == 0 {
		return 0
	}
	per := span / int64(n)
	for t := range r.pending {
		r.pending[t] = 0
	}
	return per
}

// coldAlloc allocates freely but carries no annotation: silent.
func coldAlloc() []int {
	s := fmt.Sprint("cold")
	_ = s
	return []int{1, 2, 3}
}
