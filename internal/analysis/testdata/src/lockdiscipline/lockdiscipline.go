// Package lockdiscipline is a gflint fixture: locks released on every
// path (defer or same block) pass; leaks, returns under a lock, and
// channel operations under a lock are findings.
package lockdiscipline

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

// deferred is the canonical pattern.
func (g *guarded) deferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// sameBlock releases in straight-line code.
func (g *guarded) sameBlock() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// branchUnlock releases on both paths.
func (g *guarded) branchUnlock(b bool) int {
	g.mu.Lock()
	if b {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

// readers pairs RLock/RUnlock independently of the writer lock.
func (g *guarded) readers() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// closureClean defines (but does not run) a locking closure; the literal
// body is checked as its own function and is clean.
func (g *guarded) closureClean() func() {
	return func() {
		g.mu.Lock()
		g.mu.Unlock()
	}
}

// leak never releases.
func (g *guarded) leak() {
	g.mu.Lock() // want "locked but never unlocked"
	g.n++
}

// returnHeld leaks on the early-return path only.
func (g *guarded) returnHeld(b bool) int {
	g.mu.Lock()
	if b {
		return g.n // want "return while holding g.mu"
	}
	g.mu.Unlock()
	return 0
}

// sendHeld blocks on a channel inside the critical section.
func (g *guarded) sendHeld() {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding g.mu"
	g.mu.Unlock()
}

// recvDeferred's critical section spans to the end of the function, so
// the receive is still under the lock even though the unlock is deferred.
func (g *guarded) recvDeferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding g.mu"
}

// selectHeld blocks on select under the lock.
func (g *guarded) selectHeld() {
	g.mu.Lock()
	select { // want "select while holding g.mu"
	case v := <-g.ch:
		g.n = v
	default:
	}
	g.mu.Unlock()
}
