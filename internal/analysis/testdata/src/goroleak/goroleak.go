// Package goroleak exercises gflint's goroutine-lifecycle analysis:
// goroutines must have a provable termination path, go targets must be
// statically resolvable, and every WaitGroup.Add needs a reachable Done.
package goroleak

import (
	"context"
	"sync"
)

// leakyWorker spins forever: no return, no labeled break, no exit.
func leakyWorker(c chan int) {
	for { // want "unconditional loop in goroutine leakyWorker has no exit path"
		<-c
	}
}

// goodWorker exits when its context is cancelled.
func goodWorker(ctx context.Context, c chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-c:
		}
	}
}

// drainWorker exits through the default arm once the channel is dry.
func drainWorker(c chan int) {
	for {
		select {
		case <-c:
		default:
			return
		}
	}
}

// boundedWorker's loop has a condition, so termination is the loop's
// own business.
func boundedWorker(c chan int) {
	for i := 0; i < 10; i++ {
		c <- i
	}
}

// rangeWorker terminates when the channel closes.
func rangeWorker(c chan int) {
	for range c {
	}
}

// escapeWorker exits its spin via a labeled break.
func escapeWorker(c chan int) {
drain:
	for {
		if <-c == 0 {
			break drain
		}
	}
}

func Spawn(ctx context.Context, c chan int) {
	go leakyWorker(c)
	go goodWorker(ctx, c)
	go drainWorker(c)
	go boundedWorker(c)
	go rangeWorker(c)
	go escapeWorker(c)
	go func() {
		for { // want "unconditional loop in goroutine func@goroleak.go"
			<-c
		}
	}()
}

// hooks carries a func-typed field no module function is ever assigned
// to, so the go statement's target is unresolvable.
type hooks struct{ bg func(chan byte) }

func SpawnHook(h hooks, c chan byte) {
	go h.bg(c) // want "cannot resolve the target of this go statement"
}

type pool struct {
	wg     sync.WaitGroup
	orphan sync.WaitGroup
}

func (p *pool) run(ctx context.Context, c chan int) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		goodWorker(ctx, c)
	}()
	p.orphan.Add(1) // want "sync.WaitGroup.Add on p.orphan has no matching Done"
}

func (p *pool) wait() { p.wg.Wait() }

// engine mirrors the upcall engine's goroutine lifecycle: Start Adds
// once per drain goroutine, each drain defers the matching Done on the
// same WaitGroup field and exits through the context arm; the inner
// batch-gather loop escapes via a labeled break. All clean — no
// findings expected anywhere in this block.
type engine struct {
	wg sync.WaitGroup
	in chan int
}

func (e *engine) Start(ctx context.Context, workers int) {
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.drain(ctx)
		}()
	}
}

func (e *engine) drain(ctx context.Context) {
	for {
		var batch []int
		select {
		case <-ctx.Done():
			return
		case v := <-e.in:
			batch = append(batch, v)
		}
	gather:
		for len(batch) < 8 {
			select {
			case v := <-e.in:
				batch = append(batch, v)
			default:
				break gather
			}
		}
		batch = batch[:0]
		_ = batch
	}
}

func (e *engine) Wait() { e.wg.Wait() }

// metronome runs for the process lifetime by design; the suppression
// records that decision next to the loop.
func metronome(c chan int) {
	//gflint:ignore goroleak process-lifetime ticker, killed with the process
	for {
		c <- 1
	}
}

func SpawnForever(c chan int) {
	go metronome(c)
}
