// Package suppress is a gflint fixture for the //gflint:ignore
// machinery: well-formed directives (analyzer + reason) on the offending
// line or the line above waive a finding; naming an unknown analyzer is
// itself a finding and waives nothing.
package suppress

import "fmt"

//gf:hotpath
func waivedAbove() {
	//gflint:ignore hotalloc fixture demonstrates the line-above waiver
	fmt.Println("ok")
}

//gf:hotpath
func waivedSameLine() {
	fmt.Println("ok") //gflint:ignore hotalloc fixture demonstrates the same-line waiver
}

//gf:hotpath
func unwaived() {
	fmt.Println("no") // want "fmt.Println in hot function unwaived"
}

//gf:hotpath
func typo() {
	//gflint:ignore hotallocs misspelled analyzer name; want "unknown analyzer"
	fmt.Println("no") // want "fmt.Println in hot function typo"
}
