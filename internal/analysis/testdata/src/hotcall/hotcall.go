// Package hotcall exercises gflint's interprocedural hot-path
// certification: allocations and blocking constructs planted several
// calls away from a //gf:hotpath root, interface dispatch, method
// values, deferred calls, unresolvable dynamic calls, and the
// //gf:hotpath-safe boundary grammar.
package hotcall

import (
	"strconv"
	"sync"
	"time"
)

// --- allocation planted two calls deep ------------------------------

func helperDepth1(n int) int { return helperDepth2(n) }

func helperDepth2(n int) int {
	buf := make([]int, n) // want "make in hot function helperDepth2"
	return len(buf)
}

// --- channel op planted two calls deep ------------------------------

func chanDepth1(c chan int) { chanDepth2(c) }

func chanDepth2(c chan int) {
	c <- 1 // want "channel send in hot function chanDepth2"
}

//gf:hotpath
func Root(n int, c chan int) int {
	x := helperDepth1(n)
	chanDepth1(c)
	return x
}

// --- blocking rules in the root body itself -------------------------

//gf:hotpath
func RootDefer(mu *sync.Mutex) {
	mu.Lock()         // want "call to sync.(*Mutex).Lock in hot function RootDefer"
	defer mu.Unlock() // want "defer in hot function RootDefer" want "call to sync.(*Mutex).Unlock"
}

//gf:hotpath
func RootClock() int64 {
	return time.Now().UnixNano() // want "time.Now in hot function RootClock"
}

//gf:hotpath
func RootSpawn() {
	go bgWork() // want "go statement in hot function RootSpawn"
}

func bgWork() {}

//gf:hotpath
func RootClose(c chan int) {
	close(c) // want "channel close in hot function RootClose"
}

func waitDepth(c chan int) int {
	select { // want "select in hot function waitDepth"
	case v := <-c: // want "channel receive in hot function waitDepth"
		return v
	default:
		return 0
	}
}

//gf:hotpath
func RootSelect(c chan int) int { return waitDepth(c) }

// --- interface dispatch: every implementor is certified -------------

type counter interface{ bump() int }

type atomicCounter struct{ n int }

func (a *atomicCounter) bump() int { a.n++; return a.n }

type mapCounter struct{ m map[string]int }

func (m *mapCounter) bump() int {
	m.m = map[string]int{} // want "map literal in hot function (*mapCounter).bump"
	return len(m.m)
}

//gf:hotpath
func RootIface(c counter) int {
	return c.bump()
}

// --- method value: a func-value call resolves to the taken method ---

type scaler struct {
	k int
	s string
}

func (s *scaler) scale(n int) string {
	_ = n * s.k
	return s.s + "x" // want "string concatenation in hot function (*scaler).scale"
}

var defaultScaler scaler

// scaleFn takes (*scaler).scale's value, putting it in the candidate
// pool for func-value calls of matching signature.
var scaleFn = defaultScaler.scale

//gf:hotpath
func RootMethodValue(f func(int) string) string {
	return f(3)
}

// --- unresolvable dynamic call --------------------------------------

type callbacks struct{ onEvict func(uint32) uint32 }

//gf:hotpath
func RootUnresolved(cb callbacks) uint32 {
	return cb.onEvict(1) // want "dynamic call in hot function RootUnresolved cannot be resolved statically"
}

// --- external calls outside the certifiable leaves ------------------

//gf:hotpath
func RootExternal(n int) string {
	return strconv.Itoa(n) // want "call to strconv.Itoa in hot function RootExternal is not certifiable"
}

// --- //gf:hotpath-safe boundaries -----------------------------------

// coldCompile allocates freely: certification stops at the boundary.
//
//gf:hotpath-safe compilation is cold by definition; runs once per miss
func coldCompile(n int) []int {
	out := make([]int, 0, n) // no finding: behind the boundary
	for i := 0; i < n; i++ {
		out = append(out, len(strconv.Itoa(i)))
	}
	return out
}

//gf:hotpath
func RootBoundary(n int) int {
	return len(coldCompile(n))
}

//gf:hotpath-safe
func badBoundary() {} // want "//gf:hotpath-safe on badBoundary needs a reason"

//gf:hotpath
//gf:hotpath-safe because confused
func bothDirectives() {} // want "cannot be a certification root and a cold boundary"

// --- enqueue boundary: upcall-style park two calls deep -------------

// parkEnqueue hands a miss to the slow-path offload queue. The channel
// send is the datapath's last touch of the packet; certification stops
// at the declared boundary even though the send sits two calls below
// the root.
//
//gf:hotpath-safe nonblocking upcall enqueue is the offload handoff point
func parkEnqueue(c chan int, v int) bool {
	select {
	case c <- v: // no finding: behind the boundary
		return true
	default:
		return false
	}
}

func parkDepth1(c chan int, v int) bool { return parkEnqueue(c, v) }

//gf:hotpath
func RootPark(c chan int, v int) bool {
	return parkDepth1(c, v)
}

// --- suppression with reason ----------------------------------------

//gf:hotpath
func RootWaived(c chan int) {
	//gflint:ignore hotcall startup-only notification, measured cold
	c <- 1
}
