// Package atomicmix is a gflint fixture: Hits is updated through
// sync/atomic, so every other access to it — including ones from other
// packages (see client) — must be atomic too.
package atomicmix

import "sync/atomic"

// Counters mixes a raw uint64 driven via sync/atomic (Hits), a raw
// uint64 that is never touched atomically (Drops), and an atomic wrapper
// type (Safe), which is exempt by construction.
type Counters struct {
	Hits  uint64
	Drops uint64
	Safe  atomic.Uint64
}

// Record is the sanctioned update path.
func (c *Counters) Record() {
	atomic.AddUint64(&c.Hits, 1)
	c.Safe.Add(1)
}

// Broken reads and writes Hits without atomics.
func (c *Counters) Broken() uint64 {
	c.Hits++      // want "plain access to field Counters.Hits"
	return c.Hits // want "plain access to field Counters.Hits"
}

// Fine: Drops has no atomic access anywhere, and loads of Hits through
// sync/atomic are sanctioned.
func (c *Counters) Fine() uint64 {
	c.Drops++
	return atomic.LoadUint64(&c.Hits)
}
