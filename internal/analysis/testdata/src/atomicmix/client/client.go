// Package client proves atomicmix sees across package boundaries: the
// field is made atomic in package atomicmix, the plain access lives here.
package client

import "fixture/atomicmix"

// Reload reads the counter plainly from another package entirely.
func Reload(c *atomicmix.Counters) uint64 {
	return c.Hits // want "plain access to field Counters.Hits"
}
