// Package badignore is a gflint fixture for malformed suppression
// directives: an //gflint:ignore without a reason must be reported and
// must not waive the finding under it. Checked by a direct test rather
// than want comments, since any text appended to the directive would
// become its reason and make it well-formed.
package badignore

import "fmt"

//gf:hotpath
func missingReason() {
	//gflint:ignore hotalloc
	fmt.Println("no")
}
