package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DetRand enforces replay determinism in the simulation layers: the
// paper's tables are regenerated from fixed-seed runs, so two runs with
// the same seed must be bit-for-bit identical. Inside the scoped packages
// (the simulator, the Gigaflow cache and partitioner, the ClassBench
// generator, and the traffic model) non-test code may not call:
//
//   - math/rand's package-level functions (Intn, Float64, Perm, Shuffle,
//     ...), which draw from the shared global source. Randomness must
//     flow through an injected, seedable *rand.Rand; the constructors
//     rand.New, rand.NewSource, and rand.NewZipf build exactly those and
//     stay legal.
//
//   - time.Now / time.Since, which leak wall-clock into results.
//     Simulations run on virtual time threaded through their callers.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "simulation code must use injected seeded randomness and virtual time",
	Run:  runDetRand,
	Summary: func(prog *Program) string {
		n := 0
		for _, pkg := range prog.Pkgs {
			if detRandInScope(pkg.Path) {
				n++
			}
		}
		return fmt.Sprintf("%d scoped packages", n)
	},
}

// detRandScopes are the import-path fragments whose packages must be
// deterministic. Matching on fragments rather than exact paths keeps the
// analyzer honest under test fixtures, which mirror these suffixes.
var detRandScopes = []string{
	"internal/sim",
	"internal/gigaflow",
	"internal/classbench",
	"internal/traffic",
}

// detRandAllowed are math/rand package-level constructors of injectable
// sources, the one sanctioned way to obtain randomness.
var detRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetRand(prog *Program, report Reporter) {
	// The shared function index covers every executable context in a
	// scoped package — declarations, literals, and package-level variable
	// initializers (the init@file pseudo-functions) — each visited once.
	for _, fn := range prog.Functions() {
		if !detRandInScope(fn.Pkg.Path) {
			continue
		}
		info := fn.Pkg.Info
		fn.Walk(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageQualifier(info, sel)
			if !ok {
				return true
			}
			// Only uses of package-level functions matter: type
			// references (*rand.Rand in a signature) are exactly how
			// injected randomness is threaded, and constants are inert.
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			switch {
			case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
				if !detRandAllowed[sel.Sel.Name] {
					report(sel.Pos(), "global math/rand.%s draws from the process-wide source and breaks fixed-seed replay; thread an injected *rand.Rand through the constructor or config", sel.Sel.Name)
				}
			case pkgPath == "time" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since"):
				report(sel.Pos(), "time.%s leaks wall-clock into simulation results; thread virtual time through the caller", sel.Sel.Name)
			}
			return true
		})
	}
}

func detRandInScope(path string) bool {
	for _, s := range detRandScopes {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// packageQualifier reports the import path when a selector's X is a
// package name (rand.Intn, time.Now), as opposed to a value selector.
func packageQualifier(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
