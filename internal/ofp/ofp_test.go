package ofp

import (
	"strings"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
	"gigaflow/internal/pipelines"
)

const demo = `
# A miniature L2/L3/ACL program.
pipeline demo
table 0 l2 fields=eth_dst miss=drop
table 1 l3 fields=eth_type,ip_dst miss=goto(2)
table 2 acl fields=ip_proto,tp_dst miss=output(99)

rule table=0 priority=10, eth_dst=02:00:00:00:00:01, actions=goto(1)
rule table=1 priority=20, eth_type=0x0800, ip_dst=10.0.0.0/24, actions=set_field(eth_src=02:aa:00:00:00:01),goto(2)
rule table=2 priority=30, tp_dst=80, actions=output(1)
rule table=2 priority=40, tp_dst=22, actions=drop
`

func TestLoadBasics(t *testing.T) {
	p, err := LoadString(demo)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || p.NumTables() != 3 || p.NumRules() != 4 {
		t.Fatalf("loaded %s: %d tables, %d rules", p.Name, p.NumTables(), p.NumRules())
	}
	if p.Table(0).Name != "l2" || !p.Table(0).MatchFields.Contains(flow.FieldEthDst) {
		t.Error("table 0 wrong")
	}
	if p.Table(1).MissNext != 2 {
		t.Error("miss goto lost")
	}
	if len(p.Table(2).MissActions) != 1 || p.Table(2).MissActions[0].Type != flow.ActionOutput {
		t.Error("miss output lost")
	}

	// Behaviour end to end.
	k := flow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800,ip_dst=10.0.0.5,tp_dst=80")
	tr := p.MustProcess(k)
	if tr.Verdict.Kind != flow.VerdictOutput || tr.Verdict.Port != 1 {
		t.Fatalf("verdict = %v", tr.Verdict)
	}
	if tr.FinalKey().Get(flow.FieldEthSrc) != 0x02aa000000001&^0xF000000000000 { // 02:aa:00:00:00:01
		// Compute expected directly to avoid constant confusion.
		want := flow.MustParseKey("eth_src=02:aa:00:00:00:01").Get(flow.FieldEthSrc)
		if tr.FinalKey().Get(flow.FieldEthSrc) != want {
			t.Errorf("set_field lost: %s", tr.FinalKey())
		}
	}
	if p.MustProcess(k.With(flow.FieldTpDst, 22)).Verdict.Kind != flow.VerdictDrop {
		t.Error("drop rule lost")
	}
	if p.MustProcess(k.With(flow.FieldTpDst, 1234)).Verdict.Port != 99 {
		t.Error("acl miss output lost")
	}
}

func TestRoundTripBehaviour(t *testing.T) {
	orig, err := LoadString(demo)
	if err != nil {
		t.Fatal(err)
	}
	text := DumpString(orig)
	re, err := LoadString(text)
	if err != nil {
		t.Fatalf("re-load failed: %v\n%s", err, text)
	}
	if re.NumTables() != orig.NumTables() || re.NumRules() != orig.NumRules() {
		t.Fatalf("shape changed: %d/%d tables, %d/%d rules",
			re.NumTables(), orig.NumTables(), re.NumRules(), orig.NumRules())
	}
	keys := []flow.Key{
		flow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800,ip_dst=10.0.0.5,tp_dst=80"),
		flow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800,ip_dst=10.0.0.5,tp_dst=22"),
		flow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800,ip_dst=10.9.0.5,tp_dst=80"),
		flow.MustParseKey("eth_dst=02:00:00:00:00:09"),
	}
	for _, k := range keys {
		a, b := orig.MustProcess(k), re.MustProcess(k)
		if a.Verdict != b.Verdict || a.FinalKey() != b.FinalKey() {
			t.Fatalf("behaviour diverges for %s: %v vs %v", k, a.Verdict, b.Verdict)
		}
	}
	// Dump must be stable (idempotent on re-loaded pipelines).
	if DumpString(re) != text {
		t.Error("dump not round-trip stable")
	}
}

func TestRoundTripStandardPipelines(t *testing.T) {
	// The five Table 1 pipeline skeletons survive dump/load.
	for _, spec := range pipelines.All() {
		p := spec.Build()
		p.MustAddRule(spec.Tables[0].ID, flow.MatchAll(), 1, []flow.Action{flow.Drop()}, pipeline.NoTable)
		re, err := LoadString(DumpString(p))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if re.NumTables() != p.NumTables() || re.NumRules() != p.NumRules() {
			t.Errorf("%s: shape changed", spec.Name)
		}
	}
}

func TestMaskedSetFieldRoundTrip(t *testing.T) {
	p := pipeline.New("m")
	p.AddTable(0, "t", flow.AllFields)
	p.MustAddRule(0, flow.MatchAll(), 1,
		[]flow.Action{flow.SetFieldMasked(flow.FieldIPDst, 0xc0a80000, 0xffff0000), flow.Output(3)}, pipeline.NoTable)
	re, err := LoadString(DumpString(p))
	if err != nil {
		t.Fatal(err)
	}
	k := flow.MustParseKey("ip_dst=10.1.2.3")
	a, b := p.MustProcess(k), re.MustProcess(k)
	if a.FinalKey() != b.FinalKey() {
		t.Errorf("masked set_field changed: %s vs %s", a.FinalKey(), b.FinalKey())
	}
}

func TestImplicitAllFieldsTable(t *testing.T) {
	p, err := LoadString("table 0 any\nrule table=0 actions=drop\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Table(0).MatchFields != flow.AllFields {
		t.Error("fields should default to all")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		in, wantSub string
	}{
		{"bogus stuff", "unknown statement"},
		{"pipeline p\npipeline q\ntable 0 t", "duplicate pipeline"},
		{"table x t", "bad table id"},
		{"table 0 t\ntable 0 u", "duplicate table"},
		{"table 0 t fields=nosuch", "unknown field"},
		{"table 0 t miss=fly", "bad miss"},
		{"table 0 t\nrule actions=drop", "needs table="},
		{"table 0 t\nrule table=0, tp_dst=80", "needs actions"},
		{"table 0 t\nrule table=0 actions=launch(1)", "unknown action"},
		{"table 0 t\nrule table=0 actions=goto(1),drop", "goto must be the last"},
		{"table 0 t\nrule table=0 actions=goto(7)", "unknown table 7"},
		{"table 0 t\nrule table=0, zork=1, actions=drop", "bad match"},
		{"rule table=0 actions=drop", "rule before any table"},
		{"table 0 t\nrule table=0 priority=zz actions=drop", "bad priority"},
	}
	for _, c := range bad {
		_, err := LoadString(c.in)
		if err == nil {
			t.Errorf("LoadString(%q) should fail", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("LoadString(%q) error %q, want substring %q", c.in, err, c.wantSub)
		}
	}
	if _, err := LoadString(""); err == nil {
		t.Error("empty program should fail")
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := LoadString("pipeline p\ntable 0 t\nrule table=0 actions=warp(1)\n")
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 3 {
		t.Errorf("err = %v, want ParseError on line 3", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := LoadString("# header\n\npipeline p # trailing\ntable 0 t # comment\nrule table=0 actions=drop # yep\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRules() != 1 {
		t.Error("comment handling broken")
	}
}

const statefulProgram = `
# A stateful VIP load balancer: ct_state classification, a NAT pool,
# and the full stateful action set.
pipeline lb
table 0 classify fields=eth_type,ip_proto,ip_dst,tp_dst,ct_state miss=drop
table 1 rewrite fields=ip_dst miss=drop
table 2 reverse fields=ip_src miss=drop

pool 1 10.20.0.1:8080,10.20.0.2:8080,10.20.0.3:8081

rule table=0 priority=30, eth_type=0x0800, ct_state=0x11/0x31, actions=goto(2)
rule table=0 priority=20, eth_type=0x0800, ip_dst=10.9.0.1, ct_state=0x01/0x31, actions=goto(1)
rule table=1 priority=10, actions=dnat(1),output(2)
rule table=2 priority=10, actions=ct_nat,snat(1),output(1)
`

// TestNATPoolRoundTrip: pool declarations and the stateful actions
// (dnat/snat/ct_nat, ct_state matches) survive load -> dump -> load
// with identical pools and a byte-stable second dump.
func TestNATPoolRoundTrip(t *testing.T) {
	orig, err := LoadString(statefulProgram)
	if err != nil {
		t.Fatal(err)
	}
	pool := orig.NATPool(1)
	if len(pool) != 3 {
		t.Fatalf("pool 1 has %d targets", len(pool))
	}
	if want := flow.MustParseKey("ip_dst=10.20.0.3").Get(flow.FieldIPDst); pool[2].IP != want || pool[2].Port != 8081 {
		t.Fatalf("pool target 2 = %+v", pool[2])
	}

	text := DumpString(orig)
	re, err := LoadString(text)
	if err != nil {
		t.Fatalf("re-load failed: %v\n%s", err, text)
	}
	if got := re.NATPool(1); len(got) != len(pool) || got[0] != pool[0] || got[2] != pool[2] {
		t.Fatalf("pool changed across round trip: %+v vs %+v", got, pool)
	}
	if len(re.NATPoolIDs()) != 1 || re.NATPoolIDs()[0] != 1 {
		t.Fatalf("pool ids = %v", re.NATPoolIDs())
	}

	// The stateful actions themselves survive: table 1 carries dnat(1),
	// table 2 carries ct_nat then snat(1).
	findActions := func(p *pipeline.Pipeline, table int) []flow.Action {
		for _, r := range p.Table(table).Rules() {
			return r.Actions
		}
		t.Fatalf("table %d has no rules", table)
		return nil
	}
	acts := findActions(re, 1)
	if len(acts) != 2 || acts[0].Type != flow.ActionDNAT || acts[0].Value != 1 {
		t.Fatalf("table 1 actions = %+v", acts)
	}
	acts = findActions(re, 2)
	if len(acts) != 3 || acts[0].Type != flow.ActionCtNAT ||
		acts[1].Type != flow.ActionSNAT || acts[1].Value != 1 {
		t.Fatalf("table 2 actions = %+v", acts)
	}

	if DumpString(re) != text {
		t.Error("dump not round-trip stable")
	}
}
