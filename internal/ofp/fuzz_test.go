package ofp

import "testing"

// FuzzLoad checks that the program parser never panics and that accepted
// programs survive a dump/load round trip with the same shape.
func FuzzLoad(f *testing.F) {
	f.Add(demo)
	f.Add("pipeline p\ntable 0 t\nrule table=0 actions=drop\n")
	f.Add("table 0 t fields=ip_dst miss=goto(0)\n")
	f.Add("table 0 t miss=output(65535)\nrule table=0 priority=-5 actions=output(0)\n")
	f.Add("rule rule rule")
	f.Add("table 999999999999999999 t")
	f.Add("pipeline \ntable 0 t\n# only comments\n")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			s = s[:1<<16] // keep pathological inputs cheap
		}
		p, err := LoadString(s)
		if err != nil {
			return
		}
		text := DumpString(p)
		re, err := LoadString(text)
		if err != nil {
			t.Fatalf("accepted program cannot be re-loaded: %v\n--- original\n%s\n--- dump\n%s", err, s, text)
		}
		if re.NumTables() != p.NumTables() || re.NumRules() != p.NumRules() {
			t.Fatalf("round trip changed shape: %d/%d tables, %d/%d rules",
				re.NumTables(), p.NumTables(), re.NumRules(), p.NumRules())
		}
	})
}
