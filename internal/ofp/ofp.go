// Package ofp implements a textual pipeline-programming format in the
// spirit of ovs-ofctl flow syntax: pipelines, tables, and rules are
// declared one per line, loadable from files and dumpable back to text
// (round-trip stable). It is the operator-facing surface for programming
// the vSwitch outside Go code — cmd/gfctl builds on it.
//
// Grammar (one statement per line; '#' starts a comment):
//
//	pipeline <name>
//	table <id> <name> [fields=<f1,f2,...>] [miss=drop|goto(<id>)|output(<port>)]
//	rule table=<id> [priority=<p>] [<match terms>] actions=<a1>,<a2>,...
//
// Match terms use the flow package's notation (eth_dst=02:..:01,
// ip_dst=10.0.0.0/24, tp_dst=80). Actions:
//
//	set_field(<field>=<value>[/mask])   rewrite a header field
//	output(<port>)                      forward and stop
//	drop                                discard and stop
//	goto(<table>)                       continue at a table
//	dnat(<pool>)                        rewrite destination from a NAT pool
//	snat(<pool>)                        rewrite source from a NAT pool
//	ct_nat                              apply the connection's NAT binding
//
// goto must be the last action and is encoded as the rule's next table.
// NAT pools referenced by dnat/snat are declared with:
//
//	pool <id> <ip>:<port>[,<ip>:<port>...]
package ofp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("ofp: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Load parses a pipeline program from r.
func Load(r io.Reader) (*pipeline.Pipeline, error) {
	var p *pipeline.Pipeline
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch verb {
		case "pipeline":
			if p != nil {
				return nil, errf(lineNo, "duplicate pipeline declaration")
			}
			name := strings.TrimSpace(rest)
			if name == "" {
				return nil, errf(lineNo, "pipeline needs a name")
			}
			p = pipeline.New(name)
		case "table":
			if p == nil {
				p = pipeline.New("unnamed")
			}
			if err := parseTable(p, rest, lineNo); err != nil {
				return nil, err
			}
		case "rule":
			if p == nil {
				return nil, errf(lineNo, "rule before any table")
			}
			if err := parseRule(p, rest, lineNo); err != nil {
				return nil, err
			}
		case "pool":
			if p == nil {
				p = pipeline.New("unnamed")
			}
			if err := parsePool(p, rest, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, errf(lineNo, "unknown statement %q", verb)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ofp: %w", err)
	}
	if p == nil || p.NumTables() == 0 {
		return nil, fmt.Errorf("ofp: no tables declared")
	}
	return p, nil
}

// LoadString is Load over a string.
func LoadString(s string) (*pipeline.Pipeline, error) { return Load(strings.NewReader(s)) }

// parseTable handles: <id> <name> [fields=...] [miss=...]
func parseTable(p *pipeline.Pipeline, rest string, line int) error {
	parts := strings.Fields(rest)
	if len(parts) < 2 {
		return errf(line, "table needs: table <id> <name> [fields=...] [miss=...]")
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		return errf(line, "bad table id %q", parts[0])
	}
	name := parts[1]
	var fields flow.FieldSet
	missNext := pipeline.NoTable
	var missActs []flow.Action
	haveMiss := false
	for _, opt := range parts[2:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return errf(line, "bad table option %q", opt)
		}
		switch k {
		case "fields":
			for _, fn := range strings.Split(v, ",") {
				f, ok := flow.FieldByName(strings.TrimSpace(fn))
				if !ok {
					return errf(line, "unknown field %q", fn)
				}
				fields = fields.Add(f)
			}
		case "miss":
			haveMiss = true
			switch {
			case v == "drop":
				missActs = []flow.Action{flow.Drop()}
			case strings.HasPrefix(v, "goto(") && strings.HasSuffix(v, ")"):
				n, err := strconv.Atoi(v[5 : len(v)-1])
				if err != nil {
					return errf(line, "bad miss goto %q", v)
				}
				missNext = n
			case strings.HasPrefix(v, "output(") && strings.HasSuffix(v, ")"):
				n, err := strconv.ParseUint(v[7:len(v)-1], 10, 16)
				if err != nil {
					return errf(line, "bad miss output %q", v)
				}
				missActs = []flow.Action{flow.Output(uint16(n))}
			default:
				return errf(line, "bad miss %q (want drop, goto(n), or output(n))", v)
			}
		default:
			return errf(line, "unknown table option %q", k)
		}
	}
	if p.Table(id) != nil {
		return errf(line, "duplicate table %d", id)
	}
	if fields.Empty() {
		fields = flow.AllFields
	}
	p.AddTable(id, name, fields)
	if haveMiss {
		p.SetMiss(id, missNext, missActs...)
	}
	return nil
}

// parseRule handles: table=<id> [priority=<p>] [<match terms>] actions=...
func parseRule(p *pipeline.Pipeline, rest string, line int) error {
	matchPart, actionsPart, ok := cutActions(rest)
	if !ok {
		return errf(line, "rule needs actions=...")
	}
	tableID := -1
	priority := 0
	var matchTerms []string
	var terms []string
	for _, t := range splitTop(matchPart) {
		terms = append(terms, strings.Fields(t)...)
	}
	for _, term := range terms {
		term = strings.TrimSuffix(strings.TrimSpace(term), ",")
		if term == "" {
			continue
		}
		switch {
		case strings.HasPrefix(term, "table="):
			n, err := strconv.Atoi(term[len("table="):])
			if err != nil {
				return errf(line, "bad table= %q", term)
			}
			tableID = n
		case strings.HasPrefix(term, "priority="):
			n, err := strconv.Atoi(term[len("priority="):])
			if err != nil {
				return errf(line, "bad priority= %q", term)
			}
			priority = n
		default:
			matchTerms = append(matchTerms, term)
		}
	}
	if tableID < 0 {
		return errf(line, "rule needs table=<id>")
	}
	m, err := flow.ParseMatch(strings.Join(matchTerms, ","))
	if err != nil {
		return errf(line, "bad match: %v", err)
	}
	acts, next, err := parseActions(actionsPart, line)
	if err != nil {
		return err
	}
	if _, err := p.AddRule(tableID, m, priority, acts, next); err != nil {
		return errf(line, "%v", err)
	}
	return nil
}

// parsePool handles: <id> <ip>:<port>[,<ip>:<port>...]
func parsePool(p *pipeline.Pipeline, rest string, line int) error {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return errf(line, "pool needs: pool <id> <ip>:<port>[,<ip>:<port>...]")
	}
	id, err := strconv.ParseUint(parts[0], 10, 16)
	if err != nil {
		return errf(line, "bad pool id %q", parts[0])
	}
	if p.NATPool(uint16(id)) != nil {
		return errf(line, "duplicate pool %d", id)
	}
	var targets []pipeline.NATTarget
	for _, item := range strings.Split(parts[1], ",") {
		ipStr, portStr, ok := strings.Cut(item, ":")
		if !ok {
			return errf(line, "bad pool target %q (want ip:port)", item)
		}
		ip, err := flow.ParseValue(flow.FieldIPDst, ipStr)
		if err != nil {
			return errf(line, "bad pool target ip: %v", err)
		}
		port, err := strconv.ParseUint(portStr, 10, 16)
		if err != nil {
			return errf(line, "bad pool target port %q", portStr)
		}
		targets = append(targets, pipeline.NATTarget{IP: ip, Port: port})
	}
	if len(targets) == 0 {
		return errf(line, "pool %d has no targets", id)
	}
	p.SetNATPool(uint16(id), targets)
	return nil
}

// cutActions splits "... actions=..." at the top-level actions= key.
func cutActions(s string) (match, actions string, ok bool) {
	i := strings.Index(s, "actions=")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSuffix(strings.TrimSpace(s[:i]), ","), s[i+len("actions="):], true
}

// splitTop splits on commas not inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// parseActions parses the action list, returning the actions and the goto
// target (NoTable if none).
func parseActions(s string, line int) ([]flow.Action, int, error) {
	next := pipeline.NoTable
	var acts []flow.Action
	items := splitTop(s)
	for idx, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		switch {
		case item == "drop":
			acts = append(acts, flow.Drop())
		case item == "ct_nat":
			acts = append(acts, flow.CtNAT())
		case strings.HasPrefix(item, "dnat(") && strings.HasSuffix(item, ")"):
			n, err := strconv.ParseUint(item[5:len(item)-1], 10, 16)
			if err != nil {
				return nil, 0, errf(line, "bad dnat %q", item)
			}
			acts = append(acts, flow.DNAT(uint16(n)))
		case strings.HasPrefix(item, "snat(") && strings.HasSuffix(item, ")"):
			n, err := strconv.ParseUint(item[5:len(item)-1], 10, 16)
			if err != nil {
				return nil, 0, errf(line, "bad snat %q", item)
			}
			acts = append(acts, flow.SNAT(uint16(n)))
		case strings.HasPrefix(item, "output(") && strings.HasSuffix(item, ")"):
			n, err := strconv.ParseUint(item[7:len(item)-1], 10, 16)
			if err != nil {
				return nil, 0, errf(line, "bad output %q", item)
			}
			acts = append(acts, flow.Output(uint16(n)))
		case strings.HasPrefix(item, "goto(") && strings.HasSuffix(item, ")"):
			n, err := strconv.Atoi(item[5 : len(item)-1])
			if err != nil {
				return nil, 0, errf(line, "bad goto %q", item)
			}
			if idx != len(items)-1 {
				return nil, 0, errf(line, "goto must be the last action")
			}
			next = n
		case strings.HasPrefix(item, "set_field(") && strings.HasSuffix(item, ")"):
			body := item[len("set_field(") : len(item)-1]
			fn, val, ok := strings.Cut(body, "=")
			if !ok {
				return nil, 0, errf(line, "bad set_field %q", item)
			}
			f, ok := flow.FieldByName(strings.TrimSpace(fn))
			if !ok {
				return nil, 0, errf(line, "unknown field %q", fn)
			}
			valStr, maskStr, hasMask := strings.Cut(val, "/")
			v, err := flow.ParseValue(f, valStr)
			if err != nil {
				return nil, 0, errf(line, "bad set_field value: %v", err)
			}
			if hasMask {
				bits, err := strconv.ParseUint(maskStr, 0, 64)
				if err != nil {
					return nil, 0, errf(line, "bad set_field mask %q", maskStr)
				}
				acts = append(acts, flow.SetFieldMasked(f, v, bits))
			} else {
				acts = append(acts, flow.SetField(f, v))
			}
		default:
			return nil, 0, errf(line, "unknown action %q", item)
		}
	}
	return acts, next, nil
}

// Dump writes a pipeline program that Load parses back into an equivalent
// pipeline: same tables, rules, priorities, actions, and miss behaviour.
func Dump(w io.Writer, p *pipeline.Pipeline) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "pipeline %s\n", p.Name)
	tables := p.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
	for _, t := range tables {
		fmt.Fprintf(bw, "table %d %s", t.ID, t.Name)
		if t.MatchFields != flow.AllFields && !t.MatchFields.Empty() {
			names := make([]string, 0, t.MatchFields.Len())
			for _, f := range t.MatchFields.Fields() {
				names = append(names, f.String())
			}
			fmt.Fprintf(bw, " fields=%s", strings.Join(names, ","))
		}
		if miss := formatMiss(t); miss != "" {
			fmt.Fprintf(bw, " miss=%s", miss)
		}
		fmt.Fprintln(bw)
	}
	for _, id := range p.NATPoolIDs() {
		targets := make([]string, 0, len(p.NATPool(id)))
		for _, tg := range p.NATPool(id) {
			targets = append(targets, fmt.Sprintf("%s:%d",
				flow.FormatValue(flow.FieldIPDst, tg.IP), tg.Port))
		}
		fmt.Fprintf(bw, "pool %d %s\n", id, strings.Join(targets, ","))
	}
	for _, t := range tables {
		for _, r := range t.Rules() {
			fmt.Fprintf(bw, "rule table=%d priority=%d", t.ID, r.Priority)
			if m := r.Match.String(); m != "*" {
				fmt.Fprintf(bw, ", %s", m)
			}
			fmt.Fprintf(bw, ", actions=%s\n", formatActions(r.Actions, r.Next))
		}
	}
	return bw.Flush()
}

// DumpString is Dump into a string.
func DumpString(p *pipeline.Pipeline) string {
	var b strings.Builder
	Dump(&b, p) // strings.Builder writes cannot fail
	return b.String()
}

func formatMiss(t *pipeline.Table) string {
	if t.MissNext != pipeline.NoTable {
		return fmt.Sprintf("goto(%d)", t.MissNext)
	}
	if len(t.MissActions) == 1 {
		switch t.MissActions[0].Type {
		case flow.ActionDrop:
			return "drop"
		case flow.ActionOutput:
			return fmt.Sprintf("output(%d)", t.MissActions[0].Value)
		}
	}
	return ""
}

func formatActions(acts []flow.Action, next int) string {
	var parts []string
	for _, a := range acts {
		switch a.Type {
		case flow.ActionSetField:
			if a.Mask == a.Field.MaxValue() {
				parts = append(parts, fmt.Sprintf("set_field(%s=%s)", a.Field, flow.FormatValue(a.Field, a.Value)))
			} else {
				parts = append(parts, fmt.Sprintf("set_field(%s=%d/%#x)", a.Field, a.Value, a.Mask))
			}
		case flow.ActionOutput:
			parts = append(parts, fmt.Sprintf("output(%d)", a.Value))
		case flow.ActionDrop:
			parts = append(parts, "drop")
		case flow.ActionDNAT:
			parts = append(parts, fmt.Sprintf("dnat(%d)", a.Value))
		case flow.ActionSNAT:
			parts = append(parts, fmt.Sprintf("snat(%d)", a.Value))
		case flow.ActionCtNAT:
			parts = append(parts, "ct_nat")
		}
	}
	if next != pipeline.NoTable {
		parts = append(parts, fmt.Sprintf("goto(%d)", next))
	}
	if len(parts) == 0 {
		parts = []string{"drop"}
	}
	return strings.Join(parts, ",")
}
