package classbench

import (
	"fmt"
	"strings"

	"gigaflow/internal/flow"
)

// fieldKey identifies a rule's match on one field: the masked value plus
// the mask itself (two rules share a field only when they constrain it
// identically).
func fieldKey(m flow.Match, f flow.FieldID) string {
	return fmt.Sprintf("%x/%x", m.Key[f], m.Mask[f])
}

// tupleKey identifies a rule's match restricted to a field subset.
func tupleKey(m flow.Match, fields []flow.FieldID) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = fieldKey(m, f)
	}
	return strings.Join(parts, "|")
}

// combinations enumerates all k-subsets of fields.
func combinations(fields []flow.FieldID, k int) [][]flow.FieldID {
	var out [][]flow.FieldID
	var rec func(start int, cur []flow.FieldID)
	rec = func(start int, cur []flow.FieldID) {
		if len(cur) == k {
			out = append(out, append([]flow.FieldID(nil), cur...))
			return
		}
		for i := start; i < len(fields); i++ {
			rec(i+1, append(cur, fields[i]))
		}
	}
	rec(0, nil)
	return out
}

// Sharing reproduces the Figure 4 analysis: for each sub-tuple size k in
// 1..5, the average number of rules sharing an identical k-field sub-tuple
// (averaged over all C(5,k) field combinations). Index 0 is unused.
func Sharing(rules []Rule) [6]float64 {
	var out [6]float64
	for k := 1; k <= 5; k++ {
		combos := combinations(TupleFields, k)
		var total float64
		for _, combo := range combos {
			groups := make(map[string]int)
			for _, r := range rules {
				groups[tupleKey(r.Match, combo)]++
			}
			if len(groups) > 0 {
				total += float64(len(rules)) / float64(len(groups))
			}
		}
		out[k] = total / float64(len(combos))
	}
	return out
}

// RuleWeights assigns each rule a locality weight: the number of other
// rules it shares single-field sub-tuples with, summed over the 5-tuple
// fields. The high-locality traffic pattern of §6.1 draws rules
// proportionally to these weights, concentrating traffic on rules whose
// header tuples recur — maximising sub-traversal sharing opportunities.
func RuleWeights(rules []Rule) []float64 {
	counts := make([]map[string]int, len(TupleFields))
	for i, f := range TupleFields {
		counts[i] = make(map[string]int)
		for _, r := range rules {
			counts[i][fieldKey(r.Match, f)]++
		}
	}
	weights := make([]float64, len(rules))
	for ri, r := range rules {
		w := 0.0
		for i, f := range TupleFields {
			w += float64(counts[i][fieldKey(r.Match, f)])
		}
		weights[ri] = w
	}
	return weights
}
