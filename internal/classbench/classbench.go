// Package classbench generates synthetic packet-classification rulesets
// with the structural properties of the ClassBench benchmark (Taylor &
// Turner, ToN 2007) that the paper's evaluation relies on.
//
// Real ClassBench derives rules from proprietary seed filter sets that are
// not available here. This generator reproduces the properties Gigaflow's
// evaluation actually depends on:
//
//   - five-tuple rules (src/dst IPv4 prefixes, protocol, transport ports)
//     with personality-dependent specificity (ACL / FW / IPC);
//   - skewed, pool-based field values: a small population of distinct
//     prefixes and ports recombined across many rules, so that sub-tuples
//     of 1–4 header fields recur across hundreds of rules while full
//     5-tuples are nearly unique — the Figure 4 sharing curve that makes
//     sub-traversal caching effective;
//   - deterministic output from an explicit seed.
package classbench

import (
	"fmt"
	"math/rand"

	"gigaflow/internal/flow"
)

// Personality selects the filter-set style, as in ClassBench.
type Personality uint8

const (
	// ACL mimics access-control lists: specific destinations, many exact
	// destination ports.
	ACL Personality = iota
	// FW mimics firewalls: broader prefixes, more wildcarded ports.
	FW
	// IPC mimics IP-chain/IPSec sets: specific src/dst pairs, fixed
	// protocols.
	IPC
)

// String names the personality.
func (p Personality) String() string {
	switch p {
	case ACL:
		return "acl"
	case FW:
		return "fw"
	case IPC:
		return "ipc"
	default:
		return fmt.Sprintf("personality(%d)", uint8(p))
	}
}

// TupleFields is the classic 5-tuple, in canonical order.
var TupleFields = []flow.FieldID{
	flow.FieldIPSrc, flow.FieldIPDst, flow.FieldIPProto, flow.FieldTpSrc, flow.FieldTpDst,
}

// Rule is one generated classifier rule.
type Rule struct {
	Match    flow.Match
	Priority int
}

// Config parameterises generation.
type Config struct {
	Personality Personality
	Seed        int64
	NumRules    int
	// PoolScale shrinks (<1) or grows (>1) the field-value pools relative
	// to the personality default; smaller pools mean more sub-tuple
	// sharing. Zero means 1.
	PoolScale float64
}

// pools holds the correlated populations rules are drawn from. Rules are
// assembled from two smaller pools — communicating host pairs (src, dst
// prefixes) and applications (protocol, port pair) — with Zipf-skewed
// selection. A few popular pairs/applications appear in many rules, the
// long tail in few; this correlation is what makes 2–4 field sub-tuples
// recur across hundreds of rules while full 5-tuples stay nearly unique
// (the Fig. 4 sharing curve).
type pools struct {
	srcPrefixes []prefix
	dstPrefixes []prefix
	pairs       [][2]int // indices into src/dst prefix pools
	apps        []app

	pairZipf, appZipf *rand.Zipf
}

// app is an application signature: protocol and port constraints; -1
// wildcards the field.
type app struct {
	proto, sport, dport int64
}

type prefix struct {
	addr uint64
	plen uint
}

// Generate produces cfg.NumRules unique rules. Priorities are assigned so
// that more specific rules (more masked bits) rank higher, with ties
// broken by generation order — matching how ClassBench sets are used with
// longest-match semantics.
func Generate(cfg Config) []Rule {
	if cfg.NumRules <= 0 {
		return nil
	}
	scale := cfg.PoolScale
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := buildPools(cfg.Personality, cfg.NumRules, scale, rng)

	seen := make(map[flow.Match]bool, cfg.NumRules)
	rules := make([]Rule, 0, cfg.NumRules)
	attempts := 0
	maxAttempts := cfg.NumRules * 60
	for len(rules) < cfg.NumRules && attempts < maxAttempts {
		attempts++
		// Zipf draws concentrate on popular pool members; once duplicates
		// dominate, mix in uniform draws so the tail still gets covered.
		uniform := attempts%3 == 0
		m := p.draw(cfg.Personality, rng, uniform)
		if seen[m] {
			continue
		}
		seen[m] = true
		rules = append(rules, Rule{Match: m, Priority: m.Mask.BitCount()*1000 + len(rules)%1000})
	}
	return rules
}

// buildPools sizes the value populations. Pool sizes grow sublinearly with
// the ruleset so sharing increases with scale, as in real filter sets.
func buildPools(pers Personality, n int, scale float64, rng *rand.Rand) *pools {
	sz := func(base int) int {
		v := int(float64(base) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	// Base pool sizes at n=200000 tuned to yield Fig. 4-like sharing
	// (hundreds of rules per 1–4 field sub-tuple, ~1 per 5-tuple).
	f := float64(n) / 200000
	if f < 0.01 {
		f = 0.01
	}
	scaled := func(base int) int { return sz(int(float64(base) * sqrtf(f))) }

	p := &pools{}
	var nSrc, nDst, nPairs, nApps int
	var protos []int64
	switch pers {
	case ACL:
		nSrc, nDst = scaled(600), scaled(1200)
		nPairs, nApps = sz(n/6), scaled(90)
		protos = []int64{6, 6, 6, 17, -1}
	case FW:
		nSrc, nDst = scaled(300), scaled(600)
		nPairs, nApps = sz(n/8), scaled(50)
		protos = []int64{6, 17, -1, -1}
	case IPC:
		nSrc, nDst = scaled(900), scaled(900)
		nPairs, nApps = sz(n/5), scaled(70)
		protos = []int64{6, 17, 50}
	}
	// Pool capacity floors: the pair × app cross product must comfortably
	// exceed the requested rule count or uniqueness cannot be met.
	if nApps < 24 {
		nApps = 24
	}
	for nPairs*nApps < 3*n {
		nPairs = nPairs*3/2 + 1
	}
	p.srcPrefixes = genPrefixes(nSrc, pers, rng)
	p.dstPrefixes = genPrefixes(nDst, pers, rng)
	p.pairs = make([][2]int, nPairs)
	srcSkew := rand.NewZipf(rng, 1.2, 2, uint64(len(p.srcPrefixes)-1))
	dstSkew := rand.NewZipf(rng, 1.2, 2, uint64(len(p.dstPrefixes)-1))
	for i := range p.pairs {
		p.pairs[i] = [2]int{int(srcSkew.Uint64()), int(dstSkew.Uint64())}
	}
	p.apps = genApps(nApps, protos, rng)
	p.pairZipf = rand.NewZipf(rng, 1.15, 4, uint64(len(p.pairs)-1))
	p.appZipf = rand.NewZipf(rng, 1.15, 4, uint64(len(p.apps)-1))
	return p
}

// genApps builds the application pool: well-known destination services
// with wildcarded or ephemeral source ports.
func genApps(n int, protos []int64, rng *rand.Rand) []app {
	wellKnown := []int64{22, 25, 53, 80, 110, 123, 143, 179, 443, 445, 993, 1433, 3306, 3389, 5432, 8080, 8443}
	out := make([]app, 0, n)
	for len(out) < n {
		a := app{proto: protos[rng.Intn(len(protos))], sport: -1, dport: -1}
		switch rng.Intn(4) {
		case 0: // service: exact dport, wildcard sport
			a.dport = wellKnown[rng.Intn(len(wellKnown))]
		case 1: // service with pinned ephemeral sport
			a.dport = wellKnown[rng.Intn(len(wellKnown))]
			a.sport = int64(1024 + rng.Intn(64512))
		case 2: // high ephemeral dport
			a.dport = int64(1024 + rng.Intn(64512))
		case 3: // port-wildcard rule (proto-only)
		}
		out = append(out, a)
	}
	return out
}

func sqrtf(x float64) float64 {
	// Newton's iteration; avoids importing math for one call.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 30; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// genPrefixes builds a nested prefix population: a handful of /8 blocks
// subdivided into /16, /24 and /32 descendants, mimicking the tries of
// real filter sets.
func genPrefixes(n int, pers Personality, rng *rand.Rand) []prefix {
	out := make([]prefix, 0, n)
	nBlocks := n/24 + 1
	blocks := make([]uint64, nBlocks)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(223)+1) << 24
	}
	// Personality-specific prefix-length mix.
	var lens []uint
	switch pers {
	case FW:
		lens = []uint{8, 16, 16, 24, 24, 32}
	case IPC:
		lens = []uint{16, 24, 24, 32, 32, 32}
	default: // ACL
		lens = []uint{8, 16, 24, 24, 32, 32}
	}
	for len(out) < n {
		base := blocks[rng.Intn(nBlocks)]
		plen := lens[rng.Intn(len(lens))]
		addr := base
		if plen > 8 {
			addr |= (uint64(rng.Intn(1 << 12))) << 12
		}
		if plen > 24 {
			addr |= uint64(rng.Intn(1 << 12))
		}
		addr &= flow.PrefixMask(flow.FieldIPDst, plen)
		out = append(out, prefix{addr: addr, plen: plen})
	}
	return out
}

// draw assembles one rule match: a host pair crossed with an application.
// With uniform set, pool members are selected uniformly instead of
// Zipf-skewed.
func (p *pools) draw(pers Personality, rng *rand.Rand, uniform bool) flow.Match {
	m := flow.MatchAll()
	pairIdx := int(p.pairZipf.Uint64())
	appIdx := int(p.appZipf.Uint64())
	if uniform {
		pairIdx = rng.Intn(len(p.pairs))
		appIdx = rng.Intn(len(p.apps))
	}
	pair := p.pairs[pairIdx]
	src := p.srcPrefixes[pair[0]]
	dst := p.dstPrefixes[pair[1]]

	// FW rules frequently wildcard the source entirely.
	if !(pers == FW && rng.Intn(3) == 0) {
		m = m.WithMaskedField(flow.FieldIPSrc, src.addr, flow.PrefixMask(flow.FieldIPSrc, src.plen))
	}
	m = m.WithMaskedField(flow.FieldIPDst, dst.addr, flow.PrefixMask(flow.FieldIPDst, dst.plen))

	a := p.apps[appIdx]
	if a.proto >= 0 {
		m = m.WithField(flow.FieldIPProto, uint64(a.proto))
	}
	if a.sport >= 0 {
		m = m.WithField(flow.FieldTpSrc, uint64(a.sport))
	}
	if a.dport >= 0 {
		m = m.WithField(flow.FieldTpDst, uint64(a.dport))
	}
	return m
}

// SampleKey synthesises a concrete flow key matching rule r, with
// unconstrained bits drawn from rng. The traffic generator uses it to turn
// selected rules into packets.
func SampleKey(r Rule, rng *rand.Rand) flow.Key {
	k := r.Match.Key
	for f := flow.FieldID(0); f < flow.NumFields; f++ {
		free := r.Match.Mask[f] ^ f.MaxValue()
		if free != 0 {
			k = k.WithMasked(f, rng.Uint64(), free)
		}
	}
	// Protocol and eth_type should look like real traffic even when the
	// rule wildcards them.
	if r.Match.Mask[flow.FieldIPProto] == 0 {
		protos := []uint64{6, 17}
		k = k.With(flow.FieldIPProto, protos[rng.Intn(2)])
	}
	k = k.With(flow.FieldEthType, 0x0800)
	return k
}
