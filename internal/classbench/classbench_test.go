package classbench

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

func TestGenerateCountAndUniqueness(t *testing.T) {
	for _, pers := range []Personality{ACL, FW, IPC} {
		rules := Generate(Config{Personality: pers, Seed: 1, NumRules: 5000})
		if len(rules) != 5000 {
			t.Fatalf("%v: generated %d rules", pers, len(rules))
		}
		seen := make(map[flow.Match]bool)
		for _, r := range rules {
			if seen[r.Match] {
				t.Fatalf("%v: duplicate rule %v", pers, r.Match)
			}
			seen[r.Match] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Personality: ACL, Seed: 7, NumRules: 1000})
	b := Generate(Config{Personality: ACL, Seed: 7, NumRules: 1000})
	for i := range a {
		if !a[i].Match.Equal(b[i].Match) || a[i].Priority != b[i].Priority {
			t.Fatalf("rule %d differs across runs", i)
		}
	}
	c := Generate(Config{Personality: ACL, Seed: 8, NumRules: 1000})
	same := 0
	for i := range a {
		if a[i].Match.Equal(c[i].Match) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical rulesets")
	}
}

func TestRulesUseFiveTupleOnly(t *testing.T) {
	rules := Generate(Config{Personality: ACL, Seed: 2, NumRules: 2000})
	allowed := flow.NewFieldSet(TupleFields...)
	for _, r := range rules {
		if extra := r.Match.Fields().Intersect(allowed ^ flow.AllFields); !extra.Empty() {
			t.Fatalf("rule constrains non-5-tuple fields %v: %v", extra, r.Match)
		}
		if !r.Match.Fields().Contains(flow.FieldIPDst) {
			t.Fatalf("rule must constrain ip_dst: %v", r.Match)
		}
	}
}

func TestMoreSpecificRulesRankHigher(t *testing.T) {
	rules := Generate(Config{Personality: ACL, Seed: 3, NumRules: 2000})
	for _, r := range rules {
		base := r.Match.Mask.BitCount() * 1000
		if r.Priority < base || r.Priority >= base+1000 {
			t.Fatalf("priority %d inconsistent with %d mask bits", r.Priority, r.Match.Mask.BitCount())
		}
	}
}

func TestSharingCurveShape(t *testing.T) {
	// The Figure 4 property: sharing increases monotonically as the
	// sub-tuple shrinks, with near-unique full 5-tuples and sub-tuple
	// sharing orders of magnitude higher at k=1.
	rules := Generate(Config{Personality: ACL, Seed: 4, NumRules: 20000})
	sh := Sharing(rules)
	for k := 1; k < 5; k++ {
		if sh[k] < sh[k+1] {
			t.Errorf("sharing not monotone: sh[%d]=%.2f < sh[%d]=%.2f", k, sh[k], k+1, sh[k+1])
		}
	}
	if sh[5] > 3 {
		t.Errorf("full 5-tuple sharing = %.2f, want ~1", sh[5])
	}
	if sh[1] < 50 {
		t.Errorf("single-field sharing = %.2f, want ≫ 1", sh[1])
	}
}

func TestRuleWeightsFavorSharedTuples(t *testing.T) {
	rules := Generate(Config{Personality: ACL, Seed: 5, NumRules: 5000})
	w := RuleWeights(rules)
	if len(w) != len(rules) {
		t.Fatalf("weights length %d", len(w))
	}
	var min, max float64
	min, max = w[0], w[0]
	for _, x := range w {
		if x <= 0 {
			t.Fatal("weights must be positive")
		}
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max <= min {
		t.Error("weights should be skewed, all equal")
	}
}

func TestSampleKeyMatchesItsRule(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rules := Generate(Config{Personality: FW, Seed: 6, NumRules: 3000})
	for _, r := range rules {
		for i := 0; i < 3; i++ {
			k := SampleKey(r, rng)
			if !r.Match.Matches(k) {
				t.Fatalf("sampled key %s does not match its rule %v", k, r.Match)
			}
			if k.Get(flow.FieldEthType) != 0x0800 {
				t.Fatal("sampled key must be IPv4")
			}
		}
	}
}

func TestPoolScaleControlsSharing(t *testing.T) {
	lo := Generate(Config{Personality: ACL, Seed: 9, NumRules: 8000})
	hi := Generate(Config{Personality: ACL, Seed: 9, NumRules: 8000, PoolScale: 4})
	if len(lo) != 8000 || len(hi) != 8000 {
		t.Fatalf("generation fell short: %d / %d", len(lo), len(hi))
	}
	shLo, shHi := Sharing(lo), Sharing(hi)
	if shLo[2] <= shHi[2] {
		t.Errorf("smaller pools must share more: %.2f vs %.2f", shLo[2], shHi[2])
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if rules := Generate(Config{NumRules: 0}); rules != nil {
		t.Error("zero rules should yield nil")
	}
	rules := Generate(Config{Personality: IPC, Seed: 1, NumRules: 1})
	if len(rules) != 1 {
		t.Errorf("got %d", len(rules))
	}
	if Personality(9).String() == "" {
		t.Error("unknown personality string")
	}
}
