package telemetry

import (
	"errors"
	"sync"
	"testing"
)

func TestTracerDisabled(t *testing.T) {
	tr := NewTracer(0, 8)
	for i := 0; i < 100; i++ {
		if tr.Start() != nil {
			t.Fatal("disabled tracer must never sample")
		}
	}
	if tr.Sampled() != 0 {
		t.Errorf("sampled = %d", tr.Sampled())
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(10, 64)
	sampled := 0
	for i := 0; i < 1000; i++ {
		if b := tr.Start(); b != nil {
			sampled++
			b.Finish("output:1", true, false, nil)
		}
	}
	if sampled != 100 {
		t.Errorf("sampled %d of 1000, want exactly 100 at 1-in-10", sampled)
	}
	if tr.Sampled() != 100 {
		t.Errorf("Sampled() = %d", tr.Sampled())
	}
}

func TestTracerSetSampling(t *testing.T) {
	tr := NewTracer(0, 8)
	tr.SetSampling(1)
	if tr.SampleEvery() != 1 {
		t.Errorf("SampleEvery = %d", tr.SampleEvery())
	}
	if tr.Start() == nil {
		t.Error("1-in-1 sampling must sample every packet")
	}
	tr.SetSampling(-5) // clamps to disabled
	if tr.SampleEvery() != 0 || tr.Start() != nil {
		t.Error("negative rate must disable sampling")
	}
}

func TestTraceBuilderStages(t *testing.T) {
	tr := NewTracer(1, 8)
	b := tr.Start()
	if b == nil {
		t.Fatal("expected sample")
	}
	b.SetKey("ip_src=10.0.0.1")
	b.SetWorker("3")
	b.Begin("microflow")
	b.End(false)
	b.Begin("gigaflow")
	b.End(true)
	b.Note("ltm-table", 2, 5, 7)
	b.Finish("output:4", true, false, nil)

	got := tr.Recent(0)
	if len(got) != 1 {
		t.Fatalf("recent = %d traces", len(got))
	}
	trace := got[0]
	if trace.Key != "ip_src=10.0.0.1" || trace.Worker != "3" || !trace.CacheHit {
		t.Errorf("trace = %+v", trace)
	}
	if trace.Seq != 1 {
		t.Errorf("seq = %d", trace.Seq)
	}
	if len(trace.Stages) != 3 {
		t.Fatalf("stages = %+v", trace.Stages)
	}
	if trace.Stages[0].Name != "microflow" || trace.Stages[0].Hit {
		t.Errorf("stage 0 = %+v", trace.Stages[0])
	}
	if trace.Stages[0].Table != -1 || trace.Stages[0].Tag != -1 {
		t.Errorf("timed stage must carry -1 table/tag markers: %+v", trace.Stages[0])
	}
	if trace.Stages[1].Name != "gigaflow" || !trace.Stages[1].Hit {
		t.Errorf("stage 1 = %+v", trace.Stages[1])
	}
	s := trace.Stages[2]
	if s.Name != "ltm-table" || s.Table != 2 || s.Tag != 5 || s.Priority != 7 {
		t.Errorf("stage 2 = %+v", s)
	}
	if trace.TotalNs < 0 {
		t.Errorf("total = %d", trace.TotalNs)
	}
}

func TestTraceFinishError(t *testing.T) {
	tr := NewTracer(1, 4)
	b := tr.Start()
	b.Finish("", false, false, errors.New("install failed"))
	if got := tr.Recent(1)[0].Err; got != "install failed" {
		t.Errorf("err = %q", got)
	}
}

func TestRingWraparoundAndOrdering(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		b := tr.Start()
		b.SetKey(string(rune('a' + i)))
		b.Finish("", false, false, nil)
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// Newest first: j, i, h, g with ascending seq in reverse.
	wantKeys := []string{"j", "i", "h", "g"}
	for i, trc := range got {
		if trc.Key != wantKeys[i] {
			t.Errorf("recent[%d].Key = %q, want %q", i, trc.Key, wantKeys[i])
		}
	}
	if got[0].Seq != 10 || got[3].Seq != 7 {
		t.Errorf("seqs = %d..%d, want 10..7", got[0].Seq, got[3].Seq)
	}
	// Capped fetch.
	if n := len(tr.Recent(2)); n != 2 {
		t.Errorf("Recent(2) = %d traces", n)
	}
}

// TestTracerConcurrent exercises sampling and recording from many
// goroutines; run with -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(3, 32)
	var wg sync.WaitGroup
	const workers = 8
	const iters = 900
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if b := tr.Start(); b != nil {
					b.Begin("gigaflow")
					b.End(true)
					b.Finish("output:1", true, false, nil)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Recent(8)
			tr.SampleEvery()
		}
	}()
	wg.Wait()
	<-done
	if got, want := tr.Sampled(), uint64(workers*iters/3); got != want {
		t.Errorf("sampled = %d, want %d", got, want)
	}
	// Sequence numbers in the ring must be unique.
	seen := map[uint64]bool{}
	for _, trc := range tr.Recent(0) {
		if seen[trc.Seq] {
			t.Errorf("duplicate seq %d", trc.Seq)
		}
		seen[trc.Seq] = true
	}
}
