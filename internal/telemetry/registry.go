// Package telemetry is the repo's stdlib-only observability layer: a
// concurrent metrics registry (atomic counters, gauges, and log2-bucketed
// histograms with label support, exposed in Prometheus text and JSON
// formats) and a sampling per-packet traversal tracer keeping a bounded
// ring of recent traces.
//
// The layer is built for a hot packet path: counters and gauges are single
// atomic words, histograms are arrays of atomic buckets sharing
// internal/stats.Histogram's log2 layout, and the tracer allocates only
// for the 1-in-N packets actually sampled — with sampling disabled the
// whole fast path costs one nil check.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gigaflow/internal/stats"
)

// Kind distinguishes the metric families a Registry holds.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a log2-bucketed distribution.
	KindHistogram
)

// String names the kind as Prometheus spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// seriesSep joins label values into a series key; label values never
// contain it in practice (it is not valid UTF-8 text).
const seriesSep = "\xff"

// Family is one named metric with a fixed kind and label schema, holding
// one series per distinct combination of label values.
type Family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu     sync.RWMutex
	series map[string]any // *Counter | *Gauge | *Histogram
}

func (f *Family) key(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, seriesSep)
}

// with returns the series for the given label values, creating it lazily.
func (f *Family) with(values []string) any {
	k := f.key(values)
	f.mu.RLock()
	m, ok := f.series[k]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[k]; ok {
		return m
	}
	switch f.kind {
	case KindCounter:
		m = new(Counter)
	case KindGauge:
		m = new(Gauge)
	default:
		m = new(Histogram)
	}
	f.series[k] = m
	return m
}

// Registry is a concurrent collection of metric families. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*Family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// family registers (or re-fetches) a family; registering the same name
// with a different kind or label schema is a programming error and panics.
func (r *Registry) family(name, help string, kind Kind, labels []string) *Family {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.fams[name]; !ok {
			f = &Family{name: name, help: help, kind: kind,
				labels: append([]string(nil), labels...),
				series: make(map[string]any)}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic("telemetry: conflicting registration of " + name)
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic("telemetry: conflicting labels for " + name)
		}
	}
	return f
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a counter family with the given label
// keys.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labels)}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a gauge family with the given label keys.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labels)}
}

// Histogram registers (or returns) an unlabelled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramVec(name, help).With()
}

// HistogramVec registers (or returns) a histogram family with the given
// label keys.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labels)}
}

// CounterVec resolves label values to Counter series.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values, creating it lazily.
// Hot paths should resolve once and retain the *Counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).(*Counter) }

// GaugeVec resolves label values to Gauge series.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values, creating it lazily.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).(*Gauge) }

// HistogramVec resolves label values to Histogram series.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values, creating it
// lazily.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).(*Histogram) }

// Counter is a monotonically increasing integer count. All methods are
// safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//gf:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//gf:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set stores an absolute value. It exists for scrape-time mirroring of
// counters maintained elsewhere (cache Stats structs); the caller is
// responsible for monotonicity.
//
//gf:hotpath
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down. All methods are safe
// for concurrent use and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//gf:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop).
//
//gf:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrent log2-bucketed histogram sharing
// internal/stats.Histogram's bucket layout (bucket i covers
// [2^i, 2^(i+1)); values below 1 land in bucket 0). Observations are two
// atomic adds plus a CAS for the running sum.
type Histogram struct {
	buckets [stats.NumBuckets]atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
//
//gf:hotpath
func (h *Histogram) Observe(v float64) {
	h.buckets[stats.BucketIndex(v)].Add(1)
	h.addSum(v)
}

//gf:hotpath
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveHistogram folds an accumulated stats.Histogram into h, so batch
// results (simulator runs, benchmarks) export through the same registry.
func (h *Histogram) ObserveHistogram(src *stats.Histogram) {
	b := src.Buckets()
	for i, c := range b {
		if c > 0 {
			h.buckets[i].Add(c)
		}
	}
	h.addSum(src.Sum())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets [stats.NumBuckets]uint64
}

// Snapshot copies the current buckets and sum. Buckets are read
// individually, so a snapshot taken under concurrent writes may be off by
// in-flight observations; Count always equals the sum of Buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Count }

// Mean reports the mean observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile from the buckets using the shared
// bucket-midpoint math in stats.QuantileOf.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return stats.QuantileOf(s.Buckets[:], s.Count, q, stats.BucketBounds)
}

// --- Exposition -------------------------------------------------------

// snapshotFamilies returns the families sorted by name with their series
// keys sorted, for deterministic output.
func (r *Registry) snapshotFamilies() []*Family {
	r.mu.RLock()
	fams := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *Family) sortedSeries() ([]string, []any) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ms := make([]any, len(keys))
	for i, k := range keys {
		ms[i] = f.series[k]
	}
	return keys, ms
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels formats {k="v",...}; extra appends pre-rendered pairs (the
// histogram le label).
func renderLabels(keys []string, seriesKey string, extra string) string {
	var values []string
	if seriesKey != "" || len(keys) > 0 {
		values = strings.Split(seriesKey, seriesSep)
	}
	var b strings.Builder
	for i, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		keys, ms := f.sortedSeries()
		for i, k := range keys {
			switch m := ms[i].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labels, k, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, k, ""), formatValue(m.Value()))
			case *Histogram:
				s := m.Snapshot()
				var cum uint64
				for bi, c := range s.Buckets {
					if c == 0 {
						continue
					}
					cum += c
					_, hi := stats.BucketBounds(bi)
					if math.IsInf(hi, 1) {
						continue // the top bucket is the +Inf line below
					}
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						renderLabels(f.labels, k, fmt.Sprintf("le=%q", formatValue(hi))), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, k, `le="+Inf"`), s.Count)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(f.labels, k, ""), formatValue(s.Sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(f.labels, k, ""), s.Count)
			}
		}
	}
	return nil
}

// jsonSeries is one series in the JSON exposition.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	Sum    *float64          `json:"sum,omitempty"`
	Mean   *float64          `json:"mean,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
}

// jsonFamily is one metric family in the JSON exposition.
type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help"`
	Type   string       `json:"type"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON array of metric families;
// histograms are summarised as count/sum/mean/p50/p99.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonFamily
	for _, f := range r.snapshotFamilies() {
		jf := jsonFamily{Name: f.name, Help: f.help, Type: f.kind.String()}
		keys, ms := f.sortedSeries()
		for i, k := range keys {
			var js jsonSeries
			if len(f.labels) > 0 {
				values := strings.Split(k, seriesSep)
				js.Labels = make(map[string]string, len(f.labels))
				for li, lk := range f.labels {
					js.Labels[lk] = values[li]
				}
			}
			switch m := ms[i].(type) {
			case *Counter:
				v := float64(m.Value())
				js.Value = &v
			case *Gauge:
				v := m.Value()
				js.Value = &v
			case *Histogram:
				s := m.Snapshot()
				mean, p50, p99 := s.Mean(), s.Quantile(0.5), s.Quantile(0.99)
				js.Count, js.Sum, js.Mean, js.P50, js.P99 = &s.Count, &s.Sum, &mean, &p50, &p99
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry: Prometheus text by default, JSON with
// ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
