package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one step of a packet's traversal trace: a cache-tier lookup, a
// per-LTM-table match, the slowpath pipeline walk, or rule installation.
type Stage struct {
	// Name identifies the stage: "microflow", "gigaflow", "megaflow",
	// "ltm-table", "slowpath", "partition+install".
	Name string `json:"name"`
	// Table is the LTM cache table index for "ltm-table" stages; -1 on
	// stages that are not per-table annotations (0 is a real index, so it
	// cannot double as "unset").
	Table int `json:"table"`
	// Tag is the pipeline-table tag the matched entry carried; -1 when not
	// applicable.
	Tag int `json:"tag"`
	// Priority is the matched entry's sub-traversal span ρ; -1 when not
	// applicable.
	Priority int `json:"priority"`
	// Hit reports whether the stage's lookup matched.
	Hit bool `json:"hit,omitempty"`
	// DurNs is the stage's wall-clock duration; 0 for annotation stages
	// recorded after the fact (per-table match details).
	DurNs int64 `json:"dur_ns,omitempty"`
}

// Trace is the record of one sampled packet's walk through the vSwitch.
type Trace struct {
	Seq          uint64  `json:"seq"`
	StartUnixNs  int64   `json:"start_unix_ns"`
	Key          string  `json:"key"`
	Worker       string  `json:"worker,omitempty"`
	CacheHit     bool    `json:"cache_hit"`
	MicroflowHit bool    `json:"microflow_hit,omitempty"`
	Verdict      string  `json:"verdict,omitempty"`
	Err          string  `json:"error,omitempty"`
	TotalNs      int64   `json:"total_ns"`
	Stages       []Stage `json:"stages"`
}

// Tracer samples 1-in-N packets and keeps the most recent traces in a
// bounded ring. Start is safe for concurrent use from many workers; with
// sampling disabled (every == 0) it is a single atomic load and never
// allocates.
type Tracer struct {
	every   atomic.Uint64
	n       atomic.Uint64
	sampled atomic.Uint64

	mu   sync.Mutex
	ring []Trace
	pos  int
	fill int
	seq  uint64
}

// NewTracer creates a tracer sampling one packet in sampleEvery (0
// disables sampling entirely) with a ring of buffer recent traces
// (default 256).
func NewTracer(sampleEvery, buffer int) *Tracer {
	if buffer <= 0 {
		buffer = 256
	}
	t := &Tracer{ring: make([]Trace, buffer)}
	if sampleEvery > 0 {
		t.every.Store(uint64(sampleEvery))
	}
	return t
}

// SetSampling changes the sampling rate at runtime (0 disables).
func (t *Tracer) SetSampling(sampleEvery int) {
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	t.every.Store(uint64(sampleEvery))
}

// SampleEvery reports the current 1-in-N rate (0 when disabled).
func (t *Tracer) SampleEvery() int { return int(t.every.Load()) }

// Sampled reports how many traces have been recorded since creation.
func (t *Tracer) Sampled() uint64 { return t.sampled.Load() }

// Start returns a builder when this packet is sampled and nil otherwise.
// The caller guards every recording call on the returned pointer, so an
// unsampled packet pays one atomic increment and no allocation; only
// sampled packets reach the allocating newBuilder.
//
//gf:hotpath
func (t *Tracer) Start() *TraceBuilder {
	every := t.every.Load()
	if every == 0 || t.n.Add(1)%every != 0 {
		return nil
	}
	return t.newBuilder()
}

// newBuilder stamps the wall clock and allocates the builder for a
// sampled packet. Cold by construction: called once per 1-in-N packets.
//
//gf:hotpath-safe runs once per sampled packet; stamps the wall clock and allocates the builder by contract
func (t *Tracer) newBuilder() *TraceBuilder {
	now := time.Now()
	return &TraceBuilder{
		tracer: t,
		start:  now,
		tr:     Trace{StartUnixNs: now.UnixNano()},
	}
}

// Recent returns up to max traces, newest first (all buffered traces when
// max <= 0).
func (t *Tracer) Recent(max int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.fill
	if max > 0 && max < n {
		n = max
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.pos - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

func (t *Tracer) record(tr Trace) {
	t.mu.Lock()
	t.seq++
	tr.Seq = t.seq
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.fill < len(t.ring) {
		t.fill++
	}
	t.mu.Unlock()
	t.sampled.Add(1)
}

// TraceBuilder accumulates one packet's trace. It is used by a single
// goroutine (the worker processing the packet) and pushed into the
// tracer's ring on Finish.
type TraceBuilder struct {
	tracer     *Tracer
	start      time.Time
	stageStart time.Time
	tr         Trace
}

// SetKey records the packet's flow key (rendered lazily by the caller so
// unsampled packets never pay for the string).
func (b *TraceBuilder) SetKey(k string) { b.tr.Key = k }

// SetWorker records the worker that processed the packet.
func (b *TraceBuilder) SetWorker(w string) { b.tr.Worker = w }

// Begin opens a timed stage.
func (b *TraceBuilder) Begin(name string) {
	b.tr.Stages = append(b.tr.Stages, Stage{Name: name, Table: -1, Tag: -1, Priority: -1})
	b.stageStart = time.Now()
}

// End closes the most recently opened stage, recording its duration and
// hit flag.
func (b *TraceBuilder) End(hit bool) {
	s := &b.tr.Stages[len(b.tr.Stages)-1]
	s.DurNs = time.Since(b.stageStart).Nanoseconds()
	s.Hit = hit
}

// Note appends an annotation stage (no duration): one matched LTM table
// with its index, tag, and priority.
func (b *TraceBuilder) Note(name string, table, tag, priority int) {
	b.tr.Stages = append(b.tr.Stages, Stage{
		Name: name, Table: table, Tag: tag, Priority: priority, Hit: true,
	})
}

// Finish stamps the outcome and pushes the trace into the ring.
func (b *TraceBuilder) Finish(verdict string, cacheHit, microflowHit bool, err error) {
	b.tr.Verdict = verdict
	b.tr.CacheHit = cacheHit
	b.tr.MicroflowHit = microflowHit
	if err != nil {
		b.tr.Err = err.Error()
	}
	b.tr.TotalNs = time.Since(b.start).Nanoseconds()
	b.tracer.record(b.tr)
}
