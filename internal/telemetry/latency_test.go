package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	within := func(name string, got, want float64) {
		t.Helper()
		if got < want*0.92 || got > want*1.08 {
			t.Errorf("%s = %g, want ~%g", name, got, want)
		}
	}
	within("P50", s.P50, 500)
	within("P90", s.P90, 900)
	within("P99", s.P99, 990)
	within("P999", s.P999, 999)
	if s.MaxNs != 1000 {
		t.Errorf("MaxNs = %d, want 1000", s.MaxNs)
	}
	if s.MeanNs < 495 || s.MeanNs > 506 {
		t.Errorf("MeanNs = %g, want ~500.5", s.MeanNs)
	}
}

func TestLatencyHistogramObserveNMergeReset(t *testing.T) {
	var a, b, n LatencyHistogram
	for i := 0; i < 10; i++ {
		a.Observe(100)
	}
	n.ObserveN(100, 10)
	if a.Snapshot() != n.Snapshot() {
		t.Errorf("ObserveN(100,10) != 10×Observe(100): %+v vs %+v", n.Snapshot(), a.Snapshot())
	}
	b.Observe(5000)
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 11 || s.MaxNs != 5000 {
		t.Errorf("after Merge: Count=%d MaxNs=%d, want 11/5000", s.Count, s.MaxNs)
	}
	a.Reset()
	if s := a.Snapshot(); s.Count != 0 || s.MaxNs != 0 {
		t.Errorf("after Reset: %+v, want zero", s)
	}
	// Negative observations clamp rather than corrupt.
	a.Observe(-50)
	if s := a.Snapshot(); s.Count != 1 || s.MaxNs != 0 {
		t.Errorf("negative observe: %+v", s)
	}
}

// TestFlightRecorderWrapOrdering drives more records than the ring holds
// and checks overwrite-on-wrap semantics and newest-first dumps.
func TestFlightRecorderWrapOrdering(t *testing.T) {
	r := NewLatencyRecorder(8, 0)
	if r.RingSize() != 8 {
		t.Fatalf("RingSize = %d, want 8", r.RingSize())
	}
	const batches, perBatch = 5, 4 // 20 records through an 8-slot ring
	for b := 0; b < batches; b++ {
		r.BeginBatch(int64(1000 * (b + 1)))
		for i := 0; i < perBatch; i++ {
			r.Hit(TierMicroflow, uint64(b*perBatch+i))
		}
		r.EndBatch()
	}
	if r.Seq() != batches*perBatch {
		t.Fatalf("Seq = %d, want %d", r.Seq(), batches*perBatch)
	}
	recs := r.Recent(0)
	if len(recs) != 8 {
		t.Fatalf("Recent(0) = %d records, want ring size 8", len(recs))
	}
	// Newest first: key hashes count down from the last written record,
	// batch ids are non-increasing, timestamps non-increasing within a batch.
	for i, rec := range recs {
		wantHash := uint64(batches*perBatch - 1 - i)
		if rec.KeyHash != wantHash {
			t.Errorf("recs[%d].KeyHash = %d, want %d", i, rec.KeyHash, wantHash)
		}
		if rec.Flags&FlightEstimated == 0 {
			t.Errorf("recs[%d] missing FlightEstimated", i)
		}
		if rec.LatNs < 0 {
			t.Errorf("recs[%d].LatNs = %d, want >= 0", i, rec.LatNs)
		}
		if i > 0 {
			if recs[i-1].Batch < rec.Batch {
				t.Errorf("batch order violated at %d: %d then %d", i, rec.Batch, recs[i-1].Batch)
			}
			if recs[i-1].Batch == rec.Batch && recs[i-1].TS < rec.TS {
				t.Errorf("timestamp order violated at %d", i)
			}
		}
	}
	if got := r.Recent(3); len(got) != 3 {
		t.Errorf("Recent(3) = %d records, want 3", len(got))
	}
	if got := r.Histogram(TierMicroflow).Count(); got != batches*perBatch {
		t.Errorf("microflow histogram count = %d, want %d", got, batches*perBatch)
	}
	r.Reset()
	if r.Seq() != 0 || len(r.Recent(0)) != 0 || r.Histogram(TierMicroflow).Count() != 0 {
		t.Errorf("Reset left state behind: seq=%d", r.Seq())
	}
}

// TestFlightRecorderRunEstimation: hits in one run share a uniform
// latency estimate anchored at the batch's wall clock.
func TestFlightRecorderRunEstimation(t *testing.T) {
	r := NewLatencyRecorder(64, 0)
	const anchor = int64(1_000_000)
	r.BeginBatch(anchor)
	r.Hit(TierMicroflow, 1)
	r.Hit(TierMicroflow, 2)
	r.Hit(TierGigaflow, 3)
	r.EndBatch()
	recs := r.Recent(0)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, rec := range recs[1:] {
		if rec.LatNs != recs[0].LatNs {
			t.Errorf("run latencies differ: recs[%d]=%d vs %d", i+1, rec.LatNs, recs[0].LatNs)
		}
	}
	for _, rec := range recs {
		if rec.TS < anchor {
			t.Errorf("TS %d before anchor %d", rec.TS, anchor)
		}
		if rec.Batch != 1 {
			t.Errorf("Batch = %d, want 1", rec.Batch)
		}
	}
	if got := r.Histogram(TierMicroflow).Count(); got != 2 {
		t.Errorf("microflow count = %d, want 2", got)
	}
	if got := r.Histogram(TierGigaflow).Count(); got != 1 {
		t.Errorf("gigaflow count = %d, want 1", got)
	}
}

// TestFlightRecorderCold: cold events are stamped exactly, carry their
// flags, and close the preceding hit run; traced events stay out of the
// histograms.
func TestFlightRecorderCold(t *testing.T) {
	r := NewLatencyRecorder(64, 0)
	r.BeginBatch(5000)
	r.Hit(TierMicroflow, 1)
	r.ColdBegin()
	spin(time.Microsecond)
	r.Cold(TierSlowpath, 42, FlightMiss|FlightInstall)
	r.EndBatch() // no trailing hits: must be a no-op
	recs := r.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	cold := recs[0] // newest first
	if cold.Tier != TierSlowpath || cold.KeyHash != 42 {
		t.Fatalf("cold record = %+v", cold)
	}
	if cold.Flags != FlightMiss|FlightInstall {
		t.Errorf("cold flags = %#x, want miss|install", cold.Flags)
	}
	if cold.Flags&FlightEstimated != 0 {
		t.Errorf("cold record must not be estimated")
	}
	if cold.LatNs < int32(time.Microsecond) {
		t.Errorf("cold LatNs = %d, want >= 1000 (spun 1µs)", cold.LatNs)
	}
	if got := r.Histogram(TierSlowpath).Count(); got != 1 {
		t.Errorf("slowpath count = %d, want 1", got)
	}
	if got := r.Histogram(TierMicroflow).Count(); got != 1 {
		t.Errorf("microflow count = %d, want 1 (run closed by ColdBegin)", got)
	}

	// Traced events land in the ring but not the histograms.
	before := r.Histogram(TierGigaflow).Count()
	r.ColdBegin()
	r.Cold(TierGigaflow, 7, FlightTraced)
	if got := r.Histogram(TierGigaflow).Count(); got != before {
		t.Errorf("traced event folded into histogram: %d -> %d", before, got)
	}
	if got := r.Recent(1)[0]; got.Flags&FlightTraced == 0 || got.KeyHash != 7 {
		t.Errorf("traced record missing from ring: %+v", got)
	}
}

// TestFlightRecorderDeferred: upcall completions carry FlightDeferred,
// keep the queue wait (ParkNs) separate from the traversal time (LatNs),
// close the preceding hit run, and feed only the traversal time into the
// tier histogram.
func TestFlightRecorderDeferred(t *testing.T) {
	r := NewLatencyRecorder(64, 0)
	r.BeginBatch(9000)
	r.Hit(TierMicroflow, 1)
	r.Deferred(TierSlowpath, 77, FlightMiss|FlightInstall, 2500, 40000)
	r.EndBatch() // no trailing hits: must be a no-op
	recs := r.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	def := recs[0] // newest first
	if def.Tier != TierSlowpath || def.KeyHash != 77 {
		t.Fatalf("deferred record = %+v", def)
	}
	if def.Flags != FlightMiss|FlightInstall|FlightDeferred {
		t.Errorf("flags = %#x, want miss|install|deferred", def.Flags)
	}
	if def.LatNs != 2500 || def.ParkNs != 40000 {
		t.Errorf("LatNs=%d ParkNs=%d, want 2500/40000", def.LatNs, def.ParkNs)
	}
	if got := r.Histogram(TierSlowpath).Count(); got != 1 {
		t.Errorf("slowpath count = %d, want 1", got)
	}
	if got := r.Histogram(TierMicroflow).Count(); got != 1 {
		t.Errorf("microflow count = %d, want 1 (run closed by Deferred)", got)
	}
	if max := r.Histogram(TierSlowpath).Snapshot().MaxNs; max < 2048 || max > 4096 {
		t.Errorf("slowpath max = %d, want the 2500ns traversal alone (park excluded)", max)
	}
	// Negative spans (clock skew between engine stamps) clamp to zero.
	r.Deferred(TierSlowpath, 78, FlightMiss, -5, -7)
	if got := r.Recent(1)[0]; got.LatNs != 0 || got.ParkNs != 0 {
		t.Errorf("negative spans not clamped: %+v", got)
	}
}

// TestFlightRecorderParkScrub: ring slots are reused, so records written
// over an old Deferred occupant must not inherit its ParkNs — neither
// exactly-stamped cold events nor run-resolved hits.
func TestFlightRecorderParkScrub(t *testing.T) {
	r := NewLatencyRecorder(2, 0) // two slots: everything wraps fast
	r.BeginBatch(1000)
	r.Deferred(TierSlowpath, 1, FlightMiss, 100, 9999)
	r.Deferred(TierSlowpath, 2, FlightMiss, 100, 9999)
	// Slot 0 is reused by a cold event.
	r.ColdBegin()
	r.Cold(TierSlowpath, 3, FlightMiss)
	if got := r.Recent(1)[0]; got.ParkNs != 0 {
		t.Errorf("cold record inherited ParkNs=%d from the reused slot", got.ParkNs)
	}
	// Slot 1 is reused by a hit; its dump-time resolution must scrub too.
	r.Hit(TierMicroflow, 4)
	r.EndBatch()
	if got := r.Recent(1)[0]; got.ParkNs != 0 || got.Flags&FlightEstimated == 0 {
		t.Errorf("resolved hit inherited ParkNs: %+v", got)
	}
}

// TestFlightRecorderSpike: a latency past the threshold snapshots the
// ring window around the spike.
func TestFlightRecorderSpike(t *testing.T) {
	r := NewLatencyRecorder(16, time.Microsecond)
	r.BeginBatch(1)
	r.Hit(TierMicroflow, 1)
	r.ColdBegin()
	spin(5 * time.Microsecond)
	r.Cold(TierSlowpath, 99, FlightMiss)
	// Scheduler or cold-start jitter can push the hit run itself over the
	// threshold too, so require at least the cold spike rather than
	// exactly one capture.
	if r.Spikes() < 1 {
		t.Fatalf("Spikes = %d, want >= 1", r.Spikes())
	}
	caps := r.Captures()
	if len(caps) == 0 {
		t.Fatalf("no captures retained")
	}
	c := caps[len(caps)-1] // the cold spike fired last
	if c.TriggerNs < int64(time.Microsecond) {
		t.Errorf("TriggerNs = %d, want >= 1000", c.TriggerNs)
	}
	if len(c.Records) == 0 {
		t.Fatalf("capture has no records")
	}
	last := c.Records[len(c.Records)-1]
	if last.KeyHash != 99 || last.Tier != TierSlowpath {
		t.Errorf("capture trigger record = %+v, want the spiking cold event", last)
	}
}

func TestTierJSONRoundTrip(t *testing.T) {
	rec := FlightRecord{TS: 1, KeyHash: 2, LatNs: 3, Batch: 4, Tier: TierGigaflow, Flags: FlightMiss}
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back FlightRecord
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Errorf("round trip: %+v != %+v", back, rec)
	}
	var bad Tier
	if err := bad.UnmarshalJSON([]byte(`"warp"`)); err == nil {
		t.Errorf("unknown tier name unmarshalled without error")
	}
}

// spin busy-waits (sleeping would be imprecise at µs scales and the
// recorder measures monotonic spans, not scheduler naps).
func spin(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}
