package telemetry

import (
	"encoding/json"
	"fmt"

	"gigaflow/internal/stats"
)

// Tier identifies the datapath level that resolved a packet: which cache
// hit, or the slow path on a full miss. Latency histograms and flight
// records are attributed per tier because the tiers differ by orders of
// magnitude (a microflow hit is ~100ns, a slow-path traversal is ~µs) —
// a blended distribution would hide exactly the tail the cache hierarchy
// exists to shrink.
type Tier uint8

const (
	TierMicroflow Tier = iota
	TierGigaflow
	TierMegaflow
	TierSlowpath
	// TierConntrack attributes slow-path work forced by connection-state
	// churn: the packet found a cached entry, but the entry's conntrack
	// epoch was stale and the traversal had to be replayed.
	TierConntrack
	// NumTiers sizes per-tier arrays.
	NumTiers
)

var tierNames = [NumTiers]string{"microflow", "gigaflow", "megaflow", "slowpath", "conntrack"}

// String returns the tier's lowercase name, as used in metric labels and
// JSON documents.
func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// MarshalJSON renders the tier as its name, keeping /debug/flight and
// /latency documents readable without a legend.
func (t Tier) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON accepts a tier name (the MarshalJSON form).
func (t *Tier) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range tierNames {
		if name == s {
			*t = Tier(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown tier %q", s)
}

// LatencyHistogram is a log-linear histogram of nanosecond latencies
// (stats.LatBucketIndex layout: 16 linear sub-buckets per octave, ≤6.25%
// relative quantile error). It is deliberately not concurrency-safe:
// each worker owns one per tier and folds observations in on its own
// goroutine, so the hot path pays plain stores — readers snapshot
// through worker control ops, never concurrently.
type LatencyHistogram struct {
	counts [stats.LatNumBuckets]uint64
	count  uint64
	sum    int64
	max    int64
}

// Observe records one latency. Negative values clamp to zero.
//
//gf:hotpath
func (h *LatencyHistogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[stats.LatBucketIndex(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// ObserveN records n observations of the same latency at once — the
// run-estimation path attributes a shared per-packet estimate to every
// packet of a hit run with a single call.
//
//gf:hotpath
func (h *LatencyHistogram) ObserveN(ns int64, n uint64) {
	if n == 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.counts[stats.LatBucketIndex(ns)] += n
	h.count += n
	h.sum += ns * int64(n)
	if ns > h.max {
		h.max = ns
	}
}

// Count reports the number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.count }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) via the shared bucket
// math in stats.QuantileOf over the log-linear layout.
func (h *LatencyHistogram) Quantile(q float64) float64 {
	return stats.QuantileOf(h.counts[:], h.count, q, stats.LatBucketBounds)
}

// Merge folds o's observations into h (bucket-wise; max of maxes).
func (h *LatencyHistogram) Merge(o *LatencyHistogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram.
func (h *LatencyHistogram) Reset() { *h = LatencyHistogram{} }

// LatencySnapshot is a JSON-ready percentile ladder computed from a
// LatencyHistogram at snapshot time.
type LatencySnapshot struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	MaxNs  int64   `json:"max_ns"`
	P50    float64 `json:"p50_ns"`
	P90    float64 `json:"p90_ns"`
	P99    float64 `json:"p99_ns"`
	P999   float64 `json:"p999_ns"`
}

// Snapshot computes the percentile ladder. Owner-goroutine only, like
// every histogram method.
func (h *LatencyHistogram) Snapshot() LatencySnapshot {
	s := LatencySnapshot{Count: h.count, MaxNs: h.max}
	if h.count == 0 {
		return s
	}
	s.MeanNs = float64(h.sum) / float64(h.count)
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	s.P999 = h.Quantile(0.999)
	return s
}
