package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"

	"gigaflow/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("packets_total", "Packets.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	c.Set(100)
	if c.Value() != 100 {
		t.Errorf("counter after Set = %d, want 100", c.Value())
	}
	// Re-registering the same family returns the same series.
	if r.Counter("packets_total", "Packets.") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "Queue depth.")
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("table_hits_total", "Hits.", "worker", "table")
	a := v.With("0", "1")
	b := v.With("0", "1")
	if a != b {
		t.Error("same label values must resolve to the same series")
	}
	other := v.With("0", "2")
	if a == other {
		t.Error("distinct label values must be distinct series")
	}
	a.Add(7)
	if b.Value() != 7 || other.Value() != 0 {
		t.Errorf("series isolation broken: %d %d", b.Value(), other.Value())
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "h")
	defer func() {
		if recover() == nil {
			t.Error("conflicting kind registration must panic")
		}
	}()
	r.Gauge("x", "h")
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("y", "h", "worker")
	defer func() {
		if recover() == nil {
			t.Error("wrong label value count must panic")
		}
	}()
	v.With("a", "b")
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ns", "Latency.")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", s.Sum)
	}
	if math.Abs(s.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean())
	}
	p50 := s.Quantile(0.5)
	if p50 < 32 || p50 > 96 {
		t.Errorf("p50 = %v, expected in the 64-bucket midpoint range", p50)
	}
	if q := s.Quantile(0.99); q < p50 {
		t.Errorf("p99 %v < p50 %v", q, p50)
	}
}

func TestObserveHistogramFold(t *testing.T) {
	var src stats.Histogram
	for i := 1; i <= 50; i++ {
		src.Add(float64(i))
	}
	r := NewRegistry()
	h := r.Histogram("batch", "Batch results.")
	h.ObserveHistogram(&src)
	s := h.Snapshot()
	if s.Count != 50 {
		t.Errorf("count = %d, want 50", s.Count)
	}
	if math.Abs(s.Sum-src.Sum()) > 1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, src.Sum())
	}
	if s.Buckets != src.Buckets() {
		t.Error("bucket layouts diverge between stats and telemetry histograms")
	}
}

// TestConcurrentWriters hammers every metric type from many goroutines
// while scraping; run with -race.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := string(rune('a' + w))
			c := r.CounterVec("c_total", "h", "w").With(label)
			g := r.GaugeVec("g", "h", "w").With(label)
			h := r.HistogramVec("h_ns", "h", "w").With(label)
			shared := r.Counter("shared_total", "h")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i))
				shared.Inc()
			}
		}()
	}
	// Scrape concurrently with the writers.
	var scrapeWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			var sb strings.Builder
			r.WritePrometheus(&sb)
			sb.Reset()
			r.WriteJSON(&sb)
		}()
	}
	wg.Wait()
	scrapeWG.Wait()

	if got := r.Counter("shared_total", "h").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		label := string(rune('a' + w))
		if got := r.CounterVec("c_total", "h", "w").With(label).Value(); got != iters {
			t.Errorf("c_total{w=%s} = %d, want %d", label, got, iters)
		}
		if got := r.GaugeVec("g", "h", "w").With(label).Value(); got != iters {
			t.Errorf("g{w=%s} = %v, want %d", label, got, iters)
		}
		if got := r.HistogramVec("h_ns", "h", "w").With(label).Count(); got != iters {
			t.Errorf("h_ns{w=%s} count = %d, want %d", label, got, iters)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("gf_packets_total", "Total packets.").Add(42)
	r.GaugeVec("gf_occupancy", "Entries.", "worker", "table").With("0", "1").Set(7)
	h := r.Histogram("gf_latency_ns", "Latency.")
	h.Observe(3) // bucket [2,4) → le="4"
	h.Observe(100)
	h.Observe(math.Exp2(70)) // top bucket → only the +Inf line

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wants := []string{
		"# HELP gf_packets_total Total packets.",
		"# TYPE gf_packets_total counter",
		"gf_packets_total 42",
		"# TYPE gf_occupancy gauge",
		`gf_occupancy{worker="0",table="1"} 7`,
		"# TYPE gf_latency_ns histogram",
		`gf_latency_ns_bucket{le="4"} 1`,
		`gf_latency_ns_bucket{le="128"} 2`,
		`gf_latency_ns_bucket{le="+Inf"} 3`,
		"gf_latency_ns_count 3",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and the +Inf line unique.
	if strings.Count(out, `le="+Inf"`) != 1 {
		t.Errorf("want exactly one +Inf bucket line:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "k").With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if want := `esc_total{k="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaping broken, want %q in:\n%s", want, sb.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h").Add(5)
	r.Histogram("b_ns", "h").Observe(10)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"name": "a_total"`, `"value": 5`, `"count": 1`, `"p50":`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in JSON:\n%s", want, out)
		}
	}
}
