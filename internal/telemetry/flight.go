package telemetry

import (
	"math"
	"time"
)

// Flight-record flags. A record carries the union of what happened to
// its packet; FlightEstimated marks latencies shared out of a hit-run
// span rather than stamped exactly.
const (
	FlightMiss       uint8 = 1 << iota // resolved on the slow path
	FlightInstall                      // slow path installed a cache entry
	FlightInstallErr                   // install attempted and rejected
	FlightEvict                        // the install evicted a resident entry
	FlightTraced                       // packet was diverted to the sampling tracer
	FlightEstimated                    // latency is a run estimate, not an exact stamp
	FlightDeferred                     // miss resolved asynchronously by the upcall engine
)

// FlightRecord is one packet's entry in the flight-recorder ring: 32
// bytes, fixed layout, no pointers, so a ring of thousands costs one
// allocation at construction and nothing per packet.
type FlightRecord struct {
	TS      int64  `json:"ts"`       // wall-clock ns: the batch anchor (estimated hits) or anchor + monotonic offset (cold events)
	KeyHash uint64 `json:"key_hash"` // flow id: microflow probe hash on warm hits, FlowHash elsewhere
	LatNs   int32  `json:"lat_ns"`   // per-packet latency, clamped at ~2.1s
	Batch   uint32 `json:"batch"`    // worker-local batch sequence number
	// ParkNs is the queue-wait a FlightDeferred miss spent parked between
	// upcall enqueue and engine dequeue, separated from the traversal time
	// in LatNs; zero on every other record.
	ParkNs int32 `json:"park_ns,omitempty"`
	Tier   Tier  `json:"tier"`
	Flags  uint8 `json:"flags"`
}

// runInfo is one closed hit run in the side ring: records with sequence
// numbers below endSeq (down to the previous run's endSeq) share ts as
// their timestamp, perNs as their estimated latency, and batch as their
// batch number (a run opens and closes within one worker message, so it
// never spans batches).
type runInfo struct {
	endSeq uint64 // r.seq after the run's last record
	ts     int64  // batch anchor (wall ns) the run ran under
	perNs  int32  // span / packets, clamped
	batch  uint32 // batch the run belongs to
}

// FlightCapture is a spike-triggered snapshot: when a packet's latency
// crosses the recorder's threshold, the ring window leading up to and
// including the spike is copied out, so a p999 outlier comes with the
// events that surrounded it.
type FlightCapture struct {
	Seq       uint64         `json:"seq"`        // ring sequence at the trigger
	TriggerNs int64          `json:"trigger_ns"` // the latency that tripped the capture
	Batch     uint32         `json:"batch"`
	Records   []FlightRecord `json:"records"` // oldest first, trigger last
}

const (
	// DefaultFlightRecords is the per-worker ring size when the
	// configuration leaves it zero. 1024 records is 32KB — deep enough
	// for four capture windows, small enough that the ring's streaming
	// stores don't evict the flow tables' hot cache lines (a 4096-record
	// ring measurably slows the microflow hit path).
	DefaultFlightRecords = 1024
	// maxFlightCaptures bounds retained spike captures (oldest dropped).
	maxFlightCaptures = 4
	// captureWindow is how many trailing records a spike capture copies.
	captureWindow = 256
)

// LatencyRecorder attributes per-packet latency to resolution tiers and
// keeps a flight ring of recent per-packet events. It is single-writer
// by design: all state belongs to one worker goroutine, so the hot path
// is plain loads and stores — no locks, no atomics. Dumps and spike
// snapshots run as control ops on the owning goroutine, the same
// discipline the /cache endpoint uses for cache internals.
//
// The ring is write-minimal: a hit stores only the per-packet facts
// (key hash, batch, tier, flags). Its timestamp and latency are implied
// by the run it belongs to, recorded once per closed run in a side ring
// as deep as the record ring — every run contributes at least one
// record, so a resident record's run entry is always still resident
// too. Dumps and captures join the two rings back into full
// FlightRecords (binary search on the run ring's end sequences); only
// exactly-timed cold events store TS and LatNs inline.
//
// Clock discipline: a clock read costs ~25-55ns on commodity x86 — more
// than a quarter of a warm microflow hit — so the recorder cannot stamp
// every packet. It reads the monotonic clock once when a batch ends in
// hits (EndBatch) and twice per cold event; BeginBatch reads no clock at
// all — the worker already took a wall timestamp for cache aging, and
// the wall delta since the previous batch advances the monotonic anchor
// (clamped so it never regresses past the last real read; the error is
// bounded by wall-clock adjustment during one batch gap, on latencies
// that are estimates anyway). Consecutive hits between reads form a
// *run* whose measured span is shared uniformly across its packets;
// those records and histogram observations carry FlightEstimated.
// Misses and traced packets — the events that create the tail — are
// stamped exactly. Record timestamps anchor at the caller-supplied wall
// clock from BeginBatch and advance by monotonic offsets, so they are
// ordered and drift-free within a batch.
type LatencyRecorder struct {
	base    time.Time // monotonic anchor for time.Since offsets
	spikeNs int64

	hist [NumTiers]LatencyHistogram

	ring []FlightRecord // power-of-two, overwrite on wrap
	mask uint64
	seq  uint64 // total records ever written; next slot is seq&mask

	runs     []runInfo // closed runs, same depth as ring, runCount&mask
	runCount uint64

	batch     uint32
	anchor    int64 // caller's wall-clock now at BeginBatch
	anchorOff int64 // monotonic offset at BeginBatch
	runStart  int64 // monotonic offset where the current hit run began
	pending   [NumTiers]uint32
	inCold    bool
	coldStart int64

	spikes   uint64
	captures []FlightCapture
}

// NewLatencyRecorder builds a recorder with the given ring size (rounded
// up to a power of two; 0 means DefaultFlightRecords) and spike
// threshold (0 disables spike captures).
func NewLatencyRecorder(ringSize int, spike time.Duration) *LatencyRecorder {
	if ringSize <= 0 {
		ringSize = DefaultFlightRecords
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	base := time.Now()
	return &LatencyRecorder{
		base:    base,
		anchor:  base.UnixNano(), // wall and monotonic offset 0 correspond here
		spikeNs: int64(spike),
		ring:    make([]FlightRecord, size),
		runs:    make([]runInfo, size),
		mask:    uint64(size - 1),
	}
}

// BeginBatch opens an attribution batch anchored at the caller's wall
// clock now (UnixNano) — the same now that ages the caches, so cache
// state and recorded events share a timeline. No clock read: the wall
// delta since the previous anchor estimates the monotonic offset at
// batch start, clamped so it never precedes the last real read.
//
//gf:hotpath
func (r *LatencyRecorder) BeginBatch(now int64) {
	r.batch++
	delta := now - r.anchor
	if delta < 0 {
		delta = 0 // rewound (or synthetic) wall clock: hold the offset
	}
	off := r.anchorOff + delta
	if off < r.runStart {
		off = r.runStart // never start a run before the last real read
	}
	r.anchor = now
	r.anchorOff = off
	r.runStart = off
	r.inCold = false
}

// Hit appends a provisional record for a cache hit. No clock read, and
// no timestamp, latency, or batch store either: all three are implied
// by the run entry written when the surrounding run closes, and joined
// back in at dump time. The slot's TS, LatNs, and Batch are left stale
// — resolve overwrites them in the dumped copy, never in the ring.
//
//gf:hotpath
func (r *LatencyRecorder) Hit(tier Tier, keyHash uint64) {
	s := &r.ring[r.seq&r.mask]
	s.KeyHash = keyHash
	s.Tier = tier
	s.Flags = FlightEstimated
	r.seq++
	r.pending[tier]++
}

// pendingHits sums the per-tier pending counters: the length of the open
// hit run. Four adds once per batch beat a fifth counter bumped per hit.
//
//gf:hotpath
func (r *LatencyRecorder) pendingHits() uint32 {
	n := uint32(0)
	for t := range r.pending {
		n += r.pending[t]
	}
	return n
}

// EndBatch closes the trailing hit run: one monotonic clock read when
// the batch ended in hits, none otherwise. This is the recorder's
// anchored stamp — the one sanctioned clock read on the hit path, paid
// per batch rather than per packet.
//
//gf:hotpath-safe the recorder's anchored stamp: one clock read per batch, amortized across the run's hits
func (r *LatencyRecorder) EndBatch() {
	if r.pendingHits() == 0 {
		return
	}
	r.closeRun(int64(time.Since(r.base)))
}

// closeRun shares the span since runStart uniformly across the pending
// hit records and folds the estimate into the per-tier histograms. The
// records themselves are not touched: one runInfo entry covers them
// all, and dumps join it back in — O(1) regardless of run length. It is
// reached only behind the EndBatch/ColdBegin clock boundaries, so it is
// not itself a certification root.
func (r *LatencyRecorder) closeRun(d int64) {
	n := uint64(r.pendingHits())
	span := d - r.runStart
	if span < 0 {
		span = 0
	}
	per := span / int64(n)
	r.runs[r.runCount&r.mask] = runInfo{endSeq: r.seq, ts: r.anchor, perNs: clampLat(per), batch: r.batch}
	r.runCount++
	for t := range r.pending {
		if c := r.pending[t]; c != 0 {
			r.hist[t].ObserveN(per, uint64(c))
			r.pending[t] = 0
		}
	}
	r.runStart = d
	if r.spikeNs > 0 && per >= r.spikeNs {
		r.capture(per)
	}
}

// ColdBegin marks the point where a packet leaves the hit path (slow-path
// miss or tracer divert): it closes any open hit run and stamps the cold
// start. Idempotent until the matching Cold call. Cold paths are µs-scale,
// so these two clock reads are noise there.
func (r *LatencyRecorder) ColdBegin() {
	if r.inCold {
		return
	}
	d := int64(time.Since(r.base))
	if r.pendingHits() != 0 {
		r.closeRun(d)
	} else {
		r.runStart = d
	}
	r.coldStart = d
	r.inCold = true
}

// Cold records an exactly-timed cold event begun at the preceding
// ColdBegin, attributed to tier with the given flags. FlightTraced
// events land in the ring but are excluded from the tier histograms and
// spike captures: a traced packet's latency includes the tracing work
// itself, and folding that in would report the observer as the tail.
func (r *LatencyRecorder) Cold(tier Tier, keyHash uint64, flags uint8) {
	if !r.inCold {
		r.ColdBegin() // defensive: a cold record without a begin times ~0
	}
	d := int64(time.Since(r.base))
	lat := d - r.coldStart
	if lat < 0 {
		lat = 0
	}
	s := &r.ring[r.seq&r.mask]
	s.TS = r.anchor + (d - r.anchorOff)
	s.KeyHash = keyHash
	s.LatNs = clampLat(lat)
	s.Batch = r.batch
	s.ParkNs = 0 // ring slots are reused; a prior Deferred occupant left one
	s.Tier = tier
	s.Flags = flags
	r.seq++
	r.inCold = false
	r.runStart = d
	if flags&FlightTraced != 0 {
		return
	}
	r.hist[tier].Observe(lat)
	if r.spikeNs > 0 && lat >= r.spikeNs {
		r.capture(lat)
	}
}

// Deferred records a miss resolved asynchronously by the upcall engine:
// latNs is the traversal span measured on the engine goroutine, parkNs
// the queue wait between upcall enqueue and engine dequeue — the two
// components /debug/flight separates so a deferred completion's tail is
// attributable to the slow path or to queueing, never conflated. The
// record is stamped exactly at the completion's delivery time (it closes
// any open hit run first, like every cold event), carries
// FlightDeferred on top of the caller's flags, and feeds latNs — the
// traversal alone — into the tier histogram so slow-path ladders stay
// comparable between inline and asynchronous modes.
func (r *LatencyRecorder) Deferred(tier Tier, keyHash uint64, flags uint8, latNs, parkNs int64) {
	d := int64(time.Since(r.base))
	if r.pendingHits() != 0 {
		r.closeRun(d)
	}
	if latNs < 0 {
		latNs = 0
	}
	if parkNs < 0 {
		parkNs = 0
	}
	s := &r.ring[r.seq&r.mask]
	s.TS = r.anchor + (d - r.anchorOff)
	s.KeyHash = keyHash
	s.LatNs = clampLat(latNs)
	s.Batch = r.batch
	s.ParkNs = clampLat(parkNs)
	s.Tier = tier
	s.Flags = flags | FlightDeferred
	r.seq++
	r.inCold = false
	r.runStart = d
	r.hist[tier].Observe(latNs)
	if r.spikeNs > 0 && latNs >= r.spikeNs {
		r.capture(latNs)
	}
}

// resolve fills the timestamp and latency of a copied estimated record
// from the run ring: binary search for the first closed run whose
// endSeq exceeds the record's sequence number. Cold records carry exact
// values inline and pass through untouched. Dump-time only — never on
// the packet path.
func (r *LatencyRecorder) resolve(rec *FlightRecord, seq uint64) {
	if rec.Flags&FlightEstimated == 0 {
		return
	}
	lo := uint64(0)
	if r.runCount > uint64(len(r.runs)) {
		lo = r.runCount - uint64(len(r.runs))
	}
	hi := r.runCount
	for lo < hi {
		mid := (lo + hi) / 2
		if r.runs[mid&r.mask].endSeq > seq {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == r.runCount {
		// Record's run is still open. Control-op discipline makes this
		// unreachable from dumps (EndBatch/ColdBegin close the run before
		// the worker yields); defensively pin to the batch anchor.
		rec.TS = r.anchor
		rec.LatNs = 0
		rec.Batch = r.batch
		rec.ParkNs = 0
		return
	}
	run := &r.runs[lo&r.mask]
	rec.TS = run.ts
	rec.LatNs = run.perNs
	rec.Batch = run.batch
	rec.ParkNs = 0 // hits never park; scrub whatever the reused slot held
}

// capture copies the ring window ending at the spiking record. Rare by
// construction: only latencies past the configured threshold allocate.
func (r *LatencyRecorder) capture(latNs int64) {
	r.spikes++
	n := r.seq
	if n > captureWindow {
		n = captureWindow
	}
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	recs := make([]FlightRecord, n)
	for i := uint64(0); i < n; i++ {
		seq := r.seq - n + i
		recs[i] = r.ring[seq&r.mask]
		r.resolve(&recs[i], seq)
	}
	c := FlightCapture{Seq: r.seq, TriggerNs: latNs, Batch: r.batch, Records: recs}
	if len(r.captures) >= maxFlightCaptures {
		copy(r.captures, r.captures[1:])
		r.captures[len(r.captures)-1] = c
	} else {
		r.captures = append(r.captures, c)
	}
}

func clampLat(ns int64) int32 {
	if ns > math.MaxInt32 {
		return math.MaxInt32
	}
	if ns < 0 {
		return 0
	}
	return int32(ns)
}

// --- Owner-goroutine readers (serve control ops and experiments) ------

// Histogram returns the per-tier histogram. Owner-goroutine only.
func (r *LatencyRecorder) Histogram(t Tier) *LatencyHistogram { return &r.hist[t] }

// TierSnapshots computes the percentile ladder for every tier.
func (r *LatencyRecorder) TierSnapshots() [NumTiers]LatencySnapshot {
	var out [NumTiers]LatencySnapshot
	for t := range r.hist {
		out[t] = r.hist[t].Snapshot()
	}
	return out
}

// Seq reports the total number of records ever written.
func (r *LatencyRecorder) Seq() uint64 { return r.seq }

// RingSize reports the ring capacity (a power of two).
func (r *LatencyRecorder) RingSize() int { return len(r.ring) }

// Batches reports how many attribution batches have been opened.
func (r *LatencyRecorder) Batches() uint32 { return r.batch }

// Spikes reports how many spike captures have fired.
func (r *LatencyRecorder) Spikes() uint64 { return r.spikes }

// SpikeThreshold reports the capture threshold in nanoseconds (0 when
// disabled).
func (r *LatencyRecorder) SpikeThreshold() int64 { return r.spikeNs }

// Recent copies up to n of the newest resident records, newest first.
// n <= 0 means everything resident in the ring.
func (r *LatencyRecorder) Recent(n int) []FlightRecord {
	avail := r.seq
	if avail > uint64(len(r.ring)) {
		avail = uint64(len(r.ring))
	}
	if n > 0 && uint64(n) < avail {
		avail = uint64(n)
	}
	out := make([]FlightRecord, avail)
	for i := uint64(0); i < avail; i++ {
		seq := r.seq - 1 - i
		out[i] = r.ring[seq&r.mask]
		r.resolve(&out[i], seq)
	}
	return out
}

// Captures returns the retained spike captures, oldest first. The record
// slices are immutable after capture; the returned header slice is a
// copy.
func (r *LatencyRecorder) Captures() []FlightCapture {
	out := make([]FlightCapture, len(r.captures))
	copy(out, r.captures)
	return out
}

// Reset clears histograms, ring, captures, and counters; used between
// experiment phases so each phase reports its own ladder.
func (r *LatencyRecorder) Reset() {
	for t := range r.hist {
		r.hist[t].Reset()
	}
	for i := range r.ring {
		r.ring[i] = FlightRecord{}
	}
	for i := range r.runs {
		r.runs[i] = runInfo{}
	}
	r.seq, r.batch, r.spikes = 0, 0, 0
	r.runCount = 0
	r.pending = [NumTiers]uint32{}
	r.inCold = false
	r.captures = nil
	r.base = time.Now()
	r.anchor = r.base.UnixNano()
	r.anchorOff, r.runStart = 0, 0
}
