package p4gen

import (
	"strings"
	"testing"
)

func TestGenerateDefaultShape(t *testing.T) {
	src := Generate(Config{})
	for _, want := range []string{
		"#include <v1model.p4>",
		"table ltm_1", "table ltm_2", "table ltm_3", "table ltm_4",
		"meta.table_tag    : exact;",
		"hdr.ipv4.dst      : ternary;",
		"size = 8192;",
		"update_table_tag",
		"forward",
		"drop_packet",
		"V1Switch(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated P4 missing %q", want)
		}
	}
	if strings.Contains(src, "table ltm_5") {
		t.Error("default program should have exactly 4 tables")
	}
}

func TestGenerateConfigurable(t *testing.T) {
	src := Generate(Config{NumTables: 2, TableSize: 1024, Program: "gf2"})
	if !strings.Contains(src, "table ltm_2") || strings.Contains(src, "table ltm_3") {
		t.Error("table count not honoured")
	}
	if !strings.Contains(src, "size = 1024;") {
		t.Error("table size not honoured")
	}
	if !strings.Contains(src, "gf2Ingress") || !strings.Contains(src, "gf2Parser") {
		t.Error("program name not honoured")
	}
}

func TestGenerateBalancedBraces(t *testing.T) {
	src := Generate(Config{NumTables: 6})
	depth := 0
	for i, r := range src {
		switch r {
		case '{':
			depth++
		case '}':
			depth--
		}
		if depth < 0 {
			t.Fatalf("unbalanced '}' at byte %d", i)
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced braces: depth %d at EOF", depth)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	if Generate(Config{}) != Generate(Config{}) {
		t.Error("generation must be deterministic")
	}
}

func TestTablesChainOnDoneFlag(t *testing.T) {
	src := Generate(Config{NumTables: 3})
	// Each stage must be guarded by the done flag, and the miss path must
	// punt to the CPU port.
	if strings.Count(src, "if (meta.done == 0) { ltm_") != 3 {
		t.Error("stage guards wrong")
	}
	if !strings.Contains(src, "std.egress_spec = 510;") {
		t.Error("slowpath punt missing")
	}
}

func TestLineBudgetIsPaperScale(t *testing.T) {
	// §5 reports ~350 lines of P4 for the 4-table pipeline; the generated
	// program should be the same order of magnitude.
	lines := strings.Count(Generate(Config{}), "\n")
	if lines < 150 || lines > 700 {
		t.Errorf("generated %d lines; expected a few hundred", lines)
	}
}
