package stats

import (
	"math"
	"testing"
)

// TestLatBucketContainment: every value lands in a bucket whose bounds
// contain it, and indices are monotone in the value.
func TestLatBucketContainment(t *testing.T) {
	vals := []int64{0, 1, 5, 31, 32, 33, 47, 63, 64, 100, 1000, 4095, 123456,
		1 << 20, (1 << 31) - 1, 1 << 31, (1 << 32) - 1}
	prev := -1
	for _, v := range vals {
		i := LatBucketIndex(v)
		if i < 0 || i >= LatNumBuckets {
			t.Fatalf("LatBucketIndex(%d) = %d out of range [0,%d)", v, i, LatNumBuckets)
		}
		if i < prev {
			t.Errorf("LatBucketIndex not monotone: index %d for %d after %d", i, v, prev)
		}
		prev = i
		lo, hi := LatBucketBounds(i)
		if float64(v) < lo || float64(v) >= hi {
			t.Errorf("value %d not in bucket %d bounds [%g,%g)", v, i, lo, hi)
		}
	}
}

func TestLatBucketEdges(t *testing.T) {
	if i := LatBucketIndex(-7); i != 0 {
		t.Errorf("negative value bucket = %d, want 0", i)
	}
	if i := LatBucketIndex(1 << 32); i != LatNumBuckets-1 {
		t.Errorf("overflow bucket = %d, want %d", i, LatNumBuckets-1)
	}
	if i := LatBucketIndex(math.MaxInt64); i != LatNumBuckets-1 {
		t.Errorf("MaxInt64 bucket = %d, want %d", i, LatNumBuckets-1)
	}
	_, hi := LatBucketBounds(LatNumBuckets - 1)
	if !math.IsInf(hi, 1) {
		t.Errorf("overflow bucket hi = %g, want +Inf", hi)
	}
	// Exact buckets below 2^(LatSubBits+1): one value each.
	for v := int64(0); v < 32; v++ {
		lo, hi := LatBucketBounds(LatBucketIndex(v))
		if lo != float64(v) || hi != float64(v+1) {
			t.Errorf("exact bucket for %d = [%g,%g), want [%d,%d)", v, lo, hi, v, v+1)
		}
	}
}

// TestLatBucketRelativeError: sub-bucketing bounds the quantile error at
// one sub-bucket width (1/LatSubBuckets of the value).
func TestLatBucketRelativeError(t *testing.T) {
	for _, v := range []int64{100, 999, 54321, 1 << 22} {
		lo, hi := LatBucketBounds(LatBucketIndex(v))
		if width := hi - lo; width > float64(v)/float64(LatSubBuckets)+1 {
			t.Errorf("bucket width %g for value %d exceeds %d-th of value", width, v, LatSubBuckets)
		}
	}
}

// TestQuantileOfLatLayout: a uniform 1..1000ns stream estimates its
// quantiles within the layout's relative error.
func TestQuantileOfLatLayout(t *testing.T) {
	var counts [LatNumBuckets]uint64
	for v := int64(1); v <= 1000; v++ {
		counts[LatBucketIndex(v)]++
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {0.999, 999},
	} {
		got := QuantileOf(counts[:], 1000, tc.q, LatBucketBounds)
		if math.Abs(got-tc.want)/tc.want > 1.0/LatSubBuckets {
			t.Errorf("Quantile(%g) = %g, want %g ±%.2f%%", tc.q, got, tc.want, 100.0/LatSubBuckets)
		}
	}
	if got := QuantileOf(counts[:], 0, 0.5, LatBucketBounds); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}
