package stats

import (
	"math"
	"math/bits"
)

// Log-linear ("HDR-style") bucket layout for nanosecond latencies. The
// coarse log2 layout of Histogram is fine for experiment reports, but a
// p999 estimate from a bucket spanning a full doubling can be off by
// almost 2x; here every octave is split into LatSubBuckets linear
// sub-buckets, bounding the relative quantile error at 1/LatSubBuckets
// (6.25%). The bottom of the range, where a whole octave is narrower
// than a sub-bucket would be, uses exact one-nanosecond buckets.
const (
	// LatSubBits is the number of linear sub-bucket bits per octave.
	LatSubBits = 4
	// LatSubBuckets is the number of linear sub-buckets per octave.
	LatSubBuckets = 1 << LatSubBits
	// latFirstOctave is the first log2 octave split into sub-buckets;
	// smaller values get exact buckets.
	latFirstOctave = LatSubBits + 1
	// latLastOctave is the first octave absorbed by the overflow bucket:
	// everything at or above 2^latLastOctave ns (~4.3 s) lands there.
	latLastOctave = 32
	// latExact is the count of exact one-nanosecond buckets at the bottom.
	latExact = 1 << (LatSubBits + 1)
	// LatNumBuckets is the total log-linear bucket count, including the
	// overflow bucket.
	LatNumBuckets = latExact + (latLastOctave-latFirstOctave)*LatSubBuckets + 1
)

// LatBucketIndex maps a latency in nanoseconds to its log-linear bucket.
// Negative values clamp to bucket 0; values at or above 2^32 ns land in
// the overflow bucket.
//
//gf:hotpath
func LatBucketIndex(ns int64) int {
	if ns < latExact {
		if ns < 0 {
			return 0
		}
		return int(ns)
	}
	o := bits.Len64(uint64(ns)) - 1
	if o >= latLastOctave {
		return LatNumBuckets - 1
	}
	sub := int(ns>>(uint(o)-LatSubBits)) & (LatSubBuckets - 1)
	return latExact + (o-latFirstOctave)*LatSubBuckets + sub
}

// LatBucketBounds reports the [lo, hi) nanosecond range of log-linear
// bucket i, as floats so it can feed QuantileOf. The overflow bucket is
// unbounded above (hi = +Inf).
func LatBucketBounds(i int) (lo, hi float64) {
	switch {
	case i < latExact:
		return float64(i), float64(i + 1)
	case i >= LatNumBuckets-1:
		return math.Exp2(latLastOctave), math.Inf(1)
	}
	i -= latExact
	o := latFirstOctave + i/LatSubBuckets
	width := int64(1) << (uint(o) - LatSubBits)
	lo64 := int64(LatSubBuckets+i%LatSubBuckets) * width
	return float64(lo64), float64(lo64 + width)
}
