// Package stats provides the small measurement toolkit shared by the
// simulator, the benchmark harness, and the example programs: streaming
// summaries, log-scaled latency histograms, time series, and aligned
// plain-text table rendering for experiment reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations with O(1) memory
// (Welford's algorithm for mean/variance).
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean reports the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the sample variance (0 for fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String renders "mean ± std (n=...)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean(), s.Std(), s.n)
}

// NumBuckets is the number of log2 histogram buckets shared by Histogram
// and the concurrent telemetry histograms built on the same layout.
const NumBuckets = 64

// BucketIndex maps a non-negative observation to its log2 bucket: values
// below 1 go to bucket 0, bucket i covers [2^i, 2^(i+1)), and the last
// bucket absorbs everything at or above 2^63.
func BucketIndex(x float64) int {
	if x < 1 {
		return 0
	}
	i := int(math.Log2(x))
	if i > NumBuckets-1 {
		i = NumBuckets - 1
	}
	return i
}

// BucketBounds reports the [lo, hi) value range bucket i covers. Bucket 0
// starts at 0 (it absorbs sub-1 values) and the last bucket is unbounded
// above, reported as hi = +Inf.
func BucketBounds(i int) (lo, hi float64) {
	lo = math.Exp2(float64(i))
	if i == 0 {
		lo = 0
	}
	hi = math.Exp2(float64(i + 1))
	if i >= NumBuckets-1 {
		hi = math.Inf(1)
	}
	return lo, hi
}

// Histogram is a log2-bucketed histogram of non-negative values (e.g.
// latencies in nanoseconds). Bucket i covers [2^i, 2^(i+1)); values < 1 go
// to bucket 0.
type Histogram struct {
	buckets [NumBuckets]uint64
	sum     Summary
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.sum.Add(x)
	h.buckets[BucketIndex(x)]++
}

// N reports the number of observations.
func (h *Histogram) N() uint64 { return h.sum.N() }

// Mean reports the mean observation.
func (h *Histogram) Mean() float64 { return h.sum.Mean() }

// Std reports the standard deviation.
func (h *Histogram) Std() float64 { return h.sum.Std() }

// Max reports the largest observation.
func (h *Histogram) Max() float64 { return h.sum.Max() }

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Mean() * float64(h.sum.N()) }

// Buckets returns a copy of the raw bucket counts (index i holds the count
// for BucketBounds(i)).
func (h *Histogram) Buckets() [NumBuckets]uint64 { return h.buckets }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets, using
// the arithmetic midpoint of the matching bucket.
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileOf(h.buckets[:], h.sum.N(), q, BucketBounds)
}

// QuantileOf estimates the q-quantile (0 ≤ q ≤ 1) of a bucketed
// distribution with counts[i] observations in the value range bounds(i).
// It returns the arithmetic midpoint of the bucket containing the target
// rank, treating an unbounded top bucket (hi = +Inf) as one doubling
// beyond its lower bound. This is the single quantile implementation
// behind Histogram, the telemetry registry's concurrent histograms, and
// the log-linear latency histograms — they differ only in bucket layout.
func QuantileOf(counts []uint64, total uint64, q float64, bounds func(int) (lo, hi float64)) float64 {
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var seen float64
	mid := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo, hi := bounds(i)
		if math.IsInf(hi, 1) {
			hi = 2 * lo
		}
		mid = (lo + hi) / 2
		seen += float64(c)
		if seen >= target {
			return mid
		}
	}
	return mid
}

// Point is one (time, value) sample of a time series; T is virtual
// simulation time in seconds.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series (e.g. hit rate over simulated
// time for Fig. 18).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Table renders aligned plain-text tables for experiment reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render produces the aligned table as a string.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := ""
	for i, h := range t.Headers {
		line += pad(h, widths[i]) + "  "
	}
	out += line + "\n"
	sep := ""
	for _, w := range widths {
		for i := 0; i < w; i++ {
			sep += "-"
		}
		sep += "  "
	}
	out += sep + "\n"
	for _, row := range t.Rows {
		line = ""
		for i, c := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			line += pad(c, w) + "  "
		}
		out += line + "\n"
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

// Ratio formats a/b as a percentage string, guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*a/b)
}

// SortedKeys returns map keys in sorted order, for deterministic reports.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
