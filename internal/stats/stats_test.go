package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		var s Summary
		var sum float64
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			s.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return s.N() == 0
		}
		naive := sum / float64(count)
		return math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 1000 {
		t.Errorf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %v, expected within the 512-ish bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if h.Max() != 1000 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestHistogramEdge(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Add(0)
	h.Add(0.5)
	if h.N() != 2 {
		t.Error("sub-1 values must land in bucket 0")
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Errorf("q = %v", q)
	}
	h.Add(math.MaxFloat64) // clamps to last bucket, must not panic
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "hit-rate"
	s.Add(0, 0.5)
	s.Add(1, 0.75)
	if len(s.Points) != 2 || s.Points[1].V != 0.75 {
		t.Errorf("points = %v", s.Points)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Fig X", Headers: []string{"pipeline", "hit%"}}
	tb.AddRow("OLS", 93.26)
	tb.AddRow("PSC", 61.0)
	tb.AddRow("big", 1234567.0)
	tb.AddRow("tiny", 0.001)
	out := tb.Render()
	for _, want := range []string{"Fig X", "pipeline", "OLS", "93.26", "1234567", "0.0010"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // title, header, separator, 4 rows
		t.Errorf("rendered %d lines", len(lines))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != "50.0%" {
		t.Errorf("got %q", Ratio(1, 2))
	}
	if Ratio(1, 0) != "n/a" {
		t.Errorf("got %q", Ratio(1, 0))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("got %v", got)
	}
}
