package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		var s Summary
		var sum float64
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			s.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return s.N() == 0
		}
		naive := sum / float64(count)
		return math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 1000 {
		t.Errorf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %v, expected within the 512-ish bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if h.Max() != 1000 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestHistogramEdge(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Add(0)
	h.Add(0.5)
	if h.N() != 2 {
		t.Error("sub-1 values must land in bucket 0")
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Errorf("q = %v", q)
	}
	h.Add(math.MaxFloat64) // clamps to last bucket, must not panic
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {0.25, 0}, {0.999, 0}, {1, 0}, {1.5, 0},
		{2, 1}, {3.99, 1}, {4, 2}, {1024, 10},
		{math.Exp2(63), NumBuckets - 1},
		{math.MaxFloat64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketIndex(c.x); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	// Every representable value must fall inside its bucket's bounds.
	for _, c := range cases {
		lo, hi := BucketBounds(BucketIndex(c.x))
		if c.x < lo || c.x >= hi {
			t.Errorf("x=%v outside bucket bounds [%v, %v)", c.x, lo, hi)
		}
	}
	if lo, _ := BucketBounds(0); lo != 0 {
		t.Errorf("bucket 0 lo = %v, want 0", lo)
	}
	if _, hi := BucketBounds(NumBuckets - 1); !math.IsInf(hi, 1) {
		t.Errorf("last bucket hi = %v, want +Inf", hi)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// All mass in one bucket: every quantile is that bucket's midpoint.
	var single Histogram
	for i := 0; i < 100; i++ {
		single.Add(100) // bucket [64, 128)
	}
	want := (64.0 + 128.0) / 2
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != want {
			t.Errorf("single-bucket Quantile(%v) = %v, want %v", q, got, want)
		}
	}

	// Sub-1 values land in bucket 0, whose midpoint is 1.
	var tiny Histogram
	tiny.Add(0)
	tiny.Add(0.001)
	if got := tiny.Quantile(0.5); got != 1 {
		t.Errorf("bucket-0 midpoint = %v, want 1", got)
	}

	// Values at or above 2^63 clamp into the last bucket; quantiles must
	// stay finite (Quantile falls through to Max for the tail).
	var huge Histogram
	huge.Add(math.Exp2(70))
	if got := huge.Quantile(0.99); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("huge Quantile(0.99) = %v, want finite", got)
	}

	// q=0 with data: the first non-empty bucket wins (target 0, seen >= 0
	// once a bucket with mass is reached).
	var h Histogram
	h.Add(5) // bucket [4, 8)
	h.Add(1000)
	if got := h.Quantile(0); got != 6 {
		t.Errorf("Quantile(0) = %v, want 6", got)
	}
	// q=1 must not exceed the recorded maximum's bucket upper bound.
	if got := h.Quantile(1); got > 1024 {
		t.Errorf("Quantile(1) = %v, want <= 1024", got)
	}
}

func TestHistogramSumBuckets(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Add(float64(i))
	}
	if got := h.Sum(); math.Abs(got-55) > 1e-9 {
		t.Errorf("Sum = %v, want 55", got)
	}
	b := h.Buckets()
	var n uint64
	for _, c := range b {
		n += c
	}
	if n != h.N() {
		t.Errorf("bucket counts sum to %d, want %d", n, h.N())
	}
	// 1 → bucket 0; 2,3 → bucket 1; 4..7 → bucket 2; 8,9,10 → bucket 3.
	if b[0] != 1 || b[1] != 2 || b[2] != 4 || b[3] != 3 {
		t.Errorf("buckets = %v", b[:4])
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "hit-rate"
	s.Add(0, 0.5)
	s.Add(1, 0.75)
	if len(s.Points) != 2 || s.Points[1].V != 0.75 {
		t.Errorf("points = %v", s.Points)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Fig X", Headers: []string{"pipeline", "hit%"}}
	tb.AddRow("OLS", 93.26)
	tb.AddRow("PSC", 61.0)
	tb.AddRow("big", 1234567.0)
	tb.AddRow("tiny", 0.001)
	out := tb.Render()
	for _, want := range []string{"Fig X", "pipeline", "OLS", "93.26", "1234567", "0.0010"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // title, header, separator, 4 rows
		t.Errorf("rendered %d lines", len(lines))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != "50.0%" {
		t.Errorf("got %q", Ratio(1, 2))
	}
	if Ratio(1, 0) != "n/a" {
		t.Errorf("got %q", Ratio(1, 0))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("got %v", got)
	}
}
