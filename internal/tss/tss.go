// Package tss implements the Tuple Space Search packet classifier
// (Srinivasan, Suri, Varghese; SIGCOMM '99) as used by Open vSwitch for
// both OpenFlow tables and the Megaflow cache.
//
// Rules are grouped into "tuples" by identical wildcard mask; each tuple is
// a fused mask+hash flow table (internal/flowtable) keyed by the masked
// flow key: probing a tuple masks and hashes the packet key in one pass
// over the mask's non-zero words — no 80-byte Apply copy, no second
// full-key hash, no Go map overhead. A lookup probes tuples in decreasing
// order of their maximum rule priority and stops as soon as the best match
// found so far outranks every remaining tuple — the same staged-lookup
// optimisation OVS applies. The per-lookup cost is O(M) hash probes in the
// worst case, M being the number of distinct masks; the classifier reports
// probe counts so the simulator can charge CPU cycles accordingly.
package tss

import (
	"fmt"
	"sort"

	"gigaflow/internal/flow"
	"gigaflow/internal/flowtable"
)

// Entry is one classifier rule: a ternary match with a priority and an
// opaque payload.
type Entry[T any] struct {
	Match    flow.Match
	Priority int
	Value    T
}

// tuple is the set of rules sharing one mask: a fused-probe table from
// masked key to the bucket of entries with that exact predicate, sorted
// by priority descending.
type tuple[T any] struct {
	mask    flow.Mask
	table   *flowtable.Table[[]*Entry[T]]
	count   int
	maxPrio int
}

// Classifier is a tuple-space-search classifier. The zero value is not
// usable; construct with New.
type Classifier[T any] struct {
	tuples map[flow.Mask]*tuple[T]
	// order caches tuples sorted by maxPrio descending; rebuilt lazily.
	order []*tuple[T]
	dirty bool
	count int
	// probed is the reusable scratch LookupWildPrecise records its pass-1
	// tuple visits into (one entry per probe, bounded by NumTuples).
	probed []*tuple[T]

	// Probes counts cumulative tuple hash probes across all lookups, and
	// Lookups the number of Lookup calls; both feed the CPU cost model.
	Probes  uint64
	Lookups uint64
}

// New returns an empty classifier.
func New[T any]() *Classifier[T] {
	return &Classifier[T]{tuples: make(map[flow.Mask]*tuple[T])}
}

// Len reports the number of rules in the classifier.
func (c *Classifier[T]) Len() int { return c.count }

// NumTuples reports the number of distinct masks (tuples).
func (c *Classifier[T]) NumTuples() int { return len(c.tuples) }

// Insert adds an entry. If an entry with an identical match predicate and
// priority already exists, it is replaced and Insert reports true.
func (c *Classifier[T]) Insert(e *Entry[T]) (replaced bool) {
	e.Match = e.Match.Normalize()
	tp := c.tuples[e.Match.Mask]
	if tp == nil {
		tp = &tuple[T]{mask: e.Match.Mask, table: flowtable.New[[]*Entry[T]](e.Match.Mask, 0)}
		c.tuples[e.Match.Mask] = tp
		c.dirty = true
	}
	bucket, _ := tp.table.Lookup(e.Match.Key)
	for i, old := range bucket {
		if old.Priority == e.Priority {
			bucket[i] = e
			return true
		}
	}
	// Insert keeping the bucket sorted by priority descending.
	pos := sort.Search(len(bucket), func(i int) bool { return bucket[i].Priority < e.Priority })
	bucket = append(bucket, nil)
	copy(bucket[pos+1:], bucket[pos:])
	bucket[pos] = e
	tp.table.Put(e.Match.Key, bucket)
	tp.count++
	c.count++
	if e.Priority > tp.maxPrio || tp.count == 1 {
		tp.maxPrio = e.Priority
		c.dirty = true
	}
	return false
}

// Delete removes the entry with the given match and priority, reporting
// whether one was found.
func (c *Classifier[T]) Delete(m flow.Match, priority int) bool {
	m = m.Normalize()
	tp := c.tuples[m.Mask]
	if tp == nil {
		return false
	}
	bucket, _ := tp.table.Lookup(m.Key)
	for i, e := range bucket {
		if e.Priority == priority {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				tp.table.Delete(m.Key)
			} else {
				tp.table.Put(m.Key, bucket)
			}
			tp.count--
			c.count--
			if tp.count == 0 {
				delete(c.tuples, m.Mask)
				c.dirty = true
			}
			// tp.maxPrio is left as an upper bound: recomputing it on
			// every delete is O(tuple size) and caches with uniform
			// priorities (e.g. megaflow, where every entry has priority
			// 0) delete constantly under LRU churn. A stale-high maxPrio
			// only makes the staged lookup probe a tuple it could have
			// skipped — sound, marginally less aggressive.
			return true
		}
	}
	return false
}

// rebuildOrder refreshes the priority-descending tuple ordering.
//
//gf:hotpath-safe runs only on the first lookup after a rule change; sorting here keeps steady-state lookups allocation-free
func (c *Classifier[T]) rebuildOrder() {
	c.order = c.order[:0]
	for _, tp := range c.tuples {
		c.order = append(c.order, tp)
	}
	sort.Slice(c.order, func(i, j int) bool {
		if c.order[i].maxPrio != c.order[j].maxPrio {
			return c.order[i].maxPrio > c.order[j].maxPrio
		}
		// Deterministic tie-break on mask bits for reproducible probe counts.
		return maskLess(c.order[i].mask, c.order[j].mask)
	})
	c.dirty = false
}

func maskLess(a, b flow.Mask) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Lookup returns the highest-priority entry matching k, along with the
// number of tuples probed. Returns nil when nothing matches.
//
//gf:hotpath
func (c *Classifier[T]) Lookup(k flow.Key) (*Entry[T], int) {
	if c.dirty {
		c.rebuildOrder()
	}
	c.Lookups++
	var best *Entry[T]
	probes := 0
	for _, tp := range c.order {
		if best != nil && best.Priority >= tp.maxPrio {
			break // staged lookup: no remaining tuple can win
		}
		probes++
		if bucket, ok := tp.table.Lookup(k); ok && len(bucket) > 0 {
			if e := bucket[0]; best == nil || e.Priority > best.Priority {
				best = e
			}
		}
	}
	c.Probes += uint64(probes)
	return best, probes
}

// LookupWild is Lookup plus megaflow-style wildcard tracking: it returns
// the union of the masks of every tuple probed. Any packet equal to k on
// the returned mask's bits is guaranteed to classify to the same entry
// (OVS's rule: each tuple the search visits contributes its whole mask to
// the unwildcarded set, which also subsumes the per-rule dependency bits of
// §4.2.3 since every higher-priority rule lives in a visited tuple).
//
//gf:hotpath
func (c *Classifier[T]) LookupWild(k flow.Key) (*Entry[T], flow.Mask, int) {
	if c.dirty {
		c.rebuildOrder()
	}
	c.Lookups++
	var best *Entry[T]
	var wild flow.Mask
	probes := 0
	for _, tp := range c.order {
		if best != nil && best.Priority >= tp.maxPrio {
			break
		}
		probes++
		wild = wild.Union(tp.mask)
		if bucket, ok := tp.table.Lookup(k); ok && len(bucket) > 0 {
			if e := bucket[0]; best == nil || e.Priority > best.Priority {
				best = e
			}
		}
	}
	c.Probes += uint64(probes)
	return best, wild, probes
}

// LookupWildPrecise is LookupWild with minimal-bit dependency
// unwildcarding — the strategy of the paper's §4.2.3 example, where a
// packet matching a /16 route under /24 and /32 shadows gets wildcard
// 255.255.240.0 rather than a full /32. Instead of charging every probed
// tuple's whole mask, it adds (a) the matched entry's mask and (b) for
// every rule that outranks the match but did not fire, one distinguishing
// bit on which the key provably differs from that rule.
//
// The result is a strictly wider (never narrower) wildcard than
// LookupWild's, with the same guarantee: any key equal to k on the
// returned mask's bits classifies identically. The price is O(entries in
// outranking tuples) per lookup instead of O(tuples) — OVS chose the
// cheap variant; this one exists to model classifiers that spend the
// effort (and for the mask-diversity ablation).
//
// Pass-1 tuple visits are recorded in a classifier-owned scratch buffer,
// and pass 2 walks each visited tuple's table with a value iterator, so
// the whole lookup is allocation-free.
//
//gf:hotpath
func (c *Classifier[T]) LookupWildPrecise(k flow.Key) (*Entry[T], flow.Mask, int) {
	if c.dirty {
		c.rebuildOrder()
	}
	c.Lookups++
	// Pass 1: find the winning entry and the tuples that were probed.
	var best *Entry[T]
	probes := 0
	c.probed = c.probed[:0]
	for _, tp := range c.order {
		if best != nil && best.Priority >= tp.maxPrio {
			break
		}
		probes++
		c.probed = append(c.probed, tp)
		if bucket, ok := tp.table.Lookup(k); ok && len(bucket) > 0 {
			if e := bucket[0]; best == nil || e.Priority > best.Priority {
				best = e
			}
		}
	}
	c.Probes += uint64(probes)

	var wild flow.Mask
	bestPrio := -1 << 62
	if best != nil {
		wild = wild.Union(best.Match.Mask)
		bestPrio = best.Priority
	}
	// Pass 2: one distinguishing bit against every rule that ranks at or
	// above the match and did not fire for k. Equal-priority rules must be
	// excluded too: Lookup resolves equal-priority ties by tuple order, so
	// a covered key newly matching one could steal the tie. (Rules sharing
	// the winner's exact predicate differ only in priority and cannot be
	// distinguished — nor need they be, since bucket order resolves them
	// identically for every covered key.)
	for _, tp := range c.probed {
		if tp.maxPrio < bestPrio {
			continue
		}
		for it := tp.table.Iter(); it.Next(); {
			bucket := it.Value()
			for _, e := range bucket {
				if e.Priority < bestPrio {
					break // buckets are sorted by priority descending
				}
				if e == best {
					continue
				}
				if diffBit, ok := distinguishingBit(k, e.Match); ok {
					wild[diffBit.field] |= diffBit.mask
				}
			}
		}
	}
	return best, wild, probes
}

// bitRef names one bit of one field.
type bitRef struct {
	field flow.FieldID
	mask  uint64
}

// distinguishingBit returns a significant bit of m on which k disagrees
// with m's key. It exists whenever k does not match m.
//
//gf:hotpath
func distinguishingBit(k flow.Key, m flow.Match) (bitRef, bool) {
	for f := flow.FieldID(0); f < flow.NumFields; f++ {
		if diff := (k[f] ^ m.Key[f]) & m.Mask[f]; diff != 0 {
			return bitRef{field: f, mask: diff & -diff}, true
		}
	}
	return bitRef{}, false
}

// Get returns the entry with exactly the given match and priority, if any.
func (c *Classifier[T]) Get(m flow.Match, priority int) (*Entry[T], bool) {
	m = m.Normalize()
	tp := c.tuples[m.Mask]
	if tp == nil {
		return nil, false
	}
	bucket, _ := tp.table.Lookup(m.Key)
	for _, e := range bucket {
		if e.Priority == priority {
			return e, true
		}
	}
	return nil, false
}

// Range calls fn for every entry until fn returns false. Iteration order
// is deterministic: tuples are visited in the staged-lookup order
// (maxPrio descending, mask ascending) and each tuple's table in its
// slot order, both pure functions of the insert/delete history. Sweeps
// built on Range (expiry, revalidation) therefore replay identically
// under the same seed. The classifier must not be mutated during Range.
func (c *Classifier[T]) Range(fn func(*Entry[T]) bool) {
	if c.dirty {
		c.rebuildOrder()
	}
	for _, tp := range c.order {
		for it := tp.table.Iter(); it.Next(); {
			for _, e := range it.Value() {
				if !fn(e) {
					return
				}
			}
		}
	}
}

// Entries returns all entries in deterministic Range order.
func (c *Classifier[T]) Entries() []*Entry[T] {
	out := make([]*Entry[T], 0, c.count)
	c.Range(func(e *Entry[T]) bool { out = append(out, e); return true })
	return out
}

// Clear removes all entries but keeps accumulated lookup statistics.
func (c *Classifier[T]) Clear() {
	c.tuples = make(map[flow.Mask]*tuple[T])
	c.order = nil
	c.dirty = false
	c.count = 0
}

// String summarises the classifier shape.
func (c *Classifier[T]) String() string {
	return fmt.Sprintf("tss(%d rules, %d tuples)", c.count, len(c.tuples))
}
