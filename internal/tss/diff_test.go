package tss

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// diffMasks gives the randomized differential workload realistic mask
// diversity: exact, prefix, multi-field, and match-all tuples.
var diffMasks = []flow.Mask{
	flow.ExactFields(flow.FieldIPDst),
	flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst),
	flow.ExactFields(flow.FieldIPProto, flow.FieldTpDst),
	flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 8)),
	flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 16)),
	flow.EmptyMask.With(flow.FieldIPSrc, flow.PrefixMask(flow.FieldIPSrc, 8)).WithField(flow.FieldTpDst),
	flow.ExactFields(flow.FieldEthDst, flow.FieldEthType),
	flow.EmptyMask,
}

func diffKey(rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldIPDst, uint64(rng.Intn(8))<<24|uint64(rng.Intn(4))<<16|uint64(rng.Intn(4))).
		With(flow.FieldIPSrc, uint64(rng.Intn(8))<<24).
		With(flow.FieldTpDst, uint64(rng.Intn(4)*100)).
		With(flow.FieldIPProto, uint64(6+rng.Intn(2)*11)).
		With(flow.FieldEthDst, uint64(rng.Intn(4))).
		With(flow.FieldEthType, 0x0800)
}

// TestDifferentialAgainstMapBackedClassifier drives the flowtable-backed
// classifier and the verbatim old map-backed implementation through the
// same randomized insert/delete/lookup sequence and demands bit-identical
// observables: winning entries (by pointer), wildcard masks from both
// LookupWild variants, per-call probe counts, and the cumulative
// Lookups/Probes counters the CPU cost model charges.
func TestDifferentialAgainstMapBackedClassifier(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		got := New[int]()
		ref := newMapRef[int]()
		var live []*Entry[int]
		nextVal := 0
		for step := 0; step < 5000; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // insert (equal priorities allowed: tie-break must agree)
				e := &Entry[int]{
					Match:    flow.NewMatch(diffKey(rng), diffMasks[rng.Intn(len(diffMasks))]),
					Priority: rng.Intn(40),
					Value:    nextVal,
				}
				nextVal++
				gr := got.Insert(e)
				rr := ref.Insert(e)
				if gr != rr {
					t.Fatalf("seed %d step %d: Insert replaced=%v ref=%v", seed, step, gr, rr)
				}
				if gr {
					for i, old := range live {
						if old.Match.Equal(e.Match) && old.Priority == e.Priority {
							live[i] = e
							break
						}
					}
				} else {
					live = append(live, e)
				}
			case op == 3 && len(live) > 0: // delete
				i := rng.Intn(len(live))
				e := live[i]
				gr := got.Delete(e.Match, e.Priority)
				rr := ref.Delete(e.Match, e.Priority)
				if gr != rr {
					t.Fatalf("seed %d step %d: Delete=%v ref=%v", seed, step, gr, rr)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case op < 7: // Lookup
				k := diffKey(rng)
				ge, gp := got.Lookup(k)
				re, rp := ref.Lookup(k)
				if ge != re || gp != rp {
					t.Fatalf("seed %d step %d: Lookup(%s) = (%v,%d) ref (%v,%d)", seed, step, k, ge, gp, re, rp)
				}
			case op < 9: // LookupWild
				k := diffKey(rng)
				ge, gw, gp := got.LookupWild(k)
				re, rw, rp := ref.LookupWild(k)
				if ge != re || gw != rw || gp != rp {
					t.Fatalf("seed %d step %d: LookupWild(%s) = (%v,%v,%d) ref (%v,%v,%d)",
						seed, step, k, ge, gw, gp, re, rw, rp)
				}
			default: // LookupWildPrecise
				k := diffKey(rng)
				ge, gw, gp := got.LookupWildPrecise(k)
				re, rw, rp := ref.LookupWildPrecise(k)
				if ge != re || gw != rw || gp != rp {
					t.Fatalf("seed %d step %d: LookupWildPrecise(%s) = (%v,%v,%d) ref (%v,%v,%d)",
						seed, step, k, ge, gw, gp, re, rw, rp)
				}
			}
			if got.Len() != ref.Len() || got.NumTuples() != ref.NumTuples() {
				t.Fatalf("seed %d step %d: shape (%d,%d) ref (%d,%d)",
					seed, step, got.Len(), got.NumTuples(), ref.Len(), ref.NumTuples())
			}
			if got.Lookups != ref.Lookups || got.Probes != ref.Probes {
				t.Fatalf("seed %d step %d: counters (%d,%d) ref (%d,%d)",
					seed, step, got.Lookups, got.Probes, ref.Lookups, ref.Probes)
			}
		}
		// The classifiers must hold the same entry set.
		gotSet := map[*Entry[int]]bool{}
		got.Range(func(e *Entry[int]) bool { gotSet[e] = true; return true })
		if len(gotSet) != len(live) {
			t.Fatalf("seed %d: classifier holds %d entries, %d live", seed, len(gotSet), len(live))
		}
		for _, e := range live {
			if !gotSet[e] {
				t.Fatalf("seed %d: live entry %v missing from Range", seed, e.Match)
			}
		}
	}
}

// TestRangeDeterministicOrder pins the new guarantee: Range order is a
// pure function of the mutation history (staged tuple order, then slot
// order), so two same-seed builds enumerate identically.
func TestRangeDeterministicOrder(t *testing.T) {
	build := func() []*Entry[int] {
		rng := rand.New(rand.NewSource(77))
		c := New[int]()
		for i := 0; i < 500; i++ {
			c.Insert(&Entry[int]{
				Match:    flow.NewMatch(diffKey(rng), diffMasks[rng.Intn(len(diffMasks))]),
				Priority: rng.Intn(20),
				Value:    i,
			})
			if i%7 == 0 {
				k := diffKey(rng)
				if e, _ := c.Lookup(k); e != nil && rng.Intn(2) == 0 {
					c.Delete(e.Match, e.Priority)
				}
			}
		}
		return c.Entries()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("same-seed builds enumerate %d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i].Value != b[i].Value || !a[i].Match.Equal(b[i].Match) || a[i].Priority != b[i].Priority {
			t.Fatalf("Range order diverged at %d: %v/%d vs %v/%d", i, a[i].Match, a[i].Value, b[i].Match, b[i].Value)
		}
	}
}

// TestLookupPathsZeroAlloc holds every probe variant — including the
// scratch-buffered LookupWildPrecise — to zero allocations.
func TestLookupPathsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New[int]()
	for i := 0; i < 400; i++ {
		c.Insert(&Entry[int]{
			Match:    flow.NewMatch(diffKey(rng), diffMasks[rng.Intn(len(diffMasks))]),
			Priority: rng.Intn(20),
			Value:    i,
		})
	}
	hit := diffKey(rng)
	c.Insert(&Entry[int]{Match: flow.ExactMatch(hit), Priority: 50, Value: -1})
	miss := flow.Key{}.With(flow.FieldIPDst, 250<<24).With(flow.FieldEthType, 0x86dd)
	c.Lookup(hit) // settle the tuple order before counting
	if allocs := testing.AllocsPerRun(500, func() {
		c.Lookup(hit)
		c.Lookup(miss)
		c.LookupWild(miss)
		c.LookupWildPrecise(hit)
		c.LookupWildPrecise(miss)
	}); allocs != 0 {
		t.Fatalf("lookup paths allocate %.1f allocs/op, want 0", allocs)
	}
}
