package tss

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// TestLookupWildSoundness checks THE megaflow-generation invariant: for
// any key k with LookupWild result (e, wild), every key k' that agrees
// with k on wild's bits classifies to the same entry (or both miss).
func TestLookupWildSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	masks := []flow.Mask{
		flow.ExactFields(flow.FieldIPDst),
		flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 16)),
		flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 8)),
		flow.ExactFields(flow.FieldTpDst),
		flow.ExactFields(flow.FieldIPProto, flow.FieldTpSrc),
		flow.EmptyMask.With(flow.FieldIPSrc, flow.PrefixMask(flow.FieldIPSrc, 12)).WithField(flow.FieldTpDst),
	}
	randKey := func() flow.Key {
		var k flow.Key
		k = k.With(flow.FieldIPDst, uint64(rng.Intn(4))<<24|uint64(rng.Intn(16))<<8|uint64(rng.Intn(4)))
		k = k.With(flow.FieldIPSrc, uint64(rng.Intn(4))<<28)
		k = k.With(flow.FieldIPProto, uint64(rng.Intn(3)))
		k = k.With(flow.FieldTpSrc, uint64(rng.Intn(4)))
		k = k.With(flow.FieldTpDst, uint64(rng.Intn(4))*443)
		return k
	}

	c := New[int]()
	for i := 0; i < 400; i++ {
		m := flow.NewMatch(randKey(), masks[rng.Intn(len(masks))])
		c.Insert(&Entry[int]{Match: m, Priority: rng.Intn(50), Value: i})
	}

	for trial := 0; trial < 4000; trial++ {
		k := randKey()
		e, wild, _ := c.LookupWild(k)

		// Perturb k arbitrarily on bits NOT in wild.
		k2 := k
		for f := flow.FieldID(0); f < flow.NumFields; f++ {
			free := f.MaxValue() &^ wild[f]
			k2 = k2.WithMasked(f, rng.Uint64(), free)
		}
		e2, _ := c.Lookup(k2)
		switch {
		case e == nil && e2 != nil:
			t.Fatalf("k=%s missed but masked-equal k2=%s hit %v (wild=%s)", k, k2, e2.Match, wild)
		case e != nil && e2 == nil:
			t.Fatalf("k=%s hit %v but masked-equal k2=%s missed (wild=%s)", k, e.Match, k2, wild)
		case e != nil && e2.Priority != e.Priority:
			t.Fatalf("priorities diverge: %d vs %d (wild=%s)", e.Priority, e2.Priority, wild)
		}
	}
}

// TestLookupWildAfterChurn re-validates the invariant while rules are
// inserted and deleted (the maxPrio upper-bound optimisation must stay
// sound under churn).
func TestLookupWildAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := New[int]()
	var live []*Entry[int]
	mkRule := func(i int) *Entry[int] {
		m := flow.MatchAll().
			WithMaskedField(flow.FieldIPDst, uint64(rng.Intn(4))<<24, flow.PrefixMask(flow.FieldIPDst, uint(8*(1+rng.Intn(3))))).
			WithField(flow.FieldTpDst, uint64(rng.Intn(3)))
		return &Entry[int]{Match: m, Priority: rng.Intn(100), Value: i}
	}
	for step := 0; step < 3000; step++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			e := mkRule(step)
			if _, ok := c.Get(e.Match, e.Priority); !ok {
				c.Insert(e)
				live = append(live, e)
			}
		default:
			i := rng.Intn(len(live))
			c.Delete(live[i].Match, live[i].Priority)
			live = append(live[:i], live[i+1:]...)
		}
		if step%10 != 0 {
			continue
		}
		k := flow.Key{}.
			With(flow.FieldIPDst, uint64(rng.Intn(4))<<24|uint64(rng.Intn(1<<16))).
			With(flow.FieldTpDst, uint64(rng.Intn(3)))
		e, wild, _ := c.LookupWild(k)
		k2 := k
		for f := flow.FieldID(0); f < flow.NumFields; f++ {
			k2 = k2.WithMasked(f, rng.Uint64(), f.MaxValue()&^wild[f])
		}
		e2, _ := c.Lookup(k2)
		if (e == nil) != (e2 == nil) || (e != nil && e.Priority != e2.Priority) {
			t.Fatalf("step %d: wildcard soundness violated", step)
		}
	}
}
