package tss

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// preciseFixture builds a classifier with nested prefixes and port rules —
// the mixed-priority geometry where minimal-bit unwildcarding matters.
func preciseFixture() *Classifier[int] {
	c := New[int]()
	add := func(m string, prio, val int) {
		c.Insert(&Entry[int]{Match: flow.MustParseMatch(m), Priority: prio, Value: val})
	}
	add("ip_dst=192.168.14.15", 400, 1)
	add("ip_dst=192.168.14.0/24", 300, 2)
	add("ip_dst=192.168.0.0/16", 200, 3)
	add("ip_dst=192.0.0.0/8", 100, 4)
	add("tp_dst=80", 250, 5)
	add("tp_dst=443,ip_proto=6", 350, 6)
	return c
}

func TestLookupWildPreciseSection423Example(t *testing.T) {
	// The paper's §4.2.3 example: a packet for 192.168.21.27 matches the
	// /16 route under /24 and /32 shadows. Tuple-union unwildcarding pins
	// the whole ip_dst; precise unwildcarding needs only the /16 prefix
	// plus a distinguishing bit against each shadowing rule.
	c := preciseFixture()
	k := flow.MustParseKey("ip_dst=192.168.21.27,tp_dst=8080,ip_proto=17")

	eu, wildUnion, _ := c.LookupWild(k)
	ep, wildPrecise, _ := c.LookupWildPrecise(k)
	if eu == nil || ep == nil || eu.Value != 3 || ep.Value != 3 {
		t.Fatalf("both lookups must hit the /16: %v / %v", eu, ep)
	}
	// Union mode: ip_dst fully significant (the /32 tuple was probed).
	if wildUnion[flow.FieldIPDst] != flow.FieldIPDst.MaxValue() {
		t.Fatalf("union wildcard = %s; expected exact ip_dst", wildUnion)
	}
	// Precise mode: strictly fewer significant bits, still covering /16.
	if got, limit := wildPrecise.BitCount(), wildUnion.BitCount(); got >= limit {
		t.Errorf("precise wildcard not wider: %d vs %d significant bits", got, limit)
	}
	if !wildPrecise.Covers(flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 16))) {
		t.Errorf("precise wildcard %s must include the matched /16 mask", wildPrecise)
	}
	// And it must still exclude the shadowed rules' packets.
	m := flow.NewMatch(k, wildPrecise)
	if m.Matches(flow.MustParseKey("ip_dst=192.168.14.15,tp_dst=8080,ip_proto=17")) {
		t.Error("precise megaflow swallows the /32 rule's packet")
	}
	if m.Matches(flow.MustParseKey("ip_dst=192.168.14.99,tp_dst=8080,ip_proto=17")) {
		t.Error("precise megaflow swallows the /24 rule's packets")
	}
}

// TestLookupWildPreciseSoundness mirrors the tuple-union soundness
// property: any key agreeing with k on the precise wildcard's bits must
// classify identically.
func TestLookupWildPreciseSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	masks := []flow.Mask{
		flow.ExactFields(flow.FieldIPDst),
		flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 24)),
		flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 16)),
		flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 8)),
		flow.ExactFields(flow.FieldTpDst),
		flow.ExactFields(flow.FieldIPProto, flow.FieldTpDst),
	}
	randKey := func() flow.Key {
		var k flow.Key
		k = k.With(flow.FieldIPDst, uint64(rng.Intn(4))<<24|uint64(rng.Intn(8))<<16|uint64(rng.Intn(4)))
		k = k.With(flow.FieldIPProto, uint64(rng.Intn(3)))
		k = k.With(flow.FieldTpDst, uint64(rng.Intn(5))*111)
		return k
	}
	c := New[int]()
	for i := 0; i < 300; i++ {
		m := flow.NewMatch(randKey(), masks[rng.Intn(len(masks))])
		c.Insert(&Entry[int]{Match: m, Priority: rng.Intn(60), Value: i})
	}
	for trial := 0; trial < 4000; trial++ {
		k := randKey()
		e, wild, _ := c.LookupWildPrecise(k)
		k2 := k
		for f := flow.FieldID(0); f < flow.NumFields; f++ {
			k2 = k2.WithMasked(f, rng.Uint64(), f.MaxValue()&^wild[f])
		}
		e2, _ := c.Lookup(k2)
		switch {
		case e == nil && e2 != nil:
			t.Fatalf("k=%s missed but covered k2=%s hit %v (wild=%s)", k, k2, e2.Match, wild)
		case e != nil && e2 == nil:
			t.Fatalf("k=%s hit %v but covered k2=%s missed (wild=%s)", k, e.Match, k2, wild)
		case e != nil && e2 != e:
			t.Fatalf("covered key classified to a different entry: %v vs %v (wild=%s)", e.Match, e2.Match, wild)
		}
	}
}

func TestLookupWildPreciseNeverNarrowerThanUnionIsWrong(t *testing.T) {
	// Precise wildcards use a subset of the union's significant bits for
	// the SAME lookup (never more).
	rng := rand.New(rand.NewSource(43))
	c := preciseFixture()
	for trial := 0; trial < 500; trial++ {
		k := flow.Key{}.
			With(flow.FieldIPDst, 0xc0a80000|uint64(rng.Intn(1<<16))).
			With(flow.FieldTpDst, uint64(rng.Intn(1000))).
			With(flow.FieldIPProto, uint64(rng.Intn(3)))
		_, wu, _ := c.LookupWild(k)
		_, wp, _ := c.LookupWildPrecise(k)
		if !wu.Covers(wp) {
			t.Fatalf("precise wildcard %s has bits outside union %s", wp, wu)
		}
	}
}

func TestLookupWildPreciseOnMiss(t *testing.T) {
	c := preciseFixture()
	k := flow.MustParseKey("ip_dst=10.9.9.9,tp_dst=9999") // misses everything
	e, wild, _ := c.LookupWildPrecise(k)
	if e != nil {
		t.Fatalf("expected miss, got %v", e)
	}
	// A miss megaflow must exclude every rule: no rule's packet may agree
	// with k on wild's bits.
	m := flow.NewMatch(k, wild)
	for _, probe := range []string{
		"ip_dst=192.168.14.15", "ip_dst=192.168.14.1", "ip_dst=192.168.1.1",
		"ip_dst=192.1.1.1", "tp_dst=80", "tp_dst=443,ip_proto=6",
	} {
		pk := flow.MustParseKey(probe)
		if m.Matches(pk) {
			if e2, _ := c.Lookup(pk); e2 != nil {
				t.Errorf("miss megaflow %s covers %s which hits %v", m, probe, e2.Match)
			}
		}
	}
	if e2, _ := c.Lookup(flow.MustParseKey("ip_dst=10.9.9.8,tp_dst=9999")); e2 != nil {
		t.Error("sanity: nearby key should also miss")
	}
}

func TestLookupWildPreciseEmptyClassifier(t *testing.T) {
	c := New[int]()
	e, wild, probes := c.LookupWildPrecise(flow.MustParseKey("tp_dst=80"))
	if e != nil || !wild.IsEmpty() || probes != 0 {
		t.Errorf("empty classifier: %v %s %d", e, wild, probes)
	}
}
