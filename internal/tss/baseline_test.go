package tss

import (
	"sort"

	"gigaflow/internal/flow"
)

// mapRef is the pre-flowtable classifier, kept verbatim as the
// differential-test reference and benchmark baseline: tuples are Go maps
// keyed by the Apply-masked key, so every probe pays the 80-byte copy and
// a second full-key hash. Its observable behaviour — lookup winners,
// wildcard masks, probe counts, Lookups/Probes counters — must stay
// bit-identical to Classifier's.
type mapRef[T any] struct {
	tuples map[flow.Mask]*mapRefTuple[T]
	order  []*mapRefTuple[T]
	dirty  bool
	count  int

	Probes  uint64
	Lookups uint64
}

type mapRefTuple[T any] struct {
	mask    flow.Mask
	entries map[flow.Key][]*Entry[T]
	count   int
	maxPrio int
}

func newMapRef[T any]() *mapRef[T] {
	return &mapRef[T]{tuples: make(map[flow.Mask]*mapRefTuple[T])}
}

func (c *mapRef[T]) Len() int       { return c.count }
func (c *mapRef[T]) NumTuples() int { return len(c.tuples) }

func (c *mapRef[T]) Insert(e *Entry[T]) (replaced bool) {
	e.Match = e.Match.Normalize()
	tp := c.tuples[e.Match.Mask]
	if tp == nil {
		tp = &mapRefTuple[T]{mask: e.Match.Mask, entries: make(map[flow.Key][]*Entry[T])}
		c.tuples[e.Match.Mask] = tp
		c.dirty = true
	}
	bucket := tp.entries[e.Match.Key]
	for i, old := range bucket {
		if old.Priority == e.Priority {
			bucket[i] = e
			return true
		}
	}
	pos := sort.Search(len(bucket), func(i int) bool { return bucket[i].Priority < e.Priority })
	bucket = append(bucket, nil)
	copy(bucket[pos+1:], bucket[pos:])
	bucket[pos] = e
	tp.entries[e.Match.Key] = bucket
	tp.count++
	c.count++
	if e.Priority > tp.maxPrio || tp.count == 1 {
		tp.maxPrio = e.Priority
		c.dirty = true
	}
	return false
}

func (c *mapRef[T]) Delete(m flow.Match, priority int) bool {
	m = m.Normalize()
	tp := c.tuples[m.Mask]
	if tp == nil {
		return false
	}
	bucket := tp.entries[m.Key]
	for i, e := range bucket {
		if e.Priority == priority {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(tp.entries, m.Key)
			} else {
				tp.entries[m.Key] = bucket
			}
			tp.count--
			c.count--
			if tp.count == 0 {
				delete(c.tuples, m.Mask)
				c.dirty = true
			}
			return true
		}
	}
	return false
}

func (c *mapRef[T]) rebuildOrder() {
	c.order = c.order[:0]
	for _, tp := range c.tuples {
		c.order = append(c.order, tp)
	}
	sort.Slice(c.order, func(i, j int) bool {
		if c.order[i].maxPrio != c.order[j].maxPrio {
			return c.order[i].maxPrio > c.order[j].maxPrio
		}
		return maskLess(c.order[i].mask, c.order[j].mask)
	})
	c.dirty = false
}

func (c *mapRef[T]) Lookup(k flow.Key) (*Entry[T], int) {
	if c.dirty {
		c.rebuildOrder()
	}
	c.Lookups++
	var best *Entry[T]
	probes := 0
	for _, tp := range c.order {
		if best != nil && best.Priority >= tp.maxPrio {
			break
		}
		probes++
		if bucket, ok := tp.entries[k.Apply(tp.mask)]; ok && len(bucket) > 0 {
			if e := bucket[0]; best == nil || e.Priority > best.Priority {
				best = e
			}
		}
	}
	c.Probes += uint64(probes)
	return best, probes
}

func (c *mapRef[T]) LookupWild(k flow.Key) (*Entry[T], flow.Mask, int) {
	if c.dirty {
		c.rebuildOrder()
	}
	c.Lookups++
	var best *Entry[T]
	var wild flow.Mask
	probes := 0
	for _, tp := range c.order {
		if best != nil && best.Priority >= tp.maxPrio {
			break
		}
		probes++
		wild = wild.Union(tp.mask)
		if bucket, ok := tp.entries[k.Apply(tp.mask)]; ok && len(bucket) > 0 {
			if e := bucket[0]; best == nil || e.Priority > best.Priority {
				best = e
			}
		}
	}
	c.Probes += uint64(probes)
	return best, wild, probes
}

func (c *mapRef[T]) LookupWildPrecise(k flow.Key) (*Entry[T], flow.Mask, int) {
	if c.dirty {
		c.rebuildOrder()
	}
	c.Lookups++
	var best *Entry[T]
	probes := 0
	var probed []*mapRefTuple[T]
	for _, tp := range c.order {
		if best != nil && best.Priority >= tp.maxPrio {
			break
		}
		probes++
		probed = append(probed, tp)
		if bucket, ok := tp.entries[k.Apply(tp.mask)]; ok && len(bucket) > 0 {
			if e := bucket[0]; best == nil || e.Priority > best.Priority {
				best = e
			}
		}
	}
	c.Probes += uint64(probes)

	var wild flow.Mask
	bestPrio := -1 << 62
	if best != nil {
		wild = wild.Union(best.Match.Mask)
		bestPrio = best.Priority
	}
	for _, tp := range probed {
		if tp.maxPrio < bestPrio {
			continue
		}
		for _, bucket := range tp.entries {
			for _, e := range bucket {
				if e.Priority < bestPrio {
					break
				}
				if e == best {
					continue
				}
				if diffBit, ok := distinguishingBit(k, e.Match); ok {
					wild[diffBit.field] |= diffBit.mask
				}
			}
		}
	}
	return best, wild, probes
}
