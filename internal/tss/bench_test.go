package tss

import (
	"math/rand"
	"os"
	"testing"

	"gigaflow/internal/flow"
)

// slowpathMasks is a high-diversity tuple census modeled on what a
// mask-rich megaflow cache accumulates: prefix ladders, field combos, and
// exact tuples. Every mask is a distinct TSS tuple, so miss-heavy lookups
// sweep all of them — the slow-path regime where probe cost dominates.
func slowpathMasks() []flow.Mask {
	masks := []flow.Mask{
		flow.ExactFields(flow.FieldIPDst),
		flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst),
		flow.ExactFields(flow.FieldIPSrc, flow.FieldIPDst),
		flow.ExactFields(flow.FieldIPProto, flow.FieldTpDst),
		flow.ExactFields(flow.FieldEthDst, flow.FieldEthType),
		flow.ExactFields(flow.FieldInPort, flow.FieldEthType, flow.FieldIPDst),
		flow.ExactFields(flow.FieldTpSrc, flow.FieldTpDst),
		flow.ExactFields(flow.FieldEthSrc),
	}
	for _, bits := range []uint{8, 12, 16, 20, 24, 28} {
		masks = append(masks,
			flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, bits)),
			flow.EmptyMask.With(flow.FieldIPSrc, flow.PrefixMask(flow.FieldIPSrc, bits)).WithField(flow.FieldIPProto))
	}
	return masks
}

func slowpathKey(rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldInPort, uint64(rng.Intn(4))).
		With(flow.FieldEthSrc, rng.Uint64()&0xff).
		With(flow.FieldEthDst, rng.Uint64()&0xff).
		With(flow.FieldEthType, 0x0800).
		With(flow.FieldIPSrc, 0x0a000000|rng.Uint64()&0xffff).
		With(flow.FieldIPDst, 0x0a000000|rng.Uint64()&0xffff).
		With(flow.FieldIPProto, 6).
		With(flow.FieldTpSrc, uint64(rng.Intn(1024))).
		With(flow.FieldTpDst, uint64(rng.Intn(1024)))
}

// buildSlowpath populates both classifier backends with the same rules
// (1024 entries spread over ~20 tuples, all priority 1 so no staged probe
// exits early) and returns cold keys that miss every tuple — the
// worst-case full sweep a slow-path lookup pays.
func buildSlowpath() (*Classifier[int], *mapRef[int], []flow.Key) {
	rng := rand.New(rand.NewSource(42))
	masks := slowpathMasks()
	cls := New[int]()
	ref := newMapRef[int]()
	for i := 0; i < 1024; i++ {
		m := flow.NewMatch(slowpathKey(rng), masks[i%len(masks)])
		cls.Insert(&Entry[int]{Match: m, Priority: 1, Value: i})
		ref.Insert(&Entry[int]{Match: m, Priority: 1, Value: i})
	}
	cold := make([]flow.Key, 1024)
	for i := range cold {
		// Disjoint universe: every field lands outside the inserted
		// ranges, so under every tuple's mask the probe misses.
		cold[i] = flow.Key{}.
			With(flow.FieldInPort, 7).
			With(flow.FieldEthSrc, 0x1000|rng.Uint64()&0xff).
			With(flow.FieldEthDst, 0x1000|rng.Uint64()&0xff).
			With(flow.FieldEthType, 0x86dd).
			With(flow.FieldIPSrc, 0xc0000000|rng.Uint64()&0xffff).
			With(flow.FieldIPDst, 0xc0000000|rng.Uint64()&0xffff).
			With(flow.FieldIPProto, 17).
			With(flow.FieldTpSrc, uint64(2048+rng.Intn(1024))).
			With(flow.FieldTpDst, uint64(2048+rng.Intn(1024)))
	}
	return cls, ref, cold
}

// BenchmarkSlowpathColdSweep is the cold-cache, high-mask-diversity
// regime: every lookup sweeps every tuple. The fused mask+hash probe pays
// one pass per tuple; per-op cost is ~tuples × probe cost.
func BenchmarkSlowpathColdSweep(b *testing.B) {
	cls, _, cold := buildSlowpath()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e, _ := cls.Lookup(cold[i%len(cold)]); e != nil {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkMapBaselineSlowpathColdSweep is the same sweep on the
// pre-flowtable backend: per tuple, an 80-byte Key.Apply copy plus a Go
// map probe hashing the full key.
func BenchmarkMapBaselineSlowpathColdSweep(b *testing.B) {
	_, ref, cold := buildSlowpath()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e, _ := ref.Lookup(cold[i%len(cold)]); e != nil {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkMapBaselineLookupHit mirrors BenchmarkLookupHit (tss_test.go)
// on the map-backed reference for the hit-path speedup ratio.
func BenchmarkMapBaselineLookupHit(b *testing.B) {
	c := newMapRef[int]()
	rng := rand.New(rand.NewSource(1))
	keys := make([]flow.Key, 1024)
	for i := range keys {
		k := flow.Key{}.
			With(flow.FieldIPDst, rng.Uint64()).
			With(flow.FieldTpDst, rng.Uint64())
		keys[i] = k
		c.Insert(&Entry[int]{Match: flow.NewMatch(k, flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst)), Priority: 1, Value: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}

// TestSlowpathProbeGate is an opt-in performance regression gate
// (GF_BENCH_GATE=1): the fused-probe classifier must beat the map-backed
// baseline by at least slowpathFloor on the cold full-sweep workload and
// must not allocate. The floor is set well under the ~2x measured on dev
// hardware to absorb CI noise while still catching a probe-path
// regression that forfeits the fused-probe win.
func TestSlowpathProbeGate(t *testing.T) {
	if os.Getenv("GF_BENCH_GATE") == "" {
		t.Skip("set GF_BENCH_GATE=1 to run the slow-path probe gate")
	}
	const slowpathFloor = 1.4
	fused := testing.Benchmark(BenchmarkSlowpathColdSweep)
	base := testing.Benchmark(BenchmarkMapBaselineSlowpathColdSweep)
	if fused.AllocsPerOp() != 0 {
		t.Fatalf("fused slow-path sweep allocates %d allocs/op, want 0", fused.AllocsPerOp())
	}
	ratio := float64(base.NsPerOp()) / float64(fused.NsPerOp())
	t.Logf("slow-path cold sweep: fused %d ns/op, map baseline %d ns/op, speedup %.2fx (floor %.1fx)",
		fused.NsPerOp(), base.NsPerOp(), ratio, slowpathFloor)
	if ratio < slowpathFloor {
		t.Fatalf("slow-path speedup %.2fx below floor %.1fx", ratio, slowpathFloor)
	}
}
