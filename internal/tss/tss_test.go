package tss

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

func entry(match string, prio, val int) *Entry[int] {
	return &Entry[int]{Match: flow.MustParseMatch(match), Priority: prio, Value: val}
}

func TestLookupPicksHighestPriority(t *testing.T) {
	c := New[int]()
	c.Insert(entry("ip_dst=10.0.0.0/8", 100, 1))
	c.Insert(entry("ip_dst=10.1.0.0/16", 200, 2))
	c.Insert(entry("ip_dst=10.1.2.0/24", 300, 3))

	e, _ := c.Lookup(flow.MustParseKey("ip_dst=10.1.2.3"))
	if e == nil || e.Value != 3 {
		t.Fatalf("got %v, want value 3", e)
	}
	e, _ = c.Lookup(flow.MustParseKey("ip_dst=10.1.9.9"))
	if e == nil || e.Value != 2 {
		t.Fatalf("got %v, want value 2", e)
	}
	e, _ = c.Lookup(flow.MustParseKey("ip_dst=10.9.9.9"))
	if e == nil || e.Value != 1 {
		t.Fatalf("got %v, want value 1", e)
	}
	e, _ = c.Lookup(flow.MustParseKey("ip_dst=11.0.0.1"))
	if e != nil {
		t.Fatalf("expected miss, got %v", e)
	}
}

func TestInsertReplaceSamePredicateAndPriority(t *testing.T) {
	c := New[int]()
	if replaced := c.Insert(entry("tp_dst=80", 5, 1)); replaced {
		t.Error("first insert reported replace")
	}
	if replaced := c.Insert(entry("tp_dst=80", 5, 2)); !replaced {
		t.Error("identical predicate+priority should replace")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	e, _ := c.Lookup(flow.MustParseKey("tp_dst=80"))
	if e.Value != 2 {
		t.Errorf("replacement not visible: %v", e.Value)
	}
}

func TestSamePredicateDifferentPriorities(t *testing.T) {
	c := New[int]()
	c.Insert(entry("tp_dst=80", 5, 1))
	c.Insert(entry("tp_dst=80", 9, 2))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	e, _ := c.Lookup(flow.MustParseKey("tp_dst=80"))
	if e.Value != 2 {
		t.Errorf("want higher-priority value 2, got %d", e.Value)
	}
	if !c.Delete(flow.MustParseMatch("tp_dst=80"), 9) {
		t.Fatal("delete failed")
	}
	e, _ = c.Lookup(flow.MustParseKey("tp_dst=80"))
	if e == nil || e.Value != 1 {
		t.Errorf("after delete want value 1, got %v", e)
	}
}

func TestDelete(t *testing.T) {
	c := New[int]()
	c.Insert(entry("ip_dst=10.0.0.0/8", 1, 1))
	c.Insert(entry("tp_dst=80", 2, 2))
	if !c.Delete(flow.MustParseMatch("ip_dst=10.0.0.0/8"), 1) {
		t.Fatal("delete existing failed")
	}
	if c.Delete(flow.MustParseMatch("ip_dst=10.0.0.0/8"), 1) {
		t.Fatal("double delete succeeded")
	}
	if c.Delete(flow.MustParseMatch("ip_dst=99.0.0.0/8"), 1) {
		t.Fatal("delete of absent rule succeeded")
	}
	if c.Len() != 1 || c.NumTuples() != 1 {
		t.Errorf("Len=%d NumTuples=%d, want 1,1", c.Len(), c.NumTuples())
	}
	e, _ := c.Lookup(flow.MustParseKey("ip_dst=10.1.1.1,tp_dst=80"))
	if e == nil || e.Value != 2 {
		t.Errorf("remaining rule not found: %v", e)
	}
}

func TestDeleteRestoresMaxPriorityEarlyExit(t *testing.T) {
	c := New[int]()
	c.Insert(entry("tp_dst=80", 100, 1))
	c.Insert(entry("tp_dst=81", 1, 2)) // same tuple, low priority
	c.Insert(entry("ip_dst=10.0.0.0/8", 50, 3))
	c.Delete(flow.MustParseMatch("tp_dst=80"), 100)
	// tp tuple's max priority must now be 1, so the /8 rule should win.
	e, _ := c.Lookup(flow.MustParseKey("ip_dst=10.0.0.1,tp_dst=81"))
	if e == nil || e.Value != 3 {
		t.Fatalf("got %v, want value 3", e)
	}
}

func TestGet(t *testing.T) {
	c := New[int]()
	c.Insert(entry("tp_dst=80", 7, 42))
	if e, ok := c.Get(flow.MustParseMatch("tp_dst=80"), 7); !ok || e.Value != 42 {
		t.Errorf("Get = %v, %v", e, ok)
	}
	if _, ok := c.Get(flow.MustParseMatch("tp_dst=80"), 8); ok {
		t.Error("Get with wrong priority succeeded")
	}
	if _, ok := c.Get(flow.MustParseMatch("tp_src=80"), 7); ok {
		t.Error("Get with wrong match succeeded")
	}
}

func TestEarlyExitProbeCount(t *testing.T) {
	c := New[int]()
	// High-priority exact rule plus many low-priority tuples.
	c.Insert(entry("ip_dst=10.0.0.1", 1000, 1))
	c.Insert(entry("ip_dst=10.0.0.0/8", 1, 2))
	c.Insert(entry("ip_dst=10.0.0.0/16", 2, 3))
	c.Insert(entry("ip_dst=10.0.0.0/24", 3, 4))
	e, probes := c.Lookup(flow.MustParseKey("ip_dst=10.0.0.1"))
	if e.Value != 1 {
		t.Fatalf("wrong winner %v", e)
	}
	if probes != 1 {
		t.Errorf("staged lookup should probe only the top tuple, probed %d", probes)
	}
	// A miss must probe all tuples.
	_, probes = c.Lookup(flow.MustParseKey("ip_dst=99.0.0.1"))
	if probes != c.NumTuples() {
		t.Errorf("miss probed %d of %d tuples", probes, c.NumTuples())
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := New[int]()
	c.Insert(entry("tp_dst=80", 1, 1))
	c.Lookup(flow.MustParseKey("tp_dst=80"))
	c.Lookup(flow.MustParseKey("tp_dst=81"))
	if c.Lookups != 2 {
		t.Errorf("Lookups = %d", c.Lookups)
	}
	if c.Probes < 2 {
		t.Errorf("Probes = %d", c.Probes)
	}
}

func TestRangeAndEntries(t *testing.T) {
	c := New[int]()
	c.Insert(entry("tp_dst=80", 1, 1))
	c.Insert(entry("tp_dst=81", 1, 2))
	c.Insert(entry("ip_proto=6", 1, 3))
	if got := len(c.Entries()); got != 3 {
		t.Errorf("Entries len = %d", got)
	}
	n := 0
	c.Range(func(*Entry[int]) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Range early stop visited %d", n)
	}
}

func TestClear(t *testing.T) {
	c := New[int]()
	c.Insert(entry("tp_dst=80", 1, 1))
	c.Lookup(flow.MustParseKey("tp_dst=80"))
	c.Clear()
	if c.Len() != 0 || c.NumTuples() != 0 {
		t.Error("Clear left rules behind")
	}
	if e, _ := c.Lookup(flow.MustParseKey("tp_dst=80")); e != nil {
		t.Error("lookup hit after Clear")
	}
	if c.Lookups != 2 {
		t.Error("Clear should preserve statistics")
	}
}

// linearScan is the reference classifier: check every rule, pick the
// highest priority match (first inserted wins ties, matching bucket order).
func linearScan(rules []*Entry[int], k flow.Key) *Entry[int] {
	var best *Entry[int]
	for _, r := range rules {
		if r.Match.Matches(k) && (best == nil || r.Priority > best.Priority) {
			best = r
		}
	}
	return best
}

func TestAgainstLinearScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New[int]()
	var rules []*Entry[int]
	randKey := func() flow.Key {
		var k flow.Key
		k = k.With(flow.FieldIPDst, uint64(rng.Intn(8))<<24|uint64(rng.Intn(4)))
		k = k.With(flow.FieldIPSrc, uint64(rng.Intn(8))<<24)
		k = k.With(flow.FieldTpDst, uint64(rng.Intn(4)*100))
		k = k.With(flow.FieldIPProto, uint64(6+rng.Intn(2)*11))
		return k
	}
	masks := []flow.Mask{
		flow.ExactFields(flow.FieldIPDst),
		flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 8)),
		flow.ExactFields(flow.FieldTpDst),
		flow.ExactFields(flow.FieldIPProto, flow.FieldTpDst),
		flow.EmptyMask.With(flow.FieldIPSrc, flow.PrefixMask(flow.FieldIPSrc, 8)).WithField(flow.FieldTpDst),
	}
	// Distinct priority per rule avoids ambiguity about equal-priority winners.
	for i := 0; i < 300; i++ {
		m := flow.NewMatch(randKey(), masks[rng.Intn(len(masks))])
		e := &Entry[int]{Match: m, Priority: i + 1, Value: i}
		c.Insert(e)
		rules = append(rules, e)
	}
	for i := 0; i < 3000; i++ {
		k := randKey()
		want := linearScan(rules, k)
		got, _ := c.Lookup(k)
		switch {
		case want == nil && got != nil:
			t.Fatalf("key %s: tss hit %v, linear miss", k, got.Match)
		case want != nil && got == nil:
			t.Fatalf("key %s: tss miss, linear hit %v", k, want.Match)
		case want != nil && got.Priority != want.Priority:
			t.Fatalf("key %s: tss prio %d, linear prio %d", k, got.Priority, want.Priority)
		}
	}
}

func TestRandomizedInsertDeleteConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := New[int]()
	live := map[int]*Entry[int]{}
	next := 0
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			m := flow.NewMatch(
				flow.Key{}.With(flow.FieldTpDst, uint64(rng.Intn(50))),
				flow.ExactFields(flow.FieldTpDst))
			e := &Entry[int]{Match: m, Priority: next + 1, Value: next}
			c.Insert(e)
			live[next] = e
			next++
		} else {
			for id, e := range live {
				if !c.Delete(e.Match, e.Priority) {
					t.Fatalf("step %d: delete of live rule failed", step)
				}
				delete(live, id)
				break
			}
		}
		if c.Len() != len(live) {
			t.Fatalf("step %d: Len=%d live=%d", step, c.Len(), len(live))
		}
	}
	// Final sanity: every live rule is still reachable.
	for _, e := range live {
		got, _ := c.Lookup(e.Match.Key)
		if got == nil {
			t.Fatalf("live rule %v unreachable", e.Match)
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New[int]()
	rng := rand.New(rand.NewSource(1))
	keys := make([]flow.Key, 1024)
	for i := range keys {
		k := flow.Key{}.
			With(flow.FieldIPDst, rng.Uint64()).
			With(flow.FieldTpDst, rng.Uint64())
		keys[i] = k
		c.Insert(&Entry[int]{Match: flow.NewMatch(k, flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst)), Priority: 1, Value: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}
