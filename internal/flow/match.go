package flow

import "fmt"

// Match is a ternary predicate over flow keys: a key matches when it agrees
// with Key on every significant bit of Mask. Matches are stored normalized
// (Key ANDed with Mask) so that equal predicates compare equal.
type Match struct {
	Key  Key
	Mask Mask
}

// NewMatch builds a normalized match from a key and a mask.
func NewMatch(k Key, m Mask) Match {
	return Match{Key: k.Apply(m), Mask: m}
}

// ExactMatch builds a match requiring every field of k exactly.
func ExactMatch(k Key) Match { return Match{Key: k, Mask: FullMask()} }

// MatchAll is the fully wildcarded match.
func MatchAll() Match { return Match{} }

// Matches reports whether k satisfies the predicate.
func (m Match) Matches(k Key) bool {
	for i := range k {
		if (k[i]^m.Key[i])&m.Mask[i] != 0 {
			return false
		}
	}
	return true
}

// Normalize returns m with its key canonicalized under its mask.
func (m Match) Normalize() Match { return NewMatch(m.Key, m.Mask) }

// Fields returns the set of fields the match constrains.
func (m Match) Fields() FieldSet { return m.Mask.Fields() }

// WithField returns m additionally requiring field f to equal v exactly.
func (m Match) WithField(f FieldID, v uint64) Match {
	m.Key = m.Key.With(f, v)
	m.Mask = m.Mask.WithField(f)
	return m
}

// WithMaskedField returns m additionally requiring the bits of f under mask
// to equal the corresponding bits of v.
func (m Match) WithMaskedField(f FieldID, v, mask uint64) Match {
	m.Mask = m.Mask.With(f, m.Mask[f]|mask&f.MaxValue())
	m.Key = m.Key.WithMasked(f, v&mask, mask)
	return m
}

// Subsumes reports whether every key matched by o is also matched by m
// (m is the more general predicate). Requires both normalized.
func (m Match) Subsumes(o Match) bool {
	if !o.Mask.Covers(m.Mask) {
		return false
	}
	for i := range m.Key {
		if (m.Key[i]^o.Key[i])&m.Mask[i] != 0 {
			return false
		}
	}
	return true
}

// Overlaps reports whether some key satisfies both m and o: on every bit
// significant to both, the two keys must agree.
func (m Match) Overlaps(o Match) bool {
	for i := range m.Key {
		common := m.Mask[i] & o.Mask[i]
		if (m.Key[i]^o.Key[i])&common != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two (normalized) matches are identical
// predicates.
func (m Match) Equal(o Match) bool {
	return m.Mask == o.Mask && m.Key.Apply(m.Mask) == o.Key.Apply(o.Mask)
}

// String renders the match as "field=value[/mask]" pairs, or "*" when it
// matches everything.
func (m Match) String() string {
	if m.Mask.IsEmpty() {
		return "*"
	}
	out := ""
	for f := FieldID(0); f < NumFields; f++ {
		bits := m.Mask[f]
		if bits == 0 {
			continue
		}
		if out != "" {
			out += ","
		}
		if bits == f.MaxValue() {
			out += fmt.Sprintf("%s=%s", f, FormatValue(f, m.Key[f]))
		} else if (f == FieldIPSrc || f == FieldIPDst) && isPrefix(bits, f.Width()) {
			out += fmt.Sprintf("%s=%s/%d", f, FormatValue(f, m.Key[f]), popcount(bits))
		} else {
			out += fmt.Sprintf("%s=%s/0x%x", f, FormatValue(f, m.Key[f]), bits)
		}
	}
	return out
}

// isPrefix reports whether bits is a contiguous run of ones anchored at the
// top of a w-bit field.
func isPrefix(bits uint64, w uint) bool {
	n := popcount(bits)
	return bits == PrefixMask0(w, uint(n))
}

// PrefixMask0 returns the top-plen-bits mask for a w-bit field.
func PrefixMask0(w, plen uint) uint64 {
	if plen >= w {
		if w >= 64 {
			return ^uint64(0)
		}
		return (uint64(1) << w) - 1
	}
	if plen == 0 {
		return 0
	}
	return ((uint64(1) << plen) - 1) << (w - plen)
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
