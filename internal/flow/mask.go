package flow

import (
	"fmt"
	"strings"
)

// Mask is a per-bit wildcard: a set bit means the corresponding key bit is
// significant (matched); a clear bit is wildcarded. Masks are comparable,
// which TSS exploits to group rules into tuples by identical mask.
type Mask [NumFields]uint64

// EmptyMask matches nothing about a packet — every bit wildcarded.
var EmptyMask Mask

// FullMask returns the mask with every bit of every field significant.
func FullMask() Mask {
	var m Mask
	for f := FieldID(0); f < NumFields; f++ {
		m[f] = f.MaxValue()
	}
	return m
}

// ExactFields returns a mask that fully matches the given fields and
// wildcards the rest.
func ExactFields(fields ...FieldID) Mask {
	var m Mask
	for _, f := range fields {
		m[f] = f.MaxValue()
	}
	return m
}

// PrefixMask returns the mask selecting the top plen bits of field f
// (longest-prefix-match style; meaningful for IP fields but defined for
// any field).
func PrefixMask(f FieldID, plen uint) uint64 {
	w := f.Width()
	if plen >= w {
		return f.MaxValue()
	}
	if plen == 0 {
		return 0
	}
	return ((uint64(1) << plen) - 1) << (w - plen)
}

// Get returns the mask bits of field f.
func (m Mask) Get(f FieldID) uint64 { return m[f] }

// With returns a copy of m with field f's mask set to bits (truncated to
// the field width).
func (m Mask) With(f FieldID, bits uint64) Mask {
	m[f] = bits & f.MaxValue()
	return m
}

// WithField returns a copy of m with field f fully significant.
func (m Mask) WithField(f FieldID) Mask {
	m[f] = f.MaxValue()
	return m
}

// Union returns the bitwise OR of the two masks: significant anywhere
// either is. This is the ω_k computation of §4.2.3 (union of the W_i of a
// sub-traversal's tables).
func (m Mask) Union(o Mask) Mask {
	var out Mask
	for i := range m {
		out[i] = m[i] | o[i]
	}
	return out
}

// Intersect returns the bitwise AND of the two masks.
func (m Mask) Intersect(o Mask) Mask {
	var out Mask
	for i := range m {
		out[i] = m[i] & o[i]
	}
	return out
}

// Without returns m with the bits of o cleared (m AND NOT o).
func (m Mask) Without(o Mask) Mask {
	var out Mask
	for i := range m {
		out[i] = m[i] &^ o[i]
	}
	return out
}

// WithoutFields returns m with every bit of the given fields cleared. Used
// for rewrite shadowing: fields written earlier in a (sub-)traversal are
// struck from its externally visible match mask.
func (m Mask) WithoutFields(s FieldSet) Mask {
	for f := FieldID(0); f < NumFields; f++ {
		if s.Contains(f) {
			m[f] = 0
		}
	}
	return m
}

// IsEmpty reports whether the mask wildcards everything.
func (m Mask) IsEmpty() bool { return m == EmptyMask }

// Fields returns the set of fields with at least one significant bit.
func (m Mask) Fields() FieldSet {
	var s FieldSet
	for i, bits := range m {
		if bits != 0 {
			s = s.Add(FieldID(i))
		}
	}
	return s
}

// Covers reports whether every significant bit of o is also significant in
// m (m is at least as specific as o on o's bits).
func (m Mask) Covers(o Mask) bool {
	for i := range m {
		if o[i]&^m[i] != 0 {
			return false
		}
	}
	return true
}

// BitCount returns the total number of significant bits across all fields.
func (m Mask) BitCount() int {
	n := 0
	for _, bits := range m {
		for v := bits; v != 0; v &= v - 1 {
			n++
		}
	}
	return n
}

// String renders the mask as "field/0x.." pairs for significant fields, or
// "*" when fully wildcarded.
func (m Mask) String() string {
	if m.IsEmpty() {
		return "*"
	}
	var parts []string
	for f := FieldID(0); f < NumFields; f++ {
		if m[f] == 0 {
			continue
		}
		if m[f] == f.MaxValue() {
			parts = append(parts, f.String())
		} else {
			parts = append(parts, fmt.Sprintf("%s/0x%x", f, m[f]))
		}
	}
	return strings.Join(parts, ",")
}
