package flow

import (
	"fmt"
	"strings"
)

// Key is a concrete flow signature: one value per header field. Keys are
// comparable and hashable (usable directly as Go map keys), which the
// exact-match Microflow cache and the TSS hash buckets rely on.
type Key [NumFields]uint64

// Get returns the value of field f.
func (k Key) Get(f FieldID) uint64 { return k[f] }

// With returns a copy of k with field f set to v (truncated to the field
// width).
func (k Key) With(f FieldID, v uint64) Key {
	k[f] = v & f.MaxValue()
	return k
}

// Set assigns field f in place (truncated to the field width). It is the
// mutating twin of With for builders on the packet fast path, where
// copying the whole key per field would be waste.
//
//gf:hotpath
func (k *Key) Set(f FieldID, v uint64) {
	k[f] = v & f.MaxValue()
}

// FlowHash mixes the 5-tuple (addresses, protocol, ports) into a 64-bit
// fingerprint: multiply-xor over the five fields with a murmur-style
// finisher so both the high bits (flight-record fingerprints) and the
// low bits (worker-shard modulo) are well distributed. A handful of
// arithmetic ops — cheap enough to call per packet on the fast path.
//
//gf:hotpath
func (k *Key) FlowHash() uint64 {
	const prime = 0x100000001b3
	h := uint64(0x9e3779b97f4a7c15)
	h = (h ^ k[FieldIPSrc]) * prime
	h = (h ^ k[FieldIPDst]) * prime
	h = (h ^ k[FieldIPProto]) * prime
	h = (h ^ k[FieldTpSrc]) * prime
	h = (h ^ k[FieldTpDst]) * prime
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// SymHash is FlowHash made invariant under endpoint reversal: both
// directions of a connection hash identically, so conntrack-mode
// sharding lands a conversation's packets on one worker. The (IP, port)
// endpoint pair is canonicalized by ordering before hashing.
//
//gf:hotpath
func (k *Key) SymHash() uint64 {
	return SymHash5(k[FieldIPSrc], k[FieldIPDst], k[FieldIPProto], k[FieldTpSrc], k[FieldTpDst])
}

// SymHash5 is the symmetric 5-tuple mix backing Key.SymHash, factored
// out so the wire-bytes RSS extractor (internal/packet.RSSHash) produces
// bit-identical shard assignments without building a Key: any caller
// holding the five tuple values — from a decoded key or straight from
// L3/L4 header words — lands a flow's two directions on the same shard.
//
//gf:hotpath
func SymHash5(srcIP, dstIP, proto, srcPort, dstPort uint64) uint64 {
	a, ap := srcIP, srcPort
	b, bp := dstIP, dstPort
	if a > b || (a == b && ap > bp) {
		a, b, ap, bp = b, a, bp, ap
	}
	const prime = 0x100000001b3
	h := uint64(0x9e3779b97f4a7c15)
	h = (h ^ a) * prime
	h = (h ^ b) * prime
	h = (h ^ proto) * prime
	h = (h ^ ap) * prime
	h = (h ^ bp) * prime
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// WithMasked returns a copy of k where the bits of f selected by mask are
// replaced by the corresponding bits of v.
func (k Key) WithMasked(f FieldID, v, mask uint64) Key {
	mask &= f.MaxValue()
	k[f] = (k[f] &^ mask) | (v & mask)
	return k
}

// Apply returns k with every field ANDed against the mask, i.e. the
// canonical representative of k under m.
func (k Key) Apply(m Mask) Key {
	var out Key
	for i := range k {
		out[i] = k[i] & m[i]
	}
	return out
}

// Diff returns the set of fields on which a and b differ.
func (a Key) Diff(b Key) FieldSet {
	var s FieldSet
	for i := range a {
		if a[i] != b[i] {
			s = s.Add(FieldID(i))
		}
	}
	return s
}

// DiffBits returns, per field, the XOR of a and b: the exact bit positions
// where the two keys disagree. Used by dependency unwildcarding to find a
// distinguishing bit against a higher-priority rule.
func (a Key) DiffBits(b Key) Mask {
	var m Mask
	for i := range a {
		m[i] = a[i] ^ b[i]
	}
	return m
}

// Equal reports whether a and b agree on every field. (Keys are comparable;
// this exists for symmetry and call-site readability.)
func (a Key) Equal(b Key) bool { return a == b }

// String renders the key as a comma-separated field=value list with
// MAC/IP-style formatting for address fields.
func (k Key) String() string {
	parts := make([]string, 0, NumFields)
	for f := FieldID(0); f < NumFields; f++ {
		parts = append(parts, fmt.Sprintf("%s=%s", f, FormatValue(f, k[f])))
	}
	return strings.Join(parts, ",")
}

// FormatValue renders a field value in its conventional notation: MACs as
// colon-separated hex, IPs as dotted quads, eth_type as hex, and everything
// else as decimal.
func FormatValue(f FieldID, v uint64) string {
	switch f {
	case FieldEthSrc, FieldEthDst:
		return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case FieldIPSrc, FieldIPDst:
		return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case FieldEthType:
		return fmt.Sprintf("0x%04x", v)
	default:
		return fmt.Sprintf("%d", v)
	}
}
