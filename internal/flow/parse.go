package flow

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseValue parses a field value in the notation produced by FormatValue:
// MACs as colon-separated hex, IPs as dotted quads, and plain decimal or
// 0x-prefixed hex for everything else.
func ParseValue(f FieldID, s string) (uint64, error) {
	switch f {
	case FieldEthSrc, FieldEthDst:
		if strings.Contains(s, ":") {
			return parseMAC(s)
		}
	case FieldIPSrc, FieldIPDst:
		if strings.Contains(s, ".") {
			return parseIPv4(s)
		}
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("flow: bad value %q for %s: %v", s, f, err)
	}
	if v > f.MaxValue() {
		return 0, fmt.Errorf("flow: value %q overflows %d-bit field %s", s, f.Width(), f)
	}
	return v, nil
}

func parseMAC(s string) (uint64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return 0, fmt.Errorf("flow: bad MAC %q", s)
	}
	var v uint64
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return 0, fmt.Errorf("flow: bad MAC %q: %v", s, err)
		}
		v = v<<8 | b
	}
	return v, nil
}

func parseIPv4(s string) (uint64, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("flow: bad IPv4 %q", s)
	}
	var v uint64
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("flow: bad IPv4 %q: %v", s, err)
		}
		v = v<<8 | b
	}
	return v, nil
}

// ParseMatch parses a comma-separated "field=value[/plen|/0xmask]" list
// into a Match. An empty string or "*" yields the match-all predicate.
//
//	ParseMatch("eth_type=0x0800,ip_dst=10.0.0.0/24,tp_dst=80")
func ParseMatch(s string) (Match, error) {
	m := MatchAll()
	s = strings.TrimSpace(s)
	if s == "" || s == "*" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Match{}, fmt.Errorf("flow: bad match term %q", part)
		}
		f, ok := FieldByName(strings.TrimSpace(kv[0]))
		if !ok {
			return Match{}, fmt.Errorf("flow: unknown field %q", kv[0])
		}
		valStr, maskStr, hasMask := strings.Cut(kv[1], "/")
		v, err := ParseValue(f, valStr)
		if err != nil {
			return Match{}, err
		}
		if !hasMask {
			m = m.WithField(f, v)
			continue
		}
		var bits uint64
		if strings.HasPrefix(maskStr, "0x") || strings.HasPrefix(maskStr, "0X") {
			bits, err = strconv.ParseUint(maskStr, 0, 64)
			if err != nil {
				return Match{}, fmt.Errorf("flow: bad mask %q: %v", maskStr, err)
			}
		} else {
			plen, err := strconv.ParseUint(maskStr, 10, 8)
			if err != nil {
				return Match{}, fmt.Errorf("flow: bad prefix length %q: %v", maskStr, err)
			}
			bits = PrefixMask(f, uint(plen))
		}
		m = m.WithMaskedField(f, v, bits)
	}
	return m.Normalize(), nil
}

// MustParseMatch is ParseMatch that panics on error; for tests and
// statically known literals.
func MustParseMatch(s string) Match {
	m, err := ParseMatch(s)
	if err != nil {
		panic(err)
	}
	return m
}

// ParseKey parses a comma-separated "field=value" list into a Key; fields
// not mentioned are zero.
func ParseKey(s string) (Key, error) {
	var k Key
	s = strings.TrimSpace(s)
	if s == "" {
		return k, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Key{}, fmt.Errorf("flow: bad key term %q", part)
		}
		f, ok := FieldByName(strings.TrimSpace(kv[0]))
		if !ok {
			return Key{}, fmt.Errorf("flow: unknown field %q", kv[0])
		}
		v, err := ParseValue(f, kv[1])
		if err != nil {
			return Key{}, err
		}
		k = k.With(f, v)
	}
	return k, nil
}

// MustParseKey is ParseKey that panics on error.
func MustParseKey(s string) Key {
	k, err := ParseKey(s)
	if err != nil {
		panic(err)
	}
	return k
}
