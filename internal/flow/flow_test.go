package flow

import (
	"strings"
	"testing"
)

func TestFieldWidthsAndMax(t *testing.T) {
	cases := []struct {
		f     FieldID
		width uint
		max   uint64
	}{
		{FieldInPort, 16, 0xffff},
		{FieldEthSrc, 48, 0xffffffffffff},
		{FieldEthDst, 48, 0xffffffffffff},
		{FieldEthType, 16, 0xffff},
		{FieldIPSrc, 32, 0xffffffff},
		{FieldIPDst, 32, 0xffffffff},
		{FieldIPProto, 8, 0xff},
		{FieldTpSrc, 16, 0xffff},
		{FieldTpDst, 16, 0xffff},
		{FieldMeta, 16, 0xffff},
	}
	for _, c := range cases {
		if got := c.f.Width(); got != c.width {
			t.Errorf("%s.Width() = %d, want %d", c.f, got, c.width)
		}
		if got := c.f.MaxValue(); got != c.max {
			t.Errorf("%s.MaxValue() = %#x, want %#x", c.f, got, c.max)
		}
	}
}

func TestFieldByName(t *testing.T) {
	for f := FieldID(0); f < NumFields; f++ {
		got, ok := FieldByName(f.String())
		if !ok || got != f {
			t.Errorf("FieldByName(%q) = %v, %v; want %v, true", f.String(), got, ok, f)
		}
	}
	if _, ok := FieldByName("vlan_vid"); ok {
		t.Error("FieldByName accepted unknown field")
	}
}

func TestFieldSetOps(t *testing.T) {
	s := NewFieldSet(FieldIPDst, FieldTpDst)
	if !s.Contains(FieldIPDst) || !s.Contains(FieldTpDst) || s.Contains(FieldIPSrc) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	o := NewFieldSet(FieldTpDst, FieldTpSrc)
	if !s.Overlaps(o) {
		t.Error("expected overlap via tp_dst")
	}
	if s.Overlaps(NewFieldSet(FieldEthSrc)) {
		t.Error("unexpected overlap with eth_src")
	}
	u := s.Union(o)
	if u.Len() != 3 {
		t.Errorf("union Len = %d, want 3", u.Len())
	}
	if got := s.Intersect(o); got != NewFieldSet(FieldTpDst) {
		t.Errorf("intersect = %v, want {tp_dst}", got)
	}
	if got := s.Remove(FieldIPDst); got != NewFieldSet(FieldTpDst) {
		t.Errorf("remove = %v", got)
	}
	if !FieldSet(0).Empty() || s.Empty() {
		t.Error("Empty() wrong")
	}
	if AllFields.Len() != NumFields {
		t.Errorf("AllFields.Len() = %d, want %d", AllFields.Len(), NumFields)
	}
	fields := u.Fields()
	if len(fields) != 3 {
		t.Fatalf("Fields() returned %d members", len(fields))
	}
	for i := 1; i < len(fields); i++ {
		if fields[i] <= fields[i-1] {
			t.Errorf("Fields() not in canonical order: %v", fields)
		}
	}
}

func TestKeyWithTruncates(t *testing.T) {
	var k Key
	k = k.With(FieldIPProto, 0x1ff) // 9 bits into an 8-bit field
	if k.Get(FieldIPProto) != 0xff {
		t.Errorf("With did not truncate: %#x", k.Get(FieldIPProto))
	}
}

func TestKeyWithMasked(t *testing.T) {
	k := MustParseKey("ip_dst=10.1.2.3")
	k = k.WithMasked(FieldIPDst, MustParseKey("ip_dst=192.168.0.0").Get(FieldIPDst), PrefixMask(FieldIPDst, 16))
	want := MustParseKey("ip_dst=192.168.2.3")
	if k != want {
		t.Errorf("WithMasked = %s, want %s", k, want)
	}
}

func TestKeyDiff(t *testing.T) {
	a := MustParseKey("ip_dst=10.0.0.1,tp_dst=80")
	b := MustParseKey("ip_dst=10.0.0.2,tp_dst=80")
	if got := a.Diff(b); got != NewFieldSet(FieldIPDst) {
		t.Errorf("Diff = %v, want {ip_dst}", got)
	}
	if got := a.Diff(a); !got.Empty() {
		t.Errorf("self Diff = %v, want empty", got)
	}
	bits := a.DiffBits(b)
	if bits[FieldIPDst] != 3 { // ...0.1 ^ ...0.2 = 3
		t.Errorf("DiffBits ip_dst = %#x, want 3", bits[FieldIPDst])
	}
}

func TestPrefixMask(t *testing.T) {
	if got := PrefixMask(FieldIPDst, 24); got != 0xffffff00 {
		t.Errorf("/24 = %#x", got)
	}
	if got := PrefixMask(FieldIPDst, 0); got != 0 {
		t.Errorf("/0 = %#x", got)
	}
	if got := PrefixMask(FieldIPDst, 32); got != 0xffffffff {
		t.Errorf("/32 = %#x", got)
	}
	if got := PrefixMask(FieldIPDst, 99); got != 0xffffffff {
		t.Errorf("/99 should clamp: %#x", got)
	}
}

func TestMaskOps(t *testing.T) {
	a := ExactFields(FieldEthSrc, FieldEthDst)
	b := ExactFields(FieldEthDst, FieldIPDst)
	u := a.Union(b)
	if u.Fields() != NewFieldSet(FieldEthSrc, FieldEthDst, FieldIPDst) {
		t.Errorf("union fields = %v", u.Fields())
	}
	i := a.Intersect(b)
	if i.Fields() != NewFieldSet(FieldEthDst) {
		t.Errorf("intersect fields = %v", i.Fields())
	}
	w := u.Without(a)
	if w.Fields() != NewFieldSet(FieldIPDst) {
		t.Errorf("without fields = %v", w.Fields())
	}
	if !u.Covers(a) || !u.Covers(b) || a.Covers(u) {
		t.Error("Covers wrong")
	}
	if got := u.WithoutFields(NewFieldSet(FieldEthSrc, FieldIPDst)); got.Fields() != NewFieldSet(FieldEthDst) {
		t.Errorf("WithoutFields = %v", got.Fields())
	}
	if FullMask().BitCount() != 16+48+48+16+32+32+8+16+16+16+8 {
		t.Errorf("FullMask BitCount = %d", FullMask().BitCount())
	}
	if HeaderFields.Contains(FieldMeta) || HeaderFields.Contains(FieldCtState) ||
		HeaderFields.Len() != NumFields-2 {
		t.Error("HeaderFields must exclude only metadata and ct_state")
	}
	if !EmptyMask.IsEmpty() || FullMask().IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestMatchBasics(t *testing.T) {
	m := MustParseMatch("eth_type=0x0800,ip_dst=10.0.0.0/24")
	hit := MustParseKey("eth_type=0x0800,ip_dst=10.0.0.42,tp_dst=443")
	miss := MustParseKey("eth_type=0x0800,ip_dst=10.0.1.42")
	if !m.Matches(hit) {
		t.Errorf("%s should match %s", m, hit)
	}
	if m.Matches(miss) {
		t.Errorf("%s should not match %s", m, miss)
	}
	if m.Fields() != NewFieldSet(FieldEthType, FieldIPDst) {
		t.Errorf("Fields = %v", m.Fields())
	}
	if !MatchAll().Matches(hit) {
		t.Error("MatchAll should match anything")
	}
}

func TestMatchNormalization(t *testing.T) {
	// Key bits outside the mask must be canonicalized away.
	k := MustParseKey("ip_dst=10.0.0.99")
	m := NewMatch(k, Mask{}.With(FieldIPDst, PrefixMask(FieldIPDst, 24)))
	if m.Key.Get(FieldIPDst) != MustParseKey("ip_dst=10.0.0.0").Get(FieldIPDst) {
		t.Errorf("not normalized: %s", m)
	}
	m2 := NewMatch(MustParseKey("ip_dst=10.0.0.1"), m.Mask)
	if !m.Equal(m2) {
		t.Error("predicates equal under mask must compare Equal")
	}
}

func TestMatchSubsumesOverlaps(t *testing.T) {
	wide := MustParseMatch("ip_dst=10.0.0.0/8")
	narrow := MustParseMatch("ip_dst=10.1.0.0/16")
	other := MustParseMatch("ip_dst=11.0.0.0/8")
	if !wide.Subsumes(narrow) {
		t.Error("10/8 should subsume 10.1/16")
	}
	if narrow.Subsumes(wide) {
		t.Error("10.1/16 should not subsume 10/8")
	}
	if !wide.Overlaps(narrow) || wide.Overlaps(other) {
		t.Error("Overlaps wrong")
	}
	disjointFields := MustParseMatch("tp_dst=80")
	if !wide.Overlaps(disjointFields) {
		t.Error("matches on disjoint fields always overlap")
	}
	if !wide.Subsumes(wide) {
		t.Error("Subsumes must be reflexive")
	}
}

func TestExactMatch(t *testing.T) {
	k := MustParseKey("in_port=3,eth_type=0x0800,ip_src=1.2.3.4")
	m := ExactMatch(k)
	if !m.Matches(k) {
		t.Error("exact match must match its own key")
	}
	if m.Matches(k.With(FieldTpSrc, 1)) {
		t.Error("exact match must reject any differing bit")
	}
}

func TestApplyActions(t *testing.T) {
	k := MustParseKey("ip_dst=10.0.0.1,tp_dst=80")
	acts := []Action{
		SetField(FieldIPDst, MustParseKey("ip_dst=192.168.1.1").Get(FieldIPDst)),
		Output(7),
		SetField(FieldTpDst, 9999), // must be ignored after terminal
	}
	out, v := Apply(k, acts)
	if v.Kind != VerdictOutput || v.Port != 7 {
		t.Fatalf("verdict = %v", v)
	}
	if out.Get(FieldIPDst) != MustParseKey("ip_dst=192.168.1.1").Get(FieldIPDst) {
		t.Error("set-field not applied")
	}
	if out.Get(FieldTpDst) != 80 {
		t.Error("action after terminal executed")
	}

	_, v = Apply(k, []Action{Drop()})
	if v.Kind != VerdictDrop {
		t.Errorf("drop verdict = %v", v)
	}
	_, v = Apply(k, []Action{SetField(FieldTpSrc, 1)})
	if v.Terminal() {
		t.Error("set-field alone must not be terminal")
	}
}

func TestSetFieldMasked(t *testing.T) {
	k := MustParseKey("ip_dst=10.1.2.3")
	a := SetFieldMasked(FieldIPDst, MustParseKey("ip_dst=172.16.0.0").Get(FieldIPDst), PrefixMask(FieldIPDst, 12))
	out, _ := Apply(k, []Action{a})
	// Top 12 bits replaced with 172.16's, rest kept: 172.17.2.3
	// 10.1.2.3 = 0x0A010203; low 20 bits = 0x10203. 172.16/12 top = 0xAC1.
	want := MustParseKey("ip_dst=172.17.2.3")
	if out != want {
		t.Errorf("masked set = %s, want %s", out, want)
	}
}

func TestCommit(t *testing.T) {
	from := MustParseKey("ip_dst=10.0.0.1,tp_dst=80,eth_dst=aa:aa:aa:aa:aa:aa")
	to := from.With(FieldEthDst, MustParseKey("eth_dst=bb:bb:bb:bb:bb:bb").Get(FieldEthDst)).
		With(FieldTpDst, 8080)
	acts := Commit(from, to)
	got, v := Apply(from, acts)
	if got != to {
		t.Errorf("commit replay = %s, want %s", got, to)
	}
	if v.Terminal() {
		t.Error("commit must not contain terminal actions")
	}
	if len(acts) != 2 {
		t.Errorf("commit should have 2 actions, got %d: %v", len(acts), acts)
	}
	if len(Commit(from, from)) != 0 {
		t.Error("identity commit must be empty")
	}
}

func TestWrittenFields(t *testing.T) {
	acts := []Action{SetField(FieldEthDst, 1), Output(2), SetField(FieldTpDst, 3)}
	if got := WrittenFields(acts); got != NewFieldSet(FieldEthDst, FieldTpDst) {
		t.Errorf("WrittenFields = %v", got)
	}
}

func TestActionsEqual(t *testing.T) {
	a := []Action{SetField(FieldEthDst, 1), Output(2)}
	b := []Action{SetField(FieldEthDst, 1), Output(2)}
	c := []Action{SetField(FieldEthDst, 1), Output(3)}
	if !ActionsEqual(a, b) || ActionsEqual(a, c) || ActionsEqual(a, a[:1]) {
		t.Error("ActionsEqual wrong")
	}
}

func TestParseFormatsRoundTrip(t *testing.T) {
	cases := []string{
		"eth_type=0x0800,ip_dst=10.0.0.0/24",
		"eth_src=aa:bb:cc:dd:ee:ff",
		"in_port=3,tp_dst=443",
		"ip_src=192.168.0.0/16,ip_proto=6",
		"*",
	}
	for _, s := range cases {
		m, err := ParseMatch(s)
		if err != nil {
			t.Fatalf("ParseMatch(%q): %v", s, err)
		}
		m2, err := ParseMatch(m.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", m.String(), s, err)
		}
		if !m.Equal(m2) {
			t.Errorf("round trip changed %q -> %q", s, m2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nosuchfield=1",
		"ip_dst",
		"ip_dst=10.0.0.0/zz",
		"tp_dst=70000", // overflows 16 bits
		"eth_src=aa:bb:cc",
		"ip_dst=1.2.3.4.5",
	}
	for _, s := range bad {
		if _, err := ParseMatch(s); err == nil {
			t.Errorf("ParseMatch(%q) should fail", s)
		}
	}
	if _, err := ParseKey("eth_src=zz:bb:cc:dd:ee:ff"); err == nil {
		t.Error("ParseKey bad MAC should fail")
	}
}

func TestValueFormatting(t *testing.T) {
	if got := FormatValue(FieldIPDst, 0x0a000001); got != "10.0.0.1" {
		t.Errorf("ip fmt = %q", got)
	}
	if got := FormatValue(FieldEthSrc, 0xaabbccddeeff); got != "aa:bb:cc:dd:ee:ff" {
		t.Errorf("mac fmt = %q", got)
	}
	if got := FormatValue(FieldEthType, 0x800); got != "0x0800" {
		t.Errorf("ethtype fmt = %q", got)
	}
	if got := FormatValue(FieldTpDst, 443); got != "443" {
		t.Errorf("port fmt = %q", got)
	}
}

func TestMatchStringPrefixNotation(t *testing.T) {
	m := MustParseMatch("ip_dst=10.0.0.0/24")
	if !strings.Contains(m.String(), "/24") {
		t.Errorf("prefix notation lost: %q", m.String())
	}
	if got := MatchAll().String(); got != "*" {
		t.Errorf("MatchAll string = %q", got)
	}
}

func TestVerdictString(t *testing.T) {
	if (Verdict{Kind: VerdictOutput, Port: 5}).String() != "output(5)" {
		t.Error("output verdict string")
	}
	if (Verdict{Kind: VerdictDrop}).String() != "drop" {
		t.Error("drop verdict string")
	}
	if (Verdict{}).String() != "continue" {
		t.Error("none verdict string")
	}
}

// TestSymHash: the symmetric flow hash must be invariant under endpoint
// reversal (both directions of a conversation shard to the same
// worker), sensitive to everything else, and must agree with itself on
// already-canonical tuples.
func TestSymHash(t *testing.T) {
	mk := func(ipSrc, ipDst, tpSrc, tpDst, proto uint64) Key {
		var k Key
		return k.With(FieldIPSrc, ipSrc).With(FieldIPDst, ipDst).
			With(FieldTpSrc, tpSrc).With(FieldTpDst, tpDst).
			With(FieldIPProto, proto)
	}
	fwd := mk(0x0a000001, 0x0a000002, 4000, 443, 6)
	rev := mk(0x0a000002, 0x0a000001, 443, 4000, 6)
	if fwd.SymHash() != rev.SymHash() {
		t.Fatal("SymHash not symmetric under endpoint reversal")
	}
	if fwd.FlowHash() == rev.FlowHash() {
		t.Fatal("FlowHash unexpectedly symmetric — SymHash would be redundant")
	}

	// Same addresses, swapped ports only: a DIFFERENT conversation, and
	// the ordering canonicalizes on (ip, port) pairs, so it must not
	// collide with fwd by construction.
	cross := mk(0x0a000001, 0x0a000002, 443, 4000, 6)
	if cross.SymHash() == fwd.SymHash() {
		t.Error("distinct conversations collide")
	}
	// Equal IPs: ports alone decide the canonical order.
	p1 := mk(7, 7, 100, 200, 17)
	p2 := mk(7, 7, 200, 100, 17)
	if p1.SymHash() != p2.SymHash() {
		t.Error("equal-IP reversal not symmetric")
	}
	// Sensitivity: protocol and each endpoint perturb the hash.
	udp := fwd.With(FieldIPProto, 17)
	if fwd.SymHash() == udp.SymHash() {
		t.Error("insensitive to protocol")
	}
	moved := fwd.With(FieldIPDst, 0x0a000003)
	if fwd.SymHash() == moved.SymHash() {
		t.Error("insensitive to address")
	}
	// Fields outside the 5-tuple must not matter (hash feeds sharding
	// before any rewrite).
	dressed := fwd.With(FieldEthSrc, 42).With(FieldMeta, 9)
	if fwd.SymHash() != dressed.SymHash() {
		t.Error("non-tuple fields leak into SymHash")
	}
}
