package flow

import "testing"

// FuzzParseMatch checks that ParseMatch never panics and that anything it
// accepts survives a format/parse round trip as an equal predicate.
func FuzzParseMatch(f *testing.F) {
	for _, seed := range []string{
		"",
		"*",
		"eth_type=0x0800,ip_dst=10.0.0.0/24",
		"eth_src=aa:bb:cc:dd:ee:ff,tp_dst=443",
		"ip_dst=10.0.0.1/0xff00ff00",
		"in_port=3,ip_proto=6,metadata=7",
		"ip_dst=999.0.0.0/24",
		"tp_dst=80/",
		"=,=,=",
		"ip_dst=10.0.0.0/24,ip_dst=10.0.0.0/16",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMatch(s)
		if err != nil {
			return
		}
		rt, err := ParseMatch(m.String())
		if err != nil {
			t.Fatalf("accepted %q but cannot re-parse its String %q: %v", s, m.String(), err)
		}
		if !m.Equal(rt) {
			t.Fatalf("round trip changed %q: %q -> %q", s, m.String(), rt.String())
		}
	})
}

// FuzzParseKey checks that ParseKey never panics and round-trips.
func FuzzParseKey(f *testing.F) {
	for _, seed := range []string{
		"",
		"ip_dst=10.0.0.1,tp_dst=80",
		"eth_src=aa:bb:cc:dd:ee:ff",
		"metadata=65535",
		"ip_proto=300",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKey(s)
		if err != nil {
			return
		}
		rt, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("accepted %q but cannot re-parse its String %q: %v", s, k.String(), err)
		}
		if k != rt {
			t.Fatalf("round trip changed %q: %s -> %s", s, k, rt)
		}
	})
}
