// Package flow models packet header flows as fixed-width field vectors with
// per-bit wildcard masks, plus the match predicates and set-field actions
// used throughout the vSwitch pipeline and the Gigaflow/Megaflow caches.
//
// The field set is the nine packet headers matched ternarily by the
// paper's LTM table (Figure 6) — ingress port, Ethernet
// source/destination/type, IPv4 source/destination/protocol, and transport
// source/destination ports — plus the pipeline metadata register real
// vSwitch pipelines steer with.
package flow

import "fmt"

// FieldID identifies one header field of a flow key.
type FieldID uint8

// The fields of a flow key, in canonical order: the nine packet headers of
// the paper's LTM table (Figure 6) plus the pipeline metadata register
// (OVS reg/conntrack-mark equivalent) that real vSwitch pipelines use for
// inter-table steering. Metadata is zero when a packet enters the pipeline
// and only ever takes values the pipeline's own actions write, so cache
// rules composed over it remain functions of the packet headers.
const (
	FieldInPort  FieldID = iota // ingress port
	FieldEthSrc                 // Ethernet source MAC
	FieldEthDst                 // Ethernet destination MAC
	FieldEthType                // Ethernet type
	FieldIPSrc                  // IPv4 source address
	FieldIPDst                  // IPv4 destination address
	FieldIPProto                // IPv4 protocol
	FieldTpSrc                  // transport (TCP/UDP) source port
	FieldTpDst                  // transport (TCP/UDP) destination port
	FieldMeta                   // pipeline metadata register (not a header)
	FieldCtState                // connection-tracking state bits (not a header)

	// NumFields is the number of fields in a flow key.
	NumFields = 11
)

// Connection-tracking state bits carried in FieldCtState, mirroring the OVS
// ct_state flag vocabulary. The conntrack layer folds these into the key
// before cache lookup and pipeline traversal, so rules and cached entries
// can match ternarily on connection state.
const (
	CtTrk uint64 = 1 << iota // packet passed through conntrack
	CtNew                    // connection in NEW state
	CtEst                    // connection ESTABLISHED
	CtRel                    // RELATED to an existing connection (ICMP)
	CtRpl                    // packet travels in the reply direction
	CtCls                    // connection CLOSED (FIN/RST seen)
)

// fieldWidths holds the bit width of each field.
var fieldWidths = [NumFields]uint{
	FieldInPort:  16,
	FieldEthSrc:  48,
	FieldEthDst:  48,
	FieldEthType: 16,
	FieldIPSrc:   32,
	FieldIPDst:   32,
	FieldIPProto: 8,
	FieldTpSrc:   16,
	FieldTpDst:   16,
	FieldMeta:    16,
	FieldCtState: 8,
}

// fieldNames holds the canonical display name of each field.
var fieldNames = [NumFields]string{
	FieldInPort:  "in_port",
	FieldEthSrc:  "eth_src",
	FieldEthDst:  "eth_dst",
	FieldEthType: "eth_type",
	FieldIPSrc:   "ip_src",
	FieldIPDst:   "ip_dst",
	FieldIPProto: "ip_proto",
	FieldTpSrc:   "tp_src",
	FieldTpDst:   "tp_dst",
	FieldMeta:    "metadata",
	FieldCtState: "ct_state",
}

// HeaderFields is the set of real packet-header fields (everything except
// the metadata register and the conntrack state bits). The disjointness
// analysis partitions over these.
const HeaderFields = AllFields &^ (1 << FieldMeta) &^ (1 << FieldCtState)

// Width reports the bit width of field f.
func (f FieldID) Width() uint { return fieldWidths[f] }

// MaxValue reports the largest value representable in field f.
func (f FieldID) MaxValue() uint64 {
	w := fieldWidths[f]
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Valid reports whether f names one of the NumFields header fields.
func (f FieldID) Valid() bool { return f < NumFields }

// String returns the canonical field name, e.g. "ip_dst".
func (f FieldID) String() string {
	if !f.Valid() {
		return fmt.Sprintf("field(%d)", uint8(f))
	}
	return fieldNames[f]
}

// FieldByName resolves a canonical field name to its FieldID.
func FieldByName(name string) (FieldID, bool) {
	for i, n := range fieldNames {
		if n == name {
			return FieldID(i), true
		}
	}
	return 0, false
}

// FieldSet is a bitset of FieldIDs. It is the currency of the disjointness
// analysis in the sub-traversal partitioner: two tables are disjoint when
// their FieldSets do not intersect.
type FieldSet uint16

// NewFieldSet builds a set containing the given fields.
func NewFieldSet(fields ...FieldID) FieldSet {
	var s FieldSet
	for _, f := range fields {
		s = s.Add(f)
	}
	return s
}

// Add returns s with field f included.
func (s FieldSet) Add(f FieldID) FieldSet { return s | 1<<f }

// Remove returns s with field f excluded.
func (s FieldSet) Remove(f FieldID) FieldSet { return s &^ (1 << f) }

// Contains reports whether f is in the set.
func (s FieldSet) Contains(f FieldID) bool { return s&(1<<f) != 0 }

// Union returns the set union of s and t.
func (s FieldSet) Union(t FieldSet) FieldSet { return s | t }

// Intersect returns the set intersection of s and t.
func (s FieldSet) Intersect(t FieldSet) FieldSet { return s & t }

// Overlaps reports whether s and t share at least one field.
func (s FieldSet) Overlaps(t FieldSet) bool { return s&t != 0 }

// Empty reports whether the set contains no fields.
func (s FieldSet) Empty() bool { return s == 0 }

// Len reports the number of fields in the set.
func (s FieldSet) Len() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Fields returns the members of the set in canonical order.
func (s FieldSet) Fields() []FieldID {
	out := make([]FieldID, 0, s.Len())
	for f := FieldID(0); f < NumFields; f++ {
		if s.Contains(f) {
			out = append(out, f)
		}
	}
	return out
}

// String renders the set as "{ip_dst,tp_dst}".
func (s FieldSet) String() string {
	out := "{"
	first := true
	for f := FieldID(0); f < NumFields; f++ {
		if s.Contains(f) {
			if !first {
				out += ","
			}
			out += f.String()
			first = false
		}
	}
	return out + "}"
}

// AllFields is the FieldSet containing every header field.
const AllFields FieldSet = 1<<NumFields - 1
