package flow

import "fmt"

// ActionType discriminates the kinds of actions a rule can carry.
type ActionType uint8

const (
	// ActionSetField rewrites (part of) a header field.
	ActionSetField ActionType = iota
	// ActionOutput forwards the packet to a port and terminates processing.
	ActionOutput
	// ActionDrop discards the packet and terminates processing.
	ActionDrop
	// ActionDNAT rewrites the destination of a tracked connection to a
	// backend drawn from the NAT pool named by Value. The binding is chosen
	// once per connection and resolved into concrete set-field rewrites by
	// the conntrack layer during traversal; without a resolver the action
	// is a no-op, like any unknown action.
	ActionDNAT
	// ActionSNAT rewrites the source of a tracked connection from the NAT
	// pool named by Value, resolved like ActionDNAT.
	ActionSNAT
	// ActionCtNAT applies the connection's recorded NAT binding in the
	// direction the packet travels: reply packets get the inverse rewrite
	// (un-DNAT the source / un-SNAT the destination).
	ActionCtNAT
)

// Action is one packet-processing primitive. Actions are plain comparable
// values so that rule-generation code can diff and deduplicate them.
type Action struct {
	Type  ActionType
	Field FieldID // ActionSetField only
	Value uint64  // SetField value, or Output port number
	Mask  uint64  // SetField bit mask; full field width for a whole-field set
}

// SetField builds an action rewriting all of field f to v.
func SetField(f FieldID, v uint64) Action {
	return Action{Type: ActionSetField, Field: f, Value: v & f.MaxValue(), Mask: f.MaxValue()}
}

// SetFieldMasked builds an action rewriting only the bits of f under mask.
func SetFieldMasked(f FieldID, v, mask uint64) Action {
	mask &= f.MaxValue()
	return Action{Type: ActionSetField, Field: f, Value: v & mask, Mask: mask}
}

// Output builds an action forwarding the packet to port.
func Output(port uint16) Action {
	return Action{Type: ActionOutput, Value: uint64(port)}
}

// Drop builds an action discarding the packet.
func Drop() Action { return Action{Type: ActionDrop} }

// DNAT builds an action rewriting the destination to a backend from NAT
// pool `pool`.
func DNAT(pool uint16) Action {
	return Action{Type: ActionDNAT, Value: uint64(pool)}
}

// SNAT builds an action rewriting the source from NAT pool `pool`.
func SNAT(pool uint16) Action {
	return Action{Type: ActionSNAT, Value: uint64(pool)}
}

// CtNAT builds an action applying the tracked connection's NAT binding in
// the packet's direction (the reverse rewrite for reply packets).
func CtNAT() Action { return Action{Type: ActionCtNAT} }

// String renders the action in OVS-like notation.
func (a Action) String() string {
	switch a.Type {
	case ActionSetField:
		if a.Mask == a.Field.MaxValue() {
			return fmt.Sprintf("set(%s=%s)", a.Field, FormatValue(a.Field, a.Value))
		}
		return fmt.Sprintf("set(%s=%s/0x%x)", a.Field, FormatValue(a.Field, a.Value), a.Mask)
	case ActionOutput:
		return fmt.Sprintf("output(%d)", a.Value)
	case ActionDrop:
		return "drop"
	case ActionDNAT:
		return fmt.Sprintf("dnat(%d)", a.Value)
	case ActionSNAT:
		return fmt.Sprintf("snat(%d)", a.Value)
	case ActionCtNAT:
		return "ct_nat"
	default:
		return fmt.Sprintf("action(%d)", a.Type)
	}
}

// VerdictKind classifies the fate of a packet after executing an action
// list.
type VerdictKind uint8

const (
	// VerdictNone means processing continues (no terminal action seen).
	VerdictNone VerdictKind = iota
	// VerdictOutput means the packet was forwarded.
	VerdictOutput
	// VerdictDrop means the packet was discarded.
	VerdictDrop
)

// Verdict is the terminal outcome of processing, if any.
type Verdict struct {
	Kind VerdictKind
	Port uint16 // valid when Kind == VerdictOutput
}

// Terminal reports whether the verdict ends packet processing.
func (v Verdict) Terminal() bool { return v.Kind != VerdictNone }

// String renders the verdict.
func (v Verdict) String() string {
	switch v.Kind {
	case VerdictOutput:
		return fmt.Sprintf("output(%d)", v.Port)
	case VerdictDrop:
		return "drop"
	default:
		return "continue"
	}
}

// Apply executes the action list against key k, returning the rewritten key
// and the terminal verdict (if any). Actions after a terminal action are
// ignored, mirroring switch semantics.
//
//gf:hotpath
func Apply(k Key, actions []Action) (Key, Verdict) {
	for _, a := range actions {
		switch a.Type {
		case ActionSetField:
			k = k.WithMasked(a.Field, a.Value, a.Mask)
		case ActionOutput:
			return k, Verdict{Kind: VerdictOutput, Port: uint16(a.Value)}
		case ActionDrop:
			return k, Verdict{Kind: VerdictDrop}
		}
	}
	return k, Verdict{}
}

// Commit computes the set-field actions that transform `from` into `to`:
// the "commit" of §4.2.3, recording the differences between the flow at the
// start and end of a sub-traversal.
func Commit(from, to Key) []Action {
	var out []Action
	for f := FieldID(0); f < NumFields; f++ {
		if from[f] != to[f] {
			out = append(out, SetField(f, to[f]))
		}
	}
	return out
}

// WrittenFields returns the set of fields the action list may modify.
func WrittenFields(actions []Action) FieldSet {
	var s FieldSet
	for _, a := range actions {
		if a.Type == ActionSetField {
			s = s.Add(a.Field)
		}
	}
	return s
}

// ActionsEqual reports whether two action lists are element-wise identical.
func ActionsEqual(a, b []Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
