package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets testing/quick produce structurally valid keys (values
// truncated to field widths).
func (Key) Generate(r *rand.Rand, _ int) reflect.Value {
	var k Key
	for f := FieldID(0); f < NumFields; f++ {
		k[f] = r.Uint64() & f.MaxValue()
	}
	return reflect.ValueOf(k)
}

// Generate produces structurally valid masks.
func (Mask) Generate(r *rand.Rand, _ int) reflect.Value {
	var m Mask
	for f := FieldID(0); f < NumFields; f++ {
		switch r.Intn(4) {
		case 0: // wildcard
		case 1: // exact
			m[f] = f.MaxValue()
		case 2: // prefix
			m[f] = PrefixMask(f, uint(r.Intn(int(f.Width())+1)))
		case 3: // arbitrary ternary
			m[f] = r.Uint64() & f.MaxValue()
		}
	}
	return reflect.ValueOf(m)
}

var quickCfg = &quick.Config{MaxCount: 2000}

func TestQuickMatchAfterApplyMask(t *testing.T) {
	// A key always satisfies the match constructed from itself and any mask.
	prop := func(k Key, m Mask) bool {
		return NewMatch(k, m).Matches(k)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMaskUnionCoversBoth(t *testing.T) {
	prop := func(a, b Mask) bool {
		u := a.Union(b)
		return u.Covers(a) && u.Covers(b)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMaskUnionCommutativeIdempotent(t *testing.T) {
	prop := func(a, b Mask) bool {
		return a.Union(b) == b.Union(a) && a.Union(a) == a
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickWithoutDisjointFromSubtrahend(t *testing.T) {
	prop := func(a, b Mask) bool {
		return a.Without(b).Intersect(b).IsEmpty()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsumesImpliesMatchImplication(t *testing.T) {
	// If wide subsumes narrow, any key matched by narrow is matched by wide.
	prop := func(k Key, seed Key, mWide, extra Mask) bool {
		wide := NewMatch(seed, mWide)
		narrow := NewMatch(seed, mWide.Union(extra))
		if !wide.Subsumes(narrow) {
			return false
		}
		if narrow.Matches(k) && !wide.Matches(k) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapsSymmetric(t *testing.T) {
	prop := func(a, b Key, ma, mb Mask) bool {
		x, y := NewMatch(a, ma), NewMatch(b, mb)
		return x.Overlaps(y) == y.Overlaps(x)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapWitness(t *testing.T) {
	// When two matches overlap, the canonical witness (take a's bits where a
	// is significant, b's where only b is) satisfies both.
	prop := func(a, b Key, ma, mb Mask) bool {
		x, y := NewMatch(a, ma), NewMatch(b, mb)
		if !x.Overlaps(y) {
			return true
		}
		var w Key
		for i := range w {
			w[i] = (x.Key[i] & ma[i]) | (y.Key[i] & mb[i] &^ ma[i])
		}
		return x.Matches(w) && y.Matches(w)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCommitReplaysDiff(t *testing.T) {
	// Commit(from, to) applied to `from` always yields `to`.
	prop := func(from, to Key) bool {
		got, v := Apply(from, Commit(from, to))
		return got == to && !v.Terminal()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickApplyMaskIdempotent(t *testing.T) {
	prop := func(k Key, m Mask) bool {
		once := k.Apply(m)
		return once.Apply(m) == once
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equal predicate.
	prop := func(k Key, m Mask) bool {
		orig := NewMatch(k, m)
		parsed, err := ParseMatch(orig.String())
		if err != nil {
			return false
		}
		return orig.Equal(parsed)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffBitsConsistentWithDiff(t *testing.T) {
	prop := func(a, b Key) bool {
		return a.DiffBits(b).Fields() == a.Diff(b)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
