package flowtable

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// mapModel is the reference the fused table is differentially checked
// against: exactly what every tier did before flowtable existed — a Go
// map keyed by the Apply-normalized key.
type mapModel struct {
	mask    flow.Mask
	entries map[flow.Key]int
}

func newMapModel(mask flow.Mask) *mapModel {
	return &mapModel{mask: mask, entries: map[flow.Key]int{}}
}

func (m *mapModel) put(k flow.Key, v int) bool {
	nk := k.Apply(m.mask)
	_, existed := m.entries[nk]
	m.entries[nk] = v
	return existed
}

func (m *mapModel) lookup(k flow.Key) (int, bool) {
	v, ok := m.entries[k.Apply(m.mask)]
	return v, ok
}

func (m *mapModel) del(k flow.Key) bool {
	nk := k.Apply(m.mask)
	_, ok := m.entries[nk]
	delete(m.entries, nk)
	return ok
}

// diffMasks is the mask diversity the differential ops run under: exact
// match, single fields, prefixes, multi-field, and the empty mask.
var diffMasks = []flow.Mask{
	flow.FullMask(),
	flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst),
	flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 8)),
	flow.EmptyMask.With(flow.FieldIPSrc, flow.PrefixMask(flow.FieldIPSrc, 16)).WithField(flow.FieldIPProto),
	flow.ExactFields(flow.FieldEthDst),
	flow.EmptyMask,
}

// randDiffKey draws keys from a small universe so inserts, deletes, and
// lookups collide with realistic frequency.
func randDiffKey(rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldIPDst, uint64(rng.Intn(64))<<24|uint64(rng.Intn(8))).
		With(flow.FieldIPSrc, uint64(rng.Intn(16))<<16).
		With(flow.FieldTpDst, uint64(rng.Intn(8)*100)).
		With(flow.FieldIPProto, uint64(6+rng.Intn(2)*11)).
		With(flow.FieldEthDst, uint64(rng.Intn(8)))
}

// runDiffOps drives a table and the map model through the same seeded
// randomized op sequence, checking agreement after every step, and
// returns the table's final iteration order.
func runDiffOps(t *testing.T, mask flow.Mask, seed int64, steps int) []flow.Key {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb := New[int](mask, 0)
	ref := newMapModel(mask)
	for step := 0; step < steps; step++ {
		k := randDiffKey(rng)
		switch rng.Intn(4) {
		case 0, 1: // insert
			v := rng.Intn(1 << 20)
			gotR := tb.Put(k, v)
			wantR := ref.put(k, v)
			if gotR != wantR {
				t.Fatalf("seed %d step %d: Put replaced=%v model=%v", seed, step, gotR, wantR)
			}
		case 2: // delete
			gotD := tb.Delete(k)
			wantD := ref.del(k)
			if gotD != wantD {
				t.Fatalf("seed %d step %d: Delete=%v model=%v", seed, step, gotD, wantD)
			}
		case 3: // lookup
			gotV, gotOK := tb.Lookup(k)
			wantV, wantOK := ref.lookup(k)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("seed %d step %d: Lookup=(%d,%v) model=(%d,%v)", seed, step, gotV, gotOK, wantV, wantOK)
			}
		}
		if tb.Len() != len(ref.entries) {
			t.Fatalf("seed %d step %d: Len=%d model=%d", seed, step, tb.Len(), len(ref.entries))
		}
	}
	// Full-content check: iterate the table, compare against the model.
	var order []flow.Key
	seen := map[flow.Key]int{}
	for it := tb.Iter(); it.Next(); {
		order = append(order, it.Key())
		seen[it.Key()] = it.Value()
	}
	if len(seen) != len(ref.entries) {
		t.Fatalf("seed %d: iterated %d entries, model holds %d", seed, len(seen), len(ref.entries))
	}
	for k, v := range ref.entries {
		if got, ok := seen[k]; !ok || got != v {
			t.Fatalf("seed %d: model entry %v=%d, table iterated %d (present=%v)", seed, k, v, got, ok)
		}
	}
	// Every stored key must be normalized (zero outside the mask).
	for _, k := range order {
		if k != k.Apply(mask) {
			t.Fatalf("seed %d: stored key %v not normalized under %v", seed, k, mask)
		}
	}
	return order
}

// TestDifferentialAgainstMapModel is the flowtable half of the PR's
// equivalence story: for every mask shape, a seeded random
// insert/delete/lookup/iterate sequence must agree with the Go-map
// reference at every step.
func TestDifferentialAgainstMapModel(t *testing.T) {
	for mi, mask := range diffMasks {
		for seed := int64(1); seed <= 5; seed++ {
			runDiffOps(t, mask, seed*31+int64(mi), 4000)
		}
	}
}

// TestSameSeedIterationDeterminism is the iteration-order regression:
// two tables driven through the identical op sequence must iterate in the
// identical order — the property expiry/revalidation sweeps (and the
// detrand invariant) rely on. Go maps deliberately violate it; flowtable
// must never.
func TestSameSeedIterationDeterminism(t *testing.T) {
	for _, mask := range diffMasks {
		a := runDiffOps(t, mask, 1234, 4000)
		b := runDiffOps(t, mask, 1234, 4000)
		if len(a) != len(b) {
			t.Fatalf("same-seed runs iterated %d vs %d entries", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same-seed iteration order diverged at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// FuzzOpsDifferential feeds arbitrary op tapes through a table and the
// map model. Each byte pair encodes (op, key material); the table must
// agree with the model after every op regardless of sequence shape.
func FuzzOpsDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 128, 9, 9, 9})
	f.Add([]byte{3, 1, 0, 1, 2, 1, 1, 1, 3, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		mask := flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst)
		tb := New[int](mask, 0)
		ref := newMapModel(mask)
		for i := 0; i+1 < len(tape); i += 2 {
			op, kb := tape[i], tape[i+1]
			k := flow.Key{}.
				With(flow.FieldIPDst, uint64(kb&0x3f)).
				With(flow.FieldTpDst, uint64(kb>>6))
			switch op % 3 {
			case 0:
				gotR := tb.Put(k, i)
				wantR := ref.put(k, i)
				if gotR != wantR {
					t.Fatalf("op %d: Put replaced=%v model=%v", i, gotR, wantR)
				}
			case 1:
				if got, want := tb.Delete(k), ref.del(k); got != want {
					t.Fatalf("op %d: Delete=%v model=%v", i, got, want)
				}
			case 2:
				gotV, gotOK := tb.Lookup(k)
				wantV, wantOK := ref.lookup(k)
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("op %d: Lookup=(%d,%v) model=(%d,%v)", i, gotV, gotOK, wantV, wantOK)
				}
			}
			if tb.Len() != len(ref.entries) {
				t.Fatalf("op %d: Len=%d model=%d", i, tb.Len(), len(ref.entries))
			}
		}
	})
}
