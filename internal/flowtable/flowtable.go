// Package flowtable provides the specialized hash table behind every
// matching tier: a stdlib-only, open-addressing store keyed by flow.Key
// under a fixed per-table wildcard mask.
//
// Every tier of the cache hierarchy — the Microflow exact-match cache, the
// Megaflow TSS classifier, and the Gigaflow LTM's per-tag classifiers —
// ultimately answers the same question: "which stored key equals this
// packet's key on the bits my mask cares about?" A Go map answers it the
// expensive way: copy the 80-byte key through Key.Apply(mask), then hash
// all ten words again inside the map runtime. This table answers it with a
// fused mask+hash probe: the indices of the mask's non-zero words are
// precomputed at construction, and one pass over only those words masks
// the probe key and folds it through an inline wyhash-style multiply mix
// at the same time. The masked words are retained in a scratch buffer so
// candidate comparison reuses them instead of re-deriving the masked key.
//
// Layout and policy:
//
//   - power-of-two slot count with linear probing;
//   - the 64-bit hash is stored alongside each entry, so probe collisions
//     are rejected on one word compare before any key words are touched
//     (hash 0 marks an empty slot; computed hashes are never 0);
//   - deletion backshifts the probe chain (no tombstones), so lookup cost
//     never degrades under churn and load factor is exact;
//   - growth doubles at 3/4 load and relocates by stored hash — keys are
//     never rehashed after insert;
//   - iteration (Iter/Range) walks slots in index order, which is a pure
//     function of the operation history: the hash is seedless and
//     deterministic, so two tables driven through the same sequence of
//     inserts and deletes iterate identically, run after run. Expiry and
//     revalidation sweeps built on it stay replay-deterministic.
//
// Lookup is allocation-free (enforced by gflint's hotalloc analyzer via
// the //gf:hotpath annotations). Tables are not safe for concurrent use:
// even Lookup writes the probe scratch buffer. Every tier in this
// repository is single-goroutine by design (one core drives the slowpath),
// so the shared scratch costs nothing.
package flowtable

import (
	"math/bits"

	"gigaflow/internal/flow"
)

const (
	// hashInit seeds the word fold (the 64-bit golden ratio); it also
	// substitutes for a computed hash of zero so slot hashes are never 0.
	hashInit = 0x9e3779b97f4a7c15
	// hashMul is the wyhash primary multiplier, xored into each masked
	// word before the 128-bit multiply fold.
	hashMul = 0xa0761d6478bd642f

	// minSlots is the smallest table; small enough that empty tuples stay
	// cheap, large enough to avoid immediate growth.
	minSlots = 8
)

// slot is one open-addressing cell. hash==0 means empty.
type slot[V any] struct {
	hash uint64
	key  flow.Key // normalized: zero outside the table mask
	val  V
}

// Table maps flow keys, compared under a fixed mask, to values of type V.
// The zero value is not usable; construct with New or NewExact.
type Table[V any] struct {
	mask flow.Mask
	// words holds the indices of the mask's non-zero words; the fused
	// probe touches only these. nwords is the live prefix length.
	words  [flow.NumFields]uint8
	nwords int
	// probe is the scratch buffer the fused hash pass fills with the
	// masked words of the key being looked up; candidate comparison reads
	// it back instead of re-masking.
	probe [flow.NumFields]uint64
	// lastHash is the fused hash of the most recent probe, exposed via
	// LastHash so latency attribution can identify the flow without
	// hashing the key a second time.
	lastHash uint64

	slots  []slot[V]
	count  int
	growAt int // count threshold that triggers doubling (3/4 load)
}

// New builds a table whose keys are compared under mask, pre-sized so that
// sizeHint entries fit without growth (sizeHint <= 0 gets the minimum).
func New[V any](mask flow.Mask, sizeHint int) *Table[V] {
	t := &Table[V]{mask: mask}
	for f := 0; f < flow.NumFields; f++ {
		if mask[f] != 0 {
			t.words[t.nwords] = uint8(f)
			t.nwords++
		}
	}
	n := minSlots
	for n*3/4 < sizeHint {
		n <<= 1
	}
	t.init(n)
	return t
}

// NewExact builds a full-mask (exact-match) table: every key word is
// significant, as the Microflow tier requires.
func NewExact[V any](sizeHint int) *Table[V] {
	return New[V](flow.FullMask(), sizeHint)
}

func (t *Table[V]) init(n int) {
	t.slots = make([]slot[V], n)
	t.count = 0
	t.growAt = n * 3 / 4
}

// Len reports the number of stored entries.
func (t *Table[V]) Len() int { return t.count }

// Cap reports the current slot count (capacity before collisions).
func (t *Table[V]) Cap() int { return len(t.slots) }

// Mask returns the wildcard mask keys are compared under.
func (t *Table[V]) Mask() flow.Mask { return t.mask }

// probeHash is the fused mask+hash pass: one loop over the mask's
// non-zero words masks the key, records each masked word in the probe
// scratch, and folds it through the wyhash-style mix. No 80-byte Apply
// copy, no second full-key hash.
//
//gf:hotpath
func (t *Table[V]) probeHash(k *flow.Key) uint64 {
	h := uint64(hashInit)
	for i := 0; i < t.nwords; i++ {
		w := t.words[i]
		mw := k[w] & t.mask[w]
		t.probe[i] = mw
		hi, lo := bits.Mul64(mw^hashMul, h)
		h = hi ^ lo
	}
	if h == 0 {
		h = hashInit // 0 is the empty-slot sentinel
	}
	t.lastHash = h
	return h
}

// LastHash returns the fused probe hash computed by the most recent
// Lookup/Put/Delete on this table. Latency attribution reuses it as the
// flow identifier for hit records instead of hashing the key a second
// time; like the probe scratch it is only meaningful immediately after
// the operation, on the goroutine driving the table.
func (t *Table[V]) LastHash() uint64 { return t.lastHash }

// probeEqual reports whether a stored (normalized) key equals the masked
// words captured by the last probeHash call.
//
//gf:hotpath
func (t *Table[V]) probeEqual(sk *flow.Key) bool {
	for i := 0; i < t.nwords; i++ {
		if sk[t.words[i]] != t.probe[i] {
			return false
		}
	}
	return true
}

// Lookup finds the value stored for k under the table mask. It is the hot
// probe shared by every tier: fused mask+hash, then a linear scan with
// stored-hash early reject.
//
//gf:hotpath
func (t *Table[V]) Lookup(k flow.Key) (V, bool) {
	h := t.probeHash(&k)
	m := uint64(len(t.slots) - 1)
	for i := h & m; ; i = (i + 1) & m {
		s := &t.slots[i]
		if s.hash == 0 {
			var zero V
			return zero, false
		}
		if s.hash == h && t.probeEqual(&s.key) {
			return s.val, true
		}
	}
}

// Contains reports whether a value is stored for k.
//
//gf:hotpath
func (t *Table[V]) Contains(k flow.Key) bool {
	_, ok := t.Lookup(k)
	return ok
}

// Put stores v for k (masked), replacing any existing value; it reports
// whether a value was replaced.
func (t *Table[V]) Put(k flow.Key, v V) (replaced bool) {
	if t.count >= t.growAt {
		t.grow()
	}
	h := t.probeHash(&k)
	m := uint64(len(t.slots) - 1)
	for i := h & m; ; i = (i + 1) & m {
		s := &t.slots[i]
		if s.hash == 0 {
			s.hash = h
			s.key = t.normalizedProbeKey()
			s.val = v
			t.count++
			return false
		}
		if s.hash == h && t.probeEqual(&s.key) {
			s.val = v
			return true
		}
	}
}

// normalizedProbeKey reconstructs the masked key from the probe scratch
// filled by the last probeHash call — the canonical representative stored
// in the slot.
func (t *Table[V]) normalizedProbeKey() flow.Key {
	var nk flow.Key
	for i := 0; i < t.nwords; i++ {
		nk[t.words[i]] = t.probe[i]
	}
	return nk
}

// Delete removes the entry for k, reporting whether one existed. Removal
// backshifts the probe chain: every displaced entry after the hole is
// moved back unless that would skip past its home slot, so no tombstones
// are left behind.
func (t *Table[V]) Delete(k flow.Key) bool {
	h := t.probeHash(&k)
	m := uint64(len(t.slots) - 1)
	i := h & m
	for {
		s := &t.slots[i]
		if s.hash == 0 {
			return false
		}
		if s.hash == h && t.probeEqual(&s.key) {
			break
		}
		i = (i + 1) & m
	}
	// Backshift deletion: slide chain members into the hole while doing so
	// keeps them no earlier than their home slot.
	j := i
	for {
		j = (j + 1) & m
		s := &t.slots[j]
		if s.hash == 0 {
			break
		}
		home := s.hash & m
		if (j-home)&m >= (j-i)&m {
			t.slots[i] = *s
			i = j
		}
	}
	t.slots[i] = slot[V]{}
	t.count--
	return true
}

// grow doubles the slot array, relocating entries by their stored hashes —
// keys are never rehashed after insertion.
func (t *Table[V]) grow() {
	old := t.slots
	t.init(len(old) * 2)
	m := uint64(len(t.slots) - 1)
	for oi := range old {
		s := &old[oi]
		if s.hash == 0 {
			continue
		}
		i := s.hash & m
		for t.slots[i].hash != 0 {
			i = (i + 1) & m
		}
		t.slots[i] = *s
		t.count++
	}
}

// Reset drops every entry but keeps the current allocation, so a bounded
// cache can invalidate wholesale without disturbing its steady-state size.
func (t *Table[V]) Reset() {
	for i := range t.slots {
		t.slots[i] = slot[V]{}
	}
	t.count = 0
}

// Iter returns a slot-order iterator. The order is deterministic: it
// depends only on the sequence of Put/Delete calls, never on a per-process
// seed (unlike Go map iteration). The table must not be mutated while an
// iterator is live.
func (t *Table[V]) Iter() Iter[V] { return Iter[V]{t: t, i: -1} }

// Iter walks a table's occupied slots in index order. The zero value is
// exhausted; obtain live iterators from Table.Iter.
type Iter[V any] struct {
	t *Table[V]
	i int
}

// Next advances to the next occupied slot, reporting whether one exists.
//
//gf:hotpath
func (it *Iter[V]) Next() bool {
	if it.t == nil {
		return false
	}
	for it.i++; it.i < len(it.t.slots); it.i++ {
		if it.t.slots[it.i].hash != 0 {
			return true
		}
	}
	return false
}

// Key returns the current entry's (normalized) key. Valid only after a
// Next call that returned true.
//
//gf:hotpath
func (it *Iter[V]) Key() flow.Key { return it.t.slots[it.i].key }

// Value returns the current entry's value. Valid only after a Next call
// that returned true.
//
//gf:hotpath
func (it *Iter[V]) Value() V { return it.t.slots[it.i].val }

// Range calls fn for every entry in deterministic slot order until fn
// returns false. The table must not be mutated during Range.
func (t *Table[V]) Range(fn func(flow.Key, V) bool) {
	for it := t.Iter(); it.Next(); {
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}
